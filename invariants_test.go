package dxbar

import (
	"testing"

	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// Physical lower bounds: no design may deliver a packet faster than its
// pipeline allows — 2 cycles per minimal hop for the 2-stage designs, 3 for
// the 3-stage baselines (queueing and contention only add to that).

// boundSink checks every delivery against the minimal-latency bound.
type boundSink struct {
	t            *testing.T
	mesh         *topology.Mesh
	cyclesPerHop uint64
}

func (s *boundSink) Deliver(p flit.Packet, cycle uint64) {
	dist := uint64(s.mesh.Distance(p.Src, p.Dst))
	min := dist * s.cyclesPerHop
	lat := p.CompletionCycle - p.InjectionCycle
	if lat < min {
		s.t.Errorf("packet %d->%d delivered in %d cycles, below the physical bound %d",
			p.Src, p.Dst, lat, min)
	}
	if uint64(p.Hops) < dist {
		s.t.Errorf("packet %d->%d took %d hops, below the Manhattan distance %d",
			p.Src, p.Dst, p.Hops, dist)
	}
}

func TestLatencyLowerBounds(t *testing.T) {
	cases := []struct {
		design Design
		cph    uint64
	}{
		{DesignDXbar, 2}, {DesignUnified, 2}, {DesignFlitBless, 2},
		{DesignSCARAB, 2}, {DesignAFC, 2},
		{DesignBuffered4, 2}, {DesignBuffered8, 2}, // first hop skips the buffer cycle
	}
	for _, tc := range cases {
		t.Run(string(tc.design), func(t *testing.T) {
			mesh := topology.MustMesh(8, 8)
			pat, _ := traffic.New("UR", mesh)
			bern, _ := traffic.NewBernoulli(mesh, pat, 0.3, 1, 47)
			coll := stats.NewCollector(mesh.Nodes(), 0, 100000)
			snk := &boundSink{t: t, mesh: mesh, cyclesPerHop: tc.cph}
			net, err := NewNetwork(NetworkOptions{
				Design: tc.design, Mesh: mesh,
				Source: &cappedSource{bern: bern, stop: 2000},
				Sink:   snk, Stats: coll,
			})
			if err != nil {
				t.Fatal(err)
			}
			net.Engine.Run(4000)
			if coll.Results().Packets == 0 {
				t.Fatal("no deliveries to check")
			}
		})
	}
}

type cappedSource struct {
	bern *traffic.Bernoulli
	stop uint64
}

func (s *cappedSource) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if cycle >= s.stop {
		return nil
	}
	if spec := s.bern.Generate(node, cycle); spec != nil {
		return []*traffic.PacketSpec{spec}
	}
	return nil
}

// Livelock freedom: Flit-Bless's oldest-first arbitration guarantees the
// globally oldest flit always advances toward its destination, so even deep
// in saturation the maximum network residency stays bounded — unlike its
// source-queue latency, which grows without bound.
func TestBlessLivelockFreedom(t *testing.T) {
	mesh := topology.MustMesh(8, 8)
	pat, _ := traffic.New("UR", mesh)
	bern, _ := traffic.NewBernoulli(mesh, pat, 0.8, 1, 51) // far past saturation
	coll := stats.NewCollector(mesh.Nodes(), 0, 100000)
	var maxResidency uint64
	snk := sinkFunc(func(p flit.Packet, cycle uint64) {
		// Residency = delivery - network entry; source queueing excluded.
		if r := p.CompletionCycle - p.InjectionCycle; r > maxResidency {
			// InjectionCycle includes queueing; conservative but monotone.
			maxResidency = r
		}
	})
	net, err := NewNetwork(NetworkOptions{
		Design: DesignFlitBless, Mesh: mesh,
		Source: sourceFunc(func(node int, cycle uint64) []*traffic.PacketSpec {
			if cycle >= 3000 {
				return nil
			}
			if spec := bern.Generate(node, cycle); spec != nil {
				return []*traffic.PacketSpec{spec}
			}
			return nil
		}),
		Sink: snk, Stats: coll,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The network itself must drain after injection stops: in a bufferless
	// network at most 2 flits per link exist, and oldest-first drains them.
	drained := func() bool {
		return net.Engine.Cycle() > 3000 && net.Engine.QueuedFlits() == 0
	}
	if !net.Engine.RunUntil(drained, 400000) {
		t.Fatalf("saturated bufferless network failed to drain (queued=%d)", net.Engine.QueuedFlits())
	}
}

type sourceFunc func(node int, cycle uint64) []*traffic.PacketSpec

func (f sourceFunc) Generate(node int, cycle uint64) []*traffic.PacketSpec { return f(node, cycle) }

type sinkFunc func(p flit.Packet, cycle uint64)

func (f sinkFunc) Deliver(p flit.Packet, cycle uint64) { f(p, cycle) }
