package dxbar

// This file is the run-health glue between the public Run path and
// internal/diag: package-level diagnostics defaults (how dxbar-sweep gives
// every run a -diag-dir without threading it through every figure function),
// per-run monitor construction, and post-mortem bundle assembly.

import (
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"

	"dxbar/internal/diag"
	"dxbar/internal/events"
	"dxbar/internal/metrics"
	"dxbar/internal/report"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
)

var (
	diagDefaultsMu sync.RWMutex
	diagDefaultCfg *diag.Config
	diagDefaultDir string
)

// SetDiagDefaults installs process-wide diagnostics defaults: runs whose
// Config.Diag is nil use cfg (copied; nil clears), and runs whose
// Config.DiagDir is empty write post-mortem bundles under dir ("" disables).
// The CLIs call it once at startup so every run they trigger — including the
// sweep figure functions, whose signatures carry no diagnostics knobs —
// shares one logger and bundle directory. Safe for concurrent use with Run.
func SetDiagDefaults(cfg *diag.Config, dir string) {
	diagDefaultsMu.Lock()
	defer diagDefaultsMu.Unlock()
	if cfg == nil {
		diagDefaultCfg = nil
	} else {
		c := *cfg
		diagDefaultCfg = &c
	}
	diagDefaultDir = dir
}

func diagDefaults() (diag.Config, string) {
	diagDefaultsMu.RLock()
	defer diagDefaultsMu.RUnlock()
	if diagDefaultCfg == nil {
		return diag.Config{}, diagDefaultDir
	}
	return *diagDefaultCfg, diagDefaultDir
}

// runDiag is one run's resolved diagnostics: the monitor the engine feeds,
// the bundle directory, and the registry/logger the bundle writer uses.
type runDiag struct {
	mon    *diag.Monitor
	dir    string
	reg    *metrics.Registry
	logger *slog.Logger
}

// newRunDiag resolves a run's diagnostics from its config and the package
// defaults. Returns a zero runDiag (nil monitor — every hook no-ops) when
// diagnostics are disabled.
func newRunDiag(cfg Config, nodes int) runDiag {
	if cfg.DisableDiag {
		return runDiag{}
	}
	var dcfg diag.Config
	dir := cfg.DiagDir
	if cfg.Diag != nil {
		dcfg = *cfg.Diag
	} else {
		var defDir string
		dcfg, defDir = diagDefaults()
		if dir == "" {
			dir = defDir
		}
	}
	if dcfg.Registry == nil {
		dcfg.Registry = cfg.Metrics
	}
	return runDiag{
		mon:    diag.NewMonitor(dcfg, nodes),
		dir:    dir,
		reg:    dcfg.Registry,
		logger: dcfg.Logger,
	}
}

// installDumper wires the monitor's post-mortem dump callback to a bundle
// writer over the run's live state. No-op when bundles are disabled (no
// directory) or diagnostics are off.
func (d runDiag) installDumper(cfg Config, net *Network, coll *stats.Collector, rec *events.Recorder, ckpt *checkpointTracker) {
	if d.mon == nil || d.dir == "" {
		return
	}
	d.mon.SetDumper(func(cycle uint64, reason string) {
		path, err := writeRunBundle(d.dir, reason, cycle, cfg, net, coll, rec, d.reg, d.mon, ckpt)
		if d.logger == nil {
			return
		}
		if err != nil {
			d.logger.Error("post-mortem bundle failed", "dir", path, "reason", reason, "err", err)
		} else {
			d.logger.Warn("post-mortem bundle written", "dir", path, "reason", reason, "cycle", cycle)
		}
	})
}

// bundleRunState is run.json: the run's identity and the engine gauges worth
// having in front of you during a post-mortem.
type bundleRunState struct {
	Reason        string  `json:"reason"`
	Cycle         uint64  `json:"cycle"`
	Design        Design  `json:"design"`
	Routing       string  `json:"routing"`
	Pattern       string  `json:"pattern"`
	Load          float64 `json:"load"`
	Seed          int64   `json:"seed"`
	WarmupCycles  uint64  `json:"warmup_cycles"`
	MeasureCycles uint64  `json:"measure_cycles"`
	Shards        int     `json:"shards"`
	InFlightFlits int     `json:"in_flight_flits"`
	QueuedFlits   int     `json:"queued_flits"`
	EjectedFlits  uint64  `json:"ejected_flits"`
	DroppedFlits  uint64  `json:"dropped_flits"`
	MaxFlitAge    uint64  `json:"max_flit_age"`
	Interrupted   bool    `json:"interrupted"`
	// LastCheckpoint is the newest checkpoint file the run has written (empty
	// when checkpointing is off) — the restore point for post-mortem replay
	// (dxbar-sim -rewind) of the cycles leading into the anomaly.
	LastCheckpoint string `json:"last_checkpoint,omitempty"`
}

// bundleAnomalies is anomalies.json.
type bundleAnomalies struct {
	Anomalies []diag.Anomaly `json:"anomalies"`
	Dropped   uint64         `json:"dropped"`
}

// bundleShards is shards.json: the shard layout, execution profile and
// rebalance counters of the run so far.
type bundleShards struct {
	Shards     int                `json:"shards"`
	Profile    []sim.ShardProfile `json:"profile,omitempty"`
	Rebalances uint64             `json:"rebalances"`
	Migrated   uint64             `json:"nodes_migrated"`
}

// writeRunBundle writes one self-contained post-mortem bundle for a live (or
// just-finished) run: config, anomaly records, run state, latency histogram,
// the flight-recorder ring as a Chrome trace, shard profile, final metrics
// snapshot and a goroutine dump, indexed by a trailing manifest.json. It
// runs at a sequential point of the cycle loop (a detector window boundary)
// or after the run, so everything it reads is consistent; it allocates
// freely — the failure path is not the hot path.
func writeRunBundle(dir, reason string, cycle uint64, cfg Config, net *Network, coll *stats.Collector, rec *events.Recorder, reg *metrics.Registry, mon *diag.Monitor, ckpt *checkpointTracker) (string, error) {
	// The config is scrubbed of its live attachments: handles and callbacks
	// are not configuration, and some (the registry, the diag callbacks)
	// cannot marshal.
	scrubbed := cfg
	scrubbed.Metrics = nil
	scrubbed.Progress = nil
	scrubbed.Diag = nil

	rebal, migrated := net.Engine.ShardRebalances()
	state := bundleRunState{
		Reason:         reason,
		Cycle:          cycle,
		Design:         cfg.Design,
		Routing:        cfg.Routing,
		Pattern:        cfg.Pattern,
		Load:           cfg.Load,
		Seed:           cfg.Seed,
		WarmupCycles:   cfg.WarmupCycles,
		MeasureCycles:  cfg.MeasureCycles,
		Shards:         net.Engine.Shards(),
		InFlightFlits:  net.Engine.Pool().Outstanding(),
		QueuedFlits:    net.Engine.QueuedFlits(),
		EjectedFlits:   coll.TotalEjected(),
		DroppedFlits:   coll.TotalDropped(),
		MaxFlitAge:     mon.MaxFlitAge(),
		Interrupted:    diag.Interrupted(),
		LastCheckpoint: ckpt.get(),
	}

	label := fmt.Sprintf("%s %s %s load %.3f seed %d", cfg.Design, cfg.Routing, cfg.Pattern, cfg.Load, cfg.Seed)
	latency := HistogramRecordFor(label, Result{Results: coll.Results(), Load: cfg.Load})

	trace := report.TraceRecord{Series: label, Width: cfg.Width, Height: cfg.Height}
	if rec != nil {
		trace = TraceRecordFor(label, Result{
			Events: rec.Events(), Width: cfg.Width, Height: cfg.Height,
		})
	}

	entries := []diag.BundleEntry{
		diag.JSONEntry("anomalies.json", bundleAnomalies{
			Anomalies: mon.Anomalies(),
			Dropped:   mon.DroppedAnomalies(),
		}),
		diag.JSONEntry("config.json", scrubbed),
		diag.GoroutinesEntry(),
		diag.JSONEntry("latency.json", latency),
		diag.MetricsEntry(reg),
		diag.JSONEntry("run.json", state),
		diag.JSONEntry("shards.json", bundleShards{
			Shards:     net.Engine.Shards(),
			Profile:    net.Engine.ShardProfiles(),
			Rebalances: rebal,
			Migrated:   migrated,
		}),
		diag.BundleEntry{Name: "trace.json", Write: func(w io.Writer) error {
			return report.WriteChromeTrace(w, trace)
		}},
	}
	return diag.WriteBundle(dir, reason, cycle, entries)
}

// AnomaliesText renders a run's anomaly records as a plain-text table — the
// CLI's end-of-run summary for sick runs.
func AnomaliesText(r Result) string {
	if len(r.Anomalies) == 0 {
		return "(no anomalies detected)"
	}
	t := report.Table{
		Title:   "run-health anomalies",
		Columns: []string{"kind", "cycle", "node", "packet", "flit", "value", "baseline"},
	}
	for _, a := range r.Anomalies {
		baseline := "-"
		if a.Baseline > 0 {
			baseline = strconv.FormatFloat(a.Baseline, 'f', 1, 64)
		}
		node := "-"
		if a.Node >= 0 {
			node = strconv.FormatInt(int64(a.Node), 10)
		}
		packet, flitID := "-", "-"
		if a.Kind == diag.KindStarvation {
			packet = strconv.FormatUint(a.PacketID, 10)
			flitID = strconv.FormatUint(a.FlitID, 10)
		}
		t.Rows = append(t.Rows, []string{
			a.Kind.String(),
			strconv.FormatUint(a.Cycle, 10),
			node, packet, flitID,
			strconv.FormatUint(a.Value, 10),
			baseline,
		})
	}
	var b strings.Builder
	_ = report.WriteTableText(&b, t)
	if r.AnomaliesDropped > 0 {
		fmt.Fprintf(&b, "(%d further anomalies beyond the record cap; counts in dxbar_anomaly_total are exact)\n", r.AnomaliesDropped)
	}
	return b.String()
}
