package dxbar

import (
	"reflect"
	"testing"
)

// run is a test helper for short simulations.
func run(t *testing.T, cfg Config) Result {
	t.Helper()
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 500
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 2000
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

// Every design must deliver essentially all traffic at low load, with
// latency near the zero-load bound.
func TestAllDesignsDeliverAtLowLoad(t *testing.T) {
	for _, d := range Designs {
		for _, algo := range []string{"DOR", "WF"} {
			t.Run(string(d)+"/"+algo, func(t *testing.T) {
				res := run(t, Config{Design: d, Routing: algo, Pattern: "UR", Load: 0.05, Seed: 1})
				if res.Packets == 0 {
					t.Fatal("no packets delivered")
				}
				// Accepted must track offered closely at 5% load.
				if res.AcceptedLoad < res.OfferedLoad*0.95 {
					t.Errorf("accepted %.4f << offered %.4f", res.AcceptedLoad, res.OfferedLoad)
				}
				if res.AvgLatency <= 0 {
					t.Error("zero latency is impossible")
				}
				// Zero-load latency sanity: avg ~2 cycles/hop for the
				// 2-stage designs, ~3 for the baseline, avg distance ~5.3.
				if res.AvgLatency > 40 {
					t.Errorf("low-load latency %.1f looks congested", res.AvgLatency)
				}
				if res.AvgEnergyNJ <= 0 {
					t.Error("energy per packet must be positive")
				}
			})
		}
	}
}

// The 2-stage designs must beat the 3-stage baseline on zero-load latency.
func TestPipelineLatencyOrdering(t *testing.T) {
	dx := run(t, Config{Design: DesignDXbar, Pattern: "UR", Load: 0.02, Seed: 2})
	b4 := run(t, Config{Design: DesignBuffered4, Pattern: "UR", Load: 0.02, Seed: 2})
	if dx.AvgLatency >= b4.AvgLatency {
		t.Errorf("DXbar low-load latency %.2f must beat baseline %.2f (2 vs 3 cycles/hop)",
			dx.AvgLatency, b4.AvgLatency)
	}
}

// At low load DXbar should almost never buffer.
func TestDXbarRarelyBuffersAtLowLoad(t *testing.T) {
	res := run(t, Config{Design: DesignDXbar, Pattern: "UR", Load: 0.05, Seed: 3})
	if res.BufferingProbability > 0.05 {
		t.Errorf("buffering probability %.3f at 5%% load; expected near zero", res.BufferingProbability)
	}
}

// Flit-Bless must deflect under contention but deliver everything.
func TestBlessDeflectsUnderLoad(t *testing.T) {
	res := run(t, Config{Design: DesignFlitBless, Pattern: "UR", Load: 0.35, Seed: 4})
	if res.DeflectionsPerPacket == 0 {
		t.Error("expected deflections at 35% load")
	}
	if res.Packets == 0 {
		t.Fatal("no packets delivered")
	}
}

// SCARAB must drop and retransmit under contention but deliver everything
// at moderate load.
func TestScarabRetransmitsUnderLoad(t *testing.T) {
	res := run(t, Config{Design: DesignSCARAB, Pattern: "UR", Load: 0.3, Seed: 5})
	if res.DroppedFlits == 0 {
		t.Error("expected drops at 30% load")
	}
	if res.RetransmitsPerPacket == 0 {
		t.Error("expected retransmissions")
	}
}

// Multi-flit packets must reassemble for every design.
func TestMultiFlitPackets(t *testing.T) {
	for _, d := range Designs {
		t.Run(string(d), func(t *testing.T) {
			res := run(t, Config{Design: d, Pattern: "UR", Load: 0.1, FlitsPerPacket: 4, Seed: 6})
			if res.Packets == 0 {
				t.Fatal("no packets reassembled")
			}
			if res.AcceptedLoad < res.OfferedLoad*0.9 {
				t.Errorf("accepted %.4f << offered %.4f", res.AcceptedLoad, res.OfferedLoad)
			}
		})
	}
}

// Determinism: identical configs produce identical results.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Design: DesignDXbar, Pattern: "UR", Load: 0.3, Seed: 7,
		WarmupCycles: 300, MeasureCycles: 1000}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same config diverged:\n%+v\n%+v", a, b)
	}
}

// All nine patterns must run on every design without losing traffic at
// modest load.
func TestAllPatternsAllDesigns(t *testing.T) {
	patterns := []string{"UR", "NUR", "BR", "BF", "CP", "MT", "PS", "NB", "TOR"}
	for _, d := range Designs {
		for _, p := range patterns {
			t.Run(string(d)+"/"+p, func(t *testing.T) {
				res := run(t, Config{Design: d, Pattern: p, Load: 0.08, Seed: 8,
					WarmupCycles: 300, MeasureCycles: 1000})
				if res.Packets == 0 {
					t.Fatal("no packets delivered")
				}
			})
		}
	}
}

// Faults: DXbar with 100% faults must still deliver traffic (the paper's
// headline fault-tolerance claim).
func TestDXbarSurvivesFullFaults(t *testing.T) {
	for _, algo := range []string{"DOR", "WF"} {
		t.Run(algo, func(t *testing.T) {
			res := run(t, Config{Design: DesignDXbar, Routing: algo, Pattern: "UR",
				Load: 0.1, Seed: 9, FaultFraction: 1.0})
			if res.Packets == 0 {
				t.Fatal("network died under 100% crossbar faults")
			}
			if res.AcceptedLoad < res.OfferedLoad*0.85 {
				t.Errorf("accepted %.4f too far below offered %.4f with faults",
					res.AcceptedLoad, res.OfferedLoad)
			}
		})
	}
}

// Faults on unsupported designs must be rejected.
func TestFaultsRejectedForBufferlessDesigns(t *testing.T) {
	_, err := Run(Config{Design: DesignFlitBless, Pattern: "UR", Load: 0.1,
		FaultFraction: 0.5, WarmupCycles: 10, MeasureCycles: 10})
	if err == nil {
		t.Error("fault injection on Flit-Bless must error")
	}
}

// Unknown configuration values must error cleanly.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Design: "bogus", Load: 0.1}); err == nil {
		t.Error("unknown design must error")
	}
	if _, err := Run(Config{Design: DesignDXbar, Routing: "bogus", Load: 0.1}); err == nil {
		t.Error("unknown routing must error")
	}
	if _, err := Run(Config{Design: DesignDXbar, Pattern: "bogus", Load: 0.1}); err == nil {
		t.Error("unknown pattern must error")
	}
	if _, err := Run(Config{Design: DesignDXbar, Load: 2.0}); err == nil {
		t.Error("load > 1 must error")
	}
}

// Rectangular meshes must work for every design (regressions here usually
// mean a port/edge bug).
func TestRectangularMeshes(t *testing.T) {
	for _, dims := range [][2]int{{8, 4}, {4, 8}, {2, 16}} {
		for _, d := range AllDesigns {
			t.Run(string(d), func(t *testing.T) {
				res := run(t, Config{Design: d, Pattern: "UR", Load: 0.1,
					Width: dims[0], Height: dims[1], Seed: 13,
					WarmupCycles: 300, MeasureCycles: 1000})
				if res.Packets == 0 {
					t.Fatalf("%dx%d: no packets delivered", dims[0], dims[1])
				}
				if res.AcceptedLoad < res.OfferedLoad*0.9 {
					t.Errorf("%dx%d: accepted %.4f << offered %.4f",
						dims[0], dims[1], res.AcceptedLoad, res.OfferedLoad)
				}
			})
		}
	}
}

// The AFC extension design works through the facade end to end.
func TestAFCDesignThroughFacade(t *testing.T) {
	lo := run(t, Config{Design: DesignAFC, Pattern: "UR", Load: 0.05, Seed: 19})
	hi := run(t, Config{Design: DesignAFC, Pattern: "UR", Load: 0.45, Seed: 19})
	if lo.Packets == 0 || hi.Packets == 0 {
		t.Fatal("AFC must deliver at both ends of the load axis")
	}
	// Low load: bufferless behaviour (no buffer energy).
	if lo.BufferingProbability > 0.05 {
		t.Errorf("AFC at low load should stay bufferless (buffering prob %.3f)", lo.BufferingProbability)
	}
	// High load: buffered behaviour (most flits buffered).
	if hi.BufferingProbability < 0.5 {
		t.Errorf("AFC at high load should run buffered (buffering prob %.3f)", hi.BufferingProbability)
	}
}
