package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dxbar"
	"dxbar/internal/runstore"
	"dxbar/internal/sim"
)

// ScaleSchema is the JSON schema version of the SCALE_* record, independent
// of the BENCH_* schema. Schema 2 records the requested and effective shard
// counts separately, carries a per-point offered load, and omits the speedup
// entirely when the sharded run degenerated to one effective shard — schema 1
// silently wrote "shards": 1 next to a bogus speedup ratio on single-core
// hosts.
const ScaleSchema = 2

// ScalePoint is one mesh-size measurement of the scaling study: the same
// workload timed on the sequential engine and on the sharded engine.
type ScalePoint struct {
	Width  int `json:"width"`
	Height int `json:"height"`
	// Load is the offered load of this point. The study picks a
	// below-saturation load per mesh size: above saturation the injection
	// backlog grows without bound, the spec rings double forever, and the
	// allocs/cycle column measures backlog growth instead of engine churn.
	Load float64 `json:"load"`
	// ShardsRequested is the -shards request (AutoShards = -1 as given);
	// ShardsEffective is what sim.ResolveShards turned it into on this host
	// and mesh. They differ on hosts with fewer CPUs than requested shards
	// and on meshes too small for the requested grid.
	ShardsRequested    int     `json:"shards_requested"`
	ShardsEffective    int     `json:"shards_effective"`
	NsPerCycleSeq      float64 `json:"ns_per_cycle_seq"`
	NsPerCycleSharded  float64 `json:"ns_per_cycle_sharded"`
	AllocsPerCycleSeq  float64 `json:"allocs_per_cycle_seq"`
	AllocsPerCycleShrd float64 `json:"allocs_per_cycle_sharded"`
	// Speedup is sequential ns/cycle over sharded ns/cycle (>1 = faster).
	// Null when ShardsEffective == 1: a "sharded" run on one shard is the
	// sequential engine plus barrier overhead, and a ratio would compare
	// nothing.
	Speedup *float64 `json:"speedup,omitempty"`
}

// ScaleFile is the on-disk scaling record (bench/SCALE_<date>.json — a name
// distinct from BENCH_* so the regression baseline glob never picks it up).
type ScaleFile struct {
	Schema    int               `json:"schema"`
	Date      string            `json:"date"`
	Label     string            `json:"label,omitempty"`
	GoVersion string            `json:"go"`
	Env       runstore.EnvStamp `json:"env"`
	// NumCPU and GOMAXPROCS record the host parallelism the speedups were
	// measured under — a speedup is meaningless without them.
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Design     string       `json:"design"`
	Pattern    string       `json:"pattern"`
	Points     []ScalePoint `json:"points"`
}

// scaleSizes are the large-mesh points of the scaling study — the sizes
// where the router phase is wide enough for sharding to pay off — each with
// its below-saturation offered load (larger meshes saturate at lower loads;
// see ScalePoint.Load).
var scaleSizes = []struct {
	w, h int
	load float64
}{
	{16, 16, 0.15},
	{32, 32, 0.10},
	{64, 64, 0.05},
}

// runScale measures the sharded engine against the sequential one on the
// large meshes and writes bench/SCALE_<date>.json. Without -scale-gate the
// study is informational (exit 0 regardless of speedup); with it, any point
// of ≥ 1024 nodes that runs ≥ 2 effective shards slower than sequential
// fails the run — the CI guard for the large-mesh sharding regression.
// Degenerate points (one effective shard, e.g. on a single-core host) never
// report a speedup and never gate: the record documents the degeneracy
// instead of inventing a comparison.
func runScale(outDir, label, designsCS, pattern string, seed int64, warmup, cycles uint64, shards int, noWrite, gate bool) {
	design := dxbar.DesignDXbar
	if designsCS != "" {
		design = dxbar.Design(strings.TrimSpace(strings.Split(designsCS, ",")[0]))
	}
	if shards == 0 {
		shards = dxbar.AutoShards
	}

	rec := ScaleFile{
		Schema:     ScaleSchema,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Label:      label,
		GoVersion:  runtime.Version(),
		Env:        runstore.Stamp(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Design:     string(design),
		Pattern:    pattern,
	}
	fmt.Printf("dxbar-bench -scale: design=%s %s warmup=%d cycles=%d cpus=%d shards=%d\n",
		design, pattern, warmup, cycles, rec.NumCPU, shards)

	gateFailed := false
	for _, size := range scaleSizes {
		cfg := BenchConfig{
			Width: size.w, Height: size.h, Pattern: pattern, Load: size.load,
			Seed: seed, Warmup: warmup, Cycles: cycles, FlitsPkt: 1,
		}
		seq, err := measure(design, cfg)
		if err != nil {
			fatal(err)
		}
		cfg.Shards = shards
		sh, err := measure(design, cfg)
		if err != nil {
			fatal(err)
		}
		p := ScalePoint{
			Width: size.w, Height: size.h, Load: size.load,
			ShardsRequested:    shards,
			ShardsEffective:    sim.ResolveShards(shards, size.w, size.h),
			NsPerCycleSeq:      seq.NsPerCycle,
			NsPerCycleSharded:  sh.NsPerCycle,
			AllocsPerCycleSeq:  seq.AllocsPerCycle,
			AllocsPerCycleShrd: sh.AllocsPerCycle,
		}
		if p.ShardsEffective > 1 {
			s := seq.NsPerCycle / sh.NsPerCycle
			p.Speedup = &s
		}
		rec.Points = append(rec.Points, p)

		if p.Speedup != nil {
			fmt.Printf("%2dx%-2d load %.2f  seq %9.1f ns/cycle  sharded(%d/%d) %9.1f ns/cycle  speedup %.2fx\n",
				p.Width, p.Height, p.Load, p.NsPerCycleSeq, p.ShardsEffective, p.ShardsRequested,
				p.NsPerCycleSharded, *p.Speedup)
			if gate && size.w*size.h >= 1024 && *p.Speedup < 1.2 {
				logger.Error("SCALE GATE: sharded engine not meaningfully faster than sequential",
					"mesh", fmt.Sprintf("%dx%d", p.Width, p.Height),
					"shards", p.ShardsEffective, "speedup", *p.Speedup, "want", ">= 1.2x")
				gateFailed = true
			}
		} else {
			fmt.Printf("%2dx%-2d load %.2f  seq %9.1f ns/cycle  sharded %9.1f ns/cycle  speedup n/a\n",
				p.Width, p.Height, p.Load, p.NsPerCycleSeq, p.NsPerCycleSharded)
			logger.Warn("shards request resolved to 1 effective shard on this host; "+
				"the \"sharded\" column is the sequential engine and no speedup is recorded",
				"requested", shards, "cpus", rec.NumCPU, "gomaxprocs", rec.GOMAXPROCS)
		}
	}

	if !noWrite {
		path := filepath.Join(outDir, "SCALE_"+time.Now().UTC().Format("2006-01-02")+".json")
		if err := writeRecord(path, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", path)
	}
	if gateFailed {
		os.Exit(1)
	}
}
