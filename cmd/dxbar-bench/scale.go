package main

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dxbar"
)

// ScalePoint is one mesh-size measurement of the scaling study: the same
// workload timed on the sequential engine and on the sharded engine.
type ScalePoint struct {
	Width  int `json:"width"`
	Height int `json:"height"`
	// Shards is the effective shard count of the sharded measurement.
	Shards             int     `json:"shards"`
	NsPerCycleSeq      float64 `json:"ns_per_cycle_seq"`
	NsPerCycleSharded  float64 `json:"ns_per_cycle_sharded"`
	AllocsPerCycleSeq  float64 `json:"allocs_per_cycle_seq"`
	AllocsPerCycleShrd float64 `json:"allocs_per_cycle_sharded"`
	// Speedup is sequential ns/cycle over sharded ns/cycle (>1 = faster).
	Speedup float64 `json:"speedup"`
}

// ScaleFile is the on-disk scaling record (bench/SCALE_<date>.json — a name
// distinct from BENCH_* so the regression baseline glob never picks it up).
type ScaleFile struct {
	Schema    int    `json:"schema"`
	Date      string `json:"date"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"go"`
	// NumCPU and GOMAXPROCS record the host parallelism the speedups were
	// measured under — a speedup is meaningless without them.
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Design     string       `json:"design"`
	Pattern    string       `json:"pattern"`
	Load       float64      `json:"load"`
	Points     []ScalePoint `json:"points"`
}

// scaleSizes are the large-mesh points of the scaling study — the sizes
// where the router phase is wide enough for sharding to pay off.
var scaleSizes = [][2]int{{16, 16}, {32, 32}}

// runScale measures the sharded engine against the sequential one on the
// large meshes and writes bench/SCALE_<date>.json. The study is
// informational (exit 0 regardless of speedup): on a single-core host the
// sharded engine cannot beat sequential, and the record says so via the
// recorded NumCPU/GOMAXPROCS.
func runScale(outDir, label, designsCS string, load float64, pattern string, seed int64, warmup, cycles uint64, shards int, noWrite bool) {
	design := dxbar.DesignDXbar
	if designsCS != "" {
		design = dxbar.Design(strings.TrimSpace(strings.Split(designsCS, ",")[0]))
	}
	if shards == 0 {
		shards = dxbar.AutoShards
	}

	rec := ScaleFile{
		Schema:     Schema,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Label:      label,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Design:     string(design),
		Pattern:    pattern,
		Load:       load,
	}
	fmt.Printf("dxbar-bench -scale: design=%s %s load=%.2f warmup=%d cycles=%d cpus=%d\n",
		design, pattern, load, warmup, cycles, rec.NumCPU)

	for _, size := range scaleSizes {
		cfg := BenchConfig{
			Width: size[0], Height: size[1], Pattern: pattern, Load: load,
			Seed: seed, Warmup: warmup, Cycles: cycles, FlitsPkt: 1,
		}
		seq, err := measure(design, cfg)
		if err != nil {
			fatal(err)
		}
		cfg.Shards = shards
		sh, err := measure(design, cfg)
		if err != nil {
			fatal(err)
		}
		p := ScalePoint{
			Width: size[0], Height: size[1],
			Shards:             effectiveShards(shards, size[0]),
			NsPerCycleSeq:      seq.NsPerCycle,
			NsPerCycleSharded:  sh.NsPerCycle,
			AllocsPerCycleSeq:  seq.AllocsPerCycle,
			AllocsPerCycleShrd: sh.AllocsPerCycle,
			Speedup:            seq.NsPerCycle / sh.NsPerCycle,
		}
		rec.Points = append(rec.Points, p)
		fmt.Printf("%2dx%-2d seq %9.1f ns/cycle  sharded(%d) %9.1f ns/cycle  speedup %.2fx\n",
			p.Width, p.Height, p.NsPerCycleSeq, p.Shards, p.NsPerCycleSharded, p.Speedup)
	}

	if noWrite {
		return
	}
	path := filepath.Join(outDir, "SCALE_"+time.Now().UTC().Format("2006-01-02")+".json")
	if err := writeRecord(path, rec); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", path)
}

// effectiveShards mirrors sim.ResolveShards for reporting.
func effectiveShards(n, width int) int {
	if n == 0 || n == 1 {
		return 1
	}
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return n
}
