// Command dxbar-bench is the benchmark-regression harness for the
// simulation engine. It measures the steady-state cost of sim.Engine.Step
// for every router design on the uniform-random 8×8 mesh (the workload every
// paper figure sweeps), emits a BENCH_<date>.json record, and compares it
// against the previous record with a configurable tolerance.
//
// Metrics per design:
//
//   - ns/cycle: wall-clock nanoseconds per simulated network cycle
//   - allocs/cycle and bytes/cycle: heap churn per cycle (0 after the
//     engine warmup in the pooled engine)
//   - flits/sec: delivered-flit throughput (simulation speed, not network
//     throughput)
//
// Usage:
//
//	dxbar-bench                     # measure, write bench/BENCH_<date>.json,
//	                                # compare against the latest earlier record
//	dxbar-bench -quick              # 1-iteration smoke (CI)
//	dxbar-bench -baseline f.json    # compare against a specific record
//	dxbar-bench -tolerance 0.15     # allow 15% ns/cycle regression
//	dxbar-bench -shards 4           # run the sharded engine (see Config.Shards)
//	dxbar-bench -scale              # sharded-engine scaling study: sequential
//	                                # vs sharded ns/cycle on 16×16, 32×32 and
//	                                # 64×64, written to bench/SCALE_<date>.json
//	dxbar-bench -scale -scale-gate  # same, failing if sharding loses to
//	                                # sequential on a >=1024-node mesh with
//	                                # >=2 effective shards
//
// The exit status is 1 when any design regresses beyond the tolerance, so
// the tool can gate CI. When the baseline was measured under a different
// workload (mesh, pattern, load, seed or shard count), the comparison is
// printed for information but never fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"dxbar"
	"dxbar/internal/diag"
	"dxbar/internal/runstore"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// logger is the tool-wide structured logger, configured from -v and
// -log-format before anything can fail.
var logger *slog.Logger

// Schema is the JSON schema version of the bench record.
const Schema = 1

// DesignBench is one design's measured steady-state cost.
type DesignBench struct {
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	FlitsPerSec    float64 `json:"flits_per_sec"`
	Cycles         uint64  `json:"cycles"`
}

// BenchConfig echoes the measurement workload.
type BenchConfig struct {
	Width    int     `json:"width"`
	Height   int     `json:"height"`
	Pattern  string  `json:"pattern"`
	Load     float64 `json:"load"`
	Seed     int64   `json:"seed"`
	Warmup   uint64  `json:"warmup_cycles"`
	Cycles   uint64  `json:"measure_cycles"`
	FlitsPkt int     `json:"flits_per_packet"`
	Shards   int     `json:"shards,omitempty"`
}

// sameWorkload reports whether two records measured the same thing, so a
// regression comparison is meaningful. Warmup and cycle counts are excluded:
// every metric is normalized per cycle.
func sameWorkload(a, b BenchConfig) bool {
	a.Warmup, a.Cycles = 0, 0
	b.Warmup, b.Cycles = 0, 0
	return a == b
}

// BenchFile is the on-disk record.
type BenchFile struct {
	Schema    int                    `json:"schema"`
	Date      string                 `json:"date"`
	Label     string                 `json:"label,omitempty"`
	GoVersion string                 `json:"go"`
	Env       runstore.EnvStamp      `json:"env"`
	Config    BenchConfig            `json:"config"`
	Designs   map[string]DesignBench `json:"designs"`
}

func main() {
	var (
		outDir    = flag.String("out", "bench", "directory for BENCH_<date>.json records")
		label     = flag.String("label", "", "free-form label stored in the record")
		suffix    = flag.String("suffix", "", "suffix appended to the record file name (BENCH_<date><suffix>.json)")
		designsCS = flag.String("designs", "", "comma-separated designs (default: all)")
		load      = flag.Float64("load", 0.3, "offered load (flits/node/cycle)")
		pattern   = flag.String("pattern", "UR", "traffic pattern")
		width     = flag.Int("width", 8, "mesh width")
		height    = flag.Int("height", 8, "mesh height")
		seed      = flag.Int64("seed", 42, "traffic seed")
		warmup    = flag.Uint64("warmup", 2000, "warmup cycles before timing")
		cycles    = flag.Uint64("cycles", 50000, "timed cycles per design")
		quick     = flag.Bool("quick", false, "smoke mode: 2000 timed cycles")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/cycle regression before failing")
		baseline  = flag.String("baseline", "", "explicit baseline record to compare against (default: latest earlier record in -out)")
		noWrite   = flag.Bool("no-write", false, "measure and compare without writing a record")
		shards    = flag.Int("shards", 0, "router-phase shards (0/1 sequential, -1 = GOMAXPROCS)")
		scale     = flag.Bool("scale", false, "sharded-engine scaling study (16x16, 32x32 and 64x64 at per-size below-saturation loads, sequential vs -shards) instead of the regression suite")
		scaleGate = flag.Bool("scale-gate", false, "with -scale: exit 1 if any >=1024-node point with >=2 effective shards falls below 1.2x speedup over sequential")

		verbose   = flag.Bool("v", false, "verbose (debug-level) logging")
		logFormat = flag.String("log-format", diag.LogText, "structured log format on stderr: text | json")
	)
	flag.Parse()

	var err error
	logger, err = diag.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fatal(err)
	}

	if *quick {
		*cycles = 2000
	}

	if *scale {
		// The study picks its own per-size loads (see scaleSizes); -load is
		// ignored here because one global load is either above saturation on
		// the big meshes or idle on the small ones.
		runScale(*outDir, *label, *designsCS, *pattern, *seed, *warmup, *cycles, *shards, *noWrite, *scaleGate)
		return
	}

	designs := dxbar.AllDesigns
	if *designsCS != "" {
		designs = nil
		for _, name := range strings.Split(*designsCS, ",") {
			designs = append(designs, dxbar.Design(strings.TrimSpace(name)))
		}
	}

	cfg := BenchConfig{
		Width: *width, Height: *height, Pattern: *pattern, Load: *load,
		Seed: *seed, Warmup: *warmup, Cycles: *cycles, FlitsPkt: 1,
		Shards: *shards,
	}
	rec := BenchFile{
		Schema:    Schema,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Label:     *label,
		GoVersion: runtime.Version(),
		Env:       runstore.Stamp(),
		Config:    cfg,
		Designs:   make(map[string]DesignBench, len(designs)),
	}

	fmt.Printf("dxbar-bench: %dx%d %s load=%.2f warmup=%d cycles=%d\n",
		cfg.Width, cfg.Height, cfg.Pattern, cfg.Load, cfg.Warmup, cfg.Cycles)
	for _, d := range designs {
		db, err := measure(d, cfg)
		if err != nil {
			fatal(err)
		}
		rec.Designs[string(d)] = db
		fmt.Printf("%-10s %9.1f ns/cycle  %7.2f allocs/cycle  %9.0f B/cycle  %11.0f flits/s\n",
			d, db.NsPerCycle, db.AllocsPerCycle, db.BytesPerCycle, db.FlitsPerSec)
	}

	name := "BENCH_" + time.Now().UTC().Format("2006-01-02") + *suffix + ".json"
	path := filepath.Join(*outDir, name)

	prev, prevPath, err := loadBaseline(*baseline, *outDir, name)
	if err != nil {
		fatal(err)
	}

	if !*noWrite {
		if err := writeRecord(path, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", path)
	}

	if prev == nil {
		fmt.Println("no earlier record found — nothing to compare against")
		return
	}
	fmt.Printf("comparing against %s (%s)\n\n", prevPath, prev.Label)
	enforce := sameWorkload(prev.Config, rec.Config)
	if !enforce {
		fmt.Println("baseline measured a different workload — comparison is informational only")
	}
	if !compare(*prev, rec, *tolerance) && enforce {
		os.Exit(1)
	}
}

// measure builds one network, warms it into steady state and times the
// engine stepping. Allocation counts come from runtime.MemStats deltas (the
// tool is single-threaded, so Mallocs deltas are exact).
func measure(d dxbar.Design, cfg BenchConfig) (DesignBench, error) {
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return DesignBench{}, err
	}
	pat, err := traffic.New(cfg.Pattern, mesh)
	if err != nil {
		return DesignBench{}, err
	}
	bern, err := traffic.NewBernoulli(mesh, pat, cfg.Load, cfg.FlitsPkt, cfg.Seed)
	if err != nil {
		return DesignBench{}, err
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, math.MaxUint64)
	net, err := dxbar.NewNetwork(dxbar.NetworkOptions{
		Design:  d,
		Routing: "DOR",
		Mesh:    mesh,
		Source:  &sim.SourceAdapter{B: bern},
		Stats:   coll,
		Shards:  cfg.Shards,
	})
	if err != nil {
		return DesignBench{}, err
	}
	eng := net.Engine
	eng.Run(cfg.Warmup)

	packets0 := coll.Results().Packets
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	eng.Run(cfg.Cycles)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	packets := coll.Results().Packets - packets0

	n := float64(cfg.Cycles)
	return DesignBench{
		NsPerCycle:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerCycle: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerCycle:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		FlitsPerSec:    float64(packets*uint64(cfg.FlitsPkt)) / elapsed.Seconds(),
		Cycles:         cfg.Cycles,
	}, nil
}

// loadBaseline resolves the record to compare against: an explicit path, or
// the lexicographically-latest BENCH_*.json in dir other than the one about
// to be written (file names embed the date, so name order is date order).
func loadBaseline(explicit, dir, exclude string) (*BenchFile, string, error) {
	path := explicit
	if path == "" {
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			return nil, "", err
		}
		sort.Strings(matches)
		for i := len(matches) - 1; i >= 0; i-- {
			if filepath.Base(matches[i]) != exclude {
				path = matches[i]
				break
			}
		}
		if path == "" {
			return nil, "", nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var rec BenchFile
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, "", fmt.Errorf("dxbar-bench: parsing %s: %w", path, err)
	}
	return &rec, path, nil
}

func writeRecord(path string, rec any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare prints a per-design delta table and reports whether everything is
// within tolerance. ns/cycle may regress by the fractional tolerance;
// allocs/cycle may not grow beyond tolerance (with a small absolute floor so
// a 0→0.01 jitter does not fail).
func compare(old, cur BenchFile, tol float64) bool {
	names := make([]string, 0, len(cur.Designs))
	for name := range cur.Designs {
		if _, ok := old.Designs[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		o, c := old.Designs[name], cur.Designs[name]
		nsDelta := (c.NsPerCycle - o.NsPerCycle) / o.NsPerCycle
		status := "ok"
		if c.NsPerCycle > o.NsPerCycle*(1+tol) {
			status = "REGRESSION(ns)"
			ok = false
		}
		if c.AllocsPerCycle > o.AllocsPerCycle*(1+tol)+0.05 {
			status = "REGRESSION(allocs)"
			ok = false
		}
		fmt.Printf("%-10s ns/cycle %9.1f -> %9.1f (%+6.1f%%)  allocs/cycle %7.2f -> %7.2f  %s\n",
			name, o.NsPerCycle, c.NsPerCycle, nsDelta*100, o.AllocsPerCycle, c.AllocsPerCycle, status)
	}
	if len(names) == 0 {
		fmt.Println("no overlapping designs to compare")
	}
	return ok
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "dxbar-bench:", err)
	}
	os.Exit(1)
}
