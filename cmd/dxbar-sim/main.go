// Command dxbar-sim runs one open-loop synthetic-traffic simulation and
// prints the measured metrics.
//
// Example:
//
//	dxbar-sim -design dxbar -routing WF -pattern NUR -load 0.4
//	dxbar-sim -design dxbar -load 0.3 -faults 0.5   # Fig. 11/12 style run
package main

import (
	"flag"
	"fmt"
	"os"

	"dxbar"
)

func main() {
	var (
		design  = flag.String("design", "dxbar", "router design: dxbar | unified | flitbless | scarab | buffered4 | buffered8")
		routing = flag.String("routing", "DOR", "routing algorithm: DOR | WF")
		pattern = flag.String("pattern", "UR", "traffic pattern: UR NUR BR BF CP MT PS NB TOR")
		load    = flag.Float64("load", 0.3, "offered load in flits/node/cycle (fraction of capacity)")
		width   = flag.Int("width", 8, "mesh width")
		height  = flag.Int("height", 8, "mesh height")
		warmup  = flag.Uint64("warmup", 2000, "warmup cycles")
		measure = flag.Uint64("measure", 8000, "measurement cycles")
		seed    = flag.Int64("seed", 42, "random seed")
		flits   = flag.Int("flits", 1, "flits per packet")
		faults  = flag.Float64("faults", 0, "fraction of routers with one failed crossbar (dxbar/unified only)")
		gran    = flag.String("fault-granularity", "crossbar", "crossbar | crosspoint")
		heatmap = flag.Bool("heatmap", false, "print an ASCII link-utilization heatmap")
	)
	flag.Parse()

	res, err := dxbar.Run(dxbar.Config{
		Design:         dxbar.Design(*design),
		Routing:        *routing,
		Pattern:        *pattern,
		Load:           *load,
		Width:          *width,
		Height:         *height,
		WarmupCycles:   *warmup,
		MeasureCycles:  *measure,
		Seed:           *seed,
		FlitsPerPacket: *flits,
		FaultFraction:  *faults,
		FaultGranularity: func() string {
			if *faults > 0 {
				return *gran
			}
			return ""
		}(),
		TrackUtilization: *heatmap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dxbar-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("design          %s (%s)\n", res.Design, res.Routing)
	fmt.Printf("pattern         %s @ offered %.3f\n", res.Pattern, res.Load)
	fmt.Printf("offered load    %.4f flits/node/cycle\n", res.OfferedLoad)
	fmt.Printf("accepted load   %.4f flits/node/cycle\n", res.AcceptedLoad)
	fmt.Printf("packets         %d\n", res.Packets)
	fmt.Printf("avg latency     %.2f cycles (max %d)\n", res.AvgLatency, res.MaxLatency)
	fmt.Printf("avg hops        %.2f\n", res.AvgHops)
	fmt.Printf("avg energy      %.4f nJ/packet (total %.2f nJ)\n", res.AvgEnergyNJ, res.TotalEnergyNJ)
	fmt.Printf("deflections     %.3f /packet\n", res.DeflectionsPerPacket)
	fmt.Printf("retransmits     %.3f /packet\n", res.RetransmitsPerPacket)
	fmt.Printf("buffering prob  %.4f\n", res.BufferingProbability)
	fmt.Printf("dropped flits   %d\n", res.DroppedFlits)
	fmt.Printf("total power     %.1f mW (buffers %.0f%%)\n", res.Power.TotalMW, res.Power.BufferShareOfTot*100)
	if *heatmap {
		fmt.Println()
		fmt.Print(dxbar.Heatmap(res))
	}
}
