// Command dxbar-sim runs one open-loop synthetic-traffic simulation and
// prints the measured metrics.
//
// Example:
//
//	dxbar-sim -design dxbar -routing WF -pattern NUR -load 0.4
//	dxbar-sim -design dxbar -load 0.3 -faults 0.5   # Fig. 11/12 style run
//	dxbar-sim -load 0.45 -sample-interval 200 -out results/ -svg
//	dxbar-sim -measure 2000000 -shards -1 -http :8080   # watch /metrics live
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"dxbar"
	"dxbar/internal/diag"
	"dxbar/internal/metrics"
	"dxbar/internal/report"
)

// logger is the tool-wide structured logger, configured from -v and
// -log-format before anything can fail.
var logger *slog.Logger

func main() {
	var (
		design   = flag.String("design", "dxbar", "router design: dxbar | unified | flitbless | scarab | buffered4 | buffered8")
		routing  = flag.String("routing", "DOR", "routing algorithm: DOR | WF")
		pattern  = flag.String("pattern", "UR", "traffic pattern: UR NUR BR BF CP MT PS NB TOR")
		load     = flag.Float64("load", 0.3, "offered load in flits/node/cycle (fraction of capacity)")
		width    = flag.Int("width", 8, "mesh width")
		height   = flag.Int("height", 8, "mesh height")
		warmup   = flag.Uint64("warmup", 2000, "warmup cycles")
		measure  = flag.Uint64("measure", 8000, "measurement cycles")
		seed     = flag.Int64("seed", 42, "random seed")
		flits    = flag.Int("flits", 1, "flits per packet")
		faults   = flag.Float64("faults", 0, "fraction of routers with one failed crossbar (dxbar/unified only)")
		gran     = flag.String("fault-granularity", "crossbar", "crossbar | crosspoint")
		heatmap  = flag.Bool("heatmap", false, "print an ASCII link-utilization heatmap")
		interval = flag.Uint64("sample-interval", 0, "time-series sampling interval in cycles (0 disables)")
		outDir   = flag.String("out", "", "directory for NDJSON/CSV export of the latency histogram and time series")
		svg      = flag.Bool("svg", false, "also write a latency-CDF and time-series SVG to -out")
		trace    = flag.Int("trace", 0, "flight-recorder ring capacity in events (0 disables runtime event tracing)")
		traceOut = flag.String("trace-out", "", "write the recorded events as Chrome trace-event JSON to this file (load at ui.perfetto.dev; requires -trace)")
		traceEv  = flag.String("trace-events", "", "comma-separated event kinds to record (default all; e.g. inject,buffered,eject)")
		shards   = flag.Int("shards", 0, "parallel router-phase shards (0/1 sequential, -1 auto-sizes to CPUs; bit-identical results)")
		httpAddr = flag.String("http", "", "serve live telemetry on this address (dashboard at /, /events SSE, /metrics, /healthz, /progress, /debug/pprof), e.g. :8080")
		profile  = flag.Bool("shard-profile", false, "print the per-shard execution profile after the run (requires -shards > 1)")

		ledgerDir   = flag.String("ledger", "", "run-ledger directory: archive the completed run's full Result under its content key (see dxbar-report)")
		ledgerReuse = flag.Bool("ledger-reuse", false, "serve the run from an identical archived record in -ledger instead of re-simulating, when one exists")

		ckptInterval = flag.Uint64("checkpoint-interval", 0, "write a checkpoint every N cycles into -checkpoint-dir (0 disables)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for checkpoint files (required with -checkpoint-interval)")
		ckptKeep     = flag.Int("checkpoint-keep", 0, "checkpoint files to retain (0 = default 3)")
		resume       = flag.String("resume", "", "resume a checkpointed run: a ckpt-*.dxsn file, or a directory (newest checkpoint wins); other config flags are ignored")
		rewind       = flag.String("rewind", "", "re-run a window from this checkpoint file with the flight recorder widened to every event kind; combine with -trace to size the ring")
		rewindWindow = flag.Uint64("rewind-window", 512, "cycles to re-run after -rewind")

		verbose    = flag.Bool("v", false, "verbose (debug-level) logging")
		logFormat  = flag.String("log-format", diag.LogText, "structured log format on stderr: text | json")
		diagDir    = flag.String("diag-dir", "", "directory for post-mortem diagnostic bundles (anomaly, SIGQUIT, panic); empty disables bundles (detectors still run)")
		diagStall  = flag.Uint64("diag-stall", 0, "stall-watchdog threshold in cycles without an ejection while flits are in flight (0 = default)")
		diagMaxAge = flag.Uint64("diag-max-age", 0, "starvation threshold: max in-flight flit age in cycles (0 = default)")
		diagWindow = flag.Uint64("diag-window", 0, "anomaly-detector window in cycles (0 = default)")
	)
	flag.Parse()

	var err error
	logger, err = diag.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fatal(err)
	}
	defer diag.InstallSignalHandlers(logger)()

	var kinds []string
	if *traceEv != "" {
		kinds = []string{*traceEv}
	}

	// Live telemetry: the engine publishes into the registry while running;
	// the server reads it without ever touching simulation state, so results
	// are bit-identical with -http on or off.
	var (
		reg  *metrics.Registry
		prog *metrics.Progress
	)
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
		prog = metrics.NewProgress("cycles", *warmup+*measure)
		srv, err := metrics.StartServer(*httpAddr, reg, prog)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logger.Info("telemetry server up", "url", fmt.Sprintf("http://%s/metrics", srv.Addr()))
	}
	if *diagDir != "" && reg == nil {
		// Bundles include a metrics snapshot; give the run a registry even
		// when no live telemetry server was requested.
		reg = metrics.NewRegistry()
	}
	if *diagDir != "" {
		// A crash mid-run still leaves a post-mortem behind.
		defer func() {
			if r := recover(); r != nil {
				if path, err := diag.WritePanicBundle(*diagDir, reg, r); err == nil {
					logger.Error("panic bundle written", "dir", path)
				}
				panic(r)
			}
		}()
	}

	// The diag config a run gets regardless of how it starts (fresh, resumed
	// or rewound): saved checkpoints scrub live handles, so resume/rewind
	// reattach this process's logger, registry and thresholds.
	diagCfg := &diag.Config{
		StallCycles: *diagStall,
		MaxFlitAge:  *diagMaxAge,
		Window:      *diagWindow,
		Logger:      logger,
		Registry:    reg,
	}

	var res dxbar.Result
	switch {
	case *resume != "" && *rewind != "":
		fatal(fmt.Errorf("-resume and -rewind are mutually exclusive"))
	case *resume != "":
		path := *resume
		if fi, statErr := os.Stat(path); statErr == nil && fi.IsDir() {
			path, err = dxbar.LatestCheckpoint(path)
			if err != nil {
				fatal(err)
			}
		}
		logger.Info("resuming from checkpoint", "path", path)
		res, err = dxbar.ResumeWith(path, func(c *dxbar.Config) {
			c.Metrics, c.Progress = reg, prog
			c.DiagDir = *diagDir
			c.Diag = diagCfg
		})
	case *rewind != "":
		logger.Info("rewinding from checkpoint", "path", *rewind, "window", *rewindWindow)
		res, err = dxbar.Rewind(*rewind, *rewindWindow, *trace)
	default:
		res, err = dxbar.Run(dxbar.Config{
			Design:         dxbar.Design(*design),
			Routing:        *routing,
			Pattern:        *pattern,
			Load:           *load,
			Width:          *width,
			Height:         *height,
			WarmupCycles:   *warmup,
			MeasureCycles:  *measure,
			Seed:           *seed,
			FlitsPerPacket: *flits,
			FaultFraction:  *faults,
			FaultGranularity: func() string {
				if *faults > 0 {
					return *gran
				}
				return ""
			}(),
			TrackUtilization:   *heatmap,
			SampleInterval:     *interval,
			EventTrace:         *trace,
			EventKinds:         kinds,
			Shards:             *shards,
			Metrics:            reg,
			Progress:           prog,
			ShardProfile:       *profile,
			DiagDir:            *diagDir,
			Diag:               diagCfg,
			CheckpointInterval: *ckptInterval,
			CheckpointDir:      *ckptDir,
			CheckpointKeep:     *ckptKeep,
			LedgerDir:          *ledgerDir,
			LedgerReuse:        *ledgerReuse,
		})
	}
	if err != nil {
		fatal(err)
	}
	if res.Interrupted {
		logger.Warn("run interrupted; reporting partial results", "reason", "signal")
	}

	fmt.Printf("design          %s (%s)\n", res.Design, res.Routing)
	fmt.Printf("pattern         %s @ offered %.3f\n", res.Pattern, res.Load)
	fmt.Printf("offered load    %.4f flits/node/cycle\n", res.OfferedLoad)
	fmt.Printf("accepted load   %.4f flits/node/cycle\n", res.AcceptedLoad)
	fmt.Printf("packets         %d\n", res.Packets)
	fmt.Printf("avg latency     %.2f cycles (max %d)\n", res.AvgLatency, res.MaxLatency)
	fmt.Printf("latency tail    p50 %d / p90 %d / p99 %d cycles\n", res.P50Latency, res.P90Latency, res.P99Latency)
	label := fmt.Sprintf("%s %s", res.Design, res.Routing)
	row := dxbar.LatencyRowFor(label, res)
	if row.Truncated() {
		fmt.Printf("in flight       %d packets — latency tail truncated (saturated run)\n", res.InFlightPackets)
	} else {
		fmt.Printf("in flight       %d packets\n", res.InFlightPackets)
	}
	fmt.Printf("avg hops        %.2f\n", res.AvgHops)
	fmt.Printf("avg energy      %.4f nJ/packet (total %.2f nJ)\n", res.AvgEnergyNJ, res.TotalEnergyNJ)
	fmt.Printf("deflections     %.3f /packet\n", res.DeflectionsPerPacket)
	fmt.Printf("retransmits     %.3f /packet\n", res.RetransmitsPerPacket)
	fmt.Printf("buffering prob  %.4f\n", res.BufferingProbability)
	fmt.Printf("dropped flits   %d\n", res.DroppedFlits)
	fmt.Printf("total power     %.1f mW (buffers %.0f%%)\n", res.Power.TotalMW, res.Power.BufferShareOfTot*100)
	if len(res.Anomalies) > 0 {
		fmt.Println()
		fmt.Print(dxbar.AnomaliesText(res))
	}
	if *trace > 0 {
		fmt.Printf("trace events    %d recorded (%d overwritten, ring %d)\n",
			res.EventsRecorded, res.EventsOverwritten, *trace)
	}
	if *profile {
		fmt.Println()
		fmt.Print(dxbar.ShardProfileText(fmt.Sprintf("Shard execution profile, %s", label), res))
	}
	if *heatmap {
		fmt.Println()
		fmt.Print(dxbar.Heatmap(res))
	}
	if *outDir != "" {
		export(*outDir, label, res, *svg)
	}
	if *traceOut != "" {
		if *trace == 0 {
			fatal(fmt.Errorf("-trace-out requires -trace > 0"))
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := dxbar.WriteChromeTrace(f, dxbar.TraceRecordFor(label, res)); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written   %s (open at ui.perfetto.dev)\n", *traceOut)
	}
}

// export writes the structured observability files: the latency histogram
// and (when sampling was enabled) the time series, each as NDJSON and CSV,
// plus the SVG renderings with -svg.
func export(dir, label string, res dxbar.Result, svg bool) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	hists := []report.HistogramRecord{dxbar.HistogramRecordFor(label, res)}
	writeFile(dir, "latency.ndjson", func(f *os.File) error { return dxbar.WriteHistogramsNDJSON(f, hists) })
	writeFile(dir, "latency.csv", func(f *os.File) error { return dxbar.WriteHistogramsCSV(f, hists) })
	if res.SampleInterval > 0 {
		series := []report.TimeSeriesRecord{dxbar.TimeSeriesRecordFor(label, res)}
		writeFile(dir, "timeseries.ndjson", func(f *os.File) error { return dxbar.WriteTimeSeriesNDJSON(f, series) })
		writeFile(dir, "timeseries.csv", func(f *os.File) error { return dxbar.WriteTimeSeriesCSV(f, series) })
	}
	if svg {
		writeFile(dir, "latency_cdf.svg", func(f *os.File) error {
			_, err := f.WriteString(dxbar.LatencyCDFSVG("Latency CDF, "+label, []string{label}, []dxbar.Result{res}))
			return err
		})
		if res.SampleInterval > 0 {
			writeFile(dir, "timeseries.svg", func(f *os.File) error {
				_, err := f.WriteString(dxbar.TimeSeriesSVG("Run time series, "+label, res))
				return err
			})
		}
	}
}

func writeFile(dir, name string, fill func(*os.File) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "dxbar-sim:", err)
	}
	os.Exit(1)
}
