// Command dxbar-splash runs the closed-loop SPLASH-2 substitute workloads
// (Figs. 9 and 10) and can record/replay traffic traces.
//
// Examples:
//
//	dxbar-splash -bench Ocean -design dxbar
//	dxbar-splash -bench all                         # full design matrix
//	dxbar-splash -bench FFT -record fft.trc         # capture a trace
//	dxbar-splash -replay fft.trc -design flitbless  # replay it open-loop
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"dxbar"
	"dxbar/internal/diag"
)

// logger is the tool-wide structured logger, configured from -v and
// -log-format before anything can fail.
var logger *slog.Logger

func main() {
	var (
		bench   = flag.String("bench", "all", "benchmark name (see -list) or 'all'")
		design  = flag.String("design", "", "router design; empty = full design matrix")
		routing = flag.String("routing", "DOR", "routing algorithm: DOR | WF")
		seed    = flag.Int64("seed", 42, "random seed")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		record  = flag.String("record", "", "record the workload's trace to this file")
		replay  = flag.String("replay", "", "replay a recorded trace instead of a benchmark")
		detail  = flag.Bool("detailed", false, "use real set-associative L1/L2 caches instead of profile hit rates")
		ledger  = flag.String("ledger", "", "run-ledger directory: archive each completed run's full result under its content key (see dxbar-report)")

		verbose   = flag.Bool("v", false, "verbose (debug-level) logging")
		logFormat = flag.String("log-format", diag.LogText, "structured log format on stderr: text | json")
	)
	flag.Parse()

	var err error
	logger, err = diag.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, b := range dxbar.SplashBenchmarks() {
			fmt.Println(b)
		}
		return
	}

	if *replay != "" {
		runReplay(*replay, *design, *routing)
		return
	}
	if *record != "" {
		runRecord(*bench, *seed, *record)
		return
	}

	benches := dxbar.SplashBenchmarks()
	if *bench != "all" {
		benches = []string{*bench}
	}
	designs := []dxbar.Design{dxbar.DesignFlitBless, dxbar.DesignSCARAB,
		dxbar.DesignBuffered4, dxbar.DesignBuffered8, dxbar.DesignDXbar, dxbar.DesignUnified}
	if *design != "" {
		designs = []dxbar.Design{dxbar.Design(*design)}
	}

	var led *dxbar.Ledger
	if *ledger != "" {
		led, err = dxbar.OpenLedger(*ledger)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%-10s %-10s %-4s %10s %10s %10s %8s %8s %12s\n",
		"benchmark", "design", "alg", "exec (cyc)", "packets", "lat (cyc)", "p50", "p99", "nJ/packet")
	for _, b := range benches {
		for _, d := range designs {
			cfg := dxbar.SplashConfig{
				Design: d, Routing: *routing, Benchmark: b, Seed: *seed,
				DetailedCaches: *detail,
			}
			res, err := dxbar.RunSplash(cfg)
			if err != nil {
				fatal(err)
			}
			if led != nil {
				if _, err := led.ArchiveSplash(cfg, res); err != nil {
					fatal(err)
				}
			}
			fmt.Printf("%-10s %-10s %-4s %10d %10d %10.1f %8d %8d %12.4f\n",
				b, d, res.Routing, res.ExecutionCycles, res.Packets, res.AvgLatency,
				res.P50Latency, res.P99Latency, res.AvgEnergyNJ)
		}
	}
}

func runRecord(bench string, seed int64, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := dxbar.RecordSplash(dxbar.SplashConfig{Benchmark: bench, Seed: seed}, f); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %s trace to %s\n", bench, path)
}

func runReplay(path, design, routing string) {
	if design == "" {
		design = string(dxbar.DesignDXbar)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := dxbar.RunTrace(dxbar.Design(design), routing, f, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replay on %s (%s): completed in %d cycles, %d packets, lat %.1f, %.4f nJ/packet\n",
		res.Design, res.Routing, res.CompletionCycles, res.Packets, res.AvgLatency, res.AvgEnergyNJ)
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "dxbar-splash:", err)
	}
	os.Exit(1)
}
