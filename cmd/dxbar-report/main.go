// Command dxbar-report is the cross-run regression analytics tool: it diffs
// two archived records — BENCH_*.json bench records, SCALE_*.json scaling
// records, or run-ledger records (dxbar.Config.LedgerDir) — and renders
// chronological trend tables over a directory of bench history. Output is
// markdown, suitable for a CI artifact or a PR comment.
//
// Usage:
//
//	dxbar-report old.json new.json    # diff two records (kinds sniffed;
//	                                  # bench↔bench, scale↔scale, ledger↔ledger)
//	dxbar-report -diff-latest bench/  # diff the two newest BENCH records
//	dxbar-report -trend bench/        # BENCH + SCALE trend tables
//	dxbar-report -noise 10 a b        # widen the wall-clock noise band to 10%
//	dxbar-report -out report.md ...   # write to a file instead of stdout
//
// Bench diffs classify wall-clock movement against the noise threshold;
// ledger-record diffs are exact (simulation Results are deterministic, so
// any delta is a real behavior change). The exit status is 0 even when
// regressions are found — the report is evidence, the reader is the gate;
// pass -fail-on-regression to gate CI on a clean bench diff instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dxbar/internal/report"
	"dxbar/internal/runstore"
)

func main() {
	var (
		trendDir   = flag.String("trend", "", "render trend tables over the BENCH_*.json / SCALE_*.json records in this directory")
		diffLatest = flag.String("diff-latest", "", "diff the two newest BENCH_*.json records in this directory")
		noise      = flag.Float64("noise", report.DefaultNoisePct, "wall-clock noise threshold in percent for bench diffs")
		outPath    = flag.String("out", "", "write the markdown report to this file (default stdout)")
		failRegr   = flag.Bool("fail-on-regression", false, "exit 1 when a bench diff finds a regression beyond the noise threshold")
	)
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	regressions := 0
	switch {
	case *trendDir != "":
		if err := writeTrend(out, *trendDir); err != nil {
			fatal(err)
		}
	case *diffLatest != "":
		n, err := diffLatestBench(out, *diffLatest, *noise)
		if err != nil {
			fatal(err)
		}
		regressions = n
	case flag.NArg() == 2:
		n, err := diffPaths(out, flag.Arg(0), flag.Arg(1), *noise)
		if err != nil {
			fatal(err)
		}
		regressions = n
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *failRegr && regressions > 0 {
		fmt.Fprintf(os.Stderr, "dxbar-report: %d regression(s) beyond the noise threshold\n", regressions)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dxbar-report:", err)
	os.Exit(1)
}

// diffPaths sniffs the two records' kinds and runs the matching diff,
// returning the number of classified regressions (bench diffs only; ledger
// diffs report changes without classifying).
func diffPaths(w io.Writer, oldPath, newPath string, noise float64) (int, error) {
	oldB, err := os.ReadFile(oldPath)
	if err != nil {
		return 0, err
	}
	newB, err := os.ReadFile(newPath)
	if err != nil {
		return 0, err
	}
	oldKind, newKind := report.RecordKind(oldB), report.RecordKind(newB)
	if oldKind == "" || newKind == "" {
		return 0, fmt.Errorf("unrecognized record (%s: %q, %s: %q); expected bench, scale, or ledger JSON",
			oldPath, oldKind, newPath, newKind)
	}
	if oldKind != newKind {
		return 0, fmt.Errorf("cannot diff a %s record against a %s record", oldKind, newKind)
	}
	switch oldKind {
	case "bench":
		oldR, err := report.ParseBenchRecord(oldB)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", oldPath, err)
		}
		newR, err := report.ParseBenchRecord(newB)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", newPath, err)
		}
		oldR.Path, newR.Path = oldPath, newPath
		d := report.DiffBench(oldR, newR, noise)
		return d.Regressions(), d.WriteMarkdown(w)
	case "scale":
		return 0, diffScale(w, oldB, newB, oldPath, newPath)
	default: // ledger
		return 0, diffLedger(w, oldB, newB, oldPath, newPath)
	}
}

// diffLedger compares two run-ledger records exactly.
func diffLedger(w io.Writer, oldB, newB []byte, oldPath, newPath string) error {
	oldRec, newRec := new(runstore.Record), new(runstore.Record)
	if err := json.Unmarshal(oldB, oldRec); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newB, newRec); err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	for path, rec := range map[string]*runstore.Record{oldPath: oldRec, newPath: newRec} {
		if rec.Kind != runstore.KindRun {
			return fmt.Errorf("%s: ledger record kind %q is not a simulation run", path, rec.Kind)
		}
	}
	oldM, err := report.FlattenResultMetrics(oldRec.Result)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newM, err := report.FlattenResultMetrics(newRec.Result)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	d := report.DiffRun(shortKey(oldRec.Key), shortKey(newRec.Key), oldM, newM)
	if err := d.WriteMarkdown(w); err != nil {
		return err
	}
	if oldRec.Key == newRec.Key && !d.Identical() {
		fmt.Fprintf(w, "\n**⚠ same content key, different Results** — determinism is broken "+
			"or the records were written by builds with different simulation behavior.\n")
	}
	fmt.Fprintf(w, "\nEnvironments: %s/%s %s → %s/%s %s\n",
		oldRec.Env.OS, oldRec.Env.Arch, oldRec.Env.Go,
		newRec.Env.OS, newRec.Env.Arch, newRec.Env.Go)
	return nil
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// diffScale renders both scale records' points side by side as a trend
// table (two records make a two-row-per-mesh trend).
func diffScale(w io.Writer, oldB, newB []byte, oldPath, newPath string) error {
	oldR, err := report.ParseScaleRecord(oldB)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newR, err := report.ParseScaleRecord(newB)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}
	oldR.Path, newR.Path = oldPath, newPath
	fmt.Fprintf(w, "## Scale diff: %s → %s\n\n", oldR.Date, newR.Date)
	return report.WriteTableMarkdown(w, report.ScaleTrendTable([]*report.ScaleRecord{oldR, newR}))
}

// diffLatestBench diffs the two newest bench records in dir (by the date
// stamp inside the record, not the filename).
func diffLatestBench(w io.Writer, dir string, noise float64) (int, error) {
	recs, err := loadBenchRecords(dir)
	if err != nil {
		return 0, err
	}
	if len(recs) < 2 {
		return 0, fmt.Errorf("%s holds %d bench record(s); need two to diff", dir, len(recs))
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Date < recs[j].Date })
	d := report.DiffBench(recs[len(recs)-2], recs[len(recs)-1], noise)
	return d.Regressions(), d.WriteMarkdown(w)
}

// writeTrend renders the chronological BENCH and SCALE trend tables for a
// bench-history directory.
func writeTrend(w io.Writer, dir string) error {
	benches, err := loadBenchRecords(dir)
	if err != nil {
		return err
	}
	scalePaths, err := filepath.Glob(filepath.Join(dir, "SCALE_*.json"))
	if err != nil {
		return err
	}
	var scales []*report.ScaleRecord
	for _, p := range scalePaths {
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		r, err := report.ParseScaleRecord(b)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		r.Path = p
		scales = append(scales, r)
	}
	if len(benches) == 0 && len(scales) == 0 {
		return fmt.Errorf("no BENCH_*.json or SCALE_*.json records in %s", dir)
	}

	fmt.Fprintf(w, "# Bench history: %s\n\n", dir)
	if len(benches) > 0 {
		if err := report.WriteTableMarkdown(w, report.BenchTrendTable(benches)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if len(scales) > 0 {
		if err := report.WriteTableMarkdown(w, report.ScaleTrendTable(scales)); err != nil {
			return err
		}
	}
	return nil
}

func loadBenchRecords(dir string) ([]*report.BenchRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var recs []*report.BenchRecord
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		r, err := report.ParseBenchRecord(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		r.Path = p
		recs = append(recs, r)
	}
	return recs, nil
}
