// Command dxbar-sweep regenerates the paper's evaluation figures and
// tables. Each figure is printed as an aligned text table and, with -out,
// written as CSV (and optionally SVG and Markdown) ready for plotting and
// reports.
//
// Example:
//
//	dxbar-sweep -fig 5 -quality full -out results/ -svg -md
//	dxbar-sweep -fig 5 -hist -out results/   # + per-point latency histograms
//	dxbar-sweep -fig all -quality quick
//	dxbar-sweep -fig table3
//	dxbar-sweep -fig all -quality full -http :8080   # live /metrics + /progress
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dxbar"
	"dxbar/internal/diag"
	"dxbar/internal/metrics"
	"dxbar/internal/report"
)

// logger is the tool-wide structured logger, configured from -v and
// -log-format before anything can fail.
var logger *slog.Logger

func main() {
	var (
		figFlag     = flag.String("fig", "all", "figure to regenerate: 5 6 7 8 9 10 11 12 | table3 | all")
		quality     = flag.String("quality", "quick", "quick | full")
		seed        = flag.Int64("seed", 42, "random seed")
		outDir      = flag.String("out", "", "directory for file output (optional)")
		svg         = flag.Bool("svg", false, "also write an SVG rendering of each figure to -out")
		md          = flag.Bool("md", false, "also write a Markdown table of each figure to -out")
		hist        = flag.Bool("hist", false, "for figs 5/6: print the per-point latency table and write per-point latency histograms (NDJSON + CSV) to -out")
		trace       = flag.Int("trace", 0, "for figs 5/6 with -hist: flight-recorder ring capacity per sweep point; writes one Chrome trace JSON per point to -out (0 disables)")
		shards      = flag.Int("shards", 0, "router-phase shards for the -hist load sweep (0/1 sequential, -1 = one per CPU); results are bit-identical either way")
		profile     = flag.Bool("shard-profile", false, "with -hist and -shards > 1: print the final sweep point's per-shard execution profile")
		httpAddr    = flag.String("http", "", "serve live telemetry on this address (dashboard at /, /events SSE, /metrics, /healthz, /progress, /debug/pprof), e.g. :8080")
		quiet       = flag.Bool("quiet", false, "suppress the periodic progress line on stderr")
		ledgerDir   = flag.String("ledger", "", "run-ledger directory: archive each completed sweep point's Result under its content key (see dxbar-report)")
		ledgerReuse = flag.Bool("ledger-reuse", false, "serve sweep points from identical archived records in -ledger instead of re-simulating")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		verbose   = flag.Bool("v", false, "verbose (debug-level) logging")
		logFormat = flag.String("log-format", diag.LogText, "structured log format on stderr: text | json")
		diagDir   = flag.String("diag-dir", "", "directory for post-mortem diagnostic bundles (anomaly, SIGQUIT, panic); empty disables bundles (detectors still run)")
	)
	flag.Parse()

	var err error
	logger, err = diag.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fatal(err)
	}
	defer diag.InstallSignalHandlers(logger)()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	q := dxbar.Quick
	if *quality == "full" {
		q = dxbar.Full
	}

	type figFn func(dxbar.Quality, int64) (dxbar.Figure, error)
	figs := map[string]figFn{
		"5": dxbar.Figure5, "6": dxbar.Figure6,
		"7": dxbar.Figure7, "8": dxbar.Figure8,
		"9": dxbar.Figure9, "10": dxbar.Figure10,
		"11": dxbar.Figure11, "12": dxbar.Figure12,
	}
	order := []string{"5", "6", "7", "8", "9", "10", "11", "12"}

	want := func(id string) bool { return *figFlag == "all" || *figFlag == id }

	// With -hist, figs 5 and 6 derive from ONE shared load sweep, so its
	// points count once; every other wanted figure runs its own sweep.
	shared := *hist && (want("5") || want("6"))
	total := 0
	if shared {
		total += dxbar.PointCount("5", q)
	}
	for _, id := range order {
		if !want(id) || (shared && (id == "5" || id == "6")) {
			continue
		}
		total += dxbar.PointCount(id, q)
	}

	// Live telemetry and progress: every completed run fires the OnRunDone
	// hook, feeding one Progress that serves both the stderr line and the
	// /progress endpoint. Publication never touches simulation state, so
	// results are bit-identical with telemetry on or off.
	prog := metrics.NewProgress("points", uint64(total))
	dxbar.OnRunDone(func() { prog.Add(1) })
	defer dxbar.OnRunDone(nil)

	var reg *metrics.Registry
	if *httpAddr != "" {
		reg = metrics.NewRegistry()
		srv, err := metrics.StartServer(*httpAddr, reg, prog)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logger.Info("telemetry server up", "url", fmt.Sprintf("http://%s/metrics", srv.Addr()))
	}
	if *diagDir != "" && reg == nil {
		// Bundles include a metrics snapshot; give the runs a registry even
		// when no live telemetry server was requested.
		reg = metrics.NewRegistry()
	}
	// The figure functions carry no diagnostics knobs in their signatures;
	// package-level defaults give every run they trigger the shared logger,
	// registry and bundle directory.
	dxbar.SetDiagDefaults(&diag.Config{Logger: logger, Registry: reg}, *diagDir)
	defer dxbar.SetDiagDefaults(nil, "")
	// Every run behind every figure — not just the shared -hist sweep —
	// archives into (and with -ledger-reuse is served from) the ledger.
	dxbar.SetLedgerDefaults(*ledgerDir, *ledgerReuse)
	defer dxbar.SetLedgerDefaults("", false)
	if *diagDir != "" {
		// A crash mid-sweep still leaves a post-mortem behind.
		defer func() {
			if r := recover(); r != nil {
				if path, err := diag.WritePanicBundle(*diagDir, reg, r); err == nil {
					logger.Error("panic bundle written", "dir", path)
				}
				panic(r)
			}
		}()
	}
	if !*quiet {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					logger.Info("progress", "points", prog.Snapshot())
				}
			}
		}()
	}

	if want("table3") || *figFlag == "all" {
		emitTable3(*outDir, *md)
	}
	// The shared -hist load sweep: its full per-point Results feed figs 5/6,
	// the latency table and the histogram export.
	done := map[string]bool{}
	if shared {
		pts, err := dxbar.LoadSweepOpts("UR", q, *seed, dxbar.SweepOptions{
			EventTrace: *trace, Shards: *shards,
			Metrics: reg, ShardProfile: *profile,
			LedgerDir: *ledgerDir, LedgerReuse: *ledgerReuse,
		})
		if err != nil {
			fatal(err)
		}
		if want("5") {
			emitFigure(dxbar.Figure5From(pts), *outDir, *svg, *md)
			done["5"] = true
		}
		if want("6") {
			emitFigure(dxbar.Figure6From(pts), *outDir, *svg, *md)
			done["6"] = true
		}
		emitLatency(pts, *outDir)
		if *profile && len(pts) > 0 {
			last := pts[len(pts)-1]
			fmt.Print(dxbar.ShardProfileText(
				fmt.Sprintf("Shard execution profile, %s @ %.2f", last.Label, last.Load), last.Result))
			fmt.Println()
		}
		if *trace > 0 && *outDir != "" {
			emitTraces(pts, *outDir)
		}
	}
	for _, id := range order {
		if !want(id) || done[id] {
			continue
		}
		if diag.Interrupted() {
			logger.Warn("interrupted; stopping before figure", "fig", id)
			break
		}
		fig, err := figs[id](q, *seed)
		if err != nil {
			fatal(err)
		}
		emitFigure(fig, *outDir, *svg, *md)
	}
	if diag.Interrupted() {
		logger.Warn("sweep interrupted; figures emitted so far are complete, the rest were skipped")
	}
}

// emitLatency prints the per-point latency comparison table (flagging
// truncated runs) and writes the per-point histograms to -out as
// fig5_latency.ndjson and fig5_latency.csv.
func emitLatency(pts []dxbar.SweepPoint, outDir string) {
	var rows []report.LatencyRow
	var hists []report.HistogramRecord
	for _, p := range pts {
		rows = append(rows, dxbar.LatencyRowFor(p.Label, p.Result))
		hists = append(hists, dxbar.HistogramRecordFor(p.Label, p.Result))
	}
	fmt.Print(dxbar.LatencyTableText("Per-point latency distribution, Uniform Random", rows))
	fmt.Println()
	if outDir == "" {
		return
	}
	writeFile(outDir, "fig5_latency.ndjson", func(f *os.File) error { return dxbar.WriteHistogramsNDJSON(f, hists) })
	writeFile(outDir, "fig5_latency.csv", func(f *os.File) error { return dxbar.WriteHistogramsCSV(f, hists) })
}

// emitTraces writes one Chrome trace-event JSON per traced sweep point
// (trace_<label>_<load>.json, spaces dashed), loadable at ui.perfetto.dev.
func emitTraces(pts []dxbar.SweepPoint, outDir string) {
	for _, p := range pts {
		label := fmt.Sprintf("%s %.2f", p.Label, p.Load)
		name := "trace_" + strings.ReplaceAll(label, " ", "_") + ".json"
		rec := dxbar.TraceRecordFor(label, p.Result)
		writeFile(outDir, name, func(f *os.File) error { return dxbar.WriteChromeTrace(f, rec) })
	}
	fmt.Printf("wrote %d per-point traces to %s (open at ui.perfetto.dev)\n\n", len(pts), outDir)
}

func fatal(err error) {
	if logger != nil {
		logger.Error("fatal", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "dxbar-sweep:", err)
	}
	os.Exit(1)
}

// toReport converts a facade figure to the report package's shape.
func toReport(fig dxbar.Figure) report.Figure {
	out := report.Figure{ID: fig.ID, Title: fig.Title, XLabel: fig.XLabel, YLabel: fig.YLabel}
	for _, s := range fig.Series {
		out.Series = append(out.Series, report.Series{Label: s.Label, X: s.X, Y: s.Y, XNames: s.XNames})
	}
	return out
}

func table3Report() report.Table {
	t := report.Table{
		Title:   "Table III: area and energy estimation (65 nm, 1.0 V, 1 GHz)",
		Columns: []string{"design", "area (mm^2)", "buffer energy (pJ/flit)"},
	}
	for _, r := range dxbar.Table3() {
		t.Rows = append(t.Rows, []string{
			r.Design,
			strconv.FormatFloat(r.AreaMM2, 'f', 4, 64),
			strconv.FormatFloat(r.BufferEnergyPJ, 'f', 1, 64),
		})
	}
	return t
}

func emitTable3(outDir string, md bool) {
	t := table3Report()
	if err := report.WriteTableText(os.Stdout, t); err != nil {
		fatal(err)
	}
	fmt.Println()
	if outDir == "" {
		return
	}
	writeFile(outDir, "table3.csv", func(f *os.File) error { return report.WriteTableCSV(f, t) })
	if md {
		writeFile(outDir, "table3.md", func(f *os.File) error { return report.WriteTableMarkdown(f, t) })
	}
}

func emitFigure(fig dxbar.Figure, outDir string, svg, md bool) {
	r := toReport(fig)
	if err := report.WriteText(os.Stdout, r); err != nil {
		fatal(err)
	}
	if outDir == "" {
		return
	}
	writeFile(outDir, fig.ID+".csv", func(f *os.File) error { return report.WriteCSV(f, r) })
	if svg {
		writeFile(outDir, fig.ID+".svg", func(f *os.File) error {
			_, err := f.WriteString(dxbar.FigureSVG(fig))
			return err
		})
	}
	if md {
		writeFile(outDir, fig.ID+".md", func(f *os.File) error { return report.WriteMarkdown(f, r) })
	}
}

func writeFile(dir, name string, fill func(*os.File) error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := fill(f); err != nil {
		fatal(err)
	}
}
