// Package dxbar is a cycle-accurate Network-on-Chip simulator reproducing
// "Energy-Efficient and Fault-Tolerant Unified Buffer and Bufferless
// Crossbar Architecture for NoCs" (Zhang, Morris, DiTomaso, Kodi — IPDPS
// Workshops 2012).
//
// It implements the paper's two proposed routers — the DXbar dual-crossbar
// design and the unified dual-input single-crossbar design — alongside the
// four comparison designs (Flit-Bless, SCARAB, Buffered 4, Buffered 8), the
// DOR and West-First routing algorithms, the nine synthetic traffic
// patterns, crossbar fault injection with BIST-style delayed detection, and
// the 65 nm energy/area model of Table III.
//
// The simplest entry point is Run:
//
//	res, err := dxbar.Run(dxbar.Config{
//		Design:  dxbar.DesignDXbar,
//		Routing: "DOR",
//		Pattern: "UR",
//		Load:    0.3,
//	})
//
// For closed-loop workloads (the SPLASH-2 coherence substrate) and custom
// sources, use NewNetwork.
package dxbar

import (
	"fmt"
	"os"

	"dxbar/internal/core"
	"dxbar/internal/diag"
	"dxbar/internal/energy"
	"dxbar/internal/events"
	"dxbar/internal/faults"
	"dxbar/internal/metrics"
	"dxbar/internal/router"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
)

// Design selects a router microarchitecture.
type Design string

// The six evaluated router designs (§III.A).
const (
	// DesignDXbar is the paper's dual-crossbar router (primary bufferless
	// + secondary buffered crossbar).
	DesignDXbar Design = "dxbar"
	// DesignUnified is the paper's unified dual-input single crossbar.
	DesignUnified Design = "unified"
	// DesignFlitBless is bufferless deflection routing (reference [6]).
	DesignFlitBless Design = "flitbless"
	// DesignSCARAB is bufferless drop + NACK retransmission (ref. [8]).
	DesignSCARAB Design = "scarab"
	// DesignBuffered4 is the generic 4-flit-FIFO input-buffered baseline.
	DesignBuffered4 Design = "buffered4"
	// DesignBuffered8 uses two 4-flit FIFOs per input (no HoL blocking).
	DesignBuffered8 Design = "buffered8"
	// DesignAFC is Adaptive Flow Control (reference [9]): per-router mode
	// switching between bufferless and buffered operation. An extension
	// design — the paper discusses AFC as the closest prior hybrid but did
	// not simulate it.
	DesignAFC Design = "afc"
)

// AutoShards, assigned to Config.Shards or NetworkOptions.Shards, sizes the
// sharded engine to the available CPUs (GOMAXPROCS).
const AutoShards = -1

// Designs lists the six designs of the paper's comparison, in its order.
var Designs = []Design{DesignFlitBless, DesignSCARAB, DesignBuffered4, DesignBuffered8, DesignDXbar, DesignUnified}

// AllDesigns additionally includes the extension designs (AFC).
var AllDesigns = append(append([]Design{}, Designs...), DesignAFC)

// Config describes one simulation run.
type Config struct {
	// Design selects the router microarchitecture (required).
	Design Design
	// Routing is "DOR" or "WF" (default "DOR"). Ignored by SCARAB, which
	// is inherently minimal-adaptive.
	Routing string
	// Width and Height give the mesh dimensions (default 8×8).
	Width, Height int
	// Pattern is one of the nine synthetic patterns (default "UR").
	Pattern string
	// Load is the offered load in flits/node/cycle (fraction of capacity).
	Load float64
	// FlitsPerPacket is the packet size (default 1, as in the paper's
	// synthetic experiments).
	FlitsPerPacket int
	// WarmupCycles and MeasureCycles delimit the measurement window
	// (defaults 2000 and 8000).
	WarmupCycles, MeasureCycles uint64
	// Seed drives every random choice; same config + seed = same run.
	Seed int64
	// FaultFraction injects one crossbar fault into that fraction of the
	// routers (§III.E; DXbar only), manifesting at FaultCycle.
	FaultFraction float64
	// FaultCycle is the fault manifestation cycle (default: 10).
	FaultCycle uint64
	// FaultGranularity is "crossbar" (default — §III.E's whole-crossbar
	// failures) or "crosspoint" (a single input→output crosspoint fails).
	FaultGranularity string
	// FairnessThreshold overrides the DXbar fairness counter threshold
	// (default core.FairnessThreshold = 4).
	FairnessThreshold int
	// BufferDepth overrides the per-input buffer depth (default: 4 for
	// DXbar/unified/Buffered 4, 8 for Buffered 8). Used by the
	// buffer-depth ablation; DXbar only.
	BufferDepth int
	// TrackUtilization enables per-link utilization counters (see
	// Result.NodeUtilization and Heatmap).
	TrackUtilization bool
	// SampleInterval enables time-series sampling: every SampleInterval
	// cycles (warmup included) the engine snapshots injected/ejected flit
	// deltas, in-flight flit count, injection-queue backlog and buffer
	// occupancy into Result.TimeSeries. 0 disables sampling.
	SampleInterval uint64
	// CreditDelay overrides the credit-return signalling latency in cycles
	// (default 1; ablation of the round-trip the fairness threshold must
	// cover, §II.A.2).
	CreditDelay int
	// PortOrderArbitration replaces DXbar's age-based arbitration with
	// static port order (arbitration-policy ablation; DXbar only).
	PortOrderArbitration bool
	// ReferenceArbitration runs every router on its branchy reference
	// arbitration/switching path instead of the bit-parallel one. Results are
	// bit-identical either way (the equivalence suite proves it); the flag
	// exists so those tests — and any future debugging of the fast path —
	// can pin the oracle.
	ReferenceArbitration bool
	// EventTrace enables the flight recorder with a ring of that many
	// events (see internal/events). 0 disables tracing; disabled runs are
	// bit-identical to traced ones. The recorded tail is returned in
	// Result.Events, the whole-run per-router counters in
	// Result.RouterEvents.
	EventTrace int
	// EventKinds restricts the recorder to the named event kinds (each
	// entry may be a comma-separated list; see events.KindNames). Empty
	// records every kind.
	EventKinds []string
	// Shards runs the router phase of every cycle on that many parallel
	// workers, each owning a rectangular tile of the mesh (a 2D grid chosen
	// to minimize boundary links). 0 or 1 selects the sequential engine;
	// AutoShards (-1) sizes to the available CPUs; an infeasible value is
	// reduced to the largest grid factorization that fits the mesh. Results
	// are bit-identical to the sequential engine for every design, shard
	// count and seed — sharding only changes wall-clock time, and only pays
	// off on large meshes (16×16 and up).
	Shards int
	// RebalanceInterval paces the sharded engine's dynamic tile rebalancing:
	// every that many cycles the backend compares the per-shard router-phase
	// times and migrates a boundary row or column from the hottest tile
	// toward a cooler neighbour. 0 uses the engine default (1024); a
	// negative value disables rebalancing. Migration never changes results —
	// only which worker steps which node.
	RebalanceInterval int
	// Metrics attaches a live telemetry registry: the engine publishes flit
	// and packet counters every cycle and gauges, the latency histogram and
	// the per-shard execution profile at the metrics publish interval. Serve
	// it with metrics.StartServer (the -http flag of the CLIs). A registry
	// may be shared by many concurrent runs — counters aggregate across
	// them. Nil (the default) disables publication at zero cost, and results
	// are bit-identical with telemetry on or off.
	Metrics *metrics.Registry
	// Progress, when non-nil, tracks the run's completed cycles (the
	// /progress endpoint for single runs). Sweeps use their own point-level
	// tracker instead.
	Progress *metrics.Progress
	// ShardProfile populates Result.ShardProfile and Result.ShardImbalance
	// from the sharded engine's execution profiler. Opt-in because the
	// profile is wall-clock measurement: it varies run to run and would
	// break bit-identity comparisons of whole Results.
	ShardProfile bool
	// Diag overrides the run-health monitor's configuration (detector
	// windows, thresholds, logger, callback). Nil uses the package defaults
	// (SetDiagDefaults, else diag's built-ins) — the monitor itself is on by
	// default: every Run carries the progress watchdog, the flit-age
	// watermark, the storm detectors and the fault-detection-latency tracker
	// at zero allocations per cycle, and detectors only observe, so results
	// are bit-identical with diagnostics on or off. The monitor's metrics
	// default into Config.Metrics when Diag.Registry is nil.
	Diag *diag.Config
	// DiagDir, when non-empty, is the directory post-mortem bundles are
	// written under: on the run's first anomaly, on SIGQUIT
	// (diag.RequestDump), and at the end of an interrupted run. Empty falls
	// back to the SetDiagDefaults directory; empty both ways disables bundle
	// writing (detectors still run and Result.Anomalies is still populated).
	DiagDir string
	// DisableDiag turns the run-health monitor off entirely (benchmark
	// harnesses measuring the engine alone, or A/B-testing the detectors
	// themselves, as TestDiagBitIdentity does).
	DisableDiag bool
	// CheckpointInterval, together with CheckpointDir, enables periodic
	// checkpointing: every CheckpointInterval cycles the run serializes its
	// complete engine state into CheckpointDir (atomic write — a kill cannot
	// leave a torn file), keeping the newest CheckpointKeep files. A resumed
	// run (Resume, dxbar-sim -resume) continues bit-identically: its Result
	// is byte-for-byte the uninterrupted run's. 0 disables checkpointing;
	// between writes the cycle loop stays allocation-free (one nil check and
	// one compare per cycle).
	CheckpointInterval uint64
	// CheckpointDir is the directory checkpoint files are written under
	// (created if absent). Empty disables checkpointing.
	CheckpointDir string
	// CheckpointKeep bounds the checkpoint files retained in CheckpointDir —
	// after each write, older ckpt-*.dxsn files beyond the newest
	// CheckpointKeep are pruned. 0 means DefaultCheckpointKeep.
	CheckpointKeep int
	// LedgerDir, when non-empty, archives the completed run into the
	// content-addressed run ledger under that directory (one atomic JSON
	// record per configuration hash, holding the full Result, the latency
	// distribution and an environment stamp — see OpenLedger /
	// internal/runstore). Interrupted or rewind-clipped runs are not
	// archived: a record always describes the configured window. Archiving
	// happens once, after the run completes — the cycle loop never touches
	// the ledger, and results are bit-identical with it on or off.
	LedgerDir string
	// LedgerReuse additionally short-circuits Run: when LedgerDir already
	// holds a record for this exact configuration, the archived Result is
	// decoded and returned without simulating — runs are deterministic, so
	// the archived Result IS this run's result. Configurations whose Result
	// carries payloads that cannot be reconstructed from JSON (event traces)
	// or that vary run to run (ShardProfile wall-clock profiles), and
	// checkpoint resumes, always simulate.
	LedgerReuse bool
}

// Result is a simulation summary: the stats.Results metrics plus energy.
type Result struct {
	stats.Results
	// AvgEnergyNJ is the average network energy per delivered packet in
	// nanojoules over the measurement window (the paper's Fig. 6/8/10
	// metric).
	AvgEnergyNJ float64
	// TotalEnergyNJ is the total measurement-window energy.
	TotalEnergyNJ float64
	// EventCounts are the raw energy-model event counts in the window.
	EventCounts energy.Counts
	// Design and Routing echo the configuration.
	Design  Design
	Routing string
	Pattern string
	Load    float64
	// Power is the extension power breakdown (dynamic + leakage, mW at
	// 1 GHz) over the measurement window; the paper's figures use the
	// dynamic-only AvgEnergyNJ (see internal/energy/static.go).
	Power energy.PowerBreakdown
	// NodeUtilization is each node's mean outgoing-link utilization over
	// the window (nil unless Config.TrackUtilization), averaged over the
	// links each node actually has.
	NodeUtilization []float64
	// TimeSeries holds the periodic snapshots taken every SampleInterval
	// cycles (nil unless Config.SampleInterval > 0), in chronological
	// order; SampleInterval echoes the configuration.
	TimeSeries     []stats.Sample
	SampleInterval uint64
	// Width and Height echo the mesh size (for Heatmap rendering).
	Width, Height int
	// Events is the flight-recorder ring's chronological tail (nil unless
	// Config.EventTrace > 0). When EventsOverwritten > 0 the ring wrapped
	// and the tail covers only the end of the run.
	Events []events.Event
	// EventsRecorded and EventsOverwritten count the events accepted over
	// the whole run and those lost to ring overwrite.
	EventsRecorded    uint64
	EventsOverwritten uint64
	// RouterEvents is the per-router × per-kind counter matrix (nil unless
	// Config.EventTrace > 0). Unlike Events it is exact for the whole run —
	// the counters survive ring overwrite.
	RouterEvents *events.Matrix
	// ShardProfile is the sharded engine's per-shard execution profile —
	// cumulative router-phase and barrier-wait time per shard over the whole
	// run (nil unless Config.ShardProfile and the run was sharded).
	ShardProfile []sim.ShardProfile
	// ShardImbalance is the max/mean cumulative router-phase time across
	// shards (1.0 = perfectly balanced; 0 when ShardProfile is nil). A high
	// ratio means the tile grid is uneven for this workload and faster
	// shards burn their surplus in BarrierWait — sustained imbalance is what
	// dynamic rebalancing erodes.
	ShardImbalance float64
	// ShardRebalances and ShardNodesMigrated count the dynamic rebalancing
	// passes that moved work and the total nodes they migrated between
	// shards (populated only with Config.ShardProfile, like ShardProfile —
	// migration activity is wall-clock-driven and varies run to run).
	ShardRebalances    uint64
	ShardNodesMigrated uint64
	// Anomalies holds the run-health monitor's anomaly records in firing
	// order (nil on a healthy run, or with Config.DisableDiag). Detector
	// inputs are deterministic simulation state, so the records are
	// deterministic too — identical across sequential/sharded runs of the
	// same config and seed. AnomaliesDropped counts records beyond the
	// monitor's cap (their dxbar_anomaly_total increments still happened).
	Anomalies        []diag.Anomaly
	AnomaliesDropped uint64
	// Interrupted reports that the run was stopped early by a graceful
	// interrupt (diag.Interrupt — the CLIs' SIGINT/SIGTERM path). The
	// metrics above then cover only the cycles actually simulated: partial
	// results, flagged rather than discarded.
	Interrupted bool
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Routing == "" {
		cfg.Routing = "DOR"
	}
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.Height == 0 {
		cfg.Height = 8
	}
	if cfg.Pattern == "" {
		cfg.Pattern = "UR"
	}
	if cfg.FlitsPerPacket == 0 {
		cfg.FlitsPerPacket = 1
	}
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 2000
	}
	if cfg.MeasureCycles == 0 {
		cfg.MeasureCycles = 8000
	}
	if cfg.FaultCycle == 0 {
		cfg.FaultCycle = 10
	}
	if cfg.FairnessThreshold == 0 {
		cfg.FairnessThreshold = core.FairnessThreshold
	}
	// DXBAR_SMOKE caps run lengths so `make examples-smoke` can exercise
	// every example in seconds without editing them.
	if os.Getenv("DXBAR_SMOKE") != "" {
		if cfg.WarmupCycles > 200 {
			cfg.WarmupCycles = 200
		}
		if cfg.MeasureCycles > 800 {
			cfg.MeasureCycles = 800
		}
	}
	return cfg
}

// bufferDepthFor returns the engine credit/buffer depth for a design.
func bufferDepthFor(d Design) (int, error) {
	switch d {
	case DesignDXbar, DesignUnified, DesignBuffered4, DesignAFC:
		return 4, nil
	case DesignBuffered8:
		return 8, nil
	case DesignFlitBless, DesignSCARAB:
		return 0, nil
	}
	return 0, fmt.Errorf("dxbar: unknown design %q", d)
}

// meterFor returns the design's energy meter.
func meterFor(d Design) *energy.Meter {
	switch d {
	case DesignUnified:
		return energy.NewUnifiedMeter()
	case DesignBuffered8:
		return energy.NewBuffered8Meter()
	default:
		return energy.NewMeter()
	}
}

// factoryFor builds the per-node router factory, plus an optional per-cycle
// hook a design needs run before the router phase (AFC's shared mode
// controller; nil for the other designs).
//
// The algo handed in is already a *routing.Table (prepare wraps it once per
// network), so every router's in-constructor NewTable wrap is a no-op and all
// routers of the network share the same precomputed tables.
func factoryFor(d Design, algo routing.Algorithm, mesh *topology.Mesh, threshold, depth int, portOrder, reference bool, plan *faults.Plan, nodes int) (sim.RouterFactory, func(uint64), error) {
	detectorFor := func(node int) *faults.Detector {
		f, ok := plan.ForRouter(node)
		return faults.NewDetector(f, plan.DetectionDelay, ok)
	}
	switch d {
	case DesignDXbar:
		return func(env *sim.Env) sim.Router {
			r := core.NewDXbarDepth(env, algo, threshold, depth, detectorFor(env.Node))
			r.SetPortOrderArbitration(portOrder)
			r.SetReferenceArbitration(reference)
			return r
		}, nil, nil
	case DesignUnified:
		return func(env *sim.Env) sim.Router {
			r := core.NewUnified(env, algo, threshold, detectorFor(env.Node))
			r.SetReferenceArbitration(reference)
			return r
		}, nil, nil
	case DesignFlitBless:
		return func(env *sim.Env) sim.Router {
			r := router.NewBless(env, algo)
			r.SetReferenceArbitration(reference)
			return r
		}, nil, nil
	case DesignSCARAB:
		// SCARAB's minimal-adaptive routing has no Config knob, so its table
		// is built here — once, shared by every router of the network. A nil
		// mesh (invalid options, rejected by sim.New before the factory runs)
		// just skips the precomputation.
		var minTable *routing.Table
		if mesh != nil {
			minTable = routing.NewTable(routing.MinimalAdaptive{}, mesh, nodes)
		}
		return func(env *sim.Env) sim.Router {
			r := router.NewScarabTable(env, minTable)
			r.SetReferenceArbitration(reference)
			return r
		}, nil, nil
	case DesignBuffered4:
		return func(env *sim.Env) sim.Router {
			r := router.NewBuffered(env, algo, false)
			r.SetReferenceArbitration(reference)
			return r
		}, nil, nil
	case DesignBuffered8:
		return func(env *sim.Env) sim.Router {
			r := router.NewBuffered(env, algo, true)
			r.SetReferenceArbitration(reference)
			return r
		}, nil, nil
	case DesignAFC:
		// One mode controller is shared by every router of the network. Its
		// policy ticks once per cycle *before* the router phase, so that the
		// sharded engine's workers read a stable mode (the guarded tick
		// inside AFC.Step then no-ops). The policy observes exactly the
		// state it saw when the first-stepping router ticked it, because
		// nothing between cycle start and the router phase touches the
		// controller — so sequential results are unchanged.
		ctrl := router.NewAFCController(nodes)
		return func(env *sim.Env) sim.Router {
			env.RegisterShared(ctrl)
			r := router.NewAFC(env, algo, ctrl)
			r.SetReferenceArbitration(reference)
			return r
		}, ctrl.Tick, nil
	}
	return nil, nil, fmt.Errorf("dxbar: unknown design %q", d)
}

// Network bundles a ready-to-run engine with its meter and collector, for
// callers that drive their own sources (closed-loop workloads, examples).
type Network struct {
	Engine *sim.Engine
	Meter  *energy.Meter
	Stats  *stats.Collector
}

// NetworkOptions configures NewNetwork.
type NetworkOptions struct {
	// Design and Routing select the router microarchitecture and routing
	// algorithm (Routing defaults to "DOR").
	Design  Design
	Routing string
	// Mesh is the topology (required).
	Mesh *topology.Mesh
	// Source and Sink drive and observe traffic; either may be nil.
	Source sim.Source
	Sink   sim.Sink
	// Stats must be sized by the caller; its window defines what is
	// measured (required).
	Stats *stats.Collector
	// FairnessThreshold defaults to core.FairnessThreshold.
	FairnessThreshold int
	// FaultPlan may be nil for a healthy network (DXbar/unified only).
	FaultPlan *faults.Plan
	// PreCycle runs at the start of every cycle (closed-loop workloads).
	PreCycle func(cycle uint64)
	// BufferDepth overrides the design's default buffer depth (ablations;
	// DXbar only).
	BufferDepth int
	// CreditDelay overrides the credit-return latency (default 1 cycle).
	CreditDelay int
	// PortOrderArbitration switches DXbar to static port-order arbitration.
	PortOrderArbitration bool
	// ReferenceArbitration selects the branchy reference arbitration paths
	// (see Config.ReferenceArbitration).
	ReferenceArbitration bool
	// Events attaches a flight recorder; nil (the default) disables runtime
	// event tracing at zero cost.
	Events *events.Recorder
	// Shards parallelizes the router phase (see Config.Shards).
	Shards int
	// RebalanceInterval paces dynamic tile rebalancing (see
	// Config.RebalanceInterval).
	RebalanceInterval int
	// Telemetry attaches a live-metrics publication handle (see
	// Config.Metrics; built with metrics.NewSimTelemetry). Nil disables
	// publication at zero cost.
	Telemetry *metrics.SimTelemetry
	// Diag attaches a run-health monitor (built with diag.NewMonitor). Nil
	// disables the detectors at zero cost. Unlike Run, NewNetwork does not
	// create one by default — callers driving their own engine own the
	// monitor's lifecycle (and its Detach).
	Diag *diag.Monitor
}

// prepare validates the options and resolves them into an engine config, a
// router factory and a fresh meter — the pieces sim.New (and Engine.Reset,
// for engine reuse) need.
func prepare(o NetworkOptions) (sim.Config, sim.RouterFactory, *energy.Meter, error) {
	if o.FairnessThreshold == 0 {
		o.FairnessThreshold = core.FairnessThreshold
	}
	if o.Routing == "" {
		o.Routing = "DOR"
	}
	if o.FaultPlan == nil {
		o.FaultPlan = faults.Empty()
	}
	if o.FaultPlan.Count() > 0 && o.Design != DesignDXbar && o.Design != DesignUnified {
		return sim.Config{}, nil, nil, fmt.Errorf("dxbar: fault injection is only supported for the dxbar/unified designs, not %q", o.Design)
	}
	algo, err := routing.New(o.Routing)
	if err != nil {
		return sim.Config{}, nil, nil, err
	}
	if o.Mesh != nil {
		// Precompute the routing algorithm over the whole mesh once; every
		// router of the network shares the table (constructors wrap the algo
		// in NewTable, which is a no-op on an existing table).
		algo = routing.NewTable(algo, o.Mesh, o.Mesh.Nodes())
	}
	depth, err := bufferDepthFor(o.Design)
	if err != nil {
		return sim.Config{}, nil, nil, err
	}
	if o.BufferDepth != 0 {
		if o.Design != DesignDXbar {
			return sim.Config{}, nil, nil, fmt.Errorf("dxbar: BufferDepth override is only supported for the dxbar design")
		}
		depth = o.BufferDepth
	}
	meter := meterFor(o.Design)
	nodes := 0
	if o.Mesh != nil {
		nodes = o.Mesh.Nodes()
	}
	factory, designPreCycle, err := factoryFor(o.Design, algo, o.Mesh, o.FairnessThreshold, depth, o.PortOrderArbitration, o.ReferenceArbitration, o.FaultPlan, nodes)
	if err != nil {
		return sim.Config{}, nil, nil, err
	}
	preCycle := o.PreCycle
	if designPreCycle != nil {
		if user := o.PreCycle; user != nil {
			preCycle = func(cycle uint64) {
				designPreCycle(cycle)
				user(cycle)
			}
		} else {
			preCycle = designPreCycle
		}
	}
	return sim.Config{
		Mesh:              o.Mesh,
		Meter:             meter,
		Stats:             o.Stats,
		Source:            o.Source,
		Sink:              o.Sink,
		BufferDepth:       depth,
		CreditDelay:       o.CreditDelay,
		PreCycle:          preCycle,
		Events:            o.Events,
		Telemetry:         o.Telemetry,
		Diag:              o.Diag,
		Shards:            o.Shards,
		RebalanceInterval: o.RebalanceInterval,
	}, factory, meter, nil
}

// NewNetwork assembles a network of the given design around a custom
// source/sink.
func NewNetwork(o NetworkOptions) (*Network, error) {
	cfg, factory, meter, err := prepare(o)
	if err != nil {
		return nil, err
	}
	eng, err := sim.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	return &Network{Engine: eng, Meter: meter, Stats: o.Stats}, nil
}

// Run executes one open-loop synthetic-traffic simulation.
func Run(c Config) (Result, error) {
	return newRunner().run(c)
}
