package dxbar

import (
	"fmt"
	"testing"

	"dxbar/internal/diag"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// steadyNetwork builds an 8×8 network of the given design driven by
// uniform-random Bernoulli traffic, for allocation and leak tests.
func steadyNetwork(t *testing.T, design Design, load float64) *Network {
	t.Helper()
	return steadyShardedNetwork(t, design, load, 0)
}

// steadyShardedNetwork is steadyNetwork with a shard count (0 sequential).
func steadyShardedNetwork(t *testing.T, design Design, load float64, shards int) *Network {
	t.Helper()
	return steadyMeshNetwork(t, design, 8, 8, load, shards)
}

// steadyMeshNetwork is the fully parameterized builder behind the steady-
// state helpers: any mesh size, load and shard count.
func steadyMeshNetwork(t *testing.T, design Design, w, h int, load float64, shards int) *Network {
	t.Helper()
	mesh := topology.MustMesh(w, h)
	pat, err := traffic.New("UR", mesh)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := traffic.NewBernoulli(mesh, pat, load, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, 1<<40)
	// Sampling is on (with a capacity small enough that the ring wraps
	// during the alloc test) so the zero-alloc guard below also covers the
	// histogram and time-series instrumentation.
	coll.EnableTimeSeries(64, 32)
	net, err := NewNetwork(NetworkOptions{
		Design: design,
		Mesh:   mesh,
		Source: &sim.SourceAdapter{B: bern},
		Stats:  coll,
		Shards: shards,
		// The run-health monitor is on by default in the public Run path, so
		// the zero-alloc guard must hold with it attached. A short window
		// keeps the windowed detector leg (the flit-age scan and storm
		// deltas) inside the measured runs.
		Diag: diag.NewMonitor(diag.Config{Window: 64}, mesh.Nodes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestStepZeroAllocSteadyState is the tentpole's regression guard: after
// warmup (flit pool populated, event wheel and router scratch at their
// steady sizes) the cycle loop must not allocate at all, for every design.
func TestStepZeroAllocSteadyState(t *testing.T) {
	// Loads are below each design's saturation point: past saturation the
	// source queues (and with them the flit pool) grow without bound, which
	// is real work, not a pooling regression.
	load := map[Design]float64{DesignFlitBless: 0.12, DesignSCARAB: 0.10}
	for _, d := range AllDesigns {
		t.Run(string(d), func(t *testing.T) {
			l, ok := load[d]
			if !ok {
				l = 0.3
			}
			net := steadyNetwork(t, d, l)
			net.Engine.Run(3000)
			avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
			if avg != 0 {
				t.Errorf("%s: %.2f allocations per 200-cycle run in steady state, want 0", d, avg)
			}
		})
	}
}

// largeMeshAllocCases are the mesh sizes the large-mesh zero-alloc guards
// sweep, with per-size below-saturation loads: larger meshes saturate at
// lower offered loads (mean hop count grows with the mesh diagonal while
// per-node link capacity stays fixed), and above saturation the injection
// backlog — queued as compact specs — grows without bound, doubling the spec
// rings forever. That regime is real work, not a pooling regression, so the
// guards (and the scale benchmark) stay below it.
var largeMeshAllocCases = []struct {
	w, h   int
	load   float64
	warmup uint64
	shards int
}{
	{16, 16, 0.15, 6000, 4},
	{32, 32, 0.10, 6000, 4},
	{64, 64, 0.05, 6000, 4},
}

// TestStepZeroAllocSteadyStateLargeMesh extends the steady-state guard to
// 16×16, 32×32 and 64×64 meshes on the fastest design: pools, deques and
// router scratch must reach their high-water marks during warmup at every
// mesh size (the seed benchmarks showed 23 allocs/cycle at 16×16 and 194 at
// 32×32 from structures sized for small meshes, and the 2026-08-08 scale
// artifact still leaked 0.13–0.51 allocs/cycle from spec-ring doublings).
func TestStepZeroAllocSteadyStateLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("large-mesh warmups are seconds of simulated work")
	}
	for _, c := range largeMeshAllocCases {
		t.Run(fmt.Sprintf("%dx%d", c.w, c.h), func(t *testing.T) {
			net := steadyMeshNetwork(t, DesignDXbar, c.w, c.h, c.load, 0)
			net.Engine.Run(c.warmup)
			avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
			if avg != 0 {
				t.Errorf("dxbar %dx%d: %.2f allocations per 200-cycle run in steady state, want 0", c.w, c.h, avg)
			}
		})
	}
}

// stoppingSource gates a source off after a fixed cycle so the network can
// drain completely.
type stoppingSource struct {
	inner sim.Source
	stop  uint64
}

func (s *stoppingSource) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if cycle >= s.stop {
		return nil
	}
	return s.inner.Generate(node, cycle)
}

// TestPoolNoLeakAfterDrain checks the pooling ownership discipline: every
// flit acquired from the pool is released exactly once (at ejection), so a
// drained network has zero outstanding flits — across the buffered,
// deflecting and drop/retransmit designs, with multi-flit packets to
// exercise reassembly.
func TestPoolNoLeakAfterDrain(t *testing.T) {
	for _, d := range []Design{DesignDXbar, DesignUnified, DesignFlitBless, DesignSCARAB, DesignBuffered4} {
		t.Run(string(d), func(t *testing.T) {
			mesh := topology.MustMesh(4, 4)
			pat, err := traffic.New("UR", mesh)
			if err != nil {
				t.Fatal(err)
			}
			bern, err := traffic.NewBernoulli(mesh, pat, 0.4, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			coll := stats.NewCollector(mesh.Nodes(), 0, 1<<40)
			net, err := NewNetwork(NetworkOptions{
				Design: d,
				Mesh:   mesh,
				Source: &stoppingSource{inner: &sim.SourceAdapter{B: bern}, stop: 500},
				Stats:  coll,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng := net.Engine
			eng.Run(500)
			drained := eng.RunUntil(func() bool {
				return eng.QueuedFlits() == 0 && eng.Pool().Outstanding() == 0
			}, 20_000)
			if !drained {
				t.Fatalf("%s: network did not drain; %d flits outstanding, %d queued",
					d, eng.Pool().Outstanding(), eng.QueuedFlits())
			}
			if got := eng.Pool().Outstanding(); got != 0 {
				t.Errorf("%s: %d flits leaked from the pool", d, got)
			}
		})
	}
}
