// Hotspot: the scenario the paper's introduction motivates — bufferless
// networks are cheap at low load but melt down when conflicts become
// frequent. This example sweeps the NUR (hot-spot) pattern, where 25%
// additional traffic converges on the four center nodes, and shows the
// crossover: Flit-Bless matches DXbar's energy at 10% load, then deflection
// storms multiply its energy and cap its throughput while DXbar keeps
// absorbing conflicts in its secondary-crossbar buffers.
package main

import (
	"fmt"
	"log"

	"dxbar"
)

func main() {
	fmt.Println("Hot-spot (NUR) load sweep on an 8x8 mesh")
	fmt.Println()
	designs := []dxbar.Design{dxbar.DesignFlitBless, dxbar.DesignSCARAB,
		dxbar.DesignBuffered8, dxbar.DesignDXbar}
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5}

	fmt.Printf("%-12s", "design")
	for _, l := range loads {
		fmt.Printf("   load %.1f      ", l)
	}
	fmt.Println()
	fmt.Printf("%-12s", "")
	for range loads {
		fmt.Printf("   acc   nJ/pkt  ")
	}
	fmt.Println()

	for _, d := range designs {
		fmt.Printf("%-12s", d)
		for _, l := range loads {
			res, err := dxbar.Run(dxbar.Config{
				Design:  d,
				Pattern: "NUR",
				Load:    l,
				Seed:    7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %.3f  %6.3f  ", res.AcceptedLoad, res.AvgEnergyNJ)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Watch the bufferless designs saturate first and their energy climb")
	fmt.Println("past saturation (deflections and drops re-traverse links), while")
	fmt.Println("DXbar's energy stays nearly flat — the paper's Figs. 5-8 in miniature.")
}
