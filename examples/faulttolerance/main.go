// Fault tolerance: the paper's §II.C headline — thanks to the dual
// crossbars, DXbar tolerates a crossbar failure in *every* router (100%
// faults) and keeps delivering traffic, degrading into a buffered network
// through the surviving fabric. This example sweeps the fault fraction for
// both DOR and WF routing and shows DOR degrading gracefully while WF
// suffers more, matching Fig. 11.
package main

import (
	"fmt"
	"log"

	"dxbar"
)

func main() {
	fmt.Println("DXbar under crossbar faults (UR traffic, offered load 0.3)")
	fmt.Println()
	fmt.Printf("%-5s %8s %10s %10s %12s\n", "alg", "faults", "accepted", "latency", "nJ/packet")

	for _, algo := range []string{"DOR", "WF"} {
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			res, err := dxbar.Run(dxbar.Config{
				Design:        dxbar.DesignDXbar,
				Routing:       algo,
				Pattern:       "UR",
				Load:          0.3,
				Seed:          3,
				FaultFraction: f,
				FaultCycle:    10,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5s %7.0f%% %10.4f %10.1f %12.4f\n",
				algo, f*100, res.AcceptedLoad, res.AvgLatency, res.AvgEnergyNJ)
		}
		fmt.Println()
	}

	fmt.Println("At 100% faults every router has lost one crossbar, yet the network")
	fmt.Println("still moves traffic: each faulty router detects the failure after the")
	fmt.Println("5-cycle BIST window and falls back to buffered switching through the")
	fmt.Println("surviving crossbar (2x2 steering switches between buffers and fabrics).")
}
