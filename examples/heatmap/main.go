// Heatmap: visualize per-node link utilization as ASCII art. Under the NUR
// hot-spot pattern the four center nodes glow; Flit-Bless smears load onto
// non-minimal links around the hot region (deflections), while DXbar keeps
// traffic on minimal paths.
package main

import (
	"fmt"
	"log"

	"dxbar"
)

func main() {
	for _, d := range []dxbar.Design{dxbar.DesignDXbar, dxbar.DesignFlitBless} {
		res, err := dxbar.Run(dxbar.Config{
			Design:           d,
			Pattern:          "NUR",
			Load:             0.35,
			Seed:             9,
			TrackUtilization: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s under NUR hot-spot traffic @ 0.35 ===\n", d)
		fmt.Print(dxbar.Heatmap(res))
		fmt.Printf("accepted %.3f | latency %.1f | %.3f nJ/packet | %.2f deflections/packet\n\n",
			res.AcceptedLoad, res.AvgLatency, res.AvgEnergyNJ, res.DeflectionsPerPacket)
	}
	fmt.Println("Each cell is one router (darker = busier outgoing links).")
	fmt.Println("The hot center shows in both; Flit-Bless additionally heats the")
	fmt.Println("surrounding ring — deflected flits orbiting the contended region.")
}
