// Flight recorder: aggregate statistics tell you a p99 outlier exists;
// the flight recorder tells you *why*. This example traces a DXbar run near
// saturation, picks the slowest fully-recorded packet, and reconstructs its
// hop-by-hop history from the event ring: where it queued at the source,
// which routers switched it straight through the primary crossbar, and
// where it lost arbitration and sat in a buffer. The per-router counter
// matrix then shows whether those buffering stalls cluster in the mesh
// center, and the whole event log is exported as Chrome trace-event JSON
// for interactive inspection at ui.perfetto.dev.
package main

import (
	"fmt"
	"log"
	"os"

	"dxbar"
	"dxbar/internal/events"
)

func main() {
	const load = 0.45

	// A ring of 1<<18 events keeps roughly the last ~1500 cycles of an 8x8
	// run at this load — enough to hold a worst-case packet's whole life.
	res, err := dxbar.Run(dxbar.Config{
		Design:     dxbar.DesignDXbar,
		Pattern:    "UR",
		Load:       load,
		Seed:       7,
		EventTrace: 1 << 18,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DXbar @ UR %.2f: avg latency %.1f, p99 %d, max %d cycles\n",
		load, res.AvgLatency, res.P99Latency, res.MaxLatency)
	fmt.Printf("flight recorder: %d events recorded, %d still in the ring (%d overwritten)\n\n",
		res.EventsRecorded, len(res.Events), res.EventsOverwritten)

	// Find the slowest packet whose full history survived ring overwrite:
	// scan Eject events (Detail = end-to-end latency) and keep the worst
	// one whose Inject event is also still in the ring.
	inRing := map[uint64]bool{}
	for _, e := range res.Events {
		if e.Kind == events.Inject {
			inRing[e.PacketID] = true
		}
	}
	var worst events.Event
	for _, e := range res.Events {
		if e.Kind == events.Eject && inRing[e.PacketID] && e.Detail > worst.Detail {
			worst = e
		}
	}
	if worst.PacketID == 0 {
		log.Fatal("no fully-recorded packet in the ring; raise EventTrace")
	}

	fmt.Printf("slowest fully-recorded packet: #%d, %d cycles end to end (p99 is %d)\n",
		worst.PacketID, worst.Detail, res.P99Latency)
	fmt.Println("hop-by-hop reconstruction:")
	var prevCycle uint64
	for i, e := range dxbar.PacketPath(res, worst.PacketID) {
		gap := ""
		if i > 0 && e.Cycle-prevCycle > 1 {
			gap = fmt.Sprintf("   <- +%d cycles", e.Cycle-prevCycle)
		}
		prevCycle = e.Cycle
		switch e.Kind {
		case events.Inject:
			fmt.Printf("  cycle %6d  node %2d  injected after %d cycles in the source queue%s\n",
				e.Cycle, e.Node, e.Detail, gap)
		case events.PrimaryWin:
			fmt.Printf("  cycle %6d  node %2d  won primary crossbar, out port %d%s\n",
				e.Cycle, e.Node, e.Detail, gap)
		case events.Buffered:
			fmt.Printf("  cycle %6d  node %2d  lost arbitration -> buffered (occupancy %d)%s\n",
				e.Cycle, e.Node, e.Detail, gap)
		case events.Eject:
			fmt.Printf("  cycle %6d  node %2d  delivered, %d cycles total%s\n",
				e.Cycle, e.Node, e.Detail, gap)
		default:
			fmt.Printf("  cycle %6d  node %2d  %s (detail %d)%s\n",
				e.Cycle, e.Node, e.Kind, e.Detail, gap)
		}
	}
	fmt.Println()

	// The counter matrix is exact for the whole run (it survives ring
	// overwrite): where does buffering concentrate?
	fmt.Println(dxbar.EventHeatmap(res, events.Buffered))
	fmt.Printf("total buffering events: %d, fairness flips: %d\n\n",
		res.RouterEvents.KindTotal(events.Buffered), res.FairnessFlips)

	// Full event log as Chrome trace JSON: one track per router, the
	// packet's hops linked with flow arrows.
	const out = "flightrecorder_trace.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := dxbar.WriteChromeTrace(f, dxbar.TraceRecordFor("DXbar UR 0.45", res)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s — open it at ui.perfetto.dev and search for packet %d\n", out, worst.PacketID)
}
