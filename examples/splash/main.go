// SPLASH: run the closed-loop cache-coherence workload (the paper's
// SPLASH-2 traces, Figs. 9-10) for a network-hungry benchmark (Ocean) and a
// compute-bound one (Water), comparing DXbar against Flit-Bless and the
// buffered baseline on execution time and energy.
package main

import (
	"fmt"
	"log"

	"dxbar"
)

func main() {
	fmt.Println("SPLASH-2 substitute workloads: 64 tiles, MESI directory protocol,")
	fmt.Println("16 directory+memory controllers, 5-flit cache-line replies")
	fmt.Println()
	fmt.Printf("%-8s %-11s %12s %10s %12s\n", "bench", "design", "exec cycles", "latency", "nJ/packet")

	for _, bench := range []string{"Ocean", "Water"} {
		var base float64
		for _, d := range []dxbar.Design{dxbar.DesignBuffered4, dxbar.DesignFlitBless, dxbar.DesignDXbar} {
			res, err := dxbar.RunSplash(dxbar.SplashConfig{
				Design:    d,
				Benchmark: bench,
				Seed:      11,
			})
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = float64(res.ExecutionCycles)
			}
			fmt.Printf("%-8s %-11s %6d (%.2fx) %10.1f %12.4f\n",
				bench, d, res.ExecutionCycles,
				float64(res.ExecutionCycles)/base, res.AvgLatency, res.AvgEnergyNJ)
		}
		fmt.Println()
	}

	fmt.Println("Ocean floods the network with misses: Flit-Bless deflects under the")
	fmt.Println("burst pressure and loses both time and energy, while DXbar's buffered")
	fmt.Println("secondary crossbar absorbs the conflicts. Water barely touches the")
	fmt.Println("network, so every design performs alike — exactly the paper's point")
	fmt.Println("about bufferless designs looking good only at low load.")
}
