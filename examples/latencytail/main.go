// Latency tail: average latency hides what saturation does to a network.
// Near the throughput cliff the *mean* still looks plausible while the p99
// and max explode — and the packets that never finish are silently missing
// from every completed-packet statistic. This example drives the designs at
// a load past the bufferless saturation point and compares avg vs
// p50/p90/p99/max, flags runs whose in-flight backlog truncates the tail,
// and sketches the in-flight flit count over time for two designs: a
// saturated bufferless run grows without bound, a stable one plateaus.
package main

import (
	"fmt"
	"log"
	"strings"

	"dxbar"
	"dxbar/internal/report"
)

func main() {
	const load = 0.35
	designs := []struct {
		label  string
		design dxbar.Design
	}{
		{"Flit-Bless", dxbar.DesignFlitBless},
		{"SCARAB", dxbar.DesignSCARAB},
		{"Buffered 4", dxbar.DesignBuffered4},
		{"DXbar", dxbar.DesignDXbar},
	}

	fmt.Printf("Latency distribution at offered load %.2f (UR, 8x8 mesh)\n\n", load)

	var rows []report.LatencyRow
	results := map[string]dxbar.Result{}
	for _, d := range designs {
		res, err := dxbar.Run(dxbar.Config{
			Design:  d.design,
			Pattern: "UR",
			Load:    load,
			Seed:    7,
			// Sample the gauges every 200 cycles for the sparklines below.
			SampleInterval: 200,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, dxbar.LatencyRowFor(d.label, res))
		results[d.label] = res
	}
	fmt.Print(dxbar.LatencyTableText("avg vs tail percentiles", rows))
	fmt.Println()

	// The † rows are the point of the exercise: a mean computed only over
	// completed packets understates a saturated network, because the
	// slowest packets are exactly the ones still stuck inside it.
	for _, r := range rows {
		if r.Truncated() {
			fmt.Printf("note: %s still had %d packets in flight at run end — its latency\n"+
				"      columns describe only the packets that made it out.\n", r.Label, r.InFlight)
		}
	}
	fmt.Println()

	// Time-series view: in-flight flits per sample. A stable network
	// plateaus after warmup; past saturation the backlog just grows.
	for _, label := range []string{"Flit-Bless", "DXbar"} {
		res := results[label]
		var ys []float64
		for _, s := range res.TimeSeries {
			ys = append(ys, float64(s.InFlightFlits))
		}
		fmt.Printf("%-10s in-flight flits  %s  (last %d)\n", label, sparkline(ys), res.TimeSeries[len(res.TimeSeries)-1].InFlightFlits)
	}
}

// sparkline renders values as a row of eight-level block glyphs.
func sparkline(ys []float64) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := 0.0
	for _, y := range ys {
		if y > max {
			max = y
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(ys))
	}
	var b strings.Builder
	for _, y := range ys {
		i := int(y / max * float64(len(ramp)-1))
		b.WriteRune(ramp[i])
	}
	return b.String()
}
