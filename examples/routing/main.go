// Routing: DOR (dimension-ordered XY) versus WF (west-first minimal
// adaptive) on the patterns that discriminate between them — the paper's
// Fig. 7 observation that DXbar-DOR wins on UR/NUR/CP while DXbar-WF is
// competitive on the permutation patterns (BR, BF, MT, PS) whose traffic
// benefits from adaptive spreading.
package main

import (
	"fmt"
	"log"

	"dxbar"
)

func main() {
	fmt.Println("DXbar routing-algorithm comparison at offered load 0.5")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %10s\n", "pattern", "DOR accepted", "WF accepted", "winner")

	for _, p := range []string{"UR", "NUR", "CP", "BR", "BF", "MT", "PS"} {
		var acc [2]float64
		for i, algo := range []string{"DOR", "WF"} {
			res, err := dxbar.Run(dxbar.Config{
				Design:  dxbar.DesignDXbar,
				Routing: algo,
				Pattern: p,
				Load:    0.5,
				Seed:    21,
			})
			if err != nil {
				log.Fatal(err)
			}
			acc[i] = res.AcceptedLoad
		}
		winner := "DOR"
		if acc[1] > acc[0]*1.02 {
			winner = "WF"
		} else if acc[0] <= acc[1]*1.02 {
			winner = "tie"
		}
		fmt.Printf("%-8s %12.3f %12.3f %10s\n", p, acc[0], acc[1], winner)
	}

	fmt.Println()
	fmt.Println("DOR balances uniform and hot-spot traffic optimally; the adaptive")
	fmt.Println("west-first re-direction pays off when a permutation concentrates")
	fmt.Println("traffic on paths DOR cannot avoid. DXbar supports both because its")
	fmt.Println("buffered flits can re-arbitrate toward any productive port (§II.B).")
}
