// Trace replay: capture the packet trace of a coherence workload once, then
// replay the identical traffic against every router design. Replay is
// open-loop (injection timing no longer reacts to delivery), which makes it
// a fast, perfectly-controlled way to compare designs and to archive
// regression workloads.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dxbar"
)

func main() {
	fmt.Println("Recording the FFT coherence trace once...")
	var buf bytes.Buffer
	if err := dxbar.RecordSplash(dxbar.SplashConfig{Benchmark: "FFT", Seed: 5}, &buf); err != nil {
		log.Fatal(err)
	}
	traceBytes := buf.Bytes()
	fmt.Printf("trace size: %d bytes\n\n", len(traceBytes))

	fmt.Printf("%-11s %14s %10s %12s\n", "design", "drain cycles", "latency", "nJ/packet")
	for _, d := range []dxbar.Design{
		dxbar.DesignFlitBless, dxbar.DesignSCARAB,
		dxbar.DesignBuffered4, dxbar.DesignBuffered8,
		dxbar.DesignDXbar, dxbar.DesignUnified,
	} {
		res, err := dxbar.RunTrace(d, "DOR", bytes.NewReader(traceBytes), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %14d %10.1f %12.4f\n",
			res.Design, res.CompletionCycles, res.AvgLatency, res.AvgEnergyNJ)
	}

	fmt.Println()
	fmt.Println("Every design sees byte-identical traffic; differences are purely")
	fmt.Println("microarchitectural. The dual-crossbar and unified DXbar variants")
	fmt.Println("deliver near-identical numbers — the paper's §II.B claim.")
}
