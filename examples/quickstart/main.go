// Quickstart: simulate the DXbar router against the generic buffered
// baseline under uniform-random traffic at a moderate load, and print the
// headline comparison — higher accepted throughput, lower latency and lower
// energy per packet.
package main

import (
	"fmt"
	"log"

	"dxbar"
)

func main() {
	fmt.Println("DXbar quickstart: 8x8 mesh, uniform random traffic, offered load 0.35")
	fmt.Println()
	fmt.Printf("%-12s %10s %12s %12s\n", "design", "accepted", "latency", "nJ/packet")

	for _, d := range []dxbar.Design{dxbar.DesignBuffered4, dxbar.DesignDXbar} {
		res, err := dxbar.Run(dxbar.Config{
			Design:  d,
			Routing: "DOR",
			Pattern: "UR",
			Load:    0.35,
			Seed:    1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.4f %12.2f %12.4f\n",
			res.Design, res.AcceptedLoad, res.AvgLatency, res.AvgEnergyNJ)
	}

	fmt.Println()
	fmt.Println("DXbar switches uncontended flits in a single cycle through its")
	fmt.Println("bufferless primary crossbar and buffers conflict losers in the")
	fmt.Println("secondary crossbar, so it beats the 3-stage buffered baseline on")
	fmt.Println("latency while buffering only a small fraction of flits (lower energy).")
}
