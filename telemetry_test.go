package dxbar

import (
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"dxbar/internal/diag"
	"dxbar/internal/metrics"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// steadyTelemeteredNetwork is steadyShardedNetwork with a full live-metrics
// attachment (counters, gauges, latency histogram, per-shard profile series),
// for the telemetry allocation and race guards.
func steadyTelemeteredNetwork(t *testing.T, shards int) (*Network, *metrics.Registry) {
	t.Helper()
	mesh := topology.MustMesh(8, 8)
	pat, err := traffic.New("UR", mesh)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := traffic.NewBernoulli(mesh, pat, 0.3, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, 1<<40)
	coll.EnableTimeSeries(64, 32)
	reg := metrics.NewRegistry()
	tel := metrics.NewSimTelemetry(reg, metrics.SimTelemetryOptions{
		Shards:        sim.ResolveShards(shards, mesh.Width, mesh.Height),
		LatencyBounds: stats.LatencyBucketUppers(),
		Progress:      metrics.NewProgress("cycles", 0),
	})
	net, err := NewNetwork(NetworkOptions{
		Design:    DesignDXbar,
		Mesh:      mesh,
		Source:    &sim.SourceAdapter{B: bern},
		Stats:     coll,
		Shards:    shards,
		Telemetry: tel,
		// Run-health detectors publish into the same registry; the zero-alloc
		// and scrape-race guards must hold with them attached (short window so
		// the windowed leg runs during the measured cycles).
		Diag: diag.NewMonitor(diag.Config{Window: 64, Registry: reg}, mesh.Nodes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, reg
}

// TestTelemetryBitIdentity is the observability contract: attaching a
// registry and progress tracker must not change a single bit of the Result,
// on either engine. Telemetry publication reads simulation state; it never
// feeds back into it.
func TestTelemetryBitIdentity(t *testing.T) {
	base := Config{
		Design: DesignDXbar, Routing: "DOR", Pattern: "UR", Load: 0.3,
		WarmupCycles: 300, MeasureCycles: 1200, Seed: 42,
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"sequential", 0},
		{"sharded", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plainCfg := base
			plainCfg.Shards = tc.shards
			plain, err := Run(plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			telCfg := plainCfg
			telCfg.Metrics = metrics.NewRegistry()
			telCfg.Progress = metrics.NewProgress("cycles", 0)
			tel, err := Run(telCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, tel) {
				t.Errorf("telemetered result differs from plain run\nplain: %+v\ntel:   %+v", plain, tel)
			}
		})
	}
}

// TestStepZeroAllocTelemetry extends the zero-allocation guard to a fully
// telemetered engine: the per-cycle counter publication and the periodic
// gauge/histogram publish must both reuse capacity once warm.
func TestStepZeroAllocTelemetry(t *testing.T) {
	net, _ := steadyTelemeteredNetwork(t, 0)
	net.Engine.Run(3000)
	avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
	if avg != 0 {
		t.Errorf("%.2f allocations per 200-cycle telemetered run in steady state, want 0", avg)
	}
}

// TestStepZeroAllocObserved is the guard with the full observability stack
// of this PR attached: an SSE hub with a live subscriber and the ledger
// counter families registered on the same registry. The sampler goroutine
// reads the registry on its own clock (held off here by a long interval so
// its per-tick marshal does not pollute the process-global alloc counter);
// the engine's cycle loop must stay allocation-free regardless.
func TestStepZeroAllocObserved(t *testing.T) {
	net, reg := steadyTelemeteredNetwork(t, 0)
	hub := metrics.NewSSEHub(reg, nil, metrics.SSEHubOptions{Interval: time.Hour})
	defer hub.Close()
	ch, cancel := hub.Subscribe()
	defer cancel()
	records, hits := ledgerMetrics(reg)
	records.Add(1)
	hits.Add(1)

	net.Engine.Run(3000)
	avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
	if avg != 0 {
		t.Errorf("%.2f allocations per 200-cycle observed run in steady state, want 0", avg)
	}
	// The subscriber is still live and the hub functional after the run.
	hub.Close()
	if _, ok := <-ch; ok {
		t.Error("subscriber channel not closed by hub Close")
	}
}

// TestShardZeroAllocTelemetry is the same guard on the sharded engine, where
// publication additionally reads the per-shard execution profile.
func TestShardZeroAllocTelemetry(t *testing.T) {
	net, _ := steadyTelemeteredNetwork(t, 4)
	net.Engine.Run(3000)
	avg := testing.AllocsPerRun(5, func() { net.Engine.Run(200) })
	if avg != 0 {
		t.Errorf("%.2f allocations per 200-cycle telemetered sharded run in steady state, want 0", avg)
	}
}

// TestShardMetricsScrapeRace scrapes the registry continuously while the
// sharded engine runs on another goroutine — the race-detector guard for the
// /metrics read path (atomics and the histogram mutex only, never engine
// state). The name keeps it inside the Makefile's test-race matcher.
func TestShardMetricsScrapeRace(t *testing.T) {
	net, reg := steadyTelemeteredNetwork(t, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		net.Engine.Run(4000)
	}()
	scrapes := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			time.Sleep(time.Millisecond)
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(io.Discard, b.String()); err != nil {
			t.Fatal(err)
		}
		scrapes++
	}
	if scrapes < 2 {
		t.Errorf("only %d scrapes completed, want at least one mid-run", scrapes)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		metrics.MetricCycles,
		metrics.MetricShardWait,
		metrics.MetricShardImbalance,
	} {
		if !strings.Contains(b.String(), series) {
			t.Errorf("final exposition is missing %s", series)
		}
	}
}
