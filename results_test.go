package dxbar

import (
	"bytes"
	"testing"
)

// These tests guard the paper's headline qualitative results — the "shape"
// of the evaluation — with quick simulations. They are regression tests for
// the reproduction itself: if a refactor flips who wins, they fail.

func quick45(t *testing.T, d Design, routing string) Result {
	t.Helper()
	res, err := Run(Config{Design: d, Routing: routing, Pattern: "UR", Load: 0.45,
		WarmupCycles: 1000, MeasureCycles: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// §III.C / Fig. 5: DXbar-DOR saturates above every other design; past
// saturation the ordering is DXbar > Buffered8 > Buffered4 > bufferless.
func TestHeadlineThroughputOrdering(t *testing.T) {
	dx := quick45(t, DesignDXbar, "DOR")
	b8 := quick45(t, DesignBuffered8, "DOR")
	b4 := quick45(t, DesignBuffered4, "DOR")
	fb := quick45(t, DesignFlitBless, "DOR")
	sc := quick45(t, DesignSCARAB, "DOR")

	if !(dx.AcceptedLoad > b8.AcceptedLoad) {
		t.Errorf("DXbar (%.3f) must beat Buffered8 (%.3f)", dx.AcceptedLoad, b8.AcceptedLoad)
	}
	if !(b8.AcceptedLoad > b4.AcceptedLoad) {
		t.Errorf("Buffered8 (%.3f) must beat Buffered4 (%.3f)", b8.AcceptedLoad, b4.AcceptedLoad)
	}
	if !(b4.AcceptedLoad > fb.AcceptedLoad) || !(b4.AcceptedLoad > sc.AcceptedLoad) {
		t.Errorf("Buffered4 (%.3f) must beat the bufferless designs (%.3f, %.3f)",
			b4.AcceptedLoad, fb.AcceptedLoad, sc.AcceptedLoad)
	}
	// Paper: DXbar-DOR saturation above 0.4 of capacity; bufferless below 0.3.
	if dx.AcceptedLoad < 0.38 {
		t.Errorf("DXbar saturation %.3f fell below ~0.4", dx.AcceptedLoad)
	}
	if fb.AcceptedLoad > 0.31 || sc.AcceptedLoad > 0.31 {
		t.Errorf("bufferless saturation must stay below ~0.3 (got %.3f / %.3f)",
			fb.AcceptedLoad, sc.AcceptedLoad)
	}
	// Paper: at least 40% improvement over Buffered4 and the bufferless
	// designs (we accept >=20% for Buffered4, >=40% for bufferless).
	if dx.AcceptedLoad < 1.2*b4.AcceptedLoad {
		t.Errorf("DXbar (%.3f) should exceed Buffered4 (%.3f) by >=20%%", dx.AcceptedLoad, b4.AcceptedLoad)
	}
	if dx.AcceptedLoad < 1.4*fb.AcceptedLoad {
		t.Errorf("DXbar (%.3f) should exceed Flit-Bless (%.3f) by >=40%%", dx.AcceptedLoad, fb.AcceptedLoad)
	}
}

// Fig. 6 shape: at high load the bufferless designs burn multiples of
// DXbar's energy; the buffered baselines sit in between; DXbar is lowest.
func TestHeadlineEnergyOrdering(t *testing.T) {
	dx := quick45(t, DesignDXbar, "DOR")
	b4 := quick45(t, DesignBuffered4, "DOR")
	b8 := quick45(t, DesignBuffered8, "DOR")
	fb := quick45(t, DesignFlitBless, "DOR")
	sc := quick45(t, DesignSCARAB, "DOR")

	if !(dx.AvgEnergyNJ < b4.AvgEnergyNJ && dx.AvgEnergyNJ < b8.AvgEnergyNJ) {
		t.Errorf("DXbar energy (%.3f) must undercut the buffered baselines (%.3f, %.3f)",
			dx.AvgEnergyNJ, b4.AvgEnergyNJ, b8.AvgEnergyNJ)
	}
	if !(fb.AvgEnergyNJ > 1.5*dx.AvgEnergyNJ) {
		t.Errorf("Flit-Bless energy (%.3f) must blow past DXbar (%.3f) beyond saturation",
			fb.AvgEnergyNJ, dx.AvgEnergyNJ)
	}
	if !(sc.AvgEnergyNJ > dx.AvgEnergyNJ) {
		t.Errorf("SCARAB energy (%.3f) must exceed DXbar (%.3f)", sc.AvgEnergyNJ, dx.AvgEnergyNJ)
	}
	// Paper: at least 15% power saving over the baseline.
	if dx.AvgEnergyNJ > 0.85*b4.AvgEnergyNJ {
		t.Errorf("DXbar (%.3f) should save >=15%% energy vs Buffered4 (%.3f)",
			dx.AvgEnergyNJ, b4.AvgEnergyNJ)
	}
}

// At low load the bufferless designs and DXbar consume the same energy
// ("Flit-Bless and SCARAB use as little energy as DXbar does at zero load").
func TestZeroLoadEnergyParity(t *testing.T) {
	get := func(d Design) float64 {
		res, err := Run(Config{Design: d, Pattern: "UR", Load: 0.05,
			WarmupCycles: 500, MeasureCycles: 2000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgEnergyNJ
	}
	dx, fb := get(DesignDXbar), get(DesignFlitBless)
	if fb < 0.95*dx || fb > 1.1*dx {
		t.Errorf("low-load energy should match: DXbar %.4f vs Flit-Bless %.4f", dx, fb)
	}
}

// §II.B: the unified crossbar performs like the dual crossbar.
func TestUnifiedMatchesDual(t *testing.T) {
	dx := quick45(t, DesignDXbar, "DOR")
	un := quick45(t, DesignUnified, "DOR")
	if un.AcceptedLoad < 0.95*dx.AcceptedLoad {
		t.Errorf("unified throughput (%.3f) must track dual (%.3f) within ~5%%",
			un.AcceptedLoad, dx.AcceptedLoad)
	}
	// Unified pays +2 pJ/flit switching energy.
	if un.AvgEnergyNJ <= dx.AvgEnergyNJ {
		t.Errorf("unified energy (%.4f) must slightly exceed dual (%.4f)",
			un.AvgEnergyNJ, dx.AvgEnergyNJ)
	}
}

// §III.E / Fig. 11: with DOR routing, throughput degrades <10% even at 100%
// faults; WF degrades more than DOR.
func TestHeadlineFaultDegradation(t *testing.T) {
	run := func(algo string, faults float64) Result {
		res, err := Run(Config{Design: DesignDXbar, Routing: algo, Pattern: "UR",
			Load: 0.35, WarmupCycles: 1000, MeasureCycles: 4000, Seed: 42,
			FaultFraction: faults, FaultCycle: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dor0, dor100 := run("DOR", 0), run("DOR", 1.0)
	wf0, wf100 := run("WF", 0), run("WF", 1.0)

	dorLoss := 1 - dor100.AcceptedLoad/dor0.AcceptedLoad
	wfLoss := 1 - wf100.AcceptedLoad/wf0.AcceptedLoad
	if dorLoss > 0.10 {
		t.Errorf("DOR throughput loss at 100%% faults = %.1f%%, paper says <10%%", dorLoss*100)
	}
	if wfLoss < dorLoss {
		t.Errorf("WF must degrade at least as much as DOR (WF %.1f%% vs DOR %.1f%%)",
			wfLoss*100, dorLoss*100)
	}
	// Power rises with faults (more flits buffered).
	if dor100.AvgEnergyNJ <= dor0.AvgEnergyNJ {
		t.Error("energy must rise with faults (buffered power)")
	}
}

// Fig. 9/10 shape on the most network-intensive benchmark: DXbar finishes
// Ocean faster and cheaper than Flit-Bless and the buffered baseline.
func TestHeadlineSplashOcean(t *testing.T) {
	get := func(d Design) SplashResult {
		res, err := RunSplash(SplashConfig{Design: d, Benchmark: "Ocean", Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dx, fb, b4 := get(DesignDXbar), get(DesignFlitBless), get(DesignBuffered4)
	if dx.ExecutionCycles >= fb.ExecutionCycles {
		t.Errorf("DXbar Ocean (%d cycles) must beat Flit-Bless (%d)",
			dx.ExecutionCycles, fb.ExecutionCycles)
	}
	if dx.ExecutionCycles >= b4.ExecutionCycles {
		t.Errorf("DXbar Ocean (%d cycles) must beat Buffered4 (%d)",
			dx.ExecutionCycles, b4.ExecutionCycles)
	}
	if dx.AvgEnergyNJ >= fb.AvgEnergyNJ || dx.AvgEnergyNJ >= b4.AvgEnergyNJ {
		t.Errorf("DXbar Ocean energy (%.3f) must undercut Flit-Bless (%.3f) and Buffered4 (%.3f)",
			dx.AvgEnergyNJ, fb.AvgEnergyNJ, b4.AvgEnergyNJ)
	}
}

// Trace record/replay drains every packet for every design.
func TestTraceRoundTripAllDesigns(t *testing.T) {
	var buf bytes.Buffer
	if err := RecordSplash(SplashConfig{Benchmark: "Water", Seed: 5}, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, d := range Designs {
		res, err := RunTrace(d, "DOR", bytes.NewReader(raw), 0)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if res.Packets == 0 {
			t.Fatalf("%s delivered nothing", d)
		}
	}
}

// RunSplash must be deterministic.
func TestSplashDeterministic(t *testing.T) {
	cfg := SplashConfig{Design: DesignDXbar, Benchmark: "Water", Seed: 3}
	a, err := RunSplash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSplash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("splash run diverged:\n%+v\n%+v", a, b)
	}
}

// All nine benchmarks complete on the DXbar design.
func TestAllSplashBenchmarksComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop matrix is slow")
	}
	for _, bench := range SplashBenchmarks() {
		res, err := RunSplash(SplashConfig{Design: DesignDXbar, Benchmark: bench, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if res.ExecutionCycles == 0 || res.Packets == 0 {
			t.Errorf("%s produced empty results", bench)
		}
	}
}

// Crosspoint-granularity faults degrade far more gently than whole-crossbar
// failures: a single broken crosspoint removes one of 20/25 paths, and the
// 2x2 steering reroutes around it after detection.
func TestCrosspointFaultsGentlerThanCrossbarFaults(t *testing.T) {
	run := func(gran string) Result {
		res, err := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.35,
			WarmupCycles: 1000, MeasureCycles: 4000, Seed: 42,
			FaultFraction: 1.0, FaultCycle: 10, FaultGranularity: gran})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := quick45(t, DesignDXbar, "DOR")
	xp := run("crosspoint")
	xb := run("crossbar")
	if xp.AcceptedLoad < xb.AcceptedLoad {
		t.Errorf("crosspoint faults (%.3f) must hurt less than whole-crossbar faults (%.3f)",
			xp.AcceptedLoad, xb.AcceptedLoad)
	}
	if xp.AvgLatency > 3*healthy.AvgLatency {
		t.Errorf("single-crosspoint faults should barely dent latency (%.1f vs healthy %.1f)",
			xp.AvgLatency, healthy.AvgLatency)
	}
	if _, err := Run(Config{Design: DesignDXbar, Load: 0.1, FaultFraction: 0.5,
		FaultGranularity: "bogus", WarmupCycles: 10, MeasureCycles: 10}); err == nil {
		t.Error("unknown granularity must error")
	}
}

// Detailed-cache mode runs end to end through the facade and preserves the
// headline ordering on the hot benchmark.
func TestDetailedCachesThroughFacade(t *testing.T) {
	get := func(d Design) SplashResult {
		res, err := RunSplash(SplashConfig{Design: d, Benchmark: "Ocean", Seed: 11, DetailedCaches: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dx, fb := get(DesignDXbar), get(DesignFlitBless)
	if dx.Packets == 0 || fb.Packets == 0 {
		t.Fatal("detailed mode delivered nothing")
	}
	if dx.AvgEnergyNJ >= fb.AvgEnergyNJ {
		t.Errorf("DXbar energy (%.3f) must undercut Flit-Bless (%.3f) in detailed mode too",
			dx.AvgEnergyNJ, fb.AvgEnergyNJ)
	}
}
