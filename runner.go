package dxbar

import (
	"fmt"
	"sync"

	"dxbar/internal/coherence"
	"dxbar/internal/energy"
	"dxbar/internal/events"
	"dxbar/internal/faults"
	"dxbar/internal/metrics"
	"dxbar/internal/runstore"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// latencyBounds caches the latency histogram's bucket bounds — identical for
// every run, and ~2000 float64s, so sweeps sharing a registry should not
// rebuild them per point.
var (
	latencyBoundsOnce sync.Once
	latencyBounds     []float64
)

// newTelemetry builds the per-run telemetry handle for a config, or nil when
// the config carries neither a registry nor a progress tracker.
func newTelemetry(cfg Config, mesh *topology.Mesh) *metrics.SimTelemetry {
	if cfg.Metrics == nil && cfg.Progress == nil {
		return nil
	}
	opts := metrics.SimTelemetryOptions{
		Shards:   sim.ResolveShards(cfg.Shards, mesh.Width, mesh.Height),
		Progress: cfg.Progress,
	}
	if cfg.Metrics != nil {
		latencyBoundsOnce.Do(func() { latencyBounds = stats.LatencyBucketUppers() })
		opts.LatencyBounds = latencyBounds
	}
	return metrics.NewSimTelemetry(cfg.Metrics, opts)
}

// shardImbalance is max/mean cumulative router-phase time over a profile.
func shardImbalance(profs []sim.ShardProfile) float64 {
	if len(profs) == 0 {
		return 0
	}
	var total, max float64
	for _, p := range profs {
		busy := p.RouterPhase.Seconds()
		total += busy
		if busy > max {
			max = busy
		}
	}
	if total == 0 {
		return 0
	}
	return max * float64(len(profs)) / total
}

// engineKey identifies the engines a runner may transparently reuse: an
// engine can only be Reset into a config with the same mesh and the same
// structural parameters (buffer depth, credit delay, resolved shard count).
type engineKey struct {
	width, height int
	bufferDepth   int
	creditDelay   int
	shards        int
}

// runner executes simulations while recycling meshes and engines across
// runs. Reusing an engine skips re-allocating every latch, buffer and
// scratch slice of the network (sim.Engine.Reset), which is what makes
// batch sweeps (RunMany, RunManySplash) cheap: each worker goroutine owns
// one runner and amortizes the network build over all its jobs.
//
// A runner is NOT safe for concurrent use; give each goroutine its own.
type runner struct {
	meshes  map[[2]int]*topology.Mesh
	engines map[engineKey]*sim.Engine
}

func newRunner() *runner {
	return &runner{
		meshes:  make(map[[2]int]*topology.Mesh),
		engines: make(map[engineKey]*sim.Engine),
	}
}

// mesh returns the cached mesh for the given dimensions, building it on
// first use. Engine reuse depends on mesh identity (sim.Engine.Reset
// requires the same *topology.Mesh), so all runs of one runner at the same
// dimensions share one mesh.
func (r *runner) mesh(w, h int) (*topology.Mesh, error) {
	key := [2]int{w, h}
	if m, ok := r.meshes[key]; ok {
		return m, nil
	}
	m, err := topology.NewMesh(w, h)
	if err != nil {
		return nil, err
	}
	r.meshes[key] = m
	return m, nil
}

// network builds (or recycles) a Network for the options. On a cache hit
// the engine is Reset in place — same mesh, fresh routers, fresh state —
// which preserves run-to-run determinism: a reset engine produces
// bit-identical results to a freshly built one.
func (r *runner) network(o NetworkOptions) (*Network, error) {
	cfg, factory, meter, err := prepare(o)
	if err != nil {
		return nil, err
	}
	key := engineKey{
		width:       o.Mesh.Width,
		height:      o.Mesh.Height,
		bufferDepth: cfg.BufferDepth,
		creditDelay: cfg.CreditDelay,
		shards:      sim.ResolveShards(cfg.Shards, o.Mesh.Width, o.Mesh.Height),
	}
	if key.creditDelay == 0 {
		key.creditDelay = 1
	}
	if eng, ok := r.engines[key]; ok {
		if err := eng.Reset(cfg, factory); err == nil {
			return &Network{Engine: eng, Meter: meter, Stats: o.Stats}, nil
		}
		// Incompatible (e.g. a different mesh pointer slipped in): fall
		// through and rebuild.
		delete(r.engines, key)
	}
	eng, err := sim.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	r.engines[key] = eng
	return &Network{Engine: eng, Meter: meter, Stats: o.Stats}, nil
}

// run is the open-loop synthetic-traffic simulation behind the public Run.
func (r *runner) run(c Config) (Result, error) {
	return r.runFrom(c, nil, 0)
}

// runFrom executes a run, optionally continuing from a checkpoint. With a
// nil Checkpoint it is the ordinary cold-start path. With one, the engine is
// restored before any cycle runs, and the warmup/measure legs shrink to the
// cycles the checkpoint hasn't already covered — the resumed run's Result is
// bit-identical to the uninterrupted run's. rewindWindow > 0 additionally
// clips the run to that many cycles past the checkpoint (the Rewind path);
// the partial window is renormalized like an interrupted run's.
func (r *runner) runFrom(c Config, ck *Checkpoint, rewindWindow uint64) (Result, error) {
	cfg := c.withDefaults()
	// Run ledger: archive the completed run under its content hash and —
	// with LedgerReuse — recognize an already-archived identical run before
	// simulating a single cycle. Runs are deterministic, so a key hit is the
	// run's result. A misconfigured ledger directory fails fast here; write
	// failures later only log (like checkpoints, the archive is a safety
	// net, never the simulation's problem).
	var (
		led        *Ledger
		ledKey     string
		ledCfgJSON []byte
	)
	if cfg.LedgerDir == "" {
		cfg.LedgerDir, cfg.LedgerReuse = ledgerDefaults()
	}
	if cfg.LedgerDir != "" {
		var err error
		led, err = OpenLedger(cfg.LedgerDir)
		if err != nil {
			return Result{}, err
		}
		ledCfgJSON, err = ledgerConfigJSON(cfg)
		if err != nil {
			return Result{}, err
		}
		ledKey, err = runstore.Key(runstore.KindRun, ledCfgJSON)
		if err != nil {
			return Result{}, err
		}
		if cfg.LedgerReuse && ck == nil && rewindWindow == 0 && ledgerReusable(cfg) {
			if rec, ok := led.Lookup(ledKey); ok {
				if res, err := LedgerResult(rec); err == nil {
					_, reuseHits := ledgerMetrics(cfg.Metrics)
					reuseHits.Add(1)
					if cfg.Progress != nil {
						total := cfg.WarmupCycles + cfg.MeasureCycles
						cfg.Progress.SetTotal(total)
						cfg.Progress.Set(total)
					}
					return res, nil
				}
			}
		}
	}
	mesh, err := r.mesh(cfg.Width, cfg.Height)
	if err != nil {
		return Result{}, err
	}
	pattern, err := traffic.New(cfg.Pattern, mesh)
	if err != nil {
		return Result{}, err
	}
	bern, err := traffic.NewBernoulli(mesh, pattern, cfg.Load, cfg.FlitsPerPacket, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	var plan *faults.Plan
	if cfg.FaultFraction > 0 {
		switch cfg.FaultGranularity {
		case "", "crossbar":
			plan, err = faults.NewPlan(mesh.Nodes(), cfg.FaultFraction, cfg.FaultCycle, cfg.Seed)
		case "crosspoint":
			plan, err = faults.NewCrosspointPlan(mesh.Nodes(), cfg.FaultFraction, cfg.FaultCycle, cfg.Seed)
		default:
			return Result{}, fmt.Errorf("dxbar: unknown fault granularity %q", cfg.FaultGranularity)
		}
		if err != nil {
			return Result{}, err
		}
	}
	coll := stats.NewCollector(mesh.Nodes(), cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles)
	if cfg.TrackUtilization {
		coll.EnableLinkUtilization(mesh.Width, mesh.Height)
	}
	if cfg.SampleInterval > 0 {
		total := cfg.WarmupCycles + cfg.MeasureCycles
		coll.EnableTimeSeries(cfg.SampleInterval, int(total/cfg.SampleInterval)+1)
	}
	var rec *events.Recorder
	if cfg.EventTrace > 0 {
		kinds, err := events.ParseKinds(cfg.EventKinds)
		if err != nil {
			return Result{}, err
		}
		rec = events.NewRecorder(mesh.Nodes(), cfg.EventTrace, kinds...)
	}
	tel := newTelemetry(cfg, mesh)
	if cfg.Progress != nil {
		cfg.Progress.SetTotal(cfg.WarmupCycles + cfg.MeasureCycles)
	}
	// Run-health monitor: on by default (newRunDiag returns a nil monitor —
	// every hook no-ops — only with cfg.DisableDiag). Detectors observe and
	// never steer, so results stay bit-identical either way.
	dg := newRunDiag(cfg, mesh.Nodes())
	net, err := r.network(NetworkOptions{
		Design:               cfg.Design,
		Routing:              cfg.Routing,
		Mesh:                 mesh,
		Source:               &sim.SourceAdapter{B: bern},
		Stats:                coll,
		FairnessThreshold:    cfg.FairnessThreshold,
		FaultPlan:            plan,
		BufferDepth:          cfg.BufferDepth,
		CreditDelay:          cfg.CreditDelay,
		PortOrderArbitration: cfg.PortOrderArbitration,
		ReferenceArbitration: cfg.ReferenceArbitration,
		Events:               rec,
		Shards:               cfg.Shards,
		RebalanceInterval:    cfg.RebalanceInterval,
		Telemetry:            tel,
		Diag:                 dg.mon,
	})
	if err != nil {
		return Result{}, err
	}
	if ck != nil {
		if err := net.Engine.Restore(ck.engine); err != nil {
			return Result{}, err
		}
	}

	// Periodic checkpointing. The hook is one nil check and one compare per
	// cycle between writes; a failed write logs and the run continues — a
	// full disk should cost the safety net, not the simulation.
	var (
		base      energy.Counts
		baseSet   bool
		ckptTrack *checkpointTracker
	)
	if cfg.CheckpointInterval > 0 && cfg.CheckpointDir != "" {
		ckptTrack = &checkpointTracker{}
		net.Engine.SetCheckpointHook(cfg.CheckpointInterval, func(cyc uint64) {
			past := cyc >= cfg.WarmupCycles
			var b energy.Counts
			if past {
				if baseSet {
					b = base
				} else {
					// The hook fired exactly on the warmup boundary, inside
					// the warmup leg — this snapshot is the base that leg
					// captures when it returns.
					b = net.Meter.Snapshot()
				}
			}
			path, err := writeCheckpoint(cfg.CheckpointDir, cfg.CheckpointKeep, cfg, cyc, past, b, net.Engine)
			if err != nil {
				if dg.logger != nil {
					dg.logger.Error("checkpoint write failed", "dir", cfg.CheckpointDir, "cycle", cyc, "err", err)
				}
				return
			}
			ckptTrack.set(path)
		})
	}
	// The bundle writer closes over the live network, so it installs after
	// the network exists; anomalies before the first detector window cannot
	// occur (the watchdog thresholds exceed the window).
	dg.installDumper(cfg, net, coll, rec, ckptTrack)

	total := cfg.WarmupCycles + cfg.MeasureCycles
	stop := total
	if ck != nil && rewindWindow > 0 {
		if s := ck.Cycle + rewindWindow; s < stop {
			stop = s
		}
	}
	runTo := func(target uint64) {
		if cyc := net.Engine.Cycle(); target > cyc {
			net.Engine.Run(target - cyc)
		}
	}
	if w := cfg.WarmupCycles; net.Engine.Cycle() < w {
		if stop < w {
			runTo(stop) // rewind window ends inside warmup
		} else {
			runTo(w)
		}
	}
	if ck != nil && ck.PastWarmup {
		base = ck.Base
	} else {
		base = net.Meter.Snapshot()
	}
	baseSet = true
	runTo(stop)

	window := net.Meter.Snapshot().Sub(base)
	interrupted := dg.mon.StopRequested()
	// A run that stopped short of the configured window — graceful shutdown,
	// or a rewind clipped to its window — covers fewer cycles than the
	// collector was sized for; normalize the per-cycle rates and power by the
	// cycles actually simulated rather than the window that never completed.
	// One path for every early ending, whether or not Interrupted is set.
	measured := cfg.MeasureCycles
	if actual := net.Engine.Cycle(); actual < total {
		coll.Truncate(actual)
		measured = 0
		if actual > cfg.WarmupCycles {
			measured = actual - cfg.WarmupCycles
		}
		if measured == 0 {
			measured = 1 // ended in warmup: keep the power model defined
		}
	}
	// Final telemetry flush, then detach this run's residual gauge
	// contributions from the shared registry (counters stay — they are
	// cumulative across runs by design). An interrupted run flushes the
	// same way: graceful shutdown is exactly "stop early, publish, detach".
	net.Engine.FlushTelemetry()
	tel.Detach()
	if interrupted {
		// Leave a forensic bundle for the run that was cut short, unless an
		// anomaly already wrote one.
		dg.mon.FinalDump(net.Engine.Cycle(), "interrupt")
	}
	dg.mon.Detach()

	res := Result{
		Results:         coll.Results(),
		EventCounts:     window,
		TotalEnergyNJ:   net.Meter.EnergyPJ(window) / 1000.0,
		Design:          cfg.Design,
		Routing:         cfg.Routing,
		Pattern:         cfg.Pattern,
		Load:            cfg.Load,
		NodeUtilization: coll.NodeUtilization(),
		TimeSeries:      coll.Samples(),
		SampleInterval:  cfg.SampleInterval,
		Width:           cfg.Width,
		Height:          cfg.Height,
	}
	if rec != nil {
		res.Events = rec.Events()
		res.EventsRecorded = rec.Total()
		res.EventsOverwritten = rec.Overwritten()
		res.RouterEvents = rec.Matrix()
	}
	if cfg.ShardProfile {
		res.ShardProfile = net.Engine.ShardProfiles()
		res.ShardImbalance = shardImbalance(res.ShardProfile)
		res.ShardRebalances, res.ShardNodesMigrated = net.Engine.ShardRebalances()
	}
	res.Anomalies = dg.mon.Anomalies()
	res.AnomaliesDropped = dg.mon.DroppedAnomalies()
	res.Interrupted = interrupted
	if res.Packets > 0 {
		res.AvgEnergyNJ = res.TotalEnergyNJ / float64(res.Packets)
	}
	res.Power, err = net.Meter.Breakdown(string(cfg.Design), window, measured, mesh.Nodes())
	if err != nil {
		return Result{}, err
	}
	// Archive the completed run. Partial windows (graceful interrupt, rewind
	// clip) are skipped: a ledger record always describes the configured
	// window, so the content key stays truthful.
	if led != nil && !interrupted && net.Engine.Cycle() == total {
		if _, err := led.archiveRun(ledKey, ledCfgJSON, res, nil); err != nil {
			if dg.logger != nil {
				dg.logger.Error("ledger write failed", "dir", cfg.LedgerDir, "key", ledKey, "err", err)
			}
		} else {
			records, _ := ledgerMetrics(cfg.Metrics)
			records.Add(1)
		}
	}
	return res, nil
}

// splashDefaults applies SplashConfig's defaults (shared with the ledger's
// key computation, which must hash the defaulted config).
func splashDefaults(c SplashConfig) SplashConfig {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Height == 0 {
		c.Height = 8
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 3_000_000
	}
	if c.Routing == "" {
		c.Routing = "DOR"
	}
	return c
}

// runSplash is the closed-loop coherence simulation behind RunSplash.
func (r *runner) runSplash(c SplashConfig) (SplashResult, error) {
	c = splashDefaults(c)
	mesh, err := r.mesh(c.Width, c.Height)
	if err != nil {
		return SplashResult{}, err
	}
	prof, ok := coherence.ProfileByName(c.Benchmark)
	if !ok {
		return SplashResult{}, fmt.Errorf("dxbar: unknown benchmark %q", c.Benchmark)
	}
	if c.DetailedCaches {
		prof = prof.Detailed()
	}
	sys, err := coherence.NewSystem(mesh, prof, c.Seed)
	if err != nil {
		return SplashResult{}, err
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, c.MaxCycles)
	net, err := r.network(NetworkOptions{
		Design:   c.Design,
		Routing:  c.Routing,
		Mesh:     mesh,
		Source:   sys,
		Sink:     sys,
		Stats:    coll,
		PreCycle: sys.PreCycle,
	})
	if err != nil {
		return SplashResult{}, err
	}
	if !net.Engine.RunUntil(sys.Quiesced, c.MaxCycles) {
		return SplashResult{}, fmt.Errorf("dxbar: benchmark %s on %s did not finish within %d cycles",
			c.Benchmark, c.Design, c.MaxCycles)
	}
	res := SplashResult{
		ExecutionCycles: sys.FinishCycle(),
		TotalEnergyNJ:   net.Meter.TotalPJ() / 1000.0,
		Design:          c.Design,
		Routing:         c.Routing,
		Benchmark:       c.Benchmark,
	}
	sr := coll.Results()
	res.Packets = sr.Packets
	res.AvgLatency = sr.AvgLatency
	res.P50Latency = sr.P50Latency
	res.P99Latency = sr.P99Latency
	res.MaxLatency = sr.MaxLatency
	res.InFlightPackets = sr.InFlightPackets
	if sr.Packets > 0 {
		res.AvgEnergyNJ = res.TotalEnergyNJ / float64(sr.Packets)
	}
	return res, nil
}
