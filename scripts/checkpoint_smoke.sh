#!/bin/sh
# Checkpoint smoke test: the crash-recovery story end to end. Run dxbar-sim
# with checkpointing, kill -9 it mid-flight (no signal handler gets a say),
# resume from the newest surviving checkpoint, and assert the resumed run's
# measured metrics are identical to an uninterrupted reference run's. Needs
# the go toolchain.
set -eu

WORK="$(mktemp -d)"
SIM_PID=""
cleanup() {
	[ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dxbar-sim" ./cmd/dxbar-sim

# Shared run shape: small mesh, long enough to straddle several checkpoints.
RUN_FLAGS="-design dxbar -width 4 -height 4 -load 0.3 -seed 11 -warmup 500 -measure 2000000"

# summary extracts the deterministic lines of a run report: everything except
# host-dependent noise (there is none today, but keep the filter explicit so
# a future wall-clock line cannot break the comparison).
summary() {
	grep -E '^(design|pattern|offered load|accepted load|packets|avg latency|latency tail|avg hops|avg energy|deflections|retransmits|buffering prob|dropped flits)' "$1"
}

# 1. Reference: the same configuration, uninterrupted, no checkpointing.
"$WORK/dxbar-sim" $RUN_FLAGS >"$WORK/ref.stdout" 2>"$WORK/ref.stderr"

# 2. Checkpointed run, murdered mid-flight. -9 is the point: no flush, no
#    handler — only the atomically renamed checkpoint files survive.
"$WORK/dxbar-sim" $RUN_FLAGS -checkpoint-interval 50000 -checkpoint-dir "$WORK/ckpt" \
	>/dev/null 2>"$WORK/kill.stderr" &
SIM_PID=$!

# Wait for at least two checkpoints so the kill lands mid-run, not pre-run.
have_ckpt=0
for _ in $(seq 1 100); do
	n="$(ls "$WORK/ckpt"/ckpt-*.dxsn 2>/dev/null | wc -l)"
	if [ "$n" -ge 2 ]; then
		have_ckpt=1
		break
	fi
	kill -0 "$SIM_PID" 2>/dev/null || break
	sleep 0.1
done
if [ "$have_ckpt" -eq 1 ] && kill -0 "$SIM_PID" 2>/dev/null; then
	kill -9 "$SIM_PID"
	wait "$SIM_PID" 2>/dev/null || true
	SIM_PID=""
else
	# The run outpaced the poll loop and finished; its checkpoints are still
	# on disk, so the resume below still proves recovery — note it and go on.
	wait "$SIM_PID" 2>/dev/null || true
	SIM_PID=""
	echo "checkpoint-smoke: run finished before kill -9 landed; resuming from its last checkpoint anyway"
fi

set -- "$WORK/ckpt"/ckpt-*.dxsn
[ -e "$1" ] || {
	echo "checkpoint-smoke: no checkpoint files under $WORK/ckpt" >&2
	cat "$WORK/kill.stderr" >&2
	exit 1
}

# 3. Resume from the directory (newest checkpoint wins) and compare the
#    deterministic summary against the uninterrupted reference.
"$WORK/dxbar-sim" -resume "$WORK/ckpt" >"$WORK/res.stdout" 2>"$WORK/res.stderr"

summary "$WORK/ref.stdout" >"$WORK/ref.summary"
summary "$WORK/res.stdout" >"$WORK/res.summary"
if ! diff -u "$WORK/ref.summary" "$WORK/res.summary"; then
	echo "checkpoint-smoke: resumed run diverged from the uninterrupted reference" >&2
	exit 1
fi

echo "checkpoint-smoke: ok (kill -9 mid-run, resumed bit-identical)"
