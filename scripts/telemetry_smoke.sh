#!/bin/sh
# Telemetry smoke test: launch a sharded dxbar-sim with the live-telemetry
# endpoint, scrape /healthz and /metrics while the simulation is running, and
# assert the core and per-shard series are present. Exercises the same path a
# dashboard scraping a long sweep would use. Needs curl and the go toolchain.
set -eu

PORT="${1:-18230}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SIM_PID=""
cleanup() {
	[ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dxbar-sim" ./cmd/dxbar-sim

# A run long enough to still be in flight when we scrape; cleanup kills it.
"$WORK/dxbar-sim" -measure 50000000 -shards 2 -http "127.0.0.1:$PORT" \
	>/dev/null 2>"$WORK/sim.stderr" &
SIM_PID=$!

ready=""
for _ in $(seq 1 60); do
	if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
		ready=yes
		break
	fi
	if ! kill -0 "$SIM_PID" 2>/dev/null; then
		echo "telemetry-smoke: dxbar-sim exited before serving" >&2
		cat "$WORK/sim.stderr" >&2
		exit 1
	fi
	sleep 0.25
done
if [ -z "$ready" ]; then
	echo "telemetry-smoke: /healthz never came up on $BASE" >&2
	exit 1
fi

# Let the engine pass its first publish interval so gauges are populated.
sleep 1

curl -sf "$BASE/healthz" | grep -q '^ok$' || {
	echo "telemetry-smoke: /healthz did not answer ok" >&2
	exit 1
}
curl -sf "$BASE/progress" | grep -q '"unit"' || {
	echo "telemetry-smoke: /progress is not serving JSON" >&2
	exit 1
}

METRICS="$WORK/metrics.txt"
curl -sf "$BASE/metrics" >"$METRICS"
for series in \
	'^dxbar_cycles_total [1-9]' \
	'^dxbar_shard_barrier_wait_seconds_total{shard="0"}' \
	'^dxbar_shard_imbalance_ratio '; do
	if ! grep -q "$series" "$METRICS"; then
		echo "telemetry-smoke: /metrics is missing series matching: $series" >&2
		echo "--- scraped exposition:" >&2
		cat "$METRICS" >&2
		exit 1
	fi
done

echo "telemetry-smoke: ok ($(grep -c '^dxbar_' "$METRICS") dxbar samples live at $BASE/metrics)"
