#!/bin/sh
# Diagnostics smoke test: force an anomaly on a saturated dxbar-sim run and
# assert a complete post-mortem bundle lands in -diag-dir, then SIGQUIT a
# live healthy run and assert the signal bundle. Exercises the same black-box
# path an operator (or CI triage) would use on a sick run. Needs the go
# toolchain.
set -eu

WORK="$(mktemp -d)"
DIAG="${1:-diag-artifacts}"
SIM_PID=""
cleanup() {
	[ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dxbar-sim" ./cmd/dxbar-sim
rm -rf "$DIAG"

# The bundle's required file set; manifest.json is written last, so its
# presence marks a bundle complete.
BUNDLE_FILES="anomalies.json config.json goroutines.txt latency.json manifest.json metrics.prom run.json shards.json trace.json"

check_bundle() {
	bdir="$1"
	for f in $BUNDLE_FILES; do
		if [ ! -s "$bdir/$f" ]; then
			echo "diag-smoke: bundle $bdir is missing or has empty $f" >&2
			ls -l "$bdir" >&2 || true
			exit 1
		fi
	done
	grep -q '"schema"' "$bdir/manifest.json" || {
		echo "diag-smoke: $bdir/manifest.json has no schema field" >&2
		exit 1
	}
}

# 1. Forced anomaly: far past saturation with a low age watermark, the
#    starvation detector must fire and auto-dump one bundle.
"$WORK/dxbar-sim" -design dxbar -load 0.95 -warmup 200 -measure 4000 \
	-diag-dir "$DIAG/anomaly" -diag-max-age 500 -diag-window 128 \
	-log-format json >"$WORK/run.stdout" 2>"$WORK/run.stderr"

grep -q '"kind":"starvation"' "$WORK/run.stderr" || {
	echo "diag-smoke: no structured starvation record on stderr" >&2
	cat "$WORK/run.stderr" >&2
	exit 1
}
grep -q 'starvation' "$WORK/run.stdout" || {
	echo "diag-smoke: run report has no anomaly table" >&2
	cat "$WORK/run.stdout" >&2
	exit 1
}
set -- "$DIAG"/anomaly/dxbar-diag-anomaly-starvation-*
[ -d "$1" ] || {
	echo "diag-smoke: no anomaly bundle under $DIAG/anomaly" >&2
	exit 1
}
check_bundle "$1"
grep -q '"reason": "anomaly-starvation"' "$1/manifest.json" || {
	echo "diag-smoke: bundle reason is not anomaly-starvation" >&2
	cat "$1/manifest.json" >&2
	exit 1
}

# 2. SIGQUIT on a live healthy run: the dump request is consumed at the next
#    detector-window boundary and writes a signal bundle while the run keeps
#    going; cleanup kills the run afterwards.
"$WORK/dxbar-sim" -measure 50000000 -diag-dir "$DIAG/signal" -diag-window 1024 \
	>/dev/null 2>"$WORK/sig.stderr" &
SIM_PID=$!
sleep 1
kill -0 "$SIM_PID" 2>/dev/null || {
	echo "diag-smoke: dxbar-sim exited before SIGQUIT" >&2
	cat "$WORK/sig.stderr" >&2
	exit 1
}
kill -QUIT "$SIM_PID"

bdir=""
for _ in $(seq 1 40); do
	set -- "$DIAG"/signal/dxbar-diag-signal-*
	if [ -d "$1" ] && [ -s "$1/manifest.json" ]; then
		bdir="$1"
		break
	fi
	sleep 0.25
done
[ -n "$bdir" ] || {
	echo "diag-smoke: SIGQUIT produced no signal bundle" >&2
	cat "$WORK/sig.stderr" >&2
	exit 1
}
kill -0 "$SIM_PID" 2>/dev/null || {
	echo "diag-smoke: SIGQUIT killed the run instead of snapshotting it" >&2
	exit 1
}
check_bundle "$bdir"
grep -q '"reason": "signal"' "$bdir/manifest.json" || {
	echo "diag-smoke: bundle reason is not signal" >&2
	cat "$bdir/manifest.json" >&2
	exit 1
}

echo "diag-smoke: ok (anomaly + SIGQUIT bundles complete under $DIAG)"
