#!/bin/sh
# Dashboard + ledger smoke test. Two phases:
#
#  1. Ledger: run a short dxbar-sim with -ledger and assert the completed
#     run's record (run-<key>.json, full Result + env stamp) landed on disk,
#     then re-run with -ledger-reuse and assert the second run was served
#     from the archive (no second record, reuse reported).
#  2. Dashboard: launch a longer run with -http, assert the root path serves
#     the self-contained dashboard page and that /events streams at least
#     two SSE frames while the simulation is live.
#
# Needs curl and the go toolchain.
set -eu

PORT="${1:-18231}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
SIM_PID=""
cleanup() {
	[ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/dxbar-sim" ./cmd/dxbar-sim

# --- Phase 1: run ledger ---------------------------------------------------

LEDGER="$WORK/ledger"
"$WORK/dxbar-sim" -warmup 100 -measure 500 -ledger "$LEDGER" >/dev/null

records=$(ls "$LEDGER"/run-*.json 2>/dev/null | wc -l)
if [ "$records" -ne 1 ]; then
	echo "dashboard-smoke: expected 1 ledger record after the run, found $records" >&2
	ls -l "$LEDGER" >&2 || true
	exit 1
fi
REC="$(ls "$LEDGER"/run-*.json)"
for field in '"schema"' '"key"' '"config"' '"result"' '"env"'; do
	if ! grep -q "$field" "$REC"; then
		echo "dashboard-smoke: ledger record $REC is missing $field" >&2
		exit 1
	fi
done

# Same config + seed with -ledger-reuse must be served from the archive:
# still exactly one record, and the run reports the reuse.
"$WORK/dxbar-sim" -warmup 100 -measure 500 -ledger "$LEDGER" -ledger-reuse \
	>"$WORK/reuse.out" 2>&1
records=$(ls "$LEDGER"/run-*.json | wc -l)
if [ "$records" -ne 1 ]; then
	echo "dashboard-smoke: -ledger-reuse wrote a duplicate record ($records files)" >&2
	exit 1
fi

echo "dashboard-smoke: ledger ok ($(basename "$REC"))"

# --- Phase 2: live dashboard + SSE -----------------------------------------

"$WORK/dxbar-sim" -measure 50000000 -http "127.0.0.1:$PORT" \
	>/dev/null 2>"$WORK/sim.stderr" &
SIM_PID=$!

ready=""
for _ in $(seq 1 60); do
	if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
		ready=yes
		break
	fi
	if ! kill -0 "$SIM_PID" 2>/dev/null; then
		echo "dashboard-smoke: dxbar-sim exited before serving" >&2
		cat "$WORK/sim.stderr" >&2
		exit 1
	fi
	sleep 0.25
done
if [ -z "$ready" ]; then
	echo "dashboard-smoke: /healthz never came up on $BASE" >&2
	exit 1
fi

# The root path serves the self-contained dashboard page.
PAGE="$WORK/page.html"
curl -sf "$BASE/" >"$PAGE"
grep -q '<title>dxbar telemetry</title>' "$PAGE" || {
	echo "dashboard-smoke: / is not serving the dashboard page" >&2
	exit 1
}
grep -q 'EventSource' "$PAGE" || {
	echo "dashboard-smoke: dashboard page has no EventSource wiring" >&2
	exit 1
}

# /events must stream at least two SSE data frames while the run is live.
# The hub emits one frame immediately on subscribe and then one per sampling
# interval (1s), so 3 seconds is comfortably enough for two.
FRAMES="$WORK/frames.txt"
curl -sf --max-time 4 -N "$BASE/events" >"$FRAMES" 2>/dev/null || true
frames=$(grep -c '^data: ' "$FRAMES" || true)
if [ "$frames" -lt 2 ]; then
	echo "dashboard-smoke: expected >=2 SSE frames from /events, got $frames" >&2
	cat "$FRAMES" >&2
	exit 1
fi
grep -q '"schema":1' "$FRAMES" || {
	echo "dashboard-smoke: SSE frames carry no schema stamp" >&2
	head -2 "$FRAMES" >&2
	exit 1
}

echo "dashboard-smoke: ok ($frames SSE frames, dashboard live at $BASE/)"
