package dxbar

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dxbar/internal/flit"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// rebalanceNetwork builds a network with automatic rebalancing disabled, so
// the tests control exactly when migrations happen via RebalanceShards.
func rebalanceNetwork(t *testing.T, design Design, w, h int, load float64, seed int64, shards int, src sim.Source) *Network {
	t.Helper()
	mesh := topology.MustMesh(w, h)
	if src == nil {
		pat, err := traffic.New("UR", mesh)
		if err != nil {
			t.Fatal(err)
		}
		bern, err := traffic.NewBernoulli(mesh, pat, load, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		src = &sim.SourceAdapter{B: bern}
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, 1<<40)
	net, err := NewNetwork(NetworkOptions{
		Design:            design,
		Mesh:              mesh,
		Source:            src,
		Stats:             coll,
		Shards:            shards,
		RebalanceInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRebalanceBitIdentity is dynamic rebalancing's determinism contract:
// migrating boundary rows and columns between shards mid-run must leave
// results bit-identical to the sequential engine, for every design, seed and
// grid shape — the partition only decides which worker steps which node,
// never what the step computes. Migrations are forced every 100 cycles (far
// more often than the production interval) so the run crosses many distinct
// partitions, including band-row shifts on the 3×2 grid. Run with -race to
// also prove the rebuilt node lists introduce no cross-shard access.
func TestRebalanceBitIdentity(t *testing.T) {
	const cycles = 2000
	// DXbar exercises credit staging across migrated boundaries, SCARAB
	// retransmit staging (its 0.3 load sits past saturation), FlitBless pure
	// deflection.
	for _, d := range []Design{DesignDXbar, DesignSCARAB, DesignFlitBless} {
		for _, seed := range []int64{7, 42} {
			for _, shards := range []int{4, 6} {
				t.Run(fmt.Sprintf("%s/seed%d/shards%d", d, seed, shards), func(t *testing.T) {
					seq := rebalanceNetwork(t, d, 8, 8, 0.3, seed, 1, nil)
					seq.Engine.Run(cycles)

					sharded := rebalanceNetwork(t, d, 8, 8, 0.3, seed, shards, nil)
					forced := 0
					for c := 0; c < cycles; c += 100 {
						sharded.Engine.Run(100)
						if sharded.Engine.RebalanceShards() {
							forced++
						}
					}
					if forced == 0 {
						t.Fatal("no forced migration succeeded; the test exercised nothing")
					}

					if !reflect.DeepEqual(seq.Stats.Results(), sharded.Stats.Results()) {
						t.Errorf("results differ from sequential after %d forced migrations\nseq:     %+v\nsharded: %+v",
							forced, seq.Stats.Results(), sharded.Stats.Results())
					}
					if seqE, shE := seq.Meter.Snapshot(), sharded.Meter.Snapshot(); !reflect.DeepEqual(seqE, shE) {
						t.Errorf("energy counts differ from sequential\nseq:     %+v\nsharded: %+v", seqE, shE)
					}
					rebalances, migrated := sharded.Engine.ShardRebalances()
					if rebalances != uint64(forced) || migrated == 0 {
						t.Errorf("ShardRebalances() = (%d, %d), want (%d, >0)", rebalances, migrated, forced)
					}
				})
			}
		}
	}
}

// quadrantSource is the adversarial hotspot workload: only nodes in the
// top-left w/2 × h/2 quadrant inject, to destinations inside the same
// quadrant, so on a 2×2 tile grid one shard starts with essentially all the
// router work. A per-node LCG keeps it deterministic without a shared RNG.
type quadrantSource struct {
	mesh   *topology.Mesh
	prob   uint64 // inject when lcg(node,cycle) % 1000 < prob
	nextID uint64
	spec   traffic.PacketSpec
	seed   uint64
}

func (q *quadrantSource) inQuadrant(node int) bool {
	x, y := q.mesh.XY(node)
	return x < q.mesh.Width/2 && y < q.mesh.Height/2
}

func (q *quadrantSource) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if !q.inQuadrant(node) {
		return nil
	}
	r := (uint64(node)*0x9E3779B97F4A7C15 ^ cycle*0xBF58476D1CE4E5B9 ^ q.seed) * 0x94D049BB133111EB
	if r%1000 >= q.prob {
		return nil
	}
	// Destination: another quadrant node, from the next LCG step.
	qw, qh := q.mesh.Width/2, q.mesh.Height/2
	d := (r >> 17) % uint64(qw*qh)
	dst := q.mesh.Node(int(d)%qw, int(d)/qw)
	if dst == node {
		return nil
	}
	q.spec = traffic.PacketSpec{
		ID: q.nextID, Src: node, Dst: dst, NumFlits: 1, Kind: flit.Data, Cycle: cycle,
	}
	q.nextID++
	return []*traffic.PacketSpec{&q.spec}
}

// windowImbalance runs the engine for a window of cycles and returns the
// max/mean per-shard router-phase time over just that window.
func windowImbalance(net *Network, cycles uint64) float64 {
	before := net.Engine.ShardProfiles()
	net.Engine.Run(cycles)
	after := net.Engine.ShardProfiles()
	var total, max time.Duration
	for i := range after {
		d := after[i].RouterPhase - before[i].RouterPhase
		total += d
		if d > max {
			max = d
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(after)) / float64(total)
}

// TestRebalanceHotspotReducesImbalance drives the adversarial pattern: all
// traffic confined to the top-left quadrant of a 16×16 mesh over a 2×2 tile
// grid, so shard 0 starts hot. Forced rebalancing passes must migrate nodes
// out of the hot tile and reduce the window imbalance ratio. The profiler is
// wall-clock, so the thresholds are deliberately loose: the hot shard must
// shrink, and imbalance must drop at all — not hit a specific ratio.
func TestRebalanceHotspotReducesImbalance(t *testing.T) {
	mesh16 := topology.MustMesh(16, 16)
	src := &quadrantSource{mesh: mesh16, prob: 350, nextID: 1, seed: 99}
	net := rebalanceNetwork(t, DesignDXbar, 16, 16, 0, 1, 4, src)
	if got := net.Engine.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4 (2x2 grid)", got)
	}

	// Warm up, then measure the untouched partition's imbalance.
	net.Engine.Run(500)
	before := windowImbalance(net, 500)

	// Alternate measurement windows (feeding the profiler) with forced
	// rebalancing passes.
	for i := 0; i < 12; i++ {
		net.Engine.Run(200)
		net.Engine.RebalanceShards()
	}

	rebalances, migrated := net.Engine.ShardRebalances()
	if rebalances == 0 || migrated == 0 {
		t.Fatalf("no migrations happened: rebalances=%d migrated=%d", rebalances, migrated)
	}
	profs := net.Engine.ShardProfiles()
	initial := mesh16.Nodes() / 4
	if profs[0].Nodes >= initial {
		t.Errorf("hot shard still owns %d nodes, want < %d after %d migrations",
			profs[0].Nodes, initial, migrated)
	}

	after := windowImbalance(net, 500)
	if after >= before {
		t.Errorf("window imbalance did not drop: before %.2f, after %.2f (rebalances=%d, migrated=%d)",
			before, after, rebalances, migrated)
	}
	t.Logf("imbalance %.2f -> %.2f after %d migrations (%d nodes)", before, after, rebalances, migrated)
}
