package dxbar_test

import (
	"fmt"

	"dxbar"
)

// The simplest use: run one synthetic-traffic simulation and read the
// headline metrics. Runs are deterministic, so the output is stable.
func ExampleRun() {
	res, err := dxbar.Run(dxbar.Config{
		Design:        dxbar.DesignDXbar,
		Routing:       "DOR",
		Pattern:       "UR",
		Load:          0.2,
		WarmupCycles:  500,
		MeasureCycles: 2000,
		Seed:          42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted %.2f of capacity, every flit minimal: %v\n",
		res.AcceptedLoad, res.DeflectionsPerPacket == 0 && res.DroppedFlits == 0)
	// Output:
	// accepted 0.20 of capacity, every flit minimal: true
}

// Fault tolerance: one crossbar fails in every router and the network keeps
// delivering (§II.C).
func ExampleRun_faults() {
	res, err := dxbar.Run(dxbar.Config{
		Design:        dxbar.DesignDXbar,
		Pattern:       "UR",
		Load:          0.1,
		FaultFraction: 1.0,
		WarmupCycles:  500,
		MeasureCycles: 2000,
		Seed:          42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("survived 100%% crossbar faults: %v\n", res.AcceptedLoad > 0.099)
	// Output:
	// survived 100% crossbar faults: true
}

// Closed-loop coherence workloads report execution time, the Fig. 9 metric.
func ExampleRunSplash() {
	res, err := dxbar.RunSplash(dxbar.SplashConfig{
		Design:    dxbar.DesignDXbar,
		Benchmark: "Water",
		Seed:      11,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Water finished: %v, protocol messages delivered: %v\n",
		res.ExecutionCycles > 0, res.Packets > 0)
	// Output:
	// Water finished: true, protocol messages delivered: true
}
