package dxbar

import (
	"encoding/xml"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func sampleLineFigure() Figure {
	return Figure{
		ID: "fig5", Title: "Throughput, Uniform Random",
		XLabel: "offered load", YLabel: "accepted load",
		Series: []Series{
			{Label: "Flit-Bless", X: []float64{0.1, 0.3, 0.5}, Y: []float64{0.1, 0.27, 0.27}},
			{Label: "SCARAB", X: []float64{0.1, 0.3, 0.5}, Y: []float64{0.1, 0.26, 0.25}},
			{Label: "Buffered 4", X: []float64{0.1, 0.3, 0.5}, Y: []float64{0.1, 0.3, 0.32}},
			{Label: "Buffered 8", X: []float64{0.1, 0.3, 0.5}, Y: []float64{0.1, 0.3, 0.38}},
			{Label: "DXbar DOR", X: []float64{0.1, 0.3, 0.5}, Y: []float64{0.1, 0.3, 0.4}},
			{Label: "DXbar WF", X: []float64{0.1, 0.3, 0.5}, Y: []float64{0.1, 0.3, 0.31}},
		},
	}
}

func sampleBarFigure() Figure {
	names := []string{"UR", "NUR", "BR"}
	return Figure{
		ID: "fig7", Title: "Throughput by pattern",
		XLabel: "pattern", YLabel: "accepted load",
		Series: []Series{
			{Label: "DXbar DOR", X: []float64{0, 1, 2}, Y: []float64{0.4, 0.23, 0.16}, XNames: names},
			{Label: "Buffered 4", X: []float64{0, 1, 2}, Y: []float64{0.32, 0.19, 0.16}, XNames: names},
		},
	}
}

func assertWellFormedSVG(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("not well-formed XML: %v", err)
		}
	}
}

// All rendered coordinates must stay inside the canvas (the no-browser
// substitute for the "render it and look at it" check).
func assertCoordinatesInBounds(t *testing.T, svg string) {
	t.Helper()
	re := regexp.MustCompile(`(?:cx|cy|x1|x2|y1|y2|x|y)="(-?[0-9.]+)"`)
	for _, m := range re.FindAllStringSubmatch(svg, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("bad coordinate %q", m[1])
		}
		if v < -20 || v > 800 {
			t.Errorf("coordinate %v escapes the 760x440 canvas", v)
		}
	}
}

func TestFigureSVGLine(t *testing.T) {
	svg := FigureSVG(sampleLineFigure())
	assertWellFormedSVG(t, svg)
	assertCoordinatesInBounds(t, svg)
	for _, s := range sampleLineFigure().Series {
		if !strings.Contains(svg, s.Label) {
			t.Errorf("legend missing %q", s.Label)
		}
	}
}

func TestFigureSVGBar(t *testing.T) {
	svg := FigureSVG(sampleBarFigure())
	assertWellFormedSVG(t, svg)
	assertCoordinatesInBounds(t, svg)
	if !strings.Contains(svg, ">NUR</text>") {
		t.Error("categorical axis labels missing")
	}
}

func TestQualityPresets(t *testing.T) {
	if len(Quick.Loads) == 0 || len(Full.Loads) <= len(Quick.Loads) {
		t.Error("Full must sweep a longer load axis than Quick")
	}
	if Full.Warmup <= Quick.Warmup || Full.SplashSeeds <= Quick.SplashSeeds {
		t.Error("Full must run longer than Quick")
	}
}

func TestTable3Facade(t *testing.T) {
	rows := Table3()
	if len(rows) != 6 {
		t.Fatalf("Table3 rows = %d", len(rows))
	}
}

// End-to-end figure generation at a tiny quality (catches wiring breaks
// between the facade, the parallel runner and the figure assembly).
func TestFigure5And11EndToEnd(t *testing.T) {
	q := Quality{Warmup: 100, Measure: 400, Loads: []float64{0.1, 0.2},
		FaultFractions: []float64{0, 1.0}, SplashSeeds: 1}
	fig5, err := Figure5(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5.Series) != 6 {
		t.Fatalf("fig5 series = %d, want 6", len(fig5.Series))
	}
	for _, s := range fig5.Series {
		if len(s.Y) != len(q.Loads) {
			t.Fatalf("series %s has %d points", s.Label, len(s.Y))
		}
	}
	fig11, err := Figure11(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms × 2 fault fractions.
	if len(fig11.Series) != 4 {
		t.Fatalf("fig11 series = %d, want 4", len(fig11.Series))
	}
	assertWellFormedSVG(t, FigureSVG(fig5))
	assertWellFormedSVG(t, FigureSVG(fig11))
}

func TestFaultSweepShape(t *testing.T) {
	q := Quality{Warmup: 100, Measure: 300, Loads: []float64{0.1},
		FaultFractions: []float64{0, 0.5}, SplashSeeds: 1}
	pts, err := FaultSweep(q, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // 2 algos × 2 fractions × 1 load
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Routing != "DOR" && p.Routing != "WF" {
			t.Errorf("bad routing %q", p.Routing)
		}
		if p.Delivered == 0 {
			t.Errorf("point %+v delivered nothing", p)
		}
	}
}

// Exercise every figure generator end to end at a minimal quality — the
// wiring between facade, parallel runner and assembly must hold for each.
func TestAllFigureGeneratorsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: runs the full figure matrix")
	}
	q := Quality{Warmup: 100, Measure: 300, Loads: []float64{0.1},
		FaultFractions: []float64{0}, SplashSeeds: 1}
	type gen struct {
		name   string
		f      func(Quality, int64) (Figure, error)
		series int
	}
	gens := []gen{
		{"fig6", Figure6, 6},
		{"fig7", Figure7, 6},
		{"fig8", Figure8, 6},
		{"fig12", Figure12, 2}, // 2 algos × 1 fraction
	}
	for _, g := range gens {
		fig, err := g.f(q, 5)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if len(fig.Series) != g.series {
			t.Errorf("%s: series = %d, want %d", g.name, len(fig.Series), g.series)
		}
		for _, s := range fig.Series {
			for _, y := range s.Y {
				if y < 0 {
					t.Errorf("%s/%s: negative value %v", g.name, s.Label, y)
				}
			}
		}
		assertWellFormedSVG(t, FigureSVG(fig))
	}
}

// Figures 9/10 run the closed-loop matrix once (shared path figure910).
func TestSplashFiguresEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: 6 designs x 9 benchmarks")
	}
	q := Quality{Warmup: 100, Measure: 300, Loads: []float64{0.1},
		FaultFractions: []float64{0}, SplashSeeds: 1}
	fig9, err := Figure9(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Series) != 6 {
		t.Fatalf("fig9 series = %d", len(fig9.Series))
	}
	// Normalization: the Buffered 4 series must be exactly 1.0 everywhere.
	for _, s := range fig9.Series {
		if s.Label != "Buffered 4" {
			continue
		}
		for i, y := range s.Y {
			if y != 1.0 {
				t.Errorf("baseline normalization broken at %s: %v", s.XNames[i], y)
			}
		}
	}
	fig10, err := Figure10(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig10.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Errorf("fig10 %s: non-positive energy %v", s.Label, y)
			}
		}
	}
}

// Heatmap rendering through the facade.
func TestHeatmapFacade(t *testing.T) {
	res, err := Run(Config{Design: DesignDXbar, Pattern: "NUR", Load: 0.2,
		WarmupCycles: 200, MeasureCycles: 800, Seed: 3, TrackUtilization: true})
	if err != nil {
		t.Fatal(err)
	}
	hm := Heatmap(res)
	if len(hm) == 0 || hm == "(utilization tracking was not enabled)" {
		t.Errorf("heatmap missing: %q", hm)
	}
	res2, _ := Run(Config{Design: DesignDXbar, Pattern: "UR", Load: 0.1,
		WarmupCycles: 100, MeasureCycles: 200, Seed: 3})
	if Heatmap(res2) != "(utilization tracking was not enabled)" {
		t.Error("untracked run must say tracking was off")
	}
}
