module dxbar

go 1.22
