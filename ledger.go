package dxbar

// The run ledger: every completed run can be archived into a
// content-addressed store (internal/runstore) keyed by a hash of its
// configuration. Runs are deterministic — same config + seed is
// bit-identical — so the key is the result's identity and the ledger doubles
// as a cross-process result cache: Config.LedgerReuse returns an archived
// Result without simulating. Archiving happens once, after the run
// completes; the cycle loop never sees the ledger, so results are
// bit-identical with it on or off (TestLedgerBitIdentity).
//
// A record stores the Result with its latency histogram detached into an
// explicit bucket list (the histogram's fixed count array is unexported and
// would not survive JSON); LedgerResult rebuilds the histogram exactly, so a
// reused Result is deep-equal to the freshly simulated one.

import (
	"encoding/json"
	"fmt"
	"sync"

	"dxbar/internal/metrics"
	"dxbar/internal/runstore"
	"dxbar/internal/stats"
)

var (
	ledgerDefaultsMu    sync.RWMutex
	ledgerDefaultDir    string
	ledgerDefaultsReuse bool
)

// SetLedgerDefaults installs package-level ledger settings consumed by any
// run whose Config.LedgerDir is empty — the hook the sweep CLI uses so every
// run a figure function triggers internally archives into (and, with reuse,
// is served from) one shared ledger, the same way SetDiagDefaults threads
// the shared logger and registry. Clear with SetLedgerDefaults("", false).
// An explicit Config.LedgerDir always wins over the default.
func SetLedgerDefaults(dir string, reuse bool) {
	ledgerDefaultsMu.Lock()
	defer ledgerDefaultsMu.Unlock()
	ledgerDefaultDir, ledgerDefaultsReuse = dir, reuse
}

func ledgerDefaults() (string, bool) {
	ledgerDefaultsMu.RLock()
	defer ledgerDefaultsMu.RUnlock()
	return ledgerDefaultDir, ledgerDefaultsReuse
}

// LedgerRecord is one archived run entry (see internal/runstore.Record):
// schema version, content key, environment stamp, and the raw config/result
// JSON payloads.
type LedgerRecord = runstore.Record

// Ledger is a handle on a run-ledger directory.
type Ledger struct {
	store *runstore.Store
}

// OpenLedger opens (creating if needed) the ledger directory dir.
func OpenLedger(dir string) (*Ledger, error) {
	s, err := runstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Ledger{store: s}, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.store.Dir() }

// List returns every readable record, oldest first.
func (l *Ledger) List() ([]*LedgerRecord, error) { return l.store.List() }

// Get loads the record for a content key; missing or corrupt records are
// errors.
func (l *Ledger) Get(key string) (*LedgerRecord, error) { return l.store.Get(key) }

// Lookup is the dedup probe: (record, true) when the key is archived and
// readable.
func (l *Ledger) Lookup(key string) (*LedgerRecord, bool) { return l.store.Lookup(key) }

// Path returns the file a key's record lives at.
func (l *Ledger) Path(key string) string { return l.store.Path(key) }

// LedgerKey returns the content address Run archives c under: a SHA-256
// over the defaulted, scrubbed configuration. Execution-layer fields that
// cannot change the Result (live handles, checkpoint/ledger/diag
// directories, shard count — sharding is bit-identical) are excluded, so a
// sequential run and a sharded run of the same experiment share one record.
func LedgerKey(c Config) (string, error) {
	cfgJSON, err := ledgerConfigJSON(c.withDefaults())
	if err != nil {
		return "", err
	}
	return runstore.Key(runstore.KindRun, cfgJSON)
}

// ledgerConfigJSON marshals the key-relevant slice of a defaulted config:
// scrubConfig's live handles plus every field that only changes how a run
// executes or observes itself — never what Result it produces. Fields that
// do change Result contents (SampleInterval, EventTrace, TrackUtilization,
// ShardProfile, DisableDiag, fault knobs…) stay in the key.
func ledgerConfigJSON(cfg Config) ([]byte, error) {
	k := scrubConfig(cfg) // Metrics, Progress, Diag
	k.LedgerDir, k.LedgerReuse = "", false
	k.CheckpointInterval, k.CheckpointKeep = 0, 0
	k.CheckpointDir, k.DiagDir = "", ""
	k.Shards, k.RebalanceInterval = 0, 0
	return json.Marshal(k)
}

// ledgerReusable reports whether a config's Result can be faithfully
// reconstructed from a ledger record: event traces carry an opaque
// per-router counter matrix, and shard profiles are wall-clock measurements
// that differ run to run — both fall back to simulating.
func ledgerReusable(cfg Config) bool {
	return cfg.EventTrace == 0 && !cfg.ShardProfile
}

// ledgerLatency is the archived form of the latency distribution: the
// histogram's non-empty bins plus the exact observed maximum.
type ledgerLatency struct {
	Buckets []stats.Bucket `json:"buckets"`
	Max     uint64         `json:"max"`
}

// archiveRun writes a completed run into the ledger under its precomputed
// key and returns the record path.
func (l *Ledger) archiveRun(key string, cfgJSON []byte, res Result, meta map[string]string) (string, error) {
	detached := res
	detached.LatencyHistogram = nil
	resJSON, err := json.Marshal(detached)
	if err != nil {
		return "", fmt.Errorf("dxbar: ledger: marshal result: %w", err)
	}
	rec := &runstore.Record{
		Kind:   runstore.KindRun,
		Key:    key,
		Config: cfgJSON,
		Result: resJSON,
		Meta:   meta,
	}
	if h := res.LatencyHistogram; h != nil {
		lat, err := json.Marshal(ledgerLatency{Buckets: h.Buckets(), Max: h.Max()})
		if err != nil {
			return "", fmt.Errorf("dxbar: ledger: marshal latency: %w", err)
		}
		rec.Latency = lat
	}
	return l.store.Put(rec)
}

// ArchiveSplash archives a closed-loop coherence run under the hash of its
// defaulted SplashConfig.
func (l *Ledger) ArchiveSplash(c SplashConfig, res SplashResult) (string, error) {
	cfgJSON, err := json.Marshal(splashDefaults(c))
	if err != nil {
		return "", fmt.Errorf("dxbar: ledger: marshal splash config: %w", err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		return "", fmt.Errorf("dxbar: ledger: marshal splash result: %w", err)
	}
	return l.store.Put(&runstore.Record{
		Kind:   runstore.KindSplash,
		Config: cfgJSON,
		Result: resJSON,
	})
}

// LedgerResult decodes a run record back into a Result, rebuilding the
// latency histogram from its archived bucket form. The decoded Result is
// deep-equal to the one the archiving run returned (for configs
// ledgerReusable accepts — reuse never serves traced or profiled runs).
func LedgerResult(rec *LedgerRecord) (Result, error) {
	if rec.Kind != runstore.KindRun {
		return Result{}, fmt.Errorf("dxbar: ledger record %.12s is a %q record, not a run", rec.Key, rec.Kind)
	}
	var res Result
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return Result{}, fmt.Errorf("dxbar: ledger record %.12s: %w", rec.Key, err)
	}
	if len(rec.Latency) > 0 {
		var ll ledgerLatency
		if err := json.Unmarshal(rec.Latency, &ll); err != nil {
			return Result{}, fmt.Errorf("dxbar: ledger record %.12s latency: %w", rec.Key, err)
		}
		res.LatencyHistogram = stats.RebuildHistogram(ll.Buckets, ll.Max)
	}
	return res, nil
}

// ledgerMetrics registers (or fetches) the ledger's counter families on reg.
// Nil-safe: a nil registry hands back no-op handles.
func ledgerMetrics(reg *metrics.Registry) (records, reuseHits *metrics.Counter) {
	records = reg.Counter(metrics.MetricLedgerRecords,
		"Run-ledger records archived (one per completed run with Config.LedgerDir set).")
	reuseHits = reg.Counter(metrics.MetricLedgerReuseHits,
		"Runs satisfied from the ledger without re-simulating (content-hash dedup).")
	return records, reuseHits
}
