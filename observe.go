package dxbar

// This file is the observability facade: conversions from a Result into the
// simulator-free export shapes of internal/report (histogram records,
// time-series records, latency comparison rows) and the SVG renderers of
// internal/viz (latency CDFs, time-series sparklines). The CLIs and examples
// go through these instead of reaching into the internal packages.

import (
	"strings"

	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/report"
	"dxbar/internal/stats"
	"dxbar/internal/viz"
)

// HistogramRecordFor converts a run's latency distribution into the export
// shape. Buckets is empty when no packet completed.
func HistogramRecordFor(label string, r Result) report.HistogramRecord {
	rec := report.HistogramRecord{
		Series: label, Load: r.Load,
		Packets: r.Packets, InFlight: r.InFlightPackets,
		P50: r.P50Latency, P90: r.P90Latency, P99: r.P99Latency, Max: r.MaxLatency,
	}
	if r.LatencyHistogram != nil {
		for _, b := range r.LatencyHistogram.Buckets() {
			rec.Buckets = append(rec.Buckets, report.HistogramBucket{Low: b.Low, High: b.High, Count: b.Count})
		}
	}
	return rec
}

// TimeSeriesRecordFor converts a run's sampled time series into the export
// shape. Samples is empty when sampling was not enabled.
func TimeSeriesRecordFor(label string, r Result) report.TimeSeriesRecord {
	rec := report.TimeSeriesRecord{Series: label, Interval: r.SampleInterval}
	for _, s := range r.TimeSeries {
		rec.Samples = append(rec.Samples, report.TimeSample{
			Cycle:         s.Cycle,
			InjectedFlits: s.InjectedFlits,
			EjectedFlits:  s.EjectedFlits,
			InFlightFlits: s.InFlightFlits,
			QueuedFlits:   s.QueuedFlits,
			BufferedFlits: s.BufferedFlits,
		})
	}
	return rec
}

// LatencyRowFor converts a run into one latency comparison row for
// report.LatencyTable.
func LatencyRowFor(label string, r Result) report.LatencyRow {
	return report.LatencyRow{
		Label: label, Load: r.Load, Packets: r.Packets,
		AvgLatency: r.AvgLatency,
		P50:        r.P50Latency, P90: r.P90Latency, P99: r.P99Latency, Max: r.MaxLatency,
		InFlight: r.InFlightPackets,
	}
}

// LatencyCDFSVG renders the latency CDFs of labelled results as a standalone
// SVG step plot. Results without a completed packet are skipped.
func LatencyCDFSVG(title string, labels []string, results []Result) string {
	chart := viz.Chart{Title: title,
		XLabel: "packet latency (cycles)", YLabel: "fraction of packets"}
	for i, r := range results {
		if r.LatencyHistogram == nil || r.LatencyHistogram.Count() == 0 {
			continue
		}
		total := float64(r.LatencyHistogram.Count())
		var xs, ys []float64
		var cum uint64
		for _, b := range r.LatencyHistogram.Buckets() {
			cum += b.Count
			xs = append(xs, float64(b.High))
			ys = append(ys, float64(cum)/total)
		}
		chart.Series = append(chart.Series, viz.Series{Label: labels[i], X: xs, Y: ys})
	}
	return viz.CDFSVG(chart)
}

// TimeSeriesSVG renders a run's sampled time series as sparkline rows
// (ejected flits per interval, in-flight, queued and buffered flit gauges).
func TimeSeriesSVG(title string, r Result) string {
	n := len(r.TimeSeries)
	cycles := make([]float64, n)
	ejected := make([]float64, n)
	inflight := make([]float64, n)
	queued := make([]float64, n)
	buffered := make([]float64, n)
	for i, s := range r.TimeSeries {
		cycles[i] = float64(s.Cycle)
		ejected[i] = float64(s.EjectedFlits)
		inflight[i] = float64(s.InFlightFlits)
		queued[i] = float64(s.QueuedFlits)
		buffered[i] = float64(s.BufferedFlits)
	}
	return viz.SparklineSVG(viz.Chart{Title: title, Series: []viz.Series{
		{Label: "ejected/interval", X: cycles, Y: ejected},
		{Label: "in-flight flits", X: cycles, Y: inflight},
		{Label: "queued flits", X: cycles, Y: queued},
		{Label: "buffered flits", X: cycles, Y: buffered},
	}})
}

// Re-exported report writers, so CLI/example code can emit the structured
// observability formats without importing the internal package.

// WriteHistogramsNDJSON, WriteHistogramsCSV, WriteTimeSeriesNDJSON and
// WriteTimeSeriesCSV are the structured exporters of internal/report.
var (
	WriteHistogramsNDJSON = report.WriteHistogramsNDJSON
	WriteHistogramsCSV    = report.WriteHistogramsCSV
	WriteTimeSeriesNDJSON = report.WriteTimeSeriesNDJSON
	WriteTimeSeriesCSV    = report.WriteTimeSeriesCSV
)

// LatencyTableText renders per-design latency rows (from LatencyRowFor) as
// the plain-text comparison table, flagging truncated runs.
func LatencyTableText(title string, rows []report.LatencyRow) string {
	var b strings.Builder
	_ = report.WriteTableText(&b, report.LatencyTable(title, rows))
	return b.String()
}

// ShardProfileRowsFor converts a profiled run's per-shard execution profile
// (Config.ShardProfile) into the report shape. Nil when the run was not
// profiled or not sharded.
func ShardProfileRowsFor(r Result) []report.ShardProfileRow {
	if len(r.ShardProfile) == 0 {
		return nil
	}
	rows := make([]report.ShardProfileRow, len(r.ShardProfile))
	for i, p := range r.ShardProfile {
		rows[i] = report.ShardProfileRow{
			Shard:       p.Shard,
			Nodes:       p.Nodes,
			BusySeconds: p.RouterPhase.Seconds(),
			WaitSeconds: p.BarrierWait.Seconds(),
		}
	}
	return rows
}

// ShardProfileText renders a profiled run's shard execution profile as a
// plain-text table with the imbalance summary. A persistently near-zero
// barrier wait marks the bottleneck shard; see EXPERIMENTS.md for how to
// read the imbalance ratio.
func ShardProfileText(title string, r Result) string {
	rows := ShardProfileRowsFor(r)
	if rows == nil {
		return "(run was not sharded or Config.ShardProfile was off)"
	}
	var b strings.Builder
	_ = report.WriteTableText(&b, report.ShardProfileTable(title, rows))
	return b.String()
}

// Flight-recorder facade: conversions from a traced Result's event log into
// the report/viz shapes, plus per-packet path reconstruction. See
// Config.EventTrace and internal/events.

// TraceRecordFor converts a traced run's event log into the Chrome
// trace-export shape (WriteChromeTrace / Perfetto). Events is empty when the
// run was not traced.
func TraceRecordFor(label string, r Result) report.TraceRecord {
	rec := report.TraceRecord{Series: label, Width: r.Width, Height: r.Height}
	for _, e := range r.Events {
		rec.Events = append(rec.Events, report.TraceFlitEvent{
			Cycle:    e.Cycle,
			Kind:     e.Kind.String(),
			Node:     int(e.Node),
			Port:     portName(e.Port),
			PacketID: e.PacketID,
			FlitID:   e.FlitID,
			Detail:   e.Detail,
			PerFlit:  e.Kind.PerFlit(),
		})
	}
	return rec
}

// portName renders an event's port for export ("" when not meaningful).
func portName(p flit.Port) string {
	if p == flit.Invalid {
		return ""
	}
	return p.String()
}

// WriteChromeTrace is the Chrome trace-event JSON exporter of
// internal/report (load the output at ui.perfetto.dev).
var WriteChromeTrace = report.WriteChromeTrace

// PacketPath reconstructs one packet's hop-by-hop event history from a
// traced Result (empty when the packet's events were overwritten or the run
// was not traced). The events come back in chronological order: Inject at
// the source, one arbitration outcome per router, Eject at the destination.
func PacketPath(r Result, packetID uint64) []events.Event {
	return events.PacketPath(r.Events, packetID)
}

// EventHeatmap renders the per-router counts of one event kind as an ASCII
// mesh grid (the counter matrix is exact for the whole run, surviving ring
// overwrite). Returns a placeholder when the run was not traced.
func EventHeatmap(r Result, kind events.Kind) string {
	if r.RouterEvents == nil {
		return "(event tracing was not enabled)"
	}
	counts := r.RouterEvents.PerNode(kind)
	vals := make([]float64, len(counts))
	for i, c := range counts {
		vals[i] = float64(c)
	}
	return stats.HeatmapLabeled(vals, r.Width, r.Height,
		"max "+kind.String()+" events per router: %.0f")
}

// DropHeatmap renders where in-window drops clustered, from the always-on
// per-node drop counters (no tracing required; SCARAB and fault runs).
func DropHeatmap(r Result) string {
	if r.DroppedByNode == nil {
		return "(no flits were dropped)"
	}
	vals := make([]float64, len(r.DroppedByNode))
	for i, c := range r.DroppedByNode {
		vals[i] = float64(c)
	}
	return stats.HeatmapLabeled(vals, r.Width, r.Height,
		"max dropped flits per router: %.0f")
}
