package dxbar

import (
	"fmt"
	"testing"

	"dxbar/internal/faults"
	"dxbar/internal/flit"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// Flit conservation is the simulator's most important invariant: every
// injected packet is delivered exactly once — never lost, never duplicated —
// whatever the design, routing algorithm, pattern, load or fault plan.
// These tests drive a finite workload through each design and audit
// delivery against the generated packet population.

// countingSource injects open-loop Bernoulli traffic for a fixed number of
// cycles and records every generated packet ID.
type countingSource struct {
	bern      *traffic.Bernoulli
	stopAfter uint64
	generated map[uint64]int // packet ID -> expected flits
}

func (s *countingSource) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	if cycle >= s.stopAfter {
		return nil
	}
	spec := s.bern.Generate(node, cycle)
	if spec == nil {
		return nil
	}
	s.generated[spec.ID] = int(spec.NumFlits)
	return []*traffic.PacketSpec{spec}
}

// auditSink verifies each packet is complete and delivered exactly once.
type auditSink struct {
	t         *testing.T
	generated map[uint64]int
	delivered map[uint64]bool
}

func (a *auditSink) Deliver(p flit.Packet, cycle uint64) {
	if a.delivered[p.PacketID] {
		a.t.Errorf("packet %d delivered twice", p.PacketID)
	}
	a.delivered[p.PacketID] = true
	want, ok := a.generated[p.PacketID]
	if !ok {
		a.t.Errorf("packet %d delivered but never generated", p.PacketID)
		return
	}
	if p.NumFlits != want {
		a.t.Errorf("packet %d has %d flits, want %d", p.PacketID, p.NumFlits, want)
	}
}

func auditConservation(t *testing.T, design Design, routing string, pattern string,
	load float64, flits int, faultFrac float64, seed int64) {
	t.Helper()
	mesh := topology.MustMesh(8, 8)
	pat, err := traffic.New(pattern, mesh)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := traffic.NewBernoulli(mesh, pat, load, flits, seed)
	if err != nil {
		t.Fatal(err)
	}
	src := &countingSource{bern: bern, stopAfter: 1200, generated: map[uint64]int{}}
	snk := &auditSink{t: t, generated: src.generated, delivered: map[uint64]bool{}}
	coll := stats.NewCollector(mesh.Nodes(), 0, 1_000_000)
	opts := NetworkOptions{
		Design: design, Routing: routing, Mesh: mesh,
		Source: src, Sink: snk, Stats: coll,
	}
	if faultFrac > 0 {
		p, err := faults.NewPlan(mesh.Nodes(), faultFrac, 10, seed)
		if err != nil {
			t.Fatal(err)
		}
		opts.FaultPlan = p
	}
	net, err := NewNetwork(opts)
	if err != nil {
		t.Fatal(err)
	}
	drained := func() bool {
		return net.Engine.Cycle() > 1200 &&
			len(snk.delivered) == len(src.generated) &&
			net.Engine.QueuedFlits() == 0
	}
	if !net.Engine.RunUntil(drained, 60_000) {
		t.Fatalf("%s/%s/%s load %.2f: only %d of %d packets delivered after drain window",
			design, routing, pattern, load, len(snk.delivered), len(src.generated))
	}
	if len(src.generated) == 0 {
		t.Fatal("workload generated nothing")
	}
}

func TestConservationAllDesignsUR(t *testing.T) {
	for _, d := range AllDesigns {
		for _, algo := range []string{"DOR", "WF"} {
			t.Run(string(d)+"/"+algo, func(t *testing.T) {
				auditConservation(t, d, algo, "UR", 0.25, 1, 0, 17)
			})
		}
	}
}

func TestConservationHighLoad(t *testing.T) {
	// Past saturation: injection queues back up but nothing may be lost.
	for _, d := range AllDesigns {
		t.Run(string(d), func(t *testing.T) {
			auditConservation(t, d, "DOR", "UR", 0.55, 1, 0, 23)
		})
	}
}

func TestConservationMultiFlit(t *testing.T) {
	for _, d := range AllDesigns {
		t.Run(string(d), func(t *testing.T) {
			auditConservation(t, d, "DOR", "UR", 0.3, 5, 0, 29)
		})
	}
}

func TestConservationAdversePatterns(t *testing.T) {
	for _, p := range []string{"NUR", "CP", "MT", "TOR"} {
		for _, d := range []Design{DesignDXbar, DesignUnified, DesignFlitBless, DesignSCARAB} {
			t.Run(p+"/"+string(d), func(t *testing.T) {
				auditConservation(t, d, "DOR", p, 0.3, 1, 0, 31)
			})
		}
	}
}

func TestConservationUnderFaults(t *testing.T) {
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		for _, algo := range []string{"DOR", "WF"} {
			t.Run(fmt.Sprintf("dxbar/%s/%.0f%%", algo, frac*100), func(t *testing.T) {
				auditConservation(t, DesignDXbar, algo, "UR", 0.2, 1, frac, 37)
			})
		}
	}
}
