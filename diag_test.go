package dxbar

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dxbar/internal/diag"
	"dxbar/internal/metrics"
)

// bundleFileSet is the complete post-mortem bundle: what every dump — anomaly,
// signal, interrupt — must contain. The golden list the smoke script and the
// forced-anomaly test both assert.
var bundleFileSet = []string{
	"anomalies.json", "config.json", "goroutines.txt", "latency.json",
	"manifest.json", "metrics.prom", "run.json", "shards.json", "trace.json",
}

// findBundle returns the single bundle directory under dir and its parsed
// manifest.
func findBundle(t *testing.T, dir string) (string, map[string]any) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly one bundle under %s, found %d", dir, len(entries))
	}
	bdir := filepath.Join(dir, entries[0].Name())
	raw, err := os.ReadFile(filepath.Join(bdir, "manifest.json"))
	if err != nil {
		t.Fatalf("bundle incomplete (no manifest): %v", err)
	}
	var manifest map[string]any
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	return bdir, manifest
}

// assertBundleComplete checks the bundle holds exactly the golden file set and
// that the manifest indexes every file except itself.
func assertBundleComplete(t *testing.T, bdir string, manifest map[string]any) {
	t.Helper()
	entries, err := os.ReadDir(bdir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		got = append(got, e.Name())
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, bundleFileSet) {
		t.Errorf("bundle files %v, want %v", got, bundleFileSet)
	}
	files, _ := manifest["files"].([]any)
	if len(files) != len(bundleFileSet)-1 {
		t.Errorf("manifest indexes %d files, want %d (everything but itself)", len(files), len(bundleFileSet)-1)
	}
}

// TestDiagBitIdentity is the diagnostics half of the observability contract:
// the always-on detectors observe deterministic engine state and never steer,
// so disabling them must not change a single bit of the Result — for every
// design, on both engines.
func TestDiagBitIdentity(t *testing.T) {
	// Below-saturation loads (cf. the zero-alloc guard): healthy runs, where
	// the Anomalies/Interrupted fields are zero-valued on both sides.
	load := map[Design]float64{DesignFlitBless: 0.12, DesignSCARAB: 0.10}
	for _, d := range AllDesigns {
		t.Run(string(d), func(t *testing.T) {
			l, ok := load[d]
			if !ok {
				l = 0.3
			}
			for _, seed := range []int64{1, 42} {
				for _, shards := range []int{0, 2} {
					cfg := Config{
						Design: d, Routing: "DOR", Pattern: "UR", Load: l,
						WarmupCycles: 200, MeasureCycles: 800,
						Seed: seed, Shards: shards,
					}
					on, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					offCfg := cfg
					offCfg.DisableDiag = true
					off, err := Run(offCfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(on, off) {
						t.Errorf("seed %d shards %d: result with diagnostics differs from without\non:  %+v\noff: %+v",
							seed, shards, on, off)
					}
				}
			}
		})
	}
}

// TestDiagForcedStarvation drives the network far past saturation with a low
// age watermark: the starvation detector must fire, count in
// dxbar_anomaly_total, surface in the Result, and leave one complete
// post-mortem bundle behind.
func TestDiagForcedStarvation(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	res, err := Run(Config{
		Design: DesignDXbar, Routing: "DOR", Pattern: "UR",
		Load:         0.95, // far past saturation: the injection backlog ages fast
		WarmupCycles: 200, MeasureCycles: 3000, Seed: 42,
		Metrics: reg,
		DiagDir: dir,
		Diag: &diag.Config{
			MaxFlitAge: 500,
			Window:     128,
			// Keep the other detectors out of the picture so the first
			// anomaly — the one that auto-dumps — is deterministic.
			StallCycles:   1 << 40,
			StormMinCount: 1 << 40,
			Registry:      reg,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Anomalies) == 0 {
		t.Fatal("no anomalies on a saturated run with a 500-cycle age watermark")
	}
	for _, a := range res.Anomalies {
		if a.Kind != diag.KindStarvation {
			t.Errorf("unexpected anomaly kind %s (only starvation can fire here)", a.Kind)
		}
	}
	first := res.Anomalies[0]
	if first.Value < 500 || first.Node < 0 {
		t.Errorf("starvation record %+v lacks the offending age/node", first)
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), diag.MetricAnomalies+`{kind="starvation"}`) {
		t.Errorf("registry missing the starvation anomaly counter:\n%s", prom.String())
	}

	if !strings.Contains(AnomaliesText(res), "starvation") {
		t.Errorf("AnomaliesText does not mention the starvation:\n%s", AnomaliesText(res))
	}

	bdir, manifest := findBundle(t, dir)
	if reason := manifest["reason"]; reason != "anomaly-starvation" {
		t.Errorf("bundle reason %v, want anomaly-starvation", reason)
	}
	assertBundleComplete(t, bdir, manifest)

	// The bundle's anomaly record matches the run's first firing.
	raw, err := os.ReadFile(filepath.Join(bdir, "anomalies.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Anomalies []diag.Anomaly `json:"anomalies"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Anomalies) == 0 || rec.Anomalies[0] != first {
		t.Errorf("bundle anomalies %+v do not start with the run's first anomaly %+v", rec.Anomalies, first)
	}
}

// TestDiagSignalDump is the in-process SIGQUIT path: a pending dump request
// is consumed at the next detector-window boundary, writing a complete bundle
// without disturbing the run.
func TestDiagSignalDump(t *testing.T) {
	dir := t.TempDir()
	diag.RequestDump()
	res, err := Run(Config{
		Design: DesignDXbar, Routing: "DOR", Pattern: "UR", Load: 0.3,
		WarmupCycles: 200, MeasureCycles: 800, Seed: 42,
		DiagDir: dir,
		// The run is shorter than the default 1024-cycle window; shrink it so
		// a boundary (the sequential point that consumes dump requests) falls
		// inside the run.
		Diag: &diag.Config{Window: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Error("a dump request must not interrupt the run")
	}
	if res.Packets == 0 {
		t.Error("run delivered nothing")
	}
	bdir, manifest := findBundle(t, dir)
	if reason := manifest["reason"]; reason != "signal" {
		t.Errorf("bundle reason %v, want signal", reason)
	}
	assertBundleComplete(t, bdir, manifest)
}

// TestDiagInterrupt is the graceful-shutdown path: with the process-wide
// interrupt flag raised, Run stops at a cycle boundary, reports partial
// results with Interrupted set, and leaves an interrupt bundle.
func TestDiagInterrupt(t *testing.T) {
	t.Cleanup(diag.ClearInterrupt)
	dir := t.TempDir()
	diag.Interrupt()
	res, err := Run(Config{
		Design: DesignDXbar, Routing: "DOR", Pattern: "UR", Load: 0.3,
		WarmupCycles: 200, MeasureCycles: 1 << 40, // would run ~forever without the interrupt
		Seed:    42,
		DiagDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("Result.Interrupted not set on an interrupted run")
	}
	bdir, manifest := findBundle(t, dir)
	if reason := manifest["reason"]; reason != "interrupt" {
		t.Errorf("bundle reason %v, want interrupt", reason)
	}
	assertBundleComplete(t, bdir, manifest)
}

// TestDiagFaultLatency: a fault-injection run (the Fig. 11/12 setup) must
// close manifest->detected windows into the latency histogram, on both
// engines — the hooks are called from shard workers on the sharded one.
func TestDiagFaultLatency(t *testing.T) {
	for _, shards := range []int{0, 2} {
		reg := metrics.NewRegistry()
		_, err := Run(Config{
			Design: DesignDXbar, Routing: "WF", Pattern: "UR", Load: 0.3,
			WarmupCycles: 200, MeasureCycles: 1500, Seed: 42,
			FaultFraction: 0.5, FaultGranularity: "crossbar",
			Shards:  shards,
			Metrics: reg,
			Diag:    &diag.Config{Registry: reg, Window: 128},
		})
		if err != nil {
			t.Fatal(err)
		}
		var prom strings.Builder
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(prom.String(), diag.MetricFaultDetectLatency+"_count") {
			t.Errorf("shards %d: fault-latency histogram missing:\n%s", shards, prom.String())
			continue
		}
		for _, line := range strings.Split(prom.String(), "\n") {
			if strings.HasPrefix(line, diag.MetricFaultDetectLatency+"_count ") &&
				strings.HasSuffix(line, " 0") {
				t.Errorf("shards %d: no fault detection latencies recorded on a half-faulty mesh: %s", shards, line)
			}
		}
	}
}

// TestDiagDefaultsRouting: package defaults reach runs whose Config carries
// no diagnostics knobs (the dxbar-sweep path), and a per-run Config wins over
// them.
func TestDiagDefaultsRouting(t *testing.T) {
	dir := t.TempDir()
	var fired int
	SetDiagDefaults(&diag.Config{
		MaxFlitAge: 500, Window: 128,
		StallCycles: 1 << 40, StormMinCount: 1 << 40,
		OnAnomaly: func(diag.Anomaly) { fired++ },
	}, dir)
	defer SetDiagDefaults(nil, "")

	res, err := Run(Config{
		Design: DesignDXbar, Routing: "DOR", Pattern: "UR",
		Load: 0.95, WarmupCycles: 200, MeasureCycles: 3000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 || len(res.Anomalies) == 0 {
		t.Fatal("package-default detector config did not reach the run")
	}
	if _, err := os.ReadDir(dir); err != nil {
		t.Fatal(err)
	}
	bdir, manifest := findBundle(t, dir)
	assertBundleComplete(t, bdir, manifest)

	// DisableDiag beats the defaults.
	res2, err := Run(Config{
		Design: DesignDXbar, Routing: "DOR", Pattern: "UR",
		Load: 0.95, WarmupCycles: 200, MeasureCycles: 3000, Seed: 42,
		DisableDiag: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Anomalies) != 0 {
		t.Error("DisableDiag run still recorded anomalies")
	}
}
