package dxbar

import (
	"fmt"
	"io"

	"dxbar/internal/coherence"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/trace"
)

// RecordSplash runs a coherence workload once (on the DXbar design, whose
// behaviour does not affect what the workload *generates* open-loop) and
// writes the generated packet trace to w. The trace can then be replayed
// against any design with RunTrace — a cheap way to compare designs on
// identical traffic.
//
// Note the recorded trace is open-loop: replaying it loses the
// request-reply timing dependence (a design that delivers slower will not
// slow the recorded injection down). Use RunSplash for the closed-loop
// Fig. 9/10 numbers; use traces for fast relative sweeps and regression
// diffs.
func RecordSplash(c SplashConfig, w io.Writer) error {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Height == 0 {
		c.Height = 8
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 3_000_000
	}
	if c.Design == "" {
		c.Design = DesignDXbar
	}
	if c.Routing == "" {
		c.Routing = "DOR"
	}
	mesh, err := topology.NewMesh(c.Width, c.Height)
	if err != nil {
		return err
	}
	prof, ok := coherence.ProfileByName(c.Benchmark)
	if !ok {
		return fmt.Errorf("dxbar: unknown benchmark %q", c.Benchmark)
	}
	sys, err := coherence.NewSystem(mesh, prof, c.Seed)
	if err != nil {
		return err
	}
	rec := &trace.Recorder{Inner: sys, Trace: trace.Trace{Width: c.Width, Height: c.Height}}
	coll := stats.NewCollector(mesh.Nodes(), 0, c.MaxCycles)
	net, err := NewNetwork(NetworkOptions{
		Design:   c.Design,
		Routing:  c.Routing,
		Mesh:     mesh,
		Source:   rec,
		Sink:     sys,
		Stats:    coll,
		PreCycle: sys.PreCycle,
	})
	if err != nil {
		return err
	}
	if !net.Engine.RunUntil(sys.Quiesced, c.MaxCycles) {
		return fmt.Errorf("dxbar: benchmark %s did not finish within %d cycles", c.Benchmark, c.MaxCycles)
	}
	return rec.Trace.Write(w)
}

// TraceResult summarizes an open-loop trace replay.
type TraceResult struct {
	// CompletionCycles is the cycle by which every trace packet delivered.
	CompletionCycles uint64
	// Packets, AvgLatency and energy as in Result.
	Packets       uint64
	AvgLatency    float64
	AvgEnergyNJ   float64
	TotalEnergyNJ float64
	Design        Design
	Routing       string
}

// RunTrace replays a recorded trace against the given design.
func RunTrace(design Design, routingName string, r io.Reader, maxCycles uint64) (TraceResult, error) {
	tr, err := trace.Read(r)
	if err != nil {
		return TraceResult{}, err
	}
	if maxCycles == 0 {
		maxCycles = 3_000_000
	}
	mesh, err := topology.NewMesh(tr.Width, tr.Height)
	if err != nil {
		return TraceResult{}, err
	}
	player := trace.NewPlayer(tr)
	coll := stats.NewCollector(mesh.Nodes(), 0, maxCycles)
	net, err := NewNetwork(NetworkOptions{
		Design:  design,
		Routing: routingName,
		Mesh:    mesh,
		Source:  player,
		Stats:   coll,
	})
	if err != nil {
		return TraceResult{}, err
	}
	want := uint64(len(tr.Records))
	done := func() bool {
		return player.Remaining() == 0 && coll.Results().Packets >= want &&
			net.Engine.QueuedFlits() == 0
	}
	if !net.Engine.RunUntil(done, maxCycles) {
		return TraceResult{}, fmt.Errorf("dxbar: trace replay did not drain within %d cycles "+
			"(%d packets delivered of %d)", maxCycles, coll.Results().Packets, want)
	}
	res := coll.Results()
	out := TraceResult{
		CompletionCycles: net.Engine.Cycle(),
		Packets:          res.Packets,
		AvgLatency:       res.AvgLatency,
		TotalEnergyNJ:    net.Meter.TotalPJ() / 1000.0,
		Design:           design,
		Routing:          routingName,
	}
	if res.Packets > 0 {
		out.AvgEnergyNJ = out.TotalEnergyNJ / float64(res.Packets)
	}
	return out, nil
}
