package dxbar

import (
	"fmt"

	"dxbar/internal/energy"
	"dxbar/internal/metrics"
	"dxbar/internal/stats"
	"dxbar/internal/viz"
)

// Quality trades simulation length for fidelity when regenerating the
// paper's figures.
type Quality struct {
	// Warmup and Measure are the open-loop window sizes in cycles.
	Warmup, Measure uint64
	// Loads is the offered-load sweep for Figs. 5/6.
	Loads []float64
	// FaultFractions is the sweep for Figs. 11/12.
	FaultFractions []float64
	// SplashSeeds averages closed-loop runs over this many seeds.
	SplashSeeds int
}

// Quick is a CI-friendly quality (seconds per figure).
var Quick = Quality{
	Warmup: 1000, Measure: 4000,
	Loads:          []float64{0.1, 0.2, 0.3, 0.4, 0.5},
	FaultFractions: []float64{0, 0.5, 1.0},
	SplashSeeds:    1,
}

// Full matches the paper's axes (minutes per figure).
var Full = Quality{
	Warmup: 2000, Measure: 10000,
	Loads:          []float64{0.1, 0.2, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6, 0.7, 0.8, 0.9},
	FaultFractions: []float64{0, 0.25, 0.5, 0.75, 1.0},
	SplashSeeds:    3,
}

// Series is one labelled curve or bar group.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// XNames labels categorical X axes (patterns, benchmarks).
	XNames []string
}

// Figure is regenerated data for one paper figure.
type Figure struct {
	ID, Title, XLabel, YLabel string
	Series                    []Series
}

// figureDesigns are the six designs in the paper's legend order, with the
// routing algorithm each uses in Figs. 5-10.
var figureDesigns = []struct {
	Label   string
	Design  Design
	Routing string
}{
	{"Flit-Bless", DesignFlitBless, "DOR"},
	{"SCARAB", DesignSCARAB, "DOR"},
	{"Buffered 4", DesignBuffered4, "DOR"},
	{"Buffered 8", DesignBuffered8, "DOR"},
	{"DXbar DOR", DesignDXbar, "DOR"},
	{"DXbar WF", DesignDXbar, "WF"},
}

// SweepPoint is one (design, load) cell of a load sweep, carrying the full
// Result so figures, latency tables and histogram exports can all be derived
// from a single sweep instead of re-running it per consumer.
type SweepPoint struct {
	Label  string
	Load   float64
	Result Result
}

// SweepOptions are per-point extras a load sweep can carry beyond the
// quality axes (LoadSweepOpts).
type SweepOptions struct {
	// EventTrace enables the flight recorder with that ring capacity at
	// every sweep point (Config.EventTrace). 0 leaves tracing off.
	EventTrace int
	// EventKinds restricts the recorder's kinds (Config.EventKinds).
	EventKinds []string
	// Shards parallelizes the router phase at every sweep point
	// (Config.Shards). Results are bit-identical either way.
	Shards int
	// Metrics attaches a shared live-telemetry registry to every sweep
	// point (Config.Metrics): counters aggregate across the whole sweep,
	// gauges reflect the currently running points. Serve it with
	// metrics.StartServer to watch the sweep live.
	Metrics *metrics.Registry
	// ShardProfile populates each point's Result.ShardProfile
	// (Config.ShardProfile).
	ShardProfile bool
	// LedgerDir archives each completed point's Result in a run ledger
	// (Config.LedgerDir); LedgerReuse serves points from identical archived
	// records instead of re-simulating (Config.LedgerReuse).
	LedgerDir   string
	LedgerReuse bool
}

// LoadSweep runs every figure design over the quality's load axis in
// parallel under the given synthetic pattern. Points come back design-major
// in the paper's legend order, loads ascending within each design.
func LoadSweep(pattern string, q Quality, seed int64) ([]SweepPoint, error) {
	return LoadSweepOpts(pattern, q, seed, SweepOptions{})
}

// LoadSweepOpts is LoadSweep with per-point options (event tracing).
func LoadSweepOpts(pattern string, q Quality, seed int64, opts SweepOptions) ([]SweepPoint, error) {
	var configs []Config
	var pts []SweepPoint
	for _, fd := range figureDesigns {
		for _, l := range q.Loads {
			configs = append(configs, Config{
				Design: fd.Design, Routing: fd.Routing, Pattern: pattern, Load: l,
				WarmupCycles: q.Warmup, MeasureCycles: q.Measure, Seed: seed,
				EventTrace: opts.EventTrace, EventKinds: opts.EventKinds,
				Shards: opts.Shards, Metrics: opts.Metrics, ShardProfile: opts.ShardProfile,
				LedgerDir: opts.LedgerDir, LedgerReuse: opts.LedgerReuse,
			})
			pts = append(pts, SweepPoint{Label: fd.Label, Load: l})
		}
	}
	results, err := RunMany(configs, 0)
	if err != nil {
		return nil, err
	}
	for i := range pts {
		pts[i].Result = results[i]
	}
	return pts, nil
}

// sweepSeries groups sweep points into per-design series of y(point).
func sweepSeries(pts []SweepPoint, y func(SweepPoint) float64) []Series {
	var order []string
	byLabel := map[string]*Series{}
	for _, p := range pts {
		s, ok := byLabel[p.Label]
		if !ok {
			order = append(order, p.Label)
			s = &Series{Label: p.Label}
			byLabel[p.Label] = s
		}
		s.X = append(s.X, p.Load)
		s.Y = append(s.Y, y(p))
	}
	series := make([]Series, len(order))
	for i, l := range order {
		series[i] = *byLabel[l]
	}
	return series
}

// Figure5From builds Fig. 5 (accepted vs offered load) from LoadSweep points.
func Figure5From(pts []SweepPoint) Figure {
	return Figure{ID: "fig5", Title: "Throughput, Uniform Random",
		XLabel: "offered load (fraction of capacity)", YLabel: "accepted load",
		Series: sweepSeries(pts, func(p SweepPoint) float64 { return p.Result.AcceptedLoad })}
}

// Figure6From builds Fig. 6 (energy vs offered load) from LoadSweep points.
func Figure6From(pts []SweepPoint) Figure {
	return Figure{ID: "fig6", Title: "Energy, Uniform Random",
		XLabel: "offered load (fraction of capacity)", YLabel: "average energy (nJ/packet)",
		Series: sweepSeries(pts, func(p SweepPoint) float64 { return p.Result.AvgEnergyNJ })}
}

// Figure5 regenerates "Throughput of Uniform Random traffic pattern":
// accepted vs offered load for the six designs.
func Figure5(q Quality, seed int64) (Figure, error) {
	pts, err := LoadSweep("UR", q, seed)
	if err != nil {
		return Figure{}, err
	}
	return Figure5From(pts), nil
}

// Figure6 regenerates "Power of Uniform Random traffic pattern": average
// energy per packet vs offered load.
func Figure6(q Quality, seed int64) (Figure, error) {
	pts, err := LoadSweep("UR", q, seed)
	if err != nil {
		return Figure{}, err
	}
	return Figure6From(pts), nil
}

// patternAxis is the paper's synthetic-pattern axis for Figs. 7/8.
var patternAxis = []string{"UR", "NUR", "BR", "BF", "CP", "MT", "PS", "NB", "TOR"}

// PointCount reports how many simulation runs regenerating a figure costs at
// the given quality — the progress total for sweep drivers (each completed
// run fires OnRunDone once). Table 3 and unknown IDs cost no runs.
func PointCount(id string, q Quality) int {
	switch id {
	case "5", "6":
		return len(figureDesigns) * len(q.Loads)
	case "7", "8":
		return len(figureDesigns) * len(patternAxis)
	case "9", "10":
		return len(figureDesigns) * len(SplashBenchmarks()) * q.SplashSeeds
	case "11", "12":
		return 2 * len(q.FaultFractions) * len(q.Loads)
	}
	return 0
}

// figure78 computes throughput and energy at offered load 0.5 across all
// nine synthetic patterns.
func figure78(q Quality, seed int64) (thr, en Figure, err error) {
	thr = Figure{ID: "fig7", Title: "Throughput at offered load 0.5, all synthetic patterns",
		XLabel: "pattern", YLabel: "accepted load"}
	en = Figure{ID: "fig8", Title: "Energy at offered load 0.5, all synthetic patterns",
		XLabel: "pattern", YLabel: "average energy (nJ/packet)"}
	xs := make([]float64, len(patternAxis))
	for i := range xs {
		xs[i] = float64(i)
	}
	var configs []Config
	for _, fd := range figureDesigns {
		for _, p := range patternAxis {
			configs = append(configs, Config{
				Design: fd.Design, Routing: fd.Routing, Pattern: p, Load: 0.5,
				WarmupCycles: q.Warmup, MeasureCycles: q.Measure, Seed: seed,
			})
		}
	}
	results, e := RunMany(configs, 0)
	if e != nil {
		return Figure{}, Figure{}, e
	}
	i := 0
	for _, fd := range figureDesigns {
		var accs, ens []float64
		for range patternAxis {
			accs = append(accs, results[i].AcceptedLoad)
			ens = append(ens, results[i].AvgEnergyNJ)
			i++
		}
		thr.Series = append(thr.Series, Series{Label: fd.Label, X: xs, Y: accs, XNames: patternAxis})
		en.Series = append(en.Series, Series{Label: fd.Label, X: xs, Y: ens, XNames: patternAxis})
	}
	return thr, en, nil
}

// Figure7 regenerates "Throughput at an offered load = 0.5 of all synthetic
// traces".
func Figure7(q Quality, seed int64) (Figure, error) {
	thr, _, err := figure78(q, seed)
	return thr, err
}

// Figure8 regenerates "Energy consumed at an offered load = 0.5 of all
// synthetic traces".
func Figure8(q Quality, seed int64) (Figure, error) {
	_, en, err := figure78(q, seed)
	return en, err
}

// figure910 runs the closed-loop SPLASH-2 substitute for every benchmark ×
// design. Fig. 9 normalizes execution time to the Buffered 4 baseline, as
// the paper's "Normalized Execution Time" axis does.
func figure910(q Quality, seed int64) (timeFig, enFig Figure, err error) {
	benches := SplashBenchmarks()
	xs := make([]float64, len(benches))
	for i := range xs {
		xs[i] = float64(i)
	}
	timeFig = Figure{ID: "fig9", Title: "Normalized execution time, SPLASH-2 traces",
		XLabel: "benchmark", YLabel: "execution time (normalized to Buffered 4)"}
	enFig = Figure{ID: "fig10", Title: "Energy, SPLASH-2 traces",
		XLabel: "benchmark", YLabel: "average energy (nJ/packet)"}

	var configs []SplashConfig
	for _, fd := range figureDesigns {
		for _, b := range benches {
			for s := 0; s < q.SplashSeeds; s++ {
				configs = append(configs, SplashConfig{
					Design: fd.Design, Routing: fd.Routing, Benchmark: b, Seed: seed + int64(s),
				})
			}
		}
	}
	runs, e := RunManySplash(configs, 0)
	if e != nil {
		return Figure{}, Figure{}, e
	}
	type cell struct{ time, energy float64 }
	results := map[string][]cell{}
	i := 0
	for _, fd := range figureDesigns {
		cells := make([]cell, len(benches))
		for bi := range benches {
			var sumT, sumE float64
			for s := 0; s < q.SplashSeeds; s++ {
				sumT += float64(runs[i].ExecutionCycles)
				sumE += runs[i].AvgEnergyNJ
				i++
			}
			cells[bi] = cell{time: sumT / float64(q.SplashSeeds), energy: sumE / float64(q.SplashSeeds)}
		}
		results[fd.Label] = cells
	}
	base, ok := results["Buffered 4"]
	if !ok {
		return Figure{}, Figure{}, fmt.Errorf("dxbar: missing Buffered 4 baseline")
	}
	for _, fd := range figureDesigns {
		cells := results[fd.Label]
		ts := make([]float64, len(benches))
		es := make([]float64, len(benches))
		for i := range cells {
			ts[i] = cells[i].time / base[i].time
			es[i] = cells[i].energy
		}
		timeFig.Series = append(timeFig.Series, Series{Label: fd.Label, X: xs, Y: ts, XNames: benches})
		enFig.Series = append(enFig.Series, Series{Label: fd.Label, X: xs, Y: es, XNames: benches})
	}
	return timeFig, enFig, nil
}

// Figure9 regenerates "Normalized time of simulation of all SPLASH-2
// traces".
func Figure9(q Quality, seed int64) (Figure, error) {
	tf, _, err := figure910(q, seed)
	return tf, err
}

// Figure10 regenerates "Energy consumed of all SPLASH-2 traces".
func Figure10(q Quality, seed int64) (Figure, error) {
	_, ef, err := figure910(q, seed)
	return ef, err
}

// FaultPoint is one cell of the Fig. 11/12 fault sweeps.
type FaultPoint struct {
	Fraction  float64
	Routing   string
	Load      float64
	Accepted  float64
	Latency   float64
	EnergyNJ  float64
	Delivered uint64
}

// FaultSweep runs DXbar under uniform-random traffic with crossbar faults
// for both routing algorithms over the given fault fractions and loads
// (Figs. 11 and 12 plot slices of this data).
func FaultSweep(q Quality, seed int64, loads []float64) ([]FaultPoint, error) {
	if loads == nil {
		loads = q.Loads
	}
	var configs []Config
	var keys []FaultPoint
	for _, algo := range []string{"DOR", "WF"} {
		for _, f := range q.FaultFractions {
			for _, l := range loads {
				configs = append(configs, Config{
					Design: DesignDXbar, Routing: algo, Pattern: "UR", Load: l,
					WarmupCycles: q.Warmup, MeasureCycles: q.Measure, Seed: seed,
					FaultFraction: f, FaultCycle: 10,
				})
				keys = append(keys, FaultPoint{Fraction: f, Routing: algo, Load: l})
			}
		}
	}
	results, err := RunMany(configs, 0)
	if err != nil {
		return nil, err
	}
	pts := make([]FaultPoint, len(keys))
	for i, res := range results {
		p := keys[i]
		p.Accepted = res.AcceptedLoad
		p.Latency = res.AvgLatency
		p.EnergyNJ = res.AvgEnergyNJ
		p.Delivered = res.Packets
		pts[i] = p
	}
	return pts, nil
}

// Figure11 regenerates the fault-tolerance throughput/latency plots:
// accepted load vs offered load per fault fraction, for DOR (a) and WF (b),
// plus latency (c).
func Figure11(q Quality, seed int64) (Figure, error) {
	pts, err := FaultSweep(q, seed, nil)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{ID: "fig11", Title: "Throughput and latency under crossbar faults (DXbar, UR)",
		XLabel: "offered load (fraction of capacity)", YLabel: "accepted load"}
	for _, algo := range []string{"DOR", "WF"} {
		for _, f := range q.FaultFractions {
			var xs, ys []float64
			for _, p := range pts {
				if p.Routing == algo && p.Fraction == f {
					xs = append(xs, p.Load)
					ys = append(ys, p.Accepted)
				}
			}
			fig.Series = append(fig.Series, Series{
				Label: fmt.Sprintf("%s faults=%.0f%%", algo, f*100), X: xs, Y: ys})
		}
	}
	return fig, nil
}

// Figure12 regenerates the fault-tolerance latency/power plots: average
// energy vs offered load per fault fraction and routing algorithm.
func Figure12(q Quality, seed int64) (Figure, error) {
	pts, err := FaultSweep(q, seed, nil)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{ID: "fig12", Title: "Latency and power under crossbar faults (DXbar, UR)",
		XLabel: "offered load (fraction of capacity)", YLabel: "average energy (nJ/packet)"}
	for _, algo := range []string{"DOR", "WF"} {
		for _, f := range q.FaultFractions {
			var xs, ys []float64
			for _, p := range pts {
				if p.Routing == algo && p.Fraction == f {
					xs = append(xs, p.Load)
					ys = append(ys, p.EnergyNJ)
				}
			}
			fig.Series = append(fig.Series, Series{
				Label: fmt.Sprintf("%s faults=%.0f%%", algo, f*100), X: xs, Y: ys})
		}
	}
	return fig, nil
}

// Table3Row re-exports the energy model's Table III reproduction.
type Table3Row = energy.Table3Row

// Table3 returns the reproduced Table III (area and buffer energy per
// design at 65 nm / 1.0 V / 1 GHz).
func Table3() []Table3Row { return energy.Table3() }

// Heatmap renders a Result's per-node utilization as an ASCII grid
// (requires Config.TrackUtilization).
func Heatmap(r Result) string {
	if r.NodeUtilization == nil {
		return "(utilization tracking was not enabled)"
	}
	return stats.Heatmap(r.NodeUtilization, r.Width, r.Height)
}

// FigureSVG renders a regenerated figure as a standalone SVG document —
// line charts for numeric axes (Figs. 5/6/11/12), grouped bars for
// categorical axes (Figs. 7-10). The matching CSV from cmd/dxbar-sweep is
// the figure's table view.
func FigureSVG(fig Figure) string {
	chart := viz.Chart{Title: fig.Title, XLabel: fig.XLabel, YLabel: fig.YLabel}
	categorical := false
	for _, s := range fig.Series {
		chart.Series = append(chart.Series, viz.Series{Label: s.Label, X: s.X, Y: s.Y, XNames: s.XNames})
		if s.XNames != nil {
			categorical = true
		}
	}
	if categorical {
		return viz.BarSVG(chart)
	}
	return viz.LineSVG(chart)
}
