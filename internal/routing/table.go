package routing

import (
	"fmt"

	"dxbar/internal/flit"
)

// MinimalAdaptive is fully-adaptive minimal routing without turn
// restrictions: both minimal directions toward the destination, the
// larger-offset dimension first. SCARAB uses it (bufferless drop networks
// cannot deadlock, so no turn model is needed).
type MinimalAdaptive struct{}

// Name implements Algorithm.
func (MinimalAdaptive) Name() string { return "MIN" }

// Adaptive implements Algorithm.
func (MinimalAdaptive) Adaptive() bool { return true }

// Productive implements Algorithm.
func (MinimalAdaptive) Productive(m Mesh, at, dst int) PortList {
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	var xPort, yPort flit.Port = flit.Invalid, flit.Invalid
	if dx > ax {
		xPort = flit.East
	} else if dx < ax {
		xPort = flit.West
	}
	if dy > ay {
		yPort = flit.South
	} else if dy < ay {
		yPort = flit.North
	}
	xd, yd := abs(dx-ax), abs(dy-ay)
	var ports PortList
	if xd >= yd {
		if xPort != flit.Invalid {
			ports.Add(xPort)
		}
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
	} else {
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
		if xPort != flit.Invalid {
			ports.Add(xPort)
		}
	}
	return ports
}

// Table is a routing algorithm precomputed over every (node, destination)
// pair of one mesh: the data-oriented form of the Algorithm interface. The
// productive set and the deflection order are packed into one uint16 each
// (four 3-bit port entries plus a 3-bit length), so a routing query on the
// cycle hot path is a single table load and a few shifts instead of
// coordinate arithmetic behind an interface call.
//
// A Table is itself an Algorithm (the mesh argument of the interface methods
// is ignored — the table was built for one mesh), so it drops into every
// router constructor unchanged. It is immutable after construction and safe
// to share across all routers of a network and across shard workers.
type Table struct {
	algo  Algorithm
	nodes int
	prod  []uint16 // packed Productive, indexed at*nodes+dst
	defl  []uint16 // packed DeflectionOrder
}

// packList packs a PortList into 16 bits: length in bits 12..14, entry i in
// bits 3i..3i+2. Lists only ever hold cardinal ports (values 0..3).
func packList(l PortList) uint16 {
	v := uint16(l.n) << 12
	for i := 0; i < l.n; i++ {
		v |= uint16(l.ports[i]) << uint(3*i)
	}
	return v
}

func unpackList(v uint16) PortList {
	// Branch-free decode: mask the packed word down to its n live 3-bit
	// fields first, then unpack all four slots unconditionally — dead slots
	// decode from masked-off zero bits, reproducing the zero-initialized
	// tail the loop version left behind.
	var l PortList
	n := int(v >> 12)
	w := uint32(v) & (0xFFF >> uint(12-3*n))
	l.n = n
	l.ports[0] = flit.Port(w & 7)
	l.ports[1] = flit.Port(w >> 3 & 7)
	l.ports[2] = flit.Port(w >> 6 & 7)
	l.ports[3] = flit.Port(w >> 9 & 7)
	return l
}

// NewTable precomputes algo over all nodes² pairs of m. If algo is already a
// *Table it is returned as-is, so constructors may wrap unconditionally.
func NewTable(algo Algorithm, m Mesh, nodes int) *Table {
	if t, ok := algo.(*Table); ok {
		return t
	}
	if nodes <= 0 {
		panic(fmt.Sprintf("routing: table needs a positive node count, got %d", nodes))
	}
	t := &Table{
		algo:  algo,
		nodes: nodes,
		prod:  make([]uint16, nodes*nodes),
		defl:  make([]uint16, nodes*nodes),
	}
	for at := 0; at < nodes; at++ {
		row := at * nodes
		for dst := 0; dst < nodes; dst++ {
			t.prod[row+dst] = packList(algo.Productive(m, at, dst))
			t.defl[row+dst] = packList(DeflectionOrder(algo, m, at, dst))
		}
	}
	return t
}

// Name implements Algorithm (the underlying algorithm's name).
func (t *Table) Name() string { return t.algo.Name() }

// Adaptive implements Algorithm.
func (t *Table) Adaptive() bool { return t.algo.Adaptive() }

// Productive implements Algorithm; the mesh argument is ignored.
func (t *Table) Productive(_ Mesh, at, dst int) PortList {
	return unpackList(t.prod[at*t.nodes+dst])
}

// ProductiveAt is the table-native productive query (no interface, no mesh).
func (t *Table) ProductiveAt(at, dst int) PortList {
	return unpackList(t.prod[at*t.nodes+dst])
}

// RequestAt is the look-ahead routing decision at node `at`: the preferred
// productive port, or Local when the flit has arrived.
func (t *Table) RequestAt(at, dst int) flit.Port {
	v := t.prod[at*t.nodes+dst]
	if v>>12 == 0 {
		return flit.Local
	}
	return flit.Port(v & 7)
}

// DeflectionAt is the table-native deflection-order query.
func (t *Table) DeflectionAt(at, dst int) PortList {
	return unpackList(t.defl[at*t.nodes+dst])
}

// ProductiveLenAt returns the size of the productive set without unpacking
// the list (deflection routers compare a rank against it).
func (t *Table) ProductiveLenAt(at, dst int) int {
	return int(t.prod[at*t.nodes+dst] >> 12)
}
