package routing_test

import (
	"testing"

	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/topology"
)

func portsEqual(a, b routing.PortList) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return false
		}
	}
	return true
}

// TestTableMatchesAlgorithm verifies every precomputed entry against the
// direct computation, for all three algorithms on square and rectangular
// meshes — the table is a pure cache, so any divergence is a packing bug.
func TestTableMatchesAlgorithm(t *testing.T) {
	meshes := []*topology.Mesh{
		topology.MustMesh(2, 2),
		topology.MustMesh(8, 8),
		topology.MustMesh(4, 7),
	}
	algos := []routing.Algorithm{routing.DOR{}, routing.WestFirst{}, routing.MinimalAdaptive{}}
	for _, m := range meshes {
		for _, a := range algos {
			tab := routing.NewTable(a, m, m.Nodes())
			if tab.Name() != a.Name() || tab.Adaptive() != a.Adaptive() {
				t.Fatalf("%s: table metadata mismatch", a.Name())
			}
			for at := 0; at < m.Nodes(); at++ {
				for dst := 0; dst < m.Nodes(); dst++ {
					wantProd := a.Productive(m, at, dst)
					if got := tab.ProductiveAt(at, dst); !portsEqual(got, wantProd) {
						t.Fatalf("%s %dx%d at=%d dst=%d: productive %v, want %v",
							a.Name(), m.Width, m.Height, at, dst, got.Slice(), wantProd.Slice())
					}
					if got := tab.Productive(m, at, dst); !portsEqual(got, wantProd) {
						t.Fatalf("%s: interface Productive diverges at (%d,%d)", a.Name(), at, dst)
					}
					if got, want := tab.RequestAt(at, dst), routing.Request(a, m, at, dst); got != want {
						t.Fatalf("%s at=%d dst=%d: request %v, want %v", a.Name(), at, dst, got, want)
					}
					wantDefl := routing.DeflectionOrder(a, m, at, dst)
					if got := tab.DeflectionAt(at, dst); !portsEqual(got, wantDefl) {
						t.Fatalf("%s at=%d dst=%d: deflection %v, want %v",
							a.Name(), at, dst, got.Slice(), wantDefl.Slice())
					}
					if got := tab.ProductiveLenAt(at, dst); got != wantProd.Len() {
						t.Fatalf("%s at=%d dst=%d: productive len %d, want %d",
							a.Name(), at, dst, got, wantProd.Len())
					}
				}
			}
		}
	}
}

// TestTableIdempotentWrap: wrapping a table returns the same table.
func TestTableIdempotentWrap(t *testing.T) {
	m := topology.MustMesh(4, 4)
	tab := routing.NewTable(routing.DOR{}, m, m.Nodes())
	if again := routing.NewTable(tab, m, m.Nodes()); again != tab {
		t.Fatal("NewTable(table) built a copy")
	}
}

// TestMinimalAdaptiveProperties: the minimal set is nonempty off-destination,
// contains only minimal directions, and orders the larger offset first.
func TestMinimalAdaptiveProperties(t *testing.T) {
	m := topology.MustMesh(8, 8)
	a := routing.MinimalAdaptive{}
	for at := 0; at < m.Nodes(); at++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			ports := a.Productive(m, at, dst)
			if at == dst {
				if ports.Len() != 0 {
					t.Fatalf("at==dst but %v", ports.Slice())
				}
				continue
			}
			if ports.Len() == 0 {
				t.Fatalf("no minimal port from %d to %d", at, dst)
			}
			d0 := m.Distance(at, dst)
			for i := 0; i < ports.Len(); i++ {
				nb := m.Neighbor(at, ports.At(i))
				if nb == -1 || m.Distance(nb, dst) != d0-1 {
					t.Fatalf("port %v from %d to %d is not minimal", ports.At(i), at, dst)
				}
			}
			ax, ay := m.XY(at)
			dx, dy := m.XY(dst)
			xd, yd := dx-ax, dy-ay
			if xd < 0 {
				xd = -xd
			}
			if yd < 0 {
				yd = -yd
			}
			if xd >= yd && xd > 0 {
				if p := ports.At(0); p != flit.East && p != flit.West {
					t.Fatalf("larger X offset but first port %v", p)
				}
			}
		}
	}
}
