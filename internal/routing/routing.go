// Package routing implements the two routing algorithms the paper evaluates:
// DOR (dimension-ordered XY) and WF (west-first minimal adaptive), plus the
// productive-port machinery shared by the deflection (Flit-Bless), drop
// (SCARAB) and DXbar routers.
//
// Both algorithms are minimal. WF follows the west-first turn model: a packet
// that must travel west completes all of its westward hops first; afterwards
// it may adaptively pick any remaining productive direction (no turn back to
// west ever occurs). The turn model is deadlock-free on a mesh without
// virtual channels, which matters because the paper's routers have none.
package routing

import (
	"fmt"

	"dxbar/internal/flit"
)

// Algorithm selects output ports for flits.
type Algorithm interface {
	// Name returns the short name used in reports ("DOR", "WF").
	Name() string
	// Productive returns the set of output ports at node `at` that move a
	// flit closer to dst *and* are permitted by the algorithm's turn rules,
	// in preference order (most preferred first). An empty set means the
	// flit has arrived (at == dst) and must use the Local port.
	Productive(m Mesh, at, dst int) []flit.Port
	// Adaptive reports whether the algorithm permits choosing among multiple
	// productive ports (WF) or mandates a single one (DOR).
	Adaptive() bool
}

// Mesh is the topology interface the algorithms need. *topology.Mesh
// satisfies it; tests can substitute small fakes.
type Mesh interface {
	XY(n int) (x, y int)
	HasPort(n int, p flit.Port) bool
}

// New returns the algorithm with the given name ("DOR" or "WF").
func New(name string) (Algorithm, error) {
	switch name {
	case "DOR", "dor", "XY", "xy":
		return DOR{}, nil
	case "WF", "wf", "west-first":
		return WestFirst{}, nil
	}
	return nil, fmt.Errorf("routing: unknown algorithm %q", name)
}

// DOR is deterministic dimension-ordered (XY) routing: resolve the X offset
// completely, then the Y offset.
type DOR struct{}

// Name implements Algorithm.
func (DOR) Name() string { return "DOR" }

// Adaptive implements Algorithm.
func (DOR) Adaptive() bool { return false }

// Productive implements Algorithm. For DOR the set has at most one element.
func (DOR) Productive(m Mesh, at, dst int) []flit.Port {
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	switch {
	case dx < ax:
		return []flit.Port{flit.West}
	case dx > ax:
		return []flit.Port{flit.East}
	case dy < ay:
		return []flit.Port{flit.North}
	case dy > ay:
		return []flit.Port{flit.South}
	}
	return nil
}

// WestFirst is the west-first minimal adaptive turn model.
type WestFirst struct{}

// Name implements Algorithm.
func (WestFirst) Name() string { return "WF" }

// Adaptive implements Algorithm.
func (WestFirst) Adaptive() bool { return true }

// Productive implements Algorithm. If the destination lies to the west the
// only legal move is West; otherwise every productive direction among
// {East, North, South} is legal. The preference order puts the dimension
// with the larger remaining offset first, which spreads load without
// violating minimality.
func (WestFirst) Productive(m Mesh, at, dst int) []flit.Port {
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	if dx < ax {
		return []flit.Port{flit.West}
	}
	var ports []flit.Port
	xd, yd := dx-ax, abs(dy-ay)
	var yPort flit.Port = flit.Invalid
	if dy < ay {
		yPort = flit.North
	} else if dy > ay {
		yPort = flit.South
	}
	if xd >= yd {
		if xd > 0 {
			ports = append(ports, flit.East)
		}
		if yPort != flit.Invalid {
			ports = append(ports, yPort)
		}
	} else {
		if yPort != flit.Invalid {
			ports = append(ports, yPort)
		}
		if xd > 0 {
			ports = append(ports, flit.East)
		}
	}
	return ports
}

// Request is the look-ahead routing decision for a flit about to enter node
// `at`: the single preferred output port. Flits that have arrived get Local.
func Request(a Algorithm, m Mesh, at, dst int) flit.Port {
	ports := a.Productive(m, at, dst)
	if len(ports) == 0 {
		return flit.Local
	}
	return ports[0]
}

// DeflectionOrder ranks all four cardinal ports of node `at` for a flit bound
// for dst: productive ports (in algorithm preference order) first, then the
// remaining existing ports in fixed N,E,S,W order. Deflection routers use it
// to pick the least-bad port when the productive ones are taken. Ports that
// face the mesh edge are excluded entirely.
func DeflectionOrder(a Algorithm, m Mesh, at, dst int) []flit.Port {
	prod := a.Productive(m, at, dst)
	order := make([]flit.Port, 0, flit.NumLinkPorts)
	inProd := func(p flit.Port) bool {
		for _, q := range prod {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, p := range prod {
		if m.HasPort(at, p) {
			order = append(order, p)
		}
	}
	for p := flit.North; p <= flit.West; p++ {
		if !inProd(p) && m.HasPort(at, p) {
			order = append(order, p)
		}
	}
	return order
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
