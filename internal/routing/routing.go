// Package routing implements the two routing algorithms the paper evaluates:
// DOR (dimension-ordered XY) and WF (west-first minimal adaptive), plus the
// productive-port machinery shared by the deflection (Flit-Bless), drop
// (SCARAB) and DXbar routers.
//
// Both algorithms are minimal. WF follows the west-first turn model: a packet
// that must travel west completes all of its westward hops first; afterwards
// it may adaptively pick any remaining productive direction (no turn back to
// west ever occurs). The turn model is deadlock-free on a mesh without
// virtual channels, which matters because the paper's routers have none.
package routing

import (
	"fmt"

	"dxbar/internal/flit"
)

// PortList is a fixed-capacity ordered set of cardinal ports returned by
// routing queries. It is a value type so the per-flit-per-cycle routing
// calls on the simulator's hot path allocate nothing.
type PortList struct {
	ports [flit.NumLinkPorts]flit.Port
	n     int
}

// Ports builds a PortList from the given ports in order.
func Ports(ps ...flit.Port) PortList {
	var l PortList
	for _, p := range ps {
		l.Add(p)
	}
	return l
}

// Add appends a port (panics past NumLinkPorts entries).
func (l *PortList) Add(p flit.Port) {
	l.ports[l.n] = p
	l.n++
}

// Len returns the number of ports in the list.
func (l PortList) Len() int { return l.n }

// At returns the i-th port in preference order.
func (l PortList) At(i int) flit.Port { return l.ports[i] }

// Contains reports whether p is in the list.
func (l PortList) Contains(p flit.Port) bool {
	for i := 0; i < l.n; i++ {
		if l.ports[i] == p {
			return true
		}
	}
	return false
}

// Slice returns the ports as a slice backed by the list's array (valid while
// l is alive; useful in tests).
func (l *PortList) Slice() []flit.Port { return l.ports[:l.n] }

// Algorithm selects output ports for flits.
type Algorithm interface {
	// Name returns the short name used in reports ("DOR", "WF").
	Name() string
	// Productive returns the set of output ports at node `at` that move a
	// flit closer to dst *and* are permitted by the algorithm's turn rules,
	// in preference order (most preferred first). An empty set means the
	// flit has arrived (at == dst) and must use the Local port.
	Productive(m Mesh, at, dst int) PortList
	// Adaptive reports whether the algorithm permits choosing among multiple
	// productive ports (WF) or mandates a single one (DOR).
	Adaptive() bool
}

// Mesh is the topology interface the algorithms need. *topology.Mesh
// satisfies it; tests can substitute small fakes.
type Mesh interface {
	XY(n int) (x, y int)
	HasPort(n int, p flit.Port) bool
}

// New returns the algorithm with the given name ("DOR" or "WF").
func New(name string) (Algorithm, error) {
	switch name {
	case "DOR", "dor", "XY", "xy":
		return DOR{}, nil
	case "WF", "wf", "west-first":
		return WestFirst{}, nil
	}
	return nil, fmt.Errorf("routing: unknown algorithm %q", name)
}

// DOR is deterministic dimension-ordered (XY) routing: resolve the X offset
// completely, then the Y offset.
type DOR struct{}

// Name implements Algorithm.
func (DOR) Name() string { return "DOR" }

// Adaptive implements Algorithm.
func (DOR) Adaptive() bool { return false }

// Productive implements Algorithm. For DOR the set has at most one element.
func (DOR) Productive(m Mesh, at, dst int) PortList {
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	switch {
	case dx < ax:
		return Ports(flit.West)
	case dx > ax:
		return Ports(flit.East)
	case dy < ay:
		return Ports(flit.North)
	case dy > ay:
		return Ports(flit.South)
	}
	return PortList{}
}

// WestFirst is the west-first minimal adaptive turn model.
type WestFirst struct{}

// Name implements Algorithm.
func (WestFirst) Name() string { return "WF" }

// Adaptive implements Algorithm.
func (WestFirst) Adaptive() bool { return true }

// Productive implements Algorithm. If the destination lies to the west the
// only legal move is West; otherwise every productive direction among
// {East, North, South} is legal. The preference order puts the dimension
// with the larger remaining offset first, which spreads load without
// violating minimality.
func (WestFirst) Productive(m Mesh, at, dst int) PortList {
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	if dx < ax {
		return Ports(flit.West)
	}
	var ports PortList
	xd, yd := dx-ax, abs(dy-ay)
	var yPort flit.Port = flit.Invalid
	if dy < ay {
		yPort = flit.North
	} else if dy > ay {
		yPort = flit.South
	}
	if xd >= yd {
		if xd > 0 {
			ports.Add(flit.East)
		}
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
	} else {
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
		if xd > 0 {
			ports.Add(flit.East)
		}
	}
	return ports
}

// Request is the look-ahead routing decision for a flit about to enter node
// `at`: the single preferred output port. Flits that have arrived get Local.
func Request(a Algorithm, m Mesh, at, dst int) flit.Port {
	ports := a.Productive(m, at, dst)
	if ports.Len() == 0 {
		return flit.Local
	}
	return ports.At(0)
}

// DeflectionOrder ranks all four cardinal ports of node `at` for a flit bound
// for dst: productive ports (in algorithm preference order) first, then the
// remaining existing ports in fixed N,E,S,W order. Deflection routers use it
// to pick the least-bad port when the productive ones are taken. Ports that
// face the mesh edge are excluded entirely.
func DeflectionOrder(a Algorithm, m Mesh, at, dst int) PortList {
	prod := a.Productive(m, at, dst)
	var order PortList
	for i := 0; i < prod.Len(); i++ {
		if p := prod.At(i); m.HasPort(at, p) {
			order.Add(p)
		}
	}
	for p := flit.North; p <= flit.West; p++ {
		if !prod.Contains(p) && m.HasPort(at, p) {
			order.Add(p)
		}
	}
	return order
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
