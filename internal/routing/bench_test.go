package routing

import (
	"testing"

	"dxbar/internal/topology"
)

func BenchmarkDORProductive(b *testing.B) {
	m := topology.MustMesh(8, 8)
	a := DOR{}
	for i := 0; i < b.N; i++ {
		a.Productive(m, i%64, (i*31)%64)
	}
}

func BenchmarkWestFirstProductive(b *testing.B) {
	m := topology.MustMesh(8, 8)
	a := WestFirst{}
	for i := 0; i < b.N; i++ {
		a.Productive(m, i%64, (i*31)%64)
	}
}

func BenchmarkDeflectionOrder(b *testing.B) {
	m := topology.MustMesh(8, 8)
	a := DOR{}
	for i := 0; i < b.N; i++ {
		DeflectionOrder(a, m, i%64, (i*31)%64)
	}
}
