package routing

import (
	"testing"
	"testing/quick"

	"dxbar/internal/flit"
	"dxbar/internal/topology"
)

var mesh = topology.MustMesh(8, 8)

func TestNew(t *testing.T) {
	for _, name := range []string{"DOR", "dor", "XY", "xy"} {
		a, err := New(name)
		if err != nil || a.Name() != "DOR" {
			t.Errorf("New(%q) = %v, %v", name, a, err)
		}
	}
	for _, name := range []string{"WF", "wf", "west-first"} {
		a, err := New(name)
		if err != nil || a.Name() != "WF" {
			t.Errorf("New(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) must fail")
	}
}

func TestDORXBeforeY(t *testing.T) {
	a := DOR{}
	at := mesh.Node(3, 3)
	// Destination NE: X resolved first, so East.
	got := a.Productive(mesh, at, mesh.Node(5, 1))
	if got.Len() != 1 || got.At(0) != flit.East {
		t.Errorf("DOR NE-dest productive = %v, want [E]", got.Slice())
	}
	// Same column: Y only.
	got = a.Productive(mesh, at, mesh.Node(3, 6))
	if got.Len() != 1 || got.At(0) != flit.South {
		t.Errorf("DOR same-column productive = %v, want [S]", got.Slice())
	}
	// Arrived.
	if got := a.Productive(mesh, at, at); got.Len() != 0 {
		t.Errorf("DOR arrived productive = %v, want empty", got.Slice())
	}
}

func TestDORNotAdaptive(t *testing.T) {
	if (DOR{}).Adaptive() {
		t.Error("DOR must not be adaptive")
	}
	if !(WestFirst{}).Adaptive() {
		t.Error("WF must be adaptive")
	}
}

func TestWestFirstForcesWest(t *testing.T) {
	a := WestFirst{}
	at := mesh.Node(5, 5)
	got := a.Productive(mesh, at, mesh.Node(2, 1))
	if got.Len() != 1 || got.At(0) != flit.West {
		t.Errorf("WF westward dest productive = %v, want [W]", got.Slice())
	}
}

func TestWestFirstAdaptiveSet(t *testing.T) {
	a := WestFirst{}
	at := mesh.Node(2, 2)
	got := a.Productive(mesh, at, mesh.Node(5, 6))
	if got.Len() != 2 {
		t.Fatalf("WF SE dest productive = %v, want two ports", got.Slice())
	}
	// dy=4 > dx=3 so South preferred first.
	if got.At(0) != flit.South || got.At(1) != flit.East {
		t.Errorf("WF preference order = %v, want [S E]", got.Slice())
	}
	// dx >= dy prefers East.
	got = a.Productive(mesh, at, mesh.Node(7, 4))
	if got.At(0) != flit.East || got.At(1) != flit.South {
		t.Errorf("WF preference order = %v, want [E S]", got.Slice())
	}
}

func TestWestFirstNeverTurnsToWestAfterEast(t *testing.T) {
	a := WestFirst{}
	// From any position where dst is east or aligned, West must not appear.
	for at := 0; at < mesh.Nodes(); at++ {
		for dst := 0; dst < mesh.Nodes(); dst++ {
			ax, _ := mesh.XY(at)
			dx, _ := mesh.XY(dst)
			ports := a.Productive(mesh, at, dst)
			for _, p := range ports.Slice() {
				if dx >= ax && p == flit.West {
					t.Fatalf("WF offered West with dst not west (at=%d dst=%d)", at, dst)
				}
			}
		}
	}
}

// Property: following any productive port strictly decreases distance, and
// repeatedly following the first preference reaches the destination in
// exactly Distance(src,dst) hops — for both algorithms.
func TestMinimalProgressProperty(t *testing.T) {
	algos := []Algorithm{DOR{}, WestFirst{}}
	f := func(srcRaw, dstRaw uint8, pick uint8) bool {
		src, dst := int(srcRaw)%64, int(dstRaw)%64
		for _, a := range algos {
			at := src
			steps := 0
			for at != dst {
				ports := a.Productive(mesh, at, dst)
				if ports.Len() == 0 {
					return false
				}
				// Any member of the set must make progress.
				for _, p := range ports.Slice() {
					nb := mesh.Neighbor(at, p)
					if nb == -1 || mesh.Distance(nb, dst) != mesh.Distance(at, dst)-1 {
						return false
					}
				}
				at = mesh.Neighbor(at, ports.At(int(pick)%ports.Len()))
				steps++
				if steps > 64 {
					return false
				}
			}
			if steps != mesh.Distance(src, dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRequest(t *testing.T) {
	if p := Request(DOR{}, mesh, 5, 5); p != flit.Local {
		t.Errorf("Request at destination = %s, want L", p)
	}
	if p := Request(DOR{}, mesh, mesh.Node(0, 0), mesh.Node(3, 3)); p != flit.East {
		t.Errorf("Request = %s, want E", p)
	}
}

func TestDeflectionOrder(t *testing.T) {
	at := mesh.Node(3, 3) // interior: all 4 ports exist
	order := DeflectionOrder(DOR{}, mesh, at, mesh.Node(5, 5))
	if order.Len() != 4 {
		t.Fatalf("interior node deflection order has %d ports, want 4", order.Len())
	}
	if order.At(0) != flit.East {
		t.Errorf("productive port must come first, got %v", order.Slice())
	}
	seen := map[flit.Port]bool{}
	for _, p := range order.Slice() {
		if seen[p] {
			t.Fatalf("duplicate port in order %v", order.Slice())
		}
		seen[p] = true
	}
}

func TestDeflectionOrderExcludesEdgePorts(t *testing.T) {
	corner := mesh.Node(0, 0)
	order := DeflectionOrder(DOR{}, mesh, corner, mesh.Node(5, 5))
	if order.Len() != 2 {
		t.Fatalf("corner node deflection order = %v, want exactly E,S", order.Slice())
	}
	for _, p := range order.Slice() {
		if p == flit.North || p == flit.West {
			t.Fatalf("edge-facing port %s offered at corner", p)
		}
	}
}

// Property: DeflectionOrder always returns each existing cardinal port
// exactly once, productive ports first.
func TestDeflectionOrderPermutationProperty(t *testing.T) {
	f := func(atRaw, dstRaw uint8, wf bool) bool {
		at, dst := int(atRaw)%64, int(dstRaw)%64
		var a Algorithm = DOR{}
		if wf {
			a = WestFirst{}
		}
		order := DeflectionOrder(a, mesh, at, dst)
		existing := 0
		for p := flit.North; p <= flit.West; p++ {
			if mesh.HasPort(at, p) {
				existing++
			}
		}
		if order.Len() != existing {
			return false
		}
		seen := map[flit.Port]bool{}
		for _, p := range order.Slice() {
			if seen[p] || !mesh.HasPort(at, p) {
				return false
			}
			seen[p] = true
		}
		// Productive prefix check.
		prod := a.Productive(mesh, at, dst)
		idx := 0
		for _, p := range prod.Slice() {
			if !mesh.HasPort(at, p) {
				continue
			}
			if order.At(idx) != p {
				return false
			}
			idx++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
