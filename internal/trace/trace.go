// Package trace records and replays network workloads. A trace captures
// every packet a Source generates (cycle, endpoints, size, kind) in a
// compact binary format, so expensive closed-loop workloads (the coherence
// substrate) can be re-run open-loop against many router designs, and runs
// can be archived and diffed for regression hunting.
//
// Not to be confused with internal/events, the runtime flight recorder:
// this package captures the *input* workload (what the sources inject),
// while internal/events records what the network *did* with it (per-flit
// arbitration outcomes, bufferings, deflections, drops).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dxbar/internal/flit"
	"dxbar/internal/traffic"
)

// Record is one generated packet.
type Record struct {
	Cycle    uint64
	Src, Dst int32
	NumFlits uint16
	Kind     flit.Kind
}

// Trace is a recorded workload for a specific mesh size.
type Trace struct {
	Width, Height int
	Records       []Record
}

// magic identifies the trace file format; version gates decoding.
const (
	magic   = 0x44586274 // "DXbt"
	version = 1
)

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{magic, version, uint32(t.Width), uint32(t.Height), uint32(len(t.Records))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
	}
	for i := range t.Records {
		r := &t.Records[i]
		if err := binary.Write(bw, binary.LittleEndian, r.Cycle); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
		rest := []interface{}{r.Src, r.Dst, r.NumFlits, uint8(r.Kind), uint8(0)}
		for _, v := range rest {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("trace: write record: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", hdr[0])
	}
	if hdr[1] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[1])
	}
	count := int(hdr[4])
	// Never trust the header's record count for allocation: a corrupt or
	// hostile file could claim billions of records. Grow incrementally and
	// fail on short reads instead.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t := &Trace{Width: int(hdr[2]), Height: int(hdr[3]), Records: make([]Record, 0, capHint)}
	for i := 0; i < count; i++ {
		var rec Record
		if err := binary.Read(br, binary.LittleEndian, &rec.Cycle); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
		var kind, pad uint8
		fields := []interface{}{&rec.Src, &rec.Dst, &rec.NumFlits, &kind, &pad}
		for _, v := range fields {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return nil, fmt.Errorf("trace: read record %d: %w", i, err)
			}
		}
		rec.Kind = flit.Kind(kind)
		t.Records = append(t.Records, rec)
	}
	return t, nil
}

// Recorder wraps a Source and captures everything it generates. It
// implements sim.Source.
type Recorder struct {
	Inner interface {
		Generate(node int, cycle uint64) []*traffic.PacketSpec
	}
	Trace Trace
}

// Generate implements sim.Source.
func (r *Recorder) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	specs := r.Inner.Generate(node, cycle)
	for _, s := range specs {
		r.Trace.Records = append(r.Trace.Records, Record{
			Cycle:    s.Cycle,
			Src:      int32(s.Src),
			Dst:      int32(s.Dst),
			NumFlits: s.NumFlits,
			Kind:     s.Kind,
		})
	}
	return specs
}

// Player replays a trace open-loop. It implements sim.Source. Records must
// be grouped by cycle in nondecreasing order per source node, which is how
// Recorder lays them down.
type Player struct {
	byNode map[int][]Record
	pos    map[int]int
	nextID uint64
}

// NewPlayer indexes a trace for replay.
func NewPlayer(t *Trace) *Player {
	p := &Player{byNode: make(map[int][]Record), pos: make(map[int]int), nextID: 1}
	for _, r := range t.Records {
		p.byNode[int(r.Src)] = append(p.byNode[int(r.Src)], r)
	}
	return p
}

// Generate implements sim.Source.
func (p *Player) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	recs := p.byNode[node]
	i := p.pos[node]
	var out []*traffic.PacketSpec
	for i < len(recs) && recs[i].Cycle <= cycle {
		r := recs[i]
		out = append(out, &traffic.PacketSpec{
			ID:       p.nextID,
			Src:      int(r.Src),
			Dst:      int(r.Dst),
			NumFlits: r.NumFlits,
			Kind:     r.Kind,
			Cycle:    cycle,
		})
		p.nextID++
		i++
	}
	p.pos[node] = i
	return out
}

// Remaining returns the number of unreplayed records.
func (p *Player) Remaining() int {
	total := 0
	for node, recs := range p.byNode {
		total += len(recs) - p.pos[node]
	}
	return total
}
