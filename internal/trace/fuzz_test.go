package trace

import (
	"bytes"
	"testing"

	"dxbar/internal/flit"
)

// FuzzRead: arbitrary bytes must never panic the trace parser — they either
// decode into a structurally valid trace or return an error.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = (&Trace{Width: 8, Height: 8, Records: []Record{
		{Cycle: 1, Src: 0, Dst: 63, NumFlits: 5, Kind: flit.Data},
	}}).Write(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed trace must round-trip identically.
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatal("round trip changed record count")
		}
	})
}
