package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"dxbar/internal/flit"
	"dxbar/internal/sim"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

func sample() *Trace {
	return &Trace{
		Width: 8, Height: 8,
		Records: []Record{
			{Cycle: 0, Src: 1, Dst: 9, NumFlits: 1, Kind: flit.Request},
			{Cycle: 3, Src: 9, Dst: 1, NumFlits: 5, Kind: flit.Data},
			{Cycle: 3, Src: 2, Dst: 60, NumFlits: 1, Kind: flit.Response},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sample()
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Width != in.Width || out.Height != in.Height || len(out.Records) != len(in.Records) {
		t.Fatalf("shape mismatch: %+v", out)
	}
	for i := range in.Records {
		if in.Records[i] != out.Records[i] {
			t.Errorf("record %d: %+v != %+v", i, in.Records[i], out.Records[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("garbage must not parse")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must not parse")
	}
	// Wrong version.
	var buf bytes.Buffer
	_ = sample().Write(&buf)
	b := buf.Bytes()
	b[4] = 99 // version field
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("wrong version must not parse")
	}
}

// Property: any record list round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(cycles []uint16, srcs, dsts []uint8) bool {
		n := len(cycles)
		if len(srcs) < n {
			n = len(srcs)
		}
		if len(dsts) < n {
			n = len(dsts)
		}
		in := &Trace{Width: 8, Height: 8}
		for i := 0; i < n; i++ {
			in.Records = append(in.Records, Record{
				Cycle: uint64(cycles[i]), Src: int32(srcs[i] % 64), Dst: int32(dsts[i] % 64),
				NumFlits: uint16(i%5 + 1), Kind: flit.Kind(i % 3),
			})
		}
		var buf bytes.Buffer
		if err := in.Write(&buf); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out.Records) != len(in.Records) {
			return false
		}
		for i := range in.Records {
			if in.Records[i] != out.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecorderCaptures(t *testing.T) {
	mesh := topology.MustMesh(8, 8)
	pat, _ := traffic.New("UR", mesh)
	bern, _ := traffic.NewBernoulli(mesh, pat, 0.5, 1, 1)
	rec := &Recorder{Inner: &sim.SourceAdapter{B: bern}}
	got := 0
	for c := uint64(0); c < 100; c++ {
		for n := 0; n < 64; n++ {
			got += len(rec.Generate(n, c))
		}
	}
	if got == 0 {
		t.Fatal("no packets generated")
	}
	if len(rec.Trace.Records) != got {
		t.Errorf("recorded %d, generated %d", len(rec.Trace.Records), got)
	}
}

func TestPlayerReplaysEverything(t *testing.T) {
	in := sample()
	p := NewPlayer(in)
	if p.Remaining() != 3 {
		t.Fatalf("remaining = %d", p.Remaining())
	}
	total := 0
	ids := map[uint64]bool{}
	for c := uint64(0); c < 10; c++ {
		for n := 0; n < 64; n++ {
			for _, s := range p.Generate(n, c) {
				total++
				if ids[s.ID] {
					t.Fatal("duplicate replay packet ID")
				}
				ids[s.ID] = true
				if s.Src != n {
					t.Fatal("replayed at wrong node")
				}
			}
		}
	}
	if total != 3 || p.Remaining() != 0 {
		t.Errorf("replayed %d records, remaining %d", total, p.Remaining())
	}
}

func TestPlayerLateStartCatchesUp(t *testing.T) {
	// Records at cycle 0 and 3 queried first at cycle 5 all emit then.
	p := NewPlayer(sample())
	out := p.Generate(1, 5)
	if len(out) != 1 {
		t.Errorf("node 1 should emit its cycle-0 record at first poll, got %d", len(out))
	}
}

// End-to-end: record a Bernoulli run, replay it, confirm the same packet
// population (cycle/src/dst multiset).
func TestRecordReplayEquivalence(t *testing.T) {
	mesh := topology.MustMesh(8, 8)
	pat, _ := traffic.New("MT", mesh)
	bern, _ := traffic.NewBernoulli(mesh, pat, 0.3, 1, 9)
	rec := &Recorder{Inner: &sim.SourceAdapter{B: bern}, Trace: Trace{Width: 8, Height: 8}}
	type key struct {
		c        uint64
		src, dst int
	}
	orig := map[key]int{}
	for c := uint64(0); c < 200; c++ {
		for n := 0; n < 64; n++ {
			for _, s := range rec.Generate(n, c) {
				orig[key{c, s.Src, s.Dst}]++
			}
		}
	}
	var buf bytes.Buffer
	if err := rec.Trace.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlayer(loaded)
	for c := uint64(0); c < 200; c++ {
		for n := 0; n < 64; n++ {
			for _, s := range p.Generate(n, c) {
				k := key{c, s.Src, s.Dst}
				orig[k]--
				if orig[k] == 0 {
					delete(orig, k)
				}
			}
		}
	}
	if len(orig) != 0 {
		t.Errorf("%d packets not reproduced by replay", len(orig))
	}
}

// Regression: a forged header claiming billions of records must fail fast
// on the short read instead of attempting a giant allocation (found by
// FuzzRead).
func TestReadRejectsForgedRecordCount(t *testing.T) {
	var buf bytes.Buffer
	_ = sample().Write(&buf)
	b := buf.Bytes()
	// Header layout: magic, version, width, height, count (uint32 LE each).
	b[16], b[17], b[18], b[19] = 0xff, 0xff, 0xff, 0xff
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("forged record count must error")
	}
}
