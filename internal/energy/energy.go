// Package energy implements the area and energy estimation of §III.B
// (Table III). The paper obtained its constants from Synopsys Design
// Compiler synthesis at TSMC 65 nm, 1.0 V, 1 GHz, 128-bit flits; we use the
// constants the paper publishes directly (13 pJ/flit crossbar traversal,
// 15 pJ/flit for the unified crossbar's transmission-gate fabric, 36 pJ link
// traversal per flit-hop) and document the per-design buffer energies, whose
// exact Table III cells are illegible in the source text, in EXPERIMENTS.md.
//
// The model is dynamic-energy only, like the paper's evaluation: every
// buffer write, buffer read, crossbar traversal, link traversal and NACK hop
// contributes a fixed per-event energy, so designs differ exactly through
// the event counts their microarchitectures generate (deflections and
// retransmissions inflate link/crossbar events; buffered designs add buffer
// events on every hop; DXbar adds them only for the ~1/6 of flits that
// lose arbitration).
package energy

// Per-event energies in picojoules per flit (§III.B).
const (
	// CrossbarPerFlit is the matrix-crossbar traversal energy (13 pJ/flit).
	CrossbarPerFlit = 13.0
	// UnifiedCrossbarPerFlit is the unified crossbar traversal energy; the
	// transmission gates cost 2 pJ/flit extra (15 pJ/flit).
	UnifiedCrossbarPerFlit = 15.0
	// LinkPerFlit is the link traversal energy per flit-hop. The paper
	// quotes "36 pJ" for the 128-bit link; we apply it per flit-hop.
	LinkPerFlit = 36.0
	// BufferWritePerFlit / BufferReadPerFlit are the 4-flit serial FIFO
	// energies (DXbar, Buffered 4).
	BufferWritePerFlit = 14.0
	BufferReadPerFlit  = 11.0
	// Buffered8WritePerFlit / Buffered8ReadPerFlit are the two-FIFO
	// (8-slot) organization energies — larger arrays, more energy per
	// access ("buffered 8 has a buffer organization which consumes more
	// energy").
	Buffered8WritePerFlit = 18.0
	Buffered8ReadPerFlit  = 14.0
	// NackPerHop is the per-hop energy of SCARAB's dedicated
	// circuit-switched NACK network (narrow control wires).
	NackPerHop = 8.0
)

// Meter accumulates energy events for one network. The simulation engine
// snapshots it at the warmup boundary so reported energy covers only the
// measurement window.
type Meter struct {
	crossbarPJ float64
	unified    bool

	crossbarTraversals uint64
	linkTraversals     uint64
	bufferWrites       uint64
	bufferReads        uint64
	nackHops           uint64
	buffered8          bool
}

// NewMeter returns a meter using the plain-crossbar traversal energy.
func NewMeter() *Meter { return &Meter{crossbarPJ: CrossbarPerFlit} }

// NewUnifiedMeter returns a meter using the unified crossbar's 15 pJ/flit.
func NewUnifiedMeter() *Meter {
	return &Meter{crossbarPJ: UnifiedCrossbarPerFlit, unified: true}
}

// NewBuffered8Meter returns a meter using the 8-slot buffer energies.
func NewBuffered8Meter() *Meter {
	return &Meter{crossbarPJ: CrossbarPerFlit, buffered8: true}
}

// CrossbarTraversal records one flit crossing a crossbar.
func (m *Meter) CrossbarTraversal() { m.crossbarTraversals++ }

// LinkTraversal records one flit crossing an inter-router link.
func (m *Meter) LinkTraversal() { m.linkTraversals++ }

// AddLinkTraversals records n link traversals at once (the engine's link
// phase batches its per-cycle count into one add).
func (m *Meter) AddLinkTraversals(n uint64) { m.linkTraversals += n }

// BufferWrite records one flit written into an input/secondary buffer.
func (m *Meter) BufferWrite() { m.bufferWrites++ }

// BufferRead records one flit read out of a buffer.
func (m *Meter) BufferRead() { m.bufferReads++ }

// NackHops records h hops on the dedicated NACK network (SCARAB).
func (m *Meter) NackHops(h int) { m.nackHops += uint64(h) }

// Scratch returns an empty meter for staging events on behalf of this one
// (the sharded engine gives each shard a scratch meter for its router
// phase). Per-event energies are irrelevant on a scratch — only the event
// counts matter, and Absorb folds those back into the real meter.
func (m *Meter) Scratch() *Meter { return &Meter{} }

// Absorb adds s's event counts into m and zeroes s. Counter addition is
// commutative, so absorbing per-shard scratch meters in any order yields
// the same totals as sequential metering — which is what keeps the sharded
// engine's energy results bit-identical.
func (m *Meter) Absorb(s *Meter) {
	m.crossbarTraversals += s.crossbarTraversals
	m.linkTraversals += s.linkTraversals
	m.bufferWrites += s.bufferWrites
	m.bufferReads += s.bufferReads
	m.nackHops += s.nackHops
	s.crossbarTraversals = 0
	s.linkTraversals = 0
	s.bufferWrites = 0
	s.bufferReads = 0
	s.nackHops = 0
}

// Counts is a snapshot of the raw event counters.
type Counts struct {
	CrossbarTraversals uint64
	LinkTraversals     uint64
	BufferWrites       uint64
	BufferReads        uint64
	NackHops           uint64
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() Counts {
	return Counts{
		CrossbarTraversals: m.crossbarTraversals,
		LinkTraversals:     m.linkTraversals,
		BufferWrites:       m.bufferWrites,
		BufferReads:        m.bufferReads,
		NackHops:           m.nackHops,
	}
}

// Sub returns c - base, counter-wise.
func (c Counts) Sub(base Counts) Counts {
	return Counts{
		CrossbarTraversals: c.CrossbarTraversals - base.CrossbarTraversals,
		LinkTraversals:     c.LinkTraversals - base.LinkTraversals,
		BufferWrites:       c.BufferWrites - base.BufferWrites,
		BufferReads:        c.BufferReads - base.BufferReads,
		NackHops:           c.NackHops - base.NackHops,
	}
}

// EnergyPJ converts an event-count snapshot into picojoules under this
// meter's per-event energies.
func (m *Meter) EnergyPJ(c Counts) float64 {
	w, r := BufferWritePerFlit, BufferReadPerFlit
	if m.buffered8 {
		w, r = Buffered8WritePerFlit, Buffered8ReadPerFlit
	}
	return float64(c.CrossbarTraversals)*m.crossbarPJ +
		float64(c.LinkTraversals)*LinkPerFlit +
		float64(c.BufferWrites)*w +
		float64(c.BufferReads)*r +
		float64(c.NackHops)*NackPerHop
}

// TotalPJ returns the cumulative energy in picojoules.
func (m *Meter) TotalPJ() float64 { return m.EnergyPJ(m.Snapshot()) }
