package energy

import (
	"math"
	"testing"
)

func TestRouterStaticOrdering(t *testing.T) {
	get := func(d string) float64 {
		v, err := RouterStaticPJPerCycle(d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		return v
	}
	fb, b4, b8, dx := get("flitbless"), get("buffered4"), get("buffered8"), get("dxbar")
	if !(fb < b4 && b4 < b8) {
		t.Errorf("leakage ordering wrong: flitbless %.2f, buffered4 %.2f, buffered8 %.2f", fb, b4, b8)
	}
	if !(dx > b4) {
		t.Errorf("DXbar (extra crossbar) must leak more than buffered4: %.2f vs %.2f", dx, b4)
	}
	if _, err := RouterStaticPJPerCycle("bogus"); err == nil {
		t.Error("unknown design must error")
	}
}

func TestBufferStaticZeroForBufferless(t *testing.T) {
	for _, d := range []string{"flitbless", "scarab"} {
		v, err := BufferStaticPJPerCycle(d)
		if err != nil || v != 0 {
			t.Errorf("%s buffer leakage = %v, %v; want 0", d, v, err)
		}
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	m := NewMeter()
	c := Counts{
		CrossbarTraversals: 1000,
		LinkTraversals:     1000,
		BufferWrites:       1000,
		BufferReads:        1000,
	}
	b, err := m.Breakdown("buffered4", c, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.TotalMW-(b.BufferDynamicMW+b.BufferStaticMW+b.OtherDynamicMW+b.OtherStaticMW)) > 1e-9 {
		t.Error("breakdown parts must sum to total")
	}
	// 1000 writes+reads over 1000 cycles: buffer dynamic = 25 mW.
	if math.Abs(b.BufferDynamicMW-25) > 1e-9 {
		t.Errorf("buffer dynamic = %v mW, want 25", b.BufferDynamicMW)
	}
	// 16 slots × 0.8 pJ/cycle × 64 nodes = 819.2 mW.
	if math.Abs(b.BufferStaticMW-16*BufferSlotLeakPJPerCycle*64) > 1e-9 {
		t.Errorf("buffer static = %v mW", b.BufferStaticMW)
	}
	if b.BufferShareOfTot <= 0 || b.BufferShareOfTot >= 1 {
		t.Errorf("buffer share = %v out of (0,1)", b.BufferShareOfTot)
	}
}

func TestBreakdownValidation(t *testing.T) {
	m := NewMeter()
	if _, err := m.Breakdown("buffered4", Counts{}, 0, 64); err == nil {
		t.Error("zero cycles must error")
	}
	if _, err := m.Breakdown("bogus", Counts{}, 10, 64); err == nil {
		t.Error("unknown design must error")
	}
}

// The §I motivation: at a typical operating point the buffers of a generic
// buffered router account for ~40% of total power. The model constants are
// calibrated to land there; this test pins the calibration using a typical
// event mix (per node per cycle at UR load 0.3: ~1.6 flit-hops, each with a
// buffer write+read, crossbar and link traversal).
func TestBufferPowerShareMatchesMotivation(t *testing.T) {
	m := NewMeter()
	const nodes, cycles = 64, 10000
	perNodePerCycle := 1.6
	events := uint64(perNodePerCycle * nodes * cycles)
	c := Counts{
		CrossbarTraversals: events,
		LinkTraversals:     events,
		BufferWrites:       events,
		BufferReads:        events,
	}
	b, err := m.Breakdown("buffered4", c, cycles, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if b.BufferShareOfTot < 0.33 || b.BufferShareOfTot > 0.47 {
		t.Errorf("buffer share of total power = %.1f%%, want ~40%% (paper §I)",
			b.BufferShareOfTot*100)
	}
}
