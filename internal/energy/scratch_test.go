package energy

import "testing"

// TestScratchAbsorb checks every counter crosses the scratch→master fold
// exactly once: absorbing a scratch adds its counts and zeroes it, and
// repeated rounds accumulate like direct metering.
func TestScratchAbsorb(t *testing.T) {
	master := NewMeter()
	direct := NewMeter()
	scratch := master.Scratch()

	record := func(m *Meter) {
		m.CrossbarTraversal()
		m.CrossbarTraversal()
		m.LinkTraversal()
		m.BufferWrite()
		m.BufferWrite()
		m.BufferWrite()
		m.BufferRead()
		m.NackHops(4)
	}
	for round := 0; round < 3; round++ {
		record(direct)
		record(scratch)
		master.Absorb(scratch)
		if scratch.Snapshot() != (Counts{}) {
			t.Fatalf("round %d: scratch not zeroed after absorb: %+v", round, scratch.Snapshot())
		}
	}
	if master.Snapshot() != direct.Snapshot() {
		t.Errorf("absorbed totals differ from direct metering:\nmaster: %+v\ndirect: %+v", master.Snapshot(), direct.Snapshot())
	}
	// Energy conversion sees the absorbed counts through the master's params.
	if master.TotalPJ() != direct.TotalPJ() {
		t.Errorf("energy differs: master %f pJ, direct %f pJ", master.TotalPJ(), direct.TotalPJ())
	}
}
