package energy

import "fmt"

// Static (leakage) power model — an extension beyond the paper's
// dynamic-energy evaluation. The paper's *motivation* (§I) is that "input
// buffers contribute to a significant portion (~40%) of the total power
// budget"; that fraction only materializes when buffer leakage is included
// alongside dynamic access energy. These constants are calibrated so the
// generic Buffered 4 router at a typical operating point (UR, load 0.3)
// spends ~40% of its total power in the buffers, reproducing the premise
// (asserted by TestBufferPowerShareMatchesMotivation and the
// BenchmarkExtensionTotalPower harness).
//
// The paper's figures remain dynamic-only (its Fig. 6 shows bufferless and
// DXbar at parity at zero load, which only holds without leakage), so
// static power is reported separately and never folded into AvgEnergyNJ.
const (
	// BufferSlotLeakPJPerCycle is the leakage of one flit-wide buffer slot
	// per cycle (128-bit register file cell, 65 nm).
	BufferSlotLeakPJPerCycle = 0.8
	// CrosspointLeakPJPerCycle is the leakage of one crossbar crosspoint
	// per cycle.
	CrosspointLeakPJPerCycle = 0.05
	// LinkLeakPJPerCycle is the repeater leakage of the four output links
	// per cycle.
	LinkLeakPJPerCycle = 2.0
	// AllocLeakPJPerCycle covers the allocator and control logic.
	AllocLeakPJPerCycle = 0.4
)

// routerStatic describes a design's leaky inventory.
type routerStatic struct {
	bufferSlots int
	crosspoints int
}

func staticInventory(design string) (routerStatic, error) {
	switch design {
	case "flitbless", "scarab":
		return routerStatic{bufferSlots: 0, crosspoints: 20}, nil
	case "buffered4":
		return routerStatic{bufferSlots: 16, crosspoints: 25}, nil
	case "buffered8":
		return routerStatic{bufferSlots: 32, crosspoints: 25}, nil
	case "dxbar":
		return routerStatic{bufferSlots: 16, crosspoints: 45}, nil // 4×5 + 5×5
	case "unified":
		return routerStatic{bufferSlots: 16, crosspoints: 25}, nil
	case "afc":
		// AFC power-gates its buffers in bufferless mode; report the
		// worst case (buffered mode) here — mode-weighted leakage needs
		// run data and is computed by the caller.
		return routerStatic{bufferSlots: 16, crosspoints: 25}, nil
	}
	return routerStatic{}, fmt.Errorf("energy: unknown design %q", design)
}

// RouterStaticPJPerCycle returns one router's total leakage per cycle (pJ).
func RouterStaticPJPerCycle(design string) (float64, error) {
	inv, err := staticInventory(design)
	if err != nil {
		return 0, err
	}
	return float64(inv.bufferSlots)*BufferSlotLeakPJPerCycle +
		float64(inv.crosspoints)*CrosspointLeakPJPerCycle +
		LinkLeakPJPerCycle + AllocLeakPJPerCycle, nil
}

// BufferStaticPJPerCycle returns only the buffer leakage per router cycle.
func BufferStaticPJPerCycle(design string) (float64, error) {
	inv, err := staticInventory(design)
	if err != nil {
		return 0, err
	}
	return float64(inv.bufferSlots) * BufferSlotLeakPJPerCycle, nil
}

// PowerBreakdown splits a run's power into buffer and non-buffer parts,
// combining windowed dynamic event counts with leakage. All values are in
// milliwatts for the whole network at the 1 GHz clock (1 cycle = 1 ns, so
// pJ/cycle ≡ mW).
type PowerBreakdown struct {
	BufferDynamicMW  float64
	BufferStaticMW   float64
	OtherDynamicMW   float64
	OtherStaticMW    float64
	TotalMW          float64
	BufferShareOfTot float64
}

// Breakdown computes the power split for a design from windowed event
// counts over `cycles` cycles on `nodes` routers.
func (m *Meter) Breakdown(design string, c Counts, cycles uint64, nodes int) (PowerBreakdown, error) {
	if cycles == 0 || nodes <= 0 {
		return PowerBreakdown{}, fmt.Errorf("energy: breakdown needs cycles and nodes")
	}
	w, r := BufferWritePerFlit, BufferReadPerFlit
	if m.buffered8 {
		w, r = Buffered8WritePerFlit, Buffered8ReadPerFlit
	}
	bufDynPJ := float64(c.BufferWrites)*w + float64(c.BufferReads)*r
	totDynPJ := m.EnergyPJ(c)
	bufLeak, err := BufferStaticPJPerCycle(design)
	if err != nil {
		return PowerBreakdown{}, err
	}
	totLeak, err := RouterStaticPJPerCycle(design)
	if err != nil {
		return PowerBreakdown{}, err
	}
	perCycle := float64(cycles)
	b := PowerBreakdown{
		BufferDynamicMW: bufDynPJ / perCycle,
		BufferStaticMW:  bufLeak * float64(nodes),
		OtherDynamicMW:  (totDynPJ - bufDynPJ) / perCycle,
		OtherStaticMW:   (totLeak - bufLeak) * float64(nodes),
	}
	b.TotalMW = b.BufferDynamicMW + b.BufferStaticMW + b.OtherDynamicMW + b.OtherStaticMW
	if b.TotalMW > 0 {
		b.BufferShareOfTot = (b.BufferDynamicMW + b.BufferStaticMW) / b.TotalMW
	}
	return b, nil
}
