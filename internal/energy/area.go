package energy

import "fmt"

// Component areas in mm² at 65 nm (Table III structure). The paper's table
// prints the component values illegibly in the archived text; these values
// are chosen to satisfy every relation the prose states and are documented
// in EXPERIMENTS.md:
//
//   - the buffers have a larger area than the crossbar;
//   - DXbar occupies 33% more area than Flit-Bless/SCARAB, the unified
//     design 25% more;
//   - DXbar is larger than Buffered 4 but smaller than Buffered 8;
//   - both proposed designs are "much closer" to the buffered baselines.
const (
	// Crossbar5x5MM2 is a full 5×5 matrix crossbar.
	Crossbar5x5MM2 = 0.0058
	// Crossbar4x5MM2 is the DXbar primary (4 link inputs × 5 outputs),
	// scaled by crosspoint count.
	Crossbar4x5MM2 = Crossbar5x5MM2 * 20 / 25
	// UnifiedGateOverhead is the transmission-gate area overhead of the
	// unified crossbar relative to a plain 5×5.
	UnifiedGateOverhead = 0.20
	// FourBuffers4MM2 is four 4-flit serial FIFOs (one per link input).
	FourBuffers4MM2 = 0.0074
	// FourLinksMM2 is the four 128-bit input links with look-ahead wires.
	FourLinksMM2 = 0.0342
	// DeflectLogicMM2 is Flit-Bless's permutation/deflection logic.
	DeflectLogicMM2 = 0.0008
	// NackNetworkMM2 is SCARAB's dedicated circuit-switched NACK wiring.
	NackNetworkMM2 = 0.0012
	// AllocatorMM2 approximates the baseline separable allocator.
	AllocatorMM2 = 0.0006
	// DualAllocatorMM2 is DXbar's augmented allocator (demuxes, muxes,
	// fairness counter) and the unified design's swap logic.
	DualAllocatorMM2 = 0.0008
	// UnifiedAllocatorMM2 is the dual-input allocator with the two serial
	// V:1 arbiters and the conflict detection/switch logic.
	UnifiedAllocatorMM2 = 0.0010
)

// Timing constants from §III.B (Synopsys, 65 nm, 1 GHz target).
const (
	// LinkTraversalNS is the critical path: the LT stage (0.47 ns).
	LinkTraversalNS = 0.47
	// UnifiedSwitchWorstNS is the unified crossbar's longest switch
	// traversal, with all 5 transmission gates switching (0.27 ns).
	UnifiedSwitchWorstNS = 0.27
	// ClockCycleNS is the targeted clock (1 GHz).
	ClockCycleNS = 1.0
)

// Table3Row is one row of the reproduced Table III.
type Table3Row struct {
	Design string
	// AreaMM2 is the per-router area.
	AreaMM2 float64
	// BufferEnergyPJ is the buffer energy per buffered flit (write+read);
	// 0 for the bufferless designs.
	BufferEnergyPJ float64
}

// RouterArea returns the per-router area in mm² for a design name as used
// throughout the repository ("flitbless", "scarab", "buffered4",
// "buffered8", "dxbar", "unified"; routing suffixes are ignored).
func RouterArea(design string) (float64, error) {
	switch design {
	case "flitbless":
		return FourLinksMM2 + Crossbar4x5MM2 + DeflectLogicMM2, nil
	case "scarab":
		return FourLinksMM2 + Crossbar4x5MM2 + DeflectLogicMM2 + NackNetworkMM2, nil
	case "buffered4":
		return FourLinksMM2 + Crossbar5x5MM2 + FourBuffers4MM2 + AllocatorMM2, nil
	case "buffered8":
		return FourLinksMM2 + Crossbar5x5MM2 + 2*FourBuffers4MM2 + AllocatorMM2 + 0.0002, nil
	case "dxbar":
		return FourLinksMM2 + Crossbar4x5MM2 + Crossbar5x5MM2 + FourBuffers4MM2 + DualAllocatorMM2, nil
	case "unified":
		return FourLinksMM2 + Crossbar5x5MM2*(1+UnifiedGateOverhead) + FourBuffers4MM2 + UnifiedAllocatorMM2, nil
	}
	return 0, fmt.Errorf("energy: unknown design %q", design)
}

// BufferEnergyPerFlit returns the write+read buffer energy per buffered flit
// for a design (the Table III "Buffer Energy" column).
func BufferEnergyPerFlit(design string) (float64, error) {
	switch design {
	case "flitbless", "scarab":
		return 0, nil
	case "buffered4", "dxbar", "unified":
		return BufferWritePerFlit + BufferReadPerFlit, nil
	case "buffered8":
		return Buffered8WritePerFlit + Buffered8ReadPerFlit, nil
	}
	return 0, fmt.Errorf("energy: unknown design %q", design)
}

// Table3 reproduces Table III for the six evaluated designs, in the paper's
// row order.
func Table3() []Table3Row {
	designs := []string{"flitbless", "scarab", "buffered4", "buffered8", "dxbar", "unified"}
	rows := make([]Table3Row, 0, len(designs))
	for _, d := range designs {
		area, _ := RouterArea(d)
		be, _ := BufferEnergyPerFlit(d)
		rows = append(rows, Table3Row{Design: d, AreaMM2: area, BufferEnergyPJ: be})
	}
	return rows
}
