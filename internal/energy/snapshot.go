package energy

import "dxbar/internal/snapshot"

// SaveState serializes the meter's event counters. The per-event energies
// (crossbarPJ, unified, buffered8) are configuration, re-derived from the
// design on restore.
func (m *Meter) SaveState(w *snapshot.Writer) {
	w.Tag("ENRG")
	w.U64(m.crossbarTraversals)
	w.U64(m.linkTraversals)
	w.U64(m.bufferWrites)
	w.U64(m.bufferReads)
	w.U64(m.nackHops)
}

// LoadState restores the meter's event counters.
func (m *Meter) LoadState(r *snapshot.Reader) error {
	r.Expect("ENRG")
	m.crossbarTraversals = r.U64()
	m.linkTraversals = r.U64()
	m.bufferWrites = r.U64()
	m.bufferReads = r.U64()
	m.nackHops = r.U64()
	return r.Err()
}
