package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter()
	m.CrossbarTraversal()
	m.LinkTraversal()
	m.LinkTraversal()
	m.BufferWrite()
	m.BufferRead()
	m.NackHops(3)
	want := CrossbarPerFlit + 2*LinkPerFlit + BufferWritePerFlit + BufferReadPerFlit + 3*NackPerHop
	if got := m.TotalPJ(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalPJ = %v, want %v", got, want)
	}
}

func TestUnifiedMeterUsesHigherCrossbarEnergy(t *testing.T) {
	m, u := NewMeter(), NewUnifiedMeter()
	m.CrossbarTraversal()
	u.CrossbarTraversal()
	if u.TotalPJ()-m.TotalPJ() != UnifiedCrossbarPerFlit-CrossbarPerFlit {
		t.Error("unified meter must charge 2 pJ more per crossbar traversal")
	}
}

func TestBuffered8MeterUsesLargerBufferEnergy(t *testing.T) {
	m, b8 := NewMeter(), NewBuffered8Meter()
	m.BufferWrite()
	m.BufferRead()
	b8.BufferWrite()
	b8.BufferRead()
	if b8.TotalPJ() <= m.TotalPJ() {
		t.Error("buffered8 meter must charge more per buffer access")
	}
}

func TestSnapshotSub(t *testing.T) {
	m := NewMeter()
	m.LinkTraversal()
	base := m.Snapshot()
	m.LinkTraversal()
	m.CrossbarTraversal()
	d := m.Snapshot().Sub(base)
	if d.LinkTraversals != 1 || d.CrossbarTraversals != 1 {
		t.Errorf("diff = %+v", d)
	}
	if got := m.EnergyPJ(d); math.Abs(got-(LinkPerFlit+CrossbarPerFlit)) > 1e-9 {
		t.Errorf("windowed energy = %v", got)
	}
}

// Property: energy is linear in event counts and non-negative.
func TestEnergyLinearityProperty(t *testing.T) {
	m := NewMeter()
	f := func(x, l, w, r uint8) bool {
		c := Counts{
			CrossbarTraversals: uint64(x),
			LinkTraversals:     uint64(l),
			BufferWrites:       uint64(w),
			BufferReads:        uint64(r),
		}
		double := Counts{
			CrossbarTraversals: 2 * uint64(x),
			LinkTraversals:     2 * uint64(l),
			BufferWrites:       2 * uint64(w),
			BufferReads:        2 * uint64(r),
		}
		e := m.EnergyPJ(c)
		return e >= 0 && math.Abs(m.EnergyPJ(double)-2*e) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouterAreaRelations(t *testing.T) {
	area := func(d string) float64 {
		a, err := RouterArea(d)
		if err != nil {
			t.Fatalf("RouterArea(%s): %v", d, err)
		}
		return a
	}
	fb, sc := area("flitbless"), area("scarab")
	b4, b8 := area("buffered4"), area("buffered8")
	dx, un := area("dxbar"), area("unified")

	// §III.B prose relations.
	if !(dx > b4) {
		t.Error("DXbar must be larger than Buffered 4")
	}
	if !(dx < b8) {
		t.Error("DXbar must be smaller than Buffered 8")
	}
	if !(un < dx) {
		t.Error("unified must be smaller than DXbar")
	}
	if r := dx / fb; r < 1.28 || r > 1.38 {
		t.Errorf("DXbar/Flit-Bless area ratio = %.3f, want ~1.33", r)
	}
	if r := un / fb; r < 1.20 || r > 1.30 {
		t.Errorf("unified/Flit-Bless area ratio = %.3f, want ~1.25", r)
	}
	if sc < fb {
		t.Error("SCARAB must not be smaller than Flit-Bless (NACK network)")
	}
	// Buffers larger than crossbar.
	if !(FourBuffers4MM2 > Crossbar5x5MM2) {
		t.Error("buffer area must exceed crossbar area")
	}
}

func TestRouterAreaUnknownDesign(t *testing.T) {
	if _, err := RouterArea("bogus"); err == nil {
		t.Error("unknown design must error")
	}
	if _, err := BufferEnergyPerFlit("bogus"); err == nil {
		t.Error("unknown design must error")
	}
}

func TestBufferEnergyPerFlit(t *testing.T) {
	for _, d := range []string{"flitbless", "scarab"} {
		if e, _ := BufferEnergyPerFlit(d); e != 0 {
			t.Errorf("%s buffer energy = %v, want 0", d, e)
		}
	}
	b4, _ := BufferEnergyPerFlit("buffered4")
	b8, _ := BufferEnergyPerFlit("buffered8")
	if !(b8 > b4) {
		t.Error("buffered8 must consume more buffer energy than buffered4")
	}
	dx, _ := BufferEnergyPerFlit("dxbar")
	if dx != b4 {
		t.Error("DXbar has the same buffer organization as buffered4")
	}
}

func TestTable3Complete(t *testing.T) {
	rows := Table3()
	if len(rows) != 6 {
		t.Fatalf("Table III must have 6 rows, got %d", len(rows))
	}
	wantOrder := []string{"flitbless", "scarab", "buffered4", "buffered8", "dxbar", "unified"}
	for i, r := range rows {
		if r.Design != wantOrder[i] {
			t.Errorf("row %d = %s, want %s", i, r.Design, wantOrder[i])
		}
		if r.AreaMM2 <= 0 {
			t.Errorf("row %s has non-positive area", r.Design)
		}
	}
}

func TestTimingUnderClock(t *testing.T) {
	// §III.B: both critical-path values are under the 1 ns clock.
	if LinkTraversalNS >= ClockCycleNS || UnifiedSwitchWorstNS >= ClockCycleNS {
		t.Error("critical paths must fit in the clock cycle")
	}
}
