package stats

import (
	"testing"
)

func TestTimeSeriesDisabledByDefault(t *testing.T) {
	c := NewCollector(4, 0, 100)
	if c.SampleDue(0) || c.SampleDue(99) || c.Samples() != nil || c.SampleInterval() != 0 {
		t.Error("sampling must be off until enabled")
	}
	c.RecordSample(10, Probe{}) // must be a no-op
	if c.Samples() != nil {
		t.Error("RecordSample without enabling must not record")
	}
}

func TestTimeSeriesSamplesFlowDeltas(t *testing.T) {
	c := NewCollector(4, 50, 150) // window does not cover the whole run
	c.EnableTimeSeries(10, 64)
	if c.SampleInterval() != 10 {
		t.Fatalf("interval = %d", c.SampleInterval())
	}
	for cycle := uint64(0); cycle < 30; cycle++ {
		c.GeneratedFlits(cycle, 2)
		if cycle%2 == 0 {
			c.EjectedFlit(cycle)
		}
		if c.SampleDue(cycle) {
			c.RecordSample(cycle, Probe{InFlightFlits: int(cycle), QueuedFlits: 1, BufferedFlits: 3})
		}
	}
	s := c.Samples()
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3", len(s))
	}
	// Samples land at the end of each interval: cycles 9, 19, 29. The flow
	// deltas must be unwindowed (the collector window starts at 50).
	for i, want := range []uint64{9, 19, 29} {
		if s[i].Cycle != want {
			t.Errorf("sample %d at cycle %d, want %d", i, s[i].Cycle, want)
		}
		if s[i].InjectedFlits != 20 {
			t.Errorf("sample %d injected = %d, want 20 (deltas must ignore the window)", i, s[i].InjectedFlits)
		}
		if s[i].EjectedFlits != 5 {
			t.Errorf("sample %d ejected = %d, want 5", i, s[i].EjectedFlits)
		}
		if s[i].QueuedFlits != 1 || s[i].BufferedFlits != 3 {
			t.Errorf("sample %d gauges = %+v", i, s[i])
		}
	}
	if s[2].InFlightFlits != 29 {
		t.Errorf("gauge passthrough wrong: %+v", s[2])
	}
}

// TestTimeSeriesRingOverwritesOldest: a full ring keeps the most recent
// samples and stays at its preallocated capacity.
func TestTimeSeriesRingOverwritesOldest(t *testing.T) {
	c := NewCollector(4, 0, 1000)
	c.EnableTimeSeries(1, 4)
	for cycle := uint64(0); cycle < 10; cycle++ {
		if !c.SampleDue(cycle) {
			t.Fatalf("interval-1 sampling must be due every cycle (cycle %d)", cycle)
		}
		c.RecordSample(cycle, Probe{})
	}
	s := c.Samples()
	if len(s) != 4 {
		t.Fatalf("got %d samples, want capacity 4", len(s))
	}
	for i, want := range []uint64{6, 7, 8, 9} {
		if s[i].Cycle != want {
			t.Errorf("sample %d at cycle %d, want %d (oldest must be overwritten)", i, s[i].Cycle, want)
		}
	}
}

func TestTimeSeriesRecordSampleDoesNotAllocate(t *testing.T) {
	c := NewCollector(4, 0, 1<<30)
	c.EnableTimeSeries(1, 8)
	cycle := uint64(0)
	avg := testing.AllocsPerRun(100, func() {
		c.GeneratedFlits(cycle, 1)
		c.EjectedFlit(cycle)
		c.RecordSample(cycle, Probe{InFlightFlits: 1})
		cycle++
	})
	if avg != 0 {
		t.Errorf("RecordSample allocates %.2f per sample, want 0", avg)
	}
}

func TestEnableTimeSeriesValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 8}, {10, 0}, {10, -1}} {
		func() {
			defer func() { recover() }()
			NewCollector(4, 0, 100).EnableTimeSeries(uint64(bad[0]), bad[1])
			t.Errorf("EnableTimeSeries(%d, %d) must panic", bad[0], bad[1])
		}()
	}
}
