// Package stats collects the performance metrics the paper reports:
// accepted throughput (flits per node per cycle, as a fraction of the
// 1 flit/node/cycle injection capacity), average and maximum packet latency,
// and the microarchitectural event counters (deflections, retransmissions,
// bufferings) that explain the energy results.
//
// Measurements follow the standard warmup/measurement-window methodology:
// only packets *injected* inside the window count toward latency, and only
// flits generated/ejected inside the window count toward offered/accepted
// load.
package stats

import (
	"dxbar/internal/flit"
)

// Collector accumulates metrics for one simulation run.
type Collector struct {
	nodes      int
	start, end uint64 // measurement window [start, end)

	generatedFlits uint64
	ejectedFlits   uint64

	// totalGenerated/totalEjected/totalDropped and the packet totals count
	// across the whole run (no window); the time-series sampler derives
	// per-interval flow deltas from the flit totals, and live telemetry
	// (internal/metrics) publishes all of them as monotonic counters.
	totalGenerated        uint64
	totalEjected          uint64
	totalDropped          uint64
	totalDeflected        uint64
	totalPacketsInjected  uint64
	totalPacketsDelivered uint64

	packets         uint64
	packetsInjected uint64 // packets injected in-window (PacketInjected)
	latencySum      uint64
	latencyMax      uint64
	hopSum          uint64
	deflectSum      uint64
	retransSum      uint64
	bufferedSum     uint64 // buffering events observed via BufferingEvent
	routedFlits     uint64 // flit-router traversals observed via RoutedEvent
	droppedFlits    uint64
	fairnessFlips   uint64 // priority flips observed via FairnessFlip

	// droppedByNode counts in-window drops at each router, so heatmaps can
	// show *where* drops cluster instead of only how many happened.
	droppedByNode []uint64

	// latHist is the in-window packet-latency distribution. It lives inline
	// so recording a latency never allocates.
	latHist Histogram

	// ts is the optional time-series sample ring (see timeseries.go).
	ts *timeSeries

	// linkUse[n][p] counts window traversals of node n's output port p
	// (nil unless EnableLinkUtilization was called); utilWidth/utilHeight
	// are the mesh dimensions, used to average only over links that exist.
	linkUse               [][]uint64
	utilWidth, utilHeight int
}

// NewCollector returns a collector for a network with the given node count
// and measurement window [start, end).
func NewCollector(nodes int, start, end uint64) *Collector {
	if nodes <= 0 || end <= start {
		panic("stats: invalid collector configuration")
	}
	return &Collector{
		nodes: nodes, start: start, end: end,
		droppedByNode: make([]uint64, nodes),
	}
}

// InWindow reports whether a cycle falls inside the measurement window.
func (c *Collector) InWindow(cycle uint64) bool {
	return cycle >= c.start && cycle < c.end
}

// GeneratedFlits records n flits offered by sources at the given cycle.
func (c *Collector) GeneratedFlits(cycle uint64, n int) {
	c.totalGenerated += uint64(n)
	if c.InWindow(cycle) {
		c.generatedFlits += uint64(n)
	}
}

// EjectedFlit records one flit delivered at the given cycle.
func (c *Collector) EjectedFlit(cycle uint64) {
	c.totalEjected++
	if c.InWindow(cycle) {
		c.ejectedFlits++
	}
}

// PacketInjected records one packet entering the network at the given
// cycle. Paired with PacketDone it exposes the packets still in flight when
// the run ends (Results.InFlightPackets) — completed-only latency counting
// is biased downward exactly when the network saturates, because the
// slowest packets are the ones that have not finished yet.
func (c *Collector) PacketInjected(cycle uint64) {
	c.totalPacketsInjected++
	if c.InWindow(cycle) {
		c.packetsInjected++
	}
}

// PacketDone records a completed packet. Latency spans generation to
// delivery of the last flit (source queueing included). Only packets
// injected inside the window contribute.
func (c *Collector) PacketDone(p flit.Packet) {
	c.totalPacketsDelivered++
	if !c.InWindow(p.InjectionCycle) {
		return
	}
	lat := p.CompletionCycle - p.InjectionCycle
	c.packets++
	c.latencySum += lat
	if lat > c.latencyMax {
		c.latencyMax = lat
	}
	c.latHist.Record(lat)
	c.hopSum += uint64(p.Hops)
	c.deflectSum += uint64(p.Deflections)
	c.retransSum += uint64(p.Retransmits)
}

// BufferingEvent records one flit entering a buffer. Like the other event
// recorders, only events inside the measurement window are counted, so the
// buffering probability is the windowed ratio of buffer entries to switch
// traversals.
func (c *Collector) BufferingEvent(cycle uint64) {
	if c.InWindow(cycle) {
		c.bufferedSum++
	}
}

// RoutedEvent records one flit traversing a router (switch traversal).
func (c *Collector) RoutedEvent(cycle uint64) {
	if c.InWindow(cycle) {
		c.routedFlits++
	}
}

// DroppedFlit records one flit dropped at the given node (SCARAB, or an
// undetected-fault casualty that will be recovered by retransmission).
func (c *Collector) DroppedFlit(cycle uint64, node int) {
	c.totalDropped++
	if c.InWindow(cycle) {
		c.droppedFlits++
		c.droppedByNode[node]++
	}
}

// DeflectedFlit records one flit deflected away from every productive
// output port (bufferless designs). Whole-run total, no window: it feeds the
// deflection-storm detector and the dxbar_flits_deflected_total counter,
// both of which window it themselves (per-packet windowed deflections come
// from PacketDone).
func (c *Collector) DeflectedFlit() {
	c.totalDeflected++
}

// FairnessFlip records one fairness-counter priority flip (§II.A.2): the
// router's incoming flits won often enough, with flits waiting, that
// priority flipped to the waiters (DXbar/unified).
func (c *Collector) FairnessFlip(cycle uint64) {
	if c.InWindow(cycle) {
		c.fairnessFlips++
	}
}

// Scratch returns an empty collector with the same node count and
// measurement window, for staging the router-phase events of one shard of
// the parallel cycle engine. The window must match so the scratch applies
// the same in-window gating the real collector would.
func (c *Collector) Scratch() *Collector {
	return NewCollector(c.nodes, c.start, c.end)
}

// AbsorbRouterPhase folds the counters a shard's routers staged in s back
// into c and zeroes them. Routers touch exactly five collector entry points
// during their Step — BufferingEvent, RoutedEvent, DroppedFlit, DeflectedFlit
// and FairnessFlip (everything else is recorded by the engine's sequential
// phases) — so those are the fields a scratch can accumulate. All are
// commutative counters, which is why barrier-time absorption in any shard
// order reproduces the sequential totals bit-identically.
func (c *Collector) AbsorbRouterPhase(s *Collector) {
	c.bufferedSum += s.bufferedSum
	c.routedFlits += s.routedFlits
	c.fairnessFlips += s.fairnessFlips
	c.totalDeflected += s.totalDeflected
	s.bufferedSum = 0
	s.routedFlits = 0
	s.fairnessFlips = 0
	s.totalDeflected = 0
	// totalDropped counts out-of-window drops too, so it must be absorbed
	// even when the windowed droppedFlits below short-circuits.
	c.totalDropped += s.totalDropped
	s.totalDropped = 0
	if s.droppedFlits == 0 {
		return
	}
	c.droppedFlits += s.droppedFlits
	s.droppedFlits = 0
	for i, v := range s.droppedByNode {
		if v != 0 {
			c.droppedByNode[i] += v
			s.droppedByNode[i] = 0
		}
	}
}

// Results summarizes a run.
type Results struct {
	// OfferedLoad and AcceptedLoad are flits per node per cycle.
	OfferedLoad  float64
	AcceptedLoad float64
	// AvgLatency and MaxLatency are in cycles; AvgLatency is 0 when no
	// packet completed.
	AvgLatency float64
	MaxLatency uint64
	// P50Latency, P90Latency and P99Latency are nearest-rank latency
	// percentiles in cycles, from the fixed-bucket histogram (at most 1/32
	// relative overshoot; 0 when no packet completed).
	P50Latency uint64
	P90Latency uint64
	P99Latency uint64
	// Packets is the number of completed packets counted.
	Packets uint64
	// InFlightPackets is the number of packets injected inside the window
	// that had not completed when the run ended. A non-negligible count
	// means the latency figures are truncated: the slowest packets are
	// missing from them (saturated or fault-degraded runs).
	InFlightPackets uint64
	// LatencyHistogram is a snapshot of the in-window latency distribution
	// (nil when no packet completed). Use it for percentile queries beyond
	// the precomputed ones and for structured export.
	LatencyHistogram *Histogram
	// AvgHops is the mean per-packet total link traversals.
	AvgHops float64
	// DeflectionsPerPacket and RetransmitsPerPacket explain bufferless
	// energy inflation.
	DeflectionsPerPacket float64
	RetransmitsPerPacket float64
	// BufferingProbability is buffering events per switch traversal — the
	// paper reports ~1/6 for DXbar past saturation.
	BufferingProbability float64
	// DroppedFlits counts drop events inside the window.
	DroppedFlits uint64
	// DroppedByNode is the per-router breakdown of DroppedFlits, indexed by
	// node (nil when no flit was dropped). Feeds the drop heatmap.
	DroppedByNode []uint64
	// FairnessFlips counts in-window fairness-counter priority flips summed
	// over all routers (§II.A.2; 0 for designs without the counter).
	FairnessFlips uint64
}

// Truncate clamps the measurement window's end to cycle. Interrupted runs
// call this so per-cycle rates are normalized by the cycles actually
// simulated, not the configured window that never completed.
func (c *Collector) Truncate(cycle uint64) {
	if cycle < c.end {
		c.end = cycle
		if c.end < c.start {
			c.end = c.start
		}
	}
}

// Results computes the summary over the measurement window.
func (c *Collector) Results() Results {
	window := float64(c.end - c.start)
	if window <= 0 {
		window = 1 // run interrupted before the window opened: no rates to report
	}
	r := Results{
		OfferedLoad:   float64(c.generatedFlits) / (window * float64(c.nodes)),
		AcceptedLoad:  float64(c.ejectedFlits) / (window * float64(c.nodes)),
		MaxLatency:    c.latencyMax,
		Packets:       c.packets,
		DroppedFlits:  c.droppedFlits,
		FairnessFlips: c.fairnessFlips,
	}
	if c.droppedFlits > 0 {
		r.DroppedByNode = append([]uint64(nil), c.droppedByNode...)
	}
	if c.packets > 0 {
		r.AvgLatency = float64(c.latencySum) / float64(c.packets)
		r.AvgHops = float64(c.hopSum) / float64(c.packets)
		r.DeflectionsPerPacket = float64(c.deflectSum) / float64(c.packets)
		r.RetransmitsPerPacket = float64(c.retransSum) / float64(c.packets)
		r.P50Latency = c.latHist.Quantile(0.50)
		r.P90Latency = c.latHist.Quantile(0.90)
		r.P99Latency = c.latHist.Quantile(0.99)
		r.LatencyHistogram = c.latHist.snapshot()
	}
	if c.packetsInjected > c.packets {
		r.InFlightPackets = c.packetsInjected - c.packets
	}
	if c.routedFlits > 0 {
		r.BufferingProbability = float64(c.bufferedSum) / float64(c.routedFlits)
	}
	return r
}
