package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketIndexBoundsRoundTrip: every value lands in a bucket whose
// bounds contain it, and bucket boundaries are contiguous.
func TestBucketIndexBoundsRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, math.MaxUint64}
	for _, v := range vals {
		idx := bucketIndex(v)
		low, high := bucketBounds(idx)
		if v < low || v > high {
			t.Errorf("value %d in bucket %d with bounds [%d, %d]", v, idx, low, high)
		}
	}
	// Contiguity over the exact→log-linear seam and the first widths.
	for idx := 0; idx < 4*histSubCount; idx++ {
		_, high := bucketBounds(idx)
		low2, _ := bucketBounds(idx + 1)
		if low2 != high+1 {
			t.Fatalf("bucket %d ends at %d but bucket %d starts at %d", idx, high, idx+1, low2)
		}
	}
}

// oracle computes the nearest-rank quantile from a sorted slice.
func oracle(sorted []uint64, q float64) uint64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileAgainstSortedOracle checks every percentile the
// stats layer reports against a brute-force sorted slice: the histogram
// estimate must never be below the true quantile and must overshoot by at
// most one sub-bucket width (1/32 relative), capped at the exact max.
func TestHistogramQuantileAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(rng.Intn(500)) },
		"heavytail": func() uint64 { return uint64(math.Pow(10, rng.Float64()*4)) },
		"constant":  func() uint64 { return 42 },
		"bimodal": func() uint64 {
			if rng.Intn(10) == 0 {
				return 5000 + uint64(rng.Intn(1000))
			}
			return 20 + uint64(rng.Intn(10))
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			vals := make([]uint64, 5000)
			for i := range vals {
				vals[i] = gen()
				h.Record(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			if h.Count() != uint64(len(vals)) {
				t.Fatalf("count = %d, want %d", h.Count(), len(vals))
			}
			if h.Max() != vals[len(vals)-1] {
				t.Fatalf("max = %d, want %d", h.Max(), vals[len(vals)-1])
			}
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
				want := oracle(vals, q)
				got := h.Quantile(q)
				if got < want {
					t.Errorf("q=%.2f: histogram %d below oracle %d", q, got, want)
				}
				if limit := float64(want)*(1+1.0/histSubCount) + 1; float64(got) > limit {
					t.Errorf("q=%.2f: histogram %d overshoots oracle %d beyond one bucket (limit %.1f)",
						q, got, want, limit)
				}
			}
		})
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 || h.Buckets() != nil {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramBucketsExport(t *testing.T) {
	var h Histogram
	h.Record(3)
	h.Record(3)
	h.Record(100)
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("got %d buckets, want 2", len(bs))
	}
	if bs[0].Low != 3 || bs[0].High != 3 || bs[0].Count != 2 {
		t.Errorf("first bucket = %+v", bs[0])
	}
	if bs[1].Low > 100 || bs[1].High < 100 || bs[1].Count != 1 {
		t.Errorf("second bucket = %+v must contain 100", bs[1])
	}
	var total uint64
	for _, b := range bs {
		total += b.Count
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count())
	}
}

// TestCollectorPercentilesInResults: the collector's Results must expose
// percentiles consistent with the recorded packet latencies.
func TestCollectorPercentilesInResults(t *testing.T) {
	c := NewCollector(4, 0, 1000)
	for i := uint64(1); i <= 100; i++ {
		c.PacketDone(pkt(0, i))
	}
	r := c.Results()
	if r.P50Latency < 50 || r.P50Latency > 52 {
		t.Errorf("p50 = %d, want ~50", r.P50Latency)
	}
	if r.P99Latency < 99 || r.P99Latency > 100 {
		t.Errorf("p99 = %d, want ~99", r.P99Latency)
	}
	if r.MaxLatency != 100 || r.LatencyHistogram == nil {
		t.Errorf("max = %d, hist = %v", r.MaxLatency, r.LatencyHistogram)
	}
	if got := r.LatencyHistogram.Count(); got != 100 {
		t.Errorf("histogram count = %d, want 100", got)
	}
	// The snapshot must be detached from the live collector.
	c.PacketDone(pkt(0, 5))
	if r.LatencyHistogram.Count() != 100 {
		t.Error("Results histogram must be a snapshot, not a live view")
	}
}
