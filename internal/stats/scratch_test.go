package stats

import (
	"reflect"
	"testing"
)

// TestScratchAbsorbRouterPhase drives the four router-phase entry points
// through a scratch collector and checks absorption reproduces direct
// recording exactly, zeroes the scratch, and leaves droppedByNode untouched
// when nothing dropped.
func TestScratchAbsorbRouterPhase(t *testing.T) {
	direct := NewCollector(4, 100, 1<<40)
	master := NewCollector(4, 100, 1<<40)
	scratch := master.Scratch()

	record := func(c *Collector) {
		for i := 0; i < 3; i++ {
			c.BufferingEvent(200)
			c.RoutedEvent(200)
			c.RoutedEvent(200)
		}
		c.FairnessFlip(200)
		c.DroppedFlit(200, 1)
		c.DroppedFlit(200, 3)
		c.DroppedFlit(200, 3)
		// Out-of-window events must not count (cycle 50 < start 100).
		c.BufferingEvent(50)
		c.DroppedFlit(50, 0)
	}
	record(direct)
	record(scratch)
	master.AbsorbRouterPhase(scratch)

	if direct.bufferedSum != master.bufferedSum || direct.routedFlits != master.routedFlits ||
		direct.fairnessFlips != master.fairnessFlips || direct.droppedFlits != master.droppedFlits {
		t.Errorf("absorbed counters differ from direct: direct {%d %d %d %d}, master {%d %d %d %d}",
			direct.bufferedSum, direct.routedFlits, direct.fairnessFlips, direct.droppedFlits,
			master.bufferedSum, master.routedFlits, master.fairnessFlips, master.droppedFlits)
	}
	if !reflect.DeepEqual(direct.droppedByNode, master.droppedByNode) {
		t.Errorf("droppedByNode differs: direct %v, master %v", direct.droppedByNode, master.droppedByNode)
	}

	// The scratch must be fully zeroed so the next cycle reuses it cleanly.
	if scratch.bufferedSum != 0 || scratch.routedFlits != 0 || scratch.fairnessFlips != 0 || scratch.droppedFlits != 0 {
		t.Error("scratch counters not zeroed after absorb")
	}
	for i, v := range scratch.droppedByNode {
		if v != 0 {
			t.Errorf("scratch.droppedByNode[%d] = %d after absorb, want 0", i, v)
		}
	}

	// A second, drop-free absorption round on the same scratch.
	scratch.BufferingEvent(300)
	master.AbsorbRouterPhase(scratch)
	if master.bufferedSum != direct.bufferedSum+1 {
		t.Errorf("second absorb: bufferedSum = %d, want %d", master.bufferedSum, direct.bufferedSum+1)
	}
}

// TestScratchInheritsWindow: the scratch applies the same measurement-window
// gating as its parent, which is what makes barrier-time absorption
// equivalent to direct recording.
func TestScratchInheritsWindow(t *testing.T) {
	master := NewCollector(2, 500, 1000)
	scratch := master.Scratch()
	scratch.RoutedEvent(499)  // before window
	scratch.RoutedEvent(500)  // in window
	scratch.RoutedEvent(1000) // at end (exclusive or inclusive — must match parent)
	probe := NewCollector(2, 500, 1000)
	probe.RoutedEvent(499)
	probe.RoutedEvent(500)
	probe.RoutedEvent(1000)
	want := probe.routedFlits
	if scratch.routedFlits != want {
		t.Errorf("scratch windowing differs from parent: got %d in-window events, want %d", scratch.routedFlits, want)
	}
}
