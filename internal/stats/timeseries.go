package stats

// Time-series sampling: periodic snapshots of network state taken from the
// engine's cycle loop. Averaged-over-the-window metrics hide transients —
// saturation onset, the queue growth behind a fault's BIST detection window,
// drain behaviour after a burst — so the collector can keep a ring of
// per-interval samples alongside its scalar counters. The ring is
// preallocated by EnableTimeSeries and recording a sample never allocates;
// when the ring fills it overwrites the oldest sample, keeping the most
// recent window of the run.

// Probe carries the engine-side gauges read at each sample point. The
// collector owns the flow counters (injected/ejected deltas); the engine
// supplies the instantaneous state it alone can see.
type Probe struct {
	// InFlightFlits is the number of live flits anywhere in the network —
	// queues, latches, links, buffers and the retransmit wheel (the flit
	// pool's outstanding count).
	InFlightFlits int
	// QueuedFlits is the total injection-queue backlog across all nodes.
	QueuedFlits int
	// BufferedFlits is the number of downstream buffer slots held by credit
	// flow control (consumed credits, including those riding the return
	// pipeline). Always 0 for bufferless designs.
	BufferedFlits int
}

// Sample is one periodic snapshot.
type Sample struct {
	// Cycle is the cycle the sample was taken at.
	Cycle uint64
	// InjectedFlits and EjectedFlits are flow deltas since the previous
	// sample (unwindowed, so warmup transients are visible too).
	InjectedFlits uint64
	EjectedFlits  uint64
	// InFlightFlits, QueuedFlits and BufferedFlits are the Probe gauges.
	InFlightFlits int
	QueuedFlits   int
	BufferedFlits int
}

// timeSeries is the preallocated sample ring.
type timeSeries struct {
	interval uint64
	next     uint64 // next cycle to sample at
	ring     []Sample
	head     int // index of the oldest sample
	size     int
	// lastGen/lastEject are the cumulative counter values at the previous
	// sample, for delta computation.
	lastGen, lastEject uint64
}

// EnableTimeSeries switches on periodic sampling every interval cycles with
// a ring of the given capacity (older samples are overwritten once full).
// Must be called before the run starts.
func (c *Collector) EnableTimeSeries(interval uint64, capacity int) {
	if interval == 0 || capacity <= 0 {
		panic("stats: invalid time-series configuration")
	}
	c.ts = &timeSeries{
		interval: interval,
		next:     interval - 1, // sample at the end of each interval
		ring:     make([]Sample, capacity),
	}
}

// SampleInterval returns the sampling interval (0 when sampling is off).
func (c *Collector) SampleInterval() uint64 {
	if c.ts == nil {
		return 0
	}
	return c.ts.interval
}

// SampleDue reports whether the engine should record a sample this cycle.
// It is called once per cycle and is a nil check plus a compare.
func (c *Collector) SampleDue(cycle uint64) bool {
	return c.ts != nil && cycle >= c.ts.next
}

// RecordSample stores one snapshot. The engine calls it at the end of a
// cycle for which SampleDue returned true; the collector fills in the flow
// deltas from its cumulative counters. Never allocates.
func (c *Collector) RecordSample(cycle uint64, p Probe) {
	ts := c.ts
	if ts == nil {
		return
	}
	s := Sample{
		Cycle:         cycle,
		InjectedFlits: c.totalGenerated - ts.lastGen,
		EjectedFlits:  c.totalEjected - ts.lastEject,
		InFlightFlits: p.InFlightFlits,
		QueuedFlits:   p.QueuedFlits,
		BufferedFlits: p.BufferedFlits,
	}
	ts.lastGen = c.totalGenerated
	ts.lastEject = c.totalEjected
	if ts.size < len(ts.ring) {
		ts.ring[(ts.head+ts.size)%len(ts.ring)] = s
		ts.size++
	} else {
		ts.ring[ts.head] = s
		ts.head = (ts.head + 1) % len(ts.ring)
	}
	ts.next = cycle + ts.interval
}

// Samples returns the recorded snapshots in chronological order (nil when
// sampling was never enabled). It copies out of the ring and is meant for
// end-of-run export.
func (c *Collector) Samples() []Sample {
	if c.ts == nil {
		return nil
	}
	ts := c.ts
	out := make([]Sample, ts.size)
	for i := 0; i < ts.size; i++ {
		out[i] = ts.ring[(ts.head+i)%len(ts.ring)]
	}
	return out
}
