package stats

import (
	"fmt"
	"strings"

	"dxbar/internal/flit"
)

// Link-utilization tracking (optional): the engine reports every link
// traversal with its upstream node and output port; utilization is the
// fraction of measurement-window cycles each link carried a flit. Router
// designs differ visibly here — deflection spreads load onto non-minimal
// links, hotspots glow around their home node — and the heatmap example
// renders it.

// EnableLinkUtilization switches on per-link counters for a width×height
// mesh. The dimensions matter beyond the node count: edge and corner nodes
// have fewer outgoing links, and NodeUtilization averages only over the
// links that exist.
func (c *Collector) EnableLinkUtilization(width, height int) {
	if width < 1 || height < 1 {
		panic("stats: invalid mesh dimensions")
	}
	c.utilWidth, c.utilHeight = width, height
	c.linkUse = make([][]uint64, width*height)
	for i := range c.linkUse {
		c.linkUse[i] = make([]uint64, flit.NumLinkPorts)
	}
}

// LinkEvent records one flit launched from node n through output port p.
func (c *Collector) LinkEvent(n int, p flit.Port, cycle uint64) {
	if c.linkUse == nil || !c.InWindow(cycle) {
		return
	}
	c.linkUse[n][p]++
}

// LinkUtilization returns the per-link busy fraction over the measurement
// window (nil when not enabled).
func (c *Collector) LinkUtilization() [][]float64 {
	if c.linkUse == nil {
		return nil
	}
	window := float64(c.end - c.start)
	out := make([][]float64, len(c.linkUse))
	for n := range c.linkUse {
		out[n] = make([]float64, flit.NumLinkPorts)
		for p := range c.linkUse[n] {
			out[n][p] = float64(c.linkUse[n][p]) / window
		}
	}
	return out
}

// NodeUtilization returns each node's mean outgoing-link utilization,
// averaged over the links the node actually has: a corner node has two
// outgoing links, an edge node three, an interior node four. Dividing by
// flit.NumLinkPorts unconditionally would systematically understate edge
// and corner utilization in heatmaps.
func (c *Collector) NodeUtilization() []float64 {
	lu := c.LinkUtilization()
	if lu == nil {
		return nil
	}
	out := make([]float64, len(lu))
	for n := range lu {
		sum := 0.0
		for _, u := range lu[n] {
			sum += u
		}
		out[n] = sum / float64(c.outgoingLinks(n))
	}
	return out
}

// outgoingLinks returns the number of cardinal links node n has in the
// utilWidth×utilHeight mesh.
func (c *Collector) outgoingLinks(n int) int {
	x, y := n%c.utilWidth, n/c.utilWidth
	cnt := 4
	if x == 0 {
		cnt--
	}
	if x == c.utilWidth-1 {
		cnt--
	}
	if y == 0 {
		cnt--
	}
	if y == c.utilHeight-1 {
		cnt--
	}
	return cnt
}

// Heatmap renders the per-node utilization of a width×height mesh as an
// ASCII grid, one shaded cell per node (space = idle … '█' = saturated).
func Heatmap(util []float64, width, height int) string {
	return HeatmapLabeled(util, width, height, "max link utilization: %.3f flits/cycle")
}

// HeatmapLabeled is Heatmap with a caller-chosen header line; headerFormat
// must contain one %.3f (or compatible) verb for the maximum value. Event
// heatmaps use it to label counts instead of utilization.
func HeatmapLabeled(util []float64, width, height int, headerFormat string) string {
	shades := []rune(" .:-=+*#%@█")
	var max float64
	for _, u := range util {
		if u > max {
			max = u
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, headerFormat+"\n", max)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			u := util[y*width+x]
			idx := 0
			if max > 0 {
				idx = int(u / max * float64(len(shades)-1))
			}
			b.WriteRune(shades[idx])
			b.WriteRune(shades[idx]) // double width for aspect ratio
		}
		b.WriteByte('\n')
	}
	return b.String()
}
