package stats

import (
	"strings"
	"testing"

	"dxbar/internal/flit"
)

func TestLinkUtilizationDisabledByDefault(t *testing.T) {
	c := NewCollector(4, 0, 100)
	c.LinkEvent(0, flit.East, 10) // must be a no-op
	if c.LinkUtilization() != nil || c.NodeUtilization() != nil {
		t.Error("utilization must be nil when not enabled")
	}
}

func TestLinkUtilizationCountsWindowedEvents(t *testing.T) {
	c := NewCollector(4, 10, 110)
	c.EnableLinkUtilization(2, 2)
	c.LinkEvent(1, flit.East, 5)  // before window
	c.LinkEvent(1, flit.East, 50) // counted
	c.LinkEvent(1, flit.East, 51) // counted
	c.LinkEvent(2, flit.South, 60)
	c.LinkEvent(1, flit.East, 200) // after window
	lu := c.LinkUtilization()
	if got := lu[1][flit.East]; got != 0.02 {
		t.Errorf("link (1,E) utilization = %v, want 0.02", got)
	}
	if got := lu[2][flit.South]; got != 0.01 {
		t.Errorf("link (2,S) utilization = %v, want 0.01", got)
	}
	if lu[0][flit.North] != 0 {
		t.Error("untouched link must be zero")
	}
}

func TestNodeUtilizationAverages(t *testing.T) {
	c := NewCollector(4, 0, 100)
	c.EnableLinkUtilization(2, 2)
	for i := 0; i < 100; i++ {
		c.LinkEvent(0, flit.East, uint64(i))
	}
	nu := c.NodeUtilization()
	// Node 0 is a 2×2 corner with two real links (E, S); one busy every
	// cycle means a mean of 0.5 — not 0.25, which would count the two
	// links the node does not have.
	if nu[0] != 0.5 {
		t.Errorf("node 0 utilization = %v, want 0.5", nu[0])
	}
	if nu[1] != 0 {
		t.Errorf("node 1 utilization = %v, want 0", nu[1])
	}
}

// TestNodeUtilizationEdgeVsCenter drives every real link of a corner node
// (2 links), an edge node (3) and the center node (4) of a 3×3 mesh at the
// same per-link rate. The fixed NodeUtilization must report the same mean
// for all three; the old flit.NumLinkPorts divisor understated the corner
// by 2× and the edge by 4/3.
func TestNodeUtilizationEdgeVsCenter(t *testing.T) {
	c := NewCollector(9, 0, 100)
	c.EnableLinkUtilization(3, 3)
	links := map[int][]flit.Port{
		0: {flit.East, flit.South},                        // corner
		1: {flit.East, flit.South, flit.West},             // edge
		4: {flit.North, flit.East, flit.South, flit.West}, // center
	}
	for n, ports := range links {
		for _, p := range ports {
			for i := 0; i < 50; i++ { // 50% per-link utilization
				c.LinkEvent(n, p, uint64(i))
			}
		}
	}
	nu := c.NodeUtilization()
	for n := range links {
		if nu[n] != 0.5 {
			t.Errorf("node %d utilization = %v, want 0.5", n, nu[n])
		}
	}
	for _, n := range []int{2, 3, 5, 6, 7, 8} {
		if nu[n] != 0 {
			t.Errorf("idle node %d utilization = %v, want 0", n, nu[n])
		}
	}
}

func TestHeatmapShape(t *testing.T) {
	util := make([]float64, 16)
	util[5] = 1.0
	util[10] = 0.5
	hm := Heatmap(util, 4, 4)
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("heatmap has %d lines, want 5", len(lines))
	}
	for _, l := range lines[1:] {
		if len([]rune(l)) != 8 { // double-width cells
			t.Errorf("row %q has wrong width", l)
		}
	}
	if !strings.Contains(lines[0], "1.000") {
		t.Errorf("header must report the max, got %q", lines[0])
	}
	// The saturated cell renders the darkest shade.
	if !strings.ContainsRune(hm, '█') {
		t.Error("saturated cell must use the darkest shade")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	hm := Heatmap(make([]float64, 4), 2, 2)
	if !strings.Contains(hm, "max link utilization: 0.000") {
		t.Error("zero map must render without dividing by zero")
	}
}
