package stats

import (
	"strings"
	"testing"

	"dxbar/internal/flit"
)

func TestLinkUtilizationDisabledByDefault(t *testing.T) {
	c := NewCollector(4, 0, 100)
	c.LinkEvent(0, flit.East, 10) // must be a no-op
	if c.LinkUtilization() != nil || c.NodeUtilization() != nil {
		t.Error("utilization must be nil when not enabled")
	}
}

func TestLinkUtilizationCountsWindowedEvents(t *testing.T) {
	c := NewCollector(4, 10, 110)
	c.EnableLinkUtilization(4)
	c.LinkEvent(1, flit.East, 5)  // before window
	c.LinkEvent(1, flit.East, 50) // counted
	c.LinkEvent(1, flit.East, 51) // counted
	c.LinkEvent(2, flit.South, 60)
	c.LinkEvent(1, flit.East, 200) // after window
	lu := c.LinkUtilization()
	if got := lu[1][flit.East]; got != 0.02 {
		t.Errorf("link (1,E) utilization = %v, want 0.02", got)
	}
	if got := lu[2][flit.South]; got != 0.01 {
		t.Errorf("link (2,S) utilization = %v, want 0.01", got)
	}
	if lu[0][flit.North] != 0 {
		t.Error("untouched link must be zero")
	}
}

func TestNodeUtilizationAverages(t *testing.T) {
	c := NewCollector(2, 0, 100)
	c.EnableLinkUtilization(2)
	for i := 0; i < 100; i++ {
		c.LinkEvent(0, flit.East, uint64(i))
	}
	nu := c.NodeUtilization()
	// One of four ports busy every cycle: mean 0.25.
	if nu[0] != 0.25 {
		t.Errorf("node 0 utilization = %v, want 0.25", nu[0])
	}
	if nu[1] != 0 {
		t.Errorf("node 1 utilization = %v, want 0", nu[1])
	}
}

func TestHeatmapShape(t *testing.T) {
	util := make([]float64, 16)
	util[5] = 1.0
	util[10] = 0.5
	hm := Heatmap(util, 4, 4)
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("heatmap has %d lines, want 5", len(lines))
	}
	for _, l := range lines[1:] {
		if len([]rune(l)) != 8 { // double-width cells
			t.Errorf("row %q has wrong width", l)
		}
	}
	if !strings.Contains(lines[0], "1.000") {
		t.Errorf("header must report the max, got %q", lines[0])
	}
	// The saturated cell renders the darkest shade.
	if !strings.ContainsRune(hm, '█') {
		t.Error("saturated cell must use the darkest shade")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	hm := Heatmap(make([]float64, 4), 2, 2)
	if !strings.Contains(hm, "max link utilization: 0.000") {
		t.Error("zero map must render without dividing by zero")
	}
}
