package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dxbar/internal/flit"
)

func TestWindowFiltering(t *testing.T) {
	c := NewCollector(64, 100, 200)
	if c.InWindow(99) || !c.InWindow(100) || !c.InWindow(199) || c.InWindow(200) {
		t.Error("window boundaries wrong")
	}
	c.GeneratedFlits(50, 10) // before window: ignored
	c.GeneratedFlits(150, 5)
	c.EjectedFlit(150)
	c.EjectedFlit(250) // after window: ignored
	r := c.Results()
	if got := r.OfferedLoad; math.Abs(got-5.0/(100*64)) > 1e-12 {
		t.Errorf("offered = %v", got)
	}
	if got := r.AcceptedLoad; math.Abs(got-1.0/(100*64)) > 1e-12 {
		t.Errorf("accepted = %v", got)
	}
}

func TestPacketLatency(t *testing.T) {
	c := NewCollector(64, 0, 1000)
	c.PacketDone(flit.Packet{InjectionCycle: 10, CompletionCycle: 30, Hops: 5})
	c.PacketDone(flit.Packet{InjectionCycle: 20, CompletionCycle: 80, Hops: 7, Deflections: 2, Retransmits: 1})
	r := c.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d", r.Packets)
	}
	if r.AvgLatency != 40 {
		t.Errorf("avg latency = %v, want 40", r.AvgLatency)
	}
	if r.MaxLatency != 60 {
		t.Errorf("max latency = %v, want 60", r.MaxLatency)
	}
	if r.AvgHops != 6 || r.DeflectionsPerPacket != 1 || r.RetransmitsPerPacket != 0.5 {
		t.Errorf("per-packet stats wrong: %+v", r)
	}
}

func TestPacketOutsideWindowIgnored(t *testing.T) {
	c := NewCollector(64, 100, 200)
	c.PacketDone(flit.Packet{InjectionCycle: 50, CompletionCycle: 150})
	c.PacketDone(flit.Packet{InjectionCycle: 250, CompletionCycle: 300})
	if r := c.Results(); r.Packets != 0 || r.AvgLatency != 0 {
		t.Errorf("out-of-window packets must be ignored: %+v", r)
	}
}

func TestBufferingProbability(t *testing.T) {
	c := NewCollector(64, 0, 100)
	for i := 0; i < 12; i++ {
		c.RoutedEvent(10)
	}
	c.BufferingEvent(10)
	c.BufferingEvent(10)
	r := c.Results()
	if math.Abs(r.BufferingProbability-2.0/12.0) > 1e-12 {
		t.Errorf("buffering probability = %v, want 1/6", r.BufferingProbability)
	}
}

func TestDroppedFlits(t *testing.T) {
	c := NewCollector(64, 0, 100)
	c.DroppedFlit(5, 7)
	c.DroppedFlit(500, 7) // outside window
	r := c.Results()
	if r.DroppedFlits != 1 {
		t.Errorf("dropped = %d, want 1", r.DroppedFlits)
	}
	if len(r.DroppedByNode) != 64 || r.DroppedByNode[7] != 1 {
		t.Errorf("DroppedByNode = %v, want node 7 -> 1", r.DroppedByNode)
	}
}

func TestDroppedByNodeNilWhenNoDrops(t *testing.T) {
	c := NewCollector(16, 0, 100)
	if r := c.Results(); r.DroppedByNode != nil {
		t.Errorf("DroppedByNode = %v, want nil when nothing dropped", r.DroppedByNode)
	}
}

func TestFairnessFlips(t *testing.T) {
	c := NewCollector(16, 0, 100)
	c.FairnessFlip(5)
	c.FairnessFlip(50)
	c.FairnessFlip(500) // outside window
	if r := c.Results(); r.FairnessFlips != 2 {
		t.Errorf("fairness flips = %d, want 2", r.FairnessFlips)
	}
}

func TestEmptyCollectorSafe(t *testing.T) {
	r := NewCollector(64, 0, 100).Results()
	if r.AvgLatency != 0 || r.BufferingProbability != 0 || r.Packets != 0 {
		t.Error("empty collector must produce zeros")
	}
}

func TestNewCollectorValidation(t *testing.T) {
	for _, bad := range [][3]uint64{{0, 0, 10}, {64, 10, 10}, {64, 20, 10}} {
		func() {
			defer func() { recover() }()
			NewCollector(int(bad[0]), bad[1], bad[2])
			t.Errorf("NewCollector(%v) must panic", bad)
		}()
	}
}

// pkt builds a completed packet with the given injection cycle and latency.
func pkt(injection, latency uint64) flit.Packet {
	return flit.Packet{InjectionCycle: injection, CompletionCycle: injection + latency}
}

// TestEventRecorderWindowing: all three microarchitectural event recorders
// (BufferingEvent, RoutedEvent, DroppedFlit) count only inside the
// measurement window — the BufferingEvent doc used to claim "any cycle".
func TestEventRecorderWindowing(t *testing.T) {
	c := NewCollector(64, 100, 200)
	for _, cycle := range []uint64{99, 100, 150, 199, 200} { // 3 in-window
		c.BufferingEvent(cycle)
		c.RoutedEvent(cycle)
		c.DroppedFlit(cycle, 0)
	}
	if c.bufferedSum != 3 {
		t.Errorf("buffered = %d, want 3 (window [100,200))", c.bufferedSum)
	}
	if c.routedFlits != 3 {
		t.Errorf("routed = %d, want 3", c.routedFlits)
	}
	r := c.Results()
	if r.DroppedFlits != 3 {
		t.Errorf("dropped = %d, want 3", r.DroppedFlits)
	}
	if r.BufferingProbability != 1.0 {
		t.Errorf("buffering probability = %v, want 1 (3 bufferings / 3 traversals)", r.BufferingProbability)
	}
}

// TestInFlightPackets: packets injected in-window that never complete must
// be reported, not silently dropped from the latency statistics.
func TestInFlightPackets(t *testing.T) {
	c := NewCollector(64, 100, 200)
	c.PacketInjected(50)  // before window: not tracked
	c.PacketInjected(120) // completes below
	c.PacketInjected(130) // still in flight at run end
	c.PacketInjected(140) // still in flight at run end
	c.PacketDone(pkt(120, 30))
	r := c.Results()
	if r.Packets != 1 {
		t.Fatalf("packets = %d, want 1", r.Packets)
	}
	if r.InFlightPackets != 2 {
		t.Errorf("in-flight = %d, want 2", r.InFlightPackets)
	}
}

// TestInFlightPacketsNeverUnderflows: a collector fed completions without
// injection events (unit-test style usage) must report zero, not wrap.
func TestInFlightPacketsNeverUnderflows(t *testing.T) {
	c := NewCollector(64, 0, 100)
	c.PacketDone(pkt(10, 5))
	if r := c.Results(); r.InFlightPackets != 0 {
		t.Errorf("in-flight = %d, want 0", r.InFlightPackets)
	}
}

// Property: average latency is always between min and max of contributed
// latencies, and AcceptedLoad <= OfferedLoad has no meaning here (retries),
// but both are non-negative and finite.
func TestResultsSanityProperty(t *testing.T) {
	f := func(lats []uint16) bool {
		c := NewCollector(4, 0, 1000)
		var min, max uint64 = math.MaxUint64, 0
		for _, l := range lats {
			lat := uint64(l)
			c.PacketDone(flit.Packet{InjectionCycle: 0, CompletionCycle: lat})
			if lat < min {
				min = lat
			}
			if lat > max {
				max = lat
			}
		}
		r := c.Results()
		if len(lats) == 0 {
			return r.AvgLatency == 0
		}
		return r.AvgLatency >= float64(min) && r.AvgLatency <= float64(max) && r.MaxLatency == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Truncate re-normalizes the per-cycle rates by the cycles actually
// simulated — the interrupted-run path, where the configured window never
// completed.
func TestCollectorTruncate(t *testing.T) {
	c := NewCollector(4, 100, 1100) // window of 1000 cycles, 4 nodes
	c.GeneratedFlits(200, 400)
	for i := 0; i < 200; i++ {
		c.EjectedFlit(300)
	}
	full := c.Results()
	if full.OfferedLoad != 0.1 || full.AcceptedLoad != 0.05 {
		t.Fatalf("pre-truncate rates offered=%v accepted=%v, want 0.1/0.05", full.OfferedLoad, full.AcceptedLoad)
	}

	c.Truncate(600) // interrupted halfway: 500 cycles actually measured
	half := c.Results()
	if half.OfferedLoad != 0.2 || half.AcceptedLoad != 0.1 {
		t.Errorf("truncated rates offered=%v accepted=%v, want 0.2/0.1", half.OfferedLoad, half.AcceptedLoad)
	}

	// Truncating past the current end is a no-op; truncating before the
	// window opened clamps to a zero-width window with defined (zero-ish,
	// finite) rates rather than a division blow-up.
	c.Truncate(5000)
	if got := c.Results(); got.OfferedLoad != 0.2 {
		t.Errorf("late Truncate changed rates: %v", got.OfferedLoad)
	}
	c.Truncate(50)
	got := c.Results()
	if math.IsInf(got.OfferedLoad, 0) || math.IsNaN(got.OfferedLoad) {
		t.Errorf("zero-width window produced non-finite rate %v", got.OfferedLoad)
	}
}
