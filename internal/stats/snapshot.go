package stats

import (
	"fmt"

	"dxbar/internal/snapshot"
)

// saveHistogram serializes the latency histogram sparsely: only non-zero
// buckets, as strictly ascending (index, count) pairs.
func saveHistogram(w *snapshot.Writer, h *Histogram) {
	nz := 0
	for _, c := range h.counts {
		if c != 0 {
			nz++
		}
	}
	w.U32(uint32(nz))
	for i, c := range h.counts {
		if c != 0 {
			w.U32(uint32(i))
			w.U64(c)
		}
	}
	w.U64(h.total)
	w.U64(h.max)
}

func loadHistogram(r *snapshot.Reader, h *Histogram) error {
	n := r.Len(histBuckets)
	if err := r.Err(); err != nil {
		return err
	}
	h.counts = [histBuckets]uint64{}
	prev := -1
	var sum uint64
	for i := 0; i < n; i++ {
		idx := int(r.U32())
		c := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if idx <= prev || idx >= histBuckets || c == 0 {
			return fmt.Errorf("stats: snapshot histogram buckets malformed")
		}
		prev = idx
		h.counts[idx] = c
		sum += c
	}
	h.total = r.U64()
	h.max = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if h.total != sum {
		return fmt.Errorf("stats: snapshot histogram total %d != bucket sum %d", h.total, sum)
	}
	return nil
}

// SaveState serializes the collector: the measurement window, every counter,
// the per-node drop array, the latency histogram, and — when enabled — the
// time-series ring (normalized oldest-first) and the link-utilization matrix
// (sparse, non-zero cells only).
func (c *Collector) SaveState(w *snapshot.Writer) {
	w.Tag("STAT")
	w.U64(c.start)
	w.U64(c.end)
	w.U64(c.generatedFlits)
	w.U64(c.ejectedFlits)
	w.U64(c.totalGenerated)
	w.U64(c.totalEjected)
	w.U64(c.totalDropped)
	w.U64(c.totalDeflected)
	w.U64(c.totalPacketsInjected)
	w.U64(c.totalPacketsDelivered)
	w.U64(c.packets)
	w.U64(c.packetsInjected)
	w.U64(c.latencySum)
	w.U64(c.latencyMax)
	w.U64(c.hopSum)
	w.U64(c.deflectSum)
	w.U64(c.retransSum)
	w.U64(c.bufferedSum)
	w.U64(c.routedFlits)
	w.U64(c.droppedFlits)
	w.U64(c.fairnessFlips)
	w.U32(uint32(len(c.droppedByNode)))
	for _, v := range c.droppedByNode {
		w.U64(v)
	}
	saveHistogram(w, &c.latHist)

	w.Bool(c.ts != nil)
	if ts := c.ts; ts != nil {
		w.U64(ts.interval)
		w.U64(ts.next)
		w.U64(ts.lastGen)
		w.U64(ts.lastEject)
		w.U32(uint32(ts.size))
		for i := 0; i < ts.size; i++ {
			s := &ts.ring[(ts.head+i)%len(ts.ring)]
			w.U64(s.Cycle)
			w.U64(s.InjectedFlits)
			w.U64(s.EjectedFlits)
			w.Int(s.InFlightFlits)
			w.Int(s.QueuedFlits)
			w.Int(s.BufferedFlits)
		}
	}

	w.Bool(c.linkUse != nil)
	if c.linkUse != nil {
		nz := 0
		for _, row := range c.linkUse {
			for _, v := range row {
				if v != 0 {
					nz++
				}
			}
		}
		w.U32(uint32(nz))
		for n, row := range c.linkUse {
			for p, v := range row {
				if v != 0 {
					w.U32(uint32(n))
					w.U32(uint32(p))
					w.U64(v)
				}
			}
		}
	}
}

// LoadState restores a collector built with the same configuration (node
// count, window, sampling and utilization options). Structural mismatches —
// a snapshot with a time-series against a collector without one — are
// configuration drift and surface as errors.
func (c *Collector) LoadState(r *snapshot.Reader) error {
	r.Expect("STAT")
	c.start = r.U64()
	c.end = r.U64()
	c.generatedFlits = r.U64()
	c.ejectedFlits = r.U64()
	c.totalGenerated = r.U64()
	c.totalEjected = r.U64()
	c.totalDropped = r.U64()
	c.totalDeflected = r.U64()
	c.totalPacketsInjected = r.U64()
	c.totalPacketsDelivered = r.U64()
	c.packets = r.U64()
	c.packetsInjected = r.U64()
	c.latencySum = r.U64()
	c.latencyMax = r.U64()
	c.hopSum = r.U64()
	c.deflectSum = r.U64()
	c.retransSum = r.U64()
	c.bufferedSum = r.U64()
	c.routedFlits = r.U64()
	c.droppedFlits = r.U64()
	c.fairnessFlips = r.U64()
	n := r.Len(len(c.droppedByNode))
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(c.droppedByNode) {
		return fmt.Errorf("stats: snapshot node count %d != configured %d", n, len(c.droppedByNode))
	}
	for i := 0; i < n; i++ {
		c.droppedByNode[i] = r.U64()
	}
	if err := loadHistogram(r, &c.latHist); err != nil {
		return err
	}

	hasTS := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasTS != (c.ts != nil) {
		return fmt.Errorf("stats: snapshot time-series presence mismatch")
	}
	if ts := c.ts; hasTS {
		ts.interval = r.U64()
		ts.next = r.U64()
		ts.lastGen = r.U64()
		ts.lastEject = r.U64()
		size := r.Len(len(ts.ring))
		if err := r.Err(); err != nil {
			return err
		}
		ts.head = 0
		ts.size = size
		for i := 0; i < size; i++ {
			s := &ts.ring[i]
			s.Cycle = r.U64()
			s.InjectedFlits = r.U64()
			s.EjectedFlits = r.U64()
			s.InFlightFlits = r.Int()
			s.QueuedFlits = r.Int()
			s.BufferedFlits = r.Int()
		}
	}

	hasUtil := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasUtil != (c.linkUse != nil) {
		return fmt.Errorf("stats: snapshot link-utilization presence mismatch")
	}
	if hasUtil {
		for _, row := range c.linkUse {
			for p := range row {
				row[p] = 0
			}
		}
		ports := 0
		if len(c.linkUse) > 0 {
			ports = len(c.linkUse[0])
		}
		nz := r.Len(len(c.linkUse) * ports)
		if err := r.Err(); err != nil {
			return err
		}
		prev := -1
		for i := 0; i < nz; i++ {
			node := int(r.U32())
			port := int(r.U32())
			v := r.U64()
			if err := r.Err(); err != nil {
				return err
			}
			if node >= len(c.linkUse) || port >= ports || v == 0 {
				return fmt.Errorf("stats: snapshot link-utilization cell out of range")
			}
			cell := node*ports + port
			if cell <= prev {
				return fmt.Errorf("stats: snapshot link-utilization cells not ascending")
			}
			prev = cell
			c.linkUse[node][port] = v
		}
	}
	return r.Err()
}
