package stats

import (
	"math"
	"math/bits"
)

// Latency histogram: a fixed-size log-linear bucket array in the style of
// HdrHistogram. Values below histSubCount land in exact unit buckets; above
// that, every power of two is split into histSubCount linear sub-buckets, so
// any recorded value is bucketed with relative error at most 1/histSubCount
// (3.125%). The bucket array is a fixed field of the Collector — recording a
// latency is two increments and never allocates, which is what lets the
// cycle loop keep its zero-allocation steady state with histograms enabled.

const (
	// histSubBits sets the per-power-of-two resolution (32 sub-buckets).
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histBuckets covers every uint64 value: histSubCount exact unit
	// buckets plus histSubCount sub-buckets for each of the remaining
	// 64-histSubBits leading-bit positions.
	histBuckets = histSubCount * (65 - histSubBits)
)

// Histogram is a fixed-bucket latency distribution. The zero value is an
// empty histogram ready for use.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	max    uint64
}

// bucketIndex maps a value to its bucket. Values < histSubCount are exact;
// larger values keep their top histSubBits+1 significant bits.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	k := bits.Len64(v) // k >= histSubBits+1
	sub := (v >> uint(k-histSubBits-1)) & (histSubCount - 1)
	return histSubCount*(k-histSubBits) + int(sub)
}

// bucketBounds returns the inclusive value range covered by bucket idx.
func bucketBounds(idx int) (low, high uint64) {
	if idx < histSubCount {
		return uint64(idx), uint64(idx)
	}
	block := idx >> histSubBits // leading-bit position minus histSubBits
	sub := uint64(idx & (histSubCount - 1))
	width := uint64(1) << uint(block-1)
	low = (histSubCount + sub) * width
	return low, low + width - 1
}

// Record adds one value to the distribution.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketIndex(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns the nearest-rank q-quantile (q in [0, 1]): the upper edge
// of the bucket holding the value of rank ceil(q·count), capped at the exact
// observed maximum. The estimate is never below the true quantile and
// overshoots it by at most 1/32 relative. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var cum uint64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			_, high := bucketBounds(i)
			if high > h.max {
				high = h.max
			}
			return high
		}
	}
	return h.max // unreachable: cum reaches total
}

// Bucket is one non-empty histogram bin, for structured export.
type Bucket struct {
	// Low and High are the inclusive value bounds of the bin.
	Low, High uint64
	// Count is the number of values recorded in the bin.
	Count uint64
}

// Buckets returns the non-empty bins in ascending value order. It allocates
// and is meant for end-of-run export, not the cycle loop.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		low, high := bucketBounds(i)
		out = append(out, Bucket{Low: low, High: high, Count: n})
	}
	return out
}

// RebuildHistogram reconstructs a histogram from its exported Buckets() form
// plus the recorded maximum — the exact inverse of Buckets() for any
// histogram, since each bin's Low maps back to its bucket index. The run
// ledger uses it to round-trip latency distributions through JSON: a
// rebuilt histogram is deep-equal to the snapshot it was exported from.
func RebuildHistogram(bs []Bucket, max uint64) *Histogram {
	h := &Histogram{}
	for _, b := range bs {
		h.counts[bucketIndex(b.Low)] += b.Count
		h.total += b.Count
	}
	h.max = max
	return h
}

// snapshot returns a heap copy of the histogram (Results detaches the
// distribution from the live collector).
func (h *Histogram) snapshot() *Histogram {
	c := *h
	return &c
}
