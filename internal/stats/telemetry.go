package stats

import "dxbar/internal/metrics"

// Live-telemetry bridge: the whole-run totals the engine publishes as
// monotonic counters every cycle, and the latency-histogram export it
// publishes at the metrics interval. All of these are plain field reads or a
// fixed-size copy — nothing here allocates, so the cycle loop keeps its
// zero-allocation steady state with telemetry enabled.

// TotalGenerated returns flits offered by sources across the whole run.
func (c *Collector) TotalGenerated() uint64 { return c.totalGenerated }

// TotalEjected returns flits delivered across the whole run.
func (c *Collector) TotalEjected() uint64 { return c.totalEjected }

// TotalDropped returns flits dropped across the whole run.
func (c *Collector) TotalDropped() uint64 { return c.totalDropped }

// TotalDeflected returns flits deflected across the whole run.
func (c *Collector) TotalDeflected() uint64 { return c.totalDeflected }

// TotalPacketsInjected returns packets injected across the whole run.
func (c *Collector) TotalPacketsInjected() uint64 { return c.totalPacketsInjected }

// TotalPacketsDelivered returns packets completed across the whole run.
func (c *Collector) TotalPacketsDelivered() uint64 { return c.totalPacketsDelivered }

// PublishLatency copies the in-window latency distribution into h
// (registered with LatencyBucketUppers bounds). The histogram's fixed bucket
// array maps 1:1 onto the metrics bounds, so this is a straight copy under
// h's mutex — no allocation, no iteration over packets.
func (c *Collector) PublishLatency(h *metrics.Histogram) {
	h.Update(c.latHist.counts[:], c.latHist.total, float64(c.latencySum))
}

// LatencyBucketUppers returns the inclusive upper bound of every latency
// histogram bucket, ascending — the bounds a metrics.Histogram must be
// registered with for PublishLatency to align. Allocates; call once at
// telemetry setup.
func LatencyBucketUppers() []float64 {
	out := make([]float64, histBuckets)
	for i := range out {
		_, high := bucketBounds(i)
		out[i] = float64(high)
	}
	return out
}
