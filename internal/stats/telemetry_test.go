package stats

import (
	"sort"
	"testing"

	"dxbar/internal/flit"
	"dxbar/internal/metrics"
)

func TestWholeRunTotals(t *testing.T) {
	c := NewCollector(4, 100, 200)
	// Out-of-window activity must still reach the whole-run totals.
	c.GeneratedFlits(5, 3)
	c.EjectedFlit(5)
	c.DroppedFlit(5, 1)
	c.PacketInjected(5)
	c.PacketDone(flit.Packet{InjectionCycle: 5, CompletionCycle: 9})
	// In-window activity reaches both.
	c.GeneratedFlits(150, 2)
	c.EjectedFlit(150)
	c.DroppedFlit(150, 0)

	if got := c.TotalGenerated(); got != 5 {
		t.Errorf("TotalGenerated = %d, want 5", got)
	}
	if got := c.TotalEjected(); got != 2 {
		t.Errorf("TotalEjected = %d, want 2", got)
	}
	if got := c.TotalDropped(); got != 2 {
		t.Errorf("TotalDropped = %d, want 2", got)
	}
	if got := c.TotalPacketsInjected(); got != 1 {
		t.Errorf("TotalPacketsInjected = %d, want 1", got)
	}
	if got := c.TotalPacketsDelivered(); got != 1 {
		t.Errorf("TotalPacketsDelivered = %d, want 1", got)
	}
	if r := c.Results(); r.DroppedFlits != 1 {
		t.Errorf("windowed DroppedFlits = %d, want 1 (window gating broken)", r.DroppedFlits)
	}
}

func TestAbsorbRouterPhaseTotalDropped(t *testing.T) {
	c := NewCollector(4, 100, 200)
	s := c.Scratch()
	// A drop outside the window leaves the windowed counter zero — the exact
	// case the absorb early-return used to skip entirely.
	s.DroppedFlit(5, 2)
	c.AbsorbRouterPhase(s)
	if got := c.TotalDropped(); got != 1 {
		t.Fatalf("TotalDropped after absorb = %d, want 1", got)
	}
	if s.totalDropped != 0 {
		t.Fatal("scratch totalDropped not zeroed by absorb")
	}
}

func TestLatencyBucketUppers(t *testing.T) {
	uppers := LatencyBucketUppers()
	if len(uppers) != histBuckets {
		t.Fatalf("len = %d, want %d", len(uppers), histBuckets)
	}
	if !sort.Float64sAreSorted(uppers) {
		t.Fatal("bucket uppers not ascending")
	}
	if uppers[0] != 0 || uppers[histSubCount-1] != histSubCount-1 {
		t.Fatal("unit buckets must be exact")
	}
}

func TestPublishLatency(t *testing.T) {
	c := NewCollector(4, 0, 1000)
	c.PacketDone(flit.Packet{InjectionCycle: 10, CompletionCycle: 30}) // lat 20
	c.PacketDone(flit.Packet{InjectionCycle: 10, CompletionCycle: 15}) // lat 5

	h := metrics.NewHistogram(LatencyBucketUppers())
	c.PublishLatency(h)

	allocs := testing.AllocsPerRun(100, func() { c.PublishLatency(h) })
	if allocs != 0 {
		t.Errorf("PublishLatency allocates %.1f per call, want 0", allocs)
	}
}
