package router

import (
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// Scarab is the SCARAB router: bufferless, minimally-adaptive, single-cycle.
// An incoming flit that finds no free productive output port is dropped; a
// NACK travels back to the source on a dedicated circuit-switched network
// (one cycle per hop) and triggers a retransmission. Ejection conflicts
// also drop (the losing flit cannot wait).
type Scarab struct {
	env *sim.Env

	arrivals []*flit.Flit // per-Step scratch, reused across cycles
}

// NewScarab builds a SCARAB router. SCARAB's routing is minimal adaptive
// without turn restrictions (bufferless networks cannot deadlock), so no
// routing.Algorithm parameter exists.
func NewScarab(env *sim.Env) *Scarab {
	return &Scarab{env: env, arrivals: make([]*flit.Flit, 0, flit.NumPorts)}
}

// minimalPorts returns the (up to two) minimal directions toward dst,
// larger-offset dimension first — SCARAB's fully adaptive minimal set.
func minimalPorts(env *sim.Env, at, dst int) routing.PortList {
	m := env.Mesh()
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	var xPort, yPort flit.Port = flit.Invalid, flit.Invalid
	if dx > ax {
		xPort = flit.East
	} else if dx < ax {
		xPort = flit.West
	}
	if dy > ay {
		yPort = flit.South
	} else if dy < ay {
		yPort = flit.North
	}
	xd, yd := abs(dx-ax), abs(dy-ay)
	var ports routing.PortList
	if xd >= yd {
		if xPort != flit.Invalid {
			ports.Add(xPort)
		}
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
	} else {
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
		if xPort != flit.Invalid {
			ports.Add(xPort)
		}
	}
	return ports
}

// Step implements sim.Router.
func (s *Scarab) Step(cycle uint64) {
	env := s.env
	mesh := env.Mesh()
	node := env.Node

	arrivals := s.arrivals[:0]
	links := 0
	for p := flit.North; p <= flit.West; p++ {
		if mesh.HasPort(node, p) {
			links++
		}
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			arrivals = append(arrivals, f)
		}
	}
	flit.SortByAge(arrivals)

	for _, f := range arrivals {
		if f.Dst == node {
			if env.OutputFree(flit.Local) {
				s.send(flit.Local, f, cycle)
			} else {
				s.drop(f, cycle)
			}
			continue
		}
		if p := s.freeProductive(f); p != flit.Invalid {
			s.send(p, f, cycle)
		} else {
			s.drop(f, cycle)
		}
	}

	// Injection: permitted when an input slot was free; the new flit is
	// simply not injected (it waits in the queue) if its productive ports
	// are taken — the source never drops.
	if len(arrivals) < links {
		if f := env.InjectionHead(); f != nil {
			if f.Dst == node {
				// Patterns never map a node to itself; defensive.
				if env.OutputFree(flit.Local) {
					env.ConsumeInjection(cycle)
					s.send(flit.Local, f, cycle)
				}
				return
			}
			if p := s.freeProductive(f); p != flit.Invalid {
				env.ConsumeInjection(cycle)
				s.send(p, f, cycle)
			}
		}
	}
}

func (s *Scarab) freeProductive(f *flit.Flit) flit.Port {
	ports := minimalPorts(s.env, s.env.Node, f.Dst)
	for i := 0; i < ports.Len(); i++ {
		if p := ports.At(i); s.env.OutputFree(p) {
			return p
		}
	}
	return flit.Invalid
}

func (s *Scarab) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := s.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		next := env.Mesh().Neighbor(env.Node, p)
		ports := minimalPorts(env, next, f.Dst)
		if ports.Len() == 0 {
			f.Route = flit.Local
		} else {
			f.Route = ports.At(0)
		}
	}
	env.Send(p, f)
}

// drop discards f, charges the NACK network for the return trip to the
// source, and schedules the retransmission: the NACK needs one cycle per
// hop back, then the source re-injects.
func (s *Scarab) drop(f *flit.Flit, cycle uint64) {
	env := s.env
	dist := env.Mesh().Distance(env.Node, f.Src)
	env.Stats().DroppedFlit(cycle, env.Node)
	env.Events().Record(cycle, events.Drop, env.Node, flit.Invalid, f.PacketID, f.ID, int32(dist))
	env.Meter().NackHops(dist)
	env.ScheduleRetransmit(f, uint64(dist)+1)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
