package router

import (
	"dxbar/internal/core"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// Scarab is the SCARAB router: bufferless, minimally-adaptive, single-cycle.
// An incoming flit that finds no free productive output port is dropped; a
// NACK travels back to the source on a dedicated circuit-switched network
// (one cycle per hop) and triggers a retransmission. Ejection conflicts
// also drop (the losing flit cannot wait).
type Scarab struct {
	env *sim.Env

	// table is the precomputed minimal-adaptive routing (shared network-wide
	// when built by the factory); links caches the node's link count;
	// reference selects the branchy oracle path over the bit-parallel one.
	table     *routing.Table
	links     int
	reference bool

	arrivals []*flit.Flit   // per-Step scratch, reused across cycles
	cands    core.PortState // fast-path SoA gather, reused across cycles
}

// NewScarab builds a SCARAB router. SCARAB's routing is minimal adaptive
// without turn restrictions (bufferless networks cannot deadlock), so no
// routing.Algorithm parameter exists.
func NewScarab(env *sim.Env) *Scarab {
	return NewScarabTable(env, nil)
}

// NewScarabTable is NewScarab with a shared precomputed minimal-adaptive
// routing table (nil builds a private one — fine for single routers and
// small test meshes; network factories share one table across all routers).
func NewScarabTable(env *sim.Env, table *routing.Table) *Scarab {
	mesh := env.Mesh()
	if table == nil {
		table = routing.NewTable(routing.MinimalAdaptive{}, mesh, mesh.Nodes())
	}
	return &Scarab{
		env:      env,
		table:    table,
		links:    mesh.LinkCount(env.Node),
		arrivals: make([]*flit.Flit, 0, flit.NumPorts),
	}
}

// SetReferenceArbitration switches the router to its branchy reference path
// (the oracle the bit-parallel fast path is proven bit-identical to). Call
// before the first Step.
func (s *Scarab) SetReferenceArbitration(on bool) { s.reference = on }

// minimalPorts returns the (up to two) minimal directions toward dst,
// larger-offset dimension first — SCARAB's fully adaptive minimal set.
func minimalPorts(env *sim.Env, at, dst int) routing.PortList {
	m := env.Mesh()
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	var xPort, yPort flit.Port = flit.Invalid, flit.Invalid
	if dx > ax {
		xPort = flit.East
	} else if dx < ax {
		xPort = flit.West
	}
	if dy > ay {
		yPort = flit.South
	} else if dy < ay {
		yPort = flit.North
	}
	xd, yd := abs(dx-ax), abs(dy-ay)
	var ports routing.PortList
	if xd >= yd {
		if xPort != flit.Invalid {
			ports.Add(xPort)
		}
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
	} else {
		if yPort != flit.Invalid {
			ports.Add(yPort)
		}
		if xPort != flit.Invalid {
			ports.Add(xPort)
		}
	}
	return ports
}

// Step implements sim.Router.
func (s *Scarab) Step(cycle uint64) {
	if !s.reference {
		s.stepFast(cycle)
		return
	}
	env := s.env
	mesh := env.Mesh()
	node := env.Node

	arrivals := s.arrivals[:0]
	links := 0
	for p := flit.North; p <= flit.West; p++ {
		if mesh.HasPort(node, p) {
			links++
		}
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			arrivals = append(arrivals, f)
		}
	}
	env.InMask = 0
	flit.SortByAge(arrivals)

	for _, f := range arrivals {
		if int(f.Dst) == node {
			if env.OutputFree(flit.Local) {
				s.send(flit.Local, f, cycle)
			} else {
				s.drop(f, cycle)
			}
			continue
		}
		if p := s.freeProductive(f); p != flit.Invalid {
			s.send(p, f, cycle)
		} else {
			s.drop(f, cycle)
		}
	}

	// Injection: permitted when an input slot was free; the new flit is
	// simply not injected (it waits in the queue) if its productive ports
	// are taken — the source never drops.
	if len(arrivals) < links {
		if f := env.InjectionHead(); f != nil {
			if int(f.Dst) == node {
				// Patterns never map a node to itself; defensive.
				if env.OutputFree(flit.Local) {
					env.ConsumeInjection(cycle)
					s.send(flit.Local, f, cycle)
				}
				return
			}
			if p := s.freeProductive(f); p != flit.Invalid {
				env.ConsumeInjection(cycle)
				s.send(p, f, cycle)
			}
		}
	}
}

// stepFast is the bit-parallel path: arrivals gathered into an SoA
// PortState, output availability one bitmask, routing queries table loads.
// Bit-identical to the reference Step (the equivalence suite drives both).
func (s *Scarab) stepFast(cycle uint64) {
	env := s.env
	node := env.Node

	ps := &s.cands
	ps.Reset()
	for p := flit.North; p <= flit.West; p++ {
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			ps.Add(f, p)
		}
	}
	env.InMask = 0
	ps.SortAge()

	free := env.FreeOutMask()
	for i := 0; i < ps.N; i++ {
		k := ps.Order[i]
		f := ps.Flits[k]
		dst := int(ps.Dst[k])
		out := flit.Invalid
		if dst == node {
			if free&(1<<uint(flit.Local)) != 0 {
				out = flit.Local
			}
		} else {
			out = s.freeProductiveFast(dst, free)
		}
		if out == flit.Invalid {
			s.drop(f, cycle)
			continue
		}
		free &^= 1 << uint(out)
		s.sendFast(out, f, cycle)
	}

	// Injection: permitted when an input slot was free (arrivals counted
	// before injection, as in the reference path).
	if ps.N < s.links {
		if f := env.InjectionHead(); f != nil {
			if int(f.Dst) == node {
				if free&(1<<uint(flit.Local)) != 0 {
					env.ConsumeInjection(cycle)
					s.sendFast(flit.Local, f, cycle)
				}
				return
			}
			if p := s.freeProductiveFast(int(f.Dst), free); p != flit.Invalid {
				env.ConsumeInjection(cycle)
				s.sendFast(p, f, cycle)
			}
		}
	}
}

// freeProductiveFast is freeProductive over the routing table and the
// free-output bitmask.
func (s *Scarab) freeProductiveFast(dst int, free uint8) flit.Port {
	ports := s.table.ProductiveAt(s.env.Node, dst)
	for i := 0; i < ports.Len(); i++ {
		if p := ports.At(i); free&(1<<uint(p)) != 0 {
			return p
		}
	}
	return flit.Invalid
}

// sendFast is send with the table look-ahead.
func (s *Scarab) sendFast(p flit.Port, f *flit.Flit, cycle uint64) {
	env := s.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		f.Route = s.table.RequestAt(env.Neighbor(p), int(f.Dst))
	}
	env.Send(p, f)
}

func (s *Scarab) freeProductive(f *flit.Flit) flit.Port {
	ports := minimalPorts(s.env, s.env.Node, int(f.Dst))
	for i := 0; i < ports.Len(); i++ {
		if p := ports.At(i); s.env.OutputFree(p) {
			return p
		}
	}
	return flit.Invalid
}

func (s *Scarab) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := s.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		next := env.Mesh().Neighbor(env.Node, p)
		ports := minimalPorts(env, next, int(f.Dst))
		if ports.Len() == 0 {
			f.Route = flit.Local
		} else {
			f.Route = ports.At(0)
		}
	}
	env.Send(p, f)
}

// drop discards f, charges the NACK network for the return trip to the
// source, and schedules the retransmission: the NACK needs one cycle per
// hop back, then the source re-injects.
func (s *Scarab) drop(f *flit.Flit, cycle uint64) {
	env := s.env
	dist := env.Mesh().Distance(env.Node, int(f.Src))
	env.Stats().DroppedFlit(cycle, env.Node)
	env.Events().Record(cycle, events.Drop, env.Node, flit.Invalid, f.PacketID, f.ID, int32(dist))
	env.Meter().NackHops(dist)
	env.ScheduleRetransmit(f, uint64(dist)+1)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
