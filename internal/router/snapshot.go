package router

import (
	"fmt"

	"dxbar/internal/flit"
	"dxbar/internal/snapshot"
)

// saveEntryQueue serializes one buffered-baseline FIFO oldest-first,
// including each entry's absolute eligibility cycle (the pipeline-delay
// timestamp a restored run must honour exactly).
func saveEntryQueue(w *snapshot.Writer, q *entryQueue) {
	w.U32(uint32(q.count))
	for i := 0; i < q.count; i++ {
		e := &q.entries[(q.headIdx+i)%fifoDepth]
		flit.Save(w, e.f)
		w.U64(e.ready)
	}
}

func loadEntryQueue(r *snapshot.Reader, q *entryQueue, pool *flit.Pool, nodes int) error {
	n := r.Len(fifoDepth)
	if err := r.Err(); err != nil {
		return err
	}
	*q = entryQueue{}
	for i := 0; i < n; i++ {
		f := pool.Get()
		if err := flit.Load(r, f, nodes); err != nil {
			return err
		}
		ready := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		q.push(bufEntry{f: f, ready: ready})
	}
	return nil
}

// SaveState serializes the buffered baseline's persistent state: the input
// FIFO contents with eligibility timestamps, the split-input steering
// pointers, and both allocators' rotation pointers (the branchy reference and
// its bit-parallel twin both persist so a restored run is bit-identical under
// either Config.ReferenceArbitration setting).
func (b *Buffered) SaveState(w *snapshot.Writer) {
	w.Tag("BUFD")
	for p := range b.fifos {
		w.U32(uint32(len(b.fifos[p])))
		for _, q := range b.fifos[p] {
			saveEntryQueue(w, q)
		}
		w.Int(b.nextFIFO[p])
	}
	b.alloc.SaveState(w)
	b.fast.SaveState(w)
}

// LoadState restores the buffered baseline.
func (b *Buffered) LoadState(r *snapshot.Reader, pool *flit.Pool, nodes int) error {
	r.Expect("BUFD")
	for p := range b.fifos {
		n := r.Len(len(b.fifos[p]))
		if err := r.Err(); err != nil {
			return err
		}
		if n != len(b.fifos[p]) {
			return fmt.Errorf("router: snapshot FIFO bank width %d != configured %d", n, len(b.fifos[p]))
		}
		for _, q := range b.fifos[p] {
			if err := loadEntryQueue(r, q, pool, nodes); err != nil {
				return err
			}
		}
		nf := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if nf < 0 || nf >= len(b.fifos[p]) {
			return fmt.Errorf("router: snapshot FIFO steering pointer %d out of range", nf)
		}
		b.nextFIFO[p] = nf
	}
	if err := b.alloc.LoadState(r); err != nil {
		return err
	}
	return b.fast.LoadState(r)
}

// SaveState serializes the AFC router's persistent state (the shared mode
// controller is engine-level shared state, serialized once, not per router).
func (a *AFC) SaveState(w *snapshot.Writer) {
	w.Tag("AFCR")
	for _, q := range a.fifos {
		saveEntryQueue(w, q)
	}
	a.alloc.SaveState(w)
	a.fast.SaveState(w)
}

// LoadState restores the AFC router.
func (a *AFC) LoadState(r *snapshot.Reader, pool *flit.Pool, nodes int) error {
	r.Expect("AFCR")
	for _, q := range a.fifos {
		if err := loadEntryQueue(r, q, pool, nodes); err != nil {
			return err
		}
	}
	if err := a.alloc.LoadState(r); err != nil {
		return err
	}
	return a.fast.LoadState(r)
}

// SaveState serializes the network-wide AFC mode controller: the mode state
// machine, the live flit census, and the decision window.
func (c *AFCController) SaveState(w *snapshot.Writer) {
	w.Tag("AFCC")
	w.Int(c.mode)
	w.Bool(c.draining)
	w.Int(c.next)
	w.I64(c.netFlits.Load())
	w.U64(c.windowStart)
	w.I64(c.windowDeflections.Load())
	w.I64(c.windowInjections.Load())
	w.U64(c.lastTick)
	w.Bool(c.started)
	w.U64(c.ModeSwitches)
}

// LoadState restores the AFC controller.
func (c *AFCController) LoadState(r *snapshot.Reader) error {
	r.Expect("AFCC")
	mode := r.Int()
	draining := r.Bool()
	next := r.Int()
	netFlits := r.I64()
	windowStart := r.U64()
	windowDeflections := r.I64()
	windowInjections := r.I64()
	lastTick := r.U64()
	started := r.Bool()
	modeSwitches := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if mode != afcModeBufferless && mode != afcModeBuffered {
		return fmt.Errorf("router: snapshot AFC mode %d invalid", mode)
	}
	if next != afcModeBufferless && next != afcModeBuffered {
		return fmt.Errorf("router: snapshot AFC next mode %d invalid", next)
	}
	if netFlits < 0 {
		return fmt.Errorf("router: snapshot AFC flit census %d negative", netFlits)
	}
	c.mode = mode
	c.draining = draining
	c.next = next
	c.netFlits.Store(netFlits)
	c.windowStart = windowStart
	c.windowDeflections.Store(windowDeflections)
	c.windowInjections.Store(windowInjections)
	c.lastTick = lastTick
	c.started = started
	c.ModeSwitches = modeSwitches
	return nil
}
