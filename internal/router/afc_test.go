package router

import (
	"testing"

	"dxbar/internal/routing"
	"dxbar/internal/sim"
	"dxbar/internal/traffic"
)

func afcFactory(algo routing.Algorithm) (sim.RouterFactory, *AFCController) {
	ctrl := NewAFCController(16)
	return func(env *sim.Env) sim.Router { return NewAFC(env, algo, ctrl) }, ctrl
}

func TestAFCStartsBufferless(t *testing.T) {
	factory, ctrl := afcFactory(routing.DOR{})
	h := newHarness(t, factory, 4, spec(1, 0, 15, 0))
	h.eng.Run(20)
	if ctrl.Buffered() {
		t.Error("AFC must start in bufferless mode")
	}
	r := h.coll.Results()
	if r.Packets != 1 {
		t.Fatalf("packets = %d", r.Packets)
	}
	// Bufferless single-cycle switching: 6 hops × 2 cycles.
	if r.AvgLatency != 12 {
		t.Errorf("latency = %v, want 12", r.AvgLatency)
	}
	if c := h.meter.Snapshot(); c.BufferWrites != 0 {
		t.Errorf("bufferless mode must not touch buffers, got %d writes", c.BufferWrites)
	}
}

func TestAFCSwitchesToBufferedUnderPressure(t *testing.T) {
	// Saturating conflicting streams force deflections past the threshold.
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	// Every node fires at a far node through the center, two packets per
	// cycle — far past the deflection threshold.
	targets := [][2]int{{0, 15}, {15, 0}, {3, 12}, {12, 3}, {1, 14}, {14, 1},
		{2, 13}, {13, 2}, {4, 11}, {11, 4}, {7, 8}, {8, 7}}
	for c := uint64(0); c < 600; c++ {
		for _, sd := range targets {
			specs = append(specs, spec(id, sd[0], sd[1], c))
			id++
		}
	}
	factory, ctrl := afcFactory(routing.DOR{})
	h := newHarness(t, factory, 4, specs...)
	h.eng.Run(800)
	if !ctrl.Buffered() {
		t.Error("sustained contention must switch AFC to buffered mode")
	}
	if ctrl.ModeSwitches == 0 {
		t.Error("mode switch counter must advance")
	}
	if c := h.meter.Snapshot(); c.BufferWrites == 0 {
		t.Error("buffered mode must use the buffers")
	}
}

func TestAFCReturnsToBufferlessWhenQuiet(t *testing.T) {
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	for c := uint64(0); c < 400; c++ {
		for _, sd := range [][2]int{{1, 13}, {4, 7}, {2, 14}, {8, 11}, {13, 1}, {7, 4}} {
			specs = append(specs, spec(id, sd[0], sd[1], c))
			id++
		}
	}
	factory, ctrl := afcFactory(routing.DOR{})
	h := newHarness(t, factory, 4, specs...)
	h.eng.Run(400)
	if !ctrl.Buffered() {
		t.Skip("contention did not trip the threshold in this scenario")
	}
	// Traffic stops at cycle 400; the network drains and the controller
	// must flip back to bufferless.
	h.eng.Run(2000)
	if ctrl.Buffered() {
		t.Error("idle network must return to bufferless mode")
	}
	if got := h.coll.Results().Packets; got != uint64(len(specs)) {
		t.Errorf("packets = %d, want %d (lost during transitions?)", got, len(specs))
	}
}

func TestAFCDrainBarrierLosesNothing(t *testing.T) {
	// Bursts separated by idle periods force repeated transitions; every
	// packet must still arrive exactly once (the conservation suite covers
	// random traffic; this exercises transitions specifically).
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	for burst := uint64(0); burst < 4; burst++ {
		start := burst * 500
		for c := start; c < start+150; c++ {
			for _, sd := range [][2]int{{1, 13}, {4, 7}, {13, 1}, {7, 4}, {2, 14}, {14, 2}} {
				specs = append(specs, spec(id, sd[0], sd[1], c))
				id++
			}
		}
	}
	factory, ctrl := afcFactory(routing.DOR{})
	h := newHarness(t, factory, 4, specs...)
	h.eng.Run(4000)
	if got := h.coll.Results().Packets; got != uint64(len(specs)) {
		t.Errorf("packets = %d, want %d", got, len(specs))
	}
	t.Logf("mode switches across bursts: %d", ctrl.ModeSwitches)
}

func TestAFCControllerHysteresis(t *testing.T) {
	c := NewAFCController(64)
	if c.Buffered() || c.Draining() || !c.InjectionAllowed() {
		t.Fatal("fresh controller state wrong")
	}
	// Quiet window: no switch.
	c.tick(0)
	c.tick(AFCWindow + 1)
	if c.Draining() {
		t.Fatal("quiet network must not start a transition")
	}
	// Hot window: deflections above threshold start a drain.
	hot := AFCOnDeflectionRate * 64 * AFCWindow
	c.windowDeflections.Store(int64(hot) + 1)
	c.tick(2*AFCWindow + 2)
	if !c.Draining() || !c.Buffered() == false {
		// Draining toward buffered but not yet flipped.
		if c.Buffered() {
			t.Fatal("mode must not flip before the drain completes")
		}
	}
	if c.InjectionAllowed() {
		t.Fatal("injection must pause during the drain")
	}
	// Drain completes when the network is empty.
	c.netFlits.Store(0)
	c.tick(2*AFCWindow + 3)
	if !c.Buffered() || c.Draining() {
		t.Fatal("drain completion must flip the mode")
	}
	if c.ModeSwitches != 1 {
		t.Fatalf("switches = %d, want 1", c.ModeSwitches)
	}
}
