package router

import (
	"sync/atomic"

	"dxbar/internal/arbiter"
	"dxbar/internal/bitarb"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// AFC implements a simplified variant of Adaptive Flow Control (Jafri et
// al., MICRO'10 — the paper's reference [9]), the closest prior hybrid:
// the network switches between bufferless deflection operation (low load:
// buffers bypassed, minimum energy) and buffered operation (high load:
// conflicts absorbed in the input FIFOs). The paper positions DXbar against
// AFC — DXbar gets both behaviours simultaneously from its dual fabrics
// with no mode state — so AFC is provided as an extension design for
// head-to-head comparison (design name "afc").
//
// Simplification (documented in DESIGN.md): the published AFC switches
// modes *per router*, with a neighbour-coordination protocol that keeps the
// mixed-mode network deadlock-free. Mixing deflection with blocking buffers
// naively is unsound — a deflected flit parked in a Y-channel buffer whose
// head waits on an X channel breaks XY routing's acyclic channel-dependency
// order. This implementation therefore switches modes *network-wide* with a
// drain barrier: when the controller decides to change mode it first stops
// injection and lets the network empty (pure deflection always drains by
// the age-priority argument; pure buffered XY/WF always drains by the turn
// model), then flips every router at once. Each steady mode is individually
// deadlock-free, and the barrier ensures no flit ever observes both. The
// drain cost is AFC's coarser adaptation penalty, which is the paper's
// qualitative point about per-router mode complexity.
type AFC struct {
	env  *sim.Env
	algo routing.Algorithm
	ctrl *AFCController

	fifos [flit.NumLinkPorts]*entryQueue
	// alloc is the branchy reference allocator, fast its bit-parallel twin
	// (grant-for-grant identical; reference selects which one runs).
	alloc     *arbiter.Separable
	fast      *bitarb.Separable
	reference bool

	// table is the precomputed form of algo (shared network-wide when the
	// factory passes a *routing.Table); links caches the node's link count.
	table *routing.Table
	links int

	// Per-Step scratch, reused across cycles.
	arrivals []*flit.Flit
	req      [flit.NumPorts]uint64
}

// AFC controller states.
const (
	afcModeBufferless = iota
	afcModeBuffered
)

// AFC mode-policy constants.
const (
	// AFCWindow is the observation window in cycles.
	AFCWindow = 64
	// AFCOnDeflectionRate switches to buffered mode when per-node
	// deflections per cycle exceed this rate within a window.
	AFCOnDeflectionRate = 0.08
	// AFCOffInjectionRate returns to bufferless mode when the per-node
	// injection rate falls below this (hysteresis against thrashing).
	AFCOffInjectionRate = 0.12
)

// AFCController is the shared network-wide mode state. Build exactly one
// per network and hand it to every router's NewAFC.
//
// The counters routers bump during their Step (netFlits, window counters)
// are atomics so the sharded engine may step AFC routers on concurrent
// workers; atomic addition is commutative, so their end-of-phase values —
// the only values the policy ever reads — are bit-identical to sequential
// stepping. The mode state itself (mode/draining/next) is only mutated by
// Tick, which the engine runs once per cycle before the router phase, so
// routers read a stable mode all phase.
type AFCController struct {
	nodes int

	mode     int
	draining bool
	next     int

	netFlits atomic.Int64 // flits inside routers/links (not source queues)

	windowStart       uint64
	windowDeflections atomic.Int64
	windowInjections  atomic.Int64

	lastTick uint64
	started  bool

	// ModeSwitches counts completed transitions (diagnostics).
	ModeSwitches uint64
}

// NewAFCController returns a controller for a network of the given size,
// starting in bufferless mode (AFC's low-power default).
func NewAFCController(nodes int) *AFCController {
	return &AFCController{nodes: nodes, mode: afcModeBufferless, next: afcModeBufferless}
}

// Buffered reports whether the network is currently in buffered mode.
func (c *AFCController) Buffered() bool { return c.mode == afcModeBuffered }

// Draining reports whether a mode transition is in progress.
func (c *AFCController) Draining() bool { return c.draining }

// InjectionAllowed reports whether sources may inject this cycle.
func (c *AFCController) InjectionAllowed() bool { return !c.draining }

// Tick runs the mode policy for the cycle. The engine calls it once per
// cycle (PreCycle hook) before any router steps; the call is idempotent per
// cycle, so the fallback call at the top of Step — which keeps standalone
// sequential use working without the hook — is a read-only no-op when the
// engine already ticked.
func (c *AFCController) Tick(cycle uint64) { c.tick(cycle) }

// tick runs the mode policy once per cycle (repeat calls within a cycle
// return without writing, so concurrently-stepping routers only race on the
// started/lastTick reads — and only when nothing is writing them).
func (c *AFCController) tick(cycle uint64) {
	if c.started && cycle == c.lastTick {
		return
	}
	c.started = true
	c.lastTick = cycle

	if c.draining {
		if c.netFlits.Load() == 0 {
			c.mode = c.next
			c.draining = false
			c.ModeSwitches++
			c.windowStart = cycle
			c.windowDeflections.Store(0)
			c.windowInjections.Store(0)
		}
		return
	}
	if cycle-c.windowStart < AFCWindow {
		return
	}
	deflRate := float64(c.windowDeflections.Load()) / float64(AFCWindow) / float64(c.nodes)
	injRate := float64(c.windowInjections.Load()) / float64(AFCWindow) / float64(c.nodes)
	switch {
	case c.mode == afcModeBufferless && deflRate > AFCOnDeflectionRate:
		c.next = afcModeBuffered
		c.draining = true
	case c.mode == afcModeBuffered && injRate < AFCOffInjectionRate:
		c.next = afcModeBufferless
		c.draining = true
	}
	c.windowStart = cycle
	c.windowDeflections.Store(0)
	c.windowInjections.Store(0)
}

// NewAFC builds one AFC router sharing the given controller. The engine
// must be configured with BufferDepth 4 (credits are live in both modes; in
// bufferless mode every arrival is consumed in its arrival cycle, so the
// credit loop never throttles deflection).
func NewAFC(env *sim.Env, algo routing.Algorithm, ctrl *AFCController) *AFC {
	mesh := env.Mesh()
	a := &AFC{
		env:      env,
		algo:     algo,
		ctrl:     ctrl,
		alloc:    arbiter.NewSeparable(flit.NumPorts, flit.NumPorts),
		fast:     bitarb.NewSeparable(flit.NumPorts, flit.NumPorts),
		table:    routing.NewTable(algo, mesh, mesh.Nodes()),
		links:    mesh.LinkCount(env.Node),
		arrivals: make([]*flit.Flit, 0, flit.NumPorts),
	}
	for p := range a.fifos {
		a.fifos[p] = &entryQueue{}
	}
	return a
}

// SetReferenceArbitration switches the router to the branchy reference
// allocator (the oracle the bit-parallel one is proven grant-for-grant
// identical to). Call before the first Step.
func (a *AFC) SetReferenceArbitration(on bool) { a.reference = on }

// Controller exposes the shared controller (diagnostics and tests).
func (a *AFC) Controller() *AFCController { return a.ctrl }

// Occupancy returns buffered flits across the input FIFOs.
func (a *AFC) Occupancy() int {
	total := 0
	for _, q := range a.fifos {
		total += q.len()
	}
	return total
}

// Step implements sim.Router.
func (a *AFC) Step(cycle uint64) {
	a.ctrl.tick(cycle)
	if a.ctrl.Buffered() || a.Occupancy() > 0 {
		// Buffered mode — and the tail of a buffered→bufferless drain,
		// where leftover buffered flits still leave through the allocator.
		a.stepBuffered(cycle)
		return
	}
	a.stepBufferless(cycle)
}

// stepBufferless is Flit-Bless switching with AFC accounting.
func (a *AFC) stepBufferless(cycle uint64) {
	env := a.env

	arrivals := a.arrivals[:0]
	for p := flit.North; p <= flit.West; p++ {
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			env.ReturnCredit(p) // consumed this cycle, slot never used
			arrivals = append(arrivals, f)
		}
	}
	env.InMask = 0

	var injectee *flit.Flit
	if len(arrivals) < a.links && a.ctrl.InjectionAllowed() {
		if f := env.InjectionHead(); f != nil {
			arrivals = append(arrivals, f)
			injectee = f
		}
	}

	flit.SortByAge(arrivals)
	free := env.FreeOutMask()
	for _, f := range arrivals {
		out := a.deflectionAssign(f, free, cycle)
		if out == flit.Invalid {
			panic("router: afc bufferless mode failed to assign an output")
		}
		if f == injectee {
			env.ConsumeInjection(cycle)
			a.ctrl.netFlits.Add(1)
			a.ctrl.windowInjections.Add(1)
		}
		if out == flit.Local {
			a.ctrl.netFlits.Add(-1)
		}
		free &^= 1 << uint(out)
		a.send(out, f, cycle)
	}
}

// deflectionAssign picks the Flit-Bless-style output for f from the
// free-output bitmask (never Invalid for a legal candidate count, by the
// port-counting argument).
func (a *AFC) deflectionAssign(f *flit.Flit, free uint8, cycle uint64) flit.Port {
	env := a.env
	node := env.Node
	if int(f.Dst) == node && free&(1<<uint(flit.Local)) != 0 {
		return flit.Local
	}
	order := a.table.DeflectionAt(node, int(f.Dst))
	prodLen := a.table.ProductiveLenAt(node, int(f.Dst))
	for i := 0; i < order.Len(); i++ {
		p := order.At(i)
		if free&(1<<uint(p)) != 0 {
			if int(f.Dst) == node || i >= prodLen {
				f.Deflections++
				a.ctrl.windowDeflections.Add(1)
				env.Stats().DeflectedFlit()
				env.Events().Record(cycle, events.Deflect, node, p, f.PacketID, f.ID, int32(f.Deflections))
			}
			return p
		}
	}
	return flit.Invalid
}

// stepBuffered is the generic buffered baseline with AFC accounting.
func (a *AFC) stepBuffered(cycle uint64) {
	env := a.env

	for p := flit.North; p <= flit.West; p++ {
		f := env.In[p]
		if f == nil {
			continue
		}
		env.In[p] = nil
		env.InMask &^= 1 << uint(p)
		a.fifos[p].push(bufEntry{f: f, ready: cycle + 1})
		f.Buffered++
		env.Meter().BufferWrite()
		env.Stats().BufferingEvent(cycle)
		env.Events().Record(cycle, events.Buffered, env.Node, p, f.PacketID, f.ID, int32(a.fifos[p].len()))
	}

	// Request matrix: one output-mask word per input. Sendability is one
	// bitmask for the whole round — nothing launches before allocation, so
	// it equals a CanSend call per probe.
	for i := range a.req {
		a.req[i] = 0
	}
	sendable := uint64(env.SendableMask())
	heads := [flit.NumPorts]*flit.Flit{}

	desired := func(f *flit.Flit) routing.PortList {
		if int(f.Dst) == env.Node {
			return routing.Ports(flit.Local)
		}
		return a.table.ProductiveAt(env.Node, int(f.Dst))
	}
	request := func(i int, f *flit.Flit) {
		ports := desired(f)
		for k := 0; k < ports.Len(); k++ {
			if bit := uint64(1) << uint(ports.At(k)); sendable&bit != 0 {
				a.req[i] |= bit
			}
		}
	}
	for p := flit.North; p <= flit.West; p++ {
		h := a.fifos[p].head()
		if h == nil || h.ready > cycle {
			continue
		}
		heads[p] = h.f
		request(int(p), h.f)
	}
	if a.ctrl.InjectionAllowed() {
		if f := env.InjectionHead(); f != nil {
			heads[flit.Local] = f
			request(int(flit.Local), f)
		}
	}

	var grants []int
	if a.reference {
		grants = a.alloc.AllocateMask(a.req[:])
	} else {
		grants = a.fast.Allocate(a.req[:])
	}
	for i, o := range grants {
		if o == -1 || heads[i] == nil {
			continue
		}
		out := flit.Port(o)
		if i == int(flit.Local) {
			env.ConsumeInjection(cycle)
			a.ctrl.netFlits.Add(1)
			a.ctrl.windowInjections.Add(1)
		} else {
			a.fifos[i].pop()
			env.Meter().BufferRead()
			env.ReturnCredit(flit.Port(i))
		}
		if out == flit.Local {
			a.ctrl.netFlits.Add(-1)
		}
		a.send(out, heads[i], cycle)
	}
}

func (a *AFC) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := a.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		f.Route = a.table.RequestAt(env.Neighbor(p), int(f.Dst))
	}
	env.Send(p, f)
}
