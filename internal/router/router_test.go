package router

import (
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// scripted injects a fixed list of packets at given nodes/cycles.
type scripted struct {
	specs []*traffic.PacketSpec
}

func (s *scripted) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	var out []*traffic.PacketSpec
	for _, sp := range s.specs {
		if sp.Src == node && sp.Cycle == cycle {
			out = append(out, sp)
		}
	}
	return out
}

type harness struct {
	eng   *sim.Engine
	coll  *stats.Collector
	meter *energy.Meter
	mesh  *topology.Mesh
}

func newHarness(t *testing.T, factory sim.RouterFactory, depth int, specs ...*traffic.PacketSpec) *harness {
	t.Helper()
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 100000)
	meter := energy.NewMeter()
	eng, err := sim.New(sim.Config{
		Mesh: mesh, Meter: meter, Stats: coll,
		Source: &scripted{specs: specs}, BufferDepth: depth,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, coll: coll, meter: meter, mesh: mesh}
}

func blessFactory(algo routing.Algorithm) sim.RouterFactory {
	return func(env *sim.Env) sim.Router { return NewBless(env, algo) }
}

func scarabFactory() sim.RouterFactory {
	return func(env *sim.Env) sim.Router { return NewScarab(env) }
}

func bufferedFactory(algo routing.Algorithm, split bool) sim.RouterFactory {
	return func(env *sim.Env) sim.Router { return NewBuffered(env, algo, split) }
}

func spec(id uint64, src, dst int, cycle uint64) *traffic.PacketSpec {
	return &traffic.PacketSpec{ID: id, Src: src, Dst: dst, NumFlits: 1, Cycle: cycle}
}

func TestBlessSingleFlitMinimalPath(t *testing.T) {
	// 0 -> 15 on a 4x4 mesh: 6 hops, uncontended: no deflections,
	// latency 12 (2 cycles/hop).
	h := newHarness(t, blessFactory(routing.DOR{}), 0, spec(1, 0, 15, 0))
	h.eng.Run(20)
	r := h.coll.Results()
	if r.Packets != 1 {
		t.Fatalf("packets = %d", r.Packets)
	}
	if r.AvgHops != 6 || r.DeflectionsPerPacket != 0 {
		t.Errorf("hops=%v deflections=%v, want 6 and 0", r.AvgHops, r.DeflectionsPerPacket)
	}
	if r.AvgLatency != 12 {
		t.Errorf("latency = %v, want 12", r.AvgLatency)
	}
}

func TestBlessConflictDeflectsYounger(t *testing.T) {
	// Two flits meet at node 5 wanting the same output. Node 1 -> 9 goes
	// S,S through 5; node 4 -> 6 goes E,E through 5. They arrive at 5
	// simultaneously (both 1 hop away, injected same cycle): no output
	// conflict (S vs E). Force a conflict instead: 1 -> 13 (S,S,S) and
	// 4 -> 7 deflect? Simpler: two flits from opposite sides racing to the
	// same destination column through the same port.
	// 1 -> 13: route S through 5, 9. 6 -> 12 WF... use DOR: 6 -> 12 goes
	// W,W then S? DOR x-first: 6(2,1) -> 12(0,3): W,W,S,S via 5, 4, 8, 12.
	// At node 5 both want different outputs (S vs W) — fine, no conflict.
	// Make both want South at node 5: 1 -> 9 (S,S) and 5 -> 9 injected at
	// node 5 itself... the older flit (earlier injection) must win.
	h := newHarness(t, blessFactory(routing.DOR{}), 0,
		spec(1, 1, 13, 0), // arrives node 5 at cycle 2, wants S
		spec(2, 4, 6, 0),  // arrives node 5 at cycle 2, wants E
		spec(3, 6, 4, 0),  // arrives node 5 at cycle 2, wants W
		spec(4, 9, 1, 0),  // arrives node 5 at cycle 2, wants N
	)
	// Four flits converge on node 5 at cycle 2, each wanting a different
	// output: all switch simultaneously, zero deflections (paper Fig. 3a).
	h.eng.Run(30)
	r := h.coll.Results()
	if r.Packets != 4 {
		t.Fatalf("packets = %d, want 4", r.Packets)
	}
	if r.DeflectionsPerPacket != 0 {
		t.Errorf("crossing flits with distinct outputs must not deflect, got %v", r.DeflectionsPerPacket)
	}
}

func TestBlessDeflectionOnRealConflict(t *testing.T) {
	// Two flits both needing East at node 5 in the same cycle: the younger
	// one is deflected and still delivered.
	h := newHarness(t, blessFactory(routing.DOR{}), 0,
		spec(1, 4, 7, 0), // 4 -> 7: E,E,E through 5, 6
		spec(2, 1, 7, 1), // 1 -> 7: DOR x-first? (1,0)->(3,1): E,E then S. Arrives 5? No: 1->2->3->7.
	)
	// Construct a guaranteed conflict instead: both flits at node 5
	// wanting East, arriving the same cycle.
	h2 := newHarness(t, blessFactory(routing.DOR{}), 0,
		spec(1, 4, 7, 0),  // at cycle 2 reaches node 5, wants E
		spec(2, 9, 11, 0), // (1,2)->(3,2): E,E — at cycle 0 switches at 9... 9 is not 5.
	)
	_ = h2
	// Flit A: 4 -> 6 (E,E): at node 5 cycle 2 wants E.
	// Flit B: 1 -> 10: DOR (1,0)->(2,2): E then S,S — at node 5? No, 1->2.
	// Flit B': 13 -> 6 (1,3)->(2,1): E then N,N: 13->14 at c2? 14 not 5.
	// Use: A: 4 -> 6 via 5 (wants E at 5, arrives c2).
	//      B: 1 -> 9 via 5 (wants S at 5, arrives c2) — no conflict.
	//      C: 1 -> 6: DOR: (1,0)->(2,1): E then S: 1->2->6: not via 5.
	// Head-on: A: 4 -> 6 (E at 5), B: 6 -> 4 (W at 5): arrive c2 both. No conflict.
	// Same-direction chase: A: 4 -> 7 injected c0, B: 4 -> 7 injected c1:
	// no conflict (pipelined). Convergent: A: 1 -> 13 (S at 5 c2),
	// B: 6 -> 8: (2,1)->(0,2): W,W then S: at 5 c2 wants W. No conflict.
	// B2: 6 -> 12: W,W,S: at node 5 (c2) wants W; at node 4 (c4) wants S.
	// A2: 0 -> 12: S,S,S: at node 4 c2... different cycles.
	// Simplest true conflict: A: 1 -> 9 (S,S via 5), B: 6 -> 13 ((2,1)->(1,3)):
	// W then S,S: at node 5 c2 wants... W first hop: 6->5 (W), then at 5
	// DOR toward (1,3): x aligned? 5 is (1,1), dst (1,3): wants S. A at 5
	// c2 wants S too. Conflict!
	h3 := newHarness(t, blessFactory(routing.DOR{}), 0,
		spec(1, 1, 9, 0),  // older: wins S at node 5
		spec(2, 6, 13, 0), // younger: deflected at node 5
	)
	h3.eng.Run(40)
	r := h3.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2", r.Packets)
	}
	if r.DeflectionsPerPacket == 0 {
		t.Error("expected a deflection from the S-port conflict at node 5")
	}
	h.eng.Run(40)
	if h.coll.Results().Packets != 2 {
		t.Error("control pair must also deliver")
	}
}

func TestBlessEjectionConflictDeflects(t *testing.T) {
	// Two flits arrive at destination 5 in the same cycle; one ejects, the
	// other is deflected and ejects later.
	h := newHarness(t, blessFactory(routing.DOR{}), 0,
		spec(1, 4, 5, 0),
		spec(2, 6, 5, 0),
	)
	h.eng.Run(20)
	r := h.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2", r.Packets)
	}
	if r.DeflectionsPerPacket == 0 {
		t.Error("losing ejection must deflect")
	}
}

func TestScarabDropsAndRetransmits(t *testing.T) {
	// A guaranteed S-port conflict at node 5 with no adaptive escape:
	// A: 1 -> 9 arrives at 5 (cycle 2) with the single productive port S;
	// B: 4 -> 9 takes E first (larger-offset preference puts E ahead),
	// reaches 5 the same cycle, and also has only S left. The younger
	// flit drops and retransmits from the source.
	h := newHarness(t, scarabFactory(), 0,
		spec(1, 1, 9, 0),
		spec(2, 4, 9, 0),
	)
	h.eng.Run(60)
	r := h.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2", r.Packets)
	}
	if r.DroppedFlits == 0 {
		t.Error("expected a drop")
	}
	if r.RetransmitsPerPacket == 0 {
		t.Error("expected a retransmission")
	}
}

func TestScarabAdaptiveAvoidsDrop(t *testing.T) {
	// A flit with two productive directions sidesteps a taken port instead
	// of dropping: A: 1 -> 9 (wants S at 5), B: 6 -> 12 ((2,1)->(0,3)):
	// at 5 productive = {W, S} — S taken by older A, so B adapts W.
	h := newHarness(t, scarabFactory(), 0,
		spec(1, 1, 9, 0),
		spec(2, 6, 12, 0),
	)
	h.eng.Run(60)
	r := h.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2", r.Packets)
	}
	if r.DroppedFlits != 0 {
		t.Errorf("adaptive sidestep should avoid the drop, got %d drops", r.DroppedFlits)
	}
}

func TestBufferedPipelineLatency(t *testing.T) {
	// 3-stage pipeline: 3 cycles per hop, 0 -> 3 is 3 hops => latency 9.
	h := newHarness(t, bufferedFactory(routing.DOR{}, false), 4, spec(1, 0, 3, 0))
	h.eng.Run(30)
	r := h.coll.Results()
	if r.Packets != 1 {
		t.Fatalf("packets = %d", r.Packets)
	}
	// Injection at the source does not pay the buffer-eligibility cycle
	// (flits enter the allocator straight from the PE): first hop ST@0,
	// LT@1; each subsequent router costs 3 (buffer cycle + ST + LT); the
	// destination pays its buffer cycle plus the ejection ST: 2+3+3+1 = 9.
	want := 2.0 + 3.0 + 3.0 + 1.0
	if r.AvgLatency != want {
		t.Errorf("latency = %v, want %v", r.AvgLatency, want)
	}
}

func TestBufferedChargesBufferEnergy(t *testing.T) {
	h := newHarness(t, bufferedFactory(routing.DOR{}, false), 4, spec(1, 0, 3, 0))
	h.eng.Run(30)
	c := h.meter.Snapshot()
	// Hops through nodes 1 and 2 buffer the flit; node 3 buffers before
	// ejection. The injection at node 0 does not.
	if c.BufferWrites != 3 || c.BufferReads != 3 {
		t.Errorf("buffer events = %d writes / %d reads, want 3/3", c.BufferWrites, c.BufferReads)
	}
	if c.CrossbarTraversals != 4 {
		t.Errorf("crossbar traversals = %d, want 4 (incl. ejection)", c.CrossbarTraversals)
	}
}

func TestBufferedHoLBlocking(t *testing.T) {
	// Buffered4 suffers HoL: a blocked head delays a younger flit behind
	// it that wants a free port. Buffered8 (split) does not.
	// Blocker: occupy South output of node 5 continuously with older
	// traffic from node 1; victim: flit behind it wanting East.
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	// A stream 1 -> 13 (S,S,S through 5, 9) keeps South at 5 busy.
	for c := uint64(0); c < 12; c++ {
		specs = append(specs, spec(id, 1, 13, c))
		id++
	}
	// Two flits from node 4's side entering node 5: first wants S (will
	// lose to the older stream), second wants E (free).
	specs = append(specs, spec(100, 4, 9, 5)) // via 5, wants S there
	specs = append(specs, spec(101, 4, 6, 6)) // via 5, wants E there
	h4 := newHarness(t, bufferedFactory(routing.DOR{}, false), 4, specs...)
	h8 := newHarness(t, bufferedFactory(routing.DOR{}, true), 8, specs...)
	h4.eng.Run(200)
	h8.eng.Run(200)
	r4, r8 := h4.coll.Results(), h8.coll.Results()
	if r4.Packets != uint64(len(specs)) || r8.Packets != uint64(len(specs)) {
		t.Fatalf("deliveries: buffered4=%d buffered8=%d want %d", r4.Packets, r8.Packets, len(specs))
	}
	if r8.MaxLatency > r4.MaxLatency {
		t.Errorf("split buffers should not increase worst-case latency (b4=%d b8=%d)",
			r4.MaxLatency, r8.MaxLatency)
	}
}

func TestBufferedWFUsesAdaptivePorts(t *testing.T) {
	// Under WF a SE-bound flit may leave through E or S; with the S port
	// congested the allocator grants E. Just verify delivery and
	// reasonable latency under a small conflict load.
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	for c := uint64(0); c < 8; c++ {
		specs = append(specs, spec(id, 1, 13, c))
		id++
	}
	specs = append(specs, spec(50, 0, 15, 0)) // SE-bound, adaptive
	h := newHarness(t, bufferedFactory(routing.WestFirst{}, false), 4, specs...)
	h.eng.Run(300)
	if got := h.coll.Results().Packets; got != uint64(len(specs)) {
		t.Fatalf("packets = %d, want %d", got, len(specs))
	}
}

func TestBufferedMultiFlit(t *testing.T) {
	h := newHarness(t, bufferedFactory(routing.DOR{}, false), 4,
		&traffic.PacketSpec{ID: 1, Src: 0, Dst: 10, NumFlits: 5, Cycle: 0})
	h.eng.Run(100)
	r := h.coll.Results()
	if r.Packets != 1 {
		t.Fatalf("multi-flit packet not reassembled")
	}
}

func TestScarabEjectionConflictDrops(t *testing.T) {
	h := newHarness(t, scarabFactory(), 0,
		spec(1, 4, 5, 0),
		spec(2, 6, 5, 0),
	)
	h.eng.Run(60)
	r := h.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2", r.Packets)
	}
	if r.DroppedFlits == 0 {
		t.Error("losing ejection must drop in SCARAB")
	}
}
