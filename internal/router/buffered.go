package router

import (
	"dxbar/internal/arbiter"
	"dxbar/internal/bitarb"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// bufEntry is a buffered flit plus the cycle it becomes eligible for switch
// allocation (the extra cycle models the baseline's RC pipeline stage).
type bufEntry struct {
	f     *flit.Flit
	ready uint64
}

// entryQueue is a small fixed-capacity ring FIFO of bufEntry (the baseline
// needs the eligibility timestamp, which buffer.FIFO deliberately does not
// carry). Capacity is fifoDepth: credit flow control guarantees a FIFO never
// holds more, so the ring allocates nothing after construction.
type entryQueue struct {
	entries [fifoDepth]bufEntry
	headIdx int
	count   int
}

func (q *entryQueue) push(e bufEntry) {
	if q.count == fifoDepth {
		panic("router: entryQueue overflow (credit violation)")
	}
	q.entries[(q.headIdx+q.count)%fifoDepth] = e
	q.count++
}
func (q *entryQueue) len() int { return q.count }
func (q *entryQueue) head() *bufEntry {
	if q.count == 0 {
		return nil
	}
	return &q.entries[q.headIdx]
}
func (q *entryQueue) pop() bufEntry {
	e := q.entries[q.headIdx]
	q.entries[q.headIdx] = bufEntry{}
	q.headIdx = (q.headIdx + 1) % fifoDepth
	q.count--
	return e
}

// Buffered is the generic input-buffered baseline router: per-input serial
// FIFOs (no virtual channels), a separable output-first switch allocator,
// credit flow control, and the 3-stage RC·SA/ST·LT pipeline (one eligibility
// cycle in the buffer before a flit may compete for the switch).
//
// With split=false it is the paper's Buffered 4 (one 4-flit FIFO per input,
// subject to head-of-line blocking); with split=true it is Buffered 8 (two
// 4-flit FIFOs per input whose heads both compete, removing HoL blocking —
// "the split design resembles DXbar only at the buffering and provides for
// a fair comparison").
type Buffered struct {
	env   *sim.Env
	algo  routing.Algorithm
	split bool
	fifos [flit.NumLinkPorts][]*entryQueue
	// nextFIFO alternates arrivals between the two FIFOs of a split input
	// (the split design steers arrivals round-robin; it falls back to the
	// other FIFO only when the preferred one is full).
	nextFIFO [flit.NumLinkPorts]int
	// alloc is the branchy reference allocator, fast its bit-parallel twin
	// (grant-for-grant identical; reference selects which one runs).
	alloc     *arbiter.Separable
	fast      *bitarb.Separable
	reference bool

	// table is the precomputed form of algo (shared network-wide when the
	// factory passes a *routing.Table).
	table *routing.Table

	// Per-Step allocator scratch, reused every cycle: the request matrix as
	// one output-mask word per input, the sendable-output mask, and the
	// candidate behind each set request bit (stale entries are never read —
	// a grant only lands on a bit set this cycle).
	req      [flit.NumPorts]uint64
	sendable uint64
	cand     [flit.NumPorts][flit.NumPorts]candidate
}

// candidate is the flit (and its source queue; nil = injection port) behind
// one request-matrix entry.
type candidate struct {
	q *entryQueue
	f *flit.Flit
}

// NewBuffered builds a Buffered 4 (split=false) or Buffered 8 (split=true)
// router. The engine must be configured with BufferDepth 4 or 8
// respectively so credits match buffer capacity.
func NewBuffered(env *sim.Env, algo routing.Algorithm, split bool) *Buffered {
	mesh := env.Mesh()
	b := &Buffered{
		env:   env,
		algo:  algo,
		split: split,
		alloc: arbiter.NewSeparable(flit.NumPorts, flit.NumPorts),
		fast:  bitarb.NewSeparable(flit.NumPorts, flit.NumPorts),
		table: routing.NewTable(algo, mesh, mesh.Nodes()),
	}
	for p := range b.fifos {
		if split {
			b.fifos[p] = []*entryQueue{{}, {}}
		} else {
			b.fifos[p] = []*entryQueue{{}}
		}
	}
	return b
}

// SetReferenceArbitration switches the router to the branchy reference
// allocator (the oracle the bit-parallel one is proven grant-for-grant
// identical to). Call before the first Step.
func (b *Buffered) SetReferenceArbitration(on bool) { b.reference = on }

// fifoDepth is the per-FIFO capacity (4 flits, paper §III.A).
const fifoDepth = 4

// Step implements sim.Router.
func (b *Buffered) Step(cycle uint64) {
	env := b.env

	// Buffer writes (BW stage): flits become eligible next cycle (RC).
	for p := flit.North; p <= flit.West; p++ {
		f := env.In[p]
		if f == nil {
			continue
		}
		env.In[p] = nil
		env.InMask &^= 1 << uint(p)
		q := b.pickQueue(p)
		if q == nil {
			panic("router: buffered input overflow (credit violation)")
		}
		q.push(bufEntry{f: f, ready: cycle + 1})
		f.Buffered++
		env.Meter().BufferWrite()
		env.Stats().BufferingEvent(cycle)
		env.Events().Record(cycle, events.Buffered, env.Node, p, f.PacketID, f.ID, int32(q.len()))
	}

	// Build the request matrix: inputs 0..3 are the link FIFOs, input 4 is
	// the PE injection port. One mask word per input; candidate entries are
	// only written under freshly set bits, so no clearing pass is needed.
	// Sendability is one bitmask for the whole round — nothing launches
	// before allocation, so it equals a CanSend call per probe.
	for i := range b.req {
		b.req[i] = 0
	}
	b.sendable = uint64(env.SendableMask())

	for p := flit.North; p <= flit.West; p++ {
		for _, q := range b.fifos[p] {
			if h := q.head(); h != nil && h.ready <= cycle {
				b.requestPorts(int(p), q, h.f)
			}
		}
	}
	if f := env.InjectionHead(); f != nil {
		b.requestPorts(int(flit.Local), nil, f)
	}

	// Switch allocation and traversal.
	var grants []int
	if b.reference {
		grants = b.alloc.AllocateMask(b.req[:])
	} else {
		grants = b.fast.Allocate(b.req[:])
	}
	for i, o := range grants {
		if o == -1 {
			continue
		}
		c := b.cand[i][o]
		outPort := flit.Port(o)
		if c.q != nil {
			e := c.q.pop()
			env.Meter().BufferRead()
			env.ReturnCredit(flit.Port(i))
			b.send(outPort, e.f, cycle)
		} else {
			env.ConsumeInjection(cycle)
			b.send(outPort, c.f, cycle)
		}
	}
}

// pickQueue selects the FIFO an arrival on port p is written to:
// round-robin between the two FIFOs of a split input (falling back to the
// other when the preferred one is full), the only FIFO otherwise; nil when
// everything is full.
func (b *Buffered) pickQueue(p flit.Port) *entryQueue {
	qs := b.fifos[p]
	for i := 0; i < len(qs); i++ {
		q := qs[(b.nextFIFO[p]+i)%len(qs)]
		if q.len() < fifoDepth {
			b.nextFIFO[p] = (b.nextFIFO[p] + i + 1) % len(qs)
			return q
		}
	}
	return nil
}

// requestPorts registers input i's candidate flit f (from queue q; q == nil
// for the injection port) against every sendable desired output.
func (b *Buffered) requestPorts(i int, q *entryQueue, f *flit.Flit) {
	ports := b.desiredPorts(f)
	for k := 0; k < ports.Len(); k++ {
		p := ports.At(k)
		bit := uint64(1) << uint(p)
		if b.sendable&bit == 0 {
			continue
		}
		o := int(p)
		if b.req[i]&bit == 0 || (b.cand[i][o].f != nil && f.Older(b.cand[i][o].f)) {
			b.req[i] |= bit
			b.cand[i][o] = candidate{q: q, f: f}
		}
	}
}

// desiredPorts returns the output ports the flit may request here: Local
// when arrived, otherwise the algorithm's productive set (all of it for the
// adaptive WF, the single DOR port otherwise).
func (b *Buffered) desiredPorts(f *flit.Flit) routing.PortList {
	if int(f.Dst) == b.env.Node {
		return routing.Ports(flit.Local)
	}
	return b.table.ProductiveAt(b.env.Node, int(f.Dst))
}

func (b *Buffered) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := b.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		f.Route = b.table.RequestAt(env.Neighbor(p), int(f.Dst))
	}
	env.Send(p, f)
}

// Occupancy returns the number of buffered flits (test/diagnostic hook).
func (b *Buffered) Occupancy() int {
	total := 0
	for p := range b.fifos {
		for _, q := range b.fifos[p] {
			total += q.len()
		}
	}
	return total
}
