package router

import (
	"dxbar/internal/arbiter"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// bufEntry is a buffered flit plus the cycle it becomes eligible for switch
// allocation (the extra cycle models the baseline's RC pipeline stage).
type bufEntry struct {
	f     *flit.Flit
	ready uint64
}

// entryQueue is a small FIFO of bufEntry (the baseline needs the eligibility
// timestamp, which buffer.FIFO deliberately does not carry).
type entryQueue struct {
	entries []bufEntry
}

func (q *entryQueue) push(e bufEntry) { q.entries = append(q.entries, e) }
func (q *entryQueue) len() int        { return len(q.entries) }
func (q *entryQueue) head() *bufEntry {
	if len(q.entries) == 0 {
		return nil
	}
	return &q.entries[0]
}
func (q *entryQueue) pop() bufEntry {
	e := q.entries[0]
	q.entries = q.entries[1:]
	return e
}

// Buffered is the generic input-buffered baseline router: per-input serial
// FIFOs (no virtual channels), a separable output-first switch allocator,
// credit flow control, and the 3-stage RC·SA/ST·LT pipeline (one eligibility
// cycle in the buffer before a flit may compete for the switch).
//
// With split=false it is the paper's Buffered 4 (one 4-flit FIFO per input,
// subject to head-of-line blocking); with split=true it is Buffered 8 (two
// 4-flit FIFOs per input whose heads both compete, removing HoL blocking —
// "the split design resembles DXbar only at the buffering and provides for
// a fair comparison").
type Buffered struct {
	env   *sim.Env
	algo  routing.Algorithm
	split bool
	fifos [flit.NumLinkPorts][]*entryQueue
	// nextFIFO alternates arrivals between the two FIFOs of a split input
	// (the split design steers arrivals round-robin; it falls back to the
	// other FIFO only when the preferred one is full).
	nextFIFO [flit.NumLinkPorts]int
	alloc    *arbiter.Separable
}

// NewBuffered builds a Buffered 4 (split=false) or Buffered 8 (split=true)
// router. The engine must be configured with BufferDepth 4 or 8
// respectively so credits match buffer capacity.
func NewBuffered(env *sim.Env, algo routing.Algorithm, split bool) *Buffered {
	b := &Buffered{
		env:   env,
		algo:  algo,
		split: split,
		alloc: arbiter.NewSeparable(flit.NumPorts, flit.NumPorts),
	}
	for p := range b.fifos {
		if split {
			b.fifos[p] = []*entryQueue{{}, {}}
		} else {
			b.fifos[p] = []*entryQueue{{}}
		}
	}
	return b
}

// fifoDepth is the per-FIFO capacity (4 flits, paper §III.A).
const fifoDepth = 4

// Step implements sim.Router.
func (b *Buffered) Step(cycle uint64) {
	env := b.env

	// Buffer writes (BW stage): flits become eligible next cycle (RC).
	for p := flit.North; p <= flit.West; p++ {
		f := env.In[p]
		if f == nil {
			continue
		}
		env.In[p] = nil
		q := b.pickQueue(p)
		if q == nil {
			panic("router: buffered input overflow (credit violation)")
		}
		q.push(bufEntry{f: f, ready: cycle + 1})
		f.Buffered++
		env.Meter().BufferWrite()
		env.Stats().BufferingEvent(cycle)
	}

	// Build the request matrix: inputs 0..3 are the link FIFOs, input 4 is
	// the PE injection port.
	req := make([][]bool, flit.NumPorts)
	for i := range req {
		req[i] = make([]bool, flit.NumPorts)
	}
	// cand[i][o] is the candidate flit queue index behind request (i, o).
	type candidate struct {
		q *entryQueue
		f *flit.Flit
	}
	cand := make([][]candidate, flit.NumPorts)
	for i := range cand {
		cand[i] = make([]candidate, flit.NumPorts)
	}

	requestPorts := func(i int, q *entryQueue, f *flit.Flit) {
		for _, p := range b.desiredPorts(f) {
			if !b.env.CanSend(p) {
				continue
			}
			o := int(p)
			if !req[i][o] || (cand[i][o].f != nil && f.Older(cand[i][o].f)) {
				req[i][o] = true
				cand[i][o] = candidate{q: q, f: f}
			}
		}
	}

	for p := flit.North; p <= flit.West; p++ {
		for _, q := range b.fifos[p] {
			if h := q.head(); h != nil && h.ready <= cycle {
				requestPorts(int(p), q, h.f)
			}
		}
	}
	if f := env.InjectionHead(); f != nil {
		requestPorts(int(flit.Local), nil, f)
	}

	// Switch allocation and traversal.
	grants := b.alloc.Allocate(req)
	for i, o := range grants {
		if o == -1 {
			continue
		}
		c := cand[i][o]
		outPort := flit.Port(o)
		if c.q != nil {
			e := c.q.pop()
			env.Meter().BufferRead()
			env.ReturnCredit(flit.Port(i))
			b.send(outPort, e.f, cycle)
		} else {
			env.ConsumeInjection(cycle)
			b.send(outPort, c.f, cycle)
		}
	}
}

// pickQueue selects the FIFO an arrival on port p is written to:
// round-robin between the two FIFOs of a split input (falling back to the
// other when the preferred one is full), the only FIFO otherwise; nil when
// everything is full.
func (b *Buffered) pickQueue(p flit.Port) *entryQueue {
	qs := b.fifos[p]
	for i := 0; i < len(qs); i++ {
		q := qs[(b.nextFIFO[p]+i)%len(qs)]
		if q.len() < fifoDepth {
			b.nextFIFO[p] = (b.nextFIFO[p] + i + 1) % len(qs)
			return q
		}
	}
	return nil
}

// desiredPorts returns the output ports the flit may request here: Local
// when arrived, otherwise the algorithm's productive set (all of it for the
// adaptive WF, the single DOR port otherwise).
func (b *Buffered) desiredPorts(f *flit.Flit) []flit.Port {
	if f.Dst == b.env.Node {
		return []flit.Port{flit.Local}
	}
	return b.algo.Productive(b.env.Mesh(), b.env.Node, f.Dst)
}

func (b *Buffered) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := b.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		next := env.Mesh().Neighbor(env.Node, p)
		f.Route = routing.Request(b.algo, env.Mesh(), next, f.Dst)
	}
	env.Send(p, f)
}

// Occupancy returns the number of buffered flits (test/diagnostic hook).
func (b *Buffered) Occupancy() int {
	total := 0
	for p := range b.fifos {
		for _, q := range b.fifos[p] {
			total += q.len()
		}
	}
	return total
}
