// Package router implements the paper's three comparison designs:
//
//   - Bless: Flit-Bless bufferless deflection routing (Moscibroda & Mutlu,
//     ISCA'09 — reference [6]), oldest-first age arbitration, 2-stage
//     SA/ST·LT pipeline.
//   - Scarab: SCARAB bufferless drop-and-NACK routing (Hayenga et al.,
//     MICRO'09 — reference [8]), minimal adaptive, dedicated circuit-
//     switched NACK network, source retransmission.
//   - Buffered: the generic input-FIFO virtual-channel-free baseline with 4
//     flit buffers per input (Buffered 4) or two sets of 4 (Buffered 8,
//     which removes head-of-line blocking), 3-stage RC·SA/ST·LT pipeline
//     and credit flow control.
//
// The DXbar designs (the paper's contribution) live in internal/core.
package router

import (
	"dxbar/internal/core"
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// Bless is the Flit-Bless deflection router. Every cycle all incoming flits
// are assigned distinct output ports in age order (oldest first); a flit
// whose productive ports are taken is deflected to any free port. One flit
// may eject per cycle; a new flit is injected whenever an input slot was
// free, in keeping with the bufferless injection rule.
type Bless struct {
	env  *sim.Env
	algo routing.Algorithm

	// table precomputes algo (shared network-wide when the factory passes a
	// *routing.Table); links caches the node's link count; reference selects
	// the branchy oracle path over the bit-parallel one.
	table     *routing.Table
	links     int
	reference bool

	arrivals []*flit.Flit   // per-Step scratch, reused across cycles
	cands    core.PortState // fast-path SoA gather, reused across cycles
}

// NewBless builds a Flit-Bless router for the Env's node.
func NewBless(env *sim.Env, algo routing.Algorithm) *Bless {
	mesh := env.Mesh()
	return &Bless{
		env:      env,
		algo:     algo,
		table:    routing.NewTable(algo, mesh, mesh.Nodes()),
		links:    mesh.LinkCount(env.Node),
		arrivals: make([]*flit.Flit, 0, flit.NumPorts),
	}
}

// SetReferenceArbitration switches the router to its branchy reference path
// (the oracle the bit-parallel fast path is proven bit-identical to). Call
// before the first Step.
func (b *Bless) SetReferenceArbitration(on bool) { b.reference = on }

// Step implements sim.Router.
func (b *Bless) Step(cycle uint64) {
	if !b.reference {
		b.stepFast(cycle)
		return
	}
	env := b.env
	mesh := env.Mesh()
	node := env.Node

	// Gather and consume arrivals.
	arrivals := b.arrivals[:0]
	links := 0
	for p := flit.North; p <= flit.West; p++ {
		if mesh.HasPort(node, p) {
			links++
		}
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			arrivals = append(arrivals, f)
		}
	}
	env.InMask = 0

	// Injection rule: a free input slot this cycle admits one new flit,
	// which then competes as the youngest candidate.
	var injectee *flit.Flit
	if len(arrivals) < links {
		if f := env.InjectionHead(); f != nil {
			arrivals = append(arrivals, f)
			injectee = f
		}
	}

	// Oldest-first arbitration over all candidates.
	flit.SortByAge(arrivals)

	for _, f := range arrivals {
		assigned := b.assign(f, cycle)
		if assigned == flit.Invalid {
			// Unreachable by the port-counting argument (candidates never
			// exceed available outputs); keep the invariant loud.
			panic("router: bless failed to assign an output port")
		}
		if f == injectee {
			env.ConsumeInjection(cycle)
		}
		b.send(assigned, f, cycle)
	}
}

// assign picks the output port for f: Local when it has arrived and the
// ejection port is free, otherwise the best free port in deflection order.
func (b *Bless) assign(f *flit.Flit, cycle uint64) flit.Port {
	env := b.env
	mesh := env.Mesh()
	node := env.Node
	if int(f.Dst) == node && env.OutputFree(flit.Local) {
		return flit.Local
	}
	order := routing.DeflectionOrder(b.algo, mesh, node, int(f.Dst))
	prod := b.algo.Productive(mesh, node, int(f.Dst))
	for i := 0; i < order.Len(); i++ {
		p := order.At(i)
		if env.OutputFree(p) {
			// Ports beyond the productive prefix are deflections; a flit
			// that has arrived but lost ejection is also deflected.
			if int(f.Dst) == node || i >= prod.Len() {
				f.Deflections++
				env.Stats().DeflectedFlit()
				env.Events().Record(cycle, events.Deflect, node, p, f.PacketID, f.ID, int32(f.Deflections))
			}
			return p
		}
	}
	return flit.Invalid
}

func (b *Bless) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := b.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p == flit.Local {
		env.Send(p, f)
		return
	}
	// Look-ahead: compute the flit's request at the downstream router.
	next := env.Mesh().Neighbor(env.Node, p)
	f.Route = routing.Request(b.algo, env.Mesh(), next, int(f.Dst))
	env.Send(p, f)
}

// stepFast is the bit-parallel path: candidates gathered into an SoA
// PortState, output availability tracked as one bitmask, every routing query
// a table load. Bit-identical to the reference Step (the equivalence suite
// drives both).
func (b *Bless) stepFast(cycle uint64) {
	env := b.env
	ps := &b.cands
	ps.Reset()
	for p := flit.North; p <= flit.West; p++ {
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			ps.Add(f, p)
		}
	}
	env.InMask = 0
	var injectee *flit.Flit
	if ps.N < b.links {
		if f := env.InjectionHead(); f != nil {
			injectee = f
			ps.Add(f, flit.Local)
		}
	}
	ps.SortAge()

	free := env.FreeOutMask()
	for i := 0; i < ps.N; i++ {
		s := ps.Order[i]
		f := ps.Flits[s]
		assigned := b.assignFast(f, int(ps.Dst[s]), free, cycle)
		if assigned == flit.Invalid {
			panic("router: bless failed to assign an output port")
		}
		if f == injectee {
			env.ConsumeInjection(cycle)
		}
		free &^= 1 << uint(assigned)
		b.sendFast(assigned, f, cycle)
	}
}

// assignFast is assign over the free-output bitmask and the routing table.
func (b *Bless) assignFast(f *flit.Flit, dst int, free uint8, cycle uint64) flit.Port {
	env := b.env
	node := env.Node
	if dst == node && free&(1<<uint(flit.Local)) != 0 {
		return flit.Local
	}
	order := b.table.DeflectionAt(node, dst)
	prodLen := b.table.ProductiveLenAt(node, dst)
	for i := 0; i < order.Len(); i++ {
		p := order.At(i)
		if free&(1<<uint(p)) != 0 {
			if dst == node || i >= prodLen {
				f.Deflections++
				env.Stats().DeflectedFlit()
				env.Events().Record(cycle, events.Deflect, node, p, f.PacketID, f.ID, int32(f.Deflections))
			}
			return p
		}
	}
	return flit.Invalid
}

// sendFast is send with the table look-ahead.
func (b *Bless) sendFast(p flit.Port, f *flit.Flit, cycle uint64) {
	env := b.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p != flit.Local {
		f.Route = b.table.RequestAt(env.Neighbor(p), int(f.Dst))
	}
	env.Send(p, f)
}
