// Package router implements the paper's three comparison designs:
//
//   - Bless: Flit-Bless bufferless deflection routing (Moscibroda & Mutlu,
//     ISCA'09 — reference [6]), oldest-first age arbitration, 2-stage
//     SA/ST·LT pipeline.
//   - Scarab: SCARAB bufferless drop-and-NACK routing (Hayenga et al.,
//     MICRO'09 — reference [8]), minimal adaptive, dedicated circuit-
//     switched NACK network, source retransmission.
//   - Buffered: the generic input-FIFO virtual-channel-free baseline with 4
//     flit buffers per input (Buffered 4) or two sets of 4 (Buffered 8,
//     which removes head-of-line blocking), 3-stage RC·SA/ST·LT pipeline
//     and credit flow control.
//
// The DXbar designs (the paper's contribution) live in internal/core.
package router

import (
	"dxbar/internal/events"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// Bless is the Flit-Bless deflection router. Every cycle all incoming flits
// are assigned distinct output ports in age order (oldest first); a flit
// whose productive ports are taken is deflected to any free port. One flit
// may eject per cycle; a new flit is injected whenever an input slot was
// free, in keeping with the bufferless injection rule.
type Bless struct {
	env  *sim.Env
	algo routing.Algorithm

	arrivals []*flit.Flit // per-Step scratch, reused across cycles
}

// NewBless builds a Flit-Bless router for the Env's node.
func NewBless(env *sim.Env, algo routing.Algorithm) *Bless {
	return &Bless{env: env, algo: algo, arrivals: make([]*flit.Flit, 0, flit.NumPorts)}
}

// Step implements sim.Router.
func (b *Bless) Step(cycle uint64) {
	env := b.env
	mesh := env.Mesh()
	node := env.Node

	// Gather and consume arrivals.
	arrivals := b.arrivals[:0]
	links := 0
	for p := flit.North; p <= flit.West; p++ {
		if mesh.HasPort(node, p) {
			links++
		}
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			arrivals = append(arrivals, f)
		}
	}

	// Injection rule: a free input slot this cycle admits one new flit,
	// which then competes as the youngest candidate.
	var injectee *flit.Flit
	if len(arrivals) < links {
		if f := env.InjectionHead(); f != nil {
			arrivals = append(arrivals, f)
			injectee = f
		}
	}

	// Oldest-first arbitration over all candidates.
	flit.SortByAge(arrivals)

	for _, f := range arrivals {
		assigned := b.assign(f, cycle)
		if assigned == flit.Invalid {
			// Unreachable by the port-counting argument (candidates never
			// exceed available outputs); keep the invariant loud.
			panic("router: bless failed to assign an output port")
		}
		if f == injectee {
			env.ConsumeInjection(cycle)
		}
		b.send(assigned, f, cycle)
	}
}

// assign picks the output port for f: Local when it has arrived and the
// ejection port is free, otherwise the best free port in deflection order.
func (b *Bless) assign(f *flit.Flit, cycle uint64) flit.Port {
	env := b.env
	mesh := env.Mesh()
	node := env.Node
	if f.Dst == node && env.OutputFree(flit.Local) {
		return flit.Local
	}
	order := routing.DeflectionOrder(b.algo, mesh, node, f.Dst)
	prod := b.algo.Productive(mesh, node, f.Dst)
	for i := 0; i < order.Len(); i++ {
		p := order.At(i)
		if env.OutputFree(p) {
			// Ports beyond the productive prefix are deflections; a flit
			// that has arrived but lost ejection is also deflected.
			if f.Dst == node || i >= prod.Len() {
				f.Deflections++
				env.Events().Record(cycle, events.Deflect, node, p, f.PacketID, f.ID, int32(f.Deflections))
			}
			return p
		}
	}
	return flit.Invalid
}

func (b *Bless) send(p flit.Port, f *flit.Flit, cycle uint64) {
	env := b.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if p == flit.Local {
		env.Send(p, f)
		return
	}
	// Look-ahead: compute the flit's request at the downstream router.
	next := env.Mesh().Neighbor(env.Node, p)
	f.Route = routing.Request(b.algo, env.Mesh(), next, f.Dst)
	env.Send(p, f)
}
