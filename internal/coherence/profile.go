// Package coherence is the SPLASH-2 traffic substrate: a deterministic
// multiprocessor memory-system model that generates the request/reply
// coherence traffic the paper captured with Simics+GEMS (Tables I and II),
// and measures benchmark execution time as the cycle at which every
// processor completes its memory-operation budget.
//
// The model implements, per tile: an in-order processor issuing memory
// operations separated by compute gaps, private L1 and L2 caches abstracted
// by per-benchmark hit rates and the Table I/II access latencies, and an
// MSHR that blocks the processor on an outstanding L2 miss. Sixteen
// directory+memory controllers (Table II) run a MESI directory protocol:
// GetS/GetM requests, Data replies (one 64 B cache block = 5 flits of
// 128 bits including the header), Fwd to dirty owners, Inv/InvAck for write
// upgrades, Unblock completion messages, and Put/PutAck writebacks.
//
// The paper's actual traces came from UltraSPARC checkpoints; only the
// *network-visible* behaviour matters for Figs. 9-10 — message mix, sizes,
// request-reply dependences, per-benchmark intensity and sharing — and the
// substitute generates exactly that structure (see DESIGN.md §4).
package coherence

// Latency and structural constants from Tables I and II.
const (
	// L1AccessLatency is the IL1/DL1 access latency (2 cycles).
	L1AccessLatency = 2
	// L2AccessLatency is the private L2 access latency (4 cycles).
	L2AccessLatency = 4
	// MemoryLatency is the main-memory latency (160 cycles).
	MemoryLatency = 160
	// DirectoryLatency is the directory access latency (80 cycles).
	DirectoryLatency = 80
	// NumDirectories is the number of directory+memory controllers (16).
	NumDirectories = 16
	// DataFlits is a 64 B cache block on 128-bit flits, plus the header.
	DataFlits = 5
	// CtrlFlits is a single-flit control message.
	CtrlFlits = 1
	// MSHREntries bounds outstanding misses per tile (Table I: 16); the
	// in-order model uses it only to bound prefetch-style writebacks.
	MSHREntries = 16
)

// Profile characterizes one benchmark's memory behaviour. Rates are
// calibrated from published SPLASH-2 characterizations (Woo et al., ISCA'95
// — the paper's reference [17]) to reproduce each benchmark's *relative*
// network intensity and sharing degree; the absolute instruction counts are
// scaled down so a run completes in simulator-friendly time.
type Profile struct {
	// Name is the benchmark name as in Fig. 9/10.
	Name string
	// OpsPerProc is the per-processor memory-operation budget.
	OpsPerProc int
	// L1Hit is the probability a memory op hits in L1.
	L1Hit float64
	// L2Hit is the probability an L1 miss hits in the private L2.
	L2Hit float64
	// Share is the probability an L2 miss touches a shared block (the rest
	// go to private blocks, which still travel to the home directory but
	// never conflict).
	Share float64
	// Write is the probability an access is a store (GetM instead of GetS).
	Write float64
	// ComputeGap is the mean number of cycles between memory operations.
	ComputeGap int
	// Writeback is the probability an L2 miss also evicts a dirty block
	// (generating Put/PutAck traffic).
	Writeback float64
	// SharedBlocks and PrivateBlocksPerTile size the address pools.
	SharedBlocks         int
	PrivateBlocksPerTile int
	// DetailedCaches switches the tile model from profile hit rates to
	// real set-associative L1/L2 caches (Table I/II geometries): hit rates
	// and writeback traffic then emerge from the working set. Address
	// pools are scaled by DetailedWorkingSetScale in this mode. L1Hit,
	// L2Hit and Writeback are ignored.
	DetailedCaches bool
}

// Detailed returns a copy of the profile with real caches enabled.
func (p Profile) Detailed() Profile {
	p.DetailedCaches = true
	return p
}

// Profiles returns the nine SPLASH-2 benchmark profiles in the paper's
// order (FFT 16K, LU 512×512, Radiosity largeroom, Ocean 258×258, Raytrace
// teapot, Radix 1M, Water 512, FMM 16K, Barnes 16K).
func Profiles() []Profile {
	return []Profile{
		// FFT: all-to-all transpose phases — high L2 miss rate, moderate
		// sharing, bursty communication.
		{Name: "FFT", OpsPerProc: 1500, L1Hit: 0.92, L2Hit: 0.55, Share: 0.55, Write: 0.30, ComputeGap: 4, Writeback: 0.35, SharedBlocks: 2048, PrivateBlocksPerTile: 256},
		// LU: blocked factorization — good locality, producer/consumer
		// sharing of pivot blocks.
		{Name: "LU", OpsPerProc: 1500, L1Hit: 0.95, L2Hit: 0.70, Share: 0.45, Write: 0.25, ComputeGap: 6, Writeback: 0.25, SharedBlocks: 1024, PrivateBlocksPerTile: 256},
		// Radiosity: irregular task-queue sharing, low miss rates.
		{Name: "Radiosity", OpsPerProc: 1500, L1Hit: 0.97, L2Hit: 0.75, Share: 0.60, Write: 0.20, ComputeGap: 8, Writeback: 0.15, SharedBlocks: 1024, PrivateBlocksPerTile: 256},
		// Ocean: nearest-neighbour grid sweeps over a huge working set —
		// the most network-intensive benchmark.
		{Name: "Ocean", OpsPerProc: 1500, L1Hit: 0.88, L2Hit: 0.45, Share: 0.50, Write: 0.35, ComputeGap: 3, Writeback: 0.40, SharedBlocks: 4096, PrivateBlocksPerTile: 512},
		// Raytrace: read-mostly shared scene data, irregular access.
		{Name: "Raytrace", OpsPerProc: 1500, L1Hit: 0.94, L2Hit: 0.60, Share: 0.75, Write: 0.10, ComputeGap: 5, Writeback: 0.10, SharedBlocks: 2048, PrivateBlocksPerTile: 256},
		// Radix: streaming permutation with heavy all-to-all writes.
		{Name: "Radix", OpsPerProc: 1500, L1Hit: 0.90, L2Hit: 0.40, Share: 0.60, Write: 0.45, ComputeGap: 3, Writeback: 0.45, SharedBlocks: 4096, PrivateBlocksPerTile: 512},
		// Water: small working set, mostly-private molecule data.
		{Name: "Water", OpsPerProc: 1500, L1Hit: 0.97, L2Hit: 0.80, Share: 0.40, Write: 0.25, ComputeGap: 8, Writeback: 0.10, SharedBlocks: 512, PrivateBlocksPerTile: 128},
		// FMM: tree-structured sharing, moderate miss rates.
		{Name: "FMM", OpsPerProc: 1500, L1Hit: 0.95, L2Hit: 0.65, Share: 0.55, Write: 0.20, ComputeGap: 6, Writeback: 0.20, SharedBlocks: 1024, PrivateBlocksPerTile: 256},
		// Barnes: octree walks with wide read sharing of body data.
		{Name: "Barnes", OpsPerProc: 1500, L1Hit: 0.94, L2Hit: 0.60, Share: 0.65, Write: 0.25, ComputeGap: 5, Writeback: 0.20, SharedBlocks: 2048, PrivateBlocksPerTile: 256},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
