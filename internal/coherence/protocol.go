package coherence

import "fmt"

// MsgType enumerates the MESI directory-protocol messages that travel the
// network.
type MsgType int

// Protocol message types.
const (
	// GetS requests a block for reading (requester → home).
	GetS MsgType = iota
	// GetM requests a block for writing (requester → home).
	GetM
	// Data carries a cache block (home/owner → requester, 5 flits).
	Data
	// FwdGetS asks a dirty owner to forward data and downgrade to S.
	FwdGetS
	// FwdGetM asks a dirty owner to forward data and invalidate.
	FwdGetM
	// Inv asks a sharer to invalidate (home → sharer).
	Inv
	// InvAck confirms an invalidation (sharer → requester).
	InvAck
	// Unblock tells the home the transaction completed (requester → home).
	Unblock
	// Put writes a dirty block back on eviction (owner → home, 5 flits).
	Put
	// PutAck confirms a writeback (home → evictor).
	PutAck
	// UpgAck grants a data-less write upgrade: the requester already holds
	// the block in shared state, so only ownership (plus any outstanding
	// invalidation acks) travels — one flit instead of a 5-flit Data.
	UpgAck
)

// String returns the message-type mnemonic.
func (t MsgType) String() string {
	switch t {
	case GetS:
		return "GetS"
	case GetM:
		return "GetM"
	case Data:
		return "Data"
	case FwdGetS:
		return "FwdGetS"
	case FwdGetM:
		return "FwdGetM"
	case Inv:
		return "Inv"
	case InvAck:
		return "InvAck"
	case Unblock:
		return "Unblock"
	case Put:
		return "Put"
	case PutAck:
		return "PutAck"
	case UpgAck:
		return "UpgAck"
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// Flits returns the message's packet size in flits.
func (t MsgType) Flits() int {
	if t == Data || t == Put {
		return DataFlits
	}
	return CtrlFlits
}

// message is one in-flight protocol message; the System maps packet IDs to
// messages so Sink deliveries can be dispatched.
type message struct {
	typ  MsgType
	addr uint64
	// from and to are tile/directory node indices.
	from, to int
	// requester is the tile the transaction serves (meaningful for
	// Fwd*/Inv, whose reply targets differ from their sender).
	requester int
	// acks is the invalidation-ack count carried by a Data reply for a
	// GetM over shared state.
	acks int
}

// dirState is a directory entry's stable MESI state (the requester-side
// E vs S distinction is irrelevant to network traffic, so E is folded into
// S — exclusive-clean replies generate the same messages).
type dirState int

const (
	dirInvalid dirState = iota
	dirShared
	dirModified
)

func (s dirState) String() string {
	switch s {
	case dirInvalid:
		return "I"
	case dirShared:
		return "S"
	case dirModified:
		return "M"
	}
	return "?"
}

// dirEntry is the directory's view of one block.
type dirEntry struct {
	state   dirState
	owner   int
	sharers map[int]bool
	// busy marks an in-flight transaction; further requests queue.
	busy bool
	// waiting holds requests that arrived while busy, FIFO.
	waiting []*message
}

func (e *dirEntry) addSharer(tile int) {
	if e.sharers == nil {
		e.sharers = make(map[int]bool, 4)
	}
	e.sharers[tile] = true
}

func (e *dirEntry) clearSharers() { e.sharers = nil }
