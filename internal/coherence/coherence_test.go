package coherence

import (
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/flit"
	"dxbar/internal/router"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
)

func TestProfilesComplete(t *testing.T) {
	profs := Profiles()
	if len(profs) != 9 {
		t.Fatalf("want 9 benchmark profiles, got %d", len(profs))
	}
	want := []string{"FFT", "LU", "Radiosity", "Ocean", "Raytrace", "Radix", "Water", "FMM", "Barnes"}
	for i, p := range profs {
		if p.Name != want[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name, want[i])
		}
		if p.L1Hit <= 0 || p.L1Hit >= 1 || p.L2Hit <= 0 || p.L2Hit >= 1 {
			t.Errorf("%s: hit rates out of (0,1)", p.Name)
		}
		if p.OpsPerProc <= 0 || p.ComputeGap <= 0 || p.SharedBlocks <= 0 {
			t.Errorf("%s: non-positive sizing", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("Ocean"); !ok || p.Name != "Ocean" {
		t.Error("ProfileByName(Ocean) failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile must not resolve")
	}
}

func TestMsgTypeStringAndFlits(t *testing.T) {
	if GetS.String() != "GetS" || Data.String() != "Data" || PutAck.String() != "PutAck" {
		t.Error("message names wrong")
	}
	if Data.Flits() != DataFlits || Put.Flits() != DataFlits {
		t.Error("data-bearing messages must be 5 flits")
	}
	for _, m := range []MsgType{GetS, GetM, FwdGetS, FwdGetM, Inv, InvAck, Unblock, PutAck, UpgAck} {
		if m.Flits() != CtrlFlits {
			t.Errorf("%v must be a single flit", m)
		}
	}
}

// tiny profile for fast protocol tests.
func tinyProfile() Profile {
	// Pools must comfortably exceed the MSHR depth or every dirty block is
	// permanently re-outstanding and writebacks can never pick a victim.
	return Profile{
		Name: "tiny", OpsPerProc: 50, L1Hit: 0.2, L2Hit: 0.2,
		Share: 0.7, Write: 0.5, ComputeGap: 2, Writeback: 0.5,
		SharedBlocks: 64, PrivateBlocksPerTile: 32,
	}
}

// runSystem wires a System into a DOR buffered network and runs it to
// completion.
func runSystem(t *testing.T, prof Profile, seed int64) (*System, *stats.Collector) {
	t.Helper()
	mesh := topology.MustMesh(4, 4)
	sys, err := NewSystem(mesh, prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	coll := stats.NewCollector(mesh.Nodes(), 0, 10_000_000)
	algo := routing.DOR{}
	eng, err := sim.New(sim.Config{
		Mesh: mesh, Meter: energy.NewMeter(), Stats: coll,
		Source: sys, Sink: sys, BufferDepth: 4, PreCycle: sys.PreCycle,
	}, func(env *sim.Env) sim.Router { return router.NewBuffered(env, algo, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !eng.RunUntil(sys.Quiesced, 2_000_000) {
		t.Fatalf("workload did not finish; outstanding=%d finished=%d",
			sys.OutstandingMessages(), sys.finished)
	}
	return sys, coll
}

func TestWorkloadCompletes(t *testing.T) {
	sys, coll := runSystem(t, tinyProfile(), 1)
	if sys.FinishCycle() == 0 {
		t.Error("finish cycle not recorded")
	}
	if coll.Results().Packets == 0 {
		t.Error("no network traffic generated")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a, _ := runSystem(t, tinyProfile(), 7)
	b, _ := runSystem(t, tinyProfile(), 7)
	if a.FinishCycle() != b.FinishCycle() {
		t.Errorf("same seed diverged: %d vs %d", a.FinishCycle(), b.FinishCycle())
	}
	for typ, n := range a.MsgCounts {
		if b.MsgCounts[typ] != n {
			t.Errorf("message count %v differs: %d vs %d", typ, n, b.MsgCounts[typ])
		}
	}
}

func TestProtocolMessageMix(t *testing.T) {
	sys, _ := runSystem(t, tinyProfile(), 3)
	mc := sys.MsgCounts
	// A write-heavy shared workload must exercise the full protocol.
	for _, typ := range []MsgType{GetS, GetM, Data, Unblock} {
		if mc[typ] == 0 {
			t.Errorf("no %v messages generated", typ)
		}
	}
	if mc[Inv] == 0 || mc[InvAck] == 0 {
		t.Error("shared writes must generate invalidations")
	}
	if mc[FwdGetS]+mc[FwdGetM] == 0 {
		t.Error("dirty sharing must generate forwards")
	}
	if mc[Put] == 0 || mc[PutAck] == 0 {
		t.Error("writebacks must flow")
	}
	// Every transaction unblocks exactly once: Unblock == GetS + GetM.
	if mc[Unblock] != mc[GetS]+mc[GetM] {
		t.Errorf("unblocks %d != requests %d", mc[Unblock], mc[GetS]+mc[GetM])
	}
	// Invariant: one grant per request — a 5-flit Data or a 1-flit UpgAck
	// (forwards substitute for the home's reply, never duplicate it).
	if mc[Data]+mc[UpgAck] != mc[GetS]+mc[GetM] {
		t.Errorf("grants %d != requests %d", mc[Data]+mc[UpgAck], mc[GetS]+mc[GetM])
	}
	// A read-then-write shared workload must exercise the upgrade path.
	if mc[UpgAck] == 0 {
		t.Error("expected data-less write upgrades")
	}
	// Put/PutAck pair up.
	if mc[Put] != mc[PutAck] {
		t.Errorf("puts %d != putacks %d", mc[Put], mc[PutAck])
	}
	// Inv/InvAck pair up.
	if mc[Inv] != mc[InvAck] {
		t.Errorf("invs %d != invacks %d", mc[Inv], mc[InvAck])
	}
}

func TestNoLeakedMessages(t *testing.T) {
	sys, _ := runSystem(t, tinyProfile(), 5)
	if sys.OutstandingMessages() != 0 {
		t.Errorf("%d protocol messages leaked", sys.OutstandingMessages())
	}
}

func TestDirectoryPlacement(t *testing.T) {
	mesh := topology.MustMesh(8, 8)
	sys, err := NewSystem(mesh, tinyProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.dirNodes) != NumDirectories {
		t.Fatalf("directories = %d, want %d", len(sys.dirNodes), NumDirectories)
	}
	seen := map[int]bool{}
	for _, n := range sys.dirNodes {
		if n < 0 || n >= mesh.Nodes() || seen[n] {
			t.Fatalf("bad directory node %d", n)
		}
		seen[n] = true
	}
	// Homes must cover every directory.
	homes := map[int]bool{}
	for a := uint64(0); a < 64; a++ {
		homes[sys.home(a)] = true
	}
	if len(homes) != NumDirectories {
		t.Errorf("address interleaving reaches %d homes, want %d", len(homes), NumDirectories)
	}
}

func TestMeshTooSmallRejected(t *testing.T) {
	mesh := topology.MustMesh(2, 2)
	if _, err := NewSystem(mesh, tinyProfile(), 1); err == nil {
		t.Error("4-node mesh cannot host 16 directories")
	}
}

func TestDeliverUnknownPacketPanics(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	sys, _ := NewSystem(mesh, tinyProfile(), 1)
	defer func() {
		if recover() == nil {
			t.Error("unknown delivery must panic")
		}
	}()
	sys.Deliver(flit.Packet{PacketID: 999}, 0)
}

func TestExecutionTimeScalesWithIntensity(t *testing.T) {
	cold := tinyProfile()
	cold.L1Hit = 0.99
	cold.L2Hit = 0.99
	hot := tinyProfile()
	hot.L1Hit = 0.10
	hot.L2Hit = 0.10
	sysCold, _ := runSystem(t, cold, 9)
	sysHot, _ := runSystem(t, hot, 9)
	if sysHot.FinishCycle() <= sysCold.FinishCycle() {
		t.Errorf("miss-heavy profile must run longer: hot=%d cold=%d",
			sysHot.FinishCycle(), sysCold.FinishCycle())
	}
}

func TestSharedVsPrivateAddressSpaces(t *testing.T) {
	mesh := topology.MustMesh(4, 4)
	sys, _ := NewSystem(mesh, tinyProfile(), 1)
	t0, t1 := sys.tiles[0], sys.tiles[1]
	for i := 0; i < 100; i++ {
		a0, a1 := sys.privateAddr(t0), sys.privateAddr(t1)
		if a0 == a1 {
			t.Fatal("private pools of different tiles must not collide")
		}
		if s := sys.sharedAddr(t0); s >= 1<<32 {
			t.Fatal("shared addresses must stay below the private range")
		}
	}
}
