package coherence

import (
	"fmt"
	"math/rand"
	"sort"

	"dxbar/internal/flit"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

// System is a closed-loop multiprocessor workload: it implements
// sim.Source (emitting protocol request packets), sim.Sink (consuming
// deliveries) and a PreCycle hook (advancing processors, directories and
// the latency event queue). Wire all three into sim.Config.
type System struct {
	mesh *topology.Mesh
	prof Profile

	tiles    []*tile
	dirNodes []int
	dirs     map[int]*directory

	msgs   map[uint64]*message
	outbox [][]*traffic.PacketSpec
	events map[uint64][]func(cycle uint64)

	nextPkt   uint64
	cycle     uint64
	finished  int
	doneCycle uint64

	// MsgCounts tallies sent messages by type (diagnostics and tests).
	MsgCounts map[MsgType]uint64
}

// tile is one processor + private cache hierarchy. The 2-issue in-order
// core overlaps misses through its MSHRs (Table I): it keeps issuing until
// MissConcurrency misses are outstanding, then stalls.
type tile struct {
	node           int
	opsLeft        int
	nextReadyCycle uint64

	// outstanding maps block address -> in-flight miss (MSHR entries).
	outstanding map[uint64]*miss
	finished    bool

	// Recently dirtied blocks eligible for writeback eviction
	// (probabilistic mode only).
	dirty []uint64

	// l1 and l2 are the real caches of detailed mode (nil otherwise).
	l1, l2 *Cache

	rng *rand.Rand
}

// miss is one outstanding MSHR entry.
type miss struct {
	addr         uint64
	home         int
	isWrite      bool
	dataArrived  bool
	expectedAcks int
	receivedAcks int
}

// MissConcurrency is the number of overlapped misses a tile sustains
// before stalling (hit-under-miss / miss-under-miss through the MSHRs).
const MissConcurrency = 16

// directory is one directory+memory controller.
type directory struct {
	node    int
	entries map[uint64]*dirEntry
}

func (d *directory) entry(addr uint64) *dirEntry {
	e, ok := d.entries[addr]
	if !ok {
		e = &dirEntry{state: dirInvalid}
		d.entries[addr] = e
	}
	return e
}

// NewSystem builds the workload over the given mesh. Every node hosts a
// processor tile; NumDirectories nodes (evenly spread) additionally host a
// directory+memory controller.
func NewSystem(mesh *topology.Mesh, prof Profile, seed int64) (*System, error) {
	n := mesh.Nodes()
	if n < NumDirectories {
		return nil, fmt.Errorf("coherence: mesh of %d nodes cannot host %d directories", n, NumDirectories)
	}
	s := &System{
		mesh:      mesh,
		prof:      prof,
		dirs:      make(map[int]*directory, NumDirectories),
		msgs:      make(map[uint64]*message),
		outbox:    make([][]*traffic.PacketSpec, n),
		events:    make(map[uint64][]func(uint64)),
		nextPkt:   1,
		MsgCounts: make(map[MsgType]uint64),
	}
	for i := 0; i < NumDirectories; i++ {
		node := i * n / NumDirectories
		s.dirNodes = append(s.dirNodes, node)
		s.dirs[node] = &directory{node: node, entries: make(map[uint64]*dirEntry)}
	}
	s.tiles = make([]*tile, n)
	for i := 0; i < n; i++ {
		t := &tile{
			node:           i,
			opsLeft:        prof.OpsPerProc,
			nextReadyCycle: uint64(i % 8), // stagger startup slightly
			outstanding:    make(map[uint64]*miss, MissConcurrency),
			rng:            rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		if prof.DetailedCaches {
			t.l1 = MustCache(L1Blocks, L1Ways)
			t.l2 = MustCache(L2Blocks, L2Ways)
		}
		s.tiles[i] = t
	}
	return s, nil
}

// home returns the directory node owning addr.
func (s *System) home(addr uint64) int {
	return s.dirNodes[addr%NumDirectories]
}

// sharedAddr and privateAddr partition the block address space: shared
// blocks live below 1<<32; each tile's private pool above it.
func (s *System) sharedAddr(t *tile) uint64 {
	return uint64(t.rng.Intn(s.poolScale() * s.prof.SharedBlocks))
}

func (s *System) privateAddr(t *tile) uint64 {
	return (1 << 32) + uint64(t.node)<<20 + uint64(t.rng.Intn(s.poolScale()*s.prof.PrivateBlocksPerTile))
}

// poolScale widens the address pools in detailed mode so working sets
// exceed the real cache capacities.
func (s *System) poolScale() int {
	if s.prof.DetailedCaches {
		return DetailedWorkingSetScale
	}
	return 1
}

// send queues a protocol message for injection at its source node.
func (s *System) send(typ MsgType, addr uint64, from, to, requester, acks int, cycle uint64) {
	if from == to {
		// Local delivery (e.g. a tile is its own home): dispatch directly
		// next cycle without touching the network.
		m := &message{typ: typ, addr: addr, from: from, to: to, requester: requester, acks: acks}
		s.MsgCounts[typ]++
		s.schedule(cycle+1, func(c uint64) { s.dispatch(m, c) })
		return
	}
	id := s.nextPkt
	s.nextPkt++
	m := &message{typ: typ, addr: addr, from: from, to: to, requester: requester, acks: acks}
	s.msgs[id] = m
	s.MsgCounts[typ]++
	kind := flit.Request
	switch typ {
	case Data, Put:
		kind = flit.Data
	case InvAck, PutAck, Unblock:
		kind = flit.Response
	}
	s.outbox[from] = append(s.outbox[from], &traffic.PacketSpec{
		ID:       id,
		Src:      from,
		Dst:      to,
		NumFlits: uint16(typ.Flits()),
		Kind:     kind,
		Cycle:    cycle,
	})
}

// schedule registers fn to run at the given cycle (>= next PreCycle).
func (s *System) schedule(at uint64, fn func(cycle uint64)) {
	if at <= s.cycle {
		at = s.cycle + 1
	}
	s.events[at] = append(s.events[at], fn)
}

// PreCycle advances the workload by one cycle: runs due events, then lets
// every ready processor issue its next memory operation.
func (s *System) PreCycle(cycle uint64) {
	s.cycle = cycle
	if evs, ok := s.events[cycle]; ok {
		delete(s.events, cycle)
		for _, fn := range evs {
			fn(cycle)
		}
	}
	for _, t := range s.tiles {
		s.tickTile(t, cycle)
	}
}

// tickTile issues at most one memory operation for the tile. Misses
// overlap through the MSHRs; the core stalls only when MissConcurrency
// misses are outstanding.
func (s *System) tickTile(t *tile, cycle uint64) {
	if t.opsLeft <= 0 || cycle < t.nextReadyCycle || len(t.outstanding) >= MissConcurrency {
		return
	}
	t.opsLeft--
	gap := uint64(1)
	if s.prof.ComputeGap > 0 {
		gap = uint64(t.rng.Intn(2*s.prof.ComputeGap) + 1) // mean ≈ ComputeGap
	}
	defer func() {
		if t.opsLeft == 0 && len(t.outstanding) == 0 {
			s.tileFinished(t)
		}
	}()
	// Hit/miss determination: emergent from real caches in detailed mode,
	// drawn from the profile rates otherwise. Both paths agree on the
	// access latencies charged into nextReadyCycle.
	var addr uint64
	isWrite := t.rng.Float64() < s.prof.Write
	if s.prof.DetailedCaches {
		if t.rng.Float64() < s.prof.Share {
			addr = s.sharedAddr(t)
		} else {
			addr = s.privateAddr(t)
		}
		if _, pending := t.outstanding[addr]; pending {
			// MSHR coalescing: the block is already on its way.
			t.nextReadyCycle = cycle + gap
			return
		}
		if t.l1.Access(addr, isWrite) {
			t.nextReadyCycle = cycle + gap
			return
		}
		if t.l2.Access(addr, isWrite) {
			// Inclusive fill into L1; a dirty L1 victim writes back into
			// the on-chip L2 silently.
			if ev := t.l1.Fill(addr, isWrite); ev.Valid && ev.Dirty {
				t.l2.MarkDirty(ev.Addr)
			}
			t.nextReadyCycle = cycle + gap + L2AccessLatency
			return
		}
		t.nextReadyCycle = cycle + gap
	} else {
		if t.rng.Float64() < s.prof.L1Hit {
			t.nextReadyCycle = cycle + gap
			return
		}
		if t.rng.Float64() < s.prof.L2Hit {
			t.nextReadyCycle = cycle + gap + L2AccessLatency
			return
		}
		// L2 miss: a directory transaction over the network.
		if t.rng.Float64() < s.prof.Share {
			addr = s.sharedAddr(t)
		} else {
			addr = s.privateAddr(t)
		}
		t.nextReadyCycle = cycle + gap
		if _, dup := t.outstanding[addr]; dup {
			// MSHR coalescing: the block is already on its way.
			return
		}
	}
	m := &miss{addr: addr, home: s.home(addr), isWrite: isWrite}
	t.outstanding[addr] = m
	typ := GetS
	if isWrite {
		typ = GetM
	}
	s.send(typ, addr, t.node, m.home, t.node, 0, cycle)

	// Capacity eviction (probabilistic mode): a dirty block leaves
	// alongside the miss. The victim is the oldest dirty block with no
	// outstanding miss (a block being refetched cannot be written back).
	// Detailed mode generates writebacks from real L2 evictions instead
	// (see maybeCompleteMiss).
	if !s.prof.DetailedCaches && len(t.dirty) > 0 && t.rng.Float64() < s.prof.Writeback {
		for i, victim := range t.dirty {
			if _, pending := t.outstanding[victim]; pending {
				continue
			}
			t.dirty = append(t.dirty[:i], t.dirty[i+1:]...)
			s.send(Put, victim, t.node, s.home(victim), t.node, 0, cycle)
			break
		}
	}
}

func (s *System) tileFinished(t *tile) {
	if t.finished {
		return
	}
	t.finished = true
	s.finished++
	if s.finished == len(s.tiles) && s.doneCycle == 0 {
		s.doneCycle = s.cycle
	}
}

// Generate implements sim.Source: drains the node's outbox.
func (s *System) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	out := s.outbox[node]
	s.outbox[node] = nil
	return out
}

// Deliver implements sim.Sink: a reassembled packet is a protocol message.
func (s *System) Deliver(p flit.Packet, cycle uint64) {
	m, ok := s.msgs[p.PacketID]
	if !ok {
		panic(fmt.Sprintf("coherence: delivery for unknown packet %d", p.PacketID))
	}
	delete(s.msgs, p.PacketID)
	s.dispatch(m, cycle)
}

// dispatch routes a protocol message to its destination agent.
func (s *System) dispatch(m *message, cycle uint64) {
	switch m.typ {
	case GetS, GetM:
		s.dirRequest(m, cycle)
	case Put:
		s.dirPut(m, cycle)
	case Unblock:
		s.dirUnblock(m, cycle)
	case FwdGetS, FwdGetM:
		// The owner tile forwards the block straight to the requester.
		s.send(Data, m.addr, m.to, m.requester, m.requester, 0, cycle)
	case Inv:
		// The sharer invalidates and acks the requester directly. In
		// detailed mode the real caches drop the block.
		if s.prof.DetailedCaches {
			t := s.tiles[m.to]
			t.l1.Invalidate(m.addr)
			t.l2.Invalidate(m.addr)
		}
		s.send(InvAck, m.addr, m.to, m.requester, m.requester, 0, cycle)
	case Data, UpgAck:
		t := s.tiles[m.to]
		if ms, ok := t.outstanding[m.addr]; ok {
			ms.dataArrived = true
			ms.expectedAcks = m.acks
			s.maybeCompleteMiss(t, ms, cycle)
		}
	case InvAck:
		t := s.tiles[m.to]
		if ms, ok := t.outstanding[m.addr]; ok {
			ms.receivedAcks++
			s.maybeCompleteMiss(t, ms, cycle)
		}
	case PutAck:
		// Writebacks are fire-and-forget for the tile.
	default:
		panic(fmt.Sprintf("coherence: unhandled message %v", m.typ))
	}
}

// maybeCompleteMiss retires an MSHR entry once its data and all
// invalidation acks have arrived.
func (s *System) maybeCompleteMiss(t *tile, ms *miss, cycle uint64) {
	if !ms.dataArrived || ms.receivedAcks < ms.expectedAcks {
		return
	}
	delete(t.outstanding, ms.addr)
	s.send(Unblock, ms.addr, t.node, ms.home, t.node, 0, cycle)
	if s.prof.DetailedCaches {
		// Fill the real hierarchy; a dirty L2 victim generates a genuine
		// writeback, and inclusion evicts it from L1 too.
		if ev := t.l2.Fill(ms.addr, ms.isWrite); ev.Valid {
			t.l1.Invalidate(ev.Addr)
			if ev.Dirty {
				s.send(Put, ev.Addr, t.node, s.home(ev.Addr), t.node, 0, cycle)
			}
		}
		if ev := t.l1.Fill(ms.addr, ms.isWrite); ev.Valid && ev.Dirty {
			t.l2.MarkDirty(ev.Addr)
		}
	} else if ms.isWrite {
		t.dirty = append(t.dirty, ms.addr)
		if len(t.dirty) > MSHREntries {
			t.dirty = t.dirty[1:]
		}
	}
	if t.opsLeft == 0 && len(t.outstanding) == 0 {
		s.tileFinished(t)
	}
}

// dirRequest handles GetS/GetM at the home, honouring the busy bit and the
// directory access latency.
func (s *System) dirRequest(m *message, cycle uint64) {
	d := s.dirs[m.to]
	if d == nil {
		panic(fmt.Sprintf("coherence: node %d is not a directory", m.to))
	}
	e := d.entry(m.addr)
	if e.busy {
		e.waiting = append(e.waiting, m)
		return
	}
	e.busy = true
	s.schedule(cycle+DirectoryLatency, func(c uint64) { s.dirProcess(d, e, m, c) })
}

// dirProcess performs the state transition after the directory access.
func (s *System) dirProcess(d *directory, e *dirEntry, m *message, cycle uint64) {
	req := m.requester
	switch {
	case m.typ == GetS && e.state == dirInvalid:
		// Fetch from memory, reply, requester becomes a sharer.
		s.schedule(cycle+MemoryLatency, func(c uint64) {
			s.send(Data, m.addr, d.node, req, req, 0, c)
		})
		e.state = dirShared
		e.addSharer(req)
	case m.typ == GetS && e.state == dirShared:
		s.schedule(cycle+MemoryLatency, func(c uint64) {
			s.send(Data, m.addr, d.node, req, req, 0, c)
		})
		e.addSharer(req)
	case m.typ == GetS && e.state == dirModified:
		// MOESI-style: the dirty owner forwards data and stays owner; the
		// requester joins the sharer set.
		s.send(FwdGetS, m.addr, d.node, e.owner, req, 0, cycle)
		e.addSharer(req)
	case m.typ == GetM && e.state == dirInvalid:
		s.schedule(cycle+MemoryLatency, func(c uint64) {
			s.send(Data, m.addr, d.node, req, req, 0, c)
		})
		e.state = dirModified
		e.owner = req
		e.clearSharers()
	case m.typ == GetM && e.state == dirShared:
		// Invalidations go out in sorted sharer order: map iteration order
		// would otherwise leak nondeterminism into packet timing.
		requesterShares := e.sharers[req]
		sharers := make([]int, 0, len(e.sharers))
		for sh := range e.sharers {
			if sh != req {
				sharers = append(sharers, sh)
			}
		}
		sort.Ints(sharers)
		acks := len(sharers)
		for _, sh := range sharers {
			s.send(Inv, m.addr, d.node, sh, req, 0, cycle)
		}
		if requesterShares {
			// Write upgrade: the requester already holds the data, so the
			// grant is a single-flit UpgAck and skips the memory fetch.
			s.send(UpgAck, m.addr, d.node, req, req, acks, cycle)
		} else {
			s.schedule(cycle+MemoryLatency, func(c uint64) {
				s.send(Data, m.addr, d.node, req, req, acks, c)
			})
		}
		e.state = dirModified
		e.owner = req
		e.clearSharers()
	case m.typ == GetM && e.state == dirModified:
		if e.owner == req {
			// Upgrade after a lost writeback race: serve from memory.
			s.schedule(cycle+MemoryLatency, func(c uint64) {
				s.send(Data, m.addr, d.node, req, req, 0, c)
			})
		} else {
			s.send(FwdGetM, m.addr, d.node, e.owner, req, 0, cycle)
		}
		e.owner = req
		e.clearSharers()
	default:
		panic(fmt.Sprintf("coherence: impossible request %v in state %v", m.typ, e.state))
	}
}

// dirUnblock completes a transaction and wakes one queued request.
func (s *System) dirUnblock(m *message, cycle uint64) {
	d := s.dirs[m.to]
	e := d.entry(m.addr)
	e.busy = false
	if len(e.waiting) > 0 {
		next := e.waiting[0]
		e.waiting = e.waiting[1:]
		e.busy = true
		s.schedule(cycle+DirectoryLatency, func(c uint64) { s.dirProcess(d, e, next, c) })
	}
}

// dirPut handles a writeback at the home.
func (s *System) dirPut(m *message, cycle uint64) {
	d := s.dirs[m.to]
	e := d.entry(m.addr)
	s.schedule(cycle+DirectoryLatency, func(c uint64) {
		if e.state == dirModified && e.owner == m.from && !e.busy {
			e.state = dirInvalid
			e.clearSharers()
		}
		s.send(PutAck, m.addr, d.node, m.from, m.from, 0, c)
	})
}

// Done reports whether every tile has completed its operation budget (the
// execution-time end point; fire-and-forget writebacks may still drain).
func (s *System) Done() bool { return s.finished == len(s.tiles) }

// Quiesced reports whether the workload is done *and* every in-flight
// protocol message and scheduled event has drained.
func (s *System) Quiesced() bool {
	if !s.Done() || len(s.msgs) != 0 || len(s.events) != 0 {
		return false
	}
	for _, ob := range s.outbox {
		if len(ob) != 0 {
			return false
		}
	}
	return true
}

// FinishCycle returns the cycle at which the last tile finished (0 until
// Done).
func (s *System) FinishCycle() uint64 { return s.doneCycle }

// OutstandingMessages returns in-flight protocol messages (drain checks).
func (s *System) OutstandingMessages() int { return len(s.msgs) }

// Profile returns the workload's benchmark profile.
func (s *System) Profile() Profile { return s.prof }
