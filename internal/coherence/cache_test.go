package coherence

import (
	"testing"
	"testing/quick"
)

func TestCacheGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {16, 0}, {15, 4}, {-8, 2}} {
		if _, err := NewCache(bad[0], bad[1]); err == nil {
			t.Errorf("NewCache(%d,%d) must fail", bad[0], bad[1])
		}
	}
	if _, err := NewCache(16, 4); err != nil {
		t.Errorf("valid geometry failed: %v", err)
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := MustCache(16, 4)
	if c.Access(100, false) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(100, false)
	if !c.Access(100, false) {
		t.Fatal("filled block must hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("counters = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped-per-set behaviour: 4 sets × 2 ways. Addresses 0, 4, 8
	// map to set 0.
	c := MustCache(8, 2)
	c.Fill(0, false)
	c.Fill(4, false)
	c.Access(0, false) // 0 is now MRU; 4 is LRU
	ev := c.Fill(8, false)
	if !ev.Valid || ev.Addr != 4 {
		t.Fatalf("LRU victim = %+v, want addr 4", ev)
	}
	if !c.Contains(0) || !c.Contains(8) || c.Contains(4) {
		t.Error("post-eviction residency wrong")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := MustCache(4, 2) // 2 sets × 2 ways; even addrs -> set 0
	c.Fill(0, true)      // dirty
	c.Fill(2, false)
	ev := c.Fill(4, false) // evicts 0 (LRU)
	if !ev.Valid || ev.Addr != 0 || !ev.Dirty {
		t.Fatalf("dirty eviction = %+v", ev)
	}
	ev2 := c.Fill(6, false) // evicts 2, clean
	if ev2.Dirty {
		t.Error("clean victim reported dirty")
	}
}

func TestCacheWriteMakesDirty(t *testing.T) {
	c := MustCache(4, 2)
	c.Fill(0, false)
	c.Access(0, true) // write hit dirties
	if _, dirty := c.Invalidate(0); !dirty {
		t.Error("write hit must dirty the block")
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c := MustCache(4, 2)
	c.Fill(0, false)
	c.MarkDirty(0)
	if _, dirty := c.Invalidate(0); !dirty {
		t.Error("MarkDirty must set the bit")
	}
	c.MarkDirty(999) // absent: no-op, no panic
}

func TestCacheInvalidate(t *testing.T) {
	c := MustCache(4, 2)
	c.Fill(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Error("invalidate must report presence and dirtiness")
	}
	if present, _ := c.Invalidate(0); present {
		t.Error("double invalidate must report absence")
	}
	if c.Contains(0) {
		t.Error("invalidated block still resident")
	}
}

func TestCacheDoubleFillPanics(t *testing.T) {
	c := MustCache(4, 2)
	c.Fill(0, false)
	defer func() {
		if recover() == nil {
			t.Error("double fill must panic")
		}
	}()
	c.Fill(0, false)
}

func TestCacheHitRate(t *testing.T) {
	c := MustCache(16, 4)
	if c.HitRate() != 0 {
		t.Error("unused cache hit rate must be 0")
	}
	c.Access(1, false)
	c.Fill(1, false)
	c.Access(1, false)
	c.Access(1, false)
	if got := c.HitRate(); got != 2.0/3.0 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
}

// Property: a cache never holds more blocks than its capacity, and a block
// just filled is always resident until evicted by a fill in its own set.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustCache(16, 4)
		resident := map[uint64]bool{}
		for _, a := range addrs {
			addr := uint64(a % 64)
			if c.Access(addr, false) {
				if !resident[addr] {
					return false // hit on non-resident block
				}
				continue
			}
			if resident[addr] {
				return false // miss on resident block
			}
			ev := c.Fill(addr, false)
			if ev.Valid {
				delete(resident, ev.Addr)
			}
			resident[addr] = true
			if len(resident) > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Detailed mode end to end: the workload completes, hit rates emerge in a
// plausible band, and real evictions generate Put traffic.
func TestDetailedModeWorkload(t *testing.T) {
	prof := tinyProfile().Detailed()
	// Enough references per tile to overflow the scaled L2 (1024 blocks)
	// and force real capacity evictions.
	prof.OpsPerProc = 2500
	sys, _ := runSystem(t, prof, 21)
	if sys.MsgCounts[Put] == 0 {
		t.Error("detailed mode must generate real writebacks")
	}
	// Emergent hit rates must be sane (0 < rate < 1) on every tile that
	// issued accesses.
	for _, tl := range sys.tiles {
		if tl.l1.Hits+tl.l1.Misses == 0 {
			continue
		}
		if r := tl.l1.HitRate(); r <= 0 || r >= 1 {
			t.Fatalf("tile %d L1 hit rate %v implausible", tl.node, r)
		}
	}
}

func TestDetailedModeDeterministic(t *testing.T) {
	prof := tinyProfile().Detailed()
	prof.OpsPerProc = 200
	a, _ := runSystem(t, prof, 33)
	b, _ := runSystem(t, prof, 33)
	if a.FinishCycle() != b.FinishCycle() {
		t.Errorf("detailed runs diverged: %d vs %d", a.FinishCycle(), b.FinishCycle())
	}
}

func TestDetailedModeInvalidationsHitCaches(t *testing.T) {
	prof := tinyProfile().Detailed()
	prof.Write = 0.6
	prof.Share = 0.9
	prof.OpsPerProc = 300
	sys, _ := runSystem(t, prof, 41)
	if sys.MsgCounts[Inv] == 0 {
		t.Skip("no invalidations generated in this configuration")
	}
	// Inv/InvAck pairing must still hold with real caches.
	if sys.MsgCounts[Inv] != sys.MsgCounts[InvAck] {
		t.Errorf("inv %d != invack %d", sys.MsgCounts[Inv], sys.MsgCounts[InvAck])
	}
}
