package coherence

import (
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/router"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
)

// BenchmarkWorkloadCycles measures coherence-substrate simulation speed
// (workload cycles per second on a 4x4 mesh).
func BenchmarkWorkloadCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mesh := topology.MustMesh(4, 4)
		prof := Profile{
			Name: "bench", OpsPerProc: 200, L1Hit: 0.7, L2Hit: 0.5,
			Share: 0.5, Write: 0.3, ComputeGap: 3, Writeback: 0.3,
			SharedBlocks: 256, PrivateBlocksPerTile: 64,
		}
		sys, err := NewSystem(mesh, prof, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		coll := stats.NewCollector(mesh.Nodes(), 0, 10_000_000)
		algo := routing.DOR{}
		eng, err := sim.New(sim.Config{
			Mesh: mesh, Meter: energy.NewMeter(), Stats: coll,
			Source: sys, Sink: sys, BufferDepth: 4, PreCycle: sys.PreCycle,
		}, func(env *sim.Env) sim.Router { return router.NewBuffered(env, algo, false) })
		if err != nil {
			b.Fatal(err)
		}
		if !eng.RunUntil(sys.Quiesced, 1_000_000) {
			b.Fatal("workload did not finish")
		}
	}
}
