package coherence

import "fmt"

// Cache is a set-associative, write-back, LRU cache model operating on
// block addresses (the simulator's unit is one 64 B cache block — Table I/II
// block size — so no offset/index arithmetic below block granularity is
// needed). It backs the coherence substrate's detailed mode, where L1/L2
// hit rates *emerge* from the benchmark's working set instead of being
// profile constants.
type Cache struct {
	sets, ways int

	tags  [][]uint64
	valid [][]bool
	dirty [][]bool
	stamp [][]uint64 // LRU timestamps

	clock uint64

	// Hits and Misses count Access outcomes (diagnostics and calibration
	// tests).
	Hits, Misses uint64
}

// NewCache builds a cache holding blocks total blocks with the given
// associativity. blocks must be a positive multiple of ways.
func NewCache(blocks, ways int) (*Cache, error) {
	if blocks <= 0 || ways <= 0 || blocks%ways != 0 {
		return nil, fmt.Errorf("coherence: invalid cache geometry %d blocks / %d ways", blocks, ways)
	}
	sets := blocks / ways
	c := &Cache{sets: sets, ways: ways}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.dirty = make([][]bool, sets)
	c.stamp = make([][]uint64, sets)
	for s := 0; s < sets; s++ {
		c.tags[s] = make([]uint64, ways)
		c.valid[s] = make([]bool, ways)
		c.dirty[s] = make([]bool, ways)
		c.stamp[s] = make([]uint64, ways)
	}
	return c, nil
}

// MustCache is NewCache for static configurations.
func MustCache(blocks, ways int) *Cache {
	c, err := NewCache(blocks, ways)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) set(addr uint64) int { return int(addr % uint64(c.sets)) }

func (c *Cache) find(addr uint64) (set, way int, ok bool) {
	s := c.set(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == addr {
			return s, w, true
		}
	}
	return s, -1, false
}

// Access looks up addr and updates LRU state and hit/miss counters. write
// marks the block dirty on a hit.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	s, w, ok := c.find(addr)
	if !ok {
		c.Misses++
		return false
	}
	c.Hits++
	c.stamp[s][w] = c.clock
	if write {
		c.dirty[s][w] = true
	}
	return true
}

// Contains reports residency without touching LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	_, _, ok := c.find(addr)
	return ok
}

// Eviction describes the victim displaced by a Fill.
type Eviction struct {
	Addr  uint64
	Dirty bool
	// Valid is false when the fill used an empty way.
	Valid bool
}

// Fill installs addr (marking it dirty when write), evicting the LRU way
// if the set is full. It must only be called after a missing Access
// (duplicate fills panic — they indicate a protocol bug).
func (c *Cache) Fill(addr uint64, write bool) Eviction {
	c.clock++
	s, _, ok := c.find(addr)
	if ok {
		panic("coherence: double fill")
	}
	victim := 0
	for w := 0; w < c.ways; w++ {
		if !c.valid[s][w] {
			victim = w
			goto install
		}
		if c.stamp[s][w] < c.stamp[s][victim] {
			victim = w
		}
	}
install:
	ev := Eviction{}
	if c.valid[s][victim] {
		ev = Eviction{Addr: c.tags[s][victim], Dirty: c.dirty[s][victim], Valid: true}
	}
	c.tags[s][victim] = addr
	c.valid[s][victim] = true
	c.dirty[s][victim] = write
	c.stamp[s][victim] = c.clock
	return ev
}

// MarkDirty sets the dirty bit if addr is resident (L1 writeback landing
// in L2).
func (c *Cache) MarkDirty(addr uint64) {
	if s, w, ok := c.find(addr); ok {
		c.dirty[s][w] = true
	}
}

// Invalidate removes addr, reporting whether it was resident and dirty.
func (c *Cache) Invalidate(addr uint64) (present, wasDirty bool) {
	s, w, ok := c.find(addr)
	if !ok {
		return false, false
	}
	c.valid[s][w] = false
	d := c.dirty[s][w]
	c.dirty[s][w] = false
	return true, d
}

// HitRate returns hits / (hits + misses), 0 when unused.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Detailed-mode cache geometries in 64 B blocks. Table I/II specify a
// 64 KB 4-way L1 (1024 blocks) and a 1 MB 16-way L2 (16384 blocks) against
// full benchmark runs of billions of references; our runs scale the
// instruction budget down by ~three orders of magnitude, so the capacities
// scale down with it — keeping the associativities and the
// capacity-to-working-set ratios, which is what determines miss rates and
// eviction traffic. (The paper itself scales its inputs to fit simulation:
// FFT 16K, Water 512, etc.)
const (
	// L1Blocks / L1Ways: scaled 4-way L1.
	L1Blocks = 64
	L1Ways   = 4
	// L2Blocks / L2Ways: scaled 16-way L2.
	L2Blocks = 1024
	L2Ways   = 16
	// DetailedWorkingSetScale multiplies the profile address pools in
	// detailed mode so working sets exceed the cache capacities the way
	// the paper's inputs exceed theirs (Ocean 258×258 ≈ 4.2 MB per grid
	// > the 1 MB L2).
	DetailedWorkingSetScale = 16
)
