package report

// This file exports flight-recorder event streams in the Chrome trace-event
// JSON format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// One process (pid 0) per run, one track (tid) per router; each recorded
// event is a 1-cycle duration slice, and the hops of a packet are linked
// with flow arrows so a single packet's journey can be followed across
// router tracks. Like the rest of the package, the types mirror the
// facade's shapes without importing the simulator.

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceFlitEvent is one flight-recorder event in simulator-neutral form.
type TraceFlitEvent struct {
	// Cycle is the simulation cycle the event happened on.
	Cycle uint64
	// Kind is the event kind name ("inject", "primary_win", "buffered", ...).
	Kind string
	// Node is the router the event happened at.
	Node int
	// Port is the port name involved ("" when not applicable).
	Port string
	// PacketID and FlitID identify the flit (0 for router-level events).
	PacketID uint64
	FlitID   uint64
	// Detail is the kind-specific payload (latency, occupancy, ...).
	Detail int32
	// PerFlit marks events that belong to a flit's journey; only these
	// participate in packet flow linking.
	PerFlit bool
}

// TraceRecord is one run's event stream plus the mesh dimensions used to
// name the per-router tracks.
type TraceRecord struct {
	// Series labels the run (design name, "DXbar WF", ...).
	Series string
	// Width and Height are the mesh dimensions (0 to skip coordinate
	// annotations in track names).
	Width, Height int
	// Events is the recorded stream in chronological order.
	Events []TraceFlitEvent
}

// chromeEvent is one entry of the trace-event array. Ph, Ts and Pid are
// emitted unconditionally (never omitempty): viewers and the golden schema
// test require them on every event, including metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object format (the array format is also
// legal but cannot carry metadata defaults).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes rec as Chrome trace-event JSON. The timestamp unit
// is one simulation cycle (rendered as 1 µs so Perfetto's zoom behaves).
// Output is deterministic for a given record: metadata events first, then
// the duration slices in input order, then the packet flow arrows grouped by
// packet in order of first appearance.
func WriteChromeTrace(w io.Writer, rec TraceRecord) error {
	trace := chromeTrace{DisplayTimeUnit: "ms"}

	// Process metadata and one thread per router that appears in the stream,
	// in node order.
	trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Ts: 0, Pid: 0,
		Args: map[string]any{"name": rec.Series},
	})
	maxNode := -1
	seen := map[int]bool{}
	for _, e := range rec.Events {
		if !seen[e.Node] {
			seen[e.Node] = true
			if e.Node > maxNode {
				maxNode = e.Node
			}
		}
	}
	for n := 0; n <= maxNode; n++ {
		if !seen[n] {
			continue
		}
		name := fmt.Sprintf("router %d", n)
		if rec.Width > 0 {
			name = fmt.Sprintf("router %d (%d,%d)", n, n%rec.Width, n/rec.Width)
		}
		trace.TraceEvents = append(trace.TraceEvents,
			chromeEvent{Name: "thread_name", Ph: "M", Ts: 0, Pid: 0, Tid: n,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Ts: 0, Pid: 0, Tid: n,
				Args: map[string]any{"sort_index": n}})
	}

	// Duration slices: one 1-cycle "X" event per recorded event.
	for _, e := range rec.Events {
		ce := chromeEvent{
			Name: e.Kind, Cat: e.Kind, Ph: "X", Ts: e.Cycle, Dur: 1,
			Pid: 0, Tid: e.Node,
			Args: map[string]any{"detail": e.Detail},
		}
		if e.PerFlit {
			ce.Args["packet"] = e.PacketID
			ce.Args["flit"] = e.FlitID
		}
		if e.Port != "" {
			ce.Args["port"] = e.Port
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}

	// Flow arrows: link the per-flit events of each packet (start "s",
	// steps "t", finish "f") so viewers draw the packet's path across
	// router tracks. Packets with fewer than two recorded events have no
	// path to draw.
	byPacket := map[uint64][]TraceFlitEvent{}
	var order []uint64
	for _, e := range rec.Events {
		if !e.PerFlit || e.PacketID == 0 {
			continue
		}
		if _, ok := byPacket[e.PacketID]; !ok {
			order = append(order, e.PacketID)
		}
		byPacket[e.PacketID] = append(byPacket[e.PacketID], e)
	}
	for _, id := range order {
		hops := byPacket[id]
		if len(hops) < 2 {
			continue
		}
		for i, e := range hops {
			ce := chromeEvent{
				Name: "packet", Cat: "packet", Ts: e.Cycle,
				Pid: 0, Tid: e.Node, ID: id,
			}
			switch i {
			case 0:
				ce.Ph = "s"
			case len(hops) - 1:
				ce.Ph = "f"
				ce.BP = "e"
			default:
				ce.Ph = "t"
			}
			trace.TraceEvents = append(trace.TraceEvents, ce)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}
