package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// traceFixture is the hand-built record behind the golden file: one packet's
// three-router journey plus a router-level fairness flip.
func traceFixture() TraceRecord {
	return TraceRecord{
		Series: "dxbar uniform 0.30",
		Width:  2, Height: 2,
		Events: []TraceFlitEvent{
			{Cycle: 5, Kind: "inject", Node: 0, Port: "local", PacketID: 7, FlitID: 28, Detail: 2, PerFlit: true},
			{Cycle: 6, Kind: "primary_win", Node: 0, Port: "local", PacketID: 7, FlitID: 28, Detail: 1, PerFlit: true},
			{Cycle: 7, Kind: "buffered", Node: 1, Port: "west", PacketID: 7, FlitID: 28, Detail: 3, PerFlit: true},
			{Cycle: 9, Kind: "fairness_flip", Node: 1, Detail: 4},
			{Cycle: 10, Kind: "eject", Node: 3, Port: "local", PacketID: 7, FlitID: 28, Detail: 5, PerFlit: true},
		},
	}
}

// TestWriteChromeTraceGolden: the export is byte-identical to the checked-in
// golden file — any format drift (field order, indentation, metadata) is a
// deliberate change that must update the golden.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traceFixture()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "chrome_trace_golden.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceSchema: the export round-trips through encoding/json and
// every event carries the fields the Chrome trace-event format requires
// (ph, ts, pid), with sane phase-specific structure.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traceFixture()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		ph := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("duration event %d has no dur: %v", i, ev)
			}
		case "s", "t", "f":
			if _, ok := ev["id"]; !ok {
				t.Errorf("flow event %d has no id: %v", i, ev)
			}
		case "M":
		default:
			t.Errorf("event %d has unexpected phase %q", i, ph)
		}
	}

	// The fixture's single 4-hop packet yields one start, two steps, one
	// finish; its 5 events each yield one slice.
	if phases["X"] != 5 || phases["s"] != 1 || phases["t"] != 2 || phases["f"] != 1 {
		t.Errorf("phase counts = %v, want X:5 s:1 t:2 f:1", phases)
	}
}

// TestChromeTraceNoFlowForSingletons: a packet with a single recorded event
// gets no flow arrows (nothing to link), and router-level events never do.
func TestChromeTraceNoFlowForSingletons(t *testing.T) {
	rec := TraceRecord{
		Series: "x",
		Events: []TraceFlitEvent{
			{Cycle: 1, Kind: "inject", Node: 0, PacketID: 3, FlitID: 12, PerFlit: true},
			{Cycle: 2, Kind: "swap", Node: 1, Detail: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if ph := ev["ph"].(string); ph == "s" || ph == "t" || ph == "f" {
			t.Errorf("unexpected flow event: %v", ev)
		}
	}
}
