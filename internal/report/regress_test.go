package report

import (
	"strconv"
	"strings"
	"testing"
)

func benchJSON(date, label string, dxbarNs float64) string {
	return `{
	  "schema": 1, "date": "` + date + `", "label": "` + label + `", "go": "go1.22",
	  "config": {"width": 8, "load": 0.3},
	  "designs": {
	    "dxbar":   {"ns_per_cycle": ` + formatF(dxbarNs) + `, "allocs_per_cycle": 10, "bytes_per_cycle": 1000, "flits_per_sec": 250000, "cycles": 2000},
	    "unified": {"ns_per_cycle": 70000, "allocs_per_cycle": 12, "bytes_per_cycle": 1200, "flits_per_sec": 230000, "cycles": 2000}
	  }
	}`
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func TestParseBenchRecord(t *testing.T) {
	r, err := ParseBenchRecord([]byte(benchJSON("2026-08-01T00:00:00Z", "a", 60000)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Designs["dxbar"].NsPerCycle != 60000 || r.Label != "a" {
		t.Fatalf("parsed %+v", r)
	}
	if _, err := ParseBenchRecord([]byte(`{"schema": 99, "designs": {"x": {}}}`)); err == nil {
		t.Error("schema 99 accepted")
	}
	if _, err := ParseBenchRecord([]byte(`{"schema": 1}`)); err == nil {
		t.Error("designless record accepted")
	}
}

func TestRecordKind(t *testing.T) {
	for payload, want := range map[string]string{
		benchJSON("d", "l", 1):                  "bench",
		`{"schema":2,"points":[{"width":16}]}`:  "scale",
		`{"schema":1,"key":"abc","kind":"run"}`: "ledger",
		`{"something":"else"}`:                  "",
		`not json`:                              "",
	} {
		if got := RecordKind([]byte(payload)); got != want {
			t.Errorf("RecordKind(%.40q) = %q, want %q", payload, got, want)
		}
	}
}

func TestDiffBenchClassification(t *testing.T) {
	oldR, _ := ParseBenchRecord([]byte(benchJSON("2026-08-01T00:00:00Z", "old", 60000)))
	// dxbar worsens 10% (beyond the 5% noise floor); unified is unchanged.
	newR, _ := ParseBenchRecord([]byte(benchJSON("2026-08-02T00:00:00Z", "new", 66000)))
	d := DiffBench(oldR, newR, 5)
	if d.ConfigChanged {
		t.Error("identical configs reported as changed")
	}
	if got := d.Regressions(); got != 1 {
		t.Fatalf("Regressions() = %d, want 1", got)
	}
	var dx DesignDiff
	for _, dd := range d.Designs {
		if dd.Design == "dxbar" {
			dx = dd
		}
	}
	if !dx.Deltas[0].Regression || dx.Deltas[0].Name != "ns/cycle" {
		t.Errorf("dxbar ns/cycle +10%% not classified as regression: %+v", dx.Deltas[0])
	}

	// The same movement under a 15% threshold is noise.
	if d := DiffBench(oldR, newR, 15); d.Regressions() != 0 {
		t.Error("movement within noise classified as regression")
	}

	// An improvement in a higher-is-better metric is not a regression.
	faster := *newR
	faster.Designs = map[string]BenchDesign{"dxbar": {NsPerCycle: 60000, FlitsPerSec: 500000}}
	d = DiffBench(oldR, &faster, 5)
	for _, dd := range d.Designs {
		for _, m := range dd.Deltas {
			if m.Name == "flits/s" && !m.Improvement {
				t.Errorf("flits/s doubling not an improvement: %+v", m)
			}
		}
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "unified" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
}

func TestDiffBenchMarkdown(t *testing.T) {
	oldR, _ := ParseBenchRecord([]byte(benchJSON("2026-08-01T00:00:00Z", "old", 60000)))
	newR, _ := ParseBenchRecord([]byte(benchJSON("2026-08-02T00:00:00Z", "new", 66000)))
	var b strings.Builder
	if err := DiffBench(oldR, newR, 5).WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"## Bench diff: old → new", "**regression**", "dxbar", "+10.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown is missing %q\n%s", want, out)
		}
	}

	// Config drift must be called out.
	changed, _ := ParseBenchRecord([]byte(strings.Replace(
		benchJSON("2026-08-03T00:00:00Z", "cfg", 60000), `"load": 0.3`, `"load": 0.5`, 1)))
	b.Reset()
	_ = DiffBench(oldR, changed, 5).WriteMarkdown(&b)
	if !strings.Contains(b.String(), "bench configs differ") {
		t.Error("config drift not flagged in markdown")
	}
}

func TestFlattenAndDiffRun(t *testing.T) {
	oldM, err := FlattenResultMetrics([]byte(`{
	  "P99Latency": 41, "AvgEnergyNJ": 1.5, "Design": "dxbar",
	  "Power": {"TotalMW": 12.5, "LeakageMW": 3.25},
	  "TimeSeries": [1, 2, 3]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if oldM["P99Latency"] != 41 || oldM["Power.TotalMW"] != 12.5 {
		t.Fatalf("flattened %v", oldM)
	}
	if _, ok := oldM["Design"]; ok {
		t.Error("string field leaked into metric set")
	}
	if _, ok := oldM["TimeSeries"]; ok {
		t.Error("array field leaked into metric set")
	}

	same := map[string]float64{"P99Latency": 41, "AvgEnergyNJ": 1.5, "Power.TotalMW": 12.5, "Power.LeakageMW": 3.25}
	if d := DiffRun("a", "b", oldM, same); !d.Identical() {
		t.Errorf("identical metric sets diffed: %+v", d)
	}

	moved := map[string]float64{"P99Latency": 43, "AvgEnergyNJ": 1.5, "Power.TotalMW": 12.5, "NewMetric": 7}
	d := DiffRun("a", "b", oldM, moved)
	if d.Identical() {
		t.Fatal("changed metrics reported identical")
	}
	if len(d.Changed) != 1 || d.Changed[0].Name != "P99Latency" || d.Changed[0].New != 43 {
		t.Errorf("Changed = %+v", d.Changed)
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "Power.LeakageMW" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "NewMetric" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}

	var b strings.Builder
	if err := d.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P99Latency", "`Power.LeakageMW`", "`NewMetric`"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("run-diff markdown missing %q\n%s", want, b.String())
		}
	}
	b.Reset()
	_ = DiffRun("a", "b", oldM, same).WriteMarkdown(&b)
	if !strings.Contains(b.String(), "identical") {
		t.Error("identical diff markdown lacks the identical note")
	}
}

func TestBenchTrendTableChronology(t *testing.T) {
	r1, _ := ParseBenchRecord([]byte(benchJSON("2026-08-05T00:00:00Z", "later", 61000)))
	r2, _ := ParseBenchRecord([]byte(benchJSON("2026-08-01T00:00:00Z", "earlier", 60000)))
	tab := BenchTrendTable([]*BenchRecord{r1, r2}) // unsorted input
	if len(tab.Rows) != 2 || tab.Rows[0][1] != "earlier" || tab.Rows[1][1] != "later" {
		t.Fatalf("rows not chronological: %v", tab.Rows)
	}
	if tab.Columns[2] != "dxbar" || tab.Columns[3] != "unified" {
		t.Errorf("design columns = %v", tab.Columns)
	}
}

func TestScaleTrendTable(t *testing.T) {
	a, _ := ParseScaleRecord([]byte(`{"schema":2,"date":"2026-08-05T00:00:00Z","points":[
	  {"width":32,"height":32,"load":0.1,"shards_effective":4,"ns_per_cycle_seq":200,"ns_per_cycle_sharded":100}]}`))
	b, _ := ParseScaleRecord([]byte(`{"schema":2,"date":"2026-08-01T00:00:00Z","points":[
	  {"width":16,"height":16,"load":0.15,"shards_effective":1,"ns_per_cycle_seq":50,"ns_per_cycle_sharded":0}]}`))
	tab := ScaleTrendTable([]*ScaleRecord{a, b})
	if len(tab.Rows) != 2 || tab.Rows[0][1] != "16x16" || tab.Rows[1][1] != "32x32" {
		t.Fatalf("rows not chronological: %v", tab.Rows)
	}
	if tab.Rows[1][6] != "2.00×" {
		t.Errorf("speedup cell = %q, want 2.00×", tab.Rows[1][6])
	}
	if tab.Rows[0][6] != "–" {
		t.Errorf("unsharded speedup cell = %q, want –", tab.Rows[0][6])
	}
	if _, err := ParseScaleRecord([]byte(`{"schema":7}`)); err == nil {
		t.Error("scale schema 7 accepted")
	}
}
