package report

// This file is the structured observability export: latency histograms and
// time-series snapshots as NDJSON (one JSON object per line, streamable into
// jq-style tooling) and long-format CSV (spreadsheet/plotting friendly),
// plus the per-design latency comparison table. Like the rest of the
// package, the types here mirror the facade's shapes without importing the
// simulator.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ExportSchema versions the structured export shapes (NDJSON objects and
// CSV column sets) below. Consumers should reject a schema they don't know;
// bump it on any field rename, removal, or meaning change.
const ExportSchema = 1

// HistogramBucket is one non-empty latency bin.
type HistogramBucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// HistogramRecord is one run's latency distribution with its summary
// percentiles and truncation indicator.
type HistogramRecord struct {
	// Schema is the export schema version (ExportSchema); the writers stamp
	// it when zero.
	Schema int `json:"schema"`
	// Series labels the run (design name, "DXbar WF", ...).
	Series string `json:"series"`
	// Load is the offered load the run was driven at (0 when not a load
	// sweep point).
	Load     float64           `json:"load"`
	Packets  uint64            `json:"packets"`
	InFlight uint64            `json:"in_flight"`
	P50      uint64            `json:"p50"`
	P90      uint64            `json:"p90"`
	P99      uint64            `json:"p99"`
	Max      uint64            `json:"max"`
	Buckets  []HistogramBucket `json:"buckets"`
}

// WriteHistogramsNDJSON writes one JSON object per record, each stamped
// with the export schema version.
func WriteHistogramsNDJSON(w io.Writer, recs []HistogramRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if r.Schema == 0 {
			r.Schema = ExportSchema
		}
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteHistogramsCSV writes long-format CSV: one row per bucket, with the
// run's summary columns repeated (schema,series,load,packets,in_flight,p50,
// p90,p99,max,bucket_low,bucket_high,count).
func WriteHistogramsCSV(w io.Writer, recs []HistogramRecord) error {
	cw := csv.NewWriter(w)
	head := []string{"schema", "series", "load", "packets", "in_flight", "p50", "p90", "p99", "max",
		"bucket_low", "bucket_high", "count"}
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, r := range recs {
		if r.Schema == 0 {
			r.Schema = ExportSchema
		}
		for _, b := range r.Buckets {
			rec := []string{
				strconv.Itoa(r.Schema),
				r.Series,
				strconv.FormatFloat(r.Load, 'f', 3, 64),
				strconv.FormatUint(r.Packets, 10),
				strconv.FormatUint(r.InFlight, 10),
				strconv.FormatUint(r.P50, 10),
				strconv.FormatUint(r.P90, 10),
				strconv.FormatUint(r.P99, 10),
				strconv.FormatUint(r.Max, 10),
				strconv.FormatUint(b.Low, 10),
				strconv.FormatUint(b.High, 10),
				strconv.FormatUint(b.Count, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimeSample is one periodic snapshot row.
type TimeSample struct {
	Cycle         uint64 `json:"cycle"`
	InjectedFlits uint64 `json:"injected_flits"`
	EjectedFlits  uint64 `json:"ejected_flits"`
	InFlightFlits int    `json:"in_flight_flits"`
	QueuedFlits   int    `json:"queued_flits"`
	BufferedFlits int    `json:"buffered_flits"`
}

// TimeSeriesRecord is one run's sampled time series.
type TimeSeriesRecord struct {
	// Schema is the export schema version (ExportSchema); the writers stamp
	// it when zero.
	Schema   int          `json:"schema"`
	Series   string       `json:"series"`
	Interval uint64       `json:"interval"`
	Samples  []TimeSample `json:"samples"`
}

// timeSampleLine is the flattened NDJSON shape: one line per sample.
type timeSampleLine struct {
	Schema   int    `json:"schema"`
	Series   string `json:"series"`
	Interval uint64 `json:"interval"`
	TimeSample
}

// WriteTimeSeriesNDJSON writes one JSON object per sample (flattened with
// the schema version and series label so each line is self-describing).
func WriteTimeSeriesNDJSON(w io.Writer, recs []TimeSeriesRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if r.Schema == 0 {
			r.Schema = ExportSchema
		}
		for _, s := range r.Samples {
			if err := enc.Encode(timeSampleLine{Schema: r.Schema, Series: r.Series, Interval: r.Interval, TimeSample: s}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTimeSeriesCSV writes long-format CSV: schema,series,cycle,
// injected_flits,ejected_flits,in_flight_flits,queued_flits,buffered_flits.
func WriteTimeSeriesCSV(w io.Writer, recs []TimeSeriesRecord) error {
	cw := csv.NewWriter(w)
	head := []string{"schema", "series", "cycle", "injected_flits", "ejected_flits",
		"in_flight_flits", "queued_flits", "buffered_flits"}
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, r := range recs {
		if r.Schema == 0 {
			r.Schema = ExportSchema
		}
		for _, s := range r.Samples {
			rec := []string{
				strconv.Itoa(r.Schema),
				r.Series,
				strconv.FormatUint(s.Cycle, 10),
				strconv.FormatUint(s.InjectedFlits, 10),
				strconv.FormatUint(s.EjectedFlits, 10),
				strconv.Itoa(s.InFlightFlits),
				strconv.Itoa(s.QueuedFlits),
				strconv.Itoa(s.BufferedFlits),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ShardProfileRow is one shard of the parallel engine's execution profile.
type ShardProfileRow struct {
	Shard int
	// Nodes is the number of mesh nodes in the shard's tile.
	Nodes int
	// BusySeconds and WaitSeconds are the shard's cumulative router-phase
	// execution and barrier-wait times.
	BusySeconds float64
	WaitSeconds float64
}

// ShardProfileTable formats an execution profile as a Table: per-shard busy
// and wait times, each shard's busy share of the total, and a summary
// imbalance line (max/mean busy time) in the title. Render with WriteTable*.
func ShardProfileTable(title string, rows []ShardProfileRow) Table {
	t := Table{
		Title:   title,
		Columns: []string{"shard", "nodes", "busy", "barrier wait", "busy share"},
	}
	var total, max float64
	for _, r := range rows {
		total += r.BusySeconds
		if r.BusySeconds > max {
			max = r.BusySeconds
		}
	}
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = r.BusySeconds / total
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(r.Shard),
			strconv.Itoa(r.Nodes),
			fmt.Sprintf("%.1fms", r.BusySeconds*1000),
			fmt.Sprintf("%.1fms", r.WaitSeconds*1000),
			fmt.Sprintf("%.1f%%", share*100),
		})
	}
	if len(rows) > 0 && total > 0 {
		t.Title += fmt.Sprintf(" (imbalance %.2f = max/mean busy)",
			max*float64(len(rows))/total)
	}
	return t
}

// LatencyRow is one per-design latency comparison row (a slice of the
// load/latency space at one operating point).
type LatencyRow struct {
	Label      string
	Load       float64
	Packets    uint64
	AvgLatency float64
	P50        uint64
	P90        uint64
	P99        uint64
	Max        uint64
	InFlight   uint64
}

// InFlightWarnFraction is the in-flight-to-completed ratio above which a
// run's latency figures are flagged as truncated.
const InFlightWarnFraction = 0.01

// Truncated reports whether the row's in-flight count is non-negligible:
// the slowest packets never completed, so the latency columns understate
// the true distribution.
func (r LatencyRow) Truncated() bool {
	if r.InFlight == 0 {
		return false
	}
	if r.Packets == 0 {
		return true
	}
	return float64(r.InFlight) >= InFlightWarnFraction*float64(r.Packets)
}

// LatencyTable formats latency rows as a Table, marking truncated rows with
// a trailing "†" on their in-flight cell. Render it with any WriteTable*.
func LatencyTable(title string, rows []LatencyRow) Table {
	t := Table{
		Title:   title,
		Columns: []string{"series", "load", "packets", "avg", "p50", "p90", "p99", "max", "in-flight"},
	}
	flagged := false
	for _, r := range rows {
		inflight := strconv.FormatUint(r.InFlight, 10)
		if r.Truncated() {
			inflight += " †"
			flagged = true
		}
		t.Rows = append(t.Rows, []string{
			r.Label,
			strconv.FormatFloat(r.Load, 'f', 2, 64),
			strconv.FormatUint(r.Packets, 10),
			strconv.FormatFloat(r.AvgLatency, 'f', 1, 64),
			strconv.FormatUint(r.P50, 10),
			strconv.FormatUint(r.P90, 10),
			strconv.FormatUint(r.P99, 10),
			strconv.FormatUint(r.Max, 10),
			inflight,
		})
	}
	if flagged {
		t.Title += fmt.Sprintf(" († ≥%.0f%% of packets still in flight at run end — latency tail truncated)",
			InFlightWarnFraction*100)
	}
	return t
}
