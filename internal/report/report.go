// Package report renders regenerated figures and tables in the formats the
// repository's tools emit: aligned text (terminal), CSV (plotting / the
// chart's table view) and Markdown (EXPERIMENTS.md-style documents). The
// cmd tools are thin wrappers over this package so the formatting logic is
// tested.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series mirrors the facade's figure series (kept structurally identical so
// callers can convert with a one-line loop, while this package stays free
// of the simulator).
type Series struct {
	Label  string
	X      []float64
	Y      []float64
	XNames []string
}

// Figure mirrors the facade's figure.
type Figure struct {
	ID, Title, XLabel, YLabel string
	Series                    []Series
}

// WriteText renders the figure as the aligned terminal table the sweep tool
// prints.
func WriteText(w io.Writer, fig Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n   x: %s | y: %s\n",
		fig.ID, fig.Title, fig.XLabel, fig.YLabel); err != nil {
		return err
	}
	for _, s := range fig.Series {
		if _, err := fmt.Fprintf(w, "%-22s", s.Label); err != nil {
			return err
		}
		for i := range s.X {
			var err error
			if s.XNames != nil {
				_, err = fmt.Fprintf(w, " %s=%.3f", s.XNames[i], s.Y[i])
			} else {
				_, err = fmt.Fprintf(w, " %.2f:%.3f", s.X[i], s.Y[i])
			}
			if err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the figure as long-format CSV: series,x,x_name,y.
func WriteCSV(w io.Writer, fig Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "x_name", "y"}); err != nil {
		return err
	}
	for _, s := range fig.Series {
		for i := range s.X {
			name := ""
			if s.XNames != nil {
				name = s.XNames[i]
			}
			rec := []string{
				s.Label,
				strconv.FormatFloat(s.X[i], 'f', 3, 64),
				name,
				strconv.FormatFloat(s.Y[i], 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the figure as a Markdown table: one row per series,
// one column per x position (the layout EXPERIMENTS.md uses).
func WriteMarkdown(w io.Writer, fig Figure) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	// Header from the first series' axis.
	head := []string{"series"}
	first := fig.Series[0]
	for i := range first.X {
		if first.XNames != nil {
			head = append(head, escapeCell(first.XNames[i]))
		} else {
			head = append(head, trimFloat(first.X[i]))
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(head, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(head))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, s := range fig.Series {
		row := []string{escapeCell(s.Label)}
		for _, y := range s.Y {
			row = append(row, strconv.FormatFloat(y, 'f', 3, 64))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Table is a generic labelled table (Table III, ablation outputs).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// WriteTableText renders the table with aligned columns.
func WriteTableText(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteTableCSV renders the table as CSV.
func WriteTableCSV(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableMarkdown renders the table as a Markdown table.
func WriteTableMarkdown(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = escapeCell(c)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cols, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = escapeCell(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func escapeCell(s string) string {
	return strings.ReplaceAll(s, "|", `\|`)
}
