package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func lineFigure() Figure {
	return Figure{
		ID: "fig5", Title: "Throughput", XLabel: "load", YLabel: "accepted",
		Series: []Series{
			{Label: "DXbar DOR", X: []float64{0.1, 0.2}, Y: []float64{0.1, 0.199}},
			{Label: "Flit-Bless", X: []float64{0.1, 0.2}, Y: []float64{0.1, 0.198}},
		},
	}
}

func barFigure() Figure {
	return Figure{
		ID: "fig7", Title: "Patterns", XLabel: "pattern", YLabel: "accepted",
		Series: []Series{
			{Label: "DXbar", X: []float64{0, 1}, Y: []float64{0.4, 0.2}, XNames: []string{"UR", "NUR"}},
		},
	}
}

func TestWriteText(t *testing.T) {
	var b bytes.Buffer
	if err := WriteText(&b, lineFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig5", "Throughput", "DXbar DOR", "0.10:0.100", "0.20:0.199"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := WriteText(&b, barFigure()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "UR=0.400") {
		t.Errorf("categorical text output wrong:\n%s", b.String())
	}
}

func TestWriteCSVParses(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, lineFigure()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 { // header + 2 series × 2 points
		t.Fatalf("csv rows = %d, want 5", len(recs))
	}
	if recs[0][0] != "series" || recs[1][0] != "DXbar DOR" || recs[1][3] != "0.100000" {
		t.Errorf("csv content wrong: %v", recs[:2])
	}
}

func TestWriteCSVCategorical(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, barFigure()); err != nil {
		t.Fatal(err)
	}
	recs, _ := csv.NewReader(&b).ReadAll()
	if recs[1][2] != "UR" {
		t.Errorf("x_name column wrong: %v", recs[1])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMarkdown(&b, barFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| series | UR | NUR |") {
		t.Errorf("markdown header wrong:\n%s", out)
	}
	if !strings.Contains(out, "| DXbar | 0.400 | 0.200 |") {
		t.Errorf("markdown row wrong:\n%s", out)
	}
	// Numeric axis variant.
	b.Reset()
	_ = WriteMarkdown(&b, lineFigure())
	if !strings.Contains(b.String(), "| series | 0.1 | 0.2 |") {
		t.Errorf("numeric markdown header wrong:\n%s", b.String())
	}
}

func TestWriteMarkdownEscapesPipes(t *testing.T) {
	fig := barFigure()
	fig.Series[0].Label = "A|B"
	var b bytes.Buffer
	_ = WriteMarkdown(&b, fig)
	if !strings.Contains(b.String(), `A\|B`) {
		t.Error("pipe in label must be escaped")
	}
}

func TestWriteMarkdownEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMarkdown(&b, Figure{ID: "x", Title: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Error("empty figure must say so")
	}
}

func sampleTable() Table {
	return Table{
		Title:   "Table III",
		Columns: []string{"design", "area", "buffer"},
		Rows: [][]string{
			{"flitbless", "0.0396", "0.0"},
			{"dxbar", "0.0528", "25.0"},
		},
	}
}

func TestWriteTableText(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTableText(&b, sampleTable()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	// Columns align: "area" starts at the same offset in header and rows.
	hIdx := strings.Index(lines[1], "area")
	rIdx := strings.Index(lines[2], "0.0396")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: header@%d row@%d\n%s", hIdx, rIdx, b.String())
	}
}

func TestWriteTableCSV(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTableCSV(&b, sampleTable()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&b).ReadAll()
	if err != nil || len(recs) != 3 {
		t.Fatalf("csv = %v, %v", recs, err)
	}
}

func TestWriteTableMarkdown(t *testing.T) {
	var b bytes.Buffer
	if err := WriteTableMarkdown(&b, sampleTable()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| design | area | buffer |") {
		t.Errorf("markdown table wrong:\n%s", b.String())
	}
}
