package report

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func sampleHistRecords() []HistogramRecord {
	return []HistogramRecord{
		{
			Series: "DXbar DOR", Load: 0.4, Packets: 1000, InFlight: 3,
			P50: 20, P90: 35, P99: 60, Max: 80,
			Buckets: []HistogramBucket{{Low: 18, High: 18, Count: 400}, {Low: 32, High: 32, Count: 600}},
		},
		{
			Series: "Flit-Bless", Load: 0.4, Packets: 800, InFlight: 120,
			P50: 25, P90: 90, P99: 400, Max: 900,
			Buckets: []HistogramBucket{{Low: 24, High: 24, Count: 800}},
		},
	}
}

func TestWriteHistogramsNDJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteHistogramsNDJSON(&b, sampleHistRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2 (one per record)", len(lines))
	}
	var rec HistogramRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if rec.Series != "DXbar DOR" || rec.P99 != 60 || len(rec.Buckets) != 2 {
		t.Errorf("round-trip mismatch: %+v", rec)
	}
}

func TestWriteHistogramsCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteHistogramsCSV(&b, sampleHistRecords()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 4 { // header + 3 bucket rows
		t.Fatalf("got %d CSV lines, want 4:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "schema,series,load,packets,in_flight,p50") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1,DXbar DOR,0.400,1000,3,20,35,60,80,18,18,400") {
		t.Errorf("first bucket row = %q", lines[1])
	}
}

func TestWriteTimeSeries(t *testing.T) {
	recs := []TimeSeriesRecord{{
		Series: "scarab", Interval: 100,
		Samples: []TimeSample{
			{Cycle: 99, InjectedFlits: 50, EjectedFlits: 40, InFlightFlits: 10, QueuedFlits: 4, BufferedFlits: 0},
			{Cycle: 199, InjectedFlits: 48, EjectedFlits: 47, InFlightFlits: 11, QueuedFlits: 5, BufferedFlits: 0},
		},
	}}
	var nd strings.Builder
	if err := WriteTimeSeriesNDJSON(&nd, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(nd.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2 (one per sample)", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m["series"] != "scarab" || m["cycle"] != float64(199) || m["queued_flits"] != float64(5) {
		t.Errorf("flattened sample = %v", m)
	}

	var cs strings.Builder
	if err := WriteTimeSeriesCSV(&cs, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cs.String(), "1,scarab,99,50,40,10,4,0") {
		t.Errorf("CSV missing sample row:\n%s", cs.String())
	}
}

// TestExportSchemaRoundTrip pins the schema stamping contract: every NDJSON
// line and CSV row carries the export schema version, a pre-set version is
// preserved, and the stamped records parse back with the version intact.
func TestExportSchemaRoundTrip(t *testing.T) {
	var nd strings.Builder
	if err := WriteHistogramsNDJSON(&nd, sampleHistRecords()); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(nd.String(), "\n"), "\n") {
		var rec HistogramRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Schema != ExportSchema {
			t.Errorf("histogram line %d schema = %d, want %d", i, rec.Schema, ExportSchema)
		}
	}

	ts := []TimeSeriesRecord{{Series: "s", Interval: 10, Samples: []TimeSample{{Cycle: 9}}}}
	var tnd strings.Builder
	if err := WriteTimeSeriesNDJSON(&tnd, ts); err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.TrimRight(tnd.String(), "\n")), &line); err != nil {
		t.Fatal(err)
	}
	if line["schema"] != float64(ExportSchema) {
		t.Errorf("time-series line schema = %v, want %d", line["schema"], ExportSchema)
	}

	// An explicit version wins over the stamp (a future writer emitting an
	// older shape on purpose must be able to say so).
	pinned := []TimeSeriesRecord{{Schema: 7, Series: "s", Samples: []TimeSample{{Cycle: 1}}}}
	var p strings.Builder
	if err := WriteTimeSeriesCSV(&p, pinned); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "7,s,1,") {
		t.Errorf("pinned schema not preserved:\n%s", p.String())
	}
}

func TestLatencyTableFlagsTruncatedRuns(t *testing.T) {
	rows := []LatencyRow{
		{Label: "DXbar DOR", Load: 0.4, Packets: 1000, AvgLatency: 21.5, P50: 20, P90: 35, P99: 60, Max: 80, InFlight: 3},
		{Label: "Flit-Bless", Load: 0.4, Packets: 800, AvgLatency: 55.0, P50: 25, P90: 90, P99: 400, Max: 900, InFlight: 120},
	}
	tbl := LatencyTable("latency comparison", rows)
	if len(tbl.Rows) != 2 {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	healthy, saturated := tbl.Rows[0], tbl.Rows[1]
	if strings.Contains(healthy[len(healthy)-1], "†") {
		t.Errorf("0.3%% in-flight must not be flagged: %v", healthy)
	}
	if !strings.Contains(saturated[len(saturated)-1], "†") {
		t.Errorf("15%% in-flight must be flagged: %v", saturated)
	}
	if !strings.Contains(tbl.Title, "in flight") {
		t.Errorf("flagged table must carry the footnote in its title: %q", tbl.Title)
	}
	var b strings.Builder
	if err := WriteTableText(&b, tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "p99") || !strings.Contains(b.String(), "120 †") {
		t.Errorf("rendered table:\n%s", b.String())
	}
}

func TestLatencyTableNoFlagNoFootnote(t *testing.T) {
	tbl := LatencyTable("clean", []LatencyRow{{Label: "x", Packets: 100, InFlight: 0}})
	if strings.Contains(tbl.Title, "†") {
		t.Errorf("clean table must not carry the footnote: %q", tbl.Title)
	}
}
