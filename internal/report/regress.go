package report

// Cross-run regression analytics: parse the bench harness's BENCH_*.json /
// SCALE_*.json records and the run ledger's archived Results, diff two of
// them with noise-aware thresholds, and render markdown regression reports
// and chronological trend tables. Like the rest of the package this layer
// only consumes serialized shapes — it never imports the simulator, so the
// CLI that wraps it (cmd/dxbar-report) works on any record the repo has ever
// written.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// BenchRecordSchema and ScaleRecordSchema are the bench harness's on-disk
// schema versions this parser understands (cmd/dxbar-bench writes them).
const (
	BenchRecordSchema = 1
	ScaleRecordSchema = 2
)

// DefaultNoisePct is the wall-clock noise threshold: a timing metric must
// move by more than this fraction (in percent) of its old value to count as
// a regression or improvement rather than jitter. Deterministic metrics
// (ledger-archived simulation Results) always diff exactly.
const DefaultNoisePct = 5.0

// BenchDesign is one design's row in a BENCH record.
type BenchDesign struct {
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	FlitsPerSec    float64 `json:"flits_per_sec"`
	Cycles         uint64  `json:"cycles"`
}

// BenchRecord mirrors cmd/dxbar-bench's BENCH_*.json shape.
type BenchRecord struct {
	Schema  int                    `json:"schema"`
	Date    string                 `json:"date"`
	Label   string                 `json:"label,omitempty"`
	Go      string                 `json:"go"`
	Config  json.RawMessage        `json:"config"`
	Designs map[string]BenchDesign `json:"designs"`

	// Path is display provenance (set by the caller, not serialized).
	Path string `json:"-"`
}

// ParseBenchRecord decodes and schema-checks one BENCH_*.json payload.
func ParseBenchRecord(b []byte) (*BenchRecord, error) {
	var r BenchRecord
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("report: parse bench record: %w", err)
	}
	if r.Schema != BenchRecordSchema {
		return nil, fmt.Errorf("report: bench record schema %d, this build reads %d", r.Schema, BenchRecordSchema)
	}
	if len(r.Designs) == 0 {
		return nil, fmt.Errorf("report: bench record has no designs")
	}
	return &r, nil
}

// ScalePoint is one mesh-size operating point in a SCALE record.
type ScalePoint struct {
	Width              int     `json:"width"`
	Height             int     `json:"height"`
	Load               float64 `json:"load"`
	ShardsRequested    int     `json:"shards_requested"`
	ShardsEffective    int     `json:"shards_effective"`
	NsPerCycleSeq      float64 `json:"ns_per_cycle_seq"`
	NsPerCycleSharded  float64 `json:"ns_per_cycle_sharded"`
	AllocsPerCycleSeq  float64 `json:"allocs_per_cycle_seq"`
	AllocsPerCycleShrd float64 `json:"allocs_per_cycle_sharded"`
}

// ScaleRecord mirrors cmd/dxbar-bench's SCALE_*.json shape.
type ScaleRecord struct {
	Schema     int          `json:"schema"`
	Date       string       `json:"date"`
	Go         string       `json:"go"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Design     string       `json:"design"`
	Pattern    string       `json:"pattern"`
	Points     []ScalePoint `json:"points"`

	Path string `json:"-"`
}

// ParseScaleRecord decodes and schema-checks one SCALE_*.json payload.
// Schema-1 records (one record-level load, a single "shards" column) are
// normalized into the current shape so trend tables span the whole history.
func ParseScaleRecord(b []byte) (*ScaleRecord, error) {
	var r ScaleRecord
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("report: parse scale record: %w", err)
	}
	switch r.Schema {
	case ScaleRecordSchema:
	case 1:
		var v1 struct {
			Load   float64 `json:"load"`
			Points []struct {
				Shards int `json:"shards"`
			} `json:"points"`
		}
		if err := json.Unmarshal(b, &v1); err != nil {
			return nil, fmt.Errorf("report: parse scale record: %w", err)
		}
		for i := range r.Points {
			r.Points[i].Load = v1.Load
			r.Points[i].ShardsRequested = v1.Points[i].Shards
			r.Points[i].ShardsEffective = v1.Points[i].Shards
		}
	default:
		return nil, fmt.Errorf("report: scale record schema %d, this build reads ≤%d", r.Schema, ScaleRecordSchema)
	}
	return &r, nil
}

// RecordKind sniffs which record family a JSON payload belongs to, so the
// CLI can diff two paths without being told what they are.
func RecordKind(b []byte) string {
	var probe struct {
		Designs json.RawMessage `json:"designs"`
		Points  json.RawMessage `json:"points"`
		Key     string          `json:"key"`
		Kind    string          `json:"kind"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return ""
	}
	switch {
	case probe.Key != "" && probe.Kind != "":
		return "ledger"
	case len(probe.Designs) > 0:
		return "bench"
	case len(probe.Points) > 0:
		return "scale"
	}
	return ""
}

// MetricDelta is one metric's movement between two records.
type MetricDelta struct {
	Name string
	Old  float64
	New  float64
	// Pct is the relative change in percent ((new-old)/old·100; 0 when the
	// old value is 0).
	Pct float64
	// Regression / Improvement classify the movement against the metric's
	// direction and the diff's noise threshold; both false means the change
	// is within noise (or the metric is informational).
	Regression  bool
	Improvement bool
}

// delta builds a MetricDelta for a metric where lower is better (negate pct
// classification for higherIsBetter). absFloor suppresses classification of
// movements whose absolute size is negligible — a near-zero metric (0.001
// allocs/cycle) produces huge relative swings that mean nothing.
func delta(name string, oldV, newV, noisePct, absFloor float64, higherIsBetter bool) MetricDelta {
	d := MetricDelta{Name: name, Old: oldV, New: newV}
	if oldV != 0 {
		d.Pct = (newV - oldV) / math.Abs(oldV) * 100
	} else if newV != 0 {
		d.Pct = math.Inf(1)
	}
	if math.Abs(newV-oldV) <= absFloor {
		return d
	}
	worse := d.Pct > noisePct
	better := d.Pct < -noisePct
	if higherIsBetter {
		worse, better = better, worse
	}
	d.Regression, d.Improvement = worse, better
	return d
}

// BenchDiff is the comparison of two BENCH records.
type BenchDiff struct {
	Old, New *BenchRecord
	// NoisePct is the wall-clock threshold the classification used.
	NoisePct float64
	// Designs holds the per-design deltas for designs present in both
	// records, sorted by name.
	Designs []DesignDiff
	// OnlyOld / OnlyNew are designs present on one side only.
	OnlyOld, OnlyNew []string
	// ConfigChanged notes that the two records ran different bench configs,
	// which makes the timing columns apples-to-oranges.
	ConfigChanged bool
}

// DesignDiff is one design's metric deltas.
type DesignDiff struct {
	Design string
	Deltas []MetricDelta
}

// Regressions counts classified regressions across all designs.
func (d *BenchDiff) Regressions() int {
	n := 0
	for _, dd := range d.Designs {
		for _, m := range dd.Deltas {
			if m.Regression {
				n++
			}
		}
	}
	return n
}

// DiffBench compares two bench records design by design. noisePct ≤ 0 uses
// DefaultNoisePct.
func DiffBench(oldR, newR *BenchRecord, noisePct float64) *BenchDiff {
	if noisePct <= 0 {
		noisePct = DefaultNoisePct
	}
	d := &BenchDiff{Old: oldR, New: newR, NoisePct: noisePct}
	d.ConfigChanged = !jsonEqual(oldR.Config, newR.Config)
	for name, o := range oldR.Designs {
		n, ok := newR.Designs[name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, name)
			continue
		}
		d.Designs = append(d.Designs, DesignDiff{
			Design: name,
			Deltas: []MetricDelta{
				delta("ns/cycle", o.NsPerCycle, n.NsPerCycle, noisePct, 0, false),
				delta("flits/s", o.FlitsPerSec, n.FlitsPerSec, noisePct, 0, true),
				// Pooled designs idle near zero allocs; only absolute churn
				// above the floors is worth a reader's attention.
				delta("allocs/cycle", o.AllocsPerCycle, n.AllocsPerCycle, noisePct, 0.5, false),
				delta("bytes/cycle", o.BytesPerCycle, n.BytesPerCycle, noisePct, 64, false),
			},
		})
	}
	for name := range newR.Designs {
		if _, ok := oldR.Designs[name]; !ok {
			d.OnlyNew = append(d.OnlyNew, name)
		}
	}
	sort.Slice(d.Designs, func(i, j int) bool { return d.Designs[i].Design < d.Designs[j].Design })
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

// jsonEqual compares two JSON payloads structurally (key order ignored).
func jsonEqual(a, b json.RawMessage) bool {
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return string(a) == string(b)
	}
	ab, _ := json.Marshal(canonical(av))
	bb, _ := json.Marshal(canonical(bv))
	return string(ab) == string(bb)
}

// canonical re-types nested JSON values so re-marshaling sorts object keys.
func canonical(v any) any {
	if m, ok := v.(map[string]any); ok {
		out := make(map[string]any, len(m))
		for k, e := range m {
			out[k] = canonical(e)
		}
		return out
	}
	return v
}

// WriteMarkdown renders the diff as a regression report: one table row per
// design × metric movement, regressions flagged, plus membership and config
// caveats. Within-noise rows are summarized, not listed.
func (d *BenchDiff) WriteMarkdown(w io.Writer) error {
	oldName, newName := d.Old.Label, d.New.Label
	if oldName == "" {
		oldName = d.Old.Date
	}
	if newName == "" {
		newName = d.New.Date
	}
	fmt.Fprintf(w, "## Bench diff: %s → %s\n\n", oldName, newName)
	fmt.Fprintf(w, "Noise threshold ±%.1f%% on wall-clock metrics (%s → %s).\n\n", d.NoisePct, d.Old.Go, d.New.Go)
	if d.ConfigChanged {
		fmt.Fprintf(w, "**⚠ bench configs differ** — timing deltas are not comparable.\n\n")
	}

	moved := Table{
		Title:   "movement beyond noise",
		Columns: []string{"design", "metric", "old", "new", "Δ%", ""},
	}
	quiet := 0
	for _, dd := range d.Designs {
		for _, m := range dd.Deltas {
			if !m.Regression && !m.Improvement {
				quiet++
				continue
			}
			flag := "improvement"
			if m.Regression {
				flag = "**regression**"
			}
			moved.Rows = append(moved.Rows, []string{
				dd.Design, m.Name,
				trimFloat(m.Old), trimFloat(m.New),
				fmt.Sprintf("%+.1f", m.Pct), flag,
			})
		}
	}
	if len(moved.Rows) == 0 {
		fmt.Fprintf(w, "No movement beyond noise across %d designs (%d metrics checked).\n", len(d.Designs), quiet)
	} else {
		if err := WriteTableMarkdown(w, moved); err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%d further metrics within noise.\n", quiet)
	}
	for _, name := range d.OnlyOld {
		fmt.Fprintf(w, "\n- design `%s` present only in the old record\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Fprintf(w, "\n- design `%s` present only in the new record\n", name)
	}
	return nil
}

// FlattenResultMetrics extracts every numeric scalar from a serialized
// simulation Result (a ledger record's "Result" section), flattening nested
// objects with dotted names ("Power.TotalMW"). Arrays and strings are
// skipped — the scalars are what regression diffs compare.
func FlattenResultMetrics(resultJSON []byte) (map[string]float64, error) {
	var v map[string]any
	if err := json.Unmarshal(resultJSON, &v); err != nil {
		return nil, fmt.Errorf("report: parse result: %w", err)
	}
	out := map[string]float64{}
	flattenInto(out, "", v)
	return out, nil
}

func flattenInto(out map[string]float64, prefix string, v map[string]any) {
	for k, e := range v {
		name := k
		if prefix != "" {
			name = prefix + "." + k
		}
		switch t := e.(type) {
		case float64:
			out[name] = t
		case bool:
			if t {
				out[name] = 1
			} else {
				out[name] = 0
			}
		case map[string]any:
			flattenInto(out, name, t)
		}
	}
}

// RunDiff is the exact comparison of two deterministic run Results.
type RunDiff struct {
	OldName, NewName string
	// Changed holds every metric whose value differs (Pct against the old
	// value; Regression/Improvement are not classified — determinism means
	// any difference is a real behavior change for the reader to judge).
	Changed []MetricDelta
	// OnlyOld / OnlyNew are metrics present on one side only (a schema or
	// feature change between the builds that wrote the records).
	OnlyOld, OnlyNew []string
}

// DiffRun compares two flattened Result metric sets exactly — simulation
// output is deterministic, so there is no noise threshold: every changed bit
// is reported.
func DiffRun(oldName, newName string, oldM, newM map[string]float64) *RunDiff {
	d := &RunDiff{OldName: oldName, NewName: newName}
	for k, ov := range oldM {
		nv, ok := newM[k]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, k)
			continue
		}
		if ov != nv {
			d.Changed = append(d.Changed, delta(k, ov, nv, 0, 0, false))
		}
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			d.OnlyNew = append(d.OnlyNew, k)
		}
	}
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Name < d.Changed[j].Name })
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

// Identical reports a bit-identical diff: same metrics, same values.
func (d *RunDiff) Identical() bool {
	return len(d.Changed) == 0 && len(d.OnlyOld) == 0 && len(d.OnlyNew) == 0
}

// WriteMarkdown renders the run diff.
func (d *RunDiff) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "## Run diff: %s → %s\n\n", d.OldName, d.NewName)
	if d.Identical() {
		fmt.Fprintf(w, "Results are identical — every archived metric matches exactly.\n")
		return nil
	}
	if len(d.Changed) > 0 {
		t := Table{Title: "changed metrics (exact comparison)",
			Columns: []string{"metric", "old", "new", "Δ%"}}
		for _, m := range d.Changed {
			t.Rows = append(t.Rows, []string{
				m.Name, trimFloat(m.Old), trimFloat(m.New), fmt.Sprintf("%+.2f", m.Pct),
			})
		}
		if err := WriteTableMarkdown(w, t); err != nil {
			return err
		}
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(w, "\n- metric `%s` present only in the old record\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(w, "\n- metric `%s` present only in the new record\n", k)
	}
	return nil
}

// BenchTrendTable renders the chronological per-design ns/cycle history of
// a set of BENCH records (sorted by date — the RFC 3339 stamps the harness
// writes sort lexically).
func BenchTrendTable(recs []*BenchRecord) Table {
	sorted := append([]*BenchRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Date < sorted[j].Date })

	nameSet := map[string]bool{}
	for _, r := range sorted {
		for name := range r.Designs {
			nameSet[name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	t := Table{
		Title:   "ns/cycle by design over time",
		Columns: append([]string{"date", "label"}, names...),
	}
	for _, r := range sorted {
		row := []string{r.Date, r.Label}
		for _, name := range names {
			if d, ok := r.Designs[name]; ok {
				row = append(row, trimFloat(d.NsPerCycle))
			} else {
				row = append(row, "–")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ScaleTrendTable renders the chronological mesh-scaling history of a set of
// SCALE records: one row per record × point with the sharded speedup.
func ScaleTrendTable(recs []*ScaleRecord) Table {
	sorted := append([]*ScaleRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Date < sorted[j].Date })

	t := Table{
		Title:   "mesh scaling over time",
		Columns: []string{"date", "mesh", "load", "shards", "seq ns/cycle", "sharded ns/cycle", "speedup"},
	}
	for _, r := range sorted {
		for _, p := range r.Points {
			// A one-effective-shard "sharded" run is the sequential engine
			// plus barrier overhead; the scale record refuses to report a
			// speedup for it and so does the table.
			speedup := "–"
			if p.NsPerCycleSharded > 0 && p.ShardsEffective >= 2 {
				speedup = strconv.FormatFloat(p.NsPerCycleSeq/p.NsPerCycleSharded, 'f', 2, 64) + "×"
			}
			t.Rows = append(t.Rows, []string{
				r.Date,
				fmt.Sprintf("%dx%d", p.Width, p.Height),
				strconv.FormatFloat(p.Load, 'f', 2, 64),
				strconv.Itoa(p.ShardsEffective),
				trimFloat(p.NsPerCycleSeq),
				trimFloat(p.NsPerCycleSharded),
				speedup,
			})
		}
	}
	return t
}
