package arbiter

// Separable is an output-first separable switch allocator for a router with
// numIn input ports and numOut output ports, one candidate flit per input.
// Stage 1: each output's arbiter picks one requesting input. Stage 2: each
// input's arbiter picks one of the outputs granted to it. The result is a
// conflict-free (partial) matching. This matches the allocator of the
// Buffered 4/8 baseline (paper reference [14]).
type Separable struct {
	numIn, numOut int
	outArb        []*RoundRobin // per output, over inputs
	inArb         []*RoundRobin // per input, over outputs
	outWinner     []int         // per-Allocate scratch
	grant         []int         // per-Allocate scratch, aliased by the result
}

// NewSeparable returns a separable allocator of the given radix.
func NewSeparable(numIn, numOut int) *Separable {
	s := &Separable{
		numIn:     numIn,
		numOut:    numOut,
		outArb:    make([]*RoundRobin, numOut),
		inArb:     make([]*RoundRobin, numIn),
		outWinner: make([]int, numOut),
		grant:     make([]int, numIn),
	}
	for o := range s.outArb {
		s.outArb[o] = NewRoundRobin(numIn)
	}
	for i := range s.inArb {
		s.inArb[i] = NewRoundRobin(numOut)
	}
	return s
}

// Allocate computes a matching for the request matrix req (req[i][o] == true
// means input i wants output o). It returns grant[i] = granted output for
// input i, or -1. Each output is granted to at most one input and each input
// receives at most one output. Arbiter pointers advance only for
// granted input/output pairs so unsuccessful requesters keep their priority.
//
// The returned slice is the allocator's own scratch: it is valid until the
// next Allocate call (routers consume it within the same cycle).
func (s *Separable) Allocate(req [][]bool) []int {
	if len(req) != s.numIn {
		panic("arbiter: request matrix has wrong input count")
	}
	// Stage 1: output arbitration.
	outWinner := s.outWinner // input granted each output, or -1
	for o := 0; o < s.numOut; o++ {
		var mask uint64
		for i := 0; i < s.numIn; i++ {
			if req[i][o] {
				mask |= 1 << uint(i)
			}
		}
		outWinner[o] = s.outArb[o].Peek(mask)
	}
	// Stage 2: input arbitration among granted outputs.
	grant := s.grant
	for i := range grant {
		grant[i] = -1
	}
	for i := 0; i < s.numIn; i++ {
		var mask uint64
		for o := 0; o < s.numOut; o++ {
			if outWinner[o] == i {
				mask |= 1 << uint(o)
			}
		}
		if o := s.inArb[i].Peek(mask); o != -1 {
			grant[i] = o
			s.inArb[i].Commit(o)
			s.outArb[o].Commit(i)
		}
	}
	return grant
}

// AllocateMask is Allocate over a bitmask request matrix (req[i] has bit o
// set when input i wants output o). It runs the exact same branchy
// round-robin arbiter network as Allocate — this is the reference-oracle
// entry point the bit-parallel allocator in internal/bitarb is proven
// grant-for-grant identical to.
func (s *Separable) AllocateMask(req []uint64) []int {
	if len(req) != s.numIn {
		panic("arbiter: request matrix has wrong input count")
	}
	// Stage 1: output arbitration.
	outWinner := s.outWinner
	for o := 0; o < s.numOut; o++ {
		bit := uint64(1) << uint(o)
		var mask uint64
		for i := 0; i < s.numIn; i++ {
			if req[i]&bit != 0 {
				mask |= 1 << uint(i)
			}
		}
		outWinner[o] = s.outArb[o].Peek(mask)
	}
	// Stage 2: input arbitration among granted outputs.
	grant := s.grant
	for i := range grant {
		grant[i] = -1
	}
	for i := 0; i < s.numIn; i++ {
		var mask uint64
		for o := 0; o < s.numOut; o++ {
			if outWinner[o] == i {
				mask |= 1 << uint(o)
			}
		}
		if o := s.inArb[i].Peek(mask); o != -1 {
			grant[i] = o
			s.inArb[i].Commit(o)
			s.outArb[o].Commit(i)
		}
	}
	return grant
}

// NumIn returns the allocator's input radix.
func (s *Separable) NumIn() int { return s.numIn }

// NumOut returns the allocator's output radix.
func (s *Separable) NumOut() int { return s.numOut }
