package arbiter

import (
	"testing"
	"testing/quick"
)

func TestDualInputBothSubInputsSameCycle(t *testing.T) {
	// The headline capability (paper Fig. 4(b)): I0 (bufferless) to O2 and
	// I0' (buffered) to O3, simultaneously, from the same input port.
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[0].Want[SubBufferless] = 1 << 2
	reqs[0].Age[SubBufferless] = 10
	reqs[0].Want[SubBuffered] = 1 << 3
	reqs[0].Age[SubBuffered] = 5
	g := d.Allocate(reqs, false)
	if g[0][SubBufferless] != 2 || g[0][SubBuffered] != 3 {
		t.Fatalf("grants = %v, want sub0->2 sub1->3", g[0])
	}
}

func TestDualInputIncomingPriorityOverBuffered(t *testing.T) {
	// Two ports want the same output; port 0 offers a buffered flit (older),
	// port 1 an incoming flit (younger). Without the fairness flip, the
	// incoming class wins.
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[0].Want[SubBuffered] = 1 << 4
	reqs[0].Age[SubBuffered] = 1 // older
	reqs[1].Want[SubBufferless] = 1 << 4
	reqs[1].Age[SubBufferless] = 100 // younger
	g := d.Allocate(reqs, false)
	if g[1][SubBufferless] != 4 {
		t.Fatalf("incoming flit must win output 4, grants %v", g)
	}
	if g[0][SubBuffered] != -1 {
		t.Fatalf("buffered flit must lose, grants %v", g)
	}
}

func TestDualInputFairnessFlip(t *testing.T) {
	// Same scenario with preferBuffered: the buffered class now wins.
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[0].Want[SubBuffered] = 1 << 4
	reqs[0].Age[SubBuffered] = 1
	reqs[1].Want[SubBufferless] = 1 << 4
	reqs[1].Age[SubBufferless] = 100
	g := d.Allocate(reqs, true)
	if g[0][SubBuffered] != 4 {
		t.Fatalf("buffered flit must win under flipped priority, grants %v", g)
	}
	if g[1][SubBufferless] != -1 {
		t.Fatalf("incoming flit must lose under flipped priority, grants %v", g)
	}
}

func TestDualInputAgeWithinClass(t *testing.T) {
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[2].Want[SubBufferless] = 1 << 0
	reqs[2].Age[SubBufferless] = 50
	reqs[3].Want[SubBufferless] = 1 << 0
	reqs[3].Age[SubBufferless] = 7 // older, must win
	g := d.Allocate(reqs, false)
	if g[3][SubBufferless] != 0 || g[2][SubBufferless] != -1 {
		t.Fatalf("oldest incoming flit must win, grants %v", g)
	}
}

func TestDualInputConflictSwapCounted(t *testing.T) {
	// Sub-input 0 granted a HIGHER output than sub-input 1 violates the
	// segmentation ordering and must be repaired by a counted swap.
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[1].Want[SubBufferless] = 1 << 4
	reqs[1].Age[SubBufferless] = 3
	reqs[1].Want[SubBuffered] = 1 << 2
	reqs[1].Age[SubBuffered] = 9
	g := d.Allocate(reqs, false)
	if g[1][SubBufferless] != 4 || g[1][SubBuffered] != 2 {
		t.Fatalf("both sub-inputs must be granted, grants %v", g)
	}
	if d.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", d.Swaps())
	}
	// The non-conflicting orientation must not count a swap.
	d2 := NewDualInput(5, 5)
	reqs[1].Want[SubBufferless] = 1 << 2
	reqs[1].Want[SubBuffered] = 1 << 4
	d2.Allocate(reqs, false)
	if d2.Swaps() != 0 {
		t.Fatalf("swaps = %d, want 0", d2.Swaps())
	}
}

func TestDualInputSecondArbiterCannotReuseSubInput(t *testing.T) {
	// One sub-input requesting two outputs gets exactly one grant; the
	// second serial arbiter serves only the other sub-input.
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[0].Want[SubBufferless] = 1<<1 | 1<<2
	reqs[0].Age[SubBufferless] = 1
	g := d.Allocate(reqs, false)
	granted := 0
	if g[0][SubBufferless] != -1 {
		granted++
	}
	if g[0][SubBuffered] != -1 {
		granted++
	}
	if granted != 1 {
		t.Fatalf("single flit must receive exactly one output, grants %v", g)
	}
}

func TestDualInputInjectionPortModel(t *testing.T) {
	// The PE injection port presents only a buffered-side candidate and can
	// still win an uncontended output.
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	reqs[4].Want[SubBuffered] = 1 << 0
	reqs[4].Age[SubBuffered] = 3
	g := d.Allocate(reqs, false)
	if g[4][SubBuffered] != 0 {
		t.Fatalf("uncontended injection must win, grants %v", g)
	}
}

// Property: the dual-input allocation is always physically valid — every
// granted (port, sub-input, output) was requested, no output is granted
// twice, and each sub-input receives at most one output.
func TestDualInputValidityProperty(t *testing.T) {
	d := NewDualInput(5, 5)
	f := func(w0, w1 [5]uint8, a0, a1 [5]uint8, flip bool) bool {
		reqs := make([]DualRequest, 5)
		for p := 0; p < 5; p++ {
			reqs[p].Want[0] = uint64(w0[p] & 0x1f)
			reqs[p].Want[1] = uint64(w1[p] & 0x1f)
			reqs[p].Age[0] = uint64(a0[p])
			reqs[p].Age[1] = uint64(a1[p])
		}
		g := d.Allocate(reqs, flip)
		usedOut := map[int]bool{}
		for p := 0; p < 5; p++ {
			for s := 0; s < 2; s++ {
				o := g[p][s]
				if o == -1 {
					continue
				}
				if o < 0 || o > 4 {
					return false
				}
				if reqs[p].Want[s]&(1<<uint(o)) == 0 {
					return false // unrequested grant
				}
				if usedOut[o] {
					return false // double-booked output
				}
				usedOut[o] = true
			}
			// Same port granted two outputs => they must differ.
			if g[p][0] != -1 && g[p][0] == g[p][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: if exactly one port requests output o (on either sub-input),
// that port is granted o — the allocator wastes no uncontended output.
func TestDualInputWorkConservingSingleRequester(t *testing.T) {
	d := NewDualInput(5, 5)
	f := func(port, out, sub uint8, age uint8) bool {
		p := int(port) % 5
		o := int(out) % 5
		s := int(sub) % 2
		reqs := make([]DualRequest, 5)
		reqs[p].Want[s] = 1 << uint(o)
		reqs[p].Age[s] = uint64(age)
		g := d.Allocate(reqs, false)
		return g[p][s] == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDualInputFlipTiebreak pins the exact interaction the fairness flip is
// for: same output, buffered side older on one port, bufferless younger on
// another, plus a same-class age tie — the flip must change the winner and
// the tie must still break on the lower port index in both paths.
func TestDualInputFlipTiebreak(t *testing.T) {
	build := func() []DualRequest {
		reqs := make([]DualRequest, 5)
		// Ports 1 and 3: same class (bufferless), same age — index tie.
		reqs[1].Want[SubBufferless] = 1 << 2
		reqs[1].Age[SubBufferless] = 9
		reqs[3].Want[SubBufferless] = 1 << 2
		reqs[3].Age[SubBufferless] = 9
		// Port 0 buffered (older) vs the pair above on the same output.
		reqs[0].Want[SubBuffered] = 1 << 2
		reqs[0].Age[SubBuffered] = 1
		return reqs
	}
	for _, flip := range []bool{false, true} {
		ref := NewDualInput(5, 5).Allocate(build(), flip)
		fast := NewDualInput(5, 5).AllocateFast(build(), flip)
		for p := 0; p < 5; p++ {
			if ref[p] != fast[p] {
				t.Fatalf("flip=%v port %d: reference %v, fast %v", flip, p, ref[p], fast[p])
			}
		}
		if flip {
			if ref[0][SubBuffered] != 2 {
				t.Fatalf("flip must hand output 2 to the buffered side, grants %v", ref)
			}
		} else if ref[1][SubBufferless] != 2 {
			t.Fatalf("without flip the older-indexed bufferless port must win, grants %v", ref)
		}
	}
}

func TestDualInputPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Allocate with wrong port count must panic")
		}
	}()
	NewDualInput(5, 5).Allocate(make([]DualRequest, 3), false)
}
