package arbiter

import (
	"fmt"

	"dxbar/internal/snapshot"
)

// SaveState serializes the rotation pointer — the arbiter's only persistent
// state (the grant history is the pointer).
func (r *RoundRobin) SaveState(w *snapshot.Writer) {
	w.Int(r.ptr)
}

// LoadState restores the rotation pointer.
func (r *RoundRobin) LoadState(rd *snapshot.Reader) error {
	ptr := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if ptr < 0 || ptr >= r.n {
		return fmt.Errorf("arbiter: snapshot rotation pointer %d out of [0,%d)", ptr, r.n)
	}
	r.ptr = ptr
	return nil
}

// SaveState serializes the separable allocator: every output-stage and
// input-stage rotation pointer.
func (s *Separable) SaveState(w *snapshot.Writer) {
	for _, a := range s.outArb {
		a.SaveState(w)
	}
	for _, a := range s.inArb {
		a.SaveState(w)
	}
}

// LoadState restores the separable allocator's rotation pointers.
func (s *Separable) LoadState(rd *snapshot.Reader) error {
	for _, a := range s.outArb {
		if err := a.LoadState(rd); err != nil {
			return err
		}
	}
	for _, a := range s.inArb {
		if err := a.LoadState(rd); err != nil {
			return err
		}
	}
	return nil
}

// SaveState serializes the dual-input allocator. Its arbitration is age-based
// (stateless between cycles); only the swap counter persists.
func (d *DualInput) SaveState(w *snapshot.Writer) {
	w.U64(d.swaps)
}

// LoadState restores the dual-input allocator's swap counter.
func (d *DualInput) LoadState(rd *snapshot.Reader) error {
	d.swaps = rd.U64()
	return rd.Err()
}
