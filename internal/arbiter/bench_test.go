package arbiter

import "testing"

func BenchmarkRoundRobinGrant(b *testing.B) {
	r := NewRoundRobin(5)
	for i := 0; i < b.N; i++ {
		r.Grant(0b10110)
	}
}

func BenchmarkMatrixGrant(b *testing.B) {
	m := NewMatrix(5)
	for i := 0; i < b.N; i++ {
		m.Grant(0b11011)
	}
}

func BenchmarkSeparableAllocate(b *testing.B) {
	s := NewSeparable(5, 5)
	req := make([][]bool, 5)
	for i := range req {
		req[i] = make([]bool, 5)
	}
	req[0][1], req[1][1], req[2][3], req[3][0], req[4][4] = true, true, true, true, true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Allocate(req)
	}
}

func BenchmarkDualInputAllocate(b *testing.B) {
	d := NewDualInput(5, 5)
	reqs := make([]DualRequest, 5)
	for p := range reqs {
		reqs[p].Want[0] = 1 << uint(p%5)
		reqs[p].Age[0] = uint64(p)
		reqs[p].Want[1] = 1 << uint((p+2)%5)
		reqs[p].Age[1] = uint64(p + 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Allocate(reqs, false)
	}
}
