package arbiter

import (
	"math/rand"
	"testing"
)

// TestAllocateMaskMatchesBool drives the same Separable state through the
// bool-matrix and mask-matrix entry points on cloned allocators: grants (and
// therefore the hidden pointer states) must stay identical forever.
func TestAllocateMaskMatchesBool(t *testing.T) {
	const n = 5
	a := NewSeparable(n, n)
	b := NewSeparable(n, n)
	reqBool := make([][]bool, n)
	for i := range reqBool {
		reqBool[i] = make([]bool, n)
	}
	reqMask := make([]uint64, n)
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 8192; round++ {
		for i := 0; i < n; i++ {
			m := rng.Uint64() & (1<<n - 1)
			reqMask[i] = m
			for o := 0; o < n; o++ {
				reqBool[i][o] = m&(1<<uint(o)) != 0
			}
		}
		ga := a.Allocate(reqBool)
		gb := b.AllocateMask(reqMask)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("round %d input %d: bool=%d mask=%d", round, i, ga[i], gb[i])
			}
		}
	}
}

// TestDualInputFastMatchesReference drives Allocate and AllocateFast on two
// allocators in lockstep over random dual-request streams, including the
// fairness-counter priority flip, and checks grants and swap counts match.
func TestDualInputFastMatchesReference(t *testing.T) {
	const ports, outs = 5, 5
	ref := NewDualInput(ports, outs)
	fast := NewDualInput(ports, outs)
	reqs := make([]DualRequest, ports)
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 16384; round++ {
		for p := range reqs {
			var r DualRequest
			for s := 0; s < 2; s++ {
				if rng.Intn(3) != 0 {
					r.Want[s] = rng.Uint64() & (1<<outs - 1)
					// Small age range so age ties across ports actually occur
					// and exercise the port-index tiebreak.
					r.Age[s] = uint64(rng.Intn(4))
				}
			}
			reqs[p] = r
		}
		flip := rng.Intn(2) == 0
		gr := ref.Allocate(reqs, flip)
		gf := fast.AllocateFast(reqs, flip)
		for p := range gr {
			if gr[p] != gf[p] {
				t.Fatalf("round %d port %d: ref=%v fast=%v (flip=%v)", round, p, gr[p], gf[p], flip)
			}
		}
		if ref.Swaps() != fast.Swaps() {
			t.Fatalf("round %d: swap counts diverge ref=%d fast=%d", round, ref.Swaps(), fast.Swaps())
		}
	}
}
