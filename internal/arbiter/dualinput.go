package arbiter

import "math/bits"

// SubInput indices for the unified dual-input crossbar: each input port
// carries up to two candidate flits per cycle.
const (
	// SubBufferless is the incoming (primary, bufferless-path) candidate.
	SubBufferless = 0
	// SubBuffered is the buffered (secondary-path) candidate. The PE
	// injection port uses this sub-input as well (it sits on the buffered
	// side of the demultiplexer, without a buffer).
	SubBuffered = 1
)

// DualRequest describes one input port's candidates for one allocation
// round of the unified crossbar.
type DualRequest struct {
	// Want[s] is the bitmask of output ports sub-input s requests
	// (zero = no candidate / no request).
	Want [2]uint64
	// Age[s] is the age key of sub-input s's flit: lower wins. Only
	// meaningful where Want[s] != 0.
	Age [2]uint64
}

// DualGrant is the allocation result for one input port: the output granted
// to each sub-input, or -1.
type DualGrant [2]int

// DualInput is the paper's augmented separable output-first allocator for
// the unified dual-input crossbar (§II.B.1):
//
//   - Stage 1: the two sub-input request vectors of each input port are
//     OR-ed into one P-bit vector; each output's P:1 arbiter picks one input
//     port. Our P:1 arbiters are age-based with a class bit (the router's
//     incoming-over-buffered priority, flippable by the fairness counter),
//     matching the age-based arbitration used throughout the paper.
//   - Stage 2: per input port, two V:1 arbiters in series pick up to two
//     (sub-input, output) grants; the second arbiter is masked by the first
//     arbiter's selection so it can never pick the same sub-input (§II.B.1).
//   - Conflict-free swap (§II.B.2): the crossbar's transmission-gate
//     segmentation requires the flit entering from the low end of the input
//     line to use a lower-numbered output column than the flit entering from
//     the high end. When the two grants violate that ordering, the swap
//     logic exchanges which physical entry each flit uses, so both still
//     make forward progress. Swaps are counted for statistics.
type DualInput struct {
	numPorts, numOut int
	swaps            uint64
	outWinner        []int       // per-Allocate scratch
	grants           []DualGrant // per-Allocate scratch, aliased by the result
	// prefOut/otherOut are AllocateFast's per-output requester-port masks
	// (bit p of prefOut[o] = port p's preferred-class sub-input wants o).
	prefOut, otherOut []uint64
}

// NewDualInput returns an allocator for numPorts input ports and numOut
// output ports (both 5 for the paper's unified crossbar).
func NewDualInput(numPorts, numOut int) *DualInput {
	if numPorts <= 0 || numPorts > 64 || numOut <= 0 || numOut > 64 {
		panic("arbiter: invalid dual-input allocator radix")
	}
	return &DualInput{
		numPorts:  numPorts,
		numOut:    numOut,
		outWinner: make([]int, numOut),
		grants:    make([]DualGrant, numPorts),
		prefOut:   make([]uint64, numOut),
		otherOut:  make([]uint64, numOut),
	}
}

// Swaps returns the cumulative number of conflict-free swaps performed.
func (d *DualInput) Swaps() uint64 { return d.swaps }

// Allocate computes the dual-input matching. preferBuffered flips the
// priority class between the bufferless and buffered sub-inputs (the
// fairness counter of §II.A.2 drives this). Each output is granted to at
// most one (port, sub-input); each port receives at most two grants, one
// per sub-input, on distinct outputs.
//
// The returned slice is the allocator's own scratch: it is valid until the
// next Allocate call (routers consume it within the same cycle).
func (d *DualInput) Allocate(reqs []DualRequest, preferBuffered bool) []DualGrant {
	if len(reqs) != d.numPorts {
		panic("arbiter: request slice has wrong port count")
	}
	pref, other := SubBufferless, SubBuffered
	if preferBuffered {
		pref, other = SubBuffered, SubBufferless
	}

	// Stage 1: per-output arbitration over OR-ed port-level requests.
	// Priority: preferred-class requesters beat the other class; within a
	// class, lower age wins; ties break on port index.
	outWinner := d.outWinner
	for o := range outWinner {
		outWinner[o] = -1
	}
	for o := 0; o < d.numOut; o++ {
		bit := uint64(1) << uint(o)
		bestPort := -1
		bestClass := 2
		var bestAge uint64
		for p := 0; p < d.numPorts; p++ {
			r := &reqs[p]
			class := 2
			var age uint64
			if r.Want[pref]&bit != 0 {
				class, age = 0, r.Age[pref]
			} else if r.Want[other]&bit != 0 {
				class, age = 1, r.Age[other]
			}
			if class == 2 {
				continue
			}
			if class < bestClass || (class == bestClass && age < bestAge) {
				bestPort, bestClass, bestAge = p, class, age
			}
		}
		outWinner[o] = bestPort
	}

	return d.stage2(reqs, pref, other)
}

// AllocateFast is Allocate with the stage-1 per-output arbitration done
// bit-parallel: the request matrix is transposed into per-output
// requester-port masks (touching only set bits), the class priority falls
// out of which mask is non-empty, and the age minimum scans only actual
// requesters. Stage 2 is shared code, so AllocateFast is grant-for-grant
// identical to Allocate — which remains the reference oracle the
// equivalence tests compare against.
func (d *DualInput) AllocateFast(reqs []DualRequest, preferBuffered bool) []DualGrant {
	if len(reqs) != d.numPorts {
		panic("arbiter: request slice has wrong port count")
	}
	pref, other := SubBufferless, SubBuffered
	if preferBuffered {
		pref, other = SubBuffered, SubBufferless
	}

	prefOut, otherOut := d.prefOut, d.otherOut
	for o := 0; o < d.numOut; o++ {
		prefOut[o], otherOut[o] = 0, 0
	}
	for p := range reqs {
		r := &reqs[p]
		pb := uint64(1) << uint(p)
		for m := r.Want[pref]; m != 0; m &= m - 1 {
			prefOut[bits.TrailingZeros64(m)] |= pb
		}
		for m := r.Want[other]; m != 0; m &= m - 1 {
			otherOut[bits.TrailingZeros64(m)] |= pb
		}
	}
	outWinner := d.outWinner
	for o := 0; o < d.numOut; o++ {
		m, sub := prefOut[o], pref
		if m == 0 {
			m, sub = otherOut[o], other
		}
		if m == 0 {
			outWinner[o] = -1
			continue
		}
		// Minimum age over the set bits; ties break on the lower port index,
		// which the ascending bit scan with a strict comparison preserves.
		best := bits.TrailingZeros64(m)
		bestAge := reqs[best].Age[sub]
		for mm := m & (m - 1); mm != 0; mm &= mm - 1 {
			p := bits.TrailingZeros64(mm)
			if a := reqs[p].Age[sub]; a < bestAge {
				best, bestAge = p, a
			}
		}
		outWinner[o] = best
	}
	return d.stage2(reqs, pref, other)
}

// stage2 runs the per-port serial V:1 arbitration over d.outWinner — the
// shared back half of Allocate and AllocateFast.
func (d *DualInput) stage2(reqs []DualRequest, pref, other int) []DualGrant {
	outWinner := d.outWinner
	grants := d.grants
	for p := range grants {
		grants[p] = DualGrant{-1, -1}
	}
	for p := 0; p < d.numPorts; p++ {
		var grantedMask uint64
		for o := 0; o < d.numOut; o++ {
			if outWinner[o] == p {
				grantedMask |= 1 << uint(o)
			}
		}
		if grantedMask == 0 {
			continue
		}
		r := &reqs[p]
		// First V:1 arbiter: the preferred sub-input if it can use a
		// granted output, otherwise the other one.
		s1 := pref
		m1 := r.Want[s1] & grantedMask
		if m1 == 0 {
			s1 = other
			m1 = r.Want[s1] & grantedMask
		}
		if m1 == 0 {
			continue // outputs were granted on stale requests; leave idle
		}
		o1 := bits.TrailingZeros64(m1)
		grants[p][s1] = o1
		// Second V:1 arbiter, in series: masked so it can only choose the
		// other sub-input, and never the output already taken.
		s2 := 1 - s1
		m2 := r.Want[s2] & grantedMask &^ (1 << uint(o1))
		if m2 != 0 {
			o2 := bits.TrailingZeros64(m2)
			grants[p][s2] = o2
			// Conflict detection (§II.B.2): the low-end entry must use the
			// lower output column. Sub-input 0 enters from the low end.
			lo, hi := grants[p][0], grants[p][1]
			if lo > hi {
				// Swap logic reroutes the two flits through each other's
				// physical entry point; both grants stand.
				d.swaps++
			}
		}
	}
	return grants
}
