package arbiter

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinEmptyMask(t *testing.T) {
	r := NewRoundRobin(4)
	if got := r.Grant(0); got != -1 {
		t.Errorf("Grant(0) = %d, want -1", got)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	r := NewRoundRobin(4)
	full := uint64(0b1111)
	want := []int{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if got := r.Grant(full); got != w {
			t.Fatalf("grant %d = %d, want %d", i, got, w)
		}
	}
}

func TestRoundRobinSkipsNonRequesters(t *testing.T) {
	r := NewRoundRobin(4)
	if got := r.Grant(0b1010); got != 1 {
		t.Fatalf("first grant = %d, want 1", got)
	}
	if got := r.Grant(0b1010); got != 3 {
		t.Fatalf("second grant = %d, want 3", got)
	}
	if got := r.Grant(0b1010); got != 1 {
		t.Fatalf("third grant = %d, want 1 (wrap)", got)
	}
}

func TestRoundRobinPeekDoesNotAdvance(t *testing.T) {
	r := NewRoundRobin(4)
	if r.Peek(0b1111) != 0 || r.Peek(0b1111) != 0 {
		t.Error("Peek must not advance the pointer")
	}
	r.Commit(2)
	if got := r.Peek(0b1111); got != 3 {
		t.Errorf("after Commit(2), Peek = %d, want 3", got)
	}
}

func TestRoundRobinPanicsOnBadWidth(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() { recover() }()
			NewRoundRobin(n)
			t.Errorf("NewRoundRobin(%d) must panic", n)
		}()
	}
}

// Property: a round-robin arbiter starves no one — under a persistent full
// request mask, every requester wins exactly once per n grants.
func TestRoundRobinFairnessProperty(t *testing.T) {
	f := func(width uint8, rounds uint8) bool {
		n := int(width)%16 + 1
		r := NewRoundRobin(n)
		counts := make([]int, n)
		total := (int(rounds)%8 + 1) * n
		for i := 0; i < total; i++ {
			counts[r.Grant((1<<uint(n))-1)]++
		}
		for _, c := range counts {
			if c != total/n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixInitialPriorityByIndex(t *testing.T) {
	m := NewMatrix(4)
	if got := m.Grant(0b1111); got != 0 {
		t.Fatalf("first grant = %d, want 0", got)
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	m := NewMatrix(3)
	if m.Grant(0b111) != 0 {
		t.Fatal("grant 1")
	}
	if m.Grant(0b111) != 1 {
		t.Fatal("grant 2")
	}
	if m.Grant(0b111) != 2 {
		t.Fatal("grant 3")
	}
	// 0 was served longest ago among requesters {0, 2}.
	if got := m.Grant(0b101); got != 0 {
		t.Fatalf("grant 4 = %d, want 0", got)
	}
	// Now 2 beats 0.
	if got := m.Grant(0b101); got != 2 {
		t.Fatalf("grant 5 = %d, want 2", got)
	}
}

func TestMatrixEmptyMask(t *testing.T) {
	if NewMatrix(4).Grant(0) != -1 {
		t.Error("empty mask must return -1")
	}
}

// Property: a matrix arbiter always grants a requester from the mask and
// never starves under persistent full load.
func TestMatrixValidWinnerProperty(t *testing.T) {
	m := NewMatrix(8)
	f := func(mask uint8) bool {
		w := m.Grant(uint64(mask))
		if mask == 0 {
			return w == -1
		}
		return w >= 0 && w < 8 && mask&(1<<uint(w)) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func req(n, m int, pairs ...[2]int) [][]bool {
	r := make([][]bool, n)
	for i := range r {
		r[i] = make([]bool, m)
	}
	for _, p := range pairs {
		r[p[0]][p[1]] = true
	}
	return r
}

func TestSeparableSimpleMatching(t *testing.T) {
	s := NewSeparable(5, 5)
	// Disjoint requests: all granted.
	g := s.Allocate(req(5, 5, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}))
	want := []int{1, 2, 3, -1, -1}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("grant[%d] = %d, want %d (all %v)", i, g[i], want[i], g)
		}
	}
}

func TestSeparableConflictGivesOneWinner(t *testing.T) {
	s := NewSeparable(5, 5)
	g := s.Allocate(req(5, 5, [2]int{0, 2}, [2]int{1, 2}, [2]int{3, 2}))
	winners := 0
	for i, o := range g {
		if o == 2 {
			winners++
		} else if o != -1 {
			t.Fatalf("input %d granted unrequested output %d", i, o)
		}
	}
	if winners != 1 {
		t.Fatalf("output 2 granted to %d inputs, want 1", winners)
	}
}

// Property: Separable never double-books an output, never grants an
// unrequested pair, and is maximal on single-request inputs with distinct
// outputs.
func TestSeparableMatchingProperty(t *testing.T) {
	s := NewSeparable(5, 5)
	f := func(raw [5]uint8) bool {
		r := make([][]bool, 5)
		for i := range r {
			r[i] = make([]bool, 5)
			for o := 0; o < 5; o++ {
				if raw[i]&(1<<uint(o)) != 0 {
					r[i][o] = true
				}
			}
		}
		g := s.Allocate(r)
		usedOut := map[int]bool{}
		for i, o := range g {
			if o == -1 {
				continue
			}
			if !r[i][o] || usedOut[o] {
				return false
			}
			usedOut[o] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSeparableRadixAccessors(t *testing.T) {
	s := NewSeparable(3, 7)
	if s.NumIn() != 3 || s.NumOut() != 7 {
		t.Error("radix accessors wrong")
	}
}

func TestSeparablePanicsOnWrongMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Allocate with wrong input count must panic")
		}
	}()
	NewSeparable(5, 5).Allocate(req(3, 5))
}
