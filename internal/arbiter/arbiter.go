// Package arbiter provides the arbitration and switch-allocation building
// blocks used by every router design in the repository:
//
//   - RoundRobin: the classic rotating-priority arbiter used by the generic
//     baseline router's separable allocator.
//   - Matrix: a least-recently-served matrix arbiter (kept for ablations and
//     as an alternative output-stage policy).
//   - Separable: an output-first separable switch allocator (Becker & Dally,
//     SC'09 — reference [14] of the paper) used by the Buffered 4/8 baseline.
//   - DualInput: the paper's augmented output-first allocator for the
//     unified dual-input crossbar (§II.B.1): each input port carries two
//     candidate flits (bufferless and buffered); two V:1 arbiters in series
//     select up to two grants per input port, and the conflict-free swap
//     logic (§II.B.2) repairs physically conflicting combinations.
//
// All arbiters are deterministic state machines; none are safe for
// concurrent use (the simulator is single-threaded per network).
package arbiter

import "fmt"

// RoundRobin is an n-requester rotating-priority arbiter. The requester at
// the pointer has highest priority; after a grant the pointer moves one past
// the winner, giving every requester a bounded wait.
type RoundRobin struct {
	n   int
	ptr int
}

// NewRoundRobin returns an arbiter over n requesters. n must be in (0, 64].
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("arbiter: invalid round-robin width %d", n))
	}
	return &RoundRobin{n: n}
}

// Grant picks the winning requester from the request bitmask (bit i set
// means requester i asks). It returns -1 if no bit is set. Grant updates the
// rotation pointer on success.
func (r *RoundRobin) Grant(mask uint64) int {
	if mask == 0 {
		return -1
	}
	for off := 0; off < r.n; off++ {
		i := (r.ptr + off) % r.n
		if mask&(1<<uint(i)) != 0 {
			r.ptr = (i + 1) % r.n
			return i
		}
	}
	return -1
}

// Peek is Grant without the pointer update (used by allocators that must
// arbitrate combinationally and commit later).
func (r *RoundRobin) Peek(mask uint64) int {
	if mask == 0 {
		return -1
	}
	for off := 0; off < r.n; off++ {
		i := (r.ptr + off) % r.n
		if mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// Commit moves the pointer past the given winner.
func (r *RoundRobin) Commit(winner int) {
	if winner >= 0 && winner < r.n {
		r.ptr = (winner + 1) % r.n
	}
}

// Matrix is a least-recently-served matrix arbiter: prio[i][j] == true means
// requester i beats requester j. After a grant the winner drops below every
// other requester.
type Matrix struct {
	n    int
	prio [][]bool
}

// NewMatrix returns an n-requester matrix arbiter with initial priority by
// index (lower index wins).
func NewMatrix(n int) *Matrix {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("arbiter: invalid matrix width %d", n))
	}
	m := &Matrix{n: n, prio: make([][]bool, n)}
	for i := range m.prio {
		m.prio[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.prio[i][j] = true
		}
	}
	return m
}

// Grant picks the requester that beats every other requester in the mask,
// updates the matrix, and returns its index (-1 if the mask is empty).
func (m *Matrix) Grant(mask uint64) int {
	if mask == 0 {
		return -1
	}
	winner := -1
	for i := 0; i < m.n; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		beatsAll := true
		for j := 0; j < m.n; j++ {
			if j == i || mask&(1<<uint(j)) == 0 {
				continue
			}
			if !m.prio[i][j] {
				beatsAll = false
				break
			}
		}
		if beatsAll {
			winner = i
			break
		}
	}
	if winner == -1 {
		// The matrix invariant guarantees a unique maximum; this is
		// unreachable unless the matrix was corrupted.
		panic("arbiter: matrix arbiter has no maximum")
	}
	for j := 0; j < m.n; j++ {
		if j != winner {
			m.prio[winner][j] = false
			m.prio[j][winner] = true
		}
	}
	return winner
}
