package diag

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dxbar/internal/metrics"
)

// BundleEntry is one file of a post-mortem bundle: a name and a writer that
// produces its contents. Entry writers run on the dumping goroutine and may
// allocate freely — bundles are written on the anomaly/signal/panic path,
// never in steady state.
type BundleEntry struct {
	Name  string
	Write func(io.Writer) error
}

// JSONEntry returns an entry that marshals v as indented JSON.
func JSONEntry(name string, v any) BundleEntry {
	return BundleEntry{Name: name, Write: func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}}
}

// TextEntry returns an entry with fixed contents.
func TextEntry(name, contents string) BundleEntry {
	return BundleEntry{Name: name, Write: func(w io.Writer) error {
		_, err := io.WriteString(w, contents)
		return err
	}}
}

// GoroutinesEntry returns an entry dumping every goroutine's stack — the
// post-mortem answer to "what was the process doing".
func GoroutinesEntry() BundleEntry {
	return BundleEntry{Name: "goroutines.txt", Write: func(w io.Writer) error {
		buf := make([]byte, 1<<20)
		for {
			n := runtime.Stack(buf, true)
			if n < len(buf) {
				_, err := w.Write(buf[:n])
				return err
			}
			buf = make([]byte, len(buf)*2)
		}
	}}
}

// MetricsEntry returns an entry with the registry's Prometheus text
// exposition (the final metrics snapshot). A nil registry writes a comment
// line, keeping the bundle's file set stable.
func MetricsEntry(r *metrics.Registry) BundleEntry {
	return BundleEntry{Name: "metrics.prom", Write: func(w io.Writer) error {
		if r == nil {
			_, err := io.WriteString(w, "# no metrics registry attached to this run\n")
			return err
		}
		return r.WritePrometheus(w)
	}}
}

// bundleManifest is manifest.json: the machine-readable index of a bundle.
// It is written last, so its presence marks the bundle complete — readers
// (and the golden test) key off it.
type bundleManifest struct {
	Schema  int      `json:"schema"`
	Reason  string   `json:"reason"`
	Cycle   uint64   `json:"cycle"`
	Created string   `json:"created"`
	Files   []string `json:"files"`
}

// ManifestSchema is the bundle manifest's schema version.
const ManifestSchema = 1

// WriteBundle writes a post-mortem bundle: a fresh uniquely-named directory
// under dir holding every entry plus a trailing manifest.json. reason tags
// the directory name ("anomaly-stall", "signal", "panic", "interrupt") and
// the manifest; cycle is the simulation cycle the dump was taken at (0 when
// unknown). Returns the bundle directory. Safe to call from concurrent runs:
// each call gets its own directory.
func WriteBundle(dir, reason string, cycle uint64, entries []BundleEntry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	bdir, err := os.MkdirTemp(dir, "dxbar-diag-"+sanitize(reason)+"-")
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if err := writeEntry(bdir, e); err != nil {
			return bdir, fmt.Errorf("diag: bundle entry %s: %w", e.Name, err)
		}
		names = append(names, e.Name)
	}
	m := bundleManifest{
		Schema:  ManifestSchema,
		Reason:  reason,
		Cycle:   cycle,
		Created: time.Now().UTC().Format(time.RFC3339),
		Files:   names,
	}
	if err := writeEntry(bdir, JSONEntry("manifest.json", m)); err != nil {
		return bdir, fmt.Errorf("diag: bundle manifest: %w", err)
	}
	return bdir, nil
}

func writeEntry(dir string, e BundleEntry) error {
	f, err := os.Create(filepath.Join(dir, e.Name))
	if err != nil {
		return err
	}
	werr := e.Write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// sanitize keeps reason strings path-safe.
func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

// WritePanicBundle writes the minimal bundle available from a deferred
// recover: the panic value + stack, the metrics snapshot, and all goroutine
// stacks. The CLIs call it from a top-level defer and then re-panic.
func WritePanicBundle(dir string, r *metrics.Registry, recovered any) (string, error) {
	stack := make([]byte, 64<<10)
	stack = stack[:runtime.Stack(stack, false)]
	return WriteBundle(dir, "panic", 0, []BundleEntry{
		TextEntry("panic.txt", fmt.Sprintf("panic: %v\n\n%s", recovered, stack)),
		MetricsEntry(r),
		GoroutinesEntry(),
	})
}
