package diag

import (
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by NewLogger (the CLIs' -log-format flag).
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds the structured logger shared by the cmd tools: leveled
// (verbose enables Debug, otherwise Info), text or JSON, writing to w
// (conventionally os.Stderr, keeping stdout for results). Unknown formats
// are an error so a typo'd flag fails loudly instead of logging nothing.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("diag: unknown log format %q (want %s or %s)", format, LogText, LogJSON)
	}
}
