package diag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dxbar/internal/metrics"
)

// TestStallWatchdog: the progress watchdog fires when no flit has been
// ejected for StallCycles while flits are in flight, re-arms so a persistent
// stall fires once per threshold interval, and any ejection resets it.
func TestStallWatchdog(t *testing.T) {
	m := NewMonitor(Config{StallCycles: 100}, 4)
	for c := uint64(0); c < 99; c++ {
		m.ObserveCycle(c, 0, 1)
	}
	if got := m.AnomalyCount(KindStall); got != 0 {
		t.Fatalf("fired %d stall anomalies below the threshold", got)
	}
	m.ObserveCycle(100, 0, 1)
	if got := m.AnomalyCount(KindStall); got != 1 {
		t.Fatalf("stall anomalies at threshold = %d, want 1", got)
	}
	// Persistent stall: one more firing per full interval, not per cycle.
	for c := uint64(101); c <= 200; c++ {
		m.ObserveCycle(c, 0, 1)
	}
	if got := m.AnomalyCount(KindStall); got != 2 {
		t.Fatalf("stall anomalies after re-arm interval = %d, want 2", got)
	}
	rec := m.Anomalies()
	if len(rec) != 2 || rec[0].Kind != KindStall || rec[0].Cycle != 100 || rec[0].Value != 100 {
		t.Fatalf("unexpected stall records %+v", rec)
	}

	// An ejection resets the watchdog.
	m2 := NewMonitor(Config{StallCycles: 100}, 4)
	for c := uint64(0); c < 1000; c++ {
		m2.ObserveCycle(c, c/50, 1) // ejections every 50 cycles
	}
	if got := m2.AnomalyCount(KindStall); got != 0 {
		t.Fatalf("watchdog fired %d times despite steady ejections", got)
	}

	// No flits in flight (drained network) is not a stall.
	m3 := NewMonitor(Config{StallCycles: 100}, 4)
	for c := uint64(0); c < 1000; c++ {
		m3.ObserveCycle(c, 0, 0)
	}
	if got := m3.AnomalyCount(KindStall); got != 0 {
		t.Fatalf("watchdog fired %d times on an idle network", got)
	}
}

// TestStarvationWatermark: the flit-age detector fires when the oldest
// engine-visible flit crosses MaxFlitAge, at most once per stuck packet.
func TestStarvationWatermark(t *testing.T) {
	m := NewMonitor(Config{Window: 64, MaxFlitAge: 500}, 4)
	m.ObserveWindow(WindowSample{Cycle: 63, OldestAge: 499, OldestPacket: 7, OldestNode: 2})
	if got := m.AnomalyCount(KindStarvation); got != 0 {
		t.Fatalf("starvation fired below the watermark (%d)", got)
	}
	m.ObserveWindow(WindowSample{Cycle: 127, OldestAge: 500, OldestPacket: 7, OldestFlit: 3, OldestNode: 2})
	if got := m.AnomalyCount(KindStarvation); got != 1 {
		t.Fatalf("starvation at the watermark = %d, want 1", got)
	}
	// Same stuck packet again: rate-limited, no second alarm.
	m.ObserveWindow(WindowSample{Cycle: 191, OldestAge: 564, OldestPacket: 7, OldestNode: 2})
	if got := m.AnomalyCount(KindStarvation); got != 1 {
		t.Fatalf("starvation re-fired for the same packet (%d)", got)
	}
	// A different starving packet is a new alarm.
	m.ObserveWindow(WindowSample{Cycle: 255, OldestAge: 600, OldestPacket: 9, OldestNode: 1})
	if got := m.AnomalyCount(KindStarvation); got != 2 {
		t.Fatalf("starvation for a second packet = %d, want 2", got)
	}

	a := m.Anomalies()[0]
	if a.Node != 2 || a.PacketID != 7 || a.FlitID != 3 || a.Value != 500 {
		t.Fatalf("starvation record %+v missing the offending flit identity", a)
	}
	if m.MaxFlitAge() != 600 {
		t.Fatalf("MaxFlitAge = %d, want 600", m.MaxFlitAge())
	}
}

// TestStormDetectors: a window's deflection/retransmission count fires only
// when it clears both the absolute floor and the factor over the trailing
// per-window mean; the first window only seeds the baseline.
func TestStormDetectors(t *testing.T) {
	m := NewMonitor(Config{Window: 64, StormFactor: 4, StormMinCount: 100}, 4)
	// Window 1: huge count, but no baseline yet — seeds only.
	m.ObserveWindow(WindowSample{Cycle: 63, OldestNode: -1, Deflected: 1000, Retransmits: 10})
	if got := m.AnomalyCount(KindDeflectStorm); got != 0 {
		t.Fatalf("deflect storm fired on the baseline-seeding window (%d)", got)
	}
	// Window 2: delta 1000 vs mean 1000 — not a spike.
	m.ObserveWindow(WindowSample{Cycle: 127, OldestNode: -1, Deflected: 2000, Retransmits: 20})
	if got := m.AnomalyCount(KindDeflectStorm); got != 0 {
		t.Fatalf("deflect storm fired at the steady rate (%d)", got)
	}
	// Window 3: delta 8000 vs mean 1000 — an 8x spike over a 4x factor.
	m.ObserveWindow(WindowSample{Cycle: 191, OldestNode: -1, Deflected: 10000, Retransmits: 30})
	if got := m.AnomalyCount(KindDeflectStorm); got != 1 {
		t.Fatalf("deflect storm at 8x baseline = %d, want 1", got)
	}
	// Retransmits spiked too (10/window -> 10), but under StormMinCount.
	if got := m.AnomalyCount(KindRetransmitStorm); got != 0 {
		t.Fatalf("retransmit storm fired under the absolute floor (%d)", got)
	}
	// Window 4: retransmit delta 970 vs mean 10 — fires.
	m.ObserveWindow(WindowSample{Cycle: 255, OldestNode: -1, Deflected: 10100, Retransmits: 1000})
	if got := m.AnomalyCount(KindRetransmitStorm); got != 1 {
		t.Fatalf("retransmit storm = %d, want 1", got)
	}

	var storm Anomaly
	for _, a := range m.Anomalies() {
		if a.Kind == KindDeflectStorm {
			storm = a
		}
	}
	if storm.Value != 8000 || storm.Baseline != 1000 {
		t.Fatalf("deflect storm record %+v, want value 8000 over baseline 1000", storm)
	}
}

// TestWindowDue: the engine-side window check matches the monitor's schedule.
func TestWindowDue(t *testing.T) {
	m := NewMonitor(Config{Window: 64}, 4)
	if m.WindowDue(62) {
		t.Fatal("window due before the first boundary")
	}
	if !m.WindowDue(63) {
		t.Fatal("window not due at the first boundary (Window-1)")
	}
	m.ObserveWindow(WindowSample{Cycle: 63, OldestNode: -1})
	if m.WindowDue(126) || !m.WindowDue(127) {
		t.Fatal("window schedule did not advance by Window after ObserveWindow")
	}
}

// TestFaultDetectionLatency: manifest->detected intervals land in the right
// histogram bucket, per node, and unmatched detections are ignored.
func TestFaultDetectionLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMonitor(Config{Registry: reg, Window: 64}, 16)

	m.FaultManifested(3, 100)
	m.FaultDetected(3, 130) // latency 30 -> bucket le=32
	m.FaultDetected(5, 200) // never manifested: ignored
	m.FaultManifested(7, 1000)
	m.FaultDetected(7, 1001) // latency 1 -> bucket le=1
	m.Detach()               // publishes the final snapshot

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		MetricFaultDetectLatency + `_bucket{le="1"} 1`,
		MetricFaultDetectLatency + `_bucket{le="32"} 2`,
		MetricFaultDetectLatency + `_count 2`,
		MetricFaultDetectLatency + `_sum 31`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Nil monitor: both hooks are no-ops.
	var nilMon *Monitor
	nilMon.FaultManifested(0, 1)
	nilMon.FaultDetected(0, 2)
}

// TestAnomalyMetricsAndRecords: counters are exact past the record cap, the
// record slice is bounded, and the overflow is reported.
func TestAnomalyMetricsAndRecords(t *testing.T) {
	reg := metrics.NewRegistry()
	var cb int
	m := NewMonitor(Config{
		StallCycles: 10, MaxRecords: 2, Registry: reg,
		OnAnomaly: func(Anomaly) { cb++ },
	}, 4)
	// Five threshold intervals with flits in flight and no ejections.
	for c := uint64(0); c <= 50; c++ {
		m.ObserveCycle(c, 0, 1)
	}
	if got := m.AnomalyCount(KindStall); got != 5 {
		t.Fatalf("stall count = %d, want 5", got)
	}
	if got := len(m.Anomalies()); got != 2 {
		t.Fatalf("records kept = %d, want cap 2", got)
	}
	if got := m.DroppedAnomalies(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if cb != 5 {
		t.Fatalf("OnAnomaly calls = %d, want 5 (callback runs past the cap)", cb)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := MetricAnomalies + `{kind="stall"} 5`; !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
}

// TestDumpTriggers: the first anomaly auto-dumps once; dump requests are
// consumed at window boundaries; FinalDump only writes when nothing else has.
func TestDumpTriggers(t *testing.T) {
	var dumps []string
	newMon := func() *Monitor {
		m := NewMonitor(Config{StallCycles: 10, Window: 64}, 4)
		m.SetDumper(func(cycle uint64, reason string) { dumps = append(dumps, reason) })
		return m
	}

	dumps = nil
	m := newMon()
	for c := uint64(0); c <= 30; c++ { // three stall firings
		m.ObserveCycle(c, 0, 1)
	}
	if len(dumps) != 1 || dumps[0] != "anomaly-stall" {
		t.Fatalf("anomaly dumps = %v, want one anomaly-stall", dumps)
	}
	m.FinalDump(31, "interrupt")
	if len(dumps) != 1 {
		t.Fatalf("FinalDump wrote despite an earlier auto-dump: %v", dumps)
	}

	dumps = nil
	m = newMon()
	m.RequestDump()
	m.ObserveCycle(1, 0, 1) // not a window boundary: nothing yet
	if len(dumps) != 0 {
		t.Fatalf("dump request consumed outside a window boundary: %v", dumps)
	}
	m.ObserveWindow(WindowSample{Cycle: 63, OldestNode: -1})
	if len(dumps) != 1 || dumps[0] != "signal" {
		t.Fatalf("signal dumps = %v, want one signal", dumps)
	}
	// Signal dumps do not exhaust the once-per-run anomaly dump.
	for c := uint64(64); c <= 80; c++ {
		m.ObserveCycle(c, 0, 1)
	}
	if len(dumps) != 2 || dumps[1] != "anomaly-stall" {
		t.Fatalf("dumps after signal = %v, want signal then anomaly-stall", dumps)
	}

	dumps = nil
	m = newMon()
	m.FinalDump(100, "interrupt")
	if len(dumps) != 1 || dumps[0] != "interrupt" {
		t.Fatalf("FinalDump = %v, want one interrupt", dumps)
	}
}

// TestStopAndInterrupt: the per-monitor stop and the process-wide interrupt
// flag both surface through StopRequested; a nil monitor never stops.
func TestStopAndInterrupt(t *testing.T) {
	t.Cleanup(ClearInterrupt)
	m := NewMonitor(Config{}, 4)
	if m.StopRequested() {
		t.Fatal("fresh monitor already stopping")
	}
	m.RequestStop()
	if !m.StopRequested() {
		t.Fatal("RequestStop not visible")
	}

	m2 := NewMonitor(Config{}, 4)
	Interrupt()
	if !Interrupted() {
		t.Fatal("process interrupt flag not visible")
	}
	if !m2.StopRequested() {
		t.Fatal("process interrupt not visible through the monitor")
	}
	ClearInterrupt()
	if m2.StopRequested() {
		t.Fatal("ClearInterrupt did not clear")
	}

	var nilMon *Monitor
	if nilMon.StopRequested() {
		t.Fatal("nil monitor reports a stop")
	}
}

// TestAnomalyLogging: each firing emits one structured Warn record through
// the configured logger.
func TestAnomalyLogging(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, LogJSON, false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(Config{StallCycles: 10, Logger: logger}, 4)
	for c := uint64(0); c <= 10; c++ {
		m.ObserveCycle(c, 0, 1)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("anomaly log is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["level"] != "WARN" || rec["kind"] != "stall" {
		t.Fatalf("anomaly log record %v, want WARN stall", rec)
	}
}

// TestKindEncoding: kinds render by name in logs and JSON bundles.
func TestKindEncoding(t *testing.T) {
	want := map[Kind]string{
		KindStall: "stall", KindStarvation: "starvation",
		KindDeflectStorm: "deflect_storm", KindRetransmitStorm: "retransmit_storm",
		NumKinds: "unknown",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	b, err := json.Marshal(Anomaly{Kind: KindDeflectStorm, Cycle: 9, Node: -1, Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"deflect_storm"`) {
		t.Errorf("anomaly JSON %s does not name its kind", b)
	}
}

// TestNewLogger: both formats work, verbosity gates Debug, and an unknown
// format is an error.
func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, LogText, false)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("hidden")
	logger.Info("shown", "k", "v")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("text logger at info level produced:\n%s", out)
	}

	buf.Reset()
	logger, err = NewLogger(&buf, LogJSON, true)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("now visible")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json logger output invalid: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "now visible" {
		t.Fatalf("json debug record %v", rec)
	}

	if _, err := NewLogger(&buf, "yaml", false); err == nil {
		t.Fatal("unknown log format accepted")
	}
}
