package diag

import (
	"log/slog"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// Process-wide run-control flags. They are global — not per-Monitor — because
// a signal arrives for the process, and a sweep may have many runs in flight
// plus more queued: every current and future monitor must see the interrupt,
// and exactly one window boundary should consume a dump request.
var (
	interruptFlag atomic.Bool
	dumpFlag      atomic.Bool
)

// Interrupt asks every current and future run to stop at its next cycle
// boundary (the graceful SIGINT/SIGTERM path). Runs finish their cycle,
// flush telemetry, and return partial results.
func Interrupt() { interruptFlag.Store(true) }

// ClearInterrupt resets the process-wide interrupt flag (tests, or a CLI
// that wants to survive an interrupted batch).
func ClearInterrupt() { interruptFlag.Store(false) }

// Interrupted reports whether Interrupt has been called.
func Interrupted() bool { return interruptFlag.Load() }

// RequestDump asks the next run to write a post-mortem bundle at its next
// detector-window boundary (the SIGQUIT path).
func RequestDump() { dumpFlag.Store(true) }

// consumeDumpRequest atomically claims a pending dump request, so exactly
// one monitor dumps per request even with concurrent runs.
func consumeDumpRequest() bool {
	return dumpFlag.Load() && dumpFlag.CompareAndSwap(true, false)
}

// InstallSignalHandlers wires graceful shutdown for a CLI:
//
//   - first SIGINT/SIGTERM sets the process-wide interrupt flag — live runs
//     stop at their next cycle, flush metrics, and report partial results;
//   - a second SIGINT/SIGTERM exits immediately (status 130);
//   - SIGQUIT requests a post-mortem bundle from the next live run and the
//     run continues (the stdlib's stack-dump-and-exit default is replaced).
//
// logger may be nil. Returns a function that uninstalls the handler.
func InstallSignalHandlers(logger *slog.Logger) func() {
	ch := make(chan os.Signal, 4)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	go func() {
		interrupts := 0
		for s := range ch {
			if s == syscall.SIGQUIT {
				if logger != nil {
					logger.Info("SIGQUIT received: post-mortem bundle requested from the live run")
				}
				RequestDump()
				continue
			}
			interrupts++
			if interrupts == 1 {
				if logger != nil {
					logger.Warn("interrupt: stopping gracefully — flushing metrics and writing partial results (interrupt again to exit immediately)",
						"signal", s.String())
				}
				Interrupt()
				continue
			}
			if logger != nil {
				logger.Error("second interrupt: exiting immediately")
			}
			os.Exit(130)
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}
