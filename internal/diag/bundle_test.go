package diag

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dxbar/internal/metrics"
)

func readManifest(t *testing.T, dir string) bundleManifest {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("bundle has no manifest (incomplete): %v", err)
	}
	var m bundleManifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("manifest.json invalid: %v", err)
	}
	return m
}

// TestWriteBundle: a bundle is a fresh directory holding every entry plus a
// trailing manifest that indexes them; concurrent bundles never collide.
func TestWriteBundle(t *testing.T) {
	dir := t.TempDir()
	entries := []BundleEntry{
		TextEntry("a.txt", "alpha\n"),
		JSONEntry("b.json", map[string]int{"x": 1}),
		GoroutinesEntry(),
		MetricsEntry(nil),
	}
	bdir, err := WriteBundle(dir, "anomaly-stall", 4242, entries)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(bdir), "anomaly-stall") {
		t.Errorf("bundle dir %q does not carry its reason", bdir)
	}

	m := readManifest(t, bdir)
	if m.Schema != ManifestSchema || m.Reason != "anomaly-stall" || m.Cycle != 4242 {
		t.Errorf("manifest header %+v", m)
	}
	want := []string{"a.txt", "b.json", "goroutines.txt", "metrics.prom"}
	got := append([]string(nil), m.Files...)
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("manifest files %v, want %v", got, want)
	}
	for _, name := range want {
		if _, err := os.Stat(filepath.Join(bdir, name)); err != nil {
			t.Errorf("manifest lists %s but the file is missing: %v", name, err)
		}
	}

	body, err := os.ReadFile(filepath.Join(bdir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "#") {
		t.Errorf("nil-registry metrics.prom should be a comment, got %q", body)
	}
	if stacks, _ := os.ReadFile(filepath.Join(bdir, "goroutines.txt")); !strings.Contains(string(stacks), "goroutine") {
		t.Error("goroutines.txt has no stacks")
	}

	// A second bundle under the same directory and reason is distinct.
	bdir2, err := WriteBundle(dir, "anomaly-stall", 4243, entries)
	if err != nil {
		t.Fatal(err)
	}
	if bdir2 == bdir {
		t.Fatal("two bundles shared a directory")
	}
}

// TestBundleReasonSanitized: reason strings with path-hostile characters stay
// inside the bundle directory.
func TestBundleReasonSanitized(t *testing.T) {
	dir := t.TempDir()
	bdir, err := WriteBundle(dir, "../sig/quit !", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(dir, bdir)
	if err != nil || strings.Contains(rel, "..") || strings.ContainsRune(rel, filepath.Separator) {
		t.Fatalf("bundle escaped its directory: %q (rel %q)", bdir, rel)
	}
}

// TestWritePanicBundle: the recover-path bundle carries the panic value, the
// originating stack and the metrics snapshot.
func TestWritePanicBundle(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("dxbar_test_total", "test counter").Add(7)

	dir := t.TempDir()
	var bdir string
	func() {
		defer func() {
			r := recover()
			var err error
			bdir, err = WritePanicBundle(dir, reg, r)
			if err != nil {
				t.Errorf("WritePanicBundle: %v", err)
			}
		}()
		panic("boom at cycle 9")
	}()

	m := readManifest(t, bdir)
	if m.Reason != "panic" {
		t.Errorf("manifest reason %q, want panic", m.Reason)
	}
	body, err := os.ReadFile(filepath.Join(bdir, "panic.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "boom at cycle 9") || !strings.Contains(string(body), "TestWritePanicBundle") {
		t.Errorf("panic.txt missing the panic value or stack:\n%s", body)
	}
	prom, err := os.ReadFile(filepath.Join(bdir, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "dxbar_test_total 7") {
		t.Errorf("metrics.prom missing the snapshot:\n%s", prom)
	}
}
