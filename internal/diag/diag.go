// Package diag is the always-on run-health layer: anomaly detectors hooked
// into the engine's cycle loop, post-mortem bundle writing, structured
// logging for the CLIs, and the process-wide interrupt/dump flags behind
// graceful shutdown.
//
// The detectors share the observability contract of internal/events and
// internal/metrics:
//
//   - They observe, never steer. Every detector input is deterministic
//     simulation state read at a sequential point of the cycle loop, so the
//     anomaly stream itself is deterministic and results are bit-identical
//     with diagnostics on or off (and sequential vs. sharded).
//   - Steady state is allocation-free. The per-cycle leg is two compares;
//     the windowed leg is arithmetic over preallocated state; anomaly records
//     land in a fixed-capacity slice (overflow is counted, not stored).
//   - Disabled is free. The engine guards every hook behind a nil check, and
//     the fault hooks no-op on a nil *Monitor.
package diag

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync/atomic"

	"dxbar/internal/metrics"
)

// Metric names published by a Monitor. Exported so tests and METRICS.md
// assert against the same strings the detectors publish (the engine-owned
// names live in internal/metrics).
const (
	MetricAnomalies          = "dxbar_anomaly_total"
	MetricFlitAgeMax         = "dxbar_flit_age_max"
	MetricFaultDetectLatency = "dxbar_fault_detect_latency_cycles"
)

// Kind classifies an anomaly.
type Kind uint8

// The detector kinds. Stall is the progress watchdog (no ejection while
// flits are in flight); Starvation the flit-age watermark; the storm kinds
// compare a window's deflection/retransmission count against the run's
// trailing per-window baseline.
const (
	KindStall Kind = iota
	KindStarvation
	KindDeflectStorm
	KindRetransmitStorm
	NumKinds
)

var kindNames = [NumKinds]string{"stall", "starvation", "deflect_storm", "retransmit_storm"}

// String returns the kind's snake_case name (the metric label value).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind by name, so anomaly records in post-mortem
// bundles are readable without the enum table.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind by name, so bundle readers round-trip
// anomalies.json.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("diag: unknown anomaly kind %q", s)
}

// Anomaly is one detector firing. All fields are plain scalars derived from
// deterministic simulation state, so the anomaly stream of a run is itself
// deterministic (and identical between the sequential and sharded engines).
type Anomaly struct {
	Kind  Kind   `json:"kind"`
	Cycle uint64 `json:"cycle"`
	// Node is the offending node (-1 when the anomaly is network-wide).
	Node int32 `json:"node"`
	// PacketID and FlitID identify the offending flit for starvation alarms
	// (0 when not applicable).
	PacketID uint64 `json:"packet_id,omitempty"`
	FlitID   uint64 `json:"flit_id,omitempty"`
	// Value is the measured quantity that crossed the threshold: stalled
	// cycles, flit age, or the window's event count.
	Value uint64 `json:"value"`
	// Baseline is the trailing per-window mean the storm detectors compared
	// Value against (0 for the threshold detectors).
	Baseline float64 `json:"baseline,omitempty"`
}

// Detector defaults. Chosen so healthy below-saturation runs never fire:
// a network with flits in flight ejects within the mesh diameter, and even
// deeply congested short runs stay under the age watermark.
const (
	DefaultWindow        = 1024
	DefaultStallCycles   = 10_000
	DefaultMaxFlitAge    = 50_000
	DefaultStormFactor   = 8.0
	DefaultStormMinCount = 512
	DefaultMaxRecords    = 64
)

// FaultLatencyBounds returns the bucket upper bounds of the
// fault-detection-latency histogram (cycles from fault-manifest to
// fault-detected), ascending. Allocates; call at registration.
func FaultLatencyBounds() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}
}

// Config tunes a Monitor. The zero value selects every default; detectors
// cannot be individually disabled (set thresholds high instead), only the
// whole monitor (dxbar.Config.DisableDiag).
type Config struct {
	// Window is the detector window in cycles: the flit-age scan, the storm
	// baselines and dump-request consumption all run once per window.
	Window uint64
	// StallCycles is the progress watchdog threshold: an anomaly fires when
	// no flit has been ejected for that many cycles while flits are in
	// flight (livelock, deadlock, or a wedged design).
	StallCycles uint64
	// MaxFlitAge is the starvation threshold: an anomaly fires when the
	// oldest engine-visible flit (injection-queue heads, input latches,
	// link stages) exceeds that age in cycles. At most one alarm per stuck
	// packet.
	MaxFlitAge uint64
	// StormFactor and StormMinCount gate the deflection/retransmission storm
	// detectors: a window fires when its event count is at least
	// StormMinCount AND exceeds StormFactor × the trailing per-window mean.
	StormFactor   float64
	StormMinCount uint64
	// MaxRecords caps the anomaly records kept in memory (the overflow is
	// counted in DroppedAnomalies, and the dxbar_anomaly_total counters are
	// exact regardless).
	MaxRecords int
	// WidenTrace opens the flight recorder's event-kind mask to every kind
	// on the first anomaly, so the ring captures full detail for the tail of
	// the run. Opt-in: widening changes Result.Events, so it is excluded
	// from the bit-identity guarantee (everything else still holds).
	WidenTrace bool
	// OnAnomaly, when non-nil, is called synchronously for every anomaly
	// (after the record and metrics are updated).
	OnAnomaly func(Anomaly)
	// Logger, when non-nil, receives one structured Warn record per anomaly.
	Logger *slog.Logger
	// Registry, when non-nil, receives the dxbar_anomaly_total{kind}
	// counters, the dxbar_flit_age_max gauge and the
	// dxbar_fault_detect_latency_cycles histogram.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.StallCycles == 0 {
		c.StallCycles = DefaultStallCycles
	}
	if c.MaxFlitAge == 0 {
		c.MaxFlitAge = DefaultMaxFlitAge
	}
	if c.StormFactor == 0 {
		c.StormFactor = DefaultStormFactor
	}
	if c.StormMinCount == 0 {
		c.StormMinCount = DefaultStormMinCount
	}
	if c.MaxRecords == 0 {
		c.MaxRecords = DefaultMaxRecords
	}
	return c
}

// WindowSample is the windowed detector input the engine gathers at a window
// boundary: the oldest engine-visible flit and the whole-run deflection and
// retransmission totals.
type WindowSample struct {
	Cycle uint64
	// OldestAge is the age (cycles since generation) of the oldest flit
	// visible to the engine; OldestPacket/OldestFlit/OldestNode identify it.
	// OldestNode is -1 when no flit is in flight.
	OldestAge    uint64
	OldestPacket uint64
	OldestFlit   uint64
	OldestNode   int32
	// Deflected and Retransmits are whole-run totals; the monitor windows
	// them itself.
	Deflected   uint64
	Retransmits uint64
}

// Monitor is one run's health monitor. The engine owns the call points: the
// per-cycle ObserveCycle, the per-window ObserveWindow (fed by the engine's
// flit scan), and the fault hooks, which routers reach through their Env.
// All detector state mutates only at sequential points of the cycle loop;
// the fault-latency histogram uses atomics because routers call the fault
// hooks from shard workers.
type Monitor struct {
	cfg   Config
	nodes int

	// Progress watchdog.
	lastEjected  uint64
	lastProgress uint64

	// Window state.
	nextWindow  uint64
	windows     uint64
	lastDeflect uint64
	lastRetx    uint64
	deflectBase uint64 // sum of completed windows' deltas
	retxBase    uint64
	maxAgeSeen  uint64
	lastAgePub  int64  // last gauge contribution (delta-tracked, like SimTelemetry)
	lastStarved uint64 // packet that already fired a starvation alarm

	records []Anomaly
	counts  [NumKinds]uint64
	dropped uint64

	widen   func()
	widened bool
	dump    func(cycle uint64, reason string)
	dumped  bool

	stop    atomic.Bool
	dumpReq atomic.Bool

	// Fault-detection latency. manifest[n] holds node n's manifest cycle +1
	// (0 = none); written only by the node's owning worker, read by the same
	// node's detect hook, so plain stores are race-free. The buckets are
	// shared across workers, hence atomic.
	manifest     []uint64
	faultBuckets []atomic.Uint64
	faultBounds  []float64
	faultCount   atomic.Uint64
	faultSum     atomic.Uint64
	faultScratch []uint64

	anomalyTotal [NumKinds]*metrics.Counter
	flitAgeMax   *metrics.Gauge
	faultHist    *metrics.Histogram
}

// NewMonitor builds a monitor for a network of the given node count,
// registering its metric series when cfg.Registry is set.
func NewMonitor(cfg Config, nodes int) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:         cfg,
		nodes:       nodes,
		nextWindow:  cfg.Window - 1,
		records:     make([]Anomaly, 0, cfg.MaxRecords),
		manifest:    make([]uint64, nodes),
		faultBounds: FaultLatencyBounds(),
	}
	m.faultBuckets = make([]atomic.Uint64, len(m.faultBounds))
	m.faultScratch = make([]uint64, len(m.faultBounds))
	if r := cfg.Registry; r != nil {
		for k := Kind(0); k < NumKinds; k++ {
			m.anomalyTotal[k] = r.Counter(MetricAnomalies,
				"Run-health anomalies detected, by kind (stall, starvation, deflect_storm, retransmit_storm).",
				metrics.Label{Key: "kind", Value: k.String()})
		}
		m.flitAgeMax = r.Gauge(MetricFlitAgeMax,
			"Age in cycles of the oldest engine-visible in-flight flit, sampled per detector window.")
		m.faultHist = r.Histogram(MetricFaultDetectLatency,
			"Cycles from fault manifestation to BIST detection, per faulty router.",
			m.faultBounds)
	}
	return m
}

// SetTraceWidener installs the engine's event-mask widener (nil clears it).
// Called by the engine at wiring time; fired at most once, on the first
// anomaly, and only with Config.WidenTrace.
func (m *Monitor) SetTraceWidener(fn func()) {
	if m != nil {
		m.widen = fn
		m.widened = false
	}
}

// SetDumper installs the post-mortem bundle writer. The monitor calls it
// from the engine goroutine: once on the first anomaly, and on every
// consumed dump request (SIGQUIT). Nil-safe.
func (m *Monitor) SetDumper(fn func(cycle uint64, reason string)) {
	if m != nil {
		m.dump = fn
	}
}

// ObserveCycle is the per-cycle detector leg: the progress watchdog. Two
// compares on the healthy path. ejected is the run's ejection total,
// inFlight the live flit count.
func (m *Monitor) ObserveCycle(cycle, ejected uint64, inFlight int) {
	if ejected != m.lastEjected {
		m.lastEjected = ejected
		m.lastProgress = cycle
		return
	}
	if inFlight > 0 && cycle-m.lastProgress >= m.cfg.StallCycles {
		m.fire(Anomaly{
			Kind:  KindStall,
			Cycle: cycle,
			Node:  -1,
			Value: cycle - m.lastProgress,
		})
		// Re-arm so a persistent stall fires once per threshold interval,
		// not once per cycle.
		m.lastProgress = cycle
	}
}

// WindowDue reports whether the windowed detector leg is due at cycle c.
func (m *Monitor) WindowDue(c uint64) bool { return c >= m.nextWindow }

// ObserveWindow runs the windowed detectors on the engine's sample: the
// flit-age watermark, the storm baselines, the fault-latency publication and
// dump-request consumption. Allocation-free.
func (m *Monitor) ObserveWindow(s WindowSample) {
	m.nextWindow = s.Cycle + m.cfg.Window

	// A SIGQUIT-style dump request (per-monitor or process-global) is
	// consumed at window boundaries — a sequential point where every staged
	// side effect has been replayed, so the bundle sees consistent state.
	if m.dump != nil && (m.dumpReq.CompareAndSwap(true, false) || consumeDumpRequest()) {
		m.dump(s.Cycle, "signal")
	}

	// Flit-age watermark.
	if s.OldestAge > m.maxAgeSeen {
		m.maxAgeSeen = s.OldestAge
	}
	m.flitAgeMax.Add(int64(s.OldestAge) - m.lastAgePub)
	m.lastAgePub = int64(s.OldestAge)
	if s.OldestNode >= 0 && s.OldestAge >= m.cfg.MaxFlitAge && s.OldestPacket != m.lastStarved {
		m.lastStarved = s.OldestPacket
		m.fire(Anomaly{
			Kind:     KindStarvation,
			Cycle:    s.Cycle,
			Node:     s.OldestNode,
			PacketID: s.OldestPacket,
			FlitID:   s.OldestFlit,
			Value:    s.OldestAge,
		})
	}

	// Storm detectors: this window's count vs. the trailing per-window mean
	// of every earlier window. The first window only seeds the baseline.
	dDelta := s.Deflected - m.lastDeflect
	rDelta := s.Retransmits - m.lastRetx
	m.lastDeflect, m.lastRetx = s.Deflected, s.Retransmits
	if m.windows > 0 {
		base := float64(m.deflectBase) / float64(m.windows)
		if dDelta >= m.cfg.StormMinCount && float64(dDelta) > m.cfg.StormFactor*base {
			m.fire(Anomaly{Kind: KindDeflectStorm, Cycle: s.Cycle, Node: -1, Value: dDelta, Baseline: base})
		}
		base = float64(m.retxBase) / float64(m.windows)
		if rDelta >= m.cfg.StormMinCount && float64(rDelta) > m.cfg.StormFactor*base {
			m.fire(Anomaly{Kind: KindRetransmitStorm, Cycle: s.Cycle, Node: -1, Value: rDelta, Baseline: base})
		}
	}
	m.deflectBase += dDelta
	m.retxBase += rDelta
	m.windows++

	m.publishFaultLatency()
}

// fire records one anomaly: counters, the bounded record slice, the metric,
// the structured log record, the callback, and — once — the trace widening
// and the automatic post-mortem dump.
func (m *Monitor) fire(a Anomaly) {
	m.counts[a.Kind]++
	m.anomalyTotal[a.Kind].Add(1)
	if len(m.records) < cap(m.records) {
		m.records = append(m.records, a)
	} else {
		m.dropped++
	}
	if m.cfg.WidenTrace && m.widen != nil && !m.widened {
		m.widened = true
		m.widen()
	}
	if l := m.cfg.Logger; l != nil {
		l.Warn("anomaly detected",
			"kind", a.Kind.String(), "cycle", a.Cycle, "node", a.Node,
			"packet", a.PacketID, "value", a.Value, "baseline", a.Baseline)
	}
	if m.cfg.OnAnomaly != nil {
		m.cfg.OnAnomaly(a)
	}
	if m.dump != nil && !m.dumped {
		m.dumped = true
		m.dump(a.Cycle, "anomaly-"+a.Kind.String())
	}
}

// FaultManifested records that node's fault manifested at the given cycle
// (the start of the BIST detection window). Nil-safe; called from the
// router's owning worker.
func (m *Monitor) FaultManifested(node int, cycle uint64) {
	if m == nil {
		return
	}
	m.manifest[node] = cycle + 1
}

// FaultDetected records that node's fault detection, closing the latency
// window opened by FaultManifested. Nil-safe; the bucket counters are atomic
// because detections on different shards may race.
func (m *Monitor) FaultDetected(node int, cycle uint64) {
	if m == nil {
		return
	}
	mc := m.manifest[node]
	if mc == 0 {
		return
	}
	m.manifest[node] = 0
	lat := cycle - (mc - 1)
	idx := len(m.faultBounds) - 1
	for i, b := range m.faultBounds {
		if float64(lat) <= b {
			idx = i
			break
		}
	}
	m.faultBuckets[idx].Add(1)
	m.faultCount.Add(1)
	m.faultSum.Add(lat)
}

// publishFaultLatency copies the atomic bucket counters into the registered
// histogram snapshot (preallocated scratch; no-op without a registry).
func (m *Monitor) publishFaultLatency() {
	if m.faultHist == nil {
		return
	}
	for i := range m.faultBuckets {
		m.faultScratch[i] = m.faultBuckets[i].Load()
	}
	m.faultHist.Update(m.faultScratch, m.faultCount.Load(), float64(m.faultSum.Load()))
}

// RequestStop asks the run to stop at the next cycle boundary (this monitor
// only; diag.Interrupt is the process-wide equivalent). Safe from any
// goroutine; nil-safe.
func (m *Monitor) RequestStop() {
	if m != nil {
		m.stop.Store(true)
	}
}

// RequestDump asks for a post-mortem bundle at the next window boundary
// (this monitor only; diag.RequestDump is the process-wide equivalent).
func (m *Monitor) RequestDump() {
	if m != nil {
		m.dumpReq.Store(true)
	}
}

// StopRequested reports whether the run should stop: a per-monitor stop or
// the process-wide interrupt flag. Two atomic loads; the engine checks it
// once per cycle. False on a nil monitor.
func (m *Monitor) StopRequested() bool {
	return m != nil && (m.stop.Load() || interruptFlag.Load())
}

// FinalDump writes the post-mortem bundle at end of run if none was written
// automatically (the interrupt path). Nil-safe.
func (m *Monitor) FinalDump(cycle uint64, reason string) {
	if m == nil || m.dump == nil || m.dumped {
		return
	}
	m.dumped = true
	m.dump(cycle, reason)
}

// Anomalies returns a copy of the recorded anomalies, in firing order (nil
// when none fired). Nil-safe.
func (m *Monitor) Anomalies() []Anomaly {
	if m == nil || len(m.records) == 0 {
		return nil
	}
	return append([]Anomaly(nil), m.records...)
}

// DroppedAnomalies counts anomalies beyond the record cap (their counters
// and callbacks still ran).
func (m *Monitor) DroppedAnomalies() uint64 {
	if m == nil {
		return 0
	}
	return m.dropped
}

// AnomalyCount returns the total anomalies of one kind over the run.
func (m *Monitor) AnomalyCount(k Kind) uint64 {
	if m == nil {
		return 0
	}
	return m.counts[k]
}

// MaxFlitAge returns the highest windowed flit-age watermark seen.
func (m *Monitor) MaxFlitAge() uint64 {
	if m == nil {
		return 0
	}
	return m.maxAgeSeen
}

// Detach publishes the final fault-latency snapshot and removes this run's
// flit-age gauge contribution from the shared registry (mirroring
// SimTelemetry.Detach). Nil-safe.
func (m *Monitor) Detach() {
	if m == nil {
		return
	}
	m.publishFaultLatency()
	m.flitAgeMax.Add(-m.lastAgePub)
	m.lastAgePub = 0
}
