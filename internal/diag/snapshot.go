package diag

import (
	"fmt"

	"dxbar/internal/snapshot"
)

// SaveState serializes the monitor's detector state so a restored run
// reproduces the exact anomaly stream of the uninterrupted one: the progress
// watchdog, the window baselines, the starvation latch, the recorded
// anomalies, and the fault-latency accounting. Hooks (widener, dumper, stop
// flags) and registry handles are wiring, re-created on restore; the
// flit-age gauge's delta tracker is registry-coupled and starts fresh.
func (m *Monitor) SaveState(w *snapshot.Writer) {
	w.Tag("DIAG")
	w.U64(m.lastEjected)
	w.U64(m.lastProgress)
	w.U64(m.nextWindow)
	w.U64(m.windows)
	w.U64(m.lastDeflect)
	w.U64(m.lastRetx)
	w.U64(m.deflectBase)
	w.U64(m.retxBase)
	w.U64(m.maxAgeSeen)
	w.U64(m.lastStarved)
	w.U64(m.dropped)
	w.Bool(m.widened)
	w.Bool(m.dumped)
	for k := Kind(0); k < NumKinds; k++ {
		w.U64(m.counts[k])
	}
	w.U32(uint32(len(m.records)))
	for i := range m.records {
		a := &m.records[i]
		w.U8(uint8(a.Kind))
		w.U64(a.Cycle)
		w.I64(int64(a.Node))
		w.U64(a.PacketID)
		w.U64(a.FlitID)
		w.U64(a.Value)
		w.F64(a.Baseline)
	}
	w.U32(uint32(len(m.manifest)))
	for _, v := range m.manifest {
		w.U64(v)
	}
	w.U32(uint32(len(m.faultBuckets)))
	for i := range m.faultBuckets {
		w.U64(m.faultBuckets[i].Load())
	}
	w.U64(m.faultCount.Load())
	w.U64(m.faultSum.Load())
}

// LoadState restores a monitor built with the same configuration and node
// count. dst may be nil (diagnostics disabled on the restore side), in which
// case the section is decoded and discarded.
func LoadState(r *snapshot.Reader, dst *Monitor) error {
	r.Expect("DIAG")
	lastEjected := r.U64()
	lastProgress := r.U64()
	nextWindow := r.U64()
	windows := r.U64()
	lastDeflect := r.U64()
	lastRetx := r.U64()
	deflectBase := r.U64()
	retxBase := r.U64()
	maxAgeSeen := r.U64()
	lastStarved := r.U64()
	dropped := r.U64()
	widened := r.Bool()
	dumped := r.Bool()
	var counts [NumKinds]uint64
	for k := Kind(0); k < NumKinds; k++ {
		counts[k] = r.U64()
	}
	nrec := r.Len(1 << 16)
	if err := r.Err(); err != nil {
		return err
	}
	records := make([]Anomaly, 0, nrec)
	for i := 0; i < nrec; i++ {
		var a Anomaly
		a.Kind = Kind(r.U8())
		a.Cycle = r.U64()
		a.Node = int32(r.I64())
		a.PacketID = r.U64()
		a.FlitID = r.U64()
		a.Value = r.U64()
		a.Baseline = r.F64()
		if err := r.Err(); err != nil {
			return err
		}
		if a.Kind >= NumKinds {
			return fmt.Errorf("diag: snapshot anomaly kind %d out of range", a.Kind)
		}
		records = append(records, a)
	}
	nman := r.Len(1 << 24)
	if err := r.Err(); err != nil {
		return err
	}
	if dst != nil && nman != len(dst.manifest) {
		return fmt.Errorf("diag: snapshot manifest length %d != %d nodes", nman, len(dst.manifest))
	}
	manifest := make([]uint64, nman)
	for i := range manifest {
		manifest[i] = r.U64()
	}
	nb := r.Len(64)
	if err := r.Err(); err != nil {
		return err
	}
	if dst != nil && nb != len(dst.faultBuckets) {
		return fmt.Errorf("diag: snapshot fault-bucket count %d != %d", nb, len(dst.faultBuckets))
	}
	buckets := make([]uint64, nb)
	for i := range buckets {
		buckets[i] = r.U64()
	}
	faultCount := r.U64()
	faultSum := r.U64()
	if err := r.Err(); err != nil {
		return err
	}

	if dst == nil {
		return nil
	}
	dst.lastEjected = lastEjected
	dst.lastProgress = lastProgress
	dst.nextWindow = nextWindow
	dst.windows = windows
	dst.lastDeflect = lastDeflect
	dst.lastRetx = lastRetx
	dst.deflectBase = deflectBase
	dst.retxBase = retxBase
	dst.maxAgeSeen = maxAgeSeen
	dst.lastStarved = lastStarved
	dst.dropped = dropped
	dst.widened = widened
	dst.dumped = dumped
	dst.counts = counts
	// Append into the existing backing array so the MaxRecords capacity (and
	// with it the overflow behaviour of future fires) survives the restore.
	dst.records = append(dst.records[:0], records...)
	copy(dst.manifest, manifest)
	for i := range buckets {
		dst.faultBuckets[i].Store(buckets[i])
	}
	dst.faultCount.Store(faultCount)
	dst.faultSum.Store(faultSum)
	return nil
}
