package buffer

import (
	"fmt"

	"dxbar/internal/flit"
	"dxbar/internal/snapshot"
)

// SaveState serializes the FIFO contents oldest-first. The ring phase (head
// position) is not captured: restore re-pushes from slot 0, which is
// behaviourally identical and keeps the byte stream canonical regardless of
// how the ring happened to be rotated.
func (f *FIFO) SaveState(w *snapshot.Writer) {
	w.U32(uint32(f.count))
	for i := 0; i < f.count; i++ {
		flit.Save(w, f.slots[(f.head+i)%len(f.slots)])
	}
}

// LoadState restores the FIFO from a snapshot, drawing flits from the pool.
// The FIFO must be empty (fresh or Reset).
func (f *FIFO) LoadState(r *snapshot.Reader, pool *flit.Pool, nodes int) error {
	n := r.Len(len(f.slots))
	if err := r.Err(); err != nil {
		return err
	}
	f.head = 0
	f.count = 0
	for i := range f.slots {
		f.slots[i] = nil
	}
	for i := 0; i < n; i++ {
		fl := pool.Get()
		if err := flit.Load(r, fl, nodes); err != nil {
			return err
		}
		f.Push(fl)
	}
	return nil
}

// SaveState serializes one credit counter: the available count, the pending
// sum and the delay pipeline slots.
func (c *Credits) SaveState(w *snapshot.Writer) {
	w.Int(c.available)
	w.Int(c.pendingCnt)
	w.U32(uint32(len(c.inflight)))
	for _, v := range c.inflight {
		w.Int(v)
	}
}

// LoadState restores one credit counter, validating the flow-control
// invariants (pipeline length matches the configured delay, counts are
// non-negative, and available + pending never exceeds capacity).
func (c *Credits) LoadState(r *snapshot.Reader) error {
	avail := r.Int()
	pending := r.Int()
	n := r.Len(len(c.inflight))
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(c.inflight) {
		return fmt.Errorf("buffer: snapshot credit delay %d != configured %d", n, len(c.inflight))
	}
	sum := 0
	for i := 0; i < n; i++ {
		v := r.Int()
		if v < 0 || v > c.max {
			return fmt.Errorf("buffer: snapshot credit pipeline slot out of range")
		}
		c.inflight[i] = v
		sum += v
	}
	if err := r.Err(); err != nil {
		return err
	}
	if avail < 0 || pending != sum || avail+pending > c.max {
		return fmt.Errorf("buffer: snapshot credits violate flow control (avail=%d pending=%d max=%d)", avail, pending, c.max)
	}
	c.available = avail
	c.pendingCnt = pending
	return nil
}
