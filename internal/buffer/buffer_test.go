package buffer

import (
	"testing"
	"testing/quick"

	"dxbar/internal/flit"
)

func mk(id uint64) *flit.Flit { return &flit.Flit{ID: id} }

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(4)
	for i := uint64(1); i <= 4; i++ {
		f.Push(mk(i))
	}
	for i := uint64(1); i <= 4; i++ {
		if got := f.Pop(); got.ID != i {
			t.Fatalf("pop = %d, want %d", got.ID, i)
		}
	}
	if f.Pop() != nil {
		t.Error("pop from empty must return nil")
	}
}

func TestFIFOWraparound(t *testing.T) {
	f := NewFIFO(2)
	f.Push(mk(1))
	f.Push(mk(2))
	f.Pop()
	f.Push(mk(3))
	if f.Pop().ID != 2 || f.Pop().ID != 3 {
		t.Error("wraparound order broken")
	}
}

func TestFIFOHeadPeeks(t *testing.T) {
	f := NewFIFO(4)
	if f.Head() != nil {
		t.Error("empty head must be nil")
	}
	f.Push(mk(9))
	if f.Head().ID != 9 || f.Head().ID != 9 {
		t.Error("Head must not consume")
	}
	if f.Len() != 1 {
		t.Error("Head changed length")
	}
}

func TestFIFOStateAccessors(t *testing.T) {
	f := NewFIFO(3)
	if !f.Empty() || f.Full() || f.Depth() != 3 || f.Len() != 0 {
		t.Error("fresh FIFO state wrong")
	}
	f.Push(mk(1))
	f.Push(mk(2))
	f.Push(mk(3))
	if f.Empty() || !f.Full() || f.Len() != 3 {
		t.Error("full FIFO state wrong")
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	f := NewFIFO(1)
	f.Push(mk(1))
	defer func() {
		if recover() == nil {
			t.Error("push to full FIFO must panic")
		}
	}()
	f.Push(mk(2))
}

func TestFIFOBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFIFO(0) must panic")
		}
	}()
	NewFIFO(0)
}

// Property: a FIFO behaves exactly like a bounded queue for any push/pop
// interleaving.
func TestFIFOQueueEquivalenceProperty(t *testing.T) {
	f := func(ops []bool) bool {
		fifo := NewFIFO(4)
		var model []uint64
		next := uint64(1)
		for _, push := range ops {
			if push {
				if fifo.Full() {
					if len(model) != 4 {
						return false
					}
					continue
				}
				fifo.Push(mk(next))
				model = append(model, next)
				next++
			} else {
				got := fifo.Pop()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				if got == nil || got.ID != model[0] {
					return false
				}
				model = model[1:]
			}
			if fifo.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCreditsConsumeReturnCycle(t *testing.T) {
	c := NewCredits(2, 1)
	if c.Available() != 2 || !c.CanSend() {
		t.Fatal("fresh credits wrong")
	}
	c.Consume()
	c.Consume()
	if c.CanSend() {
		t.Fatal("must be exhausted")
	}
	c.Return()
	if c.CanSend() {
		t.Fatal("returned credit must not be visible before Tick")
	}
	c.Tick()
	if c.Available() != 1 {
		t.Fatalf("available = %d, want 1", c.Available())
	}
	if c.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", c.Outstanding())
	}
}

func TestCreditsDelayedReturn(t *testing.T) {
	c := NewCredits(4, 3)
	c.Consume()
	c.Return()
	for i := 0; i < 2; i++ {
		c.Tick()
		if c.Available() != 3 {
			t.Fatalf("credit visible after %d ticks with delay 3", i+1)
		}
	}
	c.Tick()
	if c.Available() != 4 {
		t.Fatal("credit must be visible after 3 ticks")
	}
}

func TestCreditsUnderflowPanics(t *testing.T) {
	c := NewCredits(1, 1)
	c.Consume()
	defer func() {
		if recover() == nil {
			t.Error("consume without credit must panic")
		}
	}()
	c.Consume()
}

func TestCreditsOverflowPanics(t *testing.T) {
	c := NewCredits(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("returning more credits than consumed must panic")
		}
	}()
	c.Return()
}

// Property: available + pending + outstanding == capacity at all times, for
// any legal interleaving of consume/return/tick.
func TestCreditsConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCredits(4, 2)
		outstanding := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if c.CanSend() {
					c.Consume()
					outstanding++
				}
			case 1:
				if outstanding > 0 && c.Outstanding() > 0 {
					c.Return()
					outstanding--
				}
			case 2:
				c.Tick()
			}
			if c.Available() < 0 || c.Available() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCreditsBadConfigPanics(t *testing.T) {
	for _, cfg := range [][2]int{{0, 1}, {4, 0}, {-1, 2}} {
		func() {
			defer func() { recover() }()
			NewCredits(cfg[0], cfg[1])
			t.Errorf("NewCredits(%d,%d) must panic", cfg[0], cfg[1])
		}()
	}
}
