// Package buffer provides the input-buffer and link-level flow-control
// primitives shared by the buffered designs: a fixed-depth serial FIFO (the
// paper's buffer slots are "connected serially, thus eliminating VCs and the
// corresponding virtual-channel allocator", §II) and a credit counter with a
// delayed return pipeline that models the one-cycle credit signalling delay
// on the reverse link.
package buffer

import (
	"fmt"

	"dxbar/internal/flit"
)

// FIFO is a fixed-capacity first-in first-out flit buffer.
type FIFO struct {
	slots []*flit.Flit
	head  int
	count int
}

// NewFIFO returns an empty FIFO of the given depth (must be positive).
func NewFIFO(depth int) *FIFO {
	if depth <= 0 {
		panic(fmt.Sprintf("buffer: invalid FIFO depth %d", depth))
	}
	return &FIFO{slots: make([]*flit.Flit, depth)}
}

// Depth returns the FIFO capacity.
func (f *FIFO) Depth() int { return len(f.slots) }

// Len returns the number of buffered flits.
func (f *FIFO) Len() int { return f.count }

// Full reports whether the FIFO has no free slot.
func (f *FIFO) Full() bool { return f.count == len(f.slots) }

// Empty reports whether the FIFO holds no flit.
func (f *FIFO) Empty() bool { return f.count == 0 }

// Push appends a flit; it panics on overflow because flow control is
// supposed to make overflow impossible — a push into a full FIFO is a
// simulator bug, not a network condition.
func (f *FIFO) Push(fl *flit.Flit) {
	if f.Full() {
		panic("buffer: FIFO overflow (flow-control violation)")
	}
	f.slots[(f.head+f.count)%len(f.slots)] = fl
	f.count++
}

// Head returns the oldest buffered flit without removing it (nil if empty).
func (f *FIFO) Head() *flit.Flit {
	if f.count == 0 {
		return nil
	}
	return f.slots[f.head]
}

// Pop removes and returns the oldest buffered flit (nil if empty).
func (f *FIFO) Pop() *flit.Flit {
	if f.count == 0 {
		return nil
	}
	fl := f.slots[f.head]
	f.slots[f.head] = nil
	f.head = (f.head + 1) % len(f.slots)
	f.count--
	return fl
}

// Credits tracks the free buffer space at the downstream end of one link.
// The upstream router decrements on send; returned credits ride a small
// delay pipeline that models the reverse-channel signalling latency.
type Credits struct {
	available int
	max       int
	// inflight[i] credits become available after i+1 more Tick calls.
	inflight []int
	// pendingCnt caches the sum of inflight so Return and Tick are O(1):
	// the tick loop runs once per counter per cycle across the whole
	// network, and most counters are idle most cycles.
	pendingCnt int
}

// NewCredits returns a counter with the given capacity and credit-return
// delay in cycles (delay >= 1; the paper's fairness discussion assumes a
// non-zero credit round trip).
func NewCredits(capacity, delay int) *Credits {
	if capacity <= 0 || delay < 1 {
		panic(fmt.Sprintf("buffer: invalid credits capacity=%d delay=%d", capacity, delay))
	}
	return &Credits{available: capacity, max: capacity, inflight: make([]int, delay)}
}

// NewCreditsSlab returns n independent counters in one contiguous
// allocation (with one shared backing array for the delay pipelines). The
// engine's per-cycle credit sweep and the routers' send probes touch
// counters all over the network; packing them keeps that traffic on a
// handful of cache lines instead of n scattered heap objects.
func NewCreditsSlab(n, capacity, delay int) []Credits {
	if capacity <= 0 || delay < 1 {
		panic(fmt.Sprintf("buffer: invalid credits capacity=%d delay=%d", capacity, delay))
	}
	slab := make([]Credits, n)
	backing := make([]int, n*delay)
	for i := range slab {
		slab[i] = Credits{
			available: capacity,
			max:       capacity,
			inflight:  backing[i*delay : (i+1)*delay : (i+1)*delay],
		}
	}
	return slab
}

// Available returns the number of usable credits.
func (c *Credits) Available() int { return c.available }

// CanSend reports whether at least one credit is available.
func (c *Credits) CanSend() bool { return c.available > 0 }

// Consume spends one credit; it panics if none is available (an upstream
// send without a credit is a flow-control violation).
func (c *Credits) Consume() {
	if c.available == 0 {
		panic("buffer: credit underflow (flow-control violation)")
	}
	c.available--
}

// Return schedules one credit to become available after the configured
// delay (called by the downstream router when a buffer slot frees).
func (c *Credits) Return() {
	c.inflight[len(c.inflight)-1]++
	c.pendingCnt++
	if c.pendingCnt+c.available > c.max {
		panic("buffer: credit overflow (more credits returned than consumed)")
	}
}

// Tick advances the return pipeline by one cycle. The idle check is split
// from the pipeline shift so Tick inlines into the engine's per-cycle
// credit sweep — most counters are idle most cycles, and the sweep visits
// every counter in the network.
func (c *Credits) Tick() {
	if c.pendingCnt == 0 {
		return
	}
	c.tickPending()
}

func (c *Credits) tickPending() {
	if len(c.inflight) == 1 {
		// The default delay-1 pipeline: everything pending matures now.
		c.available += c.pendingCnt
		c.pendingCnt = 0
		c.inflight[0] = 0
		return
	}
	matured := c.inflight[0]
	c.available += matured
	c.pendingCnt -= matured
	copy(c.inflight, c.inflight[1:])
	c.inflight[len(c.inflight)-1] = 0
}

func (c *Credits) pending() int { return c.pendingCnt }

// HasPending reports whether returned credits are still riding the delay
// pipeline (the engine's credit sweep uses it to keep a counter on its
// active list until the pipeline drains).
func (c *Credits) HasPending() bool { return c.pendingCnt > 0 }

// Outstanding returns credits consumed but not yet returned or in flight —
// i.e. flits currently occupying downstream resources.
func (c *Credits) Outstanding() int { return c.max - c.available - c.pending() }

// Reset restores the counter to its initial full-capacity state, clearing
// the return pipeline (engine reuse between runs).
func (c *Credits) Reset() {
	c.available = c.max
	c.pendingCnt = 0
	for i := range c.inflight {
		c.inflight[i] = 0
	}
}
