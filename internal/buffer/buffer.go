// Package buffer provides the input-buffer and link-level flow-control
// primitives shared by the buffered designs: a fixed-depth serial FIFO (the
// paper's buffer slots are "connected serially, thus eliminating VCs and the
// corresponding virtual-channel allocator", §II) and a credit counter with a
// delayed return pipeline that models the one-cycle credit signalling delay
// on the reverse link.
package buffer

import (
	"fmt"

	"dxbar/internal/flit"
)

// FIFO is a fixed-capacity first-in first-out flit buffer.
type FIFO struct {
	slots []*flit.Flit
	head  int
	count int
}

// NewFIFO returns an empty FIFO of the given depth (must be positive).
func NewFIFO(depth int) *FIFO {
	if depth <= 0 {
		panic(fmt.Sprintf("buffer: invalid FIFO depth %d", depth))
	}
	return &FIFO{slots: make([]*flit.Flit, depth)}
}

// Depth returns the FIFO capacity.
func (f *FIFO) Depth() int { return len(f.slots) }

// Len returns the number of buffered flits.
func (f *FIFO) Len() int { return f.count }

// Full reports whether the FIFO has no free slot.
func (f *FIFO) Full() bool { return f.count == len(f.slots) }

// Empty reports whether the FIFO holds no flit.
func (f *FIFO) Empty() bool { return f.count == 0 }

// Push appends a flit; it panics on overflow because flow control is
// supposed to make overflow impossible — a push into a full FIFO is a
// simulator bug, not a network condition.
func (f *FIFO) Push(fl *flit.Flit) {
	if f.Full() {
		panic("buffer: FIFO overflow (flow-control violation)")
	}
	f.slots[(f.head+f.count)%len(f.slots)] = fl
	f.count++
}

// Head returns the oldest buffered flit without removing it (nil if empty).
func (f *FIFO) Head() *flit.Flit {
	if f.count == 0 {
		return nil
	}
	return f.slots[f.head]
}

// Pop removes and returns the oldest buffered flit (nil if empty).
func (f *FIFO) Pop() *flit.Flit {
	if f.count == 0 {
		return nil
	}
	fl := f.slots[f.head]
	f.slots[f.head] = nil
	f.head = (f.head + 1) % len(f.slots)
	f.count--
	return fl
}

// Credits tracks the free buffer space at the downstream end of one link.
// The upstream router decrements on send; returned credits ride a small
// delay pipeline that models the reverse-channel signalling latency.
type Credits struct {
	available int
	max       int
	// inflight[i] credits become available after i+1 more Tick calls.
	inflight []int
}

// NewCredits returns a counter with the given capacity and credit-return
// delay in cycles (delay >= 1; the paper's fairness discussion assumes a
// non-zero credit round trip).
func NewCredits(capacity, delay int) *Credits {
	if capacity <= 0 || delay < 1 {
		panic(fmt.Sprintf("buffer: invalid credits capacity=%d delay=%d", capacity, delay))
	}
	return &Credits{available: capacity, max: capacity, inflight: make([]int, delay)}
}

// Available returns the number of usable credits.
func (c *Credits) Available() int { return c.available }

// CanSend reports whether at least one credit is available.
func (c *Credits) CanSend() bool { return c.available > 0 }

// Consume spends one credit; it panics if none is available (an upstream
// send without a credit is a flow-control violation).
func (c *Credits) Consume() {
	if c.available == 0 {
		panic("buffer: credit underflow (flow-control violation)")
	}
	c.available--
}

// Return schedules one credit to become available after the configured
// delay (called by the downstream router when a buffer slot frees).
func (c *Credits) Return() {
	c.inflight[len(c.inflight)-1]++
	if c.pending()+c.available > c.max {
		panic("buffer: credit overflow (more credits returned than consumed)")
	}
}

// Tick advances the return pipeline by one cycle.
func (c *Credits) Tick() {
	c.available += c.inflight[0]
	copy(c.inflight, c.inflight[1:])
	c.inflight[len(c.inflight)-1] = 0
}

func (c *Credits) pending() int {
	n := 0
	for _, v := range c.inflight {
		n += v
	}
	return n
}

// Outstanding returns credits consumed but not yet returned or in flight —
// i.e. flits currently occupying downstream resources.
func (c *Credits) Outstanding() int { return c.max - c.available - c.pending() }

// Reset restores the counter to its initial full-capacity state, clearing
// the return pipeline (engine reuse between runs).
func (c *Credits) Reset() {
	c.available = c.max
	for i := range c.inflight {
		c.inflight[i] = 0
	}
}
