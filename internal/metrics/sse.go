package metrics

// Server-Sent Events streaming: the /events endpoint pushes periodic JSON
// snapshots of the registry (progress, counter totals and per-frame deltas,
// latency quantiles, shard imbalance, anomaly counts) to any number of
// subscribers — the live dashboard at /, curl -N, or a sweep-watching
// script.
//
// Design constraints, in the registry's spirit:
//
//   - The publish path never blocks. Every subscriber owns a small buffered
//     channel; a slow client's full buffer drops that frame for that client
//     (counted in dxbar_sse_dropped_frames_total) instead of stalling the
//     sampler or other clients.
//   - An idle hub is free. The sampler goroutine starts with the first
//     subscriber and stops with the last, so a simulation that nobody is
//     watching pays nothing — and the engine's cycle loop never interacts
//     with the hub at all (the sampler reads the same atomics a /metrics
//     scrape does), keeping 0 allocs/cycle with SSE attached.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SSESchema versions the snapshot JSON shape pushed over /events.
const SSESchema = 1

// DefaultSSEInterval is the frame period when SSEHubOptions.Interval is 0.
const DefaultSSEInterval = time.Second

// sseBufferedFrames is each subscriber's channel capacity: enough to ride
// out scheduling hiccups, small enough that a dead client is dropped within
// a few frames.
const sseBufferedFrames = 8

// anomalyFamily is the run-health monitor's per-kind anomaly counter
// (internal/diag registers it); the snapshot aggregates it over kinds.
const anomalyFamily = "dxbar_anomaly_total"

// SSESnapshot is one /events frame. Totals are process-wide registry
// readings; the *_delta fields are the change since the previous frame of
// this hub (0 on the first frame), which is what the dashboard sparklines
// plot.
type SSESnapshot struct {
	Schema int    `json:"schema"`
	Seq    uint64 `json:"seq"`

	Cycles           uint64  `json:"cycles"`
	CyclesPerSecond  float64 `json:"cycles_per_second"`
	FlitsInjected    uint64  `json:"flits_injected"`
	FlitsEjected     uint64  `json:"flits_ejected"`
	FlitsDropped     uint64  `json:"flits_dropped"`
	FlitsDeflected   uint64  `json:"flits_deflected"`
	Retransmits      uint64  `json:"flits_retransmitted"`
	PacketsDelivered uint64  `json:"packets_delivered"`

	CyclesDelta  uint64 `json:"cycles_delta"`
	EjectedDelta uint64 `json:"flits_ejected_delta"`

	InFlightFlits int64 `json:"in_flight_flits"`
	QueuedFlits   int64 `json:"queued_flits"`
	BufferedFlits int64 `json:"buffered_flits"`

	LatencyP50 float64 `json:"latency_p50_cycles"`
	LatencyP99 float64 `json:"latency_p99_cycles"`

	ShardImbalance float64 `json:"shard_imbalance"`
	Anomalies      uint64  `json:"anomalies"`
	LedgerRecords  uint64  `json:"ledger_records"`

	Clients  int64            `json:"sse_clients"`
	Progress ProgressSnapshot `json:"progress"`
}

// SSEHub samples a registry at a fixed interval and fans the frames out to
// its subscribers. Safe for concurrent use; the zero value is not usable —
// construct with NewSSEHub.
type SSEHub struct {
	reg      *Registry
	prog     *Progress
	interval time.Duration

	clients *Gauge
	frames  *Counter
	dropped *Counter

	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	stopc  chan struct{}
	closed bool
	seq    uint64
	last   SSESnapshot
}

// SSEHubOptions configures NewSSEHub.
type SSEHubOptions struct {
	// Interval is the frame period (default DefaultSSEInterval).
	Interval time.Duration
}

// NewSSEHub returns a hub over reg and prog (either may be nil; the frames
// then carry zeros for the missing side). The hub registers its own
// dxbar_sse_* families on reg. No goroutine runs until the first subscriber
// arrives.
func NewSSEHub(reg *Registry, prog *Progress, o SSEHubOptions) *SSEHub {
	h := &SSEHub{
		reg:      reg,
		prog:     prog,
		interval: o.Interval,
		subs:     make(map[chan []byte]struct{}),
	}
	if h.interval <= 0 {
		h.interval = DefaultSSEInterval
	}
	h.clients = reg.Gauge(MetricSSEClients, "Connected /events SSE subscribers.")
	h.frames = reg.Counter(MetricSSEFrames, "SSE snapshot frames published (all subscribers).")
	h.dropped = reg.Counter(MetricSSEDropped, "SSE frames dropped because a slow subscriber's buffer was full.")
	return h
}

// Snapshot builds one frame from the current registry state. Exported for
// the golden-shape test and one-shot probes; the sampler calls it per tick.
func (h *SSEHub) Snapshot() SSESnapshot {
	u := func(name string) uint64 {
		v, _ := h.reg.Value(name)
		return uint64(v)
	}
	i := func(name string) int64 {
		v, _ := h.reg.Value(name)
		return int64(v)
	}
	f := func(name string) float64 {
		v, _ := h.reg.Value(name)
		return v
	}
	s := SSESnapshot{
		Schema:           SSESchema,
		Cycles:           u(MetricCycles),
		CyclesPerSecond:  f(MetricCyclesPerSec),
		FlitsInjected:    u(MetricInjectedFlits),
		FlitsEjected:     u(MetricEjectedFlits),
		FlitsDropped:     u(MetricDroppedFlits),
		FlitsDeflected:   u(MetricDeflectedFlits),
		Retransmits:      u(MetricRetransmits),
		PacketsDelivered: u(MetricPacketsOut),
		InFlightFlits:    i(MetricInFlight),
		QueuedFlits:      i(MetricQueued),
		BufferedFlits:    i(MetricBuffered),
		ShardImbalance:   f(MetricShardImbalance),
		LedgerRecords:    u(MetricLedgerRecords),
		Clients:          h.clients.Value(),
	}
	if p50, ok := h.reg.HistogramQuantile(MetricLatency, 0.50); ok {
		s.LatencyP50 = p50
	}
	if p99, ok := h.reg.HistogramQuantile(MetricLatency, 0.99); ok {
		s.LatencyP99 = p99
	}
	if anoms, ok := h.reg.Sum(anomalyFamily); ok {
		s.Anomalies = uint64(anoms)
	}
	if h.prog != nil {
		s.Progress = h.prog.Snapshot()
	}

	h.mu.Lock()
	h.seq++
	s.Seq = h.seq
	if h.last.Seq != 0 {
		s.CyclesDelta = s.Cycles - h.last.Cycles
		s.EjectedDelta = s.FlitsEjected - h.last.FlitsEjected
	}
	h.last = s
	h.mu.Unlock()
	return s
}

// Subscribe registers a frame channel and returns it with its cancel
// function. The first subscriber starts the sampler goroutine; the cancel of
// the last one stops it. Cancel is idempotent and must be called — an
// abandoned subscription keeps the sampler alive.
func (h *SSEHub) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, sseBufferedFrames)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.clients.Add(1)
	if h.stopc == nil {
		h.stopc = make(chan struct{})
		go h.sample(h.stopc)
	}
	h.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				h.clients.Add(-1)
				if len(h.subs) == 0 && h.stopc != nil {
					close(h.stopc)
					h.stopc = nil
				}
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// sample is the hub's frame loop: one Snapshot per interval, fanned out
// non-blocking. It exits when stopc closes (last unsubscribe, or Close).
func (h *SSEHub) sample(stopc chan struct{}) {
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			h.publish()
		}
	}
}

// publish marshals one frame and offers it to every subscriber, dropping
// the frame for any whose buffer is full.
func (h *SSEHub) publish() {
	frame, err := json.Marshal(h.Snapshot())
	if err != nil {
		return // a marshal failure of a plain struct cannot happen
	}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- frame:
			h.frames.Add(1)
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// ServeHTTP streams frames as text/event-stream: one immediate frame so a
// probe sees data without waiting out the interval, then the sampler's
// cadence until the client disconnects or the hub closes.
func (h *SSEHub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")

	ch, cancel := h.Subscribe()
	defer cancel()

	first, err := json.Marshal(h.Snapshot())
	if err == nil {
		if err := writeSSEFrame(w, first); err != nil {
			return
		}
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return // hub closed
			}
			if err := writeSSEFrame(w, frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSEFrame emits one event-stream record (data: <json>\n\n).
func writeSSEFrame(w http.ResponseWriter, frame []byte) error {
	_, err := fmt.Fprintf(w, "data: %s\n\n", frame)
	return err
}

// Close stops the sampler and disconnects every subscriber. The hub accepts
// no new subscriptions afterwards. Nil-safe and idempotent.
func (h *SSEHub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	if h.stopc != nil {
		close(h.stopc)
		h.stopc = nil
	}
	for ch := range h.subs {
		delete(h.subs, ch)
		h.clients.Add(-1)
		close(ch)
	}
}
