package metrics

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families in registration order, series
// in registration order within each family, histograms as cumulative `le`
// buckets (empty bins skipped) plus `_sum` and `_count`. Safe to call
// concurrently with publishers — values are read through the same atomics
// (or the histogram mutex) the publishers write through. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	var scratch []histBucket
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				writeSample(bw, f.name, "", s.labels, "", formatUint(s.counter.Value()))
			case s.floatCounter != nil:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.floatCounter.Value()))
			case s.gauge != nil:
				writeSample(bw, f.name, "", s.labels, "", strconv.FormatInt(s.gauge.Value(), 10))
			case s.floatGauge != nil:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.floatGauge.Value()))
			case s.gaugeFn != nil:
				writeSample(bw, f.name, "", s.labels, "", formatFloat(s.gaugeFn()))
			case s.hist != nil:
				var count uint64
				var sum float64
				scratch, count, sum = s.hist.snapshotInto(scratch[:0])
				for _, b := range scratch {
					writeSample(bw, f.name, "_bucket", s.labels, `le="`+formatFloat(b.le)+`"`, formatUint(b.cum))
				}
				writeSample(bw, f.name, "_bucket", s.labels, `le="+Inf"`, formatUint(count))
				writeSample(bw, f.name, "_sum", s.labels, "", formatFloat(sum))
				writeSample(bw, f.name, "_count", s.labels, "", formatUint(count))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name_suffix{labels,extra} value` line.
func writeSample(w *bufio.Writer, name, suffix, labels, extra, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders floats the way Prometheus clients expect: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
