package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("dxbar_cycles_total", "Simulated cycles.").Add(99)
	p := NewProgress("points", 10)
	p.Set(4)

	srv, err := StartServer("127.0.0.1:0", r, p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "dxbar_cycles_total 99") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	body, _ = get("/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q, want ok", body)
	}

	body, ctype = get("/progress")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/progress content type = %q", ctype)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress JSON: %v\n%s", err, body)
	}
	if snap.Done != 4 || snap.Total != 10 || snap.Unit != "points" {
		t.Errorf("/progress snapshot = %+v", snap)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
}

func TestStartServerBadAddr(t *testing.T) {
	if _, err := StartServer("127.0.0.1:-1", nil, nil); err == nil {
		t.Fatal("expected error for invalid listen address")
	}
}

func TestServerNilClose(t *testing.T) {
	var s *Server
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
