package metrics

import "math"

// Value-read introspection: the SSE snapshot builder (and any other
// registry consumer that holds no handles) reads current series values by
// name. Reads take the registry mutex only to find the series; the value
// load itself is the same atomic the scrape path uses, so reading never
// perturbs a publishing engine.

// value returns a series' current reading as float64, whatever its
// underlying representation.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.floatCounter != nil:
		return s.floatCounter.Value()
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.floatGauge != nil:
		return s.floatGauge.Value()
	case s.gaugeFn != nil:
		return s.gaugeFn()
	}
	return 0
}

// findSeries returns the series for (name, labels) without creating it.
func (r *Registry) findSeries(name string, labels []Label) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.index[name]
	if !ok {
		return nil
	}
	return f.index[renderLabels(labels)]
}

// Value returns the current value of the series (name, labels), or (0,
// false) when it is not registered. Histograms are not values; use
// HistogramQuantile. Nil-safe.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	s := r.findSeries(name, labels)
	if s == nil {
		return 0, false
	}
	return s.value(), true
}

// Sum returns the sum over every series of a family — the label-aggregated
// reading of counters like dxbar_anomaly_total{kind=…}. (0, false) when the
// family is not registered. Nil-safe.
func (r *Registry) Sum(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.index[name]
	if !ok {
		return 0, false
	}
	var total float64
	for _, s := range f.series {
		total += s.value()
	}
	return total, true
}

// HistogramQuantile returns the nearest-rank q-quantile of a registered
// histogram's published snapshot: the upper bound of the bucket holding the
// value of rank ceil(q·count). (0, false) when the family is absent, not a
// histogram, or empty. Nil-safe.
func (r *Registry) HistogramQuantile(name string, q float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f, ok := r.index[name]
	var h *Histogram
	if ok && f.kind == kindHistogram && len(f.series) > 0 {
		h = f.series[0].hist
	}
	r.mu.Unlock()
	if h == nil {
		return 0, false
	}
	return h.quantile(q)
}

// quantile computes the nearest-rank q-quantile of the published snapshot.
func (h *Histogram) quantile(q float64) (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return h.bounds[i], true
		}
	}
	return h.bounds[len(h.bounds)-1], true
}
