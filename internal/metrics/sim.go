package metrics

import (
	"strconv"
	"time"
)

// Metric names published by a simulation engine (SimTelemetry). Exported so
// tests and the CI smoke probe assert against the same strings the engine
// publishes.
const (
	MetricCycles          = "dxbar_cycles_total"
	MetricInjectedFlits   = "dxbar_flits_injected_total"
	MetricEjectedFlits    = "dxbar_flits_ejected_total"
	MetricDroppedFlits    = "dxbar_flits_dropped_total"
	MetricRetransmits     = "dxbar_flits_retransmitted_total"
	MetricDeflectedFlits  = "dxbar_flits_deflected_total"
	MetricPacketsIn       = "dxbar_packets_injected_total"
	MetricPacketsOut      = "dxbar_packets_delivered_total"
	MetricInFlight        = "dxbar_in_flight_flits"
	MetricQueued          = "dxbar_queued_flits"
	MetricBuffered        = "dxbar_buffered_flits"
	MetricCyclesPerSec    = "dxbar_cycles_per_second"
	MetricLatency         = "dxbar_packet_latency_cycles"
	MetricShardBusy       = "dxbar_shard_router_phase_seconds_total"
	MetricShardWait       = "dxbar_shard_barrier_wait_seconds_total"
	MetricShardImbalance  = "dxbar_shard_imbalance_ratio"
	MetricShardRebalances = "dxbar_shard_rebalances_total"
	MetricShardMigrated   = "dxbar_shard_nodes_migrated_total"
	MetricShardNodes      = "dxbar_shard_nodes"
)

// Metric names published by the run ledger (dxbar.Config.LedgerDir) and the
// SSE streaming hub (the /events endpoint).
const (
	MetricLedgerRecords   = "dxbar_ledger_records_total"
	MetricLedgerReuseHits = "dxbar_ledger_reuse_hits_total"
	MetricSSEClients      = "dxbar_sse_clients"
	MetricSSEFrames       = "dxbar_sse_frames_total"
	MetricSSEDropped      = "dxbar_sse_dropped_frames_total"
)

// DefaultPublishInterval is the gauge/histogram/shard-profile publish period
// in cycles. Counters publish every cycle (a handful of atomic adds); the
// interval only paces the O(nodes) gauge scans and the histogram copy.
const DefaultPublishInterval = 64

// SimTelemetryOptions configures NewSimTelemetry.
type SimTelemetryOptions struct {
	// Shards is the engine's resolved shard count; > 1 registers the
	// per-shard profiler series (labels shard="0"…).
	Shards int
	// LatencyBounds are the latency histogram's bucket upper bounds
	// (stats.LatencyBucketUppers). Empty disables the latency series.
	LatencyBounds []float64
	// Interval overrides DefaultPublishInterval (cycles between gauge /
	// histogram / shard publishes).
	Interval uint64
	// Progress, when non-nil, is advanced to the engine's cycle count every
	// cycle (the /progress source for single runs).
	Progress *Progress
}

// SimCounters is the per-cycle publication payload: running totals the
// engine reads off its collector and its own state. SimTelemetry converts
// them to deltas, so several engines sharing one registry (a sweep's worker
// pool) aggregate into process-wide series.
type SimCounters struct {
	Cycles           uint64
	InjectedFlits    uint64
	EjectedFlits     uint64
	DroppedFlits     uint64
	RetransmitFlits  uint64
	DeflectedFlits   uint64
	PacketsInjected  uint64
	PacketsDelivered uint64
}

// SimGauges is the interval publication payload: instantaneous network state
// only the engine can see.
type SimGauges struct {
	InFlightFlits int
	QueuedFlits   int
	BufferedFlits int
}

// SimTelemetry is one engine's handle into a Registry: it owns the
// delta-tracking state that turns the engine's running totals into counter
// increments, the publish-interval clock, and the per-shard profiler series.
// One SimTelemetry serves one run (the runner builds a fresh one per run);
// the registry handles behind it are shared and may aggregate several
// concurrent engines.
//
// All methods are nil-safe: a nil *SimTelemetry is the disabled telemetry,
// and the engine publishes unconditionally. With a non-nil SimTelemetry over
// a nil Registry only Progress is maintained.
type SimTelemetry struct {
	interval    uint64
	nextPublish uint64

	progress *Progress

	cycles, injected, ejected, dropped, retransmitted *Counter
	deflected                                         *Counter
	packetsIn, packetsOut                             *Counter
	inFlight, queued, buffered                        *Gauge
	cyclesPerSec                                      *FloatGauge
	latency                                           *Histogram

	shardBusy, shardWait []*FloatCounter
	shardImbalance       *FloatGauge
	shardNodes           []*Gauge
	shardRebalances      *Counter
	shardMigrated        *Counter

	last      SimCounters
	lastGauge SimGauges
	lastRate  float64

	lastBusy, lastWait           []time.Duration
	lastRebalances, lastMigrated uint64
	lastNodes                    []int64
	rateWall                     time.Time
	rateCycle                    uint64
}

// NewSimTelemetry registers the engine-facing series in r and returns the
// publication handle. r may be nil (progress-only telemetry).
func NewSimTelemetry(r *Registry, o SimTelemetryOptions) *SimTelemetry {
	t := &SimTelemetry{
		interval: o.Interval,
		progress: o.Progress,
		rateWall: time.Now(),
	}
	if t.interval == 0 {
		t.interval = DefaultPublishInterval
	}
	t.nextPublish = t.interval - 1
	t.cycles = r.Counter(MetricCycles, "Simulated cycles.")
	t.injected = r.Counter(MetricInjectedFlits, "Flits offered by traffic sources.")
	t.ejected = r.Counter(MetricEjectedFlits, "Flits delivered at their destination.")
	t.dropped = r.Counter(MetricDroppedFlits, "Flits dropped in the network (SCARAB, fault casualties).")
	t.retransmitted = r.Counter(MetricRetransmits, "Source retransmissions scheduled (NACKs, fault recovery).")
	t.deflected = r.Counter(MetricDeflectedFlits, "Flits deflected away from a productive output port (bufferless designs).")
	t.packetsIn = r.Counter(MetricPacketsIn, "Packets injected into the network.")
	t.packetsOut = r.Counter(MetricPacketsOut, "Packets fully delivered (reassembled).")
	t.inFlight = r.Gauge(MetricInFlight, "Live flits anywhere in the network (pool outstanding).")
	t.queued = r.Gauge(MetricQueued, "Flits waiting in source injection queues.")
	t.buffered = r.Gauge(MetricBuffered, "Downstream buffer slots held by credit flow control.")
	t.cyclesPerSec = r.FloatGauge(MetricCyclesPerSec, "Simulation speed over the last publish interval.")
	if len(o.LatencyBounds) > 0 {
		t.latency = r.Histogram(MetricLatency, "In-window packet latency distribution, in cycles.", o.LatencyBounds)
	}
	if o.Shards > 1 {
		t.shardBusy = make([]*FloatCounter, o.Shards)
		t.shardWait = make([]*FloatCounter, o.Shards)
		t.lastBusy = make([]time.Duration, o.Shards)
		t.lastWait = make([]time.Duration, o.Shards)
		t.shardNodes = make([]*Gauge, o.Shards)
		t.lastNodes = make([]int64, o.Shards)
		for i := 0; i < o.Shards; i++ {
			l := Label{Key: "shard", Value: strconv.Itoa(i)}
			t.shardBusy[i] = r.FloatCounter(MetricShardBusy, "Cumulative router-phase execution time per shard.", l)
			t.shardWait[i] = r.FloatCounter(MetricShardWait, "Cumulative barrier-wait time per shard (idle until the slowest shard finishes).", l)
			t.shardNodes[i] = r.Gauge(MetricShardNodes, "Mesh nodes currently owned by the shard's tile (rebalancing migrates them).", l)
		}
		t.shardImbalance = r.FloatGauge(MetricShardImbalance, "Max/mean cumulative router-phase time across shards (1.0 = perfectly balanced).")
		t.shardRebalances = r.Counter(MetricShardRebalances, "Dynamic shard rebalancing passes that migrated a boundary row or column.")
		t.shardMigrated = r.Counter(MetricShardMigrated, "Mesh nodes migrated between shards by dynamic rebalancing.")
	}
	return t
}

// Latency returns the registered latency histogram (nil when disabled); the
// engine hands it to the collector's publish method.
func (t *SimTelemetry) Latency() *Histogram {
	if t == nil {
		return nil
	}
	return t.latency
}

// OnCycle publishes the cheap per-cycle series: counter deltas against the
// previous call, plus the progress tracker. Allocation-free.
func (t *SimTelemetry) OnCycle(now SimCounters) {
	if t == nil {
		return
	}
	t.cycles.Add(now.Cycles - t.last.Cycles)
	t.injected.Add(now.InjectedFlits - t.last.InjectedFlits)
	t.ejected.Add(now.EjectedFlits - t.last.EjectedFlits)
	t.dropped.Add(now.DroppedFlits - t.last.DroppedFlits)
	t.retransmitted.Add(now.RetransmitFlits - t.last.RetransmitFlits)
	t.deflected.Add(now.DeflectedFlits - t.last.DeflectedFlits)
	t.packetsIn.Add(now.PacketsInjected - t.last.PacketsInjected)
	t.packetsOut.Add(now.PacketsDelivered - t.last.PacketsDelivered)
	t.last = now
	t.progress.Set(now.Cycles)
}

// PublishDue reports whether the interval publication (OnPublish and the
// latency histogram) is due at cycle c. False on nil telemetry.
func (t *SimTelemetry) PublishDue(c uint64) bool {
	return t != nil && c >= t.nextPublish
}

// OnPublish publishes the interval series: gauge deltas, the simulation
// rate, and — when busy/wait are non-empty — the per-shard profiler series
// and the imbalance ratio. busy and wait are the backend's cumulative
// per-shard router-phase and barrier-wait times. Allocation-free.
func (t *SimTelemetry) OnPublish(c uint64, g SimGauges, busy, wait []time.Duration) {
	if t == nil {
		return
	}
	t.nextPublish = c + t.interval

	t.inFlight.Add(int64(g.InFlightFlits - t.lastGauge.InFlightFlits))
	t.queued.Add(int64(g.QueuedFlits - t.lastGauge.QueuedFlits))
	t.buffered.Add(int64(g.BufferedFlits - t.lastGauge.BufferedFlits))
	t.lastGauge = g

	now := time.Now()
	if dt := now.Sub(t.rateWall).Seconds(); dt > 0 {
		rate := float64(t.last.Cycles-t.rateCycle) / dt
		t.cyclesPerSec.Add(rate - t.lastRate)
		t.lastRate = rate
	}
	t.rateWall = now
	t.rateCycle = t.last.Cycles

	if len(busy) == 0 || t.shardBusy == nil {
		return
	}
	n := len(busy)
	if n > len(t.shardBusy) {
		n = len(t.shardBusy)
	}
	var total, max time.Duration
	for i := 0; i < n; i++ {
		t.shardBusy[i].Add((busy[i] - t.lastBusy[i]).Seconds())
		t.shardWait[i].Add((wait[i] - t.lastWait[i]).Seconds())
		t.lastBusy[i] = busy[i]
		t.lastWait[i] = wait[i]
		total += busy[i]
		if busy[i] > max {
			max = busy[i]
		}
	}
	if total > 0 {
		t.shardImbalance.Set(float64(max) * float64(n) / float64(total))
	}
}

// OnShardState publishes the dynamic-rebalancing series at the publish
// interval: the rebalancing-pass and migrated-node counters (delta-tracked,
// like every engine counter) and the per-shard node-ownership gauges.
// nodeCounts is the backend's live per-shard tile size. No-op on nil
// telemetry or a sequential engine (no shard series registered).
// Allocation-free.
func (t *SimTelemetry) OnShardState(rebalances, migrated uint64, nodeCounts []int) {
	if t == nil || t.shardRebalances == nil {
		return
	}
	t.shardRebalances.Add(rebalances - t.lastRebalances)
	t.shardMigrated.Add(migrated - t.lastMigrated)
	t.lastRebalances, t.lastMigrated = rebalances, migrated
	n := len(nodeCounts)
	if n > len(t.shardNodes) {
		n = len(t.shardNodes)
	}
	for i := 0; i < n; i++ {
		t.shardNodes[i].Add(int64(nodeCounts[i]) - t.lastNodes[i])
		t.lastNodes[i] = int64(nodeCounts[i])
	}
}

// Detach removes this engine's contribution from the shared gauges (a
// finished run must not leave stale in-flight or rate readings behind) and
// stops advancing progress. Counters — cumulative by design — stay. The
// runner calls it after the run's final flush.
func (t *SimTelemetry) Detach() {
	if t == nil {
		return
	}
	t.inFlight.Add(int64(-t.lastGauge.InFlightFlits))
	t.queued.Add(int64(-t.lastGauge.QueuedFlits))
	t.buffered.Add(int64(-t.lastGauge.BufferedFlits))
	t.lastGauge = SimGauges{}
	t.cyclesPerSec.Add(-t.lastRate)
	t.lastRate = 0
	for i, g := range t.shardNodes {
		g.Add(-t.lastNodes[i])
		t.lastNodes[i] = 0
	}
}
