package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	fc := r.FloatCounter("fc", "h")
	g := r.Gauge("g", "h")
	fg := r.FloatGauge("fg", "h")
	h := r.Histogram("h", "h", []float64{1, 2})
	if c != nil || fc != nil || g != nil || fg != nil || h != nil {
		t.Fatal("nil registry must hand out nil metric handles")
	}
	// All operations on nil handles must be no-ops, not panics.
	c.Add(1)
	fc.Add(1.5)
	g.Set(3)
	g.Add(-1)
	fg.Set(2.5)
	fg.Add(0.5)
	h.Update([]uint64{1}, 1, 1)
	r.GaugeFunc("fn", "h", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if c.Value() != 0 || g.Value() != 0 || fc.Value() != 0 || fg.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dxbar_test_total", "help")
	c.Add(0) // zero deltas are skipped but must be legal
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	g := r.Gauge("dxbar_test_gauge", "help")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	fc := r.FloatCounter("dxbar_test_seconds_total", "help")
	fc.Add(0.5)
	fc.Add(0.25)
	if got := fc.Value(); got != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}
	fg := r.FloatGauge("dxbar_test_ratio", "help")
	fg.Set(2)
	fg.Add(-0.5)
	if got := fg.Value(); got != 1.5 {
		t.Fatalf("float gauge = %v, want 1.5", got)
	}
}

func TestRegistryDedupByNameAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dxbar_dup_total", "help", Label{Key: "shard", Value: "0"})
	b := r.Counter("dxbar_dup_total", "help", Label{Key: "shard", Value: "0"})
	c := r.Counter("dxbar_dup_total", "help", Label{Key: "shard", Value: "1"})
	if a != b {
		t.Fatal("same name+labels must return the same series")
	}
	if a == c {
		t.Fatal("different labels must return distinct series")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("deduped handles must share state")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dxbar_kind_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same family under a different kind must panic")
		}
	}()
	r.Gauge("dxbar_kind_total", "help")
}

func TestLabelRenderingSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("dxbar_lbl_total", "help",
		Label{Key: "z", Value: "last"}, Label{Key: "a", Value: "first"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `dxbar_lbl_total{a="first",z="last"} 0`) {
		t.Fatalf("labels not sorted by key:\n%s", sb.String())
	}
}

func TestConcurrentPublishAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dxbar_conc_total", "help")
	h := r.Histogram("dxbar_conc_hist", "help", []float64{1, 2, 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		counts := []uint64{1, 2, 3}
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Add(1)
			h.Update(counts, 6, 17)
		}
	}()
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramUpdateShrinks(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Update([]uint64{5, 5, 5}, 15, 30)
	h.Update([]uint64{1}, 1, 1) // shorter source must zero the tail
	buckets, count, sum := h.snapshotInto(nil)
	if count != 1 || sum != 1 {
		t.Fatalf("count=%d sum=%v, want 1/1", count, sum)
	}
	if len(buckets) != 1 || buckets[0].le != 1 || buckets[0].cum != 1 {
		t.Fatalf("buckets = %+v, want one bucket le=1 cum=1", buckets)
	}
}
