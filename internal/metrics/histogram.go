package metrics

import "sync"

// Histogram is a published snapshot of a fixed-bucket distribution — the
// registry-side mirror of the collector's log-linear latency histogram
// (internal/stats). The simulation side overwrites the whole snapshot with
// Update at its publish interval; scrapes read it under the same mutex. The
// count array is preallocated at registration, so publishing never
// allocates, and the copy is a few microseconds for the ~2000 buckets of the
// latency histogram — negligible at any reasonable publish interval.
//
// Bounds are the inclusive upper edges of the buckets, ascending; the
// exposition writer renders them as cumulative `le` buckets and skips empty
// bins, so the on-the-wire size tracks the number of distinct observed
// values, not the bucket count.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64
	count  uint64
	sum    float64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. Registry.Histogram is the usual constructor path.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)),
	}
}

// Update overwrites the published snapshot: counts holds per-bucket
// (non-cumulative) counts aligned with the histogram's bounds, count the
// total number of observations and sum their total value. Extra source
// buckets beyond the registered bounds are ignored; missing ones stay zero.
// Never allocates; nil-safe.
func (h *Histogram) Update(counts []uint64, count uint64, sum float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	n := copy(h.counts, counts)
	for i := n; i < len(h.counts); i++ {
		h.counts[i] = 0
	}
	h.count = count
	h.sum = sum
	h.mu.Unlock()
}

// snapshotInto appends the non-empty buckets as (upperBound, cumulativeCount)
// pairs to dst and returns it with the total count and sum. Scrape path.
func (h *Histogram) snapshotInto(dst []histBucket) ([]histBucket, uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		dst = append(dst, histBucket{le: h.bounds[i], cum: cum})
	}
	return dst, h.count, h.sum
}

// histBucket is one cumulative exposition bucket.
type histBucket struct {
	le  float64
	cum uint64
}
