package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the telemetry HTTP handler:
//
//	/          live HTML dashboard (sparklines + stat tiles over /events)
//	/events    Server-Sent Events stream of periodic JSON snapshots
//	/metrics   Prometheus text exposition of reg
//	/healthz   liveness probe ("ok")
//	/progress  JSON ProgressSnapshot of prog
//	/debug/pprof/...  the standard runtime profiler endpoints
//
// reg and prog may each be nil (the endpoints then serve an empty exposition
// and the zero snapshot). Handlers only read atomics, so scraping never
// perturbs a running simulation. The handler owns an SSEHub whose sampler
// runs only while /events has subscribers; callers that need to tear the hub
// down explicitly (test servers) should use HandlerWith with their own hub.
func Handler(reg *Registry, prog *Progress) http.Handler {
	return HandlerWith(reg, prog, NewSSEHub(reg, prog, SSEHubOptions{}))
}

// HandlerWith is Handler with a caller-owned SSE hub (its Close disconnects
// the dashboard and /events clients).
func HandlerWith(reg *Registry, prog *Progress, hub *SSEHub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
	mux.Handle("/events", hub)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(prog.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry HTTP server (see StartServer).
type Server struct {
	ln  net.Listener
	srv *http.Server
	hub *SSEHub
}

// StartServer listens on addr (host:port; port 0 picks a free one) and
// serves Handler(reg, prog) on a background goroutine. The returned Server
// reports the bound address and shuts the listener — and the SSE hub — down
// on Close.
func StartServer(addr string, reg *Registry, prog *Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	hub := NewSSEHub(reg, prog, SSEHubOptions{})
	srv := &http.Server{Handler: HandlerWith(reg, prog, hub), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed (and the listener-closed error on Close) is the
		// normal shutdown path; an abnormal serve error has nowhere better
		// to go than being dropped — the sim must not die for telemetry.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv, hub: hub}, nil
}

// Addr returns the server's bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, disconnecting SSE subscribers first so in-flight
// streams end cleanly. Nil-safe.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.hub.Close()
	return s.srv.Close()
}
