package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress tracks completion of a long-running job — cycles of one
// simulation, or points of a sweep — for the /progress endpoint and the CLI
// progress line. Writers call Add or Set (atomic, allocation-free); readers
// take a Snapshot. The zero total means "unknown": done still counts, but
// percent and ETA are omitted.
type Progress struct {
	unit  string
	total atomic.Uint64
	done  atomic.Uint64
	start time.Time
}

// NewProgress returns a tracker for a job of the given size, measured in
// unit (e.g. "cycles", "points"). The clock starts now.
func NewProgress(unit string, total uint64) *Progress {
	p := &Progress{unit: unit, start: time.Now()}
	p.total.Store(total)
	return p
}

// Add advances completion by n. Nil-safe.
func (p *Progress) Add(n uint64) {
	if p != nil {
		p.done.Add(n)
	}
}

// Set stores the absolute completion count. Nil-safe.
func (p *Progress) Set(done uint64) {
	if p != nil {
		p.done.Store(done)
	}
}

// SetTotal replaces the job size (for totals only known after setup).
func (p *Progress) SetTotal(total uint64) {
	if p != nil {
		p.total.Store(total)
	}
}

// ProgressSnapshot is one consistent read of a Progress tracker.
type ProgressSnapshot struct {
	// Unit names what Done and Total count ("cycles", "points").
	Unit string `json:"unit"`
	// Done and Total are the completed and expected unit counts (Total 0 =
	// unknown).
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`
	// Percent is 100·Done/Total (0 when Total is unknown).
	Percent float64 `json:"percent"`
	// PerSecond is the mean completion rate since the tracker started.
	PerSecond float64 `json:"per_second"`
	// ElapsedSeconds is wall time since the tracker started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds estimates remaining wall time from the mean rate (0 when
	// unknown: no total, no completions yet, or already done).
	ETASeconds float64 `json:"eta_seconds"`
}

// Snapshot reads the tracker. Nil-safe (returns the zero snapshot).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Unit:  p.unit,
		Done:  p.done.Load(),
		Total: p.total.Load(),
	}
	s.ElapsedSeconds = time.Since(p.start).Seconds()
	if s.ElapsedSeconds > 0 {
		s.PerSecond = float64(s.Done) / s.ElapsedSeconds
	}
	if s.Total > 0 {
		s.Percent = 100 * float64(s.Done) / float64(s.Total)
		if s.PerSecond > 0 && s.Done < s.Total {
			s.ETASeconds = float64(s.Total-s.Done) / s.PerSecond
		}
	}
	return s
}

// String renders the snapshot as a one-line status, e.g.
// "37/330 points (11.2%) · 3.1 points/s · eta 1m35s".
func (s ProgressSnapshot) String() string {
	unit := s.Unit
	if unit == "" {
		unit = "units"
	}
	if s.Total == 0 {
		return fmt.Sprintf("%d %s · %.1f %s/s", s.Done, unit, s.PerSecond, unit)
	}
	line := fmt.Sprintf("%d/%d %s (%.1f%%) · %.1f %s/s", s.Done, s.Total, unit, s.Percent, s.PerSecond, unit)
	if s.ETASeconds > 0 {
		line += " · eta " + (time.Duration(s.ETASeconds * float64(time.Second))).Round(time.Second).String()
	}
	return line
}
