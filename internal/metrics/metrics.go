// Package metrics is the live-telemetry registry: named counters, gauges
// and histograms that the simulation engine publishes into while it runs and
// an HTTP scraper reads concurrently (Prometheus text exposition, the
// /progress JSON endpoint).
//
// The design constraints mirror the flight recorder's (internal/events):
//
//   - Publishing must be allocation-free. Every metric is a preallocated
//     struct updated with atomic operations (histograms use a short
//     mutex-guarded copy at a configurable interval), so the cycle loop keeps
//     its zero-allocation steady state with telemetry enabled.
//   - A disabled registry must be free. All handle types no-op on a nil
//     receiver, and a nil *Registry hands out nil handles, so instrumented
//     code publishes unconditionally.
//   - Scrapes never touch simulation state. The engine pushes values into
//     the registry; the HTTP side only ever reads atomics (or takes the
//     histogram mutex), so a scrape cannot perturb a run and results are
//     bit-identical with the server on or off.
//
// Counters are published as deltas (Add), which makes a registry shared by
// several engines — the RunMany worker pool during a sweep — aggregate
// naturally: the series are process-wide totals. Gauges are last-writer-wins
// between engines; SimTelemetry removes a finished engine's gauge
// contribution so idle series drain back to zero.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready for use; all methods no-op (or return 0) on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil && n != 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instantaneous value. Add-based publication lets several
// publishers share one gauge as a sum of their contributions.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil && d != 0 {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatCounter is a monotonically increasing float64 metric (cumulative
// seconds). Add uses a CAS loop; it is meant for interval publication, not
// per-cycle hot paths.
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter by v.
func (c *FloatCounter) Add(v float64) {
	if c == nil || v == 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// FloatGauge is an instantaneous float64 value.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d (CAS loop; interval publication only).
func (g *FloatGauge) Add(d float64) {
	if g == nil || d == 0 {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Label is one key="value" pair attached to a series.
type Label struct{ Key, Value string }

// metricKind discriminates the exposition TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance within a family. Exactly one of the value
// fields is set, matching the family's kind.
type series struct {
	labels string // rendered `key="value",...` (no braces), "" when unlabeled

	counter      *Counter
	floatCounter *FloatCounter
	gauge        *Gauge
	floatGauge   *FloatGauge
	gaugeFn      func() float64
	hist         *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*series          // registration order (scrape order)
	index      map[string]*series // by rendered label string
}

// Registry holds the registered metric families. Registration (the Counter /
// Gauge / … methods) is get-or-create by (name, labels) and safe for
// concurrent use; handles returned from it are updated lock-free. A nil
// *Registry is the disabled registry: every registration returns a nil
// handle, whose methods all no-op.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// renderLabels builds the canonical `k="v",...` form, sorted by key so the
// same label set always maps to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// lookup returns the series for (name, labels), creating family and series
// as needed. Registering an existing name with a different kind or help
// string panics: both are programmer errors, not runtime conditions.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.index[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, index: make(map[string]*series)}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := renderLabels(labels)
	s, ok := f.index[key]
	if !ok {
		s = &series{labels: key}
		f.index[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// FamilyInfo describes one registered metric family: its name, exposition
// type, help string, and the label keys its series carry (sorted, deduped).
// It backs the METRICS.md coverage test and any other registry introspection.
type FamilyInfo struct {
	Name   string
	Kind   string // "counter", "gauge" or "histogram"
	Help   string
	Labels []string
}

// Families returns a snapshot of the registered families in registration
// order. Nil-safe (returns nil on a nil or empty registry).
func (r *Registry) Families() []FamilyInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		info := FamilyInfo{Name: f.name, Kind: f.kind.String(), Help: f.help}
		seen := map[string]bool{}
		for _, s := range f.series {
			if s.labels == "" {
				continue
			}
			for _, kv := range strings.Split(s.labels, ",") {
				if eq := strings.IndexByte(kv, '='); eq > 0 {
					key := kv[:eq]
					if !seen[key] {
						seen[key] = true
						info.Labels = append(info.Labels, key)
					}
				}
			}
		}
		sort.Strings(info.Labels)
		out = append(out, info)
	}
	return out
}

// Counter returns the counter for (name, labels), registering it on first
// use. Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, labels)
	if s.counter == nil && s.floatCounter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// FloatCounter returns the float counter for (name, labels). A name holds
// either uint64 or float64 counters, never both.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, labels)
	if s.floatCounter == nil && s.counter == nil {
		s.floatCounter = &FloatCounter{}
	}
	return s.floatCounter
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, labels)
	if s.gauge == nil && s.floatGauge == nil && s.gaugeFn == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// FloatGauge returns the float gauge for (name, labels).
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, labels)
	if s.floatGauge == nil && s.gauge == nil && s.gaugeFn == nil {
		s.floatGauge = &FloatGauge{}
	}
	return s.floatGauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
// fn must be safe for concurrent calls. Re-registering the same (name,
// labels) keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, kindGauge, labels)
	if s.gaugeFn == nil && s.gauge == nil && s.floatGauge == nil {
		s.gaugeFn = fn
	}
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket upper bounds on first use (see NewHistogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}
