package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSimTelemetryNil(t *testing.T) {
	var st *SimTelemetry
	st.OnCycle(SimCounters{Cycles: 1})
	st.OnPublish(1, SimGauges{}, nil, nil)
	st.Detach()
	if st.PublishDue(0) {
		t.Fatal("nil telemetry must never be due")
	}
	if st.Latency() != nil {
		t.Fatal("nil telemetry must have nil latency histogram")
	}
}

func TestSimTelemetryCounterDeltas(t *testing.T) {
	r := NewRegistry()
	st := NewSimTelemetry(r, SimTelemetryOptions{})
	st.OnCycle(SimCounters{Cycles: 1, InjectedFlits: 4, EjectedFlits: 2})
	st.OnCycle(SimCounters{Cycles: 2, InjectedFlits: 9, EjectedFlits: 7, DroppedFlits: 1})
	// A second engine over the same registry must aggregate, not overwrite.
	st2 := NewSimTelemetry(r, SimTelemetryOptions{})
	st2.OnCycle(SimCounters{Cycles: 10})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		MetricCycles + " 12",
		MetricInjectedFlits + " 9",
		MetricEjectedFlits + " 7",
		MetricDroppedFlits + " 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSimTelemetryPublishInterval(t *testing.T) {
	st := NewSimTelemetry(NewRegistry(), SimTelemetryOptions{Interval: 8})
	if st.PublishDue(0) {
		t.Fatal("cycle 0 must not be due with interval 8")
	}
	if !st.PublishDue(7) {
		t.Fatal("cycle 7 must be due with interval 8")
	}
	st.OnPublish(7, SimGauges{}, nil, nil)
	if st.PublishDue(8) {
		t.Fatal("cycle 8 must not be due right after a publish at 7")
	}
	if !st.PublishDue(15) {
		t.Fatal("cycle 15 must be due")
	}
}

func TestSimTelemetryGaugesAndDetach(t *testing.T) {
	r := NewRegistry()
	st := NewSimTelemetry(r, SimTelemetryOptions{})
	st.OnPublish(63, SimGauges{InFlightFlits: 5, QueuedFlits: 3, BufferedFlits: 2}, nil, nil)

	inFlight := r.Gauge(MetricInFlight, "")
	if got := inFlight.Value(); got != 5 {
		t.Fatalf("in-flight gauge = %d, want 5", got)
	}
	// Second engine contributes additively.
	st2 := NewSimTelemetry(r, SimTelemetryOptions{})
	st2.OnPublish(63, SimGauges{InFlightFlits: 2}, nil, nil)
	if got := inFlight.Value(); got != 7 {
		t.Fatalf("in-flight gauge after second engine = %d, want 7", got)
	}
	// Detach removes only this engine's residual contribution.
	st.Detach()
	if got := inFlight.Value(); got != 2 {
		t.Fatalf("in-flight gauge after detach = %d, want 2", got)
	}
	st2.Detach()
	if got := inFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge after both detach = %d, want 0", got)
	}
}

func TestSimTelemetryShardSeries(t *testing.T) {
	r := NewRegistry()
	st := NewSimTelemetry(r, SimTelemetryOptions{Shards: 2})
	busy := []time.Duration{3 * time.Second, time.Second}
	wait := []time.Duration{0, 2 * time.Second}
	st.OnPublish(63, SimGauges{}, busy, wait)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		MetricShardBusy + `{shard="0"} 3`,
		MetricShardBusy + `{shard="1"} 1`,
		MetricShardWait + `{shard="1"} 2`,
		// max/mean = 3 / ((3+1)/2) = 1.5
		MetricShardImbalance + " 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative inputs must publish as deltas: doubling busy time adds the
	// difference, not the new total.
	busy[0], busy[1] = 6*time.Second, 2*time.Second
	st.OnPublish(127, SimGauges{}, busy, wait)
	fc := r.FloatCounter(MetricShardBusy, "", Label{Key: "shard", Value: "0"})
	if got := fc.Value(); got != 6 {
		t.Fatalf("shard 0 busy counter = %v, want 6", got)
	}
}

func TestSimTelemetryProgress(t *testing.T) {
	p := NewProgress("cycles", 100)
	st := NewSimTelemetry(nil, SimTelemetryOptions{Progress: p})
	st.OnCycle(SimCounters{Cycles: 42})
	if got := p.Snapshot().Done; got != 42 {
		t.Fatalf("progress done = %d, want 42", got)
	}
}

func TestSimTelemetryLatencyRegistered(t *testing.T) {
	r := NewRegistry()
	st := NewSimTelemetry(r, SimTelemetryOptions{LatencyBounds: []float64{1, 2, 4}})
	if st.Latency() == nil {
		t.Fatal("latency histogram not registered despite bounds")
	}
	st.Latency().Update([]uint64{1, 1, 0}, 2, 3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), MetricLatency+`_count 2`) {
		t.Fatalf("latency histogram missing from exposition:\n%s", sb.String())
	}
}
