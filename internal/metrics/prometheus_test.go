package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exact exposition bytes for a registry
// exercising every metric kind, labels, and the histogram's cumulative-bucket
// rendering. Run with -update to regenerate after an intentional format
// change.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dxbar_cycles_total", "Simulated cycles.")
	c.Add(12345)
	fc0 := r.FloatCounter("dxbar_shard_router_phase_seconds_total",
		"Cumulative router-phase execution time per shard.",
		Label{Key: "shard", Value: "0"})
	fc1 := r.FloatCounter("dxbar_shard_router_phase_seconds_total",
		"Cumulative router-phase execution time per shard.",
		Label{Key: "shard", Value: "1"})
	fc0.Add(1.5)
	fc1.Add(0.25)
	g := r.Gauge("dxbar_in_flight_flits", "Live flits anywhere in the network.")
	g.Set(-3) // gauges may legitimately transit below zero mid-detach
	fg := r.FloatGauge("dxbar_shard_imbalance_ratio", "Max/mean shard busy time.")
	fg.Set(1.0625)
	r.GaugeFunc("dxbar_goroutines", "Live goroutines.", func() float64 { return 7 })
	h := r.Histogram("dxbar_packet_latency_cycles", "Packet latency in cycles.",
		[]float64{8, 16, 32, 64})
	h.Update([]uint64{2, 0, 5, 1}, 8, 333)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.5: "1.5",
		0:   "0",
		1e9: "1e+09",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
