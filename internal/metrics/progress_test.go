package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestProgressZeroRateETA: with no completions yet the rate is zero and the
// ETA must be omitted (0), not a division blow-up.
func TestProgressZeroRateETA(t *testing.T) {
	p := NewProgress("cycles", 1000)
	s := p.Snapshot()
	if s.PerSecond != 0 {
		t.Errorf("PerSecond = %v with zero completions", s.PerSecond)
	}
	if s.ETASeconds != 0 {
		t.Errorf("ETASeconds = %v with zero rate, want 0 (unknown)", s.ETASeconds)
	}
	if s.Percent != 0 {
		t.Errorf("Percent = %v at start", s.Percent)
	}
	// The rendered line must stay finite and well-formed.
	if line := s.String(); strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
		t.Errorf("snapshot renders a non-finite value: %q", line)
	}
}

// TestProgressUnknownTotal: a zero total means "unknown" — done counts, but
// percent and ETA are suppressed everywhere including the rendered line.
func TestProgressUnknownTotal(t *testing.T) {
	p := NewProgress("points", 0)
	p.Add(37)
	s := p.Snapshot()
	if s.Done != 37 || s.Total != 0 {
		t.Fatalf("snapshot %+v, want done 37 of unknown total", s)
	}
	if s.Percent != 0 || s.ETASeconds != 0 {
		t.Errorf("percent/ETA leaked for an unknown total: %+v", s)
	}
	if line := s.String(); strings.Contains(line, "%") || strings.Contains(line, "eta") {
		t.Errorf("unknown-total line shows percent or eta: %q", line)
	}
}

// TestProgressDoneExceedsTotal: overshoot (a run that retired more units than
// estimated) must not produce a negative ETA or a panic; percent may exceed
// 100 but everything stays finite.
func TestProgressDoneExceedsTotal(t *testing.T) {
	p := NewProgress("cycles", 100)
	p.Set(250)
	s := p.Snapshot()
	if s.Done != 250 || s.Total != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Percent != 250 {
		t.Errorf("Percent = %v, want 250", s.Percent)
	}
	if s.ETASeconds != 0 {
		t.Errorf("ETASeconds = %v past completion, want 0", s.ETASeconds)
	}
	if line := s.String(); strings.Contains(line, "-") && strings.Contains(line, "eta") {
		t.Errorf("overshoot rendered a negative eta: %q", line)
	}
}

// TestProgressConcurrentSetSnapshot hammers writers (Add, Set, SetTotal)
// against snapshot readers — the race-detector guard for the /progress
// endpoint reading while the engine publishes.
func TestProgressConcurrentSetSnapshot(t *testing.T) {
	p := NewProgress("cycles", 1_000_000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				switch i % 3 {
				case 0:
					p.Add(1)
				case 1:
					p.Set(uint64(i))
				default:
					p.SetTotal(uint64(1_000_000 + i))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10_000; i++ {
			s := p.Snapshot()
			if s.Unit != "cycles" {
				t.Errorf("unit corrupted: %q", s.Unit)
				return
			}
			_ = s.String()
		}
	}()
	wg.Wait()
}

// TestProgressNilSafety: every method is nil-safe, matching the engine's
// optional-attachment contract.
func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.Add(1)
	p.Set(2)
	p.SetTotal(3)
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Errorf("nil snapshot = %+v, want zero", s)
	}
}
