package metrics

// dashboardHTML is the self-contained live dashboard served at /. It is a
// single document — inline CSS, inline JS, no external assets — that opens an
// EventSource on /events and renders stat tiles plus SVG sparklines from the
// frame stream. It must not contain backticks (it lives in a raw string).
//
// Colors follow the repo's chart convention: one fixed categorical slot per
// sparkline panel (never cycled), status red reserved for the anomaly tile,
// text in ink tokens rather than series colors, and a dark scheme that is its
// own stepped palette rather than an automatic inversion.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>dxbar telemetry</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --ink-1: #0b0b0b;
    --ink-2: #52514e;
    --ink-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6;
    --series-2: #eb6834;
    --series-3: #1baf7a;
    --series-4: #eda100;
    --status-good: #0ca30c;
    --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --ink-1: #ffffff;
      --ink-2: #c3c2b7;
      --ink-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --series-4: #c98500;
      --status-good: #0ca30c;
      --status-critical: #d03b3b;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px;
    background: var(--page); color: var(--ink-1);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 16px; }
  header h1 { font-size: 18px; font-weight: 600; margin: 0; }
  #conn { font-size: 12px; color: var(--ink-2); }
  #conn.down { color: var(--status-critical); font-weight: 600; }
  #progresswrap {
    flex: 1; max-width: 420px; height: 6px; border-radius: 3px;
    background: var(--grid); overflow: hidden; align-self: center;
  }
  #progressbar { height: 100%; width: 0; background: var(--series-1); border-radius: 3px; }
  #progresstext { font-size: 12px; color: var(--ink-2); min-width: 11em; }
  .tiles {
    display: grid; grid-template-columns: repeat(auto-fill, minmax(150px, 1fr));
    gap: 10px; margin-bottom: 18px;
  }
  .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 12px;
  }
  .tile .k { font-size: 11px; color: var(--ink-muted); text-transform: uppercase; letter-spacing: 0.04em; }
  .tile .v { font-size: 22px; font-weight: 600; margin-top: 2px; }
  .tile .u { font-size: 12px; color: var(--ink-2); font-weight: 400; }
  .tile.alert .v { color: var(--status-critical); }
  .charts { display: grid; grid-template-columns: repeat(auto-fill, minmax(300px, 1fr)); gap: 10px; }
  .chart {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 12px;
  }
  .chart h2 { font-size: 12px; font-weight: 600; color: var(--ink-2); margin: 0 0 6px; }
  .chart svg { display: block; width: 100%; height: 56px; }
  .chart .now { font-size: 12px; color: var(--ink-2); margin-top: 4px; }
  #tip {
    position: fixed; display: none; pointer-events: none; z-index: 10;
    background: var(--surface-1); border: 1px solid var(--border); border-radius: 6px;
    padding: 4px 8px; font-size: 12px; color: var(--ink-1);
    box-shadow: 0 2px 8px rgba(0,0,0,0.15);
  }
  details { margin-top: 18px; }
  summary { cursor: pointer; color: var(--ink-2); font-size: 13px; }
  table { border-collapse: collapse; margin-top: 8px; background: var(--surface-1); }
  td, th {
    border: 1px solid var(--grid); padding: 4px 10px; font-size: 13px; text-align: left;
    font-variant-numeric: tabular-nums;
  }
  th { color: var(--ink-2); font-weight: 600; }
</style>
</head>
<body>
<header>
  <h1>dxbar telemetry</h1>
  <span id="conn">connecting&hellip;</span>
  <div id="progresswrap"><div id="progressbar"></div></div>
  <span id="progresstext"></span>
</header>

<div class="tiles">
  <div class="tile"><div class="k">Cycles</div><div class="v" id="t-cycles">&ndash;</div></div>
  <div class="tile"><div class="k">Cycles / s</div><div class="v" id="t-cps">&ndash;</div></div>
  <div class="tile"><div class="k">Flits ejected</div><div class="v" id="t-ejected">&ndash;</div></div>
  <div class="tile"><div class="k">Packets delivered</div><div class="v" id="t-packets">&ndash;</div></div>
  <div class="tile"><div class="k">Latency p50</div><div class="v" id="t-p50">&ndash;<span class="u"> cyc</span></div></div>
  <div class="tile"><div class="k">Latency p99</div><div class="v" id="t-p99">&ndash;<span class="u"> cyc</span></div></div>
  <div class="tile"><div class="k">In flight</div><div class="v" id="t-inflight">&ndash;</div></div>
  <div class="tile"><div class="k">Deflected</div><div class="v" id="t-deflected">&ndash;</div></div>
  <div class="tile"><div class="k">Dropped</div><div class="v" id="t-dropped">&ndash;</div></div>
  <div class="tile" id="tile-anomalies"><div class="k">Anomalies</div><div class="v" id="t-anomalies">&ndash;</div></div>
  <div class="tile"><div class="k">Shard imbalance</div><div class="v" id="t-imbalance">&ndash;</div></div>
  <div class="tile"><div class="k">Ledger records</div><div class="v" id="t-ledger">&ndash;</div></div>
</div>

<div class="charts">
  <div class="chart"><h2>Cycles per frame</h2><svg id="s-cycles" viewBox="0 0 560 56" preserveAspectRatio="none"></svg><div class="now" id="n-cycles"></div></div>
  <div class="chart"><h2>Flits ejected per frame</h2><svg id="s-ejected" viewBox="0 0 560 56" preserveAspectRatio="none"></svg><div class="now" id="n-ejected"></div></div>
  <div class="chart"><h2>Latency p99 (cycles)</h2><svg id="s-p99" viewBox="0 0 560 56" preserveAspectRatio="none"></svg><div class="now" id="n-p99"></div></div>
  <div class="chart"><h2>Flits in flight</h2><svg id="s-inflight" viewBox="0 0 560 56" preserveAspectRatio="none"></svg><div class="now" id="n-inflight"></div></div>
</div>

<div id="tip"></div>

<details>
  <summary>Latest frame as a table</summary>
  <table id="rawtable"><tbody></tbody></table>
</details>

<script>
(function () {
  "use strict";

  function $(id) { return document.getElementById(id); }

  function fmt(n) {
    if (n === undefined || n === null || isNaN(n)) { return "–"; }
    var abs = Math.abs(n);
    if (abs >= 1e9) { return (n / 1e9).toFixed(2) + "B"; }
    if (abs >= 1e6) { return (n / 1e6).toFixed(2) + "M"; }
    if (abs >= 1e4) { return (n / 1e3).toFixed(1) + "K"; }
    if (abs >= 100 || n === Math.round(n)) { return String(Math.round(n)); }
    return n.toFixed(2);
  }

  var W = 560, H = 56, PAD = 3, POINTS = 120;
  var tip = $("tip");

  // Sparkline: one series per panel (the title names it, so no legend), a
  // 2px line in the panel's fixed categorical slot, recessive baseline, and
  // a crosshair tooltip on hover.
  function sparkline(svgID, nowID, cssVar, unit) {
    var svg = $(svgID), nowEl = $(nowID);
    var data = [], seqs = [];
    var ns = "http://www.w3.org/2000/svg";

    var base = document.createElementNS(ns, "line");
    base.setAttribute("x1", 0); base.setAttribute("x2", W);
    base.setAttribute("y1", H - 1); base.setAttribute("y2", H - 1);
    base.setAttribute("stroke", "var(--baseline)");
    base.setAttribute("stroke-width", "1");
    svg.appendChild(base);

    var path = document.createElementNS(ns, "path");
    path.setAttribute("fill", "none");
    path.setAttribute("stroke", "var(" + cssVar + ")");
    path.setAttribute("stroke-width", "2");
    path.setAttribute("stroke-linejoin", "round");
    path.setAttribute("vector-effect", "non-scaling-stroke");
    svg.appendChild(path);

    var cross = document.createElementNS(ns, "line");
    cross.setAttribute("y1", 0); cross.setAttribute("y2", H);
    cross.setAttribute("stroke", "var(--grid)");
    cross.setAttribute("stroke-width", "1");
    cross.style.display = "none";
    svg.appendChild(cross);

    var dot = document.createElementNS(ns, "circle");
    dot.setAttribute("r", "4");
    dot.setAttribute("fill", "var(" + cssVar + ")");
    dot.setAttribute("stroke", "var(--surface-1)");
    dot.setAttribute("stroke-width", "2");
    dot.style.display = "none";
    svg.appendChild(dot);

    function xy(i) {
      var n = data.length;
      var lo = Math.min.apply(null, data), hi = Math.max.apply(null, data);
      if (hi === lo) { hi = lo + 1; }
      var x = n < 2 ? W : (i / (n - 1)) * W;
      var y = PAD + (1 - (data[i] - lo) / (hi - lo)) * (H - 2 * PAD);
      return [x, y];
    }

    function redraw() {
      if (data.length < 2) { path.setAttribute("d", ""); return; }
      var d = "";
      for (var i = 0; i < data.length; i++) {
        var p = xy(i);
        d += (i === 0 ? "M" : "L") + p[0].toFixed(1) + " " + p[1].toFixed(1);
      }
      path.setAttribute("d", d);
    }

    svg.addEventListener("mousemove", function (ev) {
      if (data.length < 2) { return; }
      var r = svg.getBoundingClientRect();
      var i = Math.round(((ev.clientX - r.left) / r.width) * (data.length - 1));
      i = Math.max(0, Math.min(data.length - 1, i));
      var p = xy(i);
      cross.setAttribute("x1", p[0]); cross.setAttribute("x2", p[0]);
      cross.style.display = ""; dot.style.display = "";
      dot.setAttribute("cx", p[0]); dot.setAttribute("cy", p[1]);
      tip.style.display = "block";
      tip.textContent = "frame " + seqs[i] + ": " + fmt(data[i]) + (unit ? " " + unit : "");
      tip.style.left = (ev.clientX + 12) + "px";
      tip.style.top = (ev.clientY - 10) + "px";
    });
    svg.addEventListener("mouseleave", function () {
      cross.style.display = "none"; dot.style.display = "none";
      tip.style.display = "none";
    });

    return {
      push: function (v, seq) {
        data.push(v); seqs.push(seq);
        if (data.length > POINTS) { data.shift(); seqs.shift(); }
        redraw();
        nowEl.textContent = "now " + fmt(v) + (unit ? " " + unit : "");
      }
    };
  }

  var sCycles = sparkline("s-cycles", "n-cycles", "--series-1", "cyc");
  var sEjected = sparkline("s-ejected", "n-ejected", "--series-2", "flits");
  var sP99 = sparkline("s-p99", "n-p99", "--series-3", "cyc");
  var sInflight = sparkline("s-inflight", "n-inflight", "--series-4", "flits");

  function setText(id, txt) { $(id).firstChild.nodeValue = txt; }

  function update(s) {
    setText("t-cycles", fmt(s.cycles));
    setText("t-cps", fmt(s.cycles_per_second));
    setText("t-ejected", fmt(s.flits_ejected));
    setText("t-packets", fmt(s.packets_delivered));
    setText("t-p50", fmt(s.latency_p50_cycles));
    setText("t-p99", fmt(s.latency_p99_cycles));
    setText("t-inflight", fmt(s.in_flight_flits));
    setText("t-deflected", fmt(s.flits_deflected));
    setText("t-dropped", fmt(s.flits_dropped));
    setText("t-imbalance", s.shard_imbalance ? s.shard_imbalance.toFixed(3) : "–");
    setText("t-ledger", fmt(s.ledger_records));
    var anom = $("tile-anomalies");
    if (s.anomalies > 0) {
      anom.classList.add("alert");
      setText("t-anomalies", "⚠ " + fmt(s.anomalies));
    } else {
      anom.classList.remove("alert");
      setText("t-anomalies", fmt(s.anomalies));
    }

    var p = s.progress || {};
    if (p.total > 0) {
      $("progressbar").style.width = Math.min(100, p.percent).toFixed(1) + "%";
      var eta = p.eta_seconds > 0 ? " · ETA " + Math.round(p.eta_seconds) + "s" : "";
      $("progresstext").textContent =
        p.percent.toFixed(1) + "% of " + fmt(p.total) + " " + (p.unit || "cycles") + eta;
    }

    if (s.seq > 1) {
      sCycles.push(s.cycles_delta, s.seq);
      sEjected.push(s.flits_ejected_delta, s.seq);
    }
    sP99.push(s.latency_p99_cycles, s.seq);
    sInflight.push(s.in_flight_flits, s.seq);

    var rows = "";
    var keys = Object.keys(s).sort();
    for (var i = 0; i < keys.length; i++) {
      var k = keys[i];
      if (k === "progress") { continue; }
      rows += "<tr><th>" + k + "</th><td>" + s[k] + "</td></tr>";
    }
    $("rawtable").tBodies[0].innerHTML = rows;
  }

  var conn = $("conn");
  var es = new EventSource("/events");
  es.onopen = function () { conn.textContent = "live"; conn.classList.remove("down"); };
  es.onerror = function () { conn.textContent = "disconnected — retrying"; conn.classList.add("down"); };
  es.onmessage = function (ev) {
    try { update(JSON.parse(ev.data)); } catch (e) { /* skip malformed frame */ }
  };
})();
</script>
</body>
</html>
`
