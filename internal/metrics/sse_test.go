package metrics

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseTestHub builds a hub over a registry populated with known values for
// every family the snapshot reads, plus a latency histogram whose quantiles
// are exact. Progress is nil so the frame is fully deterministic.
func sseTestHub(t *testing.T, interval time.Duration) (*SSEHub, *Registry) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter(MetricCycles, "t").Add(1500)
	reg.FloatGauge(MetricCyclesPerSec, "t").Set(250000)
	reg.Counter(MetricInjectedFlits, "t").Add(900)
	reg.Counter(MetricEjectedFlits, "t").Add(850)
	reg.Counter(MetricDroppedFlits, "t").Add(3)
	reg.Counter(MetricDeflectedFlits, "t").Add(47)
	reg.Counter(MetricRetransmits, "t").Add(2)
	reg.Counter(MetricPacketsOut, "t").Add(850)
	reg.Gauge(MetricInFlight, "t").Add(21)
	reg.Gauge(MetricQueued, "t").Add(5)
	reg.Gauge(MetricBuffered, "t").Add(0)
	reg.FloatGauge(MetricShardImbalance, "t").Set(1.25)
	reg.Counter(MetricLedgerRecords, "t").Add(2)
	reg.Counter(anomalyFamily, "t", Label{Key: "kind", Value: "livelock"}).Add(1)
	reg.Counter(anomalyFamily, "t", Label{Key: "kind", Value: "starvation"}).Add(2)
	// 10 observations in buckets ≤4 and ≤16: ranks 1-6 land in the first,
	// 7-10 in the second, so p50=4 and p99=16 exactly.
	h := reg.Histogram(MetricLatency, "t", []float64{4, 16, 64})
	h.Update([]uint64{6, 4, 0}, 10, 70)
	return NewSSEHub(reg, nil, SSEHubOptions{Interval: interval}), reg
}

// TestSSESnapshotGolden pins the /events frame shape: the exact JSON the
// dashboard and any external watcher parse. A field rename or reorder is a
// schema change and must show up here (and bump SSESchema).
func TestSSESnapshotGolden(t *testing.T) {
	hub, _ := sseTestHub(t, time.Hour)
	hub.Snapshot() // frame 1 establishes the delta baseline
	hub.reg.Counter(MetricCycles, "t").Add(500)
	hub.reg.Counter(MetricEjectedFlits, "t").Add(120)

	frame, err := json.Marshal(hub.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"schema":1,"seq":2,"cycles":2000,"cycles_per_second":250000,` +
		`"flits_injected":900,"flits_ejected":970,"flits_dropped":3,` +
		`"flits_deflected":47,"flits_retransmitted":2,"packets_delivered":850,` +
		`"cycles_delta":500,"flits_ejected_delta":120,` +
		`"in_flight_flits":21,"queued_flits":5,"buffered_flits":0,` +
		`"latency_p50_cycles":4,"latency_p99_cycles":16,` +
		`"shard_imbalance":1.25,"anomalies":3,"ledger_records":2,` +
		`"sse_clients":0,"progress":{"unit":"","done":0,"total":0,"percent":0,` +
		`"per_second":0,"elapsed_seconds":0,"eta_seconds":0}}`
	if string(frame) != golden {
		t.Errorf("frame JSON drifted from the golden shape\ngot:  %s\nwant: %s", frame, golden)
	}
}

// TestSSESnapshotEmptyRegistry: a hub over a registry with nothing published
// (or a nil registry) must produce zero frames, not panic.
func TestSSESnapshotEmptyRegistry(t *testing.T) {
	for name, reg := range map[string]*Registry{"empty": NewRegistry(), "nil": nil} {
		hub := NewSSEHub(reg, nil, SSEHubOptions{})
		s := hub.Snapshot()
		if s.Schema != SSESchema || s.Seq != 1 || s.Cycles != 0 || s.LatencyP99 != 0 {
			t.Errorf("%s registry: unexpected snapshot %+v", name, s)
		}
	}
}

// TestSSESlowClientDrop: a subscriber that never drains must cost dropped
// frames, never a blocked publish. The publish loop below would deadlock the
// test on any blocking send.
func TestSSESlowClientDrop(t *testing.T) {
	hub, reg := sseTestHub(t, time.Hour)
	ch, cancel := hub.Subscribe()
	defer cancel()

	const published = sseBufferedFrames + 5
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < published; i++ {
			hub.publish()
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if len(ch) != sseBufferedFrames {
		t.Errorf("subscriber buffer holds %d frames, want %d", len(ch), sseBufferedFrames)
	}
	if v, _ := reg.Value(MetricSSEDropped); v != published-sseBufferedFrames {
		t.Errorf("dropped %v frames, want %d", v, published-sseBufferedFrames)
	}
	if v, _ := reg.Value(MetricSSEFrames); v != sseBufferedFrames {
		t.Errorf("delivered %v frames, want %d", v, sseBufferedFrames)
	}
}

// TestSSESubscribeRace hammers subscribe/cancel from many goroutines while
// frames publish concurrently — the race-detector guard for the hub's
// bookkeeping (the Makefile race matcher picks it up by name).
func TestSSESubscribeRace(t *testing.T) {
	hub, reg := sseTestHub(t, time.Hour)
	stop := make(chan struct{})
	var pubs sync.WaitGroup
	pubs.Add(1)
	go func() {
		defer pubs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				hub.publish()
			}
		}
	}()

	var subs sync.WaitGroup
	for g := 0; g < 8; g++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := hub.Subscribe()
				// Drain a frame if one lands, then leave; cancel twice to
				// prove idempotence under race.
				select {
				case <-ch:
				default:
				}
				cancel()
				cancel()
			}
		}()
	}
	subs.Wait()
	close(stop)
	pubs.Wait()

	if v, _ := reg.Value(MetricSSEClients); v != 0 {
		t.Errorf("client gauge = %v after all cancels, want 0", v)
	}
	hub.mu.Lock()
	if hub.stopc != nil || len(hub.subs) != 0 {
		t.Error("sampler still running or subscribers leaked after last cancel")
	}
	hub.mu.Unlock()
}

// TestSSEHubClose: Close disconnects subscribers (channel closed), further
// subscriptions come back pre-closed, and a second Close is a no-op.
func TestSSEHubClose(t *testing.T) {
	hub, _ := sseTestHub(t, time.Hour)
	ch, cancel := hub.Subscribe()
	defer cancel()
	hub.Close()
	if _, ok := <-ch; ok {
		t.Error("subscriber channel not closed by hub Close")
	}
	late, lateCancel := hub.Subscribe()
	defer lateCancel()
	if _, ok := <-late; ok {
		t.Error("post-Close subscription returned a live channel")
	}
	hub.Close() // idempotent
}

// TestSSEServeHTTPStream reads the live endpoint end to end: an immediate
// first frame, then sampler-paced frames, each a well-formed event-stream
// record carrying the schema-stamped JSON.
func TestSSEServeHTTPStream(t *testing.T) {
	hub, _ := sseTestHub(t, 10*time.Millisecond)
	defer hub.Close()
	srv := httptest.NewServer(HandlerWith(hub.reg, nil, hub))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var frames []SSESnapshot
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && len(frames) < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			if line != "" {
				t.Fatalf("malformed event-stream line %q", line)
			}
			continue
		}
		var s SSESnapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("frame does not parse: %v", err)
		}
		frames = append(frames, s)
	}
	if len(frames) < 3 {
		t.Fatalf("read %d frames, want 3 (scan err: %v)", len(frames), sc.Err())
	}
	for i, f := range frames {
		if f.Schema != SSESchema {
			t.Errorf("frame %d schema = %d, want %d", i, f.Schema, SSESchema)
		}
		if i > 0 && f.Seq <= frames[i-1].Seq {
			t.Errorf("frame %d seq %d did not advance past %d", i, f.Seq, frames[i-1].Seq)
		}
	}
	if frames[0].Clients != 1 {
		t.Errorf("first frame reports %d clients, want 1", frames[0].Clients)
	}
}

// TestDashboardServed: the root path serves the self-contained dashboard,
// and only the root path (no accidental catch-all).
func TestDashboardServed(t *testing.T) {
	hub, _ := sseTestHub(t, time.Hour)
	defer hub.Close()
	srv := httptest.NewServer(HandlerWith(hub.reg, nil, hub))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	html := b.String()
	for _, want := range []string{"<title>dxbar telemetry</title>", "EventSource(\"/events\")"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard HTML is missing %q", want)
		}
	}
	for _, ext := range []string{"<script src", "<link ", "@import", "url(http"} {
		if strings.Contains(html, ext) {
			t.Errorf("dashboard must be self-contained, found %q", ext)
		}
	}

	if resp, err := http.Get(srv.URL + "/no-such-page"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /no-such-page = %d, want 404", resp.StatusCode)
		}
	}
}

// TestRegistryReadAPI covers the introspection layer the snapshot builder
// uses: Value on each series kind, label-summed families, and histogram
// quantile edge ranks.
func TestRegistryReadAPI(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "t").Add(7)
	reg.Gauge("g", "t").Add(-3)
	reg.FloatGauge("fg", "t").Set(2.5)
	if v, ok := reg.Value("c_total"); !ok || v != 7 {
		t.Errorf("counter Value = %v, %v", v, ok)
	}
	if v, ok := reg.Value("g"); !ok || v != -3 {
		t.Errorf("gauge Value = %v, %v", v, ok)
	}
	if v, ok := reg.Value("fg"); !ok || v != 2.5 {
		t.Errorf("float gauge Value = %v, %v", v, ok)
	}
	if _, ok := reg.Value("absent"); ok {
		t.Error("Value invented an unregistered series")
	}
	reg.Counter("lab_total", "t", Label{Key: "k", Value: "a"}).Add(1)
	reg.Counter("lab_total", "t", Label{Key: "k", Value: "b"}).Add(2)
	if v, ok := reg.Sum("lab_total"); !ok || v != 3 {
		t.Errorf("Sum = %v, %v, want 3", v, ok)
	}
	if _, ok := reg.Value("lab_total"); ok {
		t.Error("unlabeled Value matched a labeled-only family")
	}

	h := reg.Histogram("lat", "t", []float64{1, 2, 4})
	if _, ok := reg.HistogramQuantile("lat", 0.5); ok {
		t.Error("quantile of an empty histogram reported ok")
	}
	h.Update([]uint64{1, 1, 2}, 4, 10)
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 1}, {0.25, 1}, {0.5, 2}, {0.75, 4}, {1, 4}} {
		if v, ok := reg.HistogramQuantile("lat", tc.q); !ok || v != tc.want {
			t.Errorf("q%.2f = %v, %v, want %v", tc.q, v, ok, tc.want)
		}
	}
	var nilReg *Registry
	if _, ok := nilReg.Value("x"); ok {
		t.Error("nil registry Value reported ok")
	}
}
