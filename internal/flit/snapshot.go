package flit

import (
	"fmt"
	"sort"

	"dxbar/internal/snapshot"
)

// Save serializes one flit by value, in field-declaration order. Flits obey a
// single-owner discipline at cycle boundaries (exactly one latch, deque,
// buffer, link stage or wheel slot holds each), so every holder serializes its
// flits in place and the restore side repopulates the pool by Get-ing a fresh
// flit per record — pool accounting matches automatically.
func Save(w *snapshot.Writer, f *Flit) {
	w.U64(f.ID)
	w.U64(f.InjectionCycle)
	w.U64(f.PacketID)
	w.U64(f.EnqueueCycle)
	w.I64(int64(f.Src))
	w.I64(int64(f.Dst))
	w.I64(int64(f.Hops))
	w.I64(int64(f.Deflections))
	w.I64(int64(f.Retransmits))
	w.I64(int64(f.Buffered))
	w.U16(f.Seq)
	w.U16(f.NumFlits)
	w.U8(uint8(f.Route))
	w.U8(uint8(f.Kind))
}

// Load decodes one flit into f, validating endpoints against the mesh size
// and the port/kind enums so a forged stream cannot smuggle out-of-range
// indices into the engine's hot paths.
func Load(r *snapshot.Reader, f *Flit, nodes int) error {
	f.ID = r.U64()
	f.InjectionCycle = r.U64()
	f.PacketID = r.U64()
	f.EnqueueCycle = r.U64()
	f.Src = int32(r.I64())
	f.Dst = int32(r.I64())
	f.Hops = int32(r.I64())
	f.Deflections = int32(r.I64())
	f.Retransmits = int32(r.I64())
	f.Buffered = int32(r.I64())
	f.Seq = r.U16()
	f.NumFlits = r.U16()
	f.Route = Port(int8(r.U8()))
	f.Kind = Kind(r.U8())
	if err := r.Err(); err != nil {
		return err
	}
	if f.Src < 0 || int(f.Src) >= nodes || f.Dst < 0 || int(f.Dst) >= nodes {
		return fmt.Errorf("flit: snapshot endpoints %d->%d out of range for %d nodes", f.Src, f.Dst, nodes)
	}
	if f.Route != Invalid && (f.Route < 0 || f.Route >= Port(NumPorts)) {
		return fmt.Errorf("flit: snapshot route port %d out of range", f.Route)
	}
	if f.NumFlits == 0 || f.Seq >= f.NumFlits {
		return fmt.Errorf("flit: snapshot seq %d out of packet of %d flits", f.Seq, f.NumFlits)
	}
	return nil
}

// savePacket serializes an in-progress packet header.
func savePacket(w *snapshot.Writer, p *Packet) {
	w.U64(p.PacketID)
	w.Int(p.Src)
	w.Int(p.Dst)
	w.U8(uint8(p.Kind))
	w.Int(p.NumFlits)
	w.U64(p.InjectionCycle)
	w.U64(p.CompletionCycle)
	w.Int(p.Hops)
	w.Int(p.Deflections)
	w.Int(p.Retransmits)
}

func loadPacket(r *snapshot.Reader, p *Packet, nodes int) error {
	p.PacketID = r.U64()
	p.Src = r.Int()
	p.Dst = r.Int()
	p.Kind = Kind(r.U8())
	p.NumFlits = r.Int()
	p.InjectionCycle = r.U64()
	p.CompletionCycle = r.U64()
	p.Hops = r.Int()
	p.Deflections = r.Int()
	p.Retransmits = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
		return fmt.Errorf("flit: snapshot packet endpoints %d->%d out of range", p.Src, p.Dst)
	}
	if p.NumFlits < 1 || p.NumFlits > 64 {
		return fmt.Errorf("flit: snapshot packet flit count %d out of [1,64]", p.NumFlits)
	}
	return nil
}

// SaveState serializes the reassembler's in-progress multi-flit packets,
// sorted by packet ID so the byte stream is independent of map iteration
// order (the Snapshot→Restore→Snapshot byte-stability property).
func (ra *Reassembler) SaveState(w *snapshot.Writer) {
	w.Tag("REAS")
	w.U32(uint32(len(ra.pending)))
	ids := make([]uint64, 0, len(ra.pending))
	for id := range ra.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := ra.pending[id]
		savePacket(w, &a.pkt)
		w.U64(a.received)
		w.Int(a.count)
	}
}

// LoadState restores the pending-packet table. The reassembler must be fresh
// (or Reset); entries are rebuilt one by one.
func (ra *Reassembler) LoadState(r *snapshot.Reader, nodes int) error {
	r.Expect("REAS")
	n := r.Len(1 << 20)
	if err := r.Err(); err != nil {
		return err
	}
	var prev uint64
	for i := 0; i < n; i++ {
		a := &assembly{}
		if err := loadPacket(r, &a.pkt, nodes); err != nil {
			return err
		}
		a.received = r.U64()
		a.count = r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if a.count < 1 || a.count > a.pkt.NumFlits {
			return fmt.Errorf("flit: snapshot reassembly count %d out of range", a.count)
		}
		if i > 0 && a.pkt.PacketID <= prev {
			return fmt.Errorf("flit: snapshot reassembly entries not strictly ascending")
		}
		prev = a.pkt.PacketID
		ra.pending[a.pkt.PacketID] = a
	}
	return nil
}
