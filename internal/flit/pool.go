package flit

// Pool is a per-engine free list of Flit objects. The simulation engine is
// single-threaded, so a plain LIFO free list beats sync.Pool here: no
// locking, no per-P caches that drain under GC pressure, and deterministic
// reuse order (the same seed replays the same pointer lifetimes, which keeps
// runs bit-for-bit reproducible).
//
// Ownership rule: a flit has exactly one owner at any cycle — an input
// latch, an output latch, a link stage, a buffer slot, an injection queue or
// the retransmit wheel. The owner that removes a flit from the network for
// good (the engine, at ejection) must Put it back. Producers overwrite every
// field when they acquire a flit (see traffic.PacketSpec.AppendFlits); the
// pool never zeroes.
type Pool struct {
	free        []*Flit
	outstanding int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a flit for reuse, allocating only when the free list is
// empty. The caller must overwrite every field — stale state from the
// flit's previous life is preserved otherwise.
func (p *Pool) Get() *Flit {
	p.outstanding++
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return new(Flit)
}

// Put returns a flit whose network life has ended. The caller must drop its
// reference: a flit that is Put twice, or used after Put, corrupts the free
// list.
func (p *Pool) Put(f *Flit) {
	p.outstanding--
	p.free = append(p.free, f)
}

// Prime grows the free list to at least n flits. The engine primes the pool
// from the mesh dimensions at construction so steady state is reached without
// long warmup-time growth: in-network occupancy is bounded by per-node latch,
// buffer and injection-slack capacity, so a capacity-proportional free list
// absorbs the in-flight population's peaks from the first cycle.
func (p *Pool) Prime(n int) {
	for len(p.free) < n {
		p.free = append(p.free, new(Flit))
	}
}

// Outstanding returns Gets minus Puts — the number of live flits the pool
// has handed out. After a network drains completely this must equal zero;
// the leak regression test asserts exactly that.
func (p *Pool) Outstanding() int { return p.outstanding }

// FreeLen returns the free-list length (diagnostics).
func (p *Pool) FreeLen() int { return len(p.free) }

// DropOutstanding abandons the pool's claim on every outstanding flit
// without recycling them. Engine.Reset uses it: flits still held by
// discarded routers become ordinary garbage, while the free list is kept
// for the next run.
func (p *Pool) DropOutstanding() { p.outstanding = 0 }

// SortByAge sorts fs oldest-first (see Older). Insertion sort: every call
// site sorts at most NumPorts flits, so this beats sort.Slice while staying
// allocation-free, and Older's total order makes the result identical to
// any comparison sort.
func SortByAge(fs []*Flit) {
	for i := 1; i < len(fs); i++ {
		f := fs[i]
		j := i - 1
		for j >= 0 && f.Older(fs[j]) {
			fs[j+1] = fs[j]
			j--
		}
		fs[j+1] = f
	}
}
