package flit

// Reassembler collects out-of-order flits of multi-flit packets at a
// destination, mimicking the MSHR-based reassembly the paper delegates to the
// cache controller (§II.A, citing CHIPPER): one entry per in-flight packet,
// completed when all NumFlits flits have arrived.
//
// A Reassembler belongs to a single node and is not safe for concurrent use
// (the simulator is single-threaded per network).
type Reassembler struct {
	pending map[uint64]*assembly
	// Completed packets since the last Drain call, in completion order.
	done []Packet
}

// Packet is a fully reassembled packet as seen by the destination.
type Packet struct {
	PacketID       uint64
	Src, Dst       int
	Kind           Kind
	NumFlits       int
	InjectionCycle uint64
	// CompletionCycle is the cycle the final flit was ejected.
	CompletionCycle uint64
	// Hops is the total link traversals summed over the packet's flits.
	Hops int
	// Deflections and Retransmits are summed over the packet's flits.
	Deflections, Retransmits int
}

type assembly struct {
	pkt      Packet
	received uint64 // bitmap of Seq values seen (packets are <=64 flits)
	count    int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint64]*assembly)}
}

// Accept ingests one ejected flit at the given cycle and returns the
// completed packet (and true) if this flit finishes its packet. Duplicate
// flits (same PacketID/Seq — possible only if a design retransmits without
// deduplication) are ignored.
func (r *Reassembler) Accept(f *Flit, cycle uint64) (Packet, bool) {
	a, ok := r.pending[f.PacketID]
	if !ok {
		a = &assembly{pkt: Packet{
			PacketID:       f.PacketID,
			Src:            f.Src,
			Dst:            f.Dst,
			Kind:           f.Kind,
			NumFlits:       int(f.NumFlits),
			InjectionCycle: f.InjectionCycle,
		}}
		r.pending[f.PacketID] = a
	}
	bit := uint64(1) << (f.Seq % 64)
	if a.received&bit != 0 {
		return Packet{}, false // duplicate
	}
	a.received |= bit
	a.count++
	a.pkt.Hops += f.Hops
	a.pkt.Deflections += f.Deflections
	a.pkt.Retransmits += f.Retransmits
	if a.count == int(f.NumFlits) {
		a.pkt.CompletionCycle = cycle
		delete(r.pending, f.PacketID)
		r.done = append(r.done, a.pkt)
		return a.pkt, true
	}
	return Packet{}, false
}

// Pending returns the number of partially assembled packets.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Drain returns and clears the list of packets completed since the last call.
func (r *Reassembler) Drain() []Packet {
	d := r.done
	r.done = nil
	return d
}
