package flit

// Reassembler collects out-of-order flits of multi-flit packets at a
// destination, mimicking the MSHR-based reassembly the paper delegates to the
// cache controller (§II.A, citing CHIPPER): one entry per in-flight packet,
// completed when all NumFlits flits have arrived.
//
// A Reassembler belongs to a single node and is not safe for concurrent use
// (the simulator is single-threaded per network). Assembly entries are
// recycled on a free list so steady-state reassembly does not allocate, and
// single-flit packets (the paper's synthetic configuration) bypass the
// pending table entirely.
type Reassembler struct {
	pending map[uint64]*assembly
	freeAsm []*assembly
}

// Packet is a fully reassembled packet as seen by the destination.
type Packet struct {
	PacketID       uint64
	Src, Dst       int
	Kind           Kind
	NumFlits       int
	InjectionCycle uint64
	// CompletionCycle is the cycle the final flit was ejected.
	CompletionCycle uint64
	// Hops is the total link traversals summed over the packet's flits.
	Hops int
	// Deflections and Retransmits are summed over the packet's flits.
	Deflections, Retransmits int
}

type assembly struct {
	pkt      Packet
	received uint64 // bitmap of Seq values seen (packets are <=64 flits)
	count    int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint64]*assembly)}
}

// Accept ingests one ejected flit at the given cycle and returns the
// completed packet (and true) if this flit finishes its packet. Duplicate
// flits (same PacketID/Seq — possible only if a design retransmits without
// deduplication) are ignored.
func (r *Reassembler) Accept(f *Flit, cycle uint64) (Packet, bool) {
	if f.NumFlits == 1 {
		// Single-flit fast path: no pending entry ever exists.
		return Packet{
			PacketID:        f.PacketID,
			Src:             int(f.Src),
			Dst:             int(f.Dst),
			Kind:            f.Kind,
			NumFlits:        1,
			InjectionCycle:  f.InjectionCycle,
			CompletionCycle: cycle,
			Hops:            int(f.Hops),
			Deflections:     int(f.Deflections),
			Retransmits:     int(f.Retransmits),
		}, true
	}
	a, ok := r.pending[f.PacketID]
	if !ok {
		a = r.newAssembly()
		a.pkt = Packet{
			PacketID:       f.PacketID,
			Src:            int(f.Src),
			Dst:            int(f.Dst),
			Kind:           f.Kind,
			NumFlits:       int(f.NumFlits),
			InjectionCycle: f.InjectionCycle,
		}
		r.pending[f.PacketID] = a
	}
	bit := uint64(1) << (f.Seq % 64)
	if a.received&bit != 0 {
		return Packet{}, false // duplicate
	}
	a.received |= bit
	a.count++
	a.pkt.Hops += int(f.Hops)
	a.pkt.Deflections += int(f.Deflections)
	a.pkt.Retransmits += int(f.Retransmits)
	if a.count == int(f.NumFlits) {
		a.pkt.CompletionCycle = cycle
		delete(r.pending, f.PacketID)
		pkt := a.pkt
		r.recycle(a)
		return pkt, true
	}
	return Packet{}, false
}

// Pending returns the number of partially assembled packets.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Reset discards all partial assemblies (Engine.Reset between sweep points).
func (r *Reassembler) Reset() {
	for id, a := range r.pending {
		delete(r.pending, id)
		r.recycle(a)
	}
}

func (r *Reassembler) newAssembly() *assembly {
	if n := len(r.freeAsm); n > 0 {
		a := r.freeAsm[n-1]
		r.freeAsm = r.freeAsm[:n-1]
		*a = assembly{}
		return a
	}
	return &assembly{}
}

func (r *Reassembler) recycle(a *assembly) { r.freeAsm = append(r.freeAsm, a) }
