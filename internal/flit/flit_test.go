package flit

import (
	"testing"
	"testing/quick"
)

func TestPortString(t *testing.T) {
	cases := map[Port]string{North: "N", East: "E", South: "S", West: "W", Local: "L", Invalid: "-"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Port(%d).String() = %q, want %q", p, got, want)
		}
	}
	if got := Port(9).String(); got != "Port(9)" {
		t.Errorf("unknown port String() = %q", got)
	}
}

func TestPortOpposite(t *testing.T) {
	cases := map[Port]Port{North: South, South: North, East: West, West: East}
	for p, want := range cases {
		if got := p.Opposite(); got != want {
			t.Errorf("%s.Opposite() = %s, want %s", p, got, want)
		}
	}
	if Local.Opposite() != Invalid {
		t.Errorf("Local.Opposite() should be Invalid")
	}
}

func TestPortOppositeInvolution(t *testing.T) {
	for p := North; p <= West; p++ {
		if p.Opposite().Opposite() != p {
			t.Errorf("Opposite is not an involution for %s", p)
		}
	}
}

func TestIsCardinal(t *testing.T) {
	for p := North; p <= West; p++ {
		if !p.IsCardinal() {
			t.Errorf("%s should be cardinal", p)
		}
	}
	if Local.IsCardinal() || Invalid.IsCardinal() {
		t.Error("Local/Invalid must not be cardinal")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Data: "data", Request: "req", Response: "resp"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind.String() = %q, want %q", got, want)
		}
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestOlderByAge(t *testing.T) {
	a := &Flit{ID: 10, InjectionCycle: 5}
	b := &Flit{ID: 1, InjectionCycle: 9}
	if !a.Older(b) {
		t.Error("flit injected earlier must be older")
	}
	if b.Older(a) {
		t.Error("Older must be asymmetric")
	}
}

func TestOlderTieBreakOnID(t *testing.T) {
	a := &Flit{ID: 3, InjectionCycle: 7}
	b := &Flit{ID: 4, InjectionCycle: 7}
	if !a.Older(b) || b.Older(a) {
		t.Error("equal ages must break ties on ID, smaller first")
	}
}

// Older must induce a strict total order: irreflexive, asymmetric, and for
// distinct flits exactly one direction holds.
func TestOlderTotalOrderProperty(t *testing.T) {
	f := func(id1, id2 uint64, age1, age2 uint64) bool {
		a := &Flit{ID: id1, InjectionCycle: age1}
		b := &Flit{ID: id2, InjectionCycle: age2}
		if a.Older(a) || b.Older(b) {
			return false
		}
		if id1 == id2 && age1 == age2 {
			return !a.Older(b) && !b.Older(a)
		}
		if id1 == id2 {
			// same ID distinct age: still exactly one direction
			return a.Older(b) != b.Older(a)
		}
		return a.Older(b) != b.Older(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlitString(t *testing.T) {
	f := &Flit{ID: 1, PacketID: 2, Seq: 0, NumFlits: 5, Src: 3, Dst: 4, InjectionCycle: 6, Route: East, Hops: 2}
	want := "flit{id=1 pkt=2 1/5 3->4 age=6 route=E hops=2}"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestReassemblerSingleFlit(t *testing.T) {
	r := NewReassembler()
	f := &Flit{ID: 1, PacketID: 42, Seq: 0, NumFlits: 1, Src: 0, Dst: 5, InjectionCycle: 10, Hops: 3}
	pkt, done := r.Accept(f, 20)
	if !done {
		t.Fatal("single-flit packet must complete immediately")
	}
	if pkt.CompletionCycle != 20 || pkt.InjectionCycle != 10 || pkt.Hops != 3 {
		t.Errorf("bad packet fields: %+v", pkt)
	}
	if r.Pending() != 0 {
		t.Error("no pending entries expected")
	}
}

func TestReassemblerOutOfOrder(t *testing.T) {
	r := NewReassembler()
	mk := func(seq uint16) *Flit {
		return &Flit{ID: uint64(100 + seq), PacketID: 7, Seq: seq, NumFlits: 3, Hops: 1}
	}
	if _, done := r.Accept(mk(2), 5); done {
		t.Fatal("packet must not complete after 1/3 flits")
	}
	if _, done := r.Accept(mk(0), 6); done {
		t.Fatal("packet must not complete after 2/3 flits")
	}
	pkt, done := r.Accept(mk(1), 9)
	if !done {
		t.Fatal("packet must complete after all flits")
	}
	if pkt.Hops != 3 {
		t.Errorf("hops must sum over flits, got %d", pkt.Hops)
	}
	if pkt.CompletionCycle != 9 {
		t.Errorf("completion cycle = %d, want 9", pkt.CompletionCycle)
	}
}

func TestReassemblerDuplicateIgnored(t *testing.T) {
	r := NewReassembler()
	f := &Flit{ID: 1, PacketID: 9, Seq: 0, NumFlits: 2}
	dup := &Flit{ID: 2, PacketID: 9, Seq: 0, NumFlits: 2}
	if _, done := r.Accept(f, 1); done {
		t.Fatal("incomplete")
	}
	if _, done := r.Accept(dup, 2); done {
		t.Fatal("duplicate seq must not complete the packet")
	}
	if _, done := r.Accept(&Flit{ID: 3, PacketID: 9, Seq: 1, NumFlits: 2}, 3); !done {
		t.Fatal("packet should complete with the genuinely missing flit")
	}
}

func TestReassemblerInterleavedPackets(t *testing.T) {
	r := NewReassembler()
	completed := 0
	for seq := uint16(0); seq < 4; seq++ {
		for pid := uint64(1); pid <= 3; pid++ {
			_, done := r.Accept(&Flit{ID: pid*100 + uint64(seq), PacketID: pid, Seq: seq, NumFlits: 4}, uint64(seq))
			if done != (seq == 3) {
				t.Fatalf("pkt %d seq %d: done=%v", pid, seq, done)
			}
			if done {
				completed++
			}
		}
	}
	if completed != 3 {
		t.Errorf("completed %d packets, want 3", completed)
	}
	if r.Pending() != 0 {
		t.Errorf("pending after completion = %d, want 0", r.Pending())
	}
}

// Property: any permutation of a packet's flits completes exactly once, on
// the last flit, with summed hop counts.
func TestReassemblerPermutationProperty(t *testing.T) {
	f := func(order []uint8) bool {
		const n = 8
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		// Fisher-Yates driven by the random input bytes.
		for i := n - 1; i > 0; i-- {
			var b uint8
			if len(order) > 0 {
				b = order[i%len(order)]
			}
			j := int(b) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		r := NewReassembler()
		completions := 0
		for k, seq := range perm {
			_, done := r.Accept(&Flit{ID: uint64(seq), PacketID: 1, Seq: uint16(seq), NumFlits: n, Hops: 1}, uint64(k))
			if done {
				completions++
				if k != n-1 {
					return false // completed before the last flit
				}
			}
		}
		return completions == 1 && r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
