// Package crossbar provides structural models of the two switch fabrics the
// paper builds routers from:
//
//   - XBar: a plain matrix crossbar (the baseline's 5×5 switch, and the
//     primary/secondary crossbars of the dual-crossbar DXbar router). It
//     tracks per-cycle input/output occupancy, counts traversals for the
//     energy model, and supports crosspoint faults and whole-crossbar
//     failure (§II.C).
//   - Unified: the dual-input single crossbar (§II.B, Fig. 4): one matrix
//     crossbar whose output lines carry transmission gates, so each input
//     row can be segmented and carry two flits simultaneously — one entering
//     from the low end (the bufferless path) and one from the high end (the
//     buffered path) — provided the low-entry flit uses a lower-numbered
//     output column. Gates can be stuck-on or stuck-off for fault studies.
//
// Connection state is per cycle: routers call Reset at the start of each
// cycle, then Connect for every granted flit; Connect validates the request
// against occupancy and fault state exactly the way the paper's allocator
// probes a crosspoint (busy/free test, §III.E).
package crossbar

import (
	"errors"
	"fmt"
)

// Connection errors. Routers distinguish ErrFault (a permanent hardware
// fault was hit — triggers fault detection) from occupancy errors (normal
// contention — a simulator bug if allocation was correct).
var (
	// ErrFault is returned when the requested path crosses a faulty
	// crosspoint, a dead crossbar, or an unusable transmission-gate
	// configuration.
	ErrFault = errors.New("crossbar: path is faulty")
	// ErrBusy is returned when the input or output line is already driven
	// this cycle.
	ErrBusy = errors.New("crossbar: resource busy")
)

// XBar is a numIn×numOut matrix crossbar.
type XBar struct {
	numIn, numOut int
	xpFault       [][]bool
	dead          bool
	inUse         []int // output connected per input, -1 free
	outUse        []int // input connected per output, -1 free
	traversals    uint64
}

// NewXBar returns a fault-free crossbar of the given radix.
func NewXBar(numIn, numOut int) *XBar {
	if numIn <= 0 || numOut <= 0 {
		panic(fmt.Sprintf("crossbar: invalid radix %dx%d", numIn, numOut))
	}
	x := &XBar{
		numIn:   numIn,
		numOut:  numOut,
		xpFault: make([][]bool, numIn),
		inUse:   make([]int, numIn),
		outUse:  make([]int, numOut),
	}
	for i := range x.xpFault {
		x.xpFault[i] = make([]bool, numOut)
	}
	x.Reset()
	return x
}

// NumIn returns the input radix.
func (x *XBar) NumIn() int { return x.numIn }

// NumOut returns the output radix.
func (x *XBar) NumOut() int { return x.numOut }

// Reset clears all per-cycle connections (call at the start of each cycle).
func (x *XBar) Reset() {
	for i := range x.inUse {
		x.inUse[i] = -1
	}
	for o := range x.outUse {
		x.outUse[o] = -1
	}
}

// Connect establishes input→output for this cycle. It returns ErrFault if
// the crosspoint is faulty or the crossbar is dead, ErrBusy if either line
// is already driven.
func (x *XBar) Connect(in, out int) error {
	if in < 0 || in >= x.numIn || out < 0 || out >= x.numOut {
		panic(fmt.Sprintf("crossbar: connect(%d,%d) out of range", in, out))
	}
	if x.dead || x.xpFault[in][out] {
		return ErrFault
	}
	if x.inUse[in] != -1 || x.outUse[out] != -1 {
		return ErrBusy
	}
	x.inUse[in] = out
	x.outUse[out] = in
	x.traversals++
	return nil
}

// Connected returns the output driven by input in this cycle (-1 if none).
func (x *XBar) Connected(in int) int { return x.inUse[in] }

// Traversals returns the cumulative number of successful connections, which
// the energy model multiplies by the per-flit crossbar energy.
func (x *XBar) Traversals() uint64 { return x.traversals }

// InjectCrosspointFault marks one crosspoint permanently faulty.
func (x *XBar) InjectCrosspointFault(in, out int) { x.xpFault[in][out] = true }

// Kill marks the whole crossbar permanently failed (§II.C fault model).
func (x *XBar) Kill() { x.dead = true }

// Dead reports whether the whole crossbar has failed.
func (x *XBar) Dead() bool { return x.dead }

// CrosspointCount returns the number of crosspoints (area model input).
func (x *XBar) CrosspointCount() int { return x.numIn * x.numOut }
