// Package crossbar provides structural models of the two switch fabrics the
// paper builds routers from:
//
//   - XBar: a plain matrix crossbar (the baseline's 5×5 switch, and the
//     primary/secondary crossbars of the dual-crossbar DXbar router). It
//     tracks per-cycle input/output occupancy, counts traversals for the
//     energy model, and supports crosspoint faults and whole-crossbar
//     failure (§II.C).
//   - Unified: the dual-input single crossbar (§II.B, Fig. 4): one matrix
//     crossbar whose output lines carry transmission gates, so each input
//     row can be segmented and carry two flits simultaneously — one entering
//     from the low end (the bufferless path) and one from the high end (the
//     buffered path) — provided the low-entry flit uses a lower-numbered
//     output column. Gates can be stuck-on or stuck-off for fault studies.
//
// Connection state is per cycle: routers call Reset at the start of each
// cycle, then Connect for every granted flit; Connect validates the request
// against occupancy and fault state exactly the way the paper's allocator
// probes a crosspoint (busy/free test, §III.E).
//
// All per-cycle occupancy and all fault state is held as uint64 bitmasks
// (one word per input row, one word per occupancy vector), so Reset is two
// word stores and a connection probe is a handful of bit tests — the
// bit-parallel discipline the whole router core is built on.
package crossbar

import (
	"errors"
	"fmt"
)

// Connection errors. Routers distinguish ErrFault (a permanent hardware
// fault was hit — triggers fault detection) from occupancy errors (normal
// contention — a simulator bug if allocation was correct).
var (
	// ErrFault is returned when the requested path crosses a faulty
	// crosspoint, a dead crossbar, or an unusable transmission-gate
	// configuration.
	ErrFault = errors.New("crossbar: path is faulty")
	// ErrBusy is returned when the input or output line is already driven
	// this cycle.
	ErrBusy = errors.New("crossbar: resource busy")
)

// Status is the allocation-free probe result of TryConnect: the same
// three-way outcome Connect encodes as error values, as a plain enum for
// the bit-parallel hot path (no errors.Is chain per probe).
type Status int8

// TryConnect outcomes.
const (
	OK Status = iota
	Busy
	Fault
)

// Err converts a Status to the corresponding Connect error (nil for OK).
func (s Status) Err() error {
	switch s {
	case Busy:
		return ErrBusy
	case Fault:
		return ErrFault
	}
	return nil
}

// XBar is a numIn×numOut matrix crossbar.
type XBar struct {
	numIn, numOut int
	// faultRow[i] has bit o set when crosspoint (i,o) is permanently
	// faulty; anyFault caches whether any row is non-zero, so the healthy
	// hot path skips the row load entirely. dead marks whole-crossbar
	// failure.
	faultRow []uint64
	anyFault bool
	dead     bool
	// inMask/outMask are the per-cycle occupancy vectors (bit i / bit o set
	// = line already driven). connected[i] is the output driven by input i,
	// valid only where inMask has bit i (stale entries are never read).
	inMask, outMask uint64
	connected       []int8
	traversals      uint64
}

// NewXBar returns a fault-free crossbar of the given radix. Both radices
// must fit a 64-bit occupancy word.
func NewXBar(numIn, numOut int) *XBar {
	if numIn <= 0 || numOut <= 0 || numIn > 64 || numOut > 64 {
		panic(fmt.Sprintf("crossbar: invalid radix %dx%d", numIn, numOut))
	}
	return &XBar{
		numIn:     numIn,
		numOut:    numOut,
		faultRow:  make([]uint64, numIn),
		connected: make([]int8, numIn),
	}
}

// NumIn returns the input radix.
func (x *XBar) NumIn() int { return x.numIn }

// NumOut returns the output radix.
func (x *XBar) NumOut() int { return x.numOut }

// Reset clears all per-cycle connections (call at the start of each cycle).
func (x *XBar) Reset() {
	x.inMask, x.outMask = 0, 0
}

// TryConnect probes and (on OK) establishes input→output for this cycle:
// Fault if the crosspoint is faulty or the crossbar dead, Busy if either
// line is already driven.
func (x *XBar) TryConnect(in, out int) Status {
	if in < 0 || in >= x.numIn || out < 0 || out >= x.numOut {
		panic(fmt.Sprintf("crossbar: connect(%d,%d) out of range", in, out))
	}
	outBit := uint64(1) << uint(out)
	if x.dead || (x.anyFault && x.faultRow[in]&outBit != 0) {
		return Fault
	}
	inBit := uint64(1) << uint(in)
	if x.inMask&inBit != 0 || x.outMask&outBit != 0 {
		return Busy
	}
	x.inMask |= inBit
	x.outMask |= outBit
	x.connected[in] = int8(out)
	x.traversals++
	return OK
}

// Connect establishes input→output for this cycle. It returns ErrFault if
// the crosspoint is faulty or the crossbar is dead, ErrBusy if either line
// is already driven.
func (x *XBar) Connect(in, out int) error { return x.TryConnect(in, out).Err() }

// Connected returns the output driven by input in this cycle (-1 if none).
func (x *XBar) Connected(in int) int {
	if x.inMask&(1<<uint(in)) == 0 {
		return -1
	}
	return int(x.connected[in])
}

// FreeOutMask returns the bitmask of output lines not yet driven this cycle
// (bit o set = output o free), over the crossbar's output radix.
func (x *XBar) FreeOutMask() uint64 {
	return ^x.outMask & (uint64(1)<<uint(x.numOut) - 1)
}

// RowUsable reports whether input row in can currently drive anything at
// all: the crossbar is alive and the row's occupancy bit is clear.
func (x *XBar) RowUsable(in int) bool {
	return !x.dead && x.inMask&(1<<uint(in)) == 0
}

// Traversals returns the cumulative number of successful connections, which
// the energy model multiplies by the per-flit crossbar energy.
func (x *XBar) Traversals() uint64 { return x.traversals }

// InjectCrosspointFault marks one crosspoint permanently faulty.
func (x *XBar) InjectCrosspointFault(in, out int) {
	x.faultRow[in] |= 1 << uint(out)
	x.anyFault = true
}

// Kill marks the whole crossbar permanently failed (§II.C fault model).
func (x *XBar) Kill() { x.dead = true }

// Dead reports whether the whole crossbar has failed.
func (x *XBar) Dead() bool { return x.dead }

// CrosspointCount returns the number of crosspoints (area model input).
func (x *XBar) CrosspointCount() int { return x.numIn * x.numOut }
