package crossbar

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestXBarConnectAndReset(t *testing.T) {
	x := NewXBar(5, 5)
	if err := x.Connect(0, 3); err != nil {
		t.Fatalf("connect failed: %v", err)
	}
	if x.Connected(0) != 3 {
		t.Error("Connected(0) wrong")
	}
	if err := x.Connect(0, 2); !errors.Is(err, ErrBusy) {
		t.Errorf("reusing input must be ErrBusy, got %v", err)
	}
	if err := x.Connect(1, 3); !errors.Is(err, ErrBusy) {
		t.Errorf("reusing output must be ErrBusy, got %v", err)
	}
	x.Reset()
	if err := x.Connect(1, 3); err != nil {
		t.Errorf("connect after reset failed: %v", err)
	}
	if x.Traversals() != 2 {
		t.Errorf("traversals = %d, want 2", x.Traversals())
	}
}

func TestXBarCrosspointFault(t *testing.T) {
	x := NewXBar(5, 5)
	x.InjectCrosspointFault(2, 4)
	if err := x.Connect(2, 4); !errors.Is(err, ErrFault) {
		t.Errorf("faulty crosspoint must be ErrFault, got %v", err)
	}
	// Other crosspoints on the same lines still work.
	if err := x.Connect(2, 3); err != nil {
		t.Errorf("healthy crosspoint failed: %v", err)
	}
}

func TestXBarKill(t *testing.T) {
	x := NewXBar(5, 5)
	x.Kill()
	if !x.Dead() {
		t.Error("Dead() must report true")
	}
	if err := x.Connect(0, 0); !errors.Is(err, ErrFault) {
		t.Errorf("dead crossbar must be ErrFault, got %v", err)
	}
}

func TestXBarAccessors(t *testing.T) {
	x := NewXBar(4, 5)
	if x.NumIn() != 4 || x.NumOut() != 5 || x.CrosspointCount() != 20 {
		t.Error("accessors wrong")
	}
}

func TestXBarPanicsOutOfRange(t *testing.T) {
	x := NewXBar(5, 5)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range connect must panic")
		}
	}()
	x.Connect(5, 0)
}

// Property: any sequence of Connect calls leaves each input and output
// driven at most once per cycle, whatever the outcome pattern.
func TestXBarOccupancyProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		x := NewXBar(5, 5)
		inSeen := map[int]bool{}
		outSeen := map[int]bool{}
		for _, p := range pairs {
			in, out := int(p)%5, int(p>>4)%5
			err := x.Connect(in, out)
			if err == nil {
				if inSeen[in] || outSeen[out] {
					return false
				}
				inSeen[in], outSeen[out] = true, true
			} else if !errors.Is(err, ErrBusy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnifiedSingleConnection(t *testing.T) {
	u := NewUnified(5)
	if err := u.Connect(0, EntryLow, 4); err != nil {
		t.Fatalf("low-entry to far column must work with all gates on: %v", err)
	}
	if err := u.Connect(1, EntryHigh, 0); err != nil {
		t.Fatalf("high-entry to column 0 must work: %v", err)
	}
	if u.Traversals() != 2 {
		t.Error("traversal count wrong")
	}
}

func TestUnifiedDualTraversalSameRow(t *testing.T) {
	// Paper Fig. 4(b): I0 -> O2 (low) and I0' -> O3 (high) simultaneously.
	u := NewUnified(5)
	if err := u.Connect(0, EntryLow, 2); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	if err := u.Connect(0, EntryHigh, 3); err != nil {
		t.Fatalf("dual traversal must be allowed: %v", err)
	}
}

func TestUnifiedDualOrderingViolation(t *testing.T) {
	u := NewUnified(5)
	if err := u.Connect(0, EntryLow, 3); err != nil {
		t.Fatal(err)
	}
	// High entry wanting a column at/above the low column cannot coexist.
	if err := u.Connect(0, EntryHigh, 2); !errors.Is(err, ErrBusy) {
		t.Errorf("ordering violation must be ErrBusy, got %v", err)
	}
	if err := u.Connect(0, EntryHigh, 3); !errors.Is(err, ErrBusy) {
		t.Errorf("same column must be ErrBusy, got %v", err)
	}
}

func TestUnifiedEntryBusy(t *testing.T) {
	u := NewUnified(5)
	if err := u.Connect(0, EntryLow, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.Connect(0, EntryLow, 3); !errors.Is(err, ErrBusy) {
		t.Errorf("same entry reuse must be ErrBusy, got %v", err)
	}
}

func TestUnifiedOutputBusyAcrossRows(t *testing.T) {
	u := NewUnified(5)
	if err := u.Connect(0, EntryLow, 2); err != nil {
		t.Fatal(err)
	}
	if err := u.Connect(1, EntryLow, 2); !errors.Is(err, ErrBusy) {
		t.Errorf("output column reuse must be ErrBusy, got %v", err)
	}
}

func TestUnifiedStuckOffBlocksReach(t *testing.T) {
	u := NewUnified(5)
	u.InjectGateStuckOff(0, 1) // row 0 severed between columns 1 and 2
	if err := u.Connect(0, EntryLow, 3); !errors.Is(err, ErrFault) {
		t.Errorf("low entry past stuck-off gate must be ErrFault, got %v", err)
	}
	if err := u.Connect(0, EntryLow, 1); err != nil {
		t.Errorf("low entry before stuck-off gate must work: %v", err)
	}
	u.Reset()
	if err := u.Connect(0, EntryHigh, 0); !errors.Is(err, ErrFault) {
		t.Errorf("high entry past stuck-off gate must be ErrFault, got %v", err)
	}
	if err := u.Connect(0, EntryHigh, 2); err != nil {
		t.Errorf("high entry before stuck-off gate must work: %v", err)
	}
}

func TestUnifiedStuckOnPreventsSegmentation(t *testing.T) {
	u := NewUnified(5)
	// Adjacent columns 2,3: only gate 2 lies between; make it stuck on.
	u.InjectGateStuckOn(0, 2)
	if err := u.Connect(0, EntryLow, 2); err != nil {
		t.Fatal(err)
	}
	if err := u.Connect(0, EntryHigh, 3); !errors.Is(err, ErrFault) {
		t.Errorf("unsegmentable dual traversal must be ErrFault, got %v", err)
	}
	// A wider separation has other gates to open.
	u.Reset()
	if err := u.Connect(0, EntryLow, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.Connect(0, EntryHigh, 4); err != nil {
		t.Errorf("wider dual traversal must still work: %v", err)
	}
}

func TestUnifiedCrosspointFaultAndKill(t *testing.T) {
	u := NewUnified(5)
	u.InjectCrosspointFault(1, 1)
	if err := u.Connect(1, EntryLow, 1); !errors.Is(err, ErrFault) {
		t.Errorf("crosspoint fault must be ErrFault, got %v", err)
	}
	u.Kill()
	if !u.Dead() {
		t.Error("Dead() wrong")
	}
	if err := u.Connect(2, EntryLow, 2); !errors.Is(err, ErrFault) {
		t.Errorf("dead unified crossbar must be ErrFault, got %v", err)
	}
}

func TestUnifiedCounts(t *testing.T) {
	u := NewUnified(5)
	if u.N() != 5 || u.CrosspointCount() != 25 || u.GateCount() != 20 {
		t.Error("count accessors wrong")
	}
}

// Property: for a healthy unified crossbar, a low-entry and high-entry pair
// on the same row connects successfully iff lowCol < highCol.
func TestUnifiedDualFeasibilityProperty(t *testing.T) {
	f := func(lowRaw, highRaw uint8) bool {
		low, high := int(lowRaw)%5, int(highRaw)%5
		u := NewUnified(5)
		if err := u.Connect(0, EntryLow, low); err != nil {
			return false
		}
		err := u.Connect(0, EntryHigh, high)
		if low < high {
			return err == nil
		}
		return errors.Is(err, ErrBusy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
