package crossbar

import "testing"

func BenchmarkXBarConnectReset(b *testing.B) {
	x := NewXBar(5, 5)
	for i := 0; i < b.N; i++ {
		x.Reset()
		_ = x.Connect(0, 1)
		_ = x.Connect(1, 2)
		_ = x.Connect(2, 0)
		_ = x.Connect(3, 4)
	}
}

func BenchmarkUnifiedDualConnect(b *testing.B) {
	u := NewUnified(5)
	for i := 0; i < b.N; i++ {
		u.Reset()
		_ = u.Connect(0, EntryLow, 1)
		_ = u.Connect(0, EntryHigh, 3)
		_ = u.Connect(2, EntryLow, 0)
	}
}
