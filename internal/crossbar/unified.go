package crossbar

import (
	"fmt"
	"math/bits"
)

// Entry ends of a unified-crossbar input row. The bufferless (primary-path)
// demultiplexer output drives the row from the low end; the buffered
// (secondary-path) output drives it from the high end.
const (
	EntryLow  = 0 // bufferless candidate
	EntryHigh = 1 // buffered candidate
)

// Unified is the dual-input single crossbar of §II.B (Fig. 4a): an n×n
// matrix crossbar with a transmission gate between every pair of adjacent
// output columns on each input row. Turning a gate off segments the row so
// two flits can traverse it simultaneously:
//
//	low entry ──[col0]──g0──[col1]──g1──[col2]──g2──[col3]──g3──[col4]── high entry
//
// A flit entering from the low end reaching column c needs gates g0..g(c-1)
// conducting; a flit from the high end reaching column c needs gates
// gc..g(n-2) conducting; both at once need lowCol < highCol and at least one
// healthy gate turned off between them.
//
// Gate and crosspoint fault state is one bitmask word per row, so the
// reachability and segmentation tests are single AND-with-range-mask
// operations instead of per-gate loops.
type Unified struct {
	n int
	// xpFault[i] bit o: crosspoint (i,o) faulty. stuckOn/stuckOff[i] bit g:
	// gate g of row i stuck conducting / stuck open.
	xpFault    []uint64
	stuckOn    []uint64
	stuckOff   []uint64
	dead       bool
	rowCol     [][2]int8 // per row: column driven from [EntryLow, EntryHigh], -1 free
	usedRows   uint64    // bit i set = row i has at least one entry connected
	outMask    uint64    // bit o set = output column o driven this cycle
	traversals uint64
}

// NewUnified returns a fault-free n×n unified crossbar (n = 5 in the paper).
func NewUnified(n int) *Unified {
	if n < 2 || n > 64 {
		panic(fmt.Sprintf("crossbar: unified crossbar needs radix in [2,64], got %d", n))
	}
	u := &Unified{
		n:        n,
		xpFault:  make([]uint64, n),
		stuckOn:  make([]uint64, n),
		stuckOff: make([]uint64, n),
		rowCol:   make([][2]int8, n),
	}
	u.Reset()
	for i := range u.rowCol {
		u.rowCol[i] = [2]int8{-1, -1}
	}
	return u
}

// N returns the crossbar radix.
func (u *Unified) N() int { return u.n }

// Reset clears per-cycle connection state. Only rows that were actually
// driven are cleared (usedRows tracks them), so an idle router's Reset is a
// pair of word stores.
func (u *Unified) Reset() {
	for m := u.usedRows; m != 0; m &= m - 1 {
		u.rowCol[bits.TrailingZeros64(m)] = [2]int8{-1, -1}
	}
	u.usedRows = 0
	u.outMask = 0
}

// rangeMask returns the bitmask with bits [lo, hi) set.
func rangeMask(lo, hi int) uint64 {
	return (uint64(1)<<uint(hi) - 1) &^ (uint64(1)<<uint(lo) - 1)
}

// reachable reports whether a signal entering row `in` from `entry` can be
// driven to column `out` given stuck-off gates: one AND against the range
// of gates the signal must cross.
func (u *Unified) reachable(in, entry, out int) bool {
	if entry == EntryLow {
		return u.stuckOff[in]&rangeMask(0, out) == 0
	}
	return u.stuckOff[in]&rangeMask(out, u.n-1) == 0
}

// canSegment reports whether some healthy (not stuck-on) gate exists in the
// open interval between the low and high columns of row in.
func (u *Unified) canSegment(in, lowCol, highCol int) bool {
	return ^u.stuckOn[in]&rangeMask(lowCol, highCol) != 0
}

// TryConnect probes and (on OK) drives output column out from row in,
// entering at the given end: Fault when the path is physically unusable
// (dead crossbar, faulty crosspoint, stuck gates, or a same-row companion
// that cannot be segmented away), Busy on occupancy conflicts.
func (u *Unified) TryConnect(in, entry, out int) Status {
	if in < 0 || in >= u.n || out < 0 || out >= u.n || (entry != EntryLow && entry != EntryHigh) {
		panic(fmt.Sprintf("crossbar: unified connect(%d,%d,%d) out of range", in, entry, out))
	}
	if u.dead || u.xpFault[in]&(1<<uint(out)) != 0 {
		return Fault
	}
	if u.rowCol[in][entry] != -1 || u.outMask&(1<<uint(out)) != 0 {
		return Busy
	}
	if !u.reachable(in, entry, out) {
		return Fault
	}
	// Check compatibility with the companion already on this row.
	otherCol := int(u.rowCol[in][1-entry])
	if otherCol != -1 {
		lowCol, highCol := out, otherCol
		if entry == EntryHigh {
			lowCol, highCol = otherCol, out
		}
		if lowCol >= highCol {
			// The segmentation ordering is violated; the allocator's swap
			// logic is responsible for never issuing this.
			return Busy
		}
		if !u.canSegment(in, lowCol, highCol) {
			return Fault
		}
	}
	u.rowCol[in][entry] = int8(out)
	u.usedRows |= 1 << uint(in)
	u.outMask |= 1 << uint(out)
	u.traversals++
	return OK
}

// Connect drives output column out from row in, entering at the given end.
// It returns ErrFault when the path is physically unusable and ErrBusy on
// occupancy conflicts.
func (u *Unified) Connect(in, entry, out int) error {
	return u.TryConnect(in, entry, out).Err()
}

// Traversals returns cumulative successful connections.
func (u *Unified) Traversals() uint64 { return u.traversals }

// Kill marks the whole unified crossbar failed.
func (u *Unified) Kill() { u.dead = true }

// Dead reports whether the crossbar has failed.
func (u *Unified) Dead() bool { return u.dead }

// InjectCrosspointFault marks crosspoint (in, out) permanently faulty.
func (u *Unified) InjectCrosspointFault(in, out int) { u.xpFault[in] |= 1 << uint(out) }

// InjectGateStuckOn marks gate g of row in stuck conducting (the row can no
// longer be segmented at g).
func (u *Unified) InjectGateStuckOn(in, g int) { u.stuckOn[in] |= 1 << uint(g) }

// InjectGateStuckOff marks gate g of row in stuck open (signals cannot cross
// between columns g and g+1).
func (u *Unified) InjectGateStuckOff(in, g int) { u.stuckOff[in] |= 1 << uint(g) }

// CrosspointCount returns the number of crosspoints.
func (u *Unified) CrosspointCount() int { return u.n * u.n }

// GateCount returns the number of transmission gates (n-1 per row).
func (u *Unified) GateCount() int { return u.n * (u.n - 1) }
