package crossbar

import "fmt"

// Entry ends of a unified-crossbar input row. The bufferless (primary-path)
// demultiplexer output drives the row from the low end; the buffered
// (secondary-path) output drives it from the high end.
const (
	EntryLow  = 0 // bufferless candidate
	EntryHigh = 1 // buffered candidate
)

// Unified is the dual-input single crossbar of §II.B (Fig. 4a): an n×n
// matrix crossbar with a transmission gate between every pair of adjacent
// output columns on each input row. Turning a gate off segments the row so
// two flits can traverse it simultaneously:
//
//	low entry ──[col0]──g0──[col1]──g1──[col2]──g2──[col3]──g3──[col4]── high entry
//
// A flit entering from the low end reaching column c needs gates g0..g(c-1)
// conducting; a flit from the high end reaching column c needs gates
// gc..g(n-2) conducting; both at once need lowCol < highCol and at least one
// healthy gate turned off between them.
type Unified struct {
	n          int
	xpFault    [][]bool
	stuckOn    [][]bool // gate cannot be opened (cannot segment there)
	stuckOff   [][]bool // gate cannot conduct (blocks the row there)
	dead       bool
	rowCol     [][2]int // per row: column driven from [EntryLow, EntryHigh], -1 free
	outUse     []int    // row driving each output column, -1 free
	traversals uint64
}

// NewUnified returns a fault-free n×n unified crossbar (n = 5 in the paper).
func NewUnified(n int) *Unified {
	if n < 2 {
		panic(fmt.Sprintf("crossbar: unified crossbar needs radix >= 2, got %d", n))
	}
	u := &Unified{
		n:        n,
		xpFault:  make([][]bool, n),
		stuckOn:  make([][]bool, n),
		stuckOff: make([][]bool, n),
		rowCol:   make([][2]int, n),
		outUse:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		u.xpFault[i] = make([]bool, n)
		u.stuckOn[i] = make([]bool, n-1)
		u.stuckOff[i] = make([]bool, n-1)
	}
	u.Reset()
	return u
}

// N returns the crossbar radix.
func (u *Unified) N() int { return u.n }

// Reset clears per-cycle connection state.
func (u *Unified) Reset() {
	for i := range u.rowCol {
		u.rowCol[i] = [2]int{-1, -1}
	}
	for o := range u.outUse {
		u.outUse[o] = -1
	}
}

// reachable reports whether a signal entering row `in` from `entry` can be
// driven to column `out` given stuck-off gates.
func (u *Unified) reachable(in, entry, out int) bool {
	if entry == EntryLow {
		for g := 0; g < out; g++ {
			if u.stuckOff[in][g] {
				return false
			}
		}
	} else {
		for g := out; g < u.n-1; g++ {
			if u.stuckOff[in][g] {
				return false
			}
		}
	}
	return true
}

// canSegment reports whether some healthy (not stuck-on) gate exists in the
// open interval between the low and high columns of row in.
func (u *Unified) canSegment(in, lowCol, highCol int) bool {
	for g := lowCol; g < highCol; g++ {
		if !u.stuckOn[in][g] {
			return true
		}
	}
	return false
}

// Connect drives output column out from row in, entering at the given end.
// It returns ErrFault when the path is physically unusable (dead crossbar,
// faulty crosspoint, stuck gates, or a same-row companion that cannot be
// segmented away) and ErrBusy on occupancy conflicts.
func (u *Unified) Connect(in, entry, out int) error {
	if in < 0 || in >= u.n || out < 0 || out >= u.n || (entry != EntryLow && entry != EntryHigh) {
		panic(fmt.Sprintf("crossbar: unified connect(%d,%d,%d) out of range", in, entry, out))
	}
	if u.dead || u.xpFault[in][out] {
		return ErrFault
	}
	if u.rowCol[in][entry] != -1 || u.outUse[out] != -1 {
		return ErrBusy
	}
	if !u.reachable(in, entry, out) {
		return ErrFault
	}
	// Check compatibility with the companion already on this row.
	otherCol := u.rowCol[in][1-entry]
	if otherCol != -1 {
		lowCol, highCol := out, otherCol
		if entry == EntryHigh {
			lowCol, highCol = otherCol, out
		}
		if lowCol >= highCol {
			// The segmentation ordering is violated; the allocator's swap
			// logic is responsible for never issuing this.
			return ErrBusy
		}
		if !u.canSegment(in, lowCol, highCol) {
			return ErrFault
		}
	}
	u.rowCol[in][entry] = out
	u.outUse[out] = in
	u.traversals++
	return nil
}

// Traversals returns cumulative successful connections.
func (u *Unified) Traversals() uint64 { return u.traversals }

// Kill marks the whole unified crossbar failed.
func (u *Unified) Kill() { u.dead = true }

// Dead reports whether the crossbar has failed.
func (u *Unified) Dead() bool { return u.dead }

// InjectCrosspointFault marks crosspoint (in, out) permanently faulty.
func (u *Unified) InjectCrosspointFault(in, out int) { u.xpFault[in][out] = true }

// InjectGateStuckOn marks gate g of row in stuck conducting (the row can no
// longer be segmented at g).
func (u *Unified) InjectGateStuckOn(in, g int) { u.stuckOn[in][g] = true }

// InjectGateStuckOff marks gate g of row in stuck open (signals cannot cross
// between columns g and g+1).
func (u *Unified) InjectGateStuckOff(in, g int) { u.stuckOff[in][g] = true }

// CrosspointCount returns the number of crosspoints.
func (u *Unified) CrosspointCount() int { return u.n * u.n }

// GateCount returns the number of transmission gates (n-1 per row).
func (u *Unified) GateCount() int { return u.n * (u.n - 1) }
