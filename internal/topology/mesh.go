// Package topology models the 2D mesh interconnect the paper evaluates on
// (8×8 by default): node coordinates, port-level neighbour relations, and the
// directed links the simulation engine instantiates latches for.
package topology

import (
	"fmt"

	"dxbar/internal/flit"
)

// Mesh is a k×k (or rectangular w×h) 2D mesh. Nodes are numbered row-major:
// node = y*Width + x, with x growing East and y growing South. Edge nodes
// simply lack the corresponding links (no wraparound; the Tornado and
// Complement patterns are still well defined on node indices).
//
// Coordinates, neighbour indices and port existence are precomputed into
// flat per-node tables at construction: the routers consult them for every
// flit every cycle, and a table load beats the div/mod arithmetic by enough
// to show up on whole-network profiles.
type Mesh struct {
	Width, Height int

	// xs/ys are the per-node coordinates; nb is the node-major neighbour
	// table (4 entries per node, -1 where the port faces the edge); portMask
	// is the per-node bitmask of existing cardinal ports.
	xs, ys   []int16
	nb       []int32
	portMask []uint8
}

// NewMesh returns a mesh of the given dimensions. Width and height must be
// at least 2 (a 1-wide mesh has no X dimension to route in).
func NewMesh(width, height int) (*Mesh, error) {
	if width < 2 || height < 2 {
		return nil, fmt.Errorf("topology: mesh must be at least 2x2, got %dx%d", width, height)
	}
	m := &Mesh{Width: width, Height: height}
	n := width * height
	m.xs = make([]int16, n)
	m.ys = make([]int16, n)
	m.nb = make([]int32, n*flit.NumLinkPorts)
	m.portMask = make([]uint8, n)
	for i := 0; i < n; i++ {
		x, y := i%width, i/width
		m.xs[i], m.ys[i] = int16(x), int16(y)
		for p := flit.North; p <= flit.West; p++ {
			nx, ny := x, y
			switch p {
			case flit.North:
				ny--
			case flit.South:
				ny++
			case flit.East:
				nx++
			case flit.West:
				nx--
			}
			v := int32(-1)
			if nx >= 0 && nx < width && ny >= 0 && ny < height {
				v = int32(ny*width + nx)
				m.portMask[i] |= 1 << uint(p)
			}
			m.nb[i*flit.NumLinkPorts+int(p)] = v
		}
	}
	return m, nil
}

// MustMesh is NewMesh for static configurations; it panics on invalid sizes.
func MustMesh(width, height int) *Mesh {
	m, err := NewMesh(width, height)
	if err != nil {
		panic(err)
	}
	return m
}

// Nodes returns the number of routers in the mesh.
func (m *Mesh) Nodes() int { return m.Width * m.Height }

// XY returns the coordinates of node n.
func (m *Mesh) XY(n int) (x, y int) { return int(m.xs[n]), int(m.ys[n]) }

// Node returns the node index at (x, y).
func (m *Mesh) Node(x, y int) int { return y*m.Width + x }

// Contains reports whether (x, y) is inside the mesh.
func (m *Mesh) Contains(x, y int) bool {
	return x >= 0 && x < m.Width && y >= 0 && y < m.Height
}

// Neighbor returns the node reached by leaving node n through port p, or
// -1 if the port faces the mesh edge (or p is not a cardinal port).
func (m *Mesh) Neighbor(n int, p flit.Port) int {
	if !p.IsCardinal() {
		return -1
	}
	return int(m.nb[n*flit.NumLinkPorts+int(p)])
}

// HasPort reports whether node n has a link on cardinal port p.
func (m *Mesh) HasPort(n int, p flit.Port) bool {
	if !p.IsCardinal() {
		return false
	}
	return m.portMask[n]&(1<<uint(p)) != 0
}

// PortMask returns the bitmask of existing cardinal ports at node n (bit p
// set means port p leads to a neighbour). Routers on the cycle hot path use
// it to test all four links with one load.
func (m *Mesh) PortMask(n int) uint8 { return m.portMask[n] }

// LinkCount returns the number of cardinal links at node n (2 at corners, 3
// on edges, 4 inside).
func (m *Mesh) LinkCount(n int) int {
	pm := m.portMask[n]
	// 4-bit popcount.
	pm = pm&0b0101 + pm>>1&0b0101
	return int(pm&0b0011 + pm>>2&0b0011)
}

// Distance returns the minimal hop count between two nodes (Manhattan).
func (m *Mesh) Distance(a, b int) int {
	return abs(int(m.xs[a])-int(m.xs[b])) + abs(int(m.ys[a])-int(m.ys[b]))
}

// Link is a directed connection from one router's output port to the
// neighbouring router's input port.
type Link struct {
	From     int       // upstream node
	FromPort flit.Port // upstream output port
	To       int       // downstream node
	ToPort   flit.Port // downstream input port
}

// Links enumerates every directed link in the mesh in a deterministic order
// (by upstream node, then by port).
func (m *Mesh) Links() []Link {
	var links []Link
	for n := 0; n < m.Nodes(); n++ {
		for p := flit.North; p <= flit.West; p++ {
			if to := m.Neighbor(n, p); to != -1 {
				links = append(links, Link{From: n, FromPort: p, To: to, ToPort: p.Opposite()})
			}
		}
	}
	return links
}

// AverageDistance returns the mean minimal hop count over all ordered
// source/destination pairs with src != dst (the uniform-random expectation).
func (m *Mesh) AverageDistance() float64 {
	total, pairs := 0, 0
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b++ {
			if a == b {
				continue
			}
			total += m.Distance(a, b)
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// BisectionLinks returns the number of unidirectional links crossing the
// vertical bisection of the mesh (used to express capacity).
func (m *Mesh) BisectionLinks() int {
	// Links between column Width/2-1 and Width/2, both directions.
	return 2 * m.Height
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
