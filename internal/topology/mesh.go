// Package topology models the 2D mesh interconnect the paper evaluates on
// (8×8 by default): node coordinates, port-level neighbour relations, and the
// directed links the simulation engine instantiates latches for.
package topology

import (
	"fmt"

	"dxbar/internal/flit"
)

// Mesh is a k×k (or rectangular w×h) 2D mesh. Nodes are numbered row-major:
// node = y*Width + x, with x growing East and y growing South. Edge nodes
// simply lack the corresponding links (no wraparound; the Tornado and
// Complement patterns are still well defined on node indices).
type Mesh struct {
	Width, Height int
}

// NewMesh returns a mesh of the given dimensions. Width and height must be
// at least 2 (a 1-wide mesh has no X dimension to route in).
func NewMesh(width, height int) (*Mesh, error) {
	if width < 2 || height < 2 {
		return nil, fmt.Errorf("topology: mesh must be at least 2x2, got %dx%d", width, height)
	}
	return &Mesh{Width: width, Height: height}, nil
}

// MustMesh is NewMesh for static configurations; it panics on invalid sizes.
func MustMesh(width, height int) *Mesh {
	m, err := NewMesh(width, height)
	if err != nil {
		panic(err)
	}
	return m
}

// Nodes returns the number of routers in the mesh.
func (m *Mesh) Nodes() int { return m.Width * m.Height }

// XY returns the coordinates of node n.
func (m *Mesh) XY(n int) (x, y int) { return n % m.Width, n / m.Width }

// Node returns the node index at (x, y).
func (m *Mesh) Node(x, y int) int { return y*m.Width + x }

// Contains reports whether (x, y) is inside the mesh.
func (m *Mesh) Contains(x, y int) bool {
	return x >= 0 && x < m.Width && y >= 0 && y < m.Height
}

// Neighbor returns the node reached by leaving node n through port p, or
// -1 if the port faces the mesh edge (or p is not a cardinal port).
func (m *Mesh) Neighbor(n int, p flit.Port) int {
	x, y := m.XY(n)
	switch p {
	case flit.North:
		y--
	case flit.South:
		y++
	case flit.East:
		x++
	case flit.West:
		x--
	default:
		return -1
	}
	if !m.Contains(x, y) {
		return -1
	}
	return m.Node(x, y)
}

// HasPort reports whether node n has a link on cardinal port p.
func (m *Mesh) HasPort(n int, p flit.Port) bool { return m.Neighbor(n, p) != -1 }

// Distance returns the minimal hop count between two nodes (Manhattan).
func (m *Mesh) Distance(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

// Link is a directed connection from one router's output port to the
// neighbouring router's input port.
type Link struct {
	From     int       // upstream node
	FromPort flit.Port // upstream output port
	To       int       // downstream node
	ToPort   flit.Port // downstream input port
}

// Links enumerates every directed link in the mesh in a deterministic order
// (by upstream node, then by port).
func (m *Mesh) Links() []Link {
	var links []Link
	for n := 0; n < m.Nodes(); n++ {
		for p := flit.North; p <= flit.West; p++ {
			if to := m.Neighbor(n, p); to != -1 {
				links = append(links, Link{From: n, FromPort: p, To: to, ToPort: p.Opposite()})
			}
		}
	}
	return links
}

// AverageDistance returns the mean minimal hop count over all ordered
// source/destination pairs with src != dst (the uniform-random expectation).
func (m *Mesh) AverageDistance() float64 {
	total, pairs := 0, 0
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b++ {
			if a == b {
				continue
			}
			total += m.Distance(a, b)
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// BisectionLinks returns the number of unidirectional links crossing the
// vertical bisection of the mesh (used to express capacity).
func (m *Mesh) BisectionLinks() int {
	// Links between column Width/2-1 and Width/2, both directions.
	return 2 * m.Height
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
