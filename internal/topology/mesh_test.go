package topology

import (
	"testing"
	"testing/quick"

	"dxbar/internal/flit"
)

func TestNewMeshRejectsDegenerate(t *testing.T) {
	for _, dims := range [][2]int{{1, 8}, {8, 1}, {0, 0}, {-2, 4}} {
		if _, err := NewMesh(dims[0], dims[1]); err == nil {
			t.Errorf("NewMesh(%d,%d) should fail", dims[0], dims[1])
		}
	}
	if _, err := NewMesh(2, 2); err != nil {
		t.Errorf("NewMesh(2,2) failed: %v", err)
	}
}

func TestMustMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMesh(1,1) must panic")
		}
	}()
	MustMesh(1, 1)
}

func TestXYNodeRoundTrip(t *testing.T) {
	m := MustMesh(8, 8)
	for n := 0; n < m.Nodes(); n++ {
		x, y := m.XY(n)
		if m.Node(x, y) != n {
			t.Fatalf("round trip failed for node %d", n)
		}
		if !m.Contains(x, y) {
			t.Fatalf("node %d coordinates out of mesh", n)
		}
	}
}

func TestNeighborGeometry(t *testing.T) {
	m := MustMesh(8, 8)
	// Node 0 is the NW corner.
	if m.Neighbor(0, flit.North) != -1 || m.Neighbor(0, flit.West) != -1 {
		t.Error("corner node 0 must lack North/West links")
	}
	if m.Neighbor(0, flit.East) != 1 || m.Neighbor(0, flit.South) != 8 {
		t.Error("corner node 0 East/South neighbours wrong")
	}
	// Center node.
	n := m.Node(3, 3)
	if m.Neighbor(n, flit.North) != m.Node(3, 2) ||
		m.Neighbor(n, flit.South) != m.Node(3, 4) ||
		m.Neighbor(n, flit.East) != m.Node(4, 3) ||
		m.Neighbor(n, flit.West) != m.Node(2, 3) {
		t.Error("center neighbours wrong")
	}
	if m.Neighbor(n, flit.Local) != -1 {
		t.Error("Local port has no neighbour")
	}
}

func TestNeighborSymmetryProperty(t *testing.T) {
	m := MustMesh(8, 8)
	f := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw) % m.Nodes()
		p := flit.Port(pRaw % 4)
		to := m.Neighbor(n, p)
		if to == -1 {
			return true
		}
		// Leaving through p arrives at the opposite input; going back
		// through that port returns home.
		return m.Neighbor(to, p.Opposite()) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistance(t *testing.T) {
	m := MustMesh(8, 8)
	if d := m.Distance(0, m.Node(7, 7)); d != 14 {
		t.Errorf("corner-to-corner distance = %d, want 14", d)
	}
	if d := m.Distance(5, 5); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	if m.Distance(0, 1) != 1 || m.Distance(0, 8) != 1 {
		t.Error("adjacent distances wrong")
	}
}

func TestDistanceSymmetricTriangleProperty(t *testing.T) {
	m := MustMesh(8, 8)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw)%64, int(bRaw)%64, int(cRaw)%64
		if m.Distance(a, b) != m.Distance(b, a) {
			return false
		}
		return m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinksCountAndConsistency(t *testing.T) {
	m := MustMesh(8, 8)
	links := m.Links()
	// A w×h mesh has 2*(w*(h-1) + h*(w-1)) directed links.
	want := 2 * (8*7 + 8*7)
	if len(links) != want {
		t.Errorf("links = %d, want %d", len(links), want)
	}
	seen := map[Link]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatalf("duplicate link %+v", l)
		}
		seen[l] = true
		if m.Neighbor(l.From, l.FromPort) != l.To {
			t.Fatalf("link %+v inconsistent with Neighbor", l)
		}
		if l.ToPort != l.FromPort.Opposite() {
			t.Fatalf("link %+v has wrong arrival port", l)
		}
	}
}

func TestHasPort(t *testing.T) {
	m := MustMesh(4, 4)
	if m.HasPort(0, flit.North) {
		t.Error("node 0 has no North link")
	}
	if !m.HasPort(5, flit.North) {
		t.Error("interior node must have all links")
	}
}

func TestAverageDistance8x8(t *testing.T) {
	m := MustMesh(8, 8)
	got := m.AverageDistance()
	// For a k×k mesh, the average Manhattan distance over all ordered pairs
	// (excluding self) is 2 * k*(k*k-1)/3 / (k*k-1)... compute directly:
	// E[|dx|] over ordered pairs including equal coords is (k^2-1)/(3k) per
	// dimension; restricted to src!=dst it is slightly different, so just
	// sanity-bound it.
	if got < 5.0 || got > 5.6 {
		t.Errorf("average distance = %v, want ~5.33", got)
	}
}

func TestBisectionLinks(t *testing.T) {
	if got := MustMesh(8, 8).BisectionLinks(); got != 16 {
		t.Errorf("bisection links = %d, want 16", got)
	}
}
