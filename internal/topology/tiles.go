package topology

// Tile is one spatial partition of the mesh: a rectangle of nodes owned by
// one shard of the parallel cycle engine. Tiles cover the mesh exactly
// (every node belongs to one tile) and their Nodes lists are in ascending
// node order, which is the order the sharded engine steps them — and the
// order barrier-time replay walks them to stay bit-identical to the
// sequential engine.
type Tile struct {
	// Index is the tile's position in the partition: row-major over the tile
	// grid for Tiles2D, west to east for the column strips of Tiles.
	Index int
	// X0 and X1 bound the tile's column range [X0, X1).
	X0, X1 int
	// Y0 and Y1 bound the tile's row range [Y0, Y1). Column strips span the
	// full mesh height (Y0 = 0, Y1 = Height).
	Y0, Y1 int
	// Nodes lists the tile's node indices in ascending order.
	Nodes []int
}

// Contains reports whether node n (with coordinates from m) lies in the
// tile's rectangle.
func (t Tile) Contains(m *Mesh, n int) bool {
	x, y := m.XY(n)
	return x >= t.X0 && x < t.X1 && y >= t.Y0 && y < t.Y1
}

// SplitEven divides size into parts contiguous segments of near-equal length
// (the first size%parts segments get one extra element) and returns the
// parts+1 cut offsets: segment i spans [cuts[i], cuts[i+1]).
func SplitEven(size, parts int) []int {
	cuts := make([]int, parts+1)
	base, extra := size/parts, size%parts
	at := 0
	for i := 0; i < parts; i++ {
		cuts[i] = at
		at += base
		if i < extra {
			at++
		}
	}
	cuts[parts] = at
	return cuts
}

// Tiles partitions the mesh into n vertical column strips of near-equal
// width (the first width%n tiles get one extra column). n is clamped to
// [1, Width]: a tile must own at least one column, and more tiles than
// columns would leave some empty. Column strips cut only horizontal links,
// so their boundary is Height links per internal cut per direction — but on
// tall meshes a 2D grid (Tiles2D) cuts fewer links overall.
func (m *Mesh) Tiles(n int) []Tile {
	if n < 1 {
		n = 1
	}
	if n > m.Width {
		n = m.Width
	}
	tiles := make([]Tile, n)
	cuts := SplitEven(m.Width, n)
	for i := range tiles {
		t := Tile{Index: i, X0: cuts[i], X1: cuts[i+1], Y0: 0, Y1: m.Height}
		for node := 0; node < m.Nodes(); node++ {
			if t.Contains(m, node) {
				t.Nodes = append(t.Nodes, node)
			}
		}
		tiles[i] = t
	}
	return tiles
}

// Grid2D chooses the tile-grid factorization for n tiles on a width×height
// mesh: the gx×gy grid (gx vertical bands of columns, gy horizontal bands of
// rows) with gx*gy tiles that minimizes the number of cut links,
//
//	cost(gx, gy) = (gx-1)*height + (gy-1)*width
//
// (each of the gx-1 vertical cuts severs height horizontal link pairs, each
// of the gy-1 horizontal cuts severs width vertical link pairs). Only exact
// factorizations with gx <= width and gy <= height are feasible — every tile
// must own at least one column and one row; when no factorization of n fits
// (n = 13 on an 8×8 mesh), n is reduced until one does, so the effective
// tile count is the largest feasible m <= n. Ties prefer the wider grid
// (larger gx). n < 1 is clamped to 1.
func Grid2D(width, height, n int) (gx, gy int) {
	if n < 1 {
		n = 1
	}
	if n > width*height {
		n = width * height
	}
	for ; ; n-- {
		bestCost := -1
		for d := 1; d <= n; d++ {
			if n%d != 0 || d > width || n/d > height {
				continue
			}
			cost := (d-1)*height + (n/d-1)*width
			if bestCost < 0 || cost < bestCost || (cost == bestCost && d > gx) {
				bestCost, gx, gy = cost, d, n/d
			}
		}
		if bestCost >= 0 {
			return gx, gy
		}
	}
}

// Grid2D is the mesh-bound form of the package-level Grid2D.
func (m *Mesh) Grid2D(n int) (gx, gy int) { return Grid2D(m.Width, m.Height, n) }

// Tiles2D partitions the mesh into (up to) n rectangular tiles arranged in
// the boundary-minimizing Grid2D grid, with columns and rows split
// near-equally (remainders go to the westmost/northmost tiles). Tile index
// is row-major over the grid: tile (i, j) has Index j*gx + i. Like Tiles,
// the partition is exact and every Nodes list ascends.
func (m *Mesh) Tiles2D(n int) []Tile {
	gx, gy := m.Grid2D(n)
	xcuts := SplitEven(m.Width, gx)
	ycuts := SplitEven(m.Height, gy)
	tiles := make([]Tile, gx*gy)
	for j := 0; j < gy; j++ {
		for i := 0; i < gx; i++ {
			t := Tile{
				Index: j*gx + i,
				X0:    xcuts[i], X1: xcuts[i+1],
				Y0: ycuts[j], Y1: ycuts[j+1],
			}
			t.Nodes = make([]int, 0, (t.X1-t.X0)*(t.Y1-t.Y0))
			for y := t.Y0; y < t.Y1; y++ {
				for x := t.X0; x < t.X1; x++ {
					t.Nodes = append(t.Nodes, m.Node(x, y))
				}
			}
			tiles[j*gx+i] = t
		}
	}
	return tiles
}

// TileOf returns the index of the tile owning node n in the given partition
// (-1 if the partition does not cover it — impossible for a Tiles or
// Tiles2D result).
func (m *Mesh) TileOf(tiles []Tile, n int) int {
	for _, t := range tiles {
		if t.Contains(m, n) {
			return t.Index
		}
	}
	return -1
}

// BoundaryLinks enumerates the directed links that cross a tile boundary,
// in the same deterministic order as Links (by upstream node, then port).
// Column strips cut only horizontal (East/West) links; 2D tile grids also
// cut vertical (North/South) links along their horizontal band boundaries.
// These are the links whose flits change owning shard during the link
// phase; the sequential link phase is what makes that hand-off safe without
// per-link synchronization.
func (m *Mesh) BoundaryLinks(tiles []Tile) []Link {
	var cross []Link
	for _, l := range m.Links() {
		if m.TileOf(tiles, l.From) != m.TileOf(tiles, l.To) {
			cross = append(cross, l)
		}
	}
	return cross
}
