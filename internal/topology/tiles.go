package topology

// Tile is one spatial partition of the mesh: a contiguous strip of columns
// owned by one shard of the parallel cycle engine. Tiles cover the mesh
// exactly (every node belongs to one tile) and their Nodes lists are in
// ascending node order, which is the order the sharded engine steps them —
// and the order barrier-time replay walks them to stay bit-identical to the
// sequential engine.
type Tile struct {
	// Index is the tile's position in the partition, west to east.
	Index int
	// X0 and X1 bound the tile's column range [X0, X1).
	X0, X1 int
	// Nodes lists the tile's node indices in ascending order.
	Nodes []int
}

// Contains reports whether node n (with coordinates from m) lies in the
// tile's column range.
func (t Tile) Contains(m *Mesh, n int) bool {
	x, _ := m.XY(n)
	return x >= t.X0 && x < t.X1
}

// Tiles partitions the mesh into n vertical column strips of near-equal
// width (the first width%n tiles get one extra column). n is clamped to
// [1, Width]: a tile must own at least one column, and more tiles than
// columns would leave some empty. Column strips are the natural partition
// for a row-major mesh: each tile's boundary is a single column of
// East/West links, so the per-cycle cross-tile traffic the barrier must
// reconcile is minimal (Height links per internal boundary, per direction).
func (m *Mesh) Tiles(n int) []Tile {
	if n < 1 {
		n = 1
	}
	if n > m.Width {
		n = m.Width
	}
	tiles := make([]Tile, n)
	base, extra := m.Width/n, m.Width%n
	x := 0
	for i := range tiles {
		w := base
		if i < extra {
			w++
		}
		t := Tile{Index: i, X0: x, X1: x + w}
		for node := 0; node < m.Nodes(); node++ {
			if t.Contains(m, node) {
				t.Nodes = append(t.Nodes, node)
			}
		}
		tiles[i] = t
		x += w
	}
	return tiles
}

// TileOf returns the index of the tile owning node n in the given partition
// (-1 if the partition does not cover it — impossible for a Tiles result).
func (m *Mesh) TileOf(tiles []Tile, n int) int {
	x, _ := m.XY(n)
	for _, t := range tiles {
		if x >= t.X0 && x < t.X1 {
			return t.Index
		}
	}
	return -1
}

// BoundaryLinks enumerates the directed links that cross a tile boundary,
// in the same deterministic order as Links (by upstream node, then port).
// These are the links whose flits change owning shard during the link
// phase; the sequential link phase is what makes that hand-off safe without
// per-link synchronization.
func (m *Mesh) BoundaryLinks(tiles []Tile) []Link {
	var cross []Link
	for _, l := range m.Links() {
		if m.TileOf(tiles, l.From) != m.TileOf(tiles, l.To) {
			cross = append(cross, l)
		}
	}
	return cross
}
