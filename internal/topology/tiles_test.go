package topology

import "testing"

// TestTilesPartition checks the partition invariants for a range of tile
// counts: exact cover, ascending node order, near-equal column widths with
// the remainder spread over the westmost tiles, and clamping.
func TestTilesPartition(t *testing.T) {
	m := MustMesh(8, 4)
	for n := -1; n <= 10; n++ {
		tiles := m.Tiles(n)
		wantTiles := n
		if wantTiles < 1 {
			wantTiles = 1
		}
		if wantTiles > m.Width {
			wantTiles = m.Width
		}
		if len(tiles) != wantTiles {
			t.Fatalf("Tiles(%d): %d tiles, want %d", n, len(tiles), wantTiles)
		}
		seen := make([]bool, m.Nodes())
		x := 0
		for i, tile := range tiles {
			if tile.Index != i {
				t.Errorf("Tiles(%d): tile %d has Index %d", n, i, tile.Index)
			}
			if tile.X0 != x {
				t.Errorf("Tiles(%d): tile %d starts at column %d, want %d", n, i, tile.X0, x)
			}
			w := tile.X1 - tile.X0
			if base := m.Width / wantTiles; w != base && w != base+1 {
				t.Errorf("Tiles(%d): tile %d spans %d columns, want %d or %d", n, i, w, base, base+1)
			}
			x = tile.X1
			prev := -1
			for _, node := range tile.Nodes {
				if node <= prev {
					t.Fatalf("Tiles(%d): tile %d nodes not ascending: %v", n, i, tile.Nodes)
				}
				prev = node
				if seen[node] {
					t.Fatalf("Tiles(%d): node %d in two tiles", n, node)
				}
				seen[node] = true
				if got := m.TileOf(tiles, node); got != i {
					t.Errorf("Tiles(%d): TileOf(%d) = %d, want %d", n, node, got, i)
				}
			}
		}
		if x != m.Width {
			t.Errorf("Tiles(%d): tiles end at column %d, want %d", n, x, m.Width)
		}
		for node, ok := range seen {
			if !ok {
				t.Errorf("Tiles(%d): node %d unowned", n, node)
			}
		}
	}
}

// TestTilesUneven pins the remainder-spreading rule: 8 columns over 3 tiles
// is 3+3+2, west to east.
func TestTilesUneven(t *testing.T) {
	m := MustMesh(8, 2)
	tiles := m.Tiles(3)
	widths := []int{tiles[0].X1 - tiles[0].X0, tiles[1].X1 - tiles[1].X0, tiles[2].X1 - tiles[2].X0}
	if widths[0] != 3 || widths[1] != 3 || widths[2] != 2 {
		t.Errorf("widths = %v, want [3 3 2]", widths)
	}
}

// TestBoundaryLinks checks that column-strip boundaries consist of exactly
// the East/West link pairs of the cut columns: an 8-wide mesh split into 4
// strips has 3 internal boundaries, each crossed by Height links per
// direction.
func TestBoundaryLinks(t *testing.T) {
	m := MustMesh(8, 4)
	tiles := m.Tiles(4)
	cross := m.BoundaryLinks(tiles)
	want := 3 * m.Height * 2
	if len(cross) != want {
		t.Fatalf("%d boundary links, want %d", len(cross), want)
	}
	for _, l := range cross {
		fx, fy := m.XY(l.From)
		tx, ty := m.XY(l.To)
		if fy != ty {
			t.Errorf("boundary link %d->%d is vertical; column strips only cut horizontal links", l.From, l.To)
		}
		if d := fx - tx; d != 1 && d != -1 {
			t.Errorf("boundary link %d->%d spans %d columns", l.From, l.To, d)
		}
	}
	// One strip = no boundaries.
	if got := m.BoundaryLinks(m.Tiles(1)); len(got) != 0 {
		t.Errorf("single tile has %d boundary links, want 0", len(got))
	}
}
