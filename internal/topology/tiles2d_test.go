package topology

import "testing"

// TestTiles2DPartition mirrors TestTilesPartition for the 2D grid: exact
// cover, ascending node order, TileOf agreement, and rectangle bounds that
// tile the mesh with near-equal column/row splits.
func TestTiles2DPartition(t *testing.T) {
	for _, dims := range [][2]int{{8, 4}, {8, 8}, {5, 7}, {16, 2}} {
		m := MustMesh(dims[0], dims[1])
		for n := -1; n <= 12; n++ {
			tiles := m.Tiles2D(n)
			gx, gy := m.Grid2D(n)
			if len(tiles) != gx*gy {
				t.Fatalf("%dx%d Tiles2D(%d): %d tiles, want gx*gy = %d", dims[0], dims[1], n, len(tiles), gx*gy)
			}
			want := n
			if want < 1 {
				want = 1
			}
			if len(tiles) > want {
				t.Fatalf("%dx%d Tiles2D(%d): %d tiles exceeds request", dims[0], dims[1], n, len(tiles))
			}
			seen := make([]bool, m.Nodes())
			for i, tile := range tiles {
				if tile.Index != i {
					t.Errorf("Tiles2D(%d): tile %d has Index %d", n, i, tile.Index)
				}
				if tile.X0 >= tile.X1 || tile.Y0 >= tile.Y1 {
					t.Errorf("Tiles2D(%d): tile %d has empty rectangle [%d,%d)x[%d,%d)",
						n, i, tile.X0, tile.X1, tile.Y0, tile.Y1)
				}
				wantLen := (tile.X1 - tile.X0) * (tile.Y1 - tile.Y0)
				if len(tile.Nodes) != wantLen {
					t.Errorf("Tiles2D(%d): tile %d has %d nodes, rectangle holds %d", n, i, len(tile.Nodes), wantLen)
				}
				prev := -1
				for _, node := range tile.Nodes {
					if node <= prev {
						t.Fatalf("Tiles2D(%d): tile %d nodes not ascending: %v", n, i, tile.Nodes)
					}
					prev = node
					if seen[node] {
						t.Fatalf("Tiles2D(%d): node %d in two tiles", n, node)
					}
					seen[node] = true
					if !tile.Contains(m, node) {
						t.Errorf("Tiles2D(%d): tile %d lists node %d outside its rectangle", n, i, node)
					}
					if got := m.TileOf(tiles, node); got != i {
						t.Errorf("Tiles2D(%d): TileOf(%d) = %d, want %d", n, node, got, i)
					}
				}
			}
			for node, ok := range seen {
				if !ok {
					t.Errorf("Tiles2D(%d): node %d unowned", n, node)
				}
			}
			// Tile sizes must stay near-equal: SplitEven guarantees column and
			// row spans within one of each other.
			for _, tile := range tiles {
				if w := tile.X1 - tile.X0; w < m.Width/gx || w > m.Width/gx+1 {
					t.Errorf("Tiles2D(%d): tile %d spans %d columns, want %d or %d", n, tile.Index, w, m.Width/gx, m.Width/gx+1)
				}
				if h := tile.Y1 - tile.Y0; h < m.Height/gy || h > m.Height/gy+1 {
					t.Errorf("Tiles2D(%d): tile %d spans %d rows, want %d or %d", n, tile.Index, h, m.Height/gy, m.Height/gy+1)
				}
			}
		}
	}
}

// TestGrid2DFeasibility pins the factorization rules: exact grids only, both
// dimensions clamped to the mesh, infeasible counts reduced to the largest
// feasible one.
func TestGrid2DFeasibility(t *testing.T) {
	cases := []struct {
		w, h, n, gx, gy int
	}{
		{8, 8, 1, 1, 1},
		{8, 8, 4, 2, 2},       // square grid beats 4 or 1x4 strips
		{8, 8, 16, 4, 4},      // square again
		{8, 8, 8, 4, 2},       // cost 3*8+1*8 = 32 beats 8x1 (56) and 2x4 (32, tie -> wider)
		{8, 8, 13, 4, 3},      // 13 is infeasible; falls back to 12 = 4x3
		{8, 2, 4, 4, 1},       // only 2 rows: 2x2 (cost 2+8=10) loses to 4x1 (3*2=6)
		{2, 8, 4, 1, 4},       // transposed
		{4, 4, 32, 4, 4},      // clamped to the 16-node mesh
		{8, 8, 1 << 20, 8, 8}, // clamped to 64 single-node tiles
	}
	for _, c := range cases {
		gx, gy := Grid2D(c.w, c.h, c.n)
		if gx != c.gx || gy != c.gy {
			t.Errorf("Grid2D(%d, %d, %d) = %dx%d, want %dx%d", c.w, c.h, c.n, gx, gy, c.gx, c.gy)
		}
	}
}

// TestTiles2DBoundaryLinks checks BoundaryLinks for grids with vertical
// cuts: a 2-band split of an 8×4 mesh cuts only North/South links (Width
// links per direction), and a 2×2 grid cuts both orientations.
func TestTiles2DBoundaryLinks(t *testing.T) {
	m := MustMesh(8, 4)

	// Force a pure horizontal cut: 1x2 grid (2 tiles on an 8-wide, 4-tall
	// mesh resolves to 1 vertical band x 2 horizontal bands: cost 1*8=8
	// beats 2x1's 1*4=4... so build the bands explicitly via Tiles2D on a
	// transposed-need mesh instead).
	tall := MustMesh(4, 8)
	tiles := tall.Tiles2D(2) // 1x2: a horizontal cut of 4 vertical link pairs
	if gx, gy := tall.Grid2D(2); gx != 1 || gy != 2 {
		t.Fatalf("Grid2D(4, 8, 2) = %dx%d, want 1x2", gx, gy)
	}
	cross := tall.BoundaryLinks(tiles)
	if want := 2 * tall.Width; len(cross) != want {
		t.Fatalf("1x2 grid: %d boundary links, want %d", len(cross), want)
	}
	for _, l := range cross {
		fx, fy := tall.XY(l.From)
		tx, ty := tall.XY(l.To)
		if fx != tx {
			t.Errorf("boundary link %d->%d is horizontal; a horizontal band cut severs only vertical links", l.From, l.To)
		}
		if d := fy - ty; d != 1 && d != -1 {
			t.Errorf("boundary link %d->%d spans %d rows", l.From, l.To, d)
		}
	}

	// 2x2 grid on 6x4 (on 8x4 four column strips tie with 2x2 at 12 cut
	// pairs and the tie-break keeps the wider grid): one vertical cut (4
	// rows x 2 dirs) + one horizontal cut (6 columns x 2 dirs).
	m = MustMesh(6, 4)
	tiles = m.Tiles2D(4)
	if gx, gy := m.Grid2D(4); gx != 2 || gy != 2 {
		t.Fatalf("Grid2D(6, 4, 4) = %dx%d, want 2x2", gx, gy)
	}
	if got, want := len(m.BoundaryLinks(tiles)), 2*m.Height+2*m.Width; got != want {
		t.Errorf("2x2 grid: %d boundary links, want %d", got, want)
	}
}

// TestTiles2DMinimality is the tentpole's raison d'etre: on a square mesh
// the 2D grid must beat column strips. 8×8 over 4 tiles: a 2×2 grid cuts 32
// directed links, 4 column strips cut 48.
func TestTiles2DMinimality(t *testing.T) {
	m := MustMesh(8, 8)
	grid := len(m.BoundaryLinks(m.Tiles2D(4)))
	strips := len(m.BoundaryLinks(m.Tiles(4)))
	if grid != 32 || strips != 48 {
		t.Fatalf("boundary links: grid %d (want 32), strips %d (want 48)", grid, strips)
	}
	if grid >= strips {
		t.Errorf("2x2 grid (%d cut links) must beat 4 column strips (%d)", grid, strips)
	}

	// And the chosen factorization must be optimal over all feasible grids,
	// measured by the real BoundaryLinks count, for a spread of meshes and
	// tile counts.
	for _, dims := range [][2]int{{8, 8}, {8, 4}, {6, 9}} {
		mm := MustMesh(dims[0], dims[1])
		for n := 2; n <= 8; n++ {
			got := len(mm.BoundaryLinks(mm.Tiles2D(n)))
			gx, gy := mm.Grid2D(n)
			for d := 1; d <= gx*gy; d++ {
				if (gx*gy)%d != 0 || d > mm.Width || (gx*gy)/d > mm.Height {
					continue
				}
				alt := len(mm.BoundaryLinks(tilesForGrid(mm, d, (gx*gy)/d)))
				if alt < got {
					t.Errorf("%dx%d Tiles2D(%d) picked %dx%d with %d cut links; %dx%d cuts only %d",
						dims[0], dims[1], n, gx, gy, got, d, (gx*gy)/d, alt)
				}
			}
		}
	}
}

// tilesForGrid builds the Tiles2D partition for an explicit grid shape (test
// helper for comparing factorizations).
func tilesForGrid(m *Mesh, gx, gy int) []Tile {
	xcuts := SplitEven(m.Width, gx)
	ycuts := SplitEven(m.Height, gy)
	tiles := make([]Tile, 0, gx*gy)
	for j := 0; j < gy; j++ {
		for i := 0; i < gx; i++ {
			t := Tile{Index: j*gx + i, X0: xcuts[i], X1: xcuts[i+1], Y0: ycuts[j], Y1: ycuts[j+1]}
			for y := t.Y0; y < t.Y1; y++ {
				for x := t.X0; x < t.X1; x++ {
					t.Nodes = append(t.Nodes, m.Node(x, y))
				}
			}
			tiles = append(tiles, t)
		}
	}
	return tiles
}
