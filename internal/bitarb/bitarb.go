// Package bitarb is the bit-parallel arbitration core: request vectors are
// uint64 words, a round-robin grant is one find-first-set on a doubly
// shifted (rotated-priority) mask, and a whole separable switch allocation
// is a handful of word operations over contiguous state — no per-requester
// branching, no pointer chasing.
//
// The scheme is the software rendition of the `nvector`/round-robin-arbiter
// request vectors of flat-crossbar hardware allocators: every output port
// owns a request word whose bit i means "input i wants me"; the rotating
// priority pointer splits the word into a high part (requesters at or past
// the pointer) and a low part (wrapped requesters), and the grant is the
// trailing-zero count of whichever part is non-empty. That is exactly the
// cyclic scan the branchy reference arbiters in internal/arbiter perform,
// so grants are bit-identical — the reference implementations remain the
// oracle the equivalence tests run against.
package bitarb

import (
	"fmt"
	"math/bits"
)

// LowMask returns the mask with the n low bits set (n in [0, 64]).
func LowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// GrantRot picks the lowest set bit of mask at or above the rotation
// pointer ptr, wrapping to the lowest set bit overall when the high part is
// empty — the rotated-priority round-robin grant. mask must already be
// confined to the arbiter width; it returns -1 when mask is 0.
func GrantRot(mask uint64, ptr int) int {
	if mask == 0 {
		return -1
	}
	// Doubly-shifted priority split: bits >= ptr first, wrapped bits after.
	if hi := mask >> uint(ptr) << uint(ptr); hi != 0 {
		return bits.TrailingZeros64(hi)
	}
	return bits.TrailingZeros64(mask)
}

// RoundRobin is an n-requester rotating-priority arbiter with O(1) grants.
// It is grant-for-grant identical to the branchy arbiter.RoundRobin: the
// requester at the pointer has highest priority, and after a grant the
// pointer moves one past the winner.
type RoundRobin struct {
	n     int
	ptr   int
	width uint64 // LowMask(n)
	// grants/wraps are popcount-style fairness accounting: total grants
	// issued and how many were wrapped (won from below the pointer).
	grants, wraps uint64
}

// NewRoundRobin returns an arbiter over n requesters. n must be in (0, 64].
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("bitarb: invalid round-robin width %d", n))
	}
	return &RoundRobin{n: n, width: LowMask(n)}
}

// Grant picks the winning requester from the request bitmask and advances
// the rotation pointer one past the winner. It returns -1 if no bit is set.
func (r *RoundRobin) Grant(mask uint64) int {
	i := GrantRot(mask&r.width, r.ptr)
	if i >= 0 {
		r.grants++
		if i < r.ptr {
			r.wraps++
		}
		r.ptr = i + 1
		if r.ptr == r.n {
			r.ptr = 0
		}
	}
	return i
}

// Peek is Grant without the pointer update.
func (r *RoundRobin) Peek(mask uint64) int {
	return GrantRot(mask&r.width, r.ptr)
}

// Commit moves the pointer past the given winner.
func (r *RoundRobin) Commit(winner int) {
	if winner >= 0 && winner < r.n {
		r.grants++
		if winner < r.ptr {
			r.wraps++
		}
		r.ptr = winner + 1
		if r.ptr == r.n {
			r.ptr = 0
		}
	}
}

// Grants returns the number of grants issued (fairness accounting).
func (r *RoundRobin) Grants() uint64 { return r.grants }

// Wraps returns how many grants wrapped past the rotation pointer — a
// starvation canary: with persistent all-contending load, wraps/grants
// converges to (n-1)/n for a fair arbiter.
func (r *RoundRobin) Wraps() uint64 { return r.wraps }

// ReqVec is a request vector over an arbitrary number of requesters, packed
// into uint64 words. It is the multi-word generalization of the single-word
// masks the 5-port routers use; wide fabrics (64+ requesters) index it by
// word.
type ReqVec struct {
	words []uint64
	n     int
}

// NewReqVec returns a zeroed vector over n requesters.
func NewReqVec(n int) *ReqVec {
	if n <= 0 {
		panic(fmt.Sprintf("bitarb: invalid request vector width %d", n))
	}
	return &ReqVec{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the requester count.
func (v *ReqVec) Len() int { return v.n }

// Set marks requester i as requesting.
func (v *ReqVec) Set(i int) { v.words[i>>6] |= 1 << uint(i&63) }

// Clear unmarks requester i.
func (v *ReqVec) Clear(i int) { v.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether requester i is requesting.
func (v *ReqVec) Test(i int) bool { return v.words[i>>6]&(1<<uint(i&63)) != 0 }

// Reset clears every request.
func (v *ReqVec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Any reports whether any requester is set.
func (v *ReqVec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set requesters (population count).
func (v *ReqVec) Count() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Words exposes the packed words (word w covers requesters [64w, 64w+63]).
func (v *ReqVec) Words() []uint64 { return v.words }

// GrantRot picks the lowest set requester at or above ptr, wrapping to the
// lowest set requester overall — the multi-word rotated-priority grant.
// It returns -1 when the vector is empty.
func (v *ReqVec) GrantRot(ptr int) int {
	nw := len(v.words)
	pw, pb := ptr>>6, uint(ptr&63)
	// High part: the pointer word masked from the pointer bit up, then the
	// words above it.
	if hi := v.words[pw] >> pb << pb; hi != 0 {
		return pw<<6 + bits.TrailingZeros64(hi)
	}
	for w := pw + 1; w < nw; w++ {
		if v.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(v.words[w])
		}
	}
	// Wrapped part: words below the pointer, then the pointer word's low bits.
	for w := 0; w < pw; w++ {
		if v.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(v.words[w])
		}
	}
	if lo := v.words[pw] & (uint64(1)<<pb - 1); lo != 0 {
		return pw<<6 + bits.TrailingZeros64(lo)
	}
	return -1
}

// Separable is the bit-parallel output-first separable switch allocator:
// stage 1 grants each output to one requesting input (per-output rotated-
// priority round robin over the transposed request matrix), stage 2 grants
// each input one of the outputs it won (per-input round robin), and only
// the pointers of matched pairs advance. It is grant-for-grant identical to
// the branchy arbiter.Separable, which the equivalence tests treat as the
// oracle.
//
// All state is contiguous: two pointer slices and two scratch word slices,
// no per-arbiter objects.
type Separable struct {
	numIn, numOut int
	inWidth       uint64
	outPtr        []int32 // per output, rotation pointer over inputs
	inPtr         []int32 // per input, rotation pointer over outputs
	outReq        []uint64
	inWon         []uint64
	grant         []int
	// grants/wraps: fairness accounting over stage-2 matches.
	grants uint64
}

// NewSeparable returns an allocator of the given radix (both ≤ 64).
func NewSeparable(numIn, numOut int) *Separable {
	if numIn <= 0 || numIn > 64 || numOut <= 0 || numOut > 64 {
		panic(fmt.Sprintf("bitarb: invalid separable radix %dx%d", numIn, numOut))
	}
	return &Separable{
		numIn:   numIn,
		numOut:  numOut,
		inWidth: LowMask(numIn),
		outPtr:  make([]int32, numOut),
		inPtr:   make([]int32, numIn),
		outReq:  make([]uint64, numOut),
		inWon:   make([]uint64, numIn),
		grant:   make([]int, numIn),
	}
}

// NumIn returns the input radix.
func (s *Separable) NumIn() int { return s.numIn }

// NumOut returns the output radix.
func (s *Separable) NumOut() int { return s.numOut }

// Grants returns the number of matches made (fairness accounting).
func (s *Separable) Grants() uint64 { return s.grants }

// Allocate computes a conflict-free matching for the request matrix req,
// where req[i] is input i's requested-output bitmask. It returns grant[i] =
// granted output for input i, or -1. The returned slice is the allocator's
// scratch: valid until the next Allocate call.
func (s *Separable) Allocate(req []uint64) []int {
	if len(req) != s.numIn {
		panic("bitarb: request matrix has wrong input count")
	}
	// Transpose the request matrix into per-output request words, touching
	// only the set bits.
	outReq := s.outReq
	for o := range outReq {
		outReq[o] = 0
	}
	inAny := uint64(0)
	for i, m := range req {
		for ; m != 0; m &= m - 1 {
			outReq[bits.TrailingZeros64(m)] |= 1 << uint(i)
		}
		if req[i] != 0 {
			inAny |= 1 << uint(i)
		}
	}
	// Stage 1: each output picks one input (peek only).
	inWon := s.inWon
	for m := inAny; m != 0; m &= m - 1 {
		inWon[bits.TrailingZeros64(m)] = 0
	}
	for o := 0; o < s.numOut; o++ {
		r := outReq[o]
		if r == 0 {
			continue
		}
		if w := GrantRot(r, int(s.outPtr[o])); w >= 0 {
			inWon[w] |= 1 << uint(o)
		}
	}
	// Stage 2: each input picks one of the outputs granted to it, and the
	// matched pair's pointers advance.
	grant := s.grant
	for i := range grant {
		grant[i] = -1
	}
	for m := inAny; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		o := GrantRot(inWon[i], int(s.inPtr[i]))
		if o < 0 {
			continue
		}
		grant[i] = o
		s.grants++
		s.inPtr[i] = int32(o + 1)
		if int(s.inPtr[i]) == s.numOut {
			s.inPtr[i] = 0
		}
		s.outPtr[o] = int32(i + 1)
		if int(s.outPtr[o]) == s.numIn {
			s.outPtr[o] = 0
		}
	}
	return grant
}

// Wavefront computes a maximal matching for the request matrix req (req[i]
// = input i's requested-output bitmask) by sweeping priority diagonals
// starting at diagonal pri: on sweep step k, input i may claim output
// (pri+k+i) mod numOut if both lines are free. It fills grant[i] with the
// output matched to input i (-1 unmatched) and returns the match count.
//
// Wavefront allocation trades the separable allocator's two-stage
// round-robin fairness for a denser matching (it never leaves an
// augmenting pair of free lines on a requested crosspoint). The engine's
// designs keep the paper's separable allocators; Wavefront is provided for
// allocator studies and is exercised by the micro-benchmarks.
func Wavefront(req []uint64, numOut, pri int, grant []int) int {
	numIn := len(req)
	if len(grant) != numIn {
		panic("bitarb: grant slice has wrong input count")
	}
	for i := range grant {
		grant[i] = -1
	}
	freeIn := LowMask(numIn)
	freeOut := LowMask(numOut)
	matched := 0
	steps := numOut
	if numIn > numOut {
		steps = numIn
	}
	for k := 0; k < steps && freeIn != 0 && freeOut != 0; k++ {
		for m := freeIn; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			o := (pri + k + i) % numOut
			bit := uint64(1) << uint(o)
			if freeOut&bit != 0 && req[i]&bit != 0 {
				grant[i] = o
				matched++
				freeIn &^= 1 << uint(i)
				freeOut &^= bit
			}
		}
	}
	return matched
}
