package bitarb

import (
	"fmt"
	"math/rand"
	"testing"

	"dxbar/internal/arbiter"
)

// Grant-latency micro-benchmarks: the O(1) doubly-shifted-mask arbiter
// against the branchy cyclic-scan reference, at router radix (5), small
// switch radix (8), concentrated radix (16) and full-word radix (64).
// `make bench-smoke` runs these alongside the whole-network benchmarks.

var benchWidths = []int{5, 8, 16, 64}

func benchMasks(n int, count int) []uint64 {
	rng := rand.New(rand.NewSource(int64(n)))
	masks := make([]uint64, count)
	for i := range masks {
		masks[i] = rng.Uint64() & LowMask(n)
	}
	return masks
}

func BenchmarkRoundRobinBitarb(b *testing.B) {
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := NewRoundRobin(n)
			masks := benchMasks(n, 1024)
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += r.Grant(masks[i&1023])
			}
			_ = sink
		})
	}
}

func BenchmarkRoundRobinBranchy(b *testing.B) {
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := arbiter.NewRoundRobin(n)
			masks := benchMasks(n, 1024)
			b.ResetTimer()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += r.Grant(masks[i&1023])
			}
			_ = sink
		})
	}
}

func benchReqMatrices(n, count int) [][]uint64 {
	rng := rand.New(rand.NewSource(int64(n) * 31))
	ms := make([][]uint64, count)
	for i := range ms {
		m := make([]uint64, n)
		for j := range m {
			m[j] = rng.Uint64() & LowMask(n)
		}
		ms[i] = m
	}
	return ms
}

func BenchmarkSeparableBitarb(b *testing.B) {
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSeparable(n, n)
			reqs := benchReqMatrices(n, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Allocate(reqs[i&255])
			}
		})
	}
}

func BenchmarkSeparableBranchy(b *testing.B) {
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := newRefSeparable(n, n)
			reqs := benchReqMatrices(n, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.allocate(reqs[i&255])
			}
		})
	}
}

func BenchmarkWavefront(b *testing.B) {
	for _, n := range benchWidths {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			reqs := benchReqMatrices(n, 256)
			grant := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Wavefront(reqs[i&255], n, i%n, grant)
			}
		})
	}
}
