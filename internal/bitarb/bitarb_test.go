package bitarb

import (
	"math/rand"
	"testing"

	"dxbar/internal/arbiter"
)

// TestGrantRotMatchesCyclicScan checks the doubly-shifted-mask grant against
// a naive cyclic scan for every width, pointer and a spread of masks.
func TestGrantRotMatchesCyclicScan(t *testing.T) {
	scan := func(mask uint64, ptr, n int) int {
		for off := 0; off < n; off++ {
			i := (ptr + off) % n
			if mask&(1<<uint(i)) != 0 {
				return i
			}
		}
		return -1
	}
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 64; n++ {
		for ptr := 0; ptr < n; ptr++ {
			masks := []uint64{0, 1, LowMask(n), 1 << uint(n-1), 1 << uint(ptr)}
			for k := 0; k < 16; k++ {
				masks = append(masks, rng.Uint64()&LowMask(n))
			}
			for _, m := range masks {
				if got, want := GrantRot(m, ptr), scan(m, ptr, n); got != want {
					t.Fatalf("GrantRot(%#x, ptr=%d, n=%d) = %d, want %d", m, ptr, n, got, want)
				}
			}
		}
	}
}

// TestRoundRobinMatchesReference drives the O(1) arbiter and the branchy
// reference in lockstep over random request streams at several widths.
func TestRoundRobinMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16, 33, 64} {
		fast := NewRoundRobin(n)
		ref := arbiter.NewRoundRobin(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for step := 0; step < 4096; step++ {
			mask := rng.Uint64() & LowMask(n)
			if step%7 == 0 {
				mask = 0 // empty request vector
			}
			g, r := fast.Grant(mask), ref.Grant(mask)
			if g != r {
				t.Fatalf("n=%d step=%d mask=%#x: fast=%d ref=%d", n, step, mask, g, r)
			}
			// Peek must agree with the reference's Peek too.
			pm := rng.Uint64() & LowMask(n)
			if fp, rp := fast.Peek(pm), ref.Peek(pm); fp != rp {
				t.Fatalf("n=%d step=%d peek mask=%#x: fast=%d ref=%d", n, step, pm, fp, rp)
			}
		}
	}
}

// TestRoundRobinSingleRequester: with one bit set the winner is that bit
// regardless of pointer position, and the pointer lands one past it.
func TestRoundRobinSingleRequester(t *testing.T) {
	r := NewRoundRobin(8)
	for i := 0; i < 8; i++ {
		if g := r.Grant(1 << uint(i)); g != i {
			t.Fatalf("single requester %d granted %d", i, g)
		}
	}
	if r.Grants() != 8 {
		t.Fatalf("grants = %d, want 8", r.Grants())
	}
}

// TestRoundRobinEmpty: an empty request vector grants nothing and leaves all
// state untouched.
func TestRoundRobinEmpty(t *testing.T) {
	r := NewRoundRobin(5)
	r.Grant(0b00100) // ptr now 3
	for i := 0; i < 10; i++ {
		if g := r.Grant(0); g != -1 {
			t.Fatalf("empty mask granted %d", g)
		}
	}
	if g := r.Grant(0b11111); g != 3 {
		t.Fatalf("pointer moved on empty grants: next winner %d, want 3", g)
	}
	if r.Grants() != 2 {
		t.Fatalf("grants = %d, want 2", r.Grants())
	}
}

// TestRoundRobinAllContendFullPeriod: with every requester persistently
// contending, one full period visits each requester exactly once, in rotating
// order, for any width — the rotation-fairness guarantee.
func TestRoundRobinAllContendFullPeriod(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 64} {
		r := NewRoundRobin(n)
		all := LowMask(n)
		for period := 0; period < 3; period++ {
			seen := make([]bool, n)
			for k := 0; k < n; k++ {
				g := r.Grant(all)
				if g != k {
					t.Fatalf("n=%d period=%d grant %d = %d, want strict rotation", n, period, k, g)
				}
				if seen[g] {
					t.Fatalf("n=%d requester %d granted twice in one period", n, g)
				}
				seen[g] = true
			}
		}
		// Fairness accounting: in strict rotation the winner always sits at
		// the pointer, so no grant ever wraps.
		if r.Wraps() != 0 {
			t.Fatalf("n=%d wraps = %d, want 0", n, r.Wraps())
		}
		if r.Grants() != uint64(3*n) {
			t.Fatalf("n=%d grants = %d, want %d", n, r.Grants(), 3*n)
		}
	}
}

// TestReqVecGrantRotMatchesSingleWord compares the multi-word grant against
// the single-word one on ≤64-requester vectors, then sanity-checks wide
// vectors against a naive scan.
func TestReqVecGrantRotMatchesSingleWord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 63, 64} {
		v := NewReqVec(n)
		for step := 0; step < 2048; step++ {
			mask := rng.Uint64() & LowMask(n)
			v.Reset()
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					v.Set(i)
				}
			}
			ptr := rng.Intn(n)
			if got, want := v.GrantRot(ptr), GrantRot(mask, ptr); got != want {
				t.Fatalf("n=%d mask=%#x ptr=%d: vec=%d word=%d", n, mask, ptr, got, want)
			}
		}
	}
	// Wide vectors: naive scan oracle.
	for _, n := range []int{65, 130, 200} {
		v := NewReqVec(n)
		for step := 0; step < 512; step++ {
			v.Reset()
			cnt := rng.Intn(8)
			for k := 0; k < cnt; k++ {
				v.Set(rng.Intn(n))
			}
			ptr := rng.Intn(n)
			want := -1
			for off := 0; off < n; off++ {
				if i := (ptr + off) % n; v.Test(i) {
					want = i
					break
				}
			}
			if got := v.GrantRot(ptr); got != want {
				t.Fatalf("n=%d ptr=%d: vec=%d scan=%d", n, ptr, got, want)
			}
		}
	}
}

// TestReqVecOps covers Set/Clear/Test/Any/Count across word boundaries.
func TestReqVecOps(t *testing.T) {
	v := NewReqVec(130)
	if v.Any() || v.Count() != 0 {
		t.Fatal("fresh vector not empty")
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Count() != 6 || !v.Any() {
		t.Fatalf("count = %d, want 6", v.Count())
	}
	v.Clear(64)
	if v.Test(64) || v.Count() != 5 {
		t.Fatal("clear failed")
	}
	v.Reset()
	if v.Any() {
		t.Fatal("reset failed")
	}
}

// refSeparable adapts a mask request matrix to the branchy reference
// allocator's [][]bool interface.
type refSeparable struct {
	s   *arbiter.Separable
	req [][]bool
}

func newRefSeparable(numIn, numOut int) *refSeparable {
	r := &refSeparable{s: arbiter.NewSeparable(numIn, numOut), req: make([][]bool, numIn)}
	for i := range r.req {
		r.req[i] = make([]bool, numOut)
	}
	return r
}

func (r *refSeparable) allocate(req []uint64) []int {
	for i := range r.req {
		for o := range r.req[i] {
			r.req[i][o] = req[i]&(1<<uint(o)) != 0
		}
	}
	return r.s.Allocate(r.req)
}

// TestSeparableMatchesReference drives the bit-parallel allocator and the
// branchy reference in lockstep over random request matrices: grants must be
// identical every round (which also pins the internal pointer states
// together, since pointers advance only on grants).
func TestSeparableMatchesReference(t *testing.T) {
	cases := []struct{ in, out int }{{5, 5}, {4, 5}, {8, 8}, {16, 16}, {64, 64}}
	for _, c := range cases {
		fast := NewSeparable(c.in, c.out)
		ref := newRefSeparable(c.in, c.out)
		rng := rand.New(rand.NewSource(int64(c.in*100 + c.out)))
		req := make([]uint64, c.in)
		for round := 0; round < 4096; round++ {
			for i := range req {
				switch round % 5 {
				case 0:
					req[i] = 0 // idle round
				case 1:
					req[i] = LowMask(c.out) // all-contend round
				default:
					req[i] = rng.Uint64() & LowMask(c.out)
				}
			}
			fg := fast.Allocate(req)
			rg := ref.allocate(req)
			for i := range fg {
				if fg[i] != rg[i] {
					t.Fatalf("%dx%d round %d input %d: fast=%d ref=%d (req=%#x)",
						c.in, c.out, round, i, fg[i], rg[i], req[i])
				}
			}
		}
	}
}

// TestSeparableGrantValidity: grants form a matching (no output granted
// twice, every grant was requested).
func TestSeparableGrantValidity(t *testing.T) {
	s := NewSeparable(8, 8)
	rng := rand.New(rand.NewSource(3))
	req := make([]uint64, 8)
	for round := 0; round < 2048; round++ {
		for i := range req {
			req[i] = rng.Uint64() & LowMask(8)
		}
		grants := s.Allocate(req)
		var outUsed uint64
		for i, o := range grants {
			if o == -1 {
				continue
			}
			if req[i]&(1<<uint(o)) == 0 {
				t.Fatalf("round %d: input %d granted unrequested output %d", round, i, o)
			}
			if outUsed&(1<<uint(o)) != 0 {
				t.Fatalf("round %d: output %d granted twice", round, o)
			}
			outUsed |= 1 << uint(o)
		}
	}
}

// TestWavefrontValidityAndMaximality: the wavefront matching is conflict-free,
// covers only requested pairs, and is maximal (no free input/output pair with
// a pending request remains).
func TestWavefrontValidityAndMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 5, 8, 16} {
		req := make([]uint64, n)
		grant := make([]int, n)
		for round := 0; round < 2048; round++ {
			for i := range req {
				req[i] = rng.Uint64() & LowMask(n)
			}
			pri := rng.Intn(n)
			matched := Wavefront(req, n, pri, grant)
			var inUsed, outUsed uint64
			count := 0
			for i, o := range grant {
				if o == -1 {
					continue
				}
				count++
				if req[i]&(1<<uint(o)) == 0 {
					t.Fatalf("n=%d: input %d matched to unrequested output %d", n, i, o)
				}
				if outUsed&(1<<uint(o)) != 0 {
					t.Fatalf("n=%d: output %d matched twice", n, o)
				}
				inUsed |= 1 << uint(i)
				outUsed |= 1 << uint(o)
			}
			if count != matched {
				t.Fatalf("n=%d: matched=%d but %d grants set", n, matched, count)
			}
			// Maximality: no (free input, free output) pair may be requested.
			for i := 0; i < n; i++ {
				if inUsed&(1<<uint(i)) != 0 {
					continue
				}
				if free := req[i] &^ outUsed; free != 0 {
					t.Fatalf("n=%d pri=%d: matching not maximal — input %d could still take %#x", n, pri, i, free)
				}
			}
		}
	}
}
