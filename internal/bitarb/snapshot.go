package bitarb

import (
	"fmt"

	"dxbar/internal/snapshot"
)

// SaveState serializes the arbiter's rotation pointer and fairness counters.
func (r *RoundRobin) SaveState(w *snapshot.Writer) {
	w.Int(r.ptr)
	w.U64(r.grants)
	w.U64(r.wraps)
}

// LoadState restores the arbiter's state.
func (r *RoundRobin) LoadState(rd *snapshot.Reader) error {
	ptr := rd.Int()
	grants := rd.U64()
	wraps := rd.U64()
	if err := rd.Err(); err != nil {
		return err
	}
	if ptr < 0 || ptr >= r.n {
		return fmt.Errorf("bitarb: snapshot rotation pointer %d out of [0,%d)", ptr, r.n)
	}
	r.ptr = ptr
	r.grants = grants
	r.wraps = wraps
	return nil
}

// SaveState serializes the separable allocator: the per-output and per-input
// rotation pointers plus the match counter.
func (s *Separable) SaveState(w *snapshot.Writer) {
	for _, p := range s.outPtr {
		w.Int(int(p))
	}
	for _, p := range s.inPtr {
		w.Int(int(p))
	}
	w.U64(s.grants)
}

// LoadState restores the separable allocator's state.
func (s *Separable) LoadState(rd *snapshot.Reader) error {
	for i := range s.outPtr {
		p := rd.Int()
		if rd.Err() == nil && (p < 0 || p >= s.numIn) {
			return fmt.Errorf("bitarb: snapshot output pointer %d out of [0,%d)", p, s.numIn)
		}
		s.outPtr[i] = int32(p)
	}
	for i := range s.inPtr {
		p := rd.Int()
		if rd.Err() == nil && (p < 0 || p >= s.numOut) {
			return fmt.Errorf("bitarb: snapshot input pointer %d out of [0,%d)", p, s.numOut)
		}
		s.inPtr[i] = int32(p)
	}
	s.grants = rd.U64()
	return rd.Err()
}
