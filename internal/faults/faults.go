// Package faults implements the crossbar-fault injection methodology of
// §III.E: faults are generated randomly over the routers of the network with
// a fixed seed and a varying percentage; each affected router loses one of
// its two crossbars (primary or secondary) at a manifestation cycle, and the
// (assumed) BIST circuitry flags the fault a fixed number of router cycles
// later — five in the paper's optimistic assumption.
package faults

import (
	"fmt"
	"math/rand"
)

// CrossbarID selects which of a DXbar router's two crossbars fails.
type CrossbarID int

// The two crossbars of a dual-crossbar router.
const (
	Primary CrossbarID = iota
	Secondary
)

// String returns the crossbar name.
func (c CrossbarID) String() string {
	if c == Primary {
		return "primary"
	}
	return "secondary"
}

// DefaultDetectionDelay is the paper's assumed BIST detection latency in
// router cycles ("the number of cycles for fault detection is
// optimistically assumed to be five").
const DefaultDetectionDelay = 5

// Granularity selects how much of a crossbar a fault takes out.
type Granularity int

// Fault granularities. The paper's §III.E experiments fail whole crossbars
// ("the effect of failure of one crossbar within the router"); §I also
// frames faults as occurring "at the crosspoints connecting any input to
// output", which Crosspoint models.
const (
	// WholeCrossbar kills one entire fabric of the router.
	WholeCrossbar Granularity = iota
	// Crosspoint kills a single input→output crosspoint.
	Crosspoint
)

// String returns the granularity name.
func (g Granularity) String() string {
	if g == Crosspoint {
		return "crosspoint"
	}
	return "crossbar"
}

// Fault is one permanent fault.
type Fault struct {
	Router        int
	Crossbar      CrossbarID
	ManifestCycle uint64
	// Granularity defaults to WholeCrossbar; with Crosspoint, In and Out
	// identify the failed crosspoint.
	Granularity Granularity
	In, Out     int
}

// Plan is the set of faults injected into one simulation run.
type Plan struct {
	// DetectionDelay is the BIST latency in cycles from manifestation to
	// detection.
	DetectionDelay uint64
	byRouter       map[int]Fault
}

// NewPlan builds a fault plan: fraction ∈ [0, 1] of the n routers receive
// one failed crossbar each (chosen uniformly between primary and secondary),
// manifesting at manifestCycle. The same seed with the same fraction always
// yields the same plan ("randomly generated at different crossbars with the
// same random seed but varying percentages of faults"), and plans for
// increasing fractions are nested: the 25% faults are a subset of the 50%
// faults, and so on, because the router permutation and crossbar choices are
// drawn identically before truncation.
func NewPlan(n int, fraction float64, manifestCycle uint64, seed int64) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: invalid router count %d", n)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("faults: fraction %v out of [0,1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	// Draw every router's crossbar choice up front so truncation at any
	// fraction keeps the shared prefix identical.
	choice := make([]CrossbarID, n)
	for i := range choice {
		choice[i] = CrossbarID(rng.Intn(2))
	}
	count := int(fraction*float64(n) + 0.5)
	p := &Plan{DetectionDelay: DefaultDetectionDelay, byRouter: make(map[int]Fault, count)}
	for i := 0; i < count; i++ {
		r := perm[i]
		p.byRouter[r] = Fault{Router: r, Crossbar: choice[i], ManifestCycle: manifestCycle}
	}
	return p, nil
}

// NewCrosspointPlan is NewPlan at crosspoint granularity: each affected
// router loses a single random crosspoint of one crossbar. Crosspoints on
// the four link-input rows are drawn (the injection row is spared so a
// node's PE is never structurally cut off). Nesting across fractions holds
// as for NewPlan.
func NewCrosspointPlan(n int, fraction float64, manifestCycle uint64, seed int64) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: invalid router count %d", n)
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("faults: fraction %v out of [0,1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	type pick struct {
		cb      CrossbarID
		in, out int
	}
	picks := make([]pick, n)
	for i := range picks {
		picks[i] = pick{
			cb:  CrossbarID(rng.Intn(2)),
			in:  rng.Intn(4), // link-input rows only
			out: rng.Intn(5),
		}
	}
	count := int(fraction*float64(n) + 0.5)
	p := &Plan{DetectionDelay: DefaultDetectionDelay, byRouter: make(map[int]Fault, count)}
	for i := 0; i < count; i++ {
		r := perm[i]
		p.byRouter[r] = Fault{
			Router: r, Crossbar: picks[i].cb, ManifestCycle: manifestCycle,
			Granularity: Crosspoint, In: picks[i].in, Out: picks[i].out,
		}
	}
	return p, nil
}

// Empty returns a plan with no faults.
func Empty() *Plan {
	return &Plan{DetectionDelay: DefaultDetectionDelay, byRouter: map[int]Fault{}}
}

// ForRouter returns the fault affecting router r, if any.
func (p *Plan) ForRouter(r int) (Fault, bool) {
	f, ok := p.byRouter[r]
	return f, ok
}

// Count returns the number of faulty routers in the plan.
func (p *Plan) Count() int { return len(p.byRouter) }

// Detector tracks the BIST state machine for one fault: the fault is latent
// until ManifestCycle, manifest (misbehaving, undetected) for DetectionDelay
// cycles, then detected.
type Detector struct {
	fault  Fault
	delay  uint64
	active bool
}

// NewDetector returns a detector for the given fault; active=false yields a
// detector that never fires (healthy router).
func NewDetector(f Fault, delay uint64, active bool) *Detector {
	return &Detector{fault: f, delay: delay, active: active}
}

// Manifest reports whether the fault physically affects the hardware at the
// given cycle (whether or not it has been detected yet).
func (d *Detector) Manifest(cycle uint64) bool {
	return d.active && cycle >= d.fault.ManifestCycle
}

// Detected reports whether BIST has flagged the fault by the given cycle.
func (d *Detector) Detected(cycle uint64) bool {
	return d.active && cycle >= d.fault.ManifestCycle+d.delay
}

// Fault returns the detector's fault description.
func (d *Detector) Fault() Fault { return d.fault }

// Active reports whether this detector is armed at all.
func (d *Detector) Active() bool { return d.active }
