package faults

import (
	"testing"
	"testing/quick"
)

func TestNewPlanCount(t *testing.T) {
	for _, tc := range []struct {
		frac float64
		want int
	}{{0, 0}, {0.25, 16}, {0.5, 32}, {0.75, 48}, {1.0, 64}} {
		p, err := NewPlan(64, tc.frac, 100, 42)
		if err != nil {
			t.Fatalf("NewPlan(%v): %v", tc.frac, err)
		}
		if p.Count() != tc.want {
			t.Errorf("fraction %v: count = %d, want %d", tc.frac, p.Count(), tc.want)
		}
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 0.5, 0, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewPlan(64, -0.1, 0, 1); err == nil {
		t.Error("negative fraction must fail")
	}
	if _, err := NewPlan(64, 1.5, 0, 1); err == nil {
		t.Error("fraction > 1 must fail")
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, _ := NewPlan(64, 0.5, 10, 7)
	b, _ := NewPlan(64, 0.5, 10, 7)
	for r := 0; r < 64; r++ {
		fa, oka := a.ForRouter(r)
		fb, okb := b.ForRouter(r)
		if oka != okb || fa != fb {
			t.Fatalf("plans with same seed differ at router %d", r)
		}
	}
}

// Paper methodology: "the same random seed but varying percentages" — the
// smaller plan must be a subset of the larger one.
func TestPlanNesting(t *testing.T) {
	small, _ := NewPlan(64, 0.25, 10, 7)
	large, _ := NewPlan(64, 0.75, 10, 7)
	for r := 0; r < 64; r++ {
		fs, ok := small.ForRouter(r)
		if !ok {
			continue
		}
		fl, ok := large.ForRouter(r)
		if !ok {
			t.Fatalf("router %d faulty at 25%% but not at 75%%", r)
		}
		if fs.Crossbar != fl.Crossbar {
			t.Fatalf("router %d crossbar choice changed between fractions", r)
		}
	}
}

func TestPlanFullCoverage(t *testing.T) {
	p, _ := NewPlan(64, 1.0, 0, 3)
	for r := 0; r < 64; r++ {
		if _, ok := p.ForRouter(r); !ok {
			t.Fatalf("100%% plan must cover every router, missing %d", r)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	p := Empty()
	if p.Count() != 0 {
		t.Error("empty plan must have no faults")
	}
	if _, ok := p.ForRouter(0); ok {
		t.Error("empty plan must return no fault")
	}
	if p.DetectionDelay != DefaultDetectionDelay {
		t.Error("empty plan must still carry the default detection delay")
	}
}

func TestCrossbarIDString(t *testing.T) {
	if Primary.String() != "primary" || Secondary.String() != "secondary" {
		t.Error("CrossbarID strings wrong")
	}
}

func TestDetectorLifecycle(t *testing.T) {
	d := NewDetector(Fault{Router: 3, Crossbar: Primary, ManifestCycle: 100}, 5, true)
	if d.Manifest(99) || d.Detected(99) {
		t.Error("fault must be latent before manifestation")
	}
	if !d.Manifest(100) || d.Detected(100) {
		t.Error("fault must be manifest-undetected at cycle 100")
	}
	if !d.Manifest(104) || d.Detected(104) {
		t.Error("fault must still be undetected at cycle 104")
	}
	if !d.Detected(105) {
		t.Error("fault must be detected at manifest+delay")
	}
	if !d.Active() || d.Fault().Router != 3 {
		t.Error("accessors wrong")
	}
}

func TestDetectorInactive(t *testing.T) {
	d := NewDetector(Fault{ManifestCycle: 0}, 5, false)
	if d.Manifest(1000) || d.Detected(1000) || d.Active() {
		t.Error("inactive detector must never fire")
	}
}

// Property: detection implies manifestation, and the undetected window is
// exactly `delay` cycles.
func TestDetectorWindowProperty(t *testing.T) {
	f := func(manifest uint32, delay uint8, probe uint32) bool {
		d := NewDetector(Fault{ManifestCycle: uint64(manifest)}, uint64(delay), true)
		c := uint64(probe)
		if d.Detected(c) && !d.Manifest(c) {
			return false
		}
		wantManifest := c >= uint64(manifest)
		wantDetected := c >= uint64(manifest)+uint64(delay)
		return d.Manifest(c) == wantManifest && d.Detected(c) == wantDetected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrosspointPlan(t *testing.T) {
	p, err := NewCrosspointPlan(64, 0.5, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 32 {
		t.Fatalf("count = %d, want 32", p.Count())
	}
	for r := 0; r < 64; r++ {
		f, ok := p.ForRouter(r)
		if !ok {
			continue
		}
		if f.Granularity != Crosspoint {
			t.Fatal("granularity must be Crosspoint")
		}
		if f.In < 0 || f.In > 3 || f.Out < 0 || f.Out > 4 {
			t.Fatalf("crosspoint (%d,%d) out of range", f.In, f.Out)
		}
		if f.ManifestCycle != 20 {
			t.Fatal("manifest cycle wrong")
		}
	}
}

func TestCrosspointPlanNesting(t *testing.T) {
	small, _ := NewCrosspointPlan(64, 0.25, 0, 7)
	large, _ := NewCrosspointPlan(64, 1.0, 0, 7)
	for r := 0; r < 64; r++ {
		fs, ok := small.ForRouter(r)
		if !ok {
			continue
		}
		fl, ok := large.ForRouter(r)
		if !ok || fs != fl {
			t.Fatalf("crosspoint plans not nested at router %d", r)
		}
	}
}

func TestCrosspointPlanValidation(t *testing.T) {
	if _, err := NewCrosspointPlan(0, 0.5, 0, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := NewCrosspointPlan(64, 1.5, 0, 1); err == nil {
		t.Error("fraction > 1 must fail")
	}
}

func TestGranularityString(t *testing.T) {
	if WholeCrossbar.String() != "crossbar" || Crosspoint.String() != "crosspoint" {
		t.Error("granularity names wrong")
	}
}
