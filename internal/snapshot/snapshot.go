// Package snapshot is the versioned binary serialization layer under the
// engine checkpoints: a little-endian, CRC-trailed stream of fixed-width
// scalars and length-prefixed byte strings, with four-byte section tags so a
// truncated or mismatched stream fails loudly at the section boundary instead
// of silently misaligning.
//
// The format is deliberately primitive — no reflection, no varints, no
// self-describing schema. Every field is written and read by explicit code in
// the package that owns it, in declaration order, so the byte stream is a
// deterministic function of the simulation state (the round-trip property
// Snapshot→Restore→Snapshot is byte-stable) and the CI determinism gate can
// compare snapshots with cmp.
//
// Robustness contract: a Reader never panics on corrupt input. NewReader
// verifies the magic, version and whole-stream CRC up front; every read
// bounds-checks the remaining bytes; counts pass through Len, which validates
// them against caller-supplied caps before anything allocates. Decoders
// surface errors, callers discard the half-built object — nothing
// half-restores.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Magic is the four-byte stream magic.
const Magic = "DXSN"

// Version is the current format version. Bump on any incompatible layout
// change; Readers reject other versions (the committed golden checkpoint in
// bench/ turns an accidental bump or layout drift into a CI failure).
const Version = 1

// headerLen is magic + version; trailerLen the CRC32.
const (
	headerLen  = 4 + 2
	trailerLen = 4
)

// Writer serializes a snapshot stream to an io.Writer, accumulating a CRC32
// (IEEE) over everything including the header; Close appends the CRC as a
// little-endian trailer. Errors are sticky: the first I/O error latches and
// every later call is a no-op, so callers check once at Close.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewWriter starts a snapshot stream on w, writing the magic and version.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w, crc: crc32.NewIEEE()}
	sw.write([]byte(Magic))
	sw.U16(Version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	w.crc.Write(p)
	_, w.err = w.w.Write(p)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a two's-complement little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an I64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes an IEEE-754 float64 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a byte 0/1.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes writes a U32 length prefix followed by the raw bytes.
func (w *Writer) Bytes(p []byte) {
	w.U32(uint32(len(p)))
	w.write(p)
}

// Tag writes a four-byte section tag. Tags cost four bytes per section and
// buy misalignment detection: a decoder that drifted off-layout hits a tag
// mismatch at the next section boundary instead of reading garbage to EOF.
func (w *Writer) Tag(tag string) {
	if len(tag) != 4 {
		panic("snapshot: section tag must be 4 bytes")
	}
	w.write([]byte(tag))
}

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the CRC trailer and returns the sticky error. The Writer must
// not be used afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	binary.LittleEndian.PutUint32(w.buf[:4], w.crc.Sum32())
	_, w.err = w.w.Write(w.buf[:4])
	return w.err
}

// Reader decodes a snapshot stream from an in-memory byte slice. NewReader
// verifies the whole stream (length, magic, version, CRC) before any field is
// decoded, so decode-time errors can only come from structural validation —
// counts out of range, tag mismatches, trailing bytes — never from flipped
// bits. Errors are sticky; reads after an error return zero values.
type Reader struct {
	data []byte // payload, header included, trailer stripped
	off  int
	err  error
}

// NewReader validates data as a complete snapshot stream and positions a
// Reader after the header. It never panics on arbitrary input.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("snapshot: stream truncated (%d bytes)", len(data))
	}
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("snapshot: CRC mismatch (got %08x, want %08x)", got, want)
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (have %d)", v, Version)
	}
	return &Reader{data: body, off: headerLen}, nil
}

// fail latches the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.data) {
		r.fail(io.ErrUnexpectedEOF)
		return nil
	}
	p := r.data[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads a two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a byte and requires it to be 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("snapshot: invalid boolean byte at offset %d", r.off-1))
		return false
	}
}

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// Reader's buffer; copy it if it must outlive the snapshot bytes.
func (r *Reader) Bytes() []byte {
	n := r.Len(len(r.data))
	return r.take(n)
}

// Len reads a U32 count and validates it against both the caller's cap and
// the bytes remaining in the stream — a count can never force a decoder to
// allocate or loop beyond either. It returns 0 after a validation failure.
func (r *Reader) Len(max int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		r.fail(fmt.Errorf("snapshot: count %d exceeds limit %d at offset %d", n, max, r.off-4))
		return 0
	}
	if int(n) > len(r.data)-r.off {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	return int(n)
}

// Expect consumes a four-byte section tag and fails unless it matches.
func (r *Reader) Expect(tag string) {
	if len(tag) != 4 {
		panic("snapshot: section tag must be 4 bytes")
	}
	p := r.take(4)
	if p == nil {
		return
	}
	if string(p) != tag {
		r.fail(fmt.Errorf("snapshot: section tag mismatch at offset %d: got %q, want %q", r.off-4, p, tag))
	}
}

// Remaining returns the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Close verifies the stream was fully consumed and returns the sticky error.
func (r *Reader) Close() error {
	if r.err == nil && r.off != len(r.data) {
		r.fail(fmt.Errorf("snapshot: %d trailing bytes after final section", len(r.data)-r.off))
	}
	return r.err
}
