package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// writeSample emits one of every field type and returns the stream bytes.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Tag("SMPL")
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0102030405060708)
	w.I64(-42)
	w.Int(-7)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("hello"))
	w.Tag("DONE")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := writeSample(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Expect("SMPL")
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0102030405060708 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if v := r.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round-trip broken")
	}
	if v := r.Bytes(); string(v) != "hello" {
		t.Errorf("Bytes = %q", v)
	}
	r.Expect("DONE")
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// Flipping any single bit anywhere in the stream must fail the up-front CRC.
func TestBitFlipDetected(t *testing.T) {
	data := writeSample(t)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := NewReader(mut); err == nil {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

// Every truncation of the stream must be rejected, never panic.
func TestTruncationDetected(t *testing.T) {
	data := writeSample(t)
	for n := 0; n < len(data); n++ {
		if _, err := NewReader(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestTagMismatch(t *testing.T) {
	data := writeSample(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Expect("NOPE")
	if r.Err() == nil {
		t.Fatal("tag mismatch not detected")
	}
}

func TestLenLimits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(1 << 30) // a count far beyond the stream
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Len(16); n != 0 || r.Err() == nil {
		t.Fatalf("Len accepted oversized count: n=%d err=%v", n, r.Err())
	}
}

// Reads past the payload return zero values with a sticky error, no panic.
func TestReadPastEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	_ = r.U8()
	if v := r.U64(); v != 0 {
		t.Fatalf("read past end returned %d", v)
	}
	if r.Err() != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", r.Err())
	}
}

// An unconsumed suffix is a structural error at Close.
func TestTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}
