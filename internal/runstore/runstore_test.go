package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestKeyCanonicalization(t *testing.T) {
	// Same content, different field order ⇒ same key.
	a := []byte(`{"design":"dxbar","load":0.3,"seed":7}`)
	b := []byte(`{"seed":7,"design":"dxbar","load":0.3}`)
	ka, err := Key(KindRun, a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(KindRun, b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("field order changed the key: %s vs %s", ka, kb)
	}
	if len(ka) != 64 {
		t.Fatalf("key is not hex sha256: %q", ka)
	}

	// Different content ⇒ different key.
	kc, err := Key(KindRun, []byte(`{"design":"dxbar","load":0.3,"seed":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("different seeds collided")
	}
	// Kind is part of the address: the same config under another kind must
	// not alias.
	ks, err := Key(KindSplash, a)
	if err != nil {
		t.Fatal(err)
	}
	if ks == ka {
		t.Fatal("kinds alias")
	}

	if _, err := Key(KindRun, []byte(`not json`)); err == nil {
		t.Fatal("invalid config JSON must not produce a key")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := json.RawMessage(`{"design":"dxbar","seed":1}`)
	res := json.RawMessage(`{"AvgLatency":12.5,"Packets":4000}`)
	rec := &Record{Kind: KindRun, Config: cfg, Result: res, Meta: map[string]string{"tool": "test"}}
	path, err := s.Put(rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Key == "" || rec.Schema != Schema || rec.CreatedAt.IsZero() {
		t.Fatalf("Put did not fill defaults: %+v", rec)
	}
	if rec.Env.Go == "" || rec.Env.NumCPU == 0 {
		t.Fatalf("Put did not stamp the environment: %+v", rec.Env)
	}
	if path != s.Path(rec.Key) {
		t.Fatalf("path mismatch: %s vs %s", path, s.Path(rec.Key))
	}

	got, err := s.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	var wantRes, gotRes map[string]any
	if err := json.Unmarshal(res, &wantRes); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.Result, &gotRes); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRun || got.Meta["tool"] != "test" ||
		gotRes["AvgLatency"] != wantRes["AvgLatency"] || gotRes["Packets"] != wantRes["Packets"] {
		t.Fatalf("round-trip mismatch: %+v", got)
	}

	// Lookup: present hits, absent misses.
	if _, ok := s.Lookup(rec.Key); !ok {
		t.Fatal("Lookup missed a present record")
	}
	if _, ok := s.Lookup(strings.Repeat("0", 64)); ok {
		t.Fatal("Lookup hit an absent record")
	}
}

func TestPutReplacesExisting(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := json.RawMessage(`{"seed":1}`)
	first := &Record{Kind: KindRun, Config: cfg, Result: json.RawMessage(`1`)}
	if _, err := s.Put(first); err != nil {
		t.Fatal(err)
	}
	second := &Record{Kind: KindRun, Config: cfg, Result: json.RawMessage(`2`)}
	if _, err := s.Put(second); err != nil {
		t.Fatal(err)
	}
	if first.Key != second.Key {
		t.Fatal("same config produced different keys")
	}
	got, err := s.Get(first.Key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Result) != `2` {
		t.Fatalf("replace did not take: %s", got.Result)
	}
	recs, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replace left %d records", len(recs))
	}
}

func TestListOrderAndRobustness(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	// Insert out of chronological order.
	for i, off := range []int{2, 0, 1} {
		rec := &Record{
			Kind:      KindRun,
			Config:    json.RawMessage(`{"seed":` + string(rune('0'+i)) + `}`),
			Result:    json.RawMessage(`{}`),
			CreatedAt: base.Add(time.Duration(off) * time.Hour),
		}
		if _, err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt file and a stray temp file must not break the listing.
	if err := os.WriteFile(filepath.Join(dir, "run-"+strings.Repeat("f", 64)+".json"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-123.tmp"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("listed %d records, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].CreatedAt.Before(recs[i-1].CreatedAt) {
			t.Fatalf("list not chronological: %v after %v", recs[i].CreatedAt, recs[i-1].CreatedAt)
		}
	}
	// The corrupt record is a Lookup miss and a Get error.
	if _, ok := s.Lookup(strings.Repeat("f", 64)); ok {
		t.Fatal("Lookup hit a corrupt record")
	}
	if _, err := s.Get(strings.Repeat("f", 64)); err == nil {
		t.Fatal("Get accepted a corrupt record")
	}
}

func TestSchemaGate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{Kind: KindRun, Config: json.RawMessage(`{"seed":1}`), Result: json.RawMessage(`{}`)}
	if _, err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Hand-raise the schema on disk; the reader must refuse it.
	data, err := os.ReadFile(s.Path(rec.Key))
	if err != nil {
		t.Fatal(err)
	}
	raised := strings.Replace(string(data), `"schema": 1`, `"schema": 99`, 1)
	if raised == string(data) {
		t.Fatal("fixture assumption broke: schema field not found")
	}
	if err := os.WriteFile(s.Path(rec.Key), []byte(raised), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(rec.Key); err == nil {
		t.Fatal("Get accepted a newer schema")
	}
	if _, ok := s.Lookup(rec.Key); ok {
		t.Fatal("Lookup accepted a newer schema")
	}
}

func TestStampFields(t *testing.T) {
	e := Stamp()
	if e.Go == "" || e.OS == "" || e.Arch == "" || e.NumCPU < 1 {
		t.Fatalf("incomplete stamp: %+v", e)
	}
}
