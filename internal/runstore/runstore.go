// Package runstore is the content-addressed run ledger: a directory of
// schema-versioned JSON records, one per completed simulation, keyed by a
// cryptographic hash of the run's configuration. Because runs are
// deterministic (same config + seed ⇒ bit-identical Result), the key IS the
// result's identity — the ledger doubles as a dedup cache: before
// re-simulating, look the key up and reuse the archived record.
//
// The package mirrors the checkpoint subsystem's durability discipline:
// records are written to a temp file in the destination directory, fsynced
// and renamed into place, so a crash at any instant leaves either the old
// record set or the new one — never a torn file. Records carry an
// environment stamp (Go version, platform, git revision) so cross-machine
// and cross-version comparisons stay honest, but the stamp is metadata: it
// never enters the key.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Schema is the ledger record format version. Bump on any incompatible
// change to Record's JSON shape; readers reject newer schemas rather than
// misinterpreting them.
const Schema = 1

// Record kinds: the payload family a record archives.
const (
	// KindRun is an open-loop synthetic-traffic run (dxbar.Result).
	KindRun = "run"
	// KindSplash is a closed-loop coherence run (dxbar.SplashResult).
	KindSplash = "splash"
)

// recordPattern matches the files a Store writes.
const recordPattern = "run-*.json"

// EnvStamp records the environment a result was produced under. It is
// metadata for cross-run comparison — never part of the content key.
type EnvStamp struct {
	// Go is the toolchain that built the binary (runtime.Version()).
	Go string `json:"go"`
	// OS and Arch are the platform (GOOS/GOARCH).
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// NumCPU is the host's logical CPU count (wall-clock context for any
	// sharded-speedup comparison).
	NumCPU int `json:"num_cpu"`
	// GitRevision and GitDirty identify the source tree, read from the
	// binary's embedded VCS build info. Empty/false when the binary was
	// built outside a checkout (go test binaries, stripped builds).
	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
}

// Stamp captures the current environment. The VCS fields come from
// debug.ReadBuildInfo — no subprocess, so stamping works in sandboxes
// without a git binary.
func Stamp() EnvStamp {
	e := EnvStamp{
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				e.GitRevision = s.Value
			case "vcs.modified":
				e.GitDirty = s.Value == "true"
			}
		}
	}
	return e
}

// Record is one archived run: the scrubbed configuration that keys it, the
// full result payload, and the environment it was produced under. Config and
// Result stay raw JSON so the ledger never imports the simulator — the same
// inversion internal/report uses.
type Record struct {
	// Schema is the record format version (the package Schema at write time).
	Schema int `json:"schema"`
	// Key is the content address: Key(Kind, Config).
	Key string `json:"key"`
	// Kind is the payload family (KindRun, KindSplash).
	Kind string `json:"kind"`
	// CreatedAt is the archive time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Env stamps the producing environment.
	Env EnvStamp `json:"env"`
	// Meta carries free-form bench metadata (label, CLI provenance).
	Meta map[string]string `json:"meta,omitempty"`
	// Config is the scrubbed run configuration the key hashes.
	Config json.RawMessage `json:"config"`
	// Result is the archived result payload.
	Result json.RawMessage `json:"result"`
	// Latency optionally carries the latency distribution in its exported
	// bucket form (the in-Result histogram is an opaque fixed array that
	// does not survive JSON; this does).
	Latency json.RawMessage `json:"latency,omitempty"`
}

// Key computes a record's content address: hex SHA-256 over the kind and the
// canonicalized config JSON. Canonicalization re-marshals through untyped
// maps, whose keys encoding/json sorts — so two configs with the same fields
// in different order (or produced by different struct versions with
// identical content) hash identically.
func Key(kind string, configJSON []byte) (string, error) {
	var v any
	if err := json.Unmarshal(configJSON, &v); err != nil {
		return "", fmt.Errorf("runstore: key: config is not valid JSON: %w", err)
	}
	canon, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstore: key: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Store is a ledger directory. Concurrent writers are safe against each
// other at the filesystem level (atomic rename); a Store itself is stateless.
type Store struct {
	dir string
}

// Open returns a Store over dir, creating the directory if absent.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty ledger directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the ledger directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key's record lives at (whether or not it exists).
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, "run-"+key+".json")
}

// Put archives a record, filling Schema, CreatedAt and Env when unset, and
// computing Key from (Kind, Config) when empty. The write is atomic: temp
// file, fsync, rename. An existing record under the same key is replaced —
// deterministic payloads make the overwrite a refresh of the metadata, not a
// change of content. Returns the record's final path.
func (s *Store) Put(rec *Record) (string, error) {
	if rec.Kind == "" {
		return "", fmt.Errorf("runstore: record kind is required")
	}
	if len(rec.Config) == 0 {
		return "", fmt.Errorf("runstore: record config is required")
	}
	if rec.Schema == 0 {
		rec.Schema = Schema
	}
	if rec.Key == "" {
		k, err := Key(rec.Kind, rec.Config)
		if err != nil {
			return "", err
		}
		rec.Key = k
	}
	if rec.CreatedAt.IsZero() {
		rec.CreatedAt = time.Now().UTC()
	}
	if rec.Env == (EnvStamp{}) {
		rec.Env = Stamp()
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("runstore: marshal record: %w", err)
	}
	data = append(data, '\n')

	tmp, err := os.CreateTemp(s.dir, "run-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	path := s.Path(rec.Key)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// Get loads the record for key. Missing, corrupt or newer-schema records are
// errors.
func (s *Store) Get(key string) (*Record, error) {
	return loadRecord(s.Path(key))
}

// Lookup is the dedup probe: the record for key, or (nil, false) when it is
// absent or unreadable — a broken record must never block a re-simulation.
func (s *Store) Lookup(key string) (*Record, bool) {
	rec, err := loadRecord(s.Path(key))
	if err != nil {
		return nil, false
	}
	return rec, true
}

// List loads every record in the store, sorted by creation time (ties broken
// by key). Unreadable files are skipped — a ledger listing is an analytics
// input, not an integrity check.
func (s *Store) List() ([]*Record, error) {
	paths, err := filepath.Glob(filepath.Join(s.dir, recordPattern))
	if err != nil {
		return nil, err
	}
	var out []*Record
	for _, p := range paths {
		if strings.HasSuffix(p, ".tmp") {
			continue
		}
		rec, err := loadRecord(p)
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

func loadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", path, err)
	}
	if rec.Schema > Schema {
		return nil, fmt.Errorf("runstore: %s: schema %d is newer than supported %d", path, rec.Schema, Schema)
	}
	if rec.Key == "" || rec.Kind == "" {
		return nil, fmt.Errorf("runstore: %s: missing key or kind", path)
	}
	return &rec, nil
}
