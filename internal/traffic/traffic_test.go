package traffic

import (
	"math"
	"math/rand"
	"testing"

	"dxbar/internal/topology"
)

var mesh = topology.MustMesh(8, 8)

func pat(t *testing.T, name string) Pattern {
	t.Helper()
	p, err := New(name, mesh)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return p
}

func TestAllPatternsConstructible(t *testing.T) {
	for _, name := range PatternNames {
		p := pat(t, name)
		if p.Name() != name {
			t.Errorf("pattern %s reports name %s", name, p.Name())
		}
	}
	if _, err := New("XX", mesh); err == nil {
		t.Error("unknown pattern must fail")
	}
}

func TestBitPatternsNeedPowerOfTwo(t *testing.T) {
	m := topology.MustMesh(3, 3)
	for _, name := range []string{"BR", "BF", "CP", "PS"} {
		if _, err := New(name, m); err == nil {
			t.Errorf("%s on 9 nodes must fail", name)
		}
	}
	// Coordinate patterns are fine on any mesh.
	for _, name := range []string{"UR", "NUR", "MT", "NB", "TOR"} {
		if _, err := New(name, m); err != nil {
			t.Errorf("%s on 9 nodes failed: %v", name, err)
		}
	}
}

func TestUniformNeverSelf(t *testing.T) {
	p := pat(t, "UR")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		src := i % 64
		if d := p.Dest(src, rng); d == src || d < 0 || d >= 64 {
			t.Fatalf("UR dest %d invalid for src %d", d, src)
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	p := pat(t, "UR")
	rng := rand.New(rand.NewSource(2))
	seen := make([]bool, 64)
	for i := 0; i < 20000; i++ {
		seen[p.Dest(0, rng)] = true
	}
	for d := 1; d < 64; d++ {
		if !seen[d] {
			t.Fatalf("UR never produced destination %d", d)
		}
	}
}

func TestComplement(t *testing.T) {
	p := pat(t, "CP")
	if d := p.Dest(0, nil); d != 63 {
		t.Errorf("CP(0) = %d, want 63", d)
	}
	if d := p.Dest(0b101010, nil); d != 0b010101 {
		t.Errorf("CP(42) = %d, want 21", d)
	}
}

func TestBitReversal(t *testing.T) {
	p := pat(t, "BR")
	if d := p.Dest(0b000001, nil); d != 0b100000 {
		t.Errorf("BR(1) = %d, want 32", d)
	}
	if d := p.Dest(0b110100, nil); d != 0b001011 {
		t.Errorf("BR(52) = %d, want 11", d)
	}
}

func TestButterfly(t *testing.T) {
	p := pat(t, "BF")
	// Swap MSB (bit 5) and LSB (bit 0).
	if d := p.Dest(0b100000, nil); d != 0b000001 {
		t.Errorf("BF(32) = %d, want 1", d)
	}
	if d := p.Dest(0b100001, nil); d != 0b100001 {
		t.Errorf("BF(33) = %d, want 33 (fixed point)", d)
	}
}

func TestPerfectShuffle(t *testing.T) {
	p := pat(t, "PS")
	// Rotate left by 1 within 6 bits.
	if d := p.Dest(0b100000, nil); d != 0b000001 {
		t.Errorf("PS(32) = %d, want 1", d)
	}
	if d := p.Dest(0b010110, nil); d != 0b101100 {
		t.Errorf("PS(22) = %d, want 44", d)
	}
}

// Bit-permutation patterns must be permutations of the node set.
func TestBitPatternsAreBijections(t *testing.T) {
	for _, name := range []string{"BR", "BF", "CP", "PS"} {
		p := pat(t, name)
		seen := make([]bool, 64)
		for s := 0; s < 64; s++ {
			d := p.Dest(s, nil)
			if d < 0 || d >= 64 || seen[d] {
				t.Fatalf("%s is not a bijection at src %d (dest %d)", name, s, d)
			}
			seen[d] = true
		}
	}
}

func TestTranspose(t *testing.T) {
	p := pat(t, "MT")
	if d := p.Dest(mesh.Node(2, 5), nil); d != mesh.Node(5, 2) {
		t.Errorf("MT(2,5) wrong")
	}
	if d := p.Dest(mesh.Node(3, 3), nil); d != mesh.Node(3, 3) {
		t.Errorf("MT diagonal must be a fixed point")
	}
}

func TestNeighbor(t *testing.T) {
	p := pat(t, "NB")
	if d := p.Dest(mesh.Node(3, 2), nil); d != mesh.Node(4, 2) {
		t.Error("NB must send East")
	}
	if d := p.Dest(mesh.Node(7, 2), nil); d != mesh.Node(0, 2) {
		t.Error("NB must wrap at the edge")
	}
}

func TestTornado(t *testing.T) {
	p := pat(t, "TOR")
	if d := p.Dest(mesh.Node(1, 4), nil); d != mesh.Node(5, 4) {
		t.Error("TOR must send half the row width")
	}
	if d := p.Dest(mesh.Node(6, 4), nil); d != mesh.Node(2, 4) {
		t.Error("TOR must wrap")
	}
}

func TestHotspotBiasesCenterNodes(t *testing.T) {
	p := pat(t, "NUR")
	rng := rand.New(rand.NewSource(3))
	hot := map[int]bool{mesh.Node(3, 3): true, mesh.Node(4, 3): true, mesh.Node(3, 4): true, mesh.Node(4, 4): true}
	hits := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		if hot[p.Dest(0, rng)] {
			hits++
		}
	}
	frac := float64(hits) / trials
	// Expected: 0.2 direct + 0.8 * 4/63 uniform ≈ 0.25.
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("hotspot fraction = %v, want ~0.25", frac)
	}
}

func TestBernoulliLoadAccuracy(t *testing.T) {
	p := pat(t, "UR")
	b, err := NewBernoulli(mesh, p, 0.3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	flits := 0
	const cycles = 20000
	for c := uint64(0); c < cycles; c++ {
		if s := b.Generate(5, c); s != nil {
			flits += int(s.NumFlits)
		}
	}
	got := float64(flits) / cycles
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("offered load = %v, want ~0.3", got)
	}
}

func TestBernoulliMultiFlitDividesRate(t *testing.T) {
	p := pat(t, "UR")
	b, _ := NewBernoulli(mesh, p, 0.4, 4, 7)
	pkts, flits := 0, 0
	const cycles = 40000
	for c := uint64(0); c < cycles; c++ {
		if s := b.Generate(5, c); s != nil {
			pkts++
			flits += int(s.NumFlits)
		}
	}
	if got := float64(flits) / cycles; math.Abs(got-0.4) > 0.02 {
		t.Errorf("flit load = %v, want ~0.4", got)
	}
	if got := float64(pkts) / cycles; math.Abs(got-0.1) > 0.01 {
		t.Errorf("packet rate = %v, want ~0.1", got)
	}
}

func TestBernoulliValidation(t *testing.T) {
	p := pat(t, "UR")
	if _, err := NewBernoulli(mesh, p, -0.1, 1, 1); err == nil {
		t.Error("negative load must fail")
	}
	if _, err := NewBernoulli(mesh, p, 1.5, 1, 1); err == nil {
		t.Error("load > 1 must fail")
	}
	if _, err := NewBernoulli(mesh, p, 0.5, 0, 1); err == nil {
		t.Error("0 flits per packet must fail")
	}
}

func TestBernoulliDeterministic(t *testing.T) {
	p := pat(t, "UR")
	a, _ := NewBernoulli(mesh, p, 0.5, 1, 99)
	p2 := pat(t, "UR")
	b, _ := NewBernoulli(mesh, p2, 0.5, 1, 99)
	for c := uint64(0); c < 1000; c++ {
		for n := 0; n < 64; n++ {
			sa, sb := a.Generate(n, c), b.Generate(n, c)
			if (sa == nil) != (sb == nil) {
				t.Fatal("same seed must generate identically")
			}
			if sa != nil && (sa.Dst != sb.Dst || sa.ID != sb.ID) {
				t.Fatal("same seed must generate identical packets")
			}
		}
	}
}

func TestPacketSpecFlits(t *testing.T) {
	s := PacketSpec{ID: 9, Src: 1, Dst: 2, NumFlits: 4, Cycle: 77}
	fs := s.Flits()
	if len(fs) != 4 {
		t.Fatal("wrong flit count")
	}
	ids := map[uint64]bool{}
	for i, f := range fs {
		if f.Seq != uint16(i) || f.PacketID != 9 || f.InjectionCycle != 77 || f.Src != 1 || f.Dst != 2 {
			t.Fatalf("flit %d fields wrong: %+v", i, f)
		}
		if ids[f.ID] {
			t.Fatal("duplicate flit ID")
		}
		ids[f.ID] = true
	}
}
