package traffic

import (
	"fmt"
	"math/rand"

	"dxbar/internal/flit"
	"dxbar/internal/topology"
)

// PacketSpec describes one generated packet before its flits exist.
type PacketSpec struct {
	ID       uint64
	Src, Dst int
	NumFlits uint16
	Kind     flit.Kind
	Cycle    uint64
}

// Flits materializes the spec into its flits, all stamped with the packet's
// injection cycle (the age every arbitration decision uses). Flit IDs are
// derived from the packet ID so they are globally unique.
func (p PacketSpec) Flits() []*flit.Flit {
	fs := make([]*flit.Flit, p.NumFlits)
	for i := range fs {
		fs[i] = new(flit.Flit)
		p.fill(fs[i], uint16(i))
	}
	return fs
}

// AppendFlits materializes the spec's flits out of the pool and appends them
// to dst — the allocation-free path the engine uses on every cycle. Every
// flit field is overwritten, so pooled flits carry no state from their
// previous life.
func (p PacketSpec) AppendFlits(dst []*flit.Flit, pool *flit.Pool) []*flit.Flit {
	for i := uint16(0); i < p.NumFlits; i++ {
		f := pool.Get()
		p.fill(f, i)
		dst = append(dst, f)
	}
	return dst
}

// MaterializeFlit builds flit seq of the packet out of the pool (the
// engine's lazy injection path materializes one packet at a time this way).
func (p PacketSpec) MaterializeFlit(pool *flit.Pool, seq uint16) *flit.Flit {
	f := pool.Get()
	p.fill(f, seq)
	return f
}

func (p PacketSpec) fill(f *flit.Flit, seq uint16) {
	*f = flit.Flit{
		ID:             p.ID*uint64(p.NumFlits) + uint64(seq),
		PacketID:       p.ID,
		Seq:            seq,
		NumFlits:       p.NumFlits,
		Src:            int32(p.Src),
		Dst:            int32(p.Dst),
		Kind:           p.Kind,
		InjectionCycle: p.Cycle,
	}
}

// Bernoulli is the open-loop injection process of §III.A: each node
// independently generates a packet each cycle with probability chosen so the
// offered load (flits per node per cycle) matches the configured fraction of
// capacity (1 flit/node/cycle).
type Bernoulli struct {
	mesh    *topology.Mesh
	pattern Pattern
	prob    float64 // per-node per-cycle packet probability
	nflits  uint16
	rng     *rand.Rand
	src     *countingSource
	seed    int64
	nextID  uint64
	spec    PacketSpec // reused across Generate calls (see Generate)
}

// countingSource wraps the seeded source and counts raw draws. The count is
// the injector's serializable RNG position: every consumer path (Float64,
// Intn rejection loops, pattern draws) bottoms out in exactly one source call
// per count, so replaying `draws` calls against a fresh source of the same
// seed reproduces the stream position without modelling any consumer.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// NewBernoulli returns an injector offering `load` flits/node/cycle with
// packets of flitsPerPacket flits each.
func NewBernoulli(m *topology.Mesh, p Pattern, load float64, flitsPerPacket int, seed int64) (*Bernoulli, error) {
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %v out of [0,1]", load)
	}
	if flitsPerPacket < 1 || flitsPerPacket > 64 {
		return nil, fmt.Errorf("traffic: flits per packet %d out of [1,64]", flitsPerPacket)
	}
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Bernoulli{
		mesh:    m,
		pattern: p,
		prob:    load / float64(flitsPerPacket),
		nflits:  uint16(flitsPerPacket),
		rng:     rand.New(src),
		src:     src,
		seed:    seed,
		nextID:  1,
	}, nil
}

// Generate rolls the Bernoulli trial for one node at one cycle and returns
// the new packet spec, or nil. Packets whose pattern maps the node to itself
// are skipped (deterministic permutations can be self-mapping, e.g. the
// transpose diagonal).
//
// The returned spec is reused by the next Generate call: materialize (or
// copy) it before calling Generate again. The engine consumes each spec in
// the same cycle, so the injection hot path stays allocation-free.
func (b *Bernoulli) Generate(node int, cycle uint64) *PacketSpec {
	if b.rng.Float64() >= b.prob {
		return nil
	}
	dst := b.pattern.Dest(node, b.rng)
	if dst == node {
		return nil
	}
	b.spec = PacketSpec{
		ID:       b.nextID,
		Src:      node,
		Dst:      dst,
		NumFlits: b.nflits,
		Kind:     flit.Data,
		Cycle:    cycle,
	}
	b.nextID++
	return &b.spec
}

// Pattern returns the injector's traffic pattern.
func (b *Bernoulli) Pattern() Pattern { return b.pattern }
