package traffic

import (
	"testing"

	"dxbar/internal/topology"
)

func BenchmarkBernoulliGenerate(b *testing.B) {
	m := topology.MustMesh(8, 8)
	p, _ := New("UR", m)
	g, _ := NewBernoulli(m, p, 0.5, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(i%64, uint64(i))
	}
}

func BenchmarkPatternDest(b *testing.B) {
	m := topology.MustMesh(8, 8)
	for _, name := range []string{"BR", "MT", "TOR"} {
		p, _ := New(name, m)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Dest(i%64, nil)
			}
		})
	}
}
