package traffic

import (
	"math/rand"
	"testing"

	"dxbar/internal/topology"
)

// FuzzPatternDest: every pattern must return an in-range destination for
// every source on several mesh shapes, never panicking.
func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func FuzzPatternDest(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(63), uint8(1))
	f.Fuzz(func(t *testing.T, patIdx, src, dims uint8) {
		var m *topology.Mesh
		switch dims % 3 {
		case 0:
			m = topology.MustMesh(8, 8)
		case 1:
			m = topology.MustMesh(4, 4)
		default:
			m = topology.MustMesh(8, 4) // bit patterns reject non-square too
		}
		name := PatternNames[int(patIdx)%len(PatternNames)]
		p, err := New(name, m)
		if err != nil {
			return // legitimately unsupported (non-power-of-two)
		}
		s := int(src) % m.Nodes()
		d := p.Dest(s, newTestRNG())
		if d < 0 || d >= m.Nodes() {
			t.Fatalf("pattern %s: dest %d out of range for src %d", name, d, s)
		}
	})
}
