// Package traffic implements the nine synthetic traffic patterns of §III.A
// — Uniform Random (UR), Non-Uniform Random (NUR, hot-spot), Bit Reversal
// (BR), Butterfly (BF), Complement (CP), Matrix Transpose (MT), Perfect
// Shuffle (PS), Neighbor (NB) and Tornado (TOR) — and the Bernoulli packet
// injection process the paper drives them with.
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dxbar/internal/topology"
)

// Pattern maps a source node to a destination node. Deterministic patterns
// ignore the RNG; UR and NUR use it. A pattern may return the source itself
// (e.g. transpose on the diagonal); the injector skips such packets.
type Pattern interface {
	Name() string
	Dest(src int, rng *rand.Rand) int
}

// PatternNames lists the nine patterns in the paper's order.
var PatternNames = []string{"UR", "NUR", "BR", "BF", "CP", "MT", "PS", "NB", "TOR"}

// New returns the named pattern for the given mesh. Bit-permutation
// patterns (BR, BF, CP, PS) require a power-of-two node count.
func New(name string, m *topology.Mesh) (Pattern, error) {
	n := m.Nodes()
	needBits := func() (int, error) {
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("traffic: pattern %s needs a power-of-two node count, got %d", name, n)
		}
		return bits.TrailingZeros(uint(n)), nil
	}
	switch name {
	case "UR":
		return uniform{n: n}, nil
	case "NUR":
		return newHotspot(m), nil
	case "BR":
		b, err := needBits()
		if err != nil {
			return nil, err
		}
		return bitPattern{name: "BR", n: n, f: func(s uint) uint { return bits.Reverse(s<<(bits.UintSize-b)) & (uint(n) - 1) }}, nil
	case "BF":
		b, err := needBits()
		if err != nil {
			return nil, err
		}
		return bitPattern{name: "BF", n: n, f: func(s uint) uint { return butterfly(s, b) }}, nil
	case "CP":
		if _, err := needBits(); err != nil {
			return nil, err
		}
		return bitPattern{name: "CP", n: n, f: func(s uint) uint { return ^s & (uint(n) - 1) }}, nil
	case "PS":
		b, err := needBits()
		if err != nil {
			return nil, err
		}
		return bitPattern{name: "PS", n: n, f: func(s uint) uint { return ((s << 1) | (s >> (b - 1))) & (uint(n) - 1) }}, nil
	case "MT":
		return transpose{m: m}, nil
	case "NB":
		return neighbor{m: m}, nil
	case "TOR":
		return tornado{m: m}, nil
	}
	return nil, fmt.Errorf("traffic: unknown pattern %q", name)
}

// uniform is UR: destination uniform over all nodes except the source.
type uniform struct{ n int }

func (u uniform) Name() string { return "UR" }

func (u uniform) Dest(src int, rng *rand.Rand) int {
	d := rng.Intn(u.n - 1)
	if d >= src {
		d++
	}
	return d
}

// hotspot is NUR: "creates hot-spot scenarios by injecting 25% additional
// traffic to a select group of nodes". The select group is the four center
// nodes of the mesh; each injection routes to a hotspot with probability
// 0.2 (so hotspot traffic is 25% *additional* over the uniform share those
// nodes already receive from the remaining 80%).
type hotspot struct {
	n    int
	hot  []int
	prob float64
}

func newHotspot(m *topology.Mesh) hotspot {
	cx, cy := m.Width/2, m.Height/2
	return hotspot{
		n:    m.Nodes(),
		hot:  []int{m.Node(cx-1, cy-1), m.Node(cx, cy-1), m.Node(cx-1, cy), m.Node(cx, cy)},
		prob: 0.2,
	}
}

func (h hotspot) Name() string { return "NUR" }

func (h hotspot) Dest(src int, rng *rand.Rand) int {
	if rng.Float64() < h.prob {
		d := h.hot[rng.Intn(len(h.hot))]
		if d != src {
			return d
		}
	}
	d := rng.Intn(h.n - 1)
	if d >= src {
		d++
	}
	return d
}

// Hotspots exposes the hotspot node set (for tests and examples).
func (h hotspot) Hotspots() []int { return h.hot }

// bitPattern wraps the bit-permutation patterns (BR, BF, CP, PS).
type bitPattern struct {
	name string
	n    int
	f    func(uint) uint
}

func (p bitPattern) Name() string { return p.name }

func (p bitPattern) Dest(src int, _ *rand.Rand) int { return int(p.f(uint(src))) }

// butterfly swaps the most and least significant of the b address bits.
func butterfly(s uint, b int) uint {
	lo := s & 1
	hi := (s >> (b - 1)) & 1
	s &^= 1 | (1 << (b - 1))
	return s | (lo << (b - 1)) | hi
}

// transpose is MT: (x, y) → (y, x). Requires a square mesh to be a
// permutation; on rectangular meshes coordinates are clamped.
type transpose struct{ m *topology.Mesh }

func (t transpose) Name() string { return "MT" }

func (t transpose) Dest(src int, _ *rand.Rand) int {
	x, y := t.m.XY(src)
	nx, ny := y, x
	if nx >= t.m.Width {
		nx = t.m.Width - 1
	}
	if ny >= t.m.Height {
		ny = t.m.Height - 1
	}
	return t.m.Node(nx, ny)
}

// neighbor is NB: each node sends to its East neighbour (wrapping at the
// mesh edge), exercising single-hop locality.
type neighbor struct{ m *topology.Mesh }

func (nb neighbor) Name() string { return "NB" }

func (nb neighbor) Dest(src int, _ *rand.Rand) int {
	x, y := nb.m.XY(src)
	return nb.m.Node((x+1)%nb.m.Width, y)
}

// tornado is TOR: each node sends halfway around its row — on a mesh
// (no wraparound links) this stresses the horizontal bisection.
type tornado struct{ m *topology.Mesh }

func (t tornado) Name() string { return "TOR" }

func (t tornado) Dest(src int, _ *rand.Rand) int {
	x, y := t.m.XY(src)
	return t.m.Node((x+t.m.Width/2)%t.m.Width, y)
}
