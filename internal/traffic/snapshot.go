package traffic

import (
	"fmt"
	"math/rand"

	"dxbar/internal/flit"
	"dxbar/internal/snapshot"
)

// SaveState serializes the injector's mutable state: the RNG stream position
// (raw source draws since seeding) and the next packet ID. The seed, load and
// pattern are configuration — the restore side reconstructs the injector from
// the run's config and overlays this state.
func (b *Bernoulli) SaveState(w *snapshot.Writer) {
	w.Tag("BERN")
	w.U64(b.src.n)
	w.U64(b.nextID)
}

// LoadState restores the injector to a saved stream position by reseeding the
// source and replaying the recorded number of raw draws. The replay is
// O(draws) — microseconds per billion cycles of low-load simulation — and is
// what makes the position portable: no generator internals are serialized,
// only how far the stream advanced.
func (b *Bernoulli) LoadState(r *snapshot.Reader) error {
	r.Expect("BERN")
	draws := r.U64()
	nextID := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nextID == 0 {
		return fmt.Errorf("traffic: snapshot has invalid next packet ID 0")
	}
	src := &countingSource{src: rand.NewSource(b.seed).(rand.Source64)}
	for i := uint64(0); i < draws; i++ {
		src.src.Uint64()
	}
	src.n = draws
	b.src = src
	b.rng = rand.New(src)
	b.nextID = nextID
	return nil
}

// SaveSpec serializes one queued packet spec.
func SaveSpec(w *snapshot.Writer, p PacketSpec) {
	w.U64(p.ID)
	w.Int(p.Src)
	w.Int(p.Dst)
	w.U16(p.NumFlits)
	w.U8(uint8(p.Kind))
	w.U64(p.Cycle)
}

// LoadSpec decodes one packet spec, validating node indices against the mesh.
func LoadSpec(r *snapshot.Reader, nodes int) (PacketSpec, error) {
	var p PacketSpec
	p.ID = r.U64()
	p.Src = r.Int()
	p.Dst = r.Int()
	p.NumFlits = r.U16()
	p.Kind = flit.Kind(r.U8())
	p.Cycle = r.U64()
	if err := r.Err(); err != nil {
		return p, err
	}
	if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
		return p, fmt.Errorf("traffic: snapshot spec endpoints %d->%d out of range for %d nodes", p.Src, p.Dst, nodes)
	}
	if p.NumFlits < 1 || p.NumFlits > 64 {
		return p, fmt.Errorf("traffic: snapshot spec flit count %d out of [1,64]", p.NumFlits)
	}
	return p, nil
}
