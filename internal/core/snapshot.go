package core

import (
	"dxbar/internal/flit"
	"dxbar/internal/snapshot"
)

// What the paper-core routers persist across cycles — and what they don't.
// Both crossbar fabrics are Reset and re-faulted from the detector at the top
// of every Step, so crossbar kill state is re-derived on the first post-
// restore cycle and never serialized; the detectors themselves are pure
// functions of (fault plan, cycle). What survives a cycle boundary is the
// buffer contents, the fairness counter, and the one-shot event latches that
// keep the flight recorder from re-reporting fault transitions.

func (f *fairness) saveState(w *snapshot.Writer) {
	w.Int(f.count)
	w.U64(f.flips)
}

func (f *fairness) loadState(r *snapshot.Reader) error {
	f.count = r.Int()
	f.flips = r.U64()
	return r.Err()
}

// SaveState serializes the DXbar router's persistent state.
func (d *DXbar) SaveState(w *snapshot.Writer) {
	w.Tag("DXBR")
	for _, b := range d.buffers {
		b.SaveState(w)
	}
	d.fair.saveState(w)
	w.Bool(d.manifestSeen)
	w.Bool(d.detectedSeen)
}

// LoadState restores the DXbar router. The occupied-buffer bitmask is
// re-derived from the restored FIFOs rather than trusted from the stream.
func (d *DXbar) LoadState(r *snapshot.Reader, pool *flit.Pool, nodes int) error {
	r.Expect("DXBR")
	d.bufMask = 0
	for p, b := range d.buffers {
		if err := b.LoadState(r, pool, nodes); err != nil {
			return err
		}
		if b.Len() > 0 {
			d.bufMask |= 1 << uint(p)
		}
	}
	if err := d.fair.loadState(r); err != nil {
		return err
	}
	d.manifestSeen = r.Bool()
	d.detectedSeen = r.Bool()
	return r.Err()
}

// SaveState serializes the unified router's persistent state.
func (u *Unified) SaveState(w *snapshot.Writer) {
	w.Tag("UNIF")
	for _, b := range u.buffers {
		b.SaveState(w)
	}
	u.fair.saveState(w)
	u.alloc.SaveState(w)
	w.Bool(u.manifestSeen)
	w.U64(u.lastSwaps)
}

// LoadState restores the unified router.
func (u *Unified) LoadState(r *snapshot.Reader, pool *flit.Pool, nodes int) error {
	r.Expect("UNIF")
	for _, b := range u.buffers {
		if err := b.LoadState(r, pool, nodes); err != nil {
			return err
		}
	}
	if err := u.fair.loadState(r); err != nil {
		return err
	}
	if err := u.alloc.LoadState(r); err != nil {
		return err
	}
	u.manifestSeen = r.Bool()
	u.lastSwaps = r.U64()
	return r.Err()
}
