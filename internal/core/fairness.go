// Package core implements the paper's contribution: the DXbar dual-crossbar
// router (§II.A) and the unified dual-input single-crossbar router (§II.B),
// including age-based arbitration with the fairness counter (§II.A.2) and
// the crossbar fault tolerance of §II.C.
package core

// FairnessThreshold is the number of consecutive primary-crossbar wins
// (while flits wait in the buffers or injection port) after which priority
// flips to the waiting flits. "After testing with different traffic
// patterns, the threshold is set to four to obtain the best performance"
// (§II.A.2).
const FairnessThreshold = 4

// fairness is the per-router fairness counter: it counts consecutive cycles
// in which incoming (primary) flits won arbitration while flits were
// waiting, and flips priority once the threshold is reached. The counter
// "works only when there are flits waiting in the buffers or in the
// injection port, and it is reset every time a waiting flit wins."
type fairness struct {
	threshold int
	count     int
	flips     uint64
}

func newFairness(threshold int) *fairness {
	if threshold < 1 {
		threshold = 1
	}
	return &fairness{threshold: threshold}
}

// flip reports whether this cycle's allocation must prioritize the waiting
// (buffered/injection) flits over incoming flits.
func (f *fairness) flip(waitersExist bool) bool {
	return waitersExist && f.count >= f.threshold
}

// observe updates the counter after allocation: waiter wins reset it;
// primary wins with waiters present advance it. It reports whether this
// observation flipped priority (the counter just reached its threshold), so
// callers can surface the flip to statistics and the flight recorder.
func (f *fairness) observe(waitersExist, primaryWon, waiterWon bool) bool {
	if !waitersExist {
		return false
	}
	if waiterWon {
		f.count = 0
		return false
	}
	if primaryWon && f.count < f.threshold {
		// A flip cycle that failed to serve any waiter (ports busy) keeps
		// priority flipped rather than re-counting from zero, hence no
		// increment past the threshold.
		f.count++
		if f.count == f.threshold {
			f.flips++
			return true
		}
	}
	return false
}

// Flips returns how many times priority has flipped (diagnostics).
func (f *fairness) Flips() uint64 { return f.flips }
