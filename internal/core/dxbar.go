package core

import (
	"errors"
	"math/bits"

	"dxbar/internal/buffer"
	"dxbar/internal/crossbar"
	"dxbar/internal/events"
	"dxbar/internal/faults"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// BufferDepth is DXbar's per-input serial buffer depth (4 flits, §III.A).
const BufferDepth = 4

// DXbar is the dual-crossbar router of §II.A (Fig. 1):
//
//   - a primary bufferless crossbar with the four link inputs and five
//     outputs, switching incoming flits in their arrival cycle (SA/ST);
//   - a secondary buffered crossbar with five inputs — the four input
//     buffers plus the PE injection port — and five outputs;
//   - demultiplexers steering each arriving flit to the primary crossbar
//     (arbitration winners) or into its buffer (losers), and multiplexers
//     merging the two crossbars' outputs onto the output links.
//
// Arbitration is age-based; incoming flits outrank buffered/injection flits
// except when the fairness counter flips priority (§II.A.2). Buffered flits
// may re-route adaptively ("re-directing the buffered flit to another
// progressive direction", §II.B) under WF routing.
//
// Fault tolerance (§II.C): either crossbar may fail permanently; after the
// BIST detection delay the router degrades into a buffered router through
// the surviving crossbar, using the 2×2 steering crossbars between the
// buffers and the fabrics. During the undetected window, connection
// attempts that hit the dead fabric fail (the allocator's busy/free probe)
// and the affected flits fall back to the buffers or stall.
type DXbar struct {
	env  *sim.Env
	algo routing.Algorithm

	primary   *crossbar.XBar // 4 link inputs × 5 outputs
	secondary *crossbar.XBar // 4 buffers + injection × 5 outputs
	buffers   [flit.NumLinkPorts]*buffer.FIFO

	fair     *fairness
	detector *faults.Detector

	// table is the precomputed form of algo (shared network-wide when the
	// factory passes a *routing.Table); portMask caches the node's link
	// ports and adaptive the algorithm's adaptivity — the fast path's
	// routing queries never touch the Algorithm interface or the mesh.
	table    *routing.Table
	portMask uint8
	adaptive bool

	// portOrder switches arbitration from age-based to static port order
	// (an ablation of the paper's age-based priority, §II.A).
	portOrder bool
	// reference selects the branchy reference switching path over the
	// bit-parallel one (the equivalence suite's oracle).
	reference bool

	// manifestSeen/detectedSeen latch the fault state machine's transitions
	// so the flight recorder sees each exactly once.
	manifestSeen, detectedSeen bool

	// Per-Step scratch, reused across cycles. incoming/waiters serve the
	// reference and degraded paths; ins/ws are the fast path's SoA gathers;
	// bufMask has bit p set while input buffer p is non-empty (maintained
	// at every Push/Pop), so the waiter gather probes only occupied FIFOs.
	bufMask uint8

	// sendable is the fast path's live CanSend bitmask.
	incoming []inFlit
	waiters  []waiter
	ins, ws  PortState
	sendable uint8
}

// inFlit pairs an arriving flit with the input port it was latched on (the
// old per-cycle map[*flit.Flit]flit.Port, flattened onto the hot path).
type inFlit struct {
	f    *flit.Flit
	port flit.Port
}

// secondaryInjIn is the secondary-crossbar input index of the PE injection
// port.
const secondaryInjIn = 4

// NewDXbar builds a dual-crossbar router with the paper's 4-flit buffers.
// threshold is the fairness-counter threshold (use FairnessThreshold for
// the paper's configuration). fault is the router's fault detector (use an
// inactive detector for a healthy router). The engine must be configured
// with BufferDepth 4.
func NewDXbar(env *sim.Env, algo routing.Algorithm, threshold int, fault *faults.Detector) *DXbar {
	return NewDXbarDepth(env, algo, threshold, BufferDepth, fault)
}

// SetPortOrderArbitration switches the router to static port-order
// arbitration instead of age-based (the arbitration-policy ablation). Call
// before the first Step.
func (d *DXbar) SetPortOrderArbitration(on bool) { d.portOrder = on }

// SetReferenceArbitration switches the router to its branchy reference
// switching path (the oracle the bit-parallel fast path is proven
// bit-identical to). Call before the first Step.
func (d *DXbar) SetReferenceArbitration(on bool) { d.reference = on }

// NewDXbarDepth is NewDXbar with a configurable per-input buffer depth
// (buffer-depth ablations). The engine's credit BufferDepth must match.
func NewDXbarDepth(env *sim.Env, algo routing.Algorithm, threshold, depth int, fault *faults.Detector) *DXbar {
	d := &DXbar{
		env:       env,
		algo:      algo,
		primary:   crossbar.NewXBar(flit.NumLinkPorts, flit.NumPorts),
		secondary: crossbar.NewXBar(flit.NumPorts, flit.NumPorts),
		fair:      newFairness(threshold),
		detector:  fault,
		incoming:  make([]inFlit, 0, flit.NumLinkPorts),
		waiters:   make([]waiter, 0, flit.NumPorts),
	}
	if d.detector == nil {
		d.detector = faults.NewDetector(faults.Fault{}, faults.DefaultDetectionDelay, false)
	}
	for p := range d.buffers {
		d.buffers[p] = buffer.NewFIFO(depth)
	}
	mesh := env.Mesh()
	d.table = routing.NewTable(algo, mesh, mesh.Nodes())
	d.portMask = mesh.PortMask(env.Node)
	d.adaptive = algo.Adaptive()
	return d
}

// waiter is a buffered or injection flit competing for the secondary
// crossbar.
type waiter struct {
	f    *flit.Flit
	port flit.Port // buffer index, or Local for the injection port
}

// Step implements sim.Router.
func (d *DXbar) Step(cycle uint64) {
	d.primary.Reset()
	d.secondary.Reset()
	detected := d.applyFaults(cycle)
	if !d.reference && !(detected && (d.primary.Dead() || d.secondary.Dead())) {
		// Healthy (or not-yet-detected / crosspoint-degraded) operation runs
		// the bit-parallel fast path; the degraded whole-fabric modes and the
		// reference oracle share the branchy path below.
		d.stepFast(cycle, detected)
		return
	}
	d.stepBranchy(cycle, detected)
}

// applyFaults advances the fault state machine: manifest faults are applied
// to the fabric models, detection is latched for the flight recorder. It
// returns whether the router's fault has been detected.
func (d *DXbar) applyFaults(cycle uint64) bool {
	env := d.env
	if d.detector.Manifest(cycle) {
		f := d.detector.Fault()
		if !d.manifestSeen {
			d.manifestSeen = true
			env.Events().Record(cycle, events.FaultManifest, env.Node, flit.Invalid, 0, 0, int32(f.Crossbar))
			env.DiagFaultManifest(cycle)
		}
		target := d.primary
		if f.Crossbar == faults.Secondary {
			target = d.secondary
		}
		switch f.Granularity {
		case faults.WholeCrossbar:
			if !target.Dead() {
				target.Kill()
			}
		case faults.Crosspoint:
			target.InjectCrosspointFault(f.In, f.Out)
		}
	}
	detected := d.detector.Detected(cycle)
	if detected && !d.detectedSeen {
		d.detectedSeen = true
		env.Events().Record(cycle, events.FaultDetected, env.Node, flit.Invalid, 0, 0, int32(d.detector.Fault().Crossbar))
		env.DiagFaultDetected(cycle)
	}
	return detected
}

// stepBranchy is the reference switching path (and the only path for the
// degraded whole-fabric modes, which are off the performance-critical
// healthy operation).
func (d *DXbar) stepBranchy(cycle uint64, detected bool) {
	env := d.env

	// Gather incoming flits (age order) and waiting flits.
	incoming := d.incoming[:0]
	for p := flit.North; p <= flit.West; p++ {
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			incoming = append(incoming, inFlit{f: f, port: p})
		}
	}
	env.InMask = 0
	if !d.portOrder {
		sortInFlits(incoming)
	}

	waiters := d.collectWaiters()
	waitersExist := len(waiters) > 0
	flip := d.fair.flip(waitersExist)

	var primaryWon, waiterWon bool
	switch {
	case detected && d.primary.Dead():
		// Degraded mode A: the primary fabric is out; every incoming flit
		// is demuxed into its buffer and the router runs as a buffered
		// router through the secondary crossbar. Only flits already
		// buffered at the start of the cycle compete (a buffer cannot be
		// written and read in the same cycle).
		for _, in := range incoming {
			d.bufferFlit(in.f, in.port, cycle)
		}
		waiterWon = d.allocateWaiters(waiters, detected, cycle)
	case detected && d.secondary.Dead():
		// Degraded mode B: the secondary fabric is out; the 2×2 steering
		// crossbars give the buffers (and, on idle rows, the injection
		// port) access to the primary crossbar. One flit per input row.
		primaryWon, waiterWon = d.allocateDegradedPrimary(incoming, flip, cycle)
	default:
		// Healthy (or not-yet-detected) operation.
		// The pre-collected waiter list is used in both orders: a flit
		// buffered this cycle must not be read back out in the same cycle.
		if flip {
			waiterWon = d.allocateWaiters(waiters, detected, cycle)
			primaryWon = d.allocateIncoming(incoming, cycle)
		} else {
			primaryWon = d.allocateIncoming(incoming, cycle)
			waiterWon = d.allocateWaiters(waiters, detected, cycle)
		}
	}

	if d.fair.observe(waitersExist, primaryWon, waiterWon) {
		env.Stats().FairnessFlip(cycle)
		env.Events().Record(cycle, events.FairnessFlip, env.Node, flit.Invalid, 0, 0, int32(d.fair.Flips()))
	}
}

// stepFast is the bit-parallel healthy-operation path: arrivals and waiters
// are gathered into SoA PortStates and age-sorted by permuting one byte per
// slot, sendability is one bitmask computed per cycle, crossbar probes use
// the enum TryConnect, and every routing query is a table load. It is
// bit-identical to stepBranchy (the equivalence suite drives both).
func (d *DXbar) stepFast(cycle uint64, detected bool) {
	env := d.env

	ins := &d.ins
	ins.Reset()
	for b := env.InMask; b != 0; b &= b - 1 {
		p := flit.Port(bits.TrailingZeros8(b))
		ins.Add(env.In[p], p)
		env.In[p] = nil
	}
	env.InMask = 0
	ws := &d.ws
	ws.Reset()
	for b := d.bufMask; b != 0; b &= b - 1 {
		p := flit.Port(bits.TrailingZeros8(b))
		ws.Add(d.buffers[p].Head(), p)
	}
	if f := env.InjectionHead(); f != nil {
		ws.Add(f, flit.Local)
	}
	if !d.portOrder {
		if ins.N > 1 {
			ins.SortAge()
		}
		if ws.N > 1 {
			ws.SortAge()
		}
	}

	waitersExist := ws.N > 0
	flip := d.fair.flip(waitersExist)
	d.sendable = env.SendableMask()

	var primaryWon, waiterWon bool
	if flip {
		waiterWon = d.allocateWaitersFast(ws, detected, cycle)
		primaryWon = d.allocateIncomingFast(ins, cycle)
	} else {
		primaryWon = d.allocateIncomingFast(ins, cycle)
		waiterWon = d.allocateWaitersFast(ws, detected, cycle)
	}

	if d.fair.observe(waitersExist, primaryWon, waiterWon) {
		env.Stats().FairnessFlip(cycle)
		env.Events().Record(cycle, events.FairnessFlip, env.Node, flit.Invalid, 0, 0, int32(d.fair.Flips()))
	}
}

// allocateIncomingFast is allocateIncoming over the SoA gather: the request
// port comes from the routing table, sendability from the cycle's bitmask,
// and the crosspoint probe from the enum TryConnect.
func (d *DXbar) allocateIncomingFast(ins *PortState, cycle uint64) bool {
	env := d.env
	won := false
	for i := 0; i < ins.N; i++ {
		s := ins.Order[i]
		f, p := ins.Flits[s], ins.Src[s]
		out := d.requestPortFast(f, int(ins.Dst[s]))
		if out != flit.Invalid && d.sendable&(1<<uint(out)) != 0 &&
			d.primary.TryConnect(int(p), int(out)) == crossbar.OK {
			env.ReturnCredit(p)
			env.Events().Record(cycle, events.PrimaryWin, env.Node, p, f.PacketID, f.ID, int32(out))
			d.sendFast(out, f, cycle)
			won = true
			continue
		}
		d.bufferFlit(f, p, cycle)
	}
	return won
}

// requestPortFast is requestPort with the cached port mask and the routing
// table in place of the mesh and Algorithm interface.
func (d *DXbar) requestPortFast(f *flit.Flit, dst int) flit.Port {
	if dst == d.env.Node {
		return flit.Local
	}
	if r := f.Route; r.IsCardinal() && d.portMask&(1<<uint(r)) != 0 {
		return r
	}
	return d.table.RequestAt(d.env.Node, dst)
}

// allocateWaitersFast is allocateWaiters over the SoA gather (same steering
// fallback through the primary fabric after fault detection).
func (d *DXbar) allocateWaitersFast(ws *PortState, detected bool, cycle uint64) bool {
	won := false
	for i := 0; i < ws.N; i++ {
		s := ws.Order[i]
		f, wp := ws.Flits[s], ws.Src[s]
		ports := d.waiterPortsFast(f, int(ws.Dst[s]))
		for k := 0; k < ports.Len(); k++ {
			out := ports.At(k)
			if d.sendable&(1<<uint(out)) == 0 {
				continue
			}
			in := int(wp)
			if wp == flit.Local {
				in = secondaryInjIn
			}
			st := d.secondary.TryConnect(in, int(out))
			if st != crossbar.OK {
				// 2×2 steering fallback through the primary fabric.
				if st != crossbar.Fault || !detected || wp == flit.Local ||
					d.primary.TryConnect(int(wp), int(out)) != crossbar.OK {
					// Busy column, undetected fault, or occupied fallback
					// row: try the next productive port.
					continue
				}
			}
			d.dispatchWaiterFast(f, wp, out, cycle)
			won = true
			break
		}
	}
	return won
}

// waiterPortsFast is waiterPorts backed by the routing table (same
// congestion-aware two-port reorder under adaptive routing).
func (d *DXbar) waiterPortsFast(f *flit.Flit, dst int) routing.PortList {
	if dst == d.env.Node {
		return routing.Ports(flit.Local)
	}
	ports := d.table.ProductiveAt(d.env.Node, dst)
	if d.adaptive && ports.Len() == 2 {
		a, b := d.env.DownstreamCredits(ports.At(0)), d.env.DownstreamCredits(ports.At(1))
		if a != nil && b != nil && b.Available() > a.Available() {
			return routing.Ports(ports.At(1), ports.At(0))
		}
	}
	return ports
}

// dispatchWaiterFast commits a winning waiter on the fast path.
func (d *DXbar) dispatchWaiterFast(f *flit.Flit, wp, out flit.Port, cycle uint64) {
	if wp == flit.Local {
		d.env.ConsumeInjection(cycle)
	} else {
		b := d.buffers[wp]
		b.Pop()
		if b.Len() == 0 {
			d.bufMask &^= 1 << uint(wp)
		}
		d.env.Meter().BufferRead()
		d.env.ReturnCredit(wp)
	}
	d.sendFast(out, f, cycle)
}

// sendFast is sendVia with the table look-ahead and the sendable-mask bit
// clear.
func (d *DXbar) sendFast(out flit.Port, f *flit.Flit, cycle uint64) {
	env := d.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if out != flit.Local {
		f.Route = d.table.RequestAt(env.Neighbor(out), int(f.Dst))
	}
	d.sendable &^= 1 << uint(out)
	env.Send(out, f)
}

// sortInFlits sorts arrivals oldest-first (insertion sort over at most four
// entries; Older is a total order, so the result matches any sort).
func sortInFlits(ins []inFlit) {
	for i := 1; i < len(ins); i++ {
		e := ins[i]
		j := i - 1
		for j >= 0 && e.f.Older(ins[j].f) {
			ins[j+1] = ins[j]
			j--
		}
		ins[j+1] = e
	}
}

// sortWaiters sorts waiters oldest-first (same argument as sortInFlits).
func sortWaiters(ws []waiter) {
	for i := 1; i < len(ws); i++ {
		e := ws[i]
		j := i - 1
		for j >= 0 && e.f.Older(ws[j].f) {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = e
	}
}

// collectWaiters lists the current buffer heads and the injection head into
// the router's reusable scratch.
func (d *DXbar) collectWaiters() []waiter {
	ws := d.waiters[:0]
	for p := flit.North; p <= flit.West; p++ {
		if h := d.buffers[p].Head(); h != nil {
			ws = append(ws, waiter{f: h, port: p})
		}
	}
	if f := d.env.InjectionHead(); f != nil {
		ws = append(ws, waiter{f: f, port: flit.Local})
	}
	if !d.portOrder {
		sortWaiters(ws)
	}
	return ws
}

// allocateIncoming runs the primary-crossbar arbitration: each incoming
// flit, oldest first, attempts its look-ahead output port; winners traverse
// the primary crossbar and return their credit immediately, losers are
// demuxed into their input buffer. Returns whether any incoming flit won.
func (d *DXbar) allocateIncoming(incoming []inFlit, cycle uint64) bool {
	won := false
	for _, in := range incoming {
		f, p := in.f, in.port
		out := d.requestPort(f)
		if out != flit.Invalid && d.env.CanSend(out) {
			if err := d.primary.Connect(int(p), int(out)); err == nil {
				d.env.ReturnCredit(p)
				d.env.Events().Record(cycle, events.PrimaryWin, d.env.Node, p, f.PacketID, f.ID, int32(out))
				d.sendVia(out, f, cycle)
				won = true
				continue
			} else if !errors.Is(err, crossbar.ErrFault) && !errors.Is(err, crossbar.ErrBusy) {
				panic(err)
			}
		}
		d.bufferFlit(f, p, cycle)
	}
	return won
}

// requestPort returns the output an incoming flit asks for: its look-ahead
// route, or Local when it has arrived.
func (d *DXbar) requestPort(f *flit.Flit) flit.Port {
	if int(f.Dst) == d.env.Node {
		return flit.Local
	}
	if f.Route.IsCardinal() && d.env.HasLink(f.Route) {
		return f.Route
	}
	// Defensive: recompute if the look-ahead field is unusable.
	return routing.Request(d.algo, d.env.Mesh(), d.env.Node, int(f.Dst))
}

// allocateWaiters runs the secondary-crossbar arbitration: buffer heads and
// the injection flit, oldest first, may take any free productive output —
// the dual-crossbar design lets them progress "without blocking an incoming
// packet from the primary crossbar as a separate path is available for
// both" (§I). Once a fault has been *detected*, the 2×2 steering crossbars
// between the buffers and the fabrics let a buffered flit whose secondary
// path is faulty traverse the primary crossbar instead, provided its input
// row is idle this cycle (§II.C). Returns whether any waiter won.
func (d *DXbar) allocateWaiters(ws []waiter, detected bool, cycle uint64) bool {
	won := false
	for _, w := range ws {
		ports := d.waiterPorts(w.f)
		for k := 0; k < ports.Len(); k++ {
			out := ports.At(k)
			if !d.env.CanSend(out) {
				continue
			}
			in := int(w.port)
			if w.port == flit.Local {
				in = secondaryInjIn
			}
			err := d.secondary.Connect(in, int(out))
			if err == nil {
				d.dispatchWaiter(w, out, cycle)
				won = true
				break
			}
			if errors.Is(err, crossbar.ErrFault) && detected && w.port != flit.Local {
				// 2×2 steering fallback through the primary fabric.
				if d.primary.Connect(int(w.port), int(out)) == nil {
					d.dispatchWaiter(w, out, cycle)
					won = true
					break
				}
			}
			// Busy column, undetected fault, or occupied fallback row:
			// try the next productive port.
		}
	}
	return won
}

// waiterPorts returns the output ports a waiting flit may use, in
// preference order: Local when arrived, otherwise the routing algorithm's
// productive set (adaptive re-direction under WF). Adaptive choices are
// congestion-aware: the port with more downstream credits comes first, so a
// re-directed flit heads for the less-loaded progressive direction.
func (d *DXbar) waiterPorts(f *flit.Flit) routing.PortList {
	if int(f.Dst) == d.env.Node {
		return routing.Ports(flit.Local)
	}
	ports := d.algo.Productive(d.env.Mesh(), d.env.Node, int(f.Dst))
	if ports.Len() == 2 && d.algo.Adaptive() {
		a, b := d.env.DownstreamCredits(ports.At(0)), d.env.DownstreamCredits(ports.At(1))
		if a != nil && b != nil && b.Available() > a.Available() {
			return routing.Ports(ports.At(1), ports.At(0))
		}
	}
	return ports
}

// dispatchWaiter commits a winning waiter: pops its buffer (or consumes the
// injection queue) and launches the flit.
func (d *DXbar) dispatchWaiter(w waiter, out flit.Port, cycle uint64) {
	if w.port == flit.Local {
		d.env.ConsumeInjection(cycle)
	} else {
		b := d.buffers[w.port]
		b.Pop()
		if b.Len() == 0 {
			d.bufMask &^= 1 << uint(w.port)
		}
		d.env.Meter().BufferRead()
		d.env.ReturnCredit(w.port)
	}
	d.sendVia(out, w.f, cycle)
}

// allocateDegradedPrimary is degraded mode B (secondary dead, detected):
// per input row, one candidate — the incoming flit, or the buffer head when
// no flit arrived (or when the fairness flip prefers waiters) — contends
// for the primary crossbar; incoming flits that are not the row candidate
// are buffered. The injection port may use an idle row.
func (d *DXbar) allocateDegradedPrimary(incoming []inFlit, flip bool, cycle uint64) (primaryWon, waiterWon bool) {
	type rowCand struct {
		f        *flit.Flit
		isWaiter bool
	}
	var rows [flit.NumLinkPorts]rowCand
	for _, in := range incoming {
		rows[in.port] = rowCand{f: in.f}
	}
	for p := flit.North; p <= flit.West; p++ {
		h := d.buffers[p].Head()
		if h == nil {
			continue
		}
		if rows[p].f == nil || flip {
			// The steering crossbar hands the row to the buffered flit;
			// a displaced incoming flit is demuxed into the buffer.
			if rows[p].f != nil {
				d.bufferFlit(rows[p].f, p, cycle)
			}
			rows[p] = rowCand{f: h, isWaiter: true}
		}
	}
	// Age-ordered allocation over the row candidates (insertion sort over a
	// fixed-size array; Older is a total order).
	var order [flit.NumLinkPorts]flit.Port
	n := 0
	for p := flit.North; p <= flit.West; p++ {
		if rows[p].f != nil {
			i := n
			for i > 0 && rows[p].f.Older(rows[order[i-1]].f) {
				order[i] = order[i-1]
				i--
			}
			order[i] = p
			n++
		}
	}
	usedRow := [flit.NumLinkPorts]bool{}
	for _, p := range order[:n] {
		cand := rows[p]
		ports := d.waiterPorts(cand.f)
		done := false
		for k := 0; k < ports.Len(); k++ {
			out := ports.At(k)
			if !d.env.CanSend(out) {
				continue
			}
			if err := d.primary.Connect(int(p), int(out)); err != nil {
				continue
			}
			usedRow[p] = true
			if cand.isWaiter {
				d.buffers[p].Pop()
				if d.buffers[p].Len() == 0 {
					d.bufMask &^= 1 << uint(p)
				}
				d.env.Meter().BufferRead()
				d.env.ReturnCredit(p)
				waiterWon = true
			} else {
				d.env.ReturnCredit(p)
				d.env.Events().Record(cycle, events.PrimaryWin, d.env.Node, p, cand.f.PacketID, cand.f.ID, int32(out))
				primaryWon = true
			}
			d.sendVia(out, cand.f, cycle)
			done = true
			break
		}
		if !done && !cand.isWaiter {
			// A losing incoming flit falls into its buffer as usual.
			d.bufferFlit(cand.f, p, cycle)
		}
	}
	// Injection through an idle row.
	if f := d.env.InjectionHead(); f != nil {
		for p := flit.North; p <= flit.West; p++ {
			if rows[p].f != nil || usedRow[p] {
				continue
			}
			injected := false
			ports := d.waiterPorts(f)
			for k := 0; k < ports.Len(); k++ {
				out := ports.At(k)
				if !d.env.CanSend(out) {
					continue
				}
				if err := d.primary.Connect(int(p), int(out)); err != nil {
					continue
				}
				d.env.ConsumeInjection(cycle)
				d.sendVia(out, f, cycle)
				waiterWon = true
				injected = true
				break
			}
			if injected {
				break
			}
		}
	}
	return primaryWon, waiterWon
}

// bufferFlit demuxes a losing incoming flit into its input buffer.
func (d *DXbar) bufferFlit(f *flit.Flit, p flit.Port, cycle uint64) {
	d.buffers[p].Push(f) // flow control guarantees space; Push panics otherwise
	d.bufMask |= 1 << uint(p)
	f.Buffered++
	d.env.Meter().BufferWrite()
	d.env.Stats().BufferingEvent(cycle)
	d.env.Events().Record(cycle, events.Buffered, d.env.Node, p, f.PacketID, f.ID, int32(d.buffers[p].Len()))
}

// sendVia launches f through output port out, charging the crossbar
// traversal and computing the look-ahead route for the downstream router.
func (d *DXbar) sendVia(out flit.Port, f *flit.Flit, cycle uint64) {
	env := d.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if out != flit.Local {
		next := env.Mesh().Neighbor(env.Node, out)
		f.Route = routing.Request(d.algo, env.Mesh(), next, int(f.Dst))
	}
	env.Send(out, f)
}

// Occupancy returns the number of flits in the secondary-crossbar buffers.
func (d *DXbar) Occupancy() int {
	total := 0
	for _, b := range d.buffers {
		total += b.Len()
	}
	return total
}

// FairnessFlips returns how many times the fairness counter flipped
// priority (diagnostics/ablations).
func (d *DXbar) FairnessFlips() uint64 { return d.fair.Flips() }

// Detector exposes the router's fault detector (tests).
func (d *DXbar) Detector() *faults.Detector { return d.detector }
