package core

import (
	"testing"
	"testing/quick"
)

func TestFairnessNoFlipWithoutWaiters(t *testing.T) {
	f := newFairness(4)
	for i := 0; i < 100; i++ {
		if f.flip(false) {
			t.Fatal("must never flip without waiters")
		}
		f.observe(false, true, false)
	}
	if f.count != 0 {
		t.Error("counter must not advance without waiters")
	}
}

func TestFairnessFlipsAfterThreshold(t *testing.T) {
	f := newFairness(4)
	for i := 0; i < 4; i++ {
		if f.flip(true) {
			t.Fatalf("flip fired early at win %d", i)
		}
		f.observe(true, true, false)
	}
	if !f.flip(true) {
		t.Fatal("flip must fire after 4 consecutive primary wins with waiters")
	}
	if f.Flips() != 1 {
		t.Errorf("flips = %d, want 1", f.Flips())
	}
}

func TestFairnessResetsOnWaiterWin(t *testing.T) {
	f := newFairness(4)
	f.observe(true, true, false)
	f.observe(true, true, false)
	f.observe(true, false, true) // a waiter won
	if f.count != 0 {
		t.Errorf("counter = %d, want 0 after waiter win", f.count)
	}
	f.observe(true, true, true) // waiter win dominates
	if f.count != 0 {
		t.Error("waiter win must reset even when a primary flit also won")
	}
}

func TestFairnessStaysFlippedUntilWaiterWins(t *testing.T) {
	f := newFairness(2)
	f.observe(true, true, false)
	f.observe(true, true, false)
	if !f.flip(true) {
		t.Fatal("should be flipped")
	}
	// Flip cycle where the waiter still could not be served: stay flipped.
	f.observe(true, true, false)
	if !f.flip(true) {
		t.Error("must stay flipped until a waiter wins")
	}
	if f.Flips() != 1 {
		t.Errorf("staying flipped must not recount flips, got %d", f.Flips())
	}
	f.observe(true, false, true)
	if f.flip(true) {
		t.Error("must unflip after the waiter win")
	}
}

func TestFairnessThresholdClamped(t *testing.T) {
	f := newFairness(0)
	f.observe(true, true, false)
	if !f.flip(true) {
		t.Error("threshold below 1 must clamp to 1")
	}
}

// Property: with waiters continuously present and primary always winning,
// the waiters' wait until priority flips is exactly the threshold.
func TestFairnessBoundedWaitProperty(t *testing.T) {
	f := func(thRaw uint8) bool {
		th := int(thRaw)%16 + 1
		fr := newFairness(th)
		for i := 0; i < th; i++ {
			if fr.flip(true) {
				return false
			}
			fr.observe(true, true, false)
		}
		return fr.flip(true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
