package core

import (
	"testing"

	"dxbar/internal/energy"
	"dxbar/internal/faults"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
	"dxbar/internal/stats"
	"dxbar/internal/topology"
	"dxbar/internal/traffic"
)

type scripted struct {
	specs []*traffic.PacketSpec
}

func (s *scripted) Generate(node int, cycle uint64) []*traffic.PacketSpec {
	var out []*traffic.PacketSpec
	for _, sp := range s.specs {
		if sp.Src == node && sp.Cycle == cycle {
			out = append(out, sp)
		}
	}
	return out
}

type harness struct {
	eng     *sim.Engine
	coll    *stats.Collector
	meter   *energy.Meter
	mesh    *topology.Mesh
	routers map[int]sim.Router
}

type opts struct {
	unified   bool
	algo      routing.Algorithm
	threshold int
	plan      *faults.Plan
}

func newHarness(t *testing.T, o opts, specs ...*traffic.PacketSpec) *harness {
	t.Helper()
	mesh := topology.MustMesh(4, 4)
	coll := stats.NewCollector(mesh.Nodes(), 0, 100000)
	meter := energy.NewMeter()
	if o.unified {
		meter = energy.NewUnifiedMeter()
	}
	if o.algo == nil {
		o.algo = routing.DOR{}
	}
	if o.threshold == 0 {
		o.threshold = FairnessThreshold
	}
	if o.plan == nil {
		o.plan = faults.Empty()
	}
	routers := map[int]sim.Router{}
	eng, err := sim.New(sim.Config{
		Mesh: mesh, Meter: meter, Stats: coll,
		Source: &scripted{specs: specs}, BufferDepth: BufferDepth,
	}, func(env *sim.Env) sim.Router {
		f, ok := o.plan.ForRouter(env.Node)
		det := faults.NewDetector(f, o.plan.DetectionDelay, ok)
		var r sim.Router
		if o.unified {
			r = NewUnified(env, o.algo, o.threshold, det)
		} else {
			r = NewDXbar(env, o.algo, o.threshold, det)
		}
		routers[env.Node] = r
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{eng: eng, coll: coll, meter: meter, mesh: mesh, routers: routers}
}

func spec(id uint64, src, dst int, cycle uint64) *traffic.PacketSpec {
	return &traffic.PacketSpec{ID: id, Src: src, Dst: dst, NumFlits: 1, Cycle: cycle}
}

func forBoth(t *testing.T, f func(t *testing.T, unified bool)) {
	t.Run("dxbar", func(t *testing.T) { f(t, false) })
	t.Run("unified", func(t *testing.T) { f(t, true) })
}

// Uncontended traffic must flow bufferless: 2 cycles/hop, zero buffer
// events (paper Fig. 3a: "the network operates similarly to a bufferless
// network ... the best case scenario").
func TestUncontendedFlitNeverBuffers(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		h := newHarness(t, opts{unified: unified}, spec(1, 0, 15, 0))
		h.eng.Run(20)
		r := h.coll.Results()
		if r.Packets != 1 {
			t.Fatalf("packets = %d", r.Packets)
		}
		if r.AvgLatency != 12 {
			t.Errorf("latency = %v, want 12 (6 hops x 2 cycles)", r.AvgLatency)
		}
		c := h.meter.Snapshot()
		if c.BufferWrites != 0 || c.BufferReads != 0 {
			t.Errorf("uncontended flit buffered: %d writes / %d reads", c.BufferWrites, c.BufferReads)
		}
	})
}

// Four flits crossing a router toward four different outputs all switch in
// the same cycle (paper Fig. 3a).
func TestFourWayCrossingNoConflict(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		h := newHarness(t, opts{unified: unified},
			spec(1, 1, 13, 0), // S at node 5
			spec(2, 4, 6, 0),  // E at node 5
			spec(3, 6, 4, 0),  // W at node 5
			spec(4, 9, 1, 0),  // N at node 5
		)
		h.eng.Run(30)
		r := h.coll.Results()
		if r.Packets != 4 {
			t.Fatalf("packets = %d, want 4", r.Packets)
		}
		if c := h.meter.Snapshot(); c.BufferWrites != 0 {
			t.Errorf("crossing flits must not buffer, got %d writes", c.BufferWrites)
		}
	})
}

// A conflict buffers the younger flit in the secondary crossbar instead of
// deflecting or dropping it (paper Fig. 3b), and it proceeds when the port
// frees (Fig. 3d).
func TestConflictBuffersLoser(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		h := newHarness(t, opts{unified: unified},
			spec(1, 1, 9, 0),  // older: wins S at node 5
			spec(2, 6, 13, 0), // younger (DOR: W to 5, then S): buffered at 5
		)
		h.eng.Run(40)
		r := h.coll.Results()
		if r.Packets != 2 {
			t.Fatalf("packets = %d, want 2", r.Packets)
		}
		if r.DeflectionsPerPacket != 0 || r.DroppedFlits != 0 {
			t.Error("DXbar must neither deflect nor drop")
		}
		c := h.meter.Snapshot()
		if c.BufferWrites != 1 || c.BufferReads != 1 {
			t.Errorf("expected exactly one buffering, got %d/%d", c.BufferWrites, c.BufferReads)
		}
		// Each flit takes minimal hops despite the conflict: 1->9 is 2
		// hops, 6->13 is 3, so the average is 2.5.
		if r.AvgHops != 2.5 {
			t.Errorf("avg hops = %v, want 2.5 (minimal)", r.AvgHops)
		}
	})
}

// Paper Fig. 3c: the flit arriving right after a buffered flit sees a free
// primary path and proceeds without delay — buffering one flit must not
// back-pressure the next.
func TestNoInstantBackPressure(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		h := newHarness(t, opts{unified: unified},
			spec(1, 1, 9, 0),  // occupies S at node 5 (cycle 2)
			spec(2, 6, 13, 0), // buffered at node 5 (cycle 2)
			spec(3, 6, 4, 1),  // arrives node 5 at cycle 3: W output free, proceeds
		)
		h.eng.Run(40)
		r := h.coll.Results()
		if r.Packets != 3 {
			t.Fatalf("packets = %d, want 3", r.Packets)
		}
		c := h.meter.Snapshot()
		if c.BufferWrites != 1 {
			t.Errorf("only the conflicting flit may buffer, got %d writes", c.BufferWrites)
		}
	})
}

// Paper Fig. 3d: a buffered flit leaves through the secondary crossbar in
// the same cycle an incoming flit from the same input port crosses the
// primary — impossible in single-crossbar designs.
func TestBufferedAndIncomingSameInputSameCycle(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		// Stream A (older) occupies S at node 5 for cycles 2..4:
		//   1 -> 9 injected at 0, 1, 2.
		// Flit B: 6 -> 13 arrives at 5 cycle 2, buffered (S taken).
		// Flit C: 6 -> 4 arrives at 5 cycle 4 via the same W input; by
		// then B is at the buffer head wanting S (still busy at 4? stream
		// ends: last stream flit passes S at cycle 4). B leaves at cycle 5
		// through S while C proceeds W->... both from input port East of
		// node 5? 6->5 arrives on 5's East input. C wants W at 5.
		h := newHarness(t, opts{unified: unified},
			spec(1, 1, 9, 0),
			spec(2, 1, 9, 1),
			spec(3, 1, 9, 2),
			spec(4, 6, 13, 0), // buffered behind the stream
			spec(5, 6, 4, 2),  // same input port as the buffered flit
		)
		h.eng.Run(60)
		r := h.coll.Results()
		if r.Packets != 5 {
			t.Fatalf("packets = %d, want 5", r.Packets)
		}
		if r.DroppedFlits != 0 {
			t.Error("no drops allowed")
		}
	})
}

// Age-based priority: the older incoming flit wins the conflict.
func TestOlderIncomingWins(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		h := newHarness(t, opts{unified: unified},
			spec(10, 6, 13, 0), // injected first => older
			spec(11, 1, 9, 1),  // injected later => younger
		)
		// Flit 10 reaches node 5 at cycle 2 (W hop), wants S.
		// Flit 11 reaches node 5 at cycle 3, wants S: no conflict (cycles
		// differ) — instead inject both at same arrival: 10 at c0 from 6
		// (arrives c2), 11 from 1 at c0 (arrives c2), same cycle: 10 older.
		h2 := newHarness(t, opts{unified: unified},
			spec(10, 6, 13, 0),
			spec(11, 1, 9, 0),
		)
		h2.eng.Run(60)
		r := h2.coll.Results()
		if r.Packets != 2 {
			t.Fatalf("packets = %d", r.Packets)
		}
		// The younger (11, same cycle but higher ID) must be the buffered
		// one; verify exactly one buffering happened.
		if c := h2.meter.Snapshot(); c.BufferWrites != 1 {
			t.Errorf("buffer writes = %d, want 1", c.BufferWrites)
		}
		h.eng.Run(60)
		if h.coll.Results().Packets != 2 {
			t.Error("staggered pair must deliver")
		}
	})
}

// The injection port has buffered-class priority: it injects whenever the
// desired output port is not occupied (paper Fig. 3c) and is never starved
// forever thanks to the fairness counter.
func TestInjectionUnderContention(t *testing.T) {
	forBoth(t, func(t *testing.T, unified bool) {
		specs := []*traffic.PacketSpec{}
		id := uint64(1)
		// A continuous older stream through node 5 heading South.
		for c := uint64(0); c < 20; c++ {
			specs = append(specs, spec(id, 1, 9, c))
			id++
		}
		// Node 5 wants to inject southward too.
		specs = append(specs, spec(100, 5, 13, 5))
		h := newHarness(t, opts{unified: unified}, specs...)
		h.eng.Run(150)
		r := h.coll.Results()
		if r.Packets != uint64(len(specs)) {
			t.Fatalf("packets = %d, want %d (injection starved?)", r.Packets, len(specs))
		}
	})
}

// With threshold = 1 the fairness flip happens immediately; with a huge
// threshold the stream monopolizes the port longer. Injection latency must
// reflect that ordering.
func TestFairnessThresholdEffect(t *testing.T) {
	lat := func(threshold int) float64 {
		specs := []*traffic.PacketSpec{}
		id := uint64(1)
		for c := uint64(0); c < 30; c++ {
			specs = append(specs, spec(id, 1, 9, c))
			id++
		}
		specs = append(specs, spec(100, 5, 13, 2))
		h := newHarness(t, opts{threshold: threshold}, specs...)
		h.eng.Run(200)
		return float64(h.coll.Results().MaxLatency)
	}
	small, large := lat(1), lat(1000)
	if small >= large {
		t.Errorf("threshold 1 max latency %v must beat threshold 1000 %v", small, large)
	}
}

// Fault tolerance: a primary-crossbar failure degrades the router to
// buffered operation; traffic still flows minimally.
func TestPrimaryCrossbarFault(t *testing.T) {
	plan := planWith(t, 5, faults.Primary, 0)
	h := newHarness(t, opts{plan: plan},
		spec(1, 4, 6, 0),  // crosses node 5 eastward
		spec(2, 1, 13, 3), // crosses node 5 southward
	)
	h.eng.Run(80)
	r := h.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2", r.Packets)
	}
	// Flits crossing node 5 must have been buffered there.
	if c := h.meter.Snapshot(); c.BufferWrites == 0 {
		t.Error("primary fault must force buffering")
	}
	// Routes stay minimal: 4->6 is 2 hops, 1->13 is 3.
	if r.AvgHops != 2.5 {
		t.Errorf("avg hops = %v, want 2.5 (routes stay minimal)", r.AvgHops)
	}
}

// Fault tolerance: a secondary-crossbar failure leaves the bufferless path
// intact; conflicting flits use the buffers and drain through the primary
// crossbar via the 2x2 steering.
func TestSecondaryCrossbarFault(t *testing.T) {
	plan := planWith(t, 5, faults.Secondary, 0)
	h := newHarness(t, opts{plan: plan},
		spec(1, 1, 9, 0),  // wins S at node 5
		spec(2, 6, 13, 0), // buffered at node 5, must drain via primary
	)
	h.eng.Run(100)
	r := h.coll.Results()
	if r.Packets != 2 {
		t.Fatalf("packets = %d, want 2 (buffered flit stuck?)", r.Packets)
	}
}

// During the BIST detection window flits are not lost — they wait or
// buffer, and everything still arrives.
func TestDetectionWindowLossless(t *testing.T) {
	plan := planWith(t, 5, faults.Primary, 2) // manifests mid-traffic
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	for c := uint64(0); c < 10; c++ {
		specs = append(specs, spec(id, 4, 7, c)) // stream through node 5,6
		id++
	}
	h := newHarness(t, opts{plan: plan}, specs...)
	h.eng.Run(200)
	if got := h.coll.Results().Packets; got != uint64(len(specs)) {
		t.Fatalf("packets = %d, want %d", got, len(specs))
	}
}

// The unified allocator's swap logic fires when the two same-port grants
// are ordered against the segmentation direction; traffic is unaffected.
func TestUnifiedSwapOccursAndIsHarmless(t *testing.T) {
	// Stream that repeatedly creates same-input dual traversals: an
	// incoming flit to a high output with a buffered flit to a low output
	// and vice versa. Rather than constructing one exact cycle, run a hot
	// mix through one router and assert deliveries + swap counter >= 0.
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	for c := uint64(0); c < 30; c++ {
		specs = append(specs, spec(id, 1, 9, c)) // S through 5
		id++
		specs = append(specs, spec(id, 6, 4, c)) // W through 5
		id++
		specs = append(specs, spec(id, 6, 13, c)) // W then S: conflicts at 5
		id++
	}
	h := newHarness(t, opts{unified: true}, specs...)
	h.eng.Run(400)
	r := h.coll.Results()
	if r.Packets != uint64(len(specs)) {
		t.Fatalf("packets = %d, want %d", r.Packets, len(specs))
	}
	u := h.routers[5].(*Unified)
	t.Logf("swaps at node 5: %d, fairness flips: %d", u.Swaps(), u.FairnessFlips())
}

// planWith builds a single-router fault plan by searching seeds (NewPlan
// randomizes placement; tests need a specific router/crossbar).
func planWith(t *testing.T, router int, cb faults.CrossbarID, manifest uint64) *faults.Plan {
	t.Helper()
	for seed := int64(0); seed < 10000; seed++ {
		p, err := faults.NewPlan(16, 1.0/16.0, manifest, seed)
		if err != nil {
			t.Fatal(err)
		}
		if f, ok := p.ForRouter(router); ok && f.Crossbar == cb {
			return p
		}
	}
	t.Fatal("no seed placed the requested fault")
	return nil
}

// Occupancy accessor must reflect buffered flits.
func TestOccupancyAccessor(t *testing.T) {
	h := newHarness(t, opts{},
		spec(1, 1, 9, 0),
		spec(2, 6, 13, 0),
	)
	h.eng.Run(3) // flit 2 buffered at node 5 at cycle 2
	d := h.routers[5].(*DXbar)
	if d.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", d.Occupancy())
	}
	h.eng.Run(40)
	if d.Occupancy() != 0 {
		t.Errorf("occupancy must drain, got %d", d.Occupancy())
	}
}

// WF adaptive re-direction of buffered flits: with the preferred direction
// congested, a buffered flit departs through the alternate productive port
// (the §II.B "re-directing the buffered flit" behaviour), and the
// congestion-aware ordering prefers the port with more credits.
func TestWFWaiterRedirection(t *testing.T) {
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	// Keep the South output of node 5 saturated with older traffic.
	for c := uint64(0); c < 25; c++ {
		specs = append(specs, spec(id, 1, 9, c))
		id++
	}
	// An SE-bound flit conflicts at node 5 and must leave via East instead.
	specs = append(specs, spec(500, 4, 14, 0)) // (0,1)->(2,3): WF allows S and E at 5
	h := newHarness(t, opts{algo: routing.WestFirst{}}, specs...)
	h.eng.Run(200)
	r := h.coll.Results()
	if r.Packets != uint64(len(specs)) {
		t.Fatalf("packets = %d, want %d", r.Packets, len(specs))
	}
	// The redirected flit still took a minimal route: 4 hops.
	if r.MaxLatency > 120 {
		t.Errorf("redirected flit waited too long (max latency %d)", r.MaxLatency)
	}
}

// Port-order arbitration is a strictly weaker policy: same delivery
// guarantees, different winners.
func TestPortOrderArbitration(t *testing.T) {
	specs := []*traffic.PacketSpec{
		spec(1, 1, 9, 0),
		spec(2, 6, 13, 0),
	}
	h := newHarness(t, opts{}, specs...)
	d := h.routers[5].(*DXbar)
	d.SetPortOrderArbitration(true)
	h.eng.Run(60)
	if got := h.coll.Results().Packets; got != 2 {
		t.Fatalf("packets = %d, want 2", got)
	}
}

// Accessor smoke tests.
func TestAccessors(t *testing.T) {
	h := newHarness(t, opts{}, spec(1, 0, 15, 0))
	h.eng.Run(20)
	d := h.routers[5].(*DXbar)
	if d.Detector() == nil {
		t.Error("Detector accessor nil")
	}
	_ = d.FairnessFlips()
	hu := newHarness(t, opts{unified: true}, spec(1, 0, 15, 0))
	hu.eng.Run(20)
	u := hu.routers[5].(*Unified)
	if u.Occupancy() != 0 {
		t.Error("idle unified router must have empty buffers")
	}
}

// Degraded mode B with WF routing: buffered flits adapt through the primary
// crossbar via the 2x2 steering, and injection uses idle rows.
func TestSecondaryFaultWithWFAndInjection(t *testing.T) {
	plan := planWith(t, 5, faults.Secondary, 0)
	specs := []*traffic.PacketSpec{}
	id := uint64(1)
	// Conflicting streams through node 5 force buffering there, and node 5
	// itself injects (which needs an idle primary row in degraded mode B).
	for c := uint64(0); c < 15; c++ {
		specs = append(specs, spec(id, 1, 9, c))
		id++
		specs = append(specs, spec(id, 6, 12, c)) // WF-adaptive at node 5
		id++
	}
	specs = append(specs, spec(900, 5, 15, 3)) // injection at the faulty router
	h := newHarness(t, opts{algo: routing.WestFirst{}, plan: plan}, specs...)
	h.eng.Run(400)
	if got := h.coll.Results().Packets; got != uint64(len(specs)) {
		t.Fatalf("packets = %d, want %d (degraded-B starvation?)", got, len(specs))
	}
}

// A detected secondary-crosspoint fault reroutes the blocked waiter through
// the primary fabric (2x2 steering, §II.C).
func TestCrosspointSteeringFallback(t *testing.T) {
	// Find a seed whose crosspoint plan breaks node 5's secondary
	// crosspoint for input East (flits from node 6) to output South.
	var plan *faults.Plan
	for seed := int64(0); seed < 30000; seed++ {
		p, err := faults.NewCrosspointPlan(16, 1.0/16.0, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		if f, ok := p.ForRouter(5); ok && f.Crossbar == faults.Secondary &&
			f.In == int(flit.East) && f.Out == int(flit.South) {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Skip("no seed produced the wanted crosspoint")
	}
	specs := []*traffic.PacketSpec{
		spec(1, 1, 9, 0),  // wins S at node 5
		spec(2, 6, 13, 0), // buffered at node 5 (East input), wants S: the broken crosspoint
	}
	h := newHarness(t, opts{plan: plan}, specs...)
	h.eng.Run(100)
	if got := h.coll.Results().Packets; got != 2 {
		t.Fatalf("packets = %d, want 2 (steering fallback failed)", got)
	}
}
