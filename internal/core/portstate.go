package core

import "dxbar/internal/flit"

// PortState is the structure-of-arrays gather of one router's per-cycle
// arbitration candidates: instead of a slice of (flit pointer, port) pairs
// that every comparison chases through the heap, the fields age-based
// arbitration actually touches — the deflection-priority key, the
// destination node, the source port — live in small parallel arrays on the
// router, with a validity bitmask over the slots. Sorting by age then moves
// one byte per slot (the Order permutation) and compares words that sit on
// the same cache line, and "which slots hold flits" is one mask test.
//
// A PortState is per-router scratch, reset and refilled every cycle; the
// arrays are sized by the port count, which bounds the candidates of every
// design.
type PortState struct {
	// Flits holds the candidate in each filled slot; Src its input port.
	Flits [flit.NumPorts]*flit.Flit
	Src   [flit.NumPorts]flit.Port
	// Dst caches the flit's destination node; Key/ID its age-arbitration key
	// (injection cycle, then flit ID — the total order of flit.Older).
	Dst [flit.NumPorts]int32
	Key [flit.NumPorts]uint64
	ID  [flit.NumPorts]uint64
	// Order is the age-sorted slot permutation (valid after SortAge; filled
	// with insertion order otherwise). Valid has bit s set when slot s is
	// filled; N counts filled slots.
	Order [flit.NumPorts]int8
	Valid uint8
	N     int
}

// Reset empties the state (two stores).
func (ps *PortState) Reset() {
	ps.Valid = 0
	ps.N = 0
}

// Add fills the next slot with f arriving from src and returns the slot
// index. Order is extended in insertion order (callers that skip SortAge get
// first-come order, which the static port-order ablation relies on).
func (ps *PortState) Add(f *flit.Flit, src flit.Port) int {
	s := ps.N
	ps.Flits[s] = f
	ps.Src[s] = src
	ps.Dst[s] = int32(f.Dst)
	ps.Key[s] = f.InjectionCycle
	ps.ID[s] = f.ID
	ps.Order[s] = int8(s)
	ps.Valid |= 1 << uint(s)
	ps.N = s + 1
	return s
}

// SortAge sorts Order oldest-first by (Key, ID) — bit-identical to sorting
// the flits with flit.SortByAge, since both realize the same total order.
// Insertion sort over at most NumPorts slots.
func (ps *PortState) SortAge() {
	for i := 1; i < ps.N; i++ {
		s := ps.Order[i]
		k, id := ps.Key[s], ps.ID[s]
		j := i - 1
		for j >= 0 {
			t := ps.Order[j]
			if ps.Key[t] < k || (ps.Key[t] == k && ps.ID[t] < id) {
				break
			}
			ps.Order[j+1] = t
			j--
		}
		ps.Order[j+1] = s
	}
}
