package core

import (
	"dxbar/internal/arbiter"
	"dxbar/internal/buffer"
	"dxbar/internal/crossbar"
	"dxbar/internal/events"
	"dxbar/internal/faults"
	"dxbar/internal/flit"
	"dxbar/internal/routing"
	"dxbar/internal/sim"
)

// Unified is the dual-input single-crossbar router of §II.B (Fig. 4): the
// primary and secondary fabrics are merged into one 5×5 transmission-gate
// crossbar, so the bufferless (incoming) and buffered candidate of the same
// input port can traverse simultaneously to different outputs. Allocation
// uses the augmented separable output-first allocator with two serial V:1
// arbiters per input and the conflict-free swap logic (arbiter.DualInput).
//
// Buffering, fairness and look-ahead behaviour match DXbar; only the
// switch fabric and allocator differ — the paper reports "similar
// performance as dual crossbar architecture" with ~25% instead of ~33% area
// overhead, at 15 pJ/flit instead of 13 pJ/flit switching energy (pair the
// router with energy.NewUnifiedMeter).
type Unified struct {
	env  *sim.Env
	algo routing.Algorithm

	xbar    *crossbar.Unified
	alloc   *arbiter.DualInput
	buffers [flit.NumLinkPorts]*buffer.FIFO

	fair     *fairness
	detector *faults.Detector

	// table is the precomputed form of algo (shared network-wide when the
	// factory passes a *routing.Table); portMask caches the node's links.
	table    *routing.Table
	portMask uint8

	// reference selects the allocator's branchy stage-1 arbitration
	// (DualInput.Allocate) over the bit-parallel one (AllocateFast).
	reference bool

	// manifestSeen latches the fault manifestation for the flight recorder;
	// lastSwaps tracks the allocator's cumulative swap count so each cycle's
	// delta can be recorded.
	manifestSeen bool
	lastSwaps    uint64

	// Per-Step scratch, reused across cycles.
	waiters []waiter
	reqs    []arbiter.DualRequest
}

// NewUnified builds a unified dual-input crossbar router. The engine must
// be configured with BufferDepth 4 and an energy.NewUnifiedMeter.
func NewUnified(env *sim.Env, algo routing.Algorithm, threshold int, fault *faults.Detector) *Unified {
	u := &Unified{
		env:      env,
		algo:     algo,
		xbar:     crossbar.NewUnified(flit.NumPorts),
		alloc:    arbiter.NewDualInput(flit.NumPorts, flit.NumPorts),
		fair:     newFairness(threshold),
		detector: fault,
		waiters:  make([]waiter, 0, flit.NumPorts),
		reqs:     make([]arbiter.DualRequest, flit.NumPorts),
	}
	if u.detector == nil {
		u.detector = faults.NewDetector(faults.Fault{}, faults.DefaultDetectionDelay, false)
	}
	for p := range u.buffers {
		u.buffers[p] = buffer.NewFIFO(BufferDepth)
	}
	mesh := env.Mesh()
	u.table = routing.NewTable(algo, mesh, mesh.Nodes())
	u.portMask = mesh.PortMask(env.Node)
	return u
}

// SetReferenceArbitration switches the router to the allocator's branchy
// reference arbitration (the oracle AllocateFast is proven identical to).
// Call before the first Step.
func (u *Unified) SetReferenceArbitration(on bool) { u.reference = on }

// Step implements sim.Router.
func (u *Unified) Step(cycle uint64) {
	env := u.env
	u.xbar.Reset()

	// The unified fabric is a single point of failure; §II.C limits the
	// fault study to the dual-crossbar design, but the model still honours
	// an injected fault: a dead unified crossbar stops switching entirely
	// (arrivals are buffered while space lasts, then back-pressure stalls
	// the neighbourhood — the single-fabric design has no fallback path).
	if u.detector.Manifest(cycle) {
		if !u.manifestSeen {
			u.manifestSeen = true
			env.Events().Record(cycle, events.FaultManifest, env.Node, flit.Invalid, 0, 0, int32(u.detector.Fault().Crossbar))
			// The unified design has no detection path (§II.C studies
			// fault tolerance on the dual-crossbar only), so only the
			// manifest side of the diag latency window is reported.
			env.DiagFaultManifest(cycle)
		}
		if !u.xbar.Dead() {
			u.xbar.Kill()
		}
	}

	// Gather incoming flits and waiting flits.
	var arrived [flit.NumLinkPorts]*flit.Flit
	for p := flit.North; p <= flit.West; p++ {
		if f := env.In[p]; f != nil {
			env.In[p] = nil
			arrived[p] = f
		}
	}
	env.InMask = 0
	waiters := u.collectWaiters()
	waitersExist := len(waiters) > 0
	flip := u.fair.flip(waitersExist)

	// Build the dual-input request vectors. Sub-input 0 (bufferless, low
	// entry) carries the incoming flit's single look-ahead request;
	// sub-input 1 (buffered, high entry) carries the buffer head's (or, on
	// port index 4, the injection flit's) full productive set. The request
	// slice is the router's reusable scratch.
	// Sendability is one bitmask for the whole allocation round: no flit is
	// launched until after Allocate, so the mask computed here equals a
	// CanSend call at every request-build probe.
	sendable := uint64(env.SendableMask())
	reqs := u.reqs
	for i := range reqs {
		reqs[i] = arbiter.DualRequest{}
	}
	var waiterAt [flit.NumPorts]*waiter
	for p := flit.North; p <= flit.West; p++ {
		if f := arrived[p]; f != nil {
			out := u.requestPort(f)
			if out != flit.Invalid && sendable&(1<<uint(out)) != 0 {
				reqs[p].Want[arbiter.SubBufferless] = 1 << uint(out)
				reqs[p].Age[arbiter.SubBufferless] = f.InjectionCycle
			}
		}
	}
	for i := range waiters {
		w := &waiters[i]
		idx := int(w.port)
		if w.port == flit.Local {
			idx = secondaryInjIn
		}
		var mask uint64
		ports := u.waiterPorts(w.f)
		for k := 0; k < ports.Len(); k++ {
			mask |= 1 << uint(ports.At(k))
		}
		mask &= sendable
		if mask != 0 {
			reqs[idx].Want[arbiter.SubBuffered] = mask
			reqs[idx].Age[arbiter.SubBuffered] = w.f.InjectionCycle
			waiterAt[idx] = w
		}
	}

	var grants []arbiter.DualGrant
	if u.reference {
		grants = u.alloc.Allocate(reqs, flip)
	} else {
		grants = u.alloc.AllocateFast(reqs, flip)
	}
	if swaps := u.alloc.Swaps(); swaps != u.lastSwaps {
		env.Events().Record(cycle, events.Swap, env.Node, flit.Invalid, 0, 0, int32(swaps-u.lastSwaps))
		u.lastSwaps = swaps
	}

	var primaryWon, waiterWon bool
	for p := 0; p < flit.NumPorts; p++ {
		gIncoming := grants[p][arbiter.SubBufferless]
		gBuffered := grants[p][arbiter.SubBuffered]
		// Conflict-free swap (§II.B.2): when both sub-inputs won, the flit
		// bound for the lower output column must enter from the low end.
		entIncoming, entBuffered := crossbar.EntryLow, crossbar.EntryHigh
		if gIncoming != -1 && gBuffered != -1 && gIncoming > gBuffered {
			entIncoming, entBuffered = crossbar.EntryHigh, crossbar.EntryLow
		}
		if gIncoming != -1 && p < flit.NumLinkPorts {
			f := arrived[p]
			if u.xbar.TryConnect(p, entIncoming, gIncoming) == crossbar.OK {
				env.ReturnCredit(flit.Port(p))
				env.Events().Record(cycle, events.PrimaryWin, env.Node, flit.Port(p), f.PacketID, f.ID, int32(gIncoming))
				u.sendVia(flit.Port(gIncoming), f, cycle)
				arrived[p] = nil
				primaryWon = true
			}
		}
		if gBuffered != -1 && waiterAt[p] != nil {
			w := waiterAt[p]
			if u.xbar.TryConnect(p, entBuffered, gBuffered) == crossbar.OK {
				u.dispatchWaiter(*w, flit.Port(gBuffered), cycle)
				waiterWon = true
			}
		}
	}

	// Losing (or fault-blocked) incoming flits are demuxed into their
	// buffers, exactly as in the dual-crossbar design.
	for p := flit.North; p <= flit.West; p++ {
		if f := arrived[p]; f != nil {
			u.bufferFlit(f, p, cycle)
		}
	}

	if u.fair.observe(waitersExist, primaryWon, waiterWon) {
		env.Stats().FairnessFlip(cycle)
		env.Events().Record(cycle, events.FairnessFlip, env.Node, flit.Invalid, 0, 0, int32(u.fair.Flips()))
	}
}

func (u *Unified) collectWaiters() []waiter {
	ws := u.waiters[:0]
	for p := flit.North; p <= flit.West; p++ {
		if h := u.buffers[p].Head(); h != nil {
			ws = append(ws, waiter{f: h, port: p})
		}
	}
	if f := u.env.InjectionHead(); f != nil {
		ws = append(ws, waiter{f: f, port: flit.Local})
	}
	sortWaiters(ws)
	return ws
}

func (u *Unified) requestPort(f *flit.Flit) flit.Port {
	if int(f.Dst) == u.env.Node {
		return flit.Local
	}
	if r := f.Route; r.IsCardinal() && u.portMask&(1<<uint(r)) != 0 {
		return r
	}
	return u.table.RequestAt(u.env.Node, int(f.Dst))
}

func (u *Unified) waiterPorts(f *flit.Flit) routing.PortList {
	if int(f.Dst) == u.env.Node {
		return routing.Ports(flit.Local)
	}
	return u.table.ProductiveAt(u.env.Node, int(f.Dst))
}

func (u *Unified) dispatchWaiter(w waiter, out flit.Port, cycle uint64) {
	if w.port == flit.Local {
		u.env.ConsumeInjection(cycle)
	} else {
		u.buffers[w.port].Pop()
		u.env.Meter().BufferRead()
		u.env.ReturnCredit(w.port)
	}
	u.sendVia(out, w.f, cycle)
}

func (u *Unified) bufferFlit(f *flit.Flit, p flit.Port, cycle uint64) {
	u.buffers[p].Push(f)
	f.Buffered++
	u.env.Meter().BufferWrite()
	u.env.Stats().BufferingEvent(cycle)
	u.env.Events().Record(cycle, events.Buffered, u.env.Node, p, f.PacketID, f.ID, int32(u.buffers[p].Len()))
}

func (u *Unified) sendVia(out flit.Port, f *flit.Flit, cycle uint64) {
	env := u.env
	env.Meter().CrossbarTraversal()
	env.Stats().RoutedEvent(cycle)
	if out != flit.Local {
		f.Route = u.table.RequestAt(env.Neighbor(out), int(f.Dst))
	}
	env.Send(out, f)
}

// Occupancy returns the number of buffered flits.
func (u *Unified) Occupancy() int {
	total := 0
	for _, b := range u.buffers {
		total += b.Len()
	}
	return total
}

// Swaps returns the allocator's conflict-free swap count.
func (u *Unified) Swaps() uint64 { return u.alloc.Swaps() }

// FairnessFlips returns the fairness counter's flip count.
func (u *Unified) FairnessFlips() uint64 { return u.fair.Flips() }
