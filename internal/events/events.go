// Package events is the runtime flight recorder: a fixed-capacity,
// overwrite-oldest ring buffer of typed per-flit events recorded from the
// routers and the engine while a simulation runs. It answers the question
// aggregate statistics cannot — "what happened to *this* packet at *this*
// router" — for debugging livelock, starvation, fault degradation and
// tail-latency outliers in deflection networks.
//
// Not to be confused with internal/trace, which captures and replays the
// *input* workload (the packets a Source generates). This package records
// the *runtime* behaviour of the network while it switches those packets.
//
// The recorder is built for bounded overhead: it is off by default (a nil
// *Recorder is a valid, inert recorder — every method is nil-safe), and when
// on it records into a preallocated ring with zero allocations per event —
// no interfaces, no strings, no maps on the hot path. A per-kind bitmask
// filters at record time, and a per-router × per-kind counter matrix is
// maintained alongside the ring so whole-run counts survive ring overwrite.
package events

import (
	"fmt"
	"strings"

	"dxbar/internal/flit"
)

// Kind is the type of one recorded event.
type Kind uint8

// The event kinds, covering every per-flit decision point of the router
// designs plus the per-router control-plane transitions.
const (
	// Inject: a flit left its source injection queue and entered the
	// network. Detail is the queueing delay in cycles (entry − generation).
	Inject Kind = iota
	// PrimaryWin: an incoming flit won arbitration and switched through the
	// primary (bufferless) path in its arrival cycle. Port is the input
	// port, Detail the output port (DXbar, unified).
	PrimaryWin
	// Buffered: a flit lost arbitration (or hit a dead fabric) and was
	// demuxed into a buffer. Port is the input port, Detail the buffer
	// occupancy after the write (DXbar, unified, buffered baselines, AFC).
	Buffered
	// Retransmit: a source retransmission was scheduled for the flit. Node
	// is the flit's source, Detail the delay in cycles until reinjection
	// (SCARAB NACK path, fault recovery).
	Retransmit
	// Deflect: a flit was assigned a non-productive output port. Port is
	// the port it was deflected to, Detail its total deflections so far
	// (Flit-Bless, AFC bufferless mode).
	Deflect
	// Drop: a flit was dropped at the router. Detail is the NACK return
	// distance to the source in hops (SCARAB).
	Drop
	// Swap: the unified allocator's conflict-free swap logic exchanged the
	// crossbar entry points of the two sub-inputs of one port. Detail is
	// the number of swaps this cycle; no flit is attached.
	Swap
	// FairnessFlip: the router's fairness counter reached its threshold and
	// flipped priority to the waiting flits (§II.A.2). Detail is the
	// router's total flips so far; no flit is attached.
	FairnessFlip
	// FaultManifest: an injected crossbar fault physically manifested at
	// this router. Detail is the faulty fabric (0 primary, 1 secondary); no
	// flit is attached.
	FaultManifest
	// FaultDetected: BIST flagged the manifest fault; the router degrades
	// into single-fabric operation (§II.C). Detail as FaultManifest.
	FaultDetected
	// Eject: a flit was delivered at its destination. Detail is the flit's
	// end-to-end latency in cycles (delivery − generation).
	Eject

	// NumKinds is the number of event kinds.
	NumKinds = int(Eject) + 1
)

var kindNames = [NumKinds]string{
	"inject", "primary_win", "buffered", "retransmit", "deflect",
	"drop", "swap", "fairness_flip", "fault_manifest", "fault_detected",
	"eject",
}

// String returns the kind's snake_case name (the name KindByName accepts).
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// PerFlit reports whether events of this kind carry a flit (packet/flit
// IDs); Swap, FairnessFlip and the fault transitions are router-scoped.
func (k Kind) PerFlit() bool {
	switch k {
	case Swap, FairnessFlip, FaultManifest, FaultDetected:
		return false
	}
	return true
}

// KindByName resolves a snake_case kind name.
func KindByName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// KindNames lists every kind name in kind order (CLI help, mask parsing).
func KindNames() []string {
	return append([]string(nil), kindNames[:]...)
}

// ParseKinds resolves a list of kind names (each entry may itself be a
// comma-separated list). An empty list means "all kinds".
func ParseKinds(names []string) ([]Kind, error) {
	var kinds []Kind
	for _, entry := range names {
		for _, name := range strings.Split(entry, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			k, ok := KindByName(name)
			if !ok {
				return nil, fmt.Errorf("events: unknown event kind %q (known: %s)",
					name, strings.Join(kindNames[:], " "))
			}
			kinds = append(kinds, k)
		}
	}
	return kinds, nil
}

// Event is one recorded flight-recorder entry. The struct is flat and
// string-free so the ring is a single contiguous allocation and recording is
// a struct store.
type Event struct {
	// Cycle is the cycle the event happened at.
	Cycle uint64
	// PacketID and FlitID identify the flit involved (0 for router-scoped
	// kinds; real packet IDs start at 1).
	PacketID uint64
	FlitID   uint64
	// Detail is kind-specific (see the Kind constants).
	Detail int32
	// Node is the router the event happened at.
	Node int32
	// Kind is the event type.
	Kind Kind
	// Port is the kind-specific port (input port for arbitration events,
	// assigned port for deflections, Local for inject/eject, Invalid when
	// not meaningful).
	Port flit.Port
}

// String renders a compact debug representation.
func (e Event) String() string {
	if e.Kind.PerFlit() {
		return fmt.Sprintf("ev{c=%d n=%d %s pkt=%d flit=%d port=%s detail=%d}",
			e.Cycle, e.Node, e.Kind, e.PacketID, e.FlitID, e.Port, e.Detail)
	}
	return fmt.Sprintf("ev{c=%d n=%d %s detail=%d}", e.Cycle, e.Node, e.Kind, e.Detail)
}
