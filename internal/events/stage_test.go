package events

import (
	"reflect"
	"testing"

	"dxbar/internal/flit"
)

// TestStageDrainReproducesDirectRecording is the staging recorder's
// contract: recording through per-node stages and draining them in node
// order must leave the master recorder bit-identical — ring contents, head
// position, counter matrix and totals — to recording the same sequence
// directly.
func TestStageDrainReproducesDirectRecording(t *testing.T) {
	direct := NewRecorder(4, 8)
	master := NewRecorder(4, 8)
	stages := []*Recorder{master.NewStage(), master.NewStage(), master.NewStage(), master.NewStage()}

	// Enough events to wrap the 8-slot ring, spread over nodes and cycles.
	for cycle := uint64(0); cycle < 5; cycle++ {
		for node := 0; node < 4; node++ {
			direct.Record(cycle, Inject, node, flit.Local, uint64(node+1), cycle, 0)
			stages[node].Record(cycle, Inject, node, flit.Local, uint64(node+1), cycle, 0)
			if node%2 == 0 {
				direct.Record(cycle, Deflect, node, flit.North, uint64(node+1), cycle, 1)
				stages[node].Record(cycle, Deflect, node, flit.North, uint64(node+1), cycle, 1)
			}
		}
		for _, s := range stages {
			s.DrainTo(master)
		}
	}

	if !reflect.DeepEqual(direct.Events(), master.Events()) {
		t.Errorf("ring differs:\ndirect: %v\nstaged: %v", direct.Events(), master.Events())
	}
	if direct.Total() != master.Total() || direct.Overwritten() != master.Overwritten() {
		t.Errorf("totals differ: direct %d/%d, staged %d/%d",
			direct.Total(), direct.Overwritten(), master.Total(), master.Overwritten())
	}
	if !reflect.DeepEqual(direct.Matrix(), master.Matrix()) {
		t.Error("counter matrices differ")
	}
	for i, s := range stages {
		if s.Len() != 0 {
			t.Errorf("stage %d not empty after drain: %d events", i, s.Len())
		}
	}
}

// TestStageKindMaskInherited checks a stage applies the master's kind filter
// at record time, so masked events never occupy stage memory.
func TestStageKindMaskInherited(t *testing.T) {
	master := NewRecorder(2, 4, Drop)
	stage := master.NewStage()
	stage.Record(0, Inject, 0, flit.Local, 1, 1, 0)
	stage.Record(0, Drop, 0, flit.Invalid, 1, 1, 0)
	if stage.Len() != 1 {
		t.Fatalf("stage holds %d events, want 1 (Inject masked out)", stage.Len())
	}
	stage.DrainTo(master)
	if got := master.Matrix().At(0, Drop); got != 1 {
		t.Errorf("master drop count = %d, want 1", got)
	}
}

// TestStageNilRecorder: a nil master yields a nil stage, and every stage
// operation on nil is a no-op — the tracing-off path of the sharded engine.
func TestStageNilRecorder(t *testing.T) {
	var r *Recorder
	s := r.NewStage()
	if s != nil {
		t.Fatal("nil recorder must yield a nil stage")
	}
	s.Record(0, Inject, 0, flit.Local, 1, 1, 0) // must not panic
	s.DrainTo(nil)                              // must not panic
}

// TestStageSteadyStateNoGrowth: after the first drain cycle the stage's
// backing array is reused, so staging the same volume again allocates
// nothing (the sharded engine's zero-alloc requirement).
func TestStageSteadyStateNoGrowth(t *testing.T) {
	master := NewRecorder(1, 16)
	stage := master.NewStage()
	record := func() {
		for i := 0; i < 4; i++ {
			stage.Record(uint64(i), Inject, 0, flit.Local, 1, uint64(i), 0)
		}
		stage.DrainTo(master)
	}
	record() // warm the stage's capacity
	if avg := testing.AllocsPerRun(10, record); avg != 0 {
		t.Errorf("%.2f allocations per staged cycle in steady state, want 0", avg)
	}
}
