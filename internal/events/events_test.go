package events

import (
	"strings"
	"testing"

	"dxbar/internal/flit"
)

// TestRingOverwriteOldest: a capacity-4 ring fed 10 events keeps the last 4
// in chronological order, reports the 6 lost to overwrite, and keeps exact
// whole-run totals in the counter matrix.
func TestRingOverwriteOldest(t *testing.T) {
	r := NewRecorder(2, 4)
	for i := 0; i < 10; i++ {
		r.Record(uint64(i), Inject, i%2, flit.Local, uint64(i+1), uint64(i+1), 0)
	}
	if r.Len() != 4 || r.Capacity() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Capacity())
	}
	if r.Total() != 10 || r.Overwritten() != 6 {
		t.Fatalf("total=%d overwritten=%d, want 10/6", r.Total(), r.Overwritten())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest overwritten first)", i, e.Cycle, want)
		}
	}
	// The matrix never overwrites: 5 injects per node across the run.
	m := r.Matrix()
	if m.At(0, Inject) != 5 || m.At(1, Inject) != 5 {
		t.Errorf("matrix injects = %d/%d, want 5/5", m.At(0, Inject), m.At(1, Inject))
	}
	if m.KindTotal(Inject) != 10 {
		t.Errorf("kind total = %d, want 10", m.KindTotal(Inject))
	}
}

// TestRingExactFill: filling the ring exactly to capacity loses nothing.
func TestRingExactFill(t *testing.T) {
	r := NewRecorder(1, 3)
	for i := 0; i < 3; i++ {
		r.Record(uint64(i), Eject, 0, flit.Local, 1, 1, 0)
	}
	if r.Len() != 3 || r.Overwritten() != 0 {
		t.Fatalf("len=%d overwritten=%d, want 3/0", r.Len(), r.Overwritten())
	}
}

// TestKindMaskFiltering: a recorder restricted to a kind subset drops
// everything else at record time — neither the ring nor the matrix sees the
// masked-out kinds.
func TestKindMaskFiltering(t *testing.T) {
	r := NewRecorder(1, 8, Drop, Deflect)
	r.Record(1, Inject, 0, flit.Local, 1, 1, 0)
	r.Record(2, Drop, 0, flit.Invalid, 1, 1, 3)
	r.Record(3, Buffered, 0, flit.North, 1, 1, 2)
	r.Record(4, Deflect, 0, flit.East, 1, 1, 1)
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("len=%d total=%d, want 2/2", r.Len(), r.Total())
	}
	for _, e := range r.Events() {
		if e.Kind != Drop && e.Kind != Deflect {
			t.Errorf("masked-out kind %s reached the ring", e.Kind)
		}
	}
	if m := r.Matrix(); m.At(0, Inject) != 0 || m.At(0, Drop) != 1 {
		t.Errorf("matrix saw masked kinds: inject=%d drop=%d", m.At(0, Inject), m.At(0, Drop))
	}
	if !r.Enabled(Drop) || r.Enabled(Inject) {
		t.Error("Enabled disagrees with the mask")
	}
}

// TestNilRecorderSafe: every method on a nil recorder is inert.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, Inject, 0, flit.Local, 1, 1, 0)
	if r.Len() != 0 || r.Capacity() != 0 || r.Total() != 0 || r.Overwritten() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if r.Events() != nil || r.Matrix() != nil || r.PacketPath(1) != nil {
		t.Error("nil recorder returns non-nil data")
	}
	if r.Enabled(Inject) {
		t.Error("nil recorder claims a kind is enabled")
	}
}

// TestPacketPath: path reconstruction keeps exactly the packet's per-flit
// events, in order, and excludes router-scoped events and other packets.
func TestPacketPath(t *testing.T) {
	r := NewRecorder(4, 16)
	r.Record(0, Inject, 0, flit.Local, 7, 28, 0)
	r.Record(1, PrimaryWin, 0, flit.Local, 7, 28, int32(flit.East))
	r.Record(1, Inject, 2, flit.Local, 9, 36, 0) // other packet
	r.Record(2, FairnessFlip, 1, flit.Invalid, 0, 0, 1)
	r.Record(2, Buffered, 1, flit.West, 7, 28, 1)
	r.Record(4, Eject, 3, flit.Local, 7, 28, 4)
	path := r.PacketPath(7)
	if len(path) != 4 {
		t.Fatalf("path len = %d, want 4: %v", len(path), path)
	}
	wantKinds := []Kind{Inject, PrimaryWin, Buffered, Eject}
	wantNodes := []int32{0, 0, 1, 3}
	for i, e := range path {
		if e.Kind != wantKinds[i] || e.Node != wantNodes[i] {
			t.Errorf("hop %d = %s@%d, want %s@%d", i, e.Kind, e.Node, wantKinds[i], wantNodes[i])
		}
	}
}

// TestKindNamesRoundTrip: every kind's String resolves back via KindByName,
// and ParseKinds handles comma lists, spaces and bad names.
func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v, want %v", k.String(), got, ok, k)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName accepted a bogus name")
	}

	kinds, err := ParseKinds([]string{"drop, deflect", "eject"})
	if err != nil {
		t.Fatalf("ParseKinds: %v", err)
	}
	if len(kinds) != 3 || kinds[0] != Drop || kinds[1] != Deflect || kinds[2] != Eject {
		t.Errorf("ParseKinds = %v", kinds)
	}
	if kinds, err := ParseKinds(nil); err != nil || kinds != nil {
		t.Errorf("ParseKinds(nil) = %v,%v, want nil,nil", kinds, err)
	}
	if _, err := ParseKinds([]string{"drop,bogus"}); err == nil {
		t.Error("ParseKinds accepted a bogus name")
	}
}

// TestParseKindsErrorEnumeratesKinds: the unknown-name error quotes the bad
// input and lists every valid kind, so a CLI typo comes back with the menu.
func TestParseKindsErrorEnumeratesKinds(t *testing.T) {
	_, err := ParseKinds([]string{"bogus"})
	if err == nil {
		t.Fatal("ParseKinds accepted a bogus name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error %q does not quote the bad input", msg)
	}
	for _, name := range KindNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid kind %q", msg, name)
		}
	}
}

// TestMaskOf: no kinds means every kind.
func TestMaskOf(t *testing.T) {
	all := MaskOf()
	for k := Kind(0); int(k) < NumKinds; k++ {
		if all&(1<<uint(k)) == 0 {
			t.Errorf("MaskOf() missing kind %s", k)
		}
	}
	if m := MaskOf(Drop); m != 1<<uint(Drop) {
		t.Errorf("MaskOf(Drop) = %b", m)
	}
}

// TestPerFlit: router-scoped kinds carry no flit.
func TestPerFlit(t *testing.T) {
	for _, k := range []Kind{Swap, FairnessFlip, FaultManifest, FaultDetected} {
		if k.PerFlit() {
			t.Errorf("%s should not be per-flit", k)
		}
	}
	for _, k := range []Kind{Inject, PrimaryWin, Buffered, Retransmit, Deflect, Drop, Eject} {
		if !k.PerFlit() {
			t.Errorf("%s should be per-flit", k)
		}
	}
}

// TestRecordZeroAlloc: the record path itself never allocates, wrapping or
// not.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(4, 8)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ { // wraps the ring every run
			r.Record(uint64(i), Buffered, i%4, flit.North, uint64(i+1), uint64(i+1), 1)
		}
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f per run, want 0", allocs)
	}
}
