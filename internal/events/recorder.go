package events

import "dxbar/internal/flit"

// Recorder is the flight recorder proper: a preallocated ring of Events plus
// the per-router × per-kind counter matrix. A nil *Recorder is the disabled
// recorder — every method no-ops (or returns zero values) on a nil receiver,
// so instrumentation sites call unconditionally and the disabled path costs
// a nil check.
//
// A Recorder belongs to one simulation run and is not safe for concurrent
// use (the engine is single-threaded; batch sweeps give each run its own).
type Recorder struct {
	ring []Event
	head int // index of the oldest event
	size int

	mask  uint32 // per-kind enable bits
	nodes int

	// counts is the flattened nodes × NumKinds counter matrix. Unlike the
	// ring it never overwrites, so per-router totals are exact for the
	// whole run even after the ring wraps.
	counts []uint64

	total uint64 // events accepted into the ring over the run

	// grow marks a staging recorder (NewStage): the ring grows instead of
	// overwriting, there is no counter matrix, and DrainTo replays the held
	// events into a real recorder. The sharded cycle engine gives each node
	// a stage so the router phase can record concurrently, then drains the
	// stages in node order at the cycle barrier — reproducing exactly the
	// ring the sequential engine would have written.
	grow bool
}

// MaskOf builds the enable bitmask for a set of kinds; no kinds means all.
func MaskOf(kinds ...Kind) uint32 {
	if len(kinds) == 0 {
		return 1<<uint(NumKinds) - 1
	}
	var m uint32
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// NewRecorder returns a recorder for a network of the given node count with
// a ring of the given capacity. With no kinds every kind is recorded;
// otherwise only the listed kinds pass the record-time filter.
func NewRecorder(nodes, capacity int, kinds ...Kind) *Recorder {
	if nodes <= 0 || capacity <= 0 {
		panic("events: invalid recorder configuration")
	}
	return &Recorder{
		ring:   make([]Event, capacity),
		mask:   MaskOf(kinds...),
		nodes:  nodes,
		counts: make([]uint64, nodes*NumKinds),
	}
}

// Enabled reports whether events of kind k pass the recorder's filter
// (false on a nil recorder). Instrumentation sites with non-trivial event
// assembly may use it to skip the work entirely.
func (r *Recorder) Enabled(k Kind) bool {
	return r != nil && r.mask&(1<<uint(k)) != 0
}

// Widen opens the recorder's filter to every event kind. The diagnostics
// layer uses it on the first anomaly so the ring captures full detail for
// the tail of a sick run; the engine applies it to the master recorder and
// every staged recorder (stages copy the mask at creation, so widening the
// master alone would leave the sharded router phase filtered). Nil-safe.
func (r *Recorder) Widen() {
	if r != nil {
		r.mask = MaskOf()
	}
}

// NewStage returns a staging recorder with the same kind mask as r: a
// growable event buffer with no counter matrix, filled by one node's router
// during the parallel router phase and emptied by DrainTo at the cycle
// barrier. A nil receiver yields a nil stage (tracing off). The buffer
// grows by amortized append, so after a few cycles of warmup staging
// allocates nothing.
func (r *Recorder) NewStage() *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{mask: r.mask, nodes: r.nodes, grow: true}
}

// DrainTo replays the staged events into dst in record order and empties
// the stage. Only meaningful on a stage; replay goes through dst.Record, so
// dst's ring, counter matrix and totals end up exactly as if the events had
// been recorded there directly.
func (r *Recorder) DrainTo(dst *Recorder) {
	if r == nil || r.size == 0 {
		return
	}
	for i := 0; i < r.size; i++ {
		ev := &r.ring[i]
		dst.Record(ev.Cycle, ev.Kind, int(ev.Node), ev.Port, ev.PacketID, ev.FlitID, ev.Detail)
	}
	r.ring = r.ring[:0]
	r.size = 0
	r.total = 0
}

// Record appends one event to the ring, overwriting the oldest entry once
// the ring is full, and bumps the node's counter for the kind. It never
// allocates; on a nil recorder (tracing disabled) or a masked-out kind it
// returns immediately. (Staging recorders grow instead of overwriting and
// keep no counters — amortized-zero allocation, see NewStage.)
func (r *Recorder) Record(cycle uint64, k Kind, node int, port flit.Port, packetID, flitID uint64, detail int32) {
	// Split so the disabled case (nil recorder / masked kind) inlines into
	// every hook site as a compare-and-skip; the ring write stays out of
	// line. Routers call Record millions of times per second with tracing
	// off, so the call overhead itself is what matters here.
	if r == nil || r.mask&(1<<uint(k)) == 0 {
		return
	}
	r.record(cycle, k, node, port, packetID, flitID, detail)
}

func (r *Recorder) record(cycle uint64, k Kind, node int, port flit.Port, packetID, flitID uint64, detail int32) {
	if r.grow {
		r.ring = append(r.ring, Event{
			Cycle:    cycle,
			PacketID: packetID,
			FlitID:   flitID,
			Detail:   detail,
			Node:     int32(node),
			Kind:     k,
			Port:     port,
		})
		r.size = len(r.ring)
		r.total++
		return
	}
	r.counts[node*NumKinds+int(k)]++
	r.total++
	idx := r.head + r.size
	if idx >= len(r.ring) {
		idx -= len(r.ring)
	}
	r.ring[idx] = Event{
		Cycle:    cycle,
		PacketID: packetID,
		FlitID:   flitID,
		Detail:   detail,
		Node:     int32(node),
		Kind:     k,
		Port:     port,
	}
	if r.size < len(r.ring) {
		r.size++
	} else {
		// Ring full: the slot we just wrote was the oldest entry; advance.
		r.head++
		if r.head == len(r.ring) {
			r.head = 0
		}
	}
}

// Len returns the number of events currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.size
}

// Capacity returns the ring capacity (0 on a nil recorder).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Total returns the number of events recorded over the run, including those
// since overwritten.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Overwritten returns how many recorded events have been lost to ring
// overwrite (Total − Len).
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(r.size)
}

// Events copies the ring out in chronological (record) order. End-of-run
// export path; allocates.
func (r *Recorder) Events() []Event {
	if r == nil || r.size == 0 {
		return nil
	}
	out := make([]Event, r.size)
	n := copy(out, r.ring[r.head:r.head+min(r.size, len(r.ring)-r.head)])
	copy(out[n:], r.ring[:r.size-n])
	return out
}

// Matrix snapshots the per-router × per-kind counter matrix.
func (r *Recorder) Matrix() *Matrix {
	if r == nil {
		return nil
	}
	return &Matrix{
		Nodes:  r.nodes,
		counts: append([]uint64(nil), r.counts...),
	}
}

// PacketPath reconstructs one packet's hop-by-hop history from the events
// still in the ring: every per-flit event carrying the packet ID, in
// chronological order. If the packet's early life has been overwritten the
// path starts mid-flight (no Inject event).
func (r *Recorder) PacketPath(packetID uint64) []Event {
	return PacketPath(r.Events(), packetID)
}

// PacketPath filters a chronological event slice down to one packet's
// per-flit events (exported standalone so it also works on a Result's
// copied-out event log).
func PacketPath(evs []Event, packetID uint64) []Event {
	var path []Event
	for _, e := range evs {
		if e.PacketID == packetID && e.Kind.PerFlit() {
			path = append(path, e)
		}
	}
	return path
}

// Matrix is a snapshot of the per-router × per-kind counter matrix.
type Matrix struct {
	// Nodes is the network's node count.
	Nodes  int
	counts []uint64
}

// At returns node n's count for kind k (0 on a nil matrix).
func (m *Matrix) At(n int, k Kind) uint64 {
	if m == nil {
		return 0
	}
	return m.counts[n*NumKinds+int(k)]
}

// PerNode returns the per-node counts for one kind, indexed by node.
func (m *Matrix) PerNode(k Kind) []uint64 {
	if m == nil {
		return nil
	}
	out := make([]uint64, m.Nodes)
	for n := range out {
		out[n] = m.counts[n*NumKinds+int(k)]
	}
	return out
}

// KindTotal returns the network-wide count for one kind.
func (m *Matrix) KindTotal(k Kind) uint64 {
	if m == nil {
		return 0
	}
	var total uint64
	for n := 0; n < m.Nodes; n++ {
		total += m.counts[n*NumKinds+int(k)]
	}
	return total
}
