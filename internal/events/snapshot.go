package events

import (
	"fmt"

	"dxbar/internal/flit"
	"dxbar/internal/snapshot"
)

// SaveState serializes the master recorder: the kind mask, the whole-run
// total, the counter matrix and the ring events in chronological order (the
// ring phase is not captured — restore rebuilds from slot 0, which keeps the
// byte stream canonical under any rotation).
//
// SaveRecorderState/LoadRecorderState exist at the sim layer so an engine
// with tracing off can still consume a traced snapshot and vice versa; this
// method assumes a non-nil, non-stage recorder.
func (r *Recorder) SaveState(w *snapshot.Writer) {
	w.Tag("EVNT")
	w.U32(r.mask)
	w.U64(r.total)
	w.U32(uint32(len(r.counts)))
	for _, c := range r.counts {
		w.U64(c)
	}
	w.U32(uint32(r.size))
	for i := 0; i < r.size; i++ {
		e := &r.ring[(r.head+i)%len(r.ring)]
		w.U64(e.Cycle)
		w.U64(e.PacketID)
		w.U64(e.FlitID)
		w.I64(int64(e.Detail))
		w.I64(int64(e.Node))
		w.U8(uint8(e.Kind))
		w.U8(uint8(e.Port))
	}
}

// LoadState restores a recorder built from the same run configuration. dst
// may be nil (tracing disabled on the restore side — e.g. a rewind with a
// different trace setup), in which case the section is decoded and discarded.
// If the snapshot ring is deeper than dst's, only the newest events are kept
// — the same overwrite-oldest semantics the live ring applies.
func LoadState(r *snapshot.Reader, dst *Recorder) error {
	r.Expect("EVNT")
	mask := r.U32()
	total := r.U64()
	nc := r.Len(1 << 24)
	if err := r.Err(); err != nil {
		return err
	}
	if dst != nil && nc != len(dst.counts) {
		return fmt.Errorf("events: snapshot counter matrix size %d != configured %d", nc, len(dst.counts))
	}
	for i := 0; i < nc; i++ {
		v := r.U64()
		if dst != nil {
			dst.counts[i] = v
		}
	}
	size := r.Len(1 << 24)
	if err := r.Err(); err != nil {
		return err
	}
	if dst != nil {
		dst.mask = mask
		dst.total = total
		dst.head = 0
		dst.size = 0
	}
	for i := 0; i < size; i++ {
		var e Event
		e.Cycle = r.U64()
		e.PacketID = r.U64()
		e.FlitID = r.U64()
		e.Detail = int32(r.I64())
		e.Node = int32(r.I64())
		e.Kind = Kind(r.U8())
		e.Port = flit.Port(int8(r.U8()))
		if err := r.Err(); err != nil {
			return err
		}
		if int(e.Kind) >= NumKinds {
			return fmt.Errorf("events: snapshot event kind %d out of range", e.Kind)
		}
		if dst == nil {
			continue
		}
		if int(e.Node) < 0 || int(e.Node) >= dst.nodes {
			return fmt.Errorf("events: snapshot event node %d out of range", e.Node)
		}
		// Re-insert with ring semantics but without the mask filter or the
		// counter bump — mask and counters were restored wholesale above.
		idx := dst.head + dst.size
		if idx >= len(dst.ring) {
			idx -= len(dst.ring)
		}
		dst.ring[idx] = e
		if dst.size < len(dst.ring) {
			dst.size++
		} else {
			dst.head++
			if dst.head == len(dst.ring) {
				dst.head = 0
			}
		}
	}
	return r.Err()
}
