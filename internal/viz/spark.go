package viz

// This file renders the observability companions to the figure charts: a
// latency CDF (step plot on the same chart frame as LineSVG, built from
// cumulative histogram points) and compact per-series sparklines for the
// time-series samples (throughput, in-flight flits, buffer occupancy over
// the run). Both take the generic Series/Chart shapes so the package stays
// simulator-free.

import (
	"fmt"
	"math"
	"strings"
)

// CDFSVG renders the chart as step functions — the natural shape for an
// empirical CDF built from histogram bucket edges, where Y holds cumulative
// fractions in [0, 1]. X is expected non-decreasing per series; a log-ish
// latency axis is the caller's choice of X values.
func CDFSVG(c Chart) string {
	var b strings.Builder
	plotW := chartW - padLeft - padRight
	plotH := chartH - padTop - padBot

	xmin, xmax, _ := bounds(c)
	ymax := 1.0 * 1.05 // CDFs top out at 1; keep headroom consistent with bounds()
	xscale := func(x float64) float64 {
		if xmax == xmin {
			return padLeft
		}
		return padLeft + (x-xmin)/(xmax-xmin)*float64(plotW)
	}
	yscale := func(y float64) float64 {
		return float64(padTop+plotH) - y/ymax*float64(plotH)
	}

	header(&b, c)
	gridAndAxes(&b, c, xmin, xmax, ymax, xscale, yscale, nil)

	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		var path strings.Builder
		for i := range s.X {
			x, y := xscale(s.X[i]), yscale(s.Y[i])
			if i == 0 {
				fmt.Fprintf(&path, "M%.1f %.1f ", x, y)
				continue
			}
			// Horizontal-then-vertical: the quantile holds until the next
			// bucket edge, then steps up.
			fmt.Fprintf(&path, "H%.1f V%.1f ", x, y)
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.TrimSpace(path.String()), color)
	}
	legend(&b, c)
	b.WriteString("</svg>\n")
	return b.String()
}

// sparkline geometry: one compact row per series, filled area + line.
const (
	sparkW     = 560
	sparkRowH  = 56
	sparkPadX  = 180 // label + last-value columns
	sparkPadY  = 36  // title row
	sparkInset = 8
)

// SparklineSVG renders each series as one compact row: label, filled
// area-plus-line trace, and the final value. Rows share the X range but are
// scaled independently on Y (a sparkline shows shape, not cross-series
// magnitude — use LineSVG when magnitudes must be comparable).
func SparklineSVG(c Chart) string {
	var b strings.Builder
	rows := len(c.Series)
	if rows == 0 {
		rows = 1
	}
	totalH := sparkPadY + rows*sparkRowH + 12

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		sparkW, totalH, sparkW, totalH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", sparkW, totalH, surface)
	fmt.Fprintf(&b, `<text x="16" y="24" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		textPrimary, escape(c.Title))

	traceW := sparkW - sparkPadX - 16
	xmin, xmax, _ := bounds(c)

	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		top := sparkPadY + si*sparkRowH
		base := float64(top + sparkRowH - sparkInset)

		ymaxRow := 0.0
		for _, y := range s.Y {
			ymaxRow = math.Max(ymaxRow, y)
		}
		xscale := func(x float64) float64 {
			if xmax == xmin {
				return 120
			}
			return 120 + (x-xmin)/(xmax-xmin)*float64(traceW)
		}
		yscale := func(y float64) float64 {
			if ymaxRow == 0 {
				return base
			}
			return base - y/ymaxRow*float64(sparkRowH-2*sparkInset)
		}

		fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
			base-4, textPrimary, escape(s.Label))
		fmt.Fprintf(&b, `<line x1="120" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			base, 120+traceW, base, gridStroke)

		if len(s.X) == 0 {
			continue
		}
		var line strings.Builder
		for i := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&line, "%s%.1f %.1f ", cmd, xscale(s.X[i]), yscale(s.Y[i]))
		}
		trace := strings.TrimSpace(line.String())
		// Filled area under the trace at 15% alpha, then the 1.5px line.
		fmt.Fprintf(&b, `<path d="%s L%.1f %.1f L%.1f %.1f Z" fill="%s" fill-opacity="0.15"/>`+"\n",
			trace, xscale(s.X[len(s.X)-1]), base, xscale(s.X[0]), base, color)
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5" stroke-linejoin="round"/>`+"\n",
			trace, color)
		// Terminal marker + last value, the "now" readout.
		lastX, lastY := xscale(s.X[len(s.X)-1]), yscale(s.Y[len(s.Y)-1])
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", lastX, lastY, color)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			sparkW-16, lastY+4, textSecondary, trimFloat(s.Y[len(s.Y)-1]))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
