// Package viz renders regenerated paper figures as standalone SVG files
// (line charts for the load/fault sweeps, grouped bar charts for the
// categorical pattern/benchmark axes). The output is a static figure for
// docs and reports; the machine-readable "table view" ships alongside it as
// the CSV the sweep tool writes for the same figure.
//
// Colors follow a validated categorical palette (fixed slot order chosen to
// maximize adjacent colorblind-safe separation; worst adjacent CVD ΔE 24.2
// on the light surface), text wears ink tokens rather than series colors,
// lines are 2px with 8px markers, bars have rounded data-ends anchored to
// the baseline with 2px surface gaps, and the grid is recessive. A legend
// is always present for multi-series figures.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// The validated light-mode palette: surface, ink tokens, and the fixed
// categorical slot order (never cycled; figures here have at most eight
// series by construction).
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridStroke    = "#e4e3df"
	axisStroke    = "#c3c2b7"
)

var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

// Series is one labelled data series (mirrors the facade's Series without
// importing it, keeping this package reusable).
type Series struct {
	Label  string
	X, Y   []float64
	XNames []string
}

// Chart is the renderable figure description.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// geometry constants (px).
const (
	chartW   = 760
	chartH   = 440
	padLeft  = 64
	padRight = 168 // legend column
	padTop   = 44
	padBot   = 56
)

// LineSVG renders the chart as connected lines with markers (numeric X).
func LineSVG(c Chart) string {
	var b strings.Builder
	plotW := chartW - padLeft - padRight
	plotH := chartH - padTop - padBot

	xmin, xmax, ymax := bounds(c)
	xscale := func(x float64) float64 {
		if xmax == xmin {
			return padLeft
		}
		return padLeft + (x-xmin)/(xmax-xmin)*float64(plotW)
	}
	yscale := func(y float64) float64 {
		if ymax == 0 {
			return float64(padTop + plotH)
		}
		return float64(padTop+plotH) - y/ymax*float64(plotH)
	}

	header(&b, c)
	gridAndAxes(&b, c, xmin, xmax, ymax, xscale, yscale, nil)

	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		var path strings.Builder
		for i := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xscale(s.X[i]), yscale(s.Y[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for i := range s.X {
			// 8px markers with a 2px surface ring so overlapping points
			// stay distinguishable.
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="%s" stroke-width="2"/>`+"\n",
				xscale(s.X[i]), yscale(s.Y[i]), color, surface)
		}
	}
	legend(&b, c)
	b.WriteString("</svg>\n")
	return b.String()
}

// BarSVG renders the chart as grouped bars (categorical X via XNames).
func BarSVG(c Chart) string {
	var b strings.Builder
	plotW := chartW - padLeft - padRight
	plotH := chartH - padTop - padBot

	_, _, ymax := bounds(c)
	yscale := func(y float64) float64 {
		if ymax == 0 {
			return float64(padTop + plotH)
		}
		return float64(padTop+plotH) - y/ymax*float64(plotH)
	}
	var names []string
	if len(c.Series) > 0 {
		names = c.Series[0].XNames
	}
	groups := len(names)
	if groups == 0 {
		return LineSVG(c)
	}

	header(&b, c)
	gridAndAxes(&b, c, 0, 0, ymax, nil, yscale, names)

	groupW := float64(plotW) / float64(groups)
	// Thin marks with 2px surface gaps between adjacent bars.
	barW := (groupW - 8) / float64(len(c.Series))
	if barW > 18 {
		barW = 18
	}
	baseline := float64(padTop + plotH)
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		for gi := range names {
			if gi >= len(s.Y) {
				continue
			}
			groupLeft := float64(padLeft) + float64(gi)*groupW + groupW/2 -
				barW*float64(len(c.Series))/2
			x := groupLeft + float64(si)*barW + 1 // 2px gap via 1px inset each side
			top := yscale(s.Y[gi])
			w := barW - 2
			h := baseline - top
			if h < 0.5 {
				h = 0.5
			}
			r := math.Min(4, math.Min(w/2, h)) // rounded data-end, baseline square
			fmt.Fprintf(&b,
				`<path d="M%.1f %.1f v%.1f q0 -%.1f %.1f -%.1f h%.1f q%.1f 0 %.1f %.1f v%.1f z" fill="%s"/>`+"\n",
				x, baseline, -(h - r), r, r, r, w-2*r, r, r, r, h-r, color)
		}
	}
	legend(&b, c)
	b.WriteString("</svg>\n")
	return b.String()
}

func bounds(c Chart) (xmin, xmax, ymax float64) {
	xmin, xmax = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
		}
		for _, y := range s.Y {
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax = 0, 1
	}
	if ymax <= 0 {
		ymax = 1
	}
	return xmin, xmax, ymax * 1.05
}

func header(b *strings.Builder, c Chart) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", chartW, chartH, surface)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		padLeft, textPrimary, escape(c.Title))
}

// gridAndAxes draws the recessive grid, axis lines, ticks and axis titles.
// For bar charts pass names (categorical ticks) and a nil xscale.
func gridAndAxes(b *strings.Builder, c Chart, xmin, xmax, ymax float64,
	xscale, yscale func(float64) float64, names []string) {
	plotW := chartW - padLeft - padRight
	plotH := chartH - padTop - padBot
	baseline := padTop + plotH

	// Horizontal gridlines at 4 divisions.
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		y := yscale(v)
		if i > 0 {
			fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
				padLeft, y, padLeft+plotW, y, gridStroke)
		}
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			padLeft-8, y+4, textSecondary, trimFloat(v))
	}
	// Axis lines.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
		padLeft, baseline, padLeft+plotW, baseline, axisStroke)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
		padLeft, padTop, padLeft, baseline, axisStroke)

	// X ticks.
	if names != nil {
		groupW := float64(plotW) / float64(len(names))
		for i, n := range names {
			x := float64(padLeft) + (float64(i)+0.5)*groupW
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
				x, baseline+18, textSecondary, escape(n))
		}
	} else if xscale != nil {
		for i := 0; i <= 4; i++ {
			v := xmin + (xmax-xmin)*float64(i)/4
			fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
				xscale(v), baseline+18, textSecondary, trimFloat(v))
		}
	}
	// Axis titles in ink tokens.
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
		padLeft+plotW/2, chartH-14, textSecondary, escape(c.XLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" fill="%s" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		padTop+plotH/2, textSecondary, padTop+plotH/2, escape(c.YLabel))
}

// legend draws the always-present legend column (identity is never
// color-alone: swatch + text label in ink).
func legend(b *strings.Builder, c Chart) {
	x := chartW - padRight + 16
	y := padTop + 4
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" rx="2" fill="%s"/>`+"\n", x, y-10, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`+"\n",
			x+18, y, textPrimary, escape(s.Label))
		y += 20
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
