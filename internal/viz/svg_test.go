package viz

import (
	"encoding/xml"
	"strings"
	"testing"
)

func lineChart() Chart {
	return Chart{
		Title: "Throughput, Uniform Random", XLabel: "offered load", YLabel: "accepted load",
		Series: []Series{
			{Label: "DXbar DOR", X: []float64{0.1, 0.2, 0.3}, Y: []float64{0.1, 0.2, 0.29}},
			{Label: "Flit-Bless", X: []float64{0.1, 0.2, 0.3}, Y: []float64{0.1, 0.19, 0.26}},
		},
	}
}

func barChart() Chart {
	return Chart{
		Title: "Energy by pattern", XLabel: "pattern", YLabel: "nJ/packet",
		Series: []Series{
			{Label: "DXbar", X: []float64{0, 1, 2}, Y: []float64{0.3, 0.4, 0.25}, XNames: []string{"UR", "NUR", "TOR"}},
			{Label: "Buffered 4", X: []float64{0, 1, 2}, Y: []float64{0.45, 0.5, 0.4}, XNames: []string{"UR", "NUR", "TOR"}},
		},
	}
}

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestLineSVGWellFormed(t *testing.T) {
	svg := LineSVG(lineChart())
	wellFormed(t, svg)
	if !strings.Contains(svg, "<path") || !strings.Contains(svg, "<circle") {
		t.Error("line chart must contain paths and markers")
	}
	// Legend is always present for >= 2 series, labels in ink not series color.
	if !strings.Contains(svg, "DXbar DOR") || !strings.Contains(svg, "Flit-Bless") {
		t.Error("legend labels missing")
	}
	if !strings.Contains(svg, textPrimary) {
		t.Error("legend text must wear ink tokens")
	}
}

func TestBarSVGWellFormed(t *testing.T) {
	svg := BarSVG(barChart())
	wellFormed(t, svg)
	if !strings.Contains(svg, ">UR</text>") || !strings.Contains(svg, ">TOR</text>") {
		t.Error("categorical tick labels missing")
	}
	// Bars are paths with rounded data-ends.
	if strings.Count(svg, `q0 -`) < 6 {
		t.Error("expected rounded bar tops")
	}
}

func TestSeriesColorsFixedOrder(t *testing.T) {
	// Slot order is the CVD-safety mechanism — assert it is stable.
	want := []string{"#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834"}
	if len(seriesColors) != len(want) {
		t.Fatalf("palette has %d slots, want %d", len(seriesColors), len(want))
	}
	for i := range want {
		if seriesColors[i] != want[i] {
			t.Errorf("slot %d = %s, want %s (fixed order, never cycled)", i+1, seriesColors[i], want[i])
		}
	}
	// First two series of a chart must use slots 1 and 2 in order.
	svg := LineSVG(lineChart())
	if strings.Index(svg, want[0]) == -1 || strings.Index(svg, want[1]) == -1 {
		t.Error("series must take palette slots in fixed order")
	}
}

func TestEscape(t *testing.T) {
	c := lineChart()
	c.Title = `a < b & "c"`
	svg := LineSVG(c)
	wellFormed(t, svg)
	if strings.Contains(svg, `a < b`) {
		t.Error("title must be XML-escaped")
	}
}

func TestEmptyChartDoesNotPanic(t *testing.T) {
	svg := LineSVG(Chart{Title: "empty"})
	wellFormed(t, svg)
	svg = BarSVG(Chart{Title: "empty"})
	wellFormed(t, svg)
}

func TestBarFallsBackToLineWithoutNames(t *testing.T) {
	c := lineChart() // no XNames
	svg := BarSVG(c)
	if !strings.Contains(svg, "<circle") {
		t.Error("BarSVG without categorical names must fall back to a line chart")
	}
}
