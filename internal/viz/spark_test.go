package viz

import (
	"strings"
	"testing"
)

func TestCDFSVGSteps(t *testing.T) {
	svg := CDFSVG(Chart{
		Title:  "latency CDF",
		XLabel: "latency (cycles)",
		YLabel: "fraction of packets",
		Series: []Series{
			{Label: "DXbar", X: []float64{10, 20, 40}, Y: []float64{0.5, 0.9, 1.0}},
			{Label: "SCARAB", X: []float64{12, 30, 90}, Y: []float64{0.4, 0.8, 1.0}},
		},
	})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not a standalone SVG document")
	}
	// Step plot: paths use H/V segments, not diagonal L segments.
	if !strings.Contains(svg, "H") || !strings.Contains(svg, "V") {
		t.Error("CDF paths must be horizontal/vertical steps")
	}
	for _, label := range []string{"DXbar", "SCARAB", "latency CDF"} {
		if !strings.Contains(svg, label) {
			t.Errorf("missing %q", label)
		}
	}
	if got := strings.Count(svg, `<path`); got != 2 {
		t.Errorf("got %d paths, want one step path per series", got)
	}
}

func TestSparklineSVGRows(t *testing.T) {
	svg := SparklineSVG(Chart{
		Title: "run time series",
		Series: []Series{
			{Label: "in-flight flits", X: []float64{100, 200, 300}, Y: []float64{5, 9, 7}},
			{Label: "buffered flits", X: []float64{100, 200, 300}, Y: []float64{0, 0, 0}},
		},
	})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not a standalone SVG document")
	}
	for _, label := range []string{"in-flight flits", "buffered flits", "run time series"} {
		if !strings.Contains(svg, label) {
			t.Errorf("missing %q", label)
		}
	}
	// Each non-empty series renders a filled area and a line: 2 paths per row.
	if got := strings.Count(svg, `<path`); got != 4 {
		t.Errorf("got %d paths, want 4 (area+line per series)", got)
	}
	// Last-value readout for the first row.
	if !strings.Contains(svg, ">7<") {
		t.Error("missing terminal value readout")
	}
}

func TestSparklineSVGEmpty(t *testing.T) {
	svg := SparklineSVG(Chart{Title: "empty"})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("empty chart must still produce a valid document")
	}
}
